// kvstore: a concurrent membership index built on the paper's CRF skip
// list — the workload class the paper's §5 motivates (long-running
// services where unreclaimed memory, not just throughput, decides
// viability). A mixed workload runs against the set while a reporter
// goroutine samples live memory; at the end the HS-skip variant is run
// under the identical workload so the footprint difference of §5 is
// visible side by side.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ds/skiplist"
	"repro/internal/rt"
)

type index interface {
	Insert(tid int, key uint64) bool
	Remove(tid int, key uint64) bool
	Contains(tid int, key uint64) bool
}

func churn(name string, idx index, reg *rt.Registry, mem func() (live, maxLive int64)) {
	const workers = 4
	const duration = 700 * time.Millisecond
	var stop atomic.Bool
	var wg sync.WaitGroup
	var ops atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid := reg.Acquire()
			defer reg.Release(tid)
			rng := uint64(tid)*0x9E3779B97F4A7C15 + 1
			n := uint64(0)
			for !stop.Load() {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng%1024 + 1
				switch rng % 5 {
				case 0, 1:
					idx.Insert(tid, k)
				case 2, 3:
					idx.Remove(tid, k)
				default:
					idx.Contains(tid, k)
				}
				n++
			}
			ops.Add(n)
		}()
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	live, maxLive := mem()
	fmt.Printf("%-8s %8.2f Mops/s   live nodes %6d   high-water %6d\n",
		name, float64(ops.Load())/duration.Seconds()/1e6, live, maxLive)
}

func main() {
	reg := rt.NewRegistry(8)
	cfg := core.DomainConfig{MaxThreads: reg.Cap()}

	fmt.Println("identical 40% insert / 40% remove / 20% lookup churn, 1024-key space:")
	tid := reg.Acquire()
	crf := skiplist.NewCRFOrc(tid, cfg)
	hs := skiplist.NewHSOrc(tid, cfg)
	reg.Release(tid)

	churn("crf-skip", crf, reg, func() (int64, int64) {
		st := crf.Domain().Arena().Stats()
		return st.Live, st.MaxLive
	})
	churn("hs-skip", hs, reg, func() (int64, int64) {
		st := hs.Domain().Arena().Stats()
		return st.Live, st.MaxLive
	})
	fmt.Println("\nCRF-skip's poisoning keeps removed nodes from chaining to each other,")
	fmt.Println("which is the §5 footprint contrast (≈19 GB vs <1 GB at paper scale).")
}
