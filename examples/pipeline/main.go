// pipeline: a three-stage work pipeline connected by two different
// OrcGC-reclaimed queues — an LCRQ between stage 1 and 2 (high-rate
// fan-in) and a Michael–Scott queue between stage 2 and 3. Segments and
// nodes flow in and out of existence at pipeline rate; OrcGC keeps the
// footprint flat with zero retire calls in the pipeline code.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ds/lcrq"
	"repro/internal/ds/msqueue"
	"repro/internal/rt"
)

func main() {
	const sources = 3
	const itemsPerSource = 50_000

	reg := rt.NewRegistry(16)
	tid0 := reg.Acquire()
	stage1 := lcrq.NewOrc(tid0, core.DomainConfig{MaxThreads: reg.Cap()})
	stage2 := msqueue.NewOrc(tid0, core.DomainConfig{MaxThreads: reg.Cap()})
	reg.Release(tid0)

	var wg sync.WaitGroup

	// Stage 1: sources push raw values (LCRQ items are 32-bit).
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			tid := reg.Acquire()
			defer reg.Release(tid)
			for i := uint64(1); i <= itemsPerSource; i++ {
				stage1.Enqueue(tid, (seed<<20 | i))
			}
		}(uint64(s))
	}

	// Stage 2: transform (square the low bits) and forward.
	stage1Done := make(chan struct{})
	var forwarded sync.WaitGroup
	for w := 0; w < 2; w++ {
		forwarded.Add(1)
		go func() {
			defer forwarded.Done()
			tid := reg.Acquire()
			defer reg.Release(tid)
			for {
				v, ok := stage1.Dequeue(tid)
				if !ok {
					select {
					case <-stage1Done:
						for {
							v, ok := stage1.Dequeue(tid)
							if !ok {
								return
							}
							stage2.Enqueue(tid, (v&0xFFFFF)*(v&0xFFFFF))
						}
					default:
						continue
					}
				}
				stage2.Enqueue(tid, (v&0xFFFFF)*(v&0xFFFFF))
			}
		}()
	}

	// Stage 3: sink.
	var sum, count uint64
	var sink sync.WaitGroup
	stage2Done := make(chan struct{})
	sink.Add(1)
	go func() {
		defer sink.Done()
		tid := reg.Acquire()
		defer reg.Release(tid)
		for {
			v, ok := stage2.Dequeue(tid)
			if ok {
				sum += v
				count++
				continue
			}
			select {
			case <-stage2Done:
				for {
					v, ok := stage2.Dequeue(tid)
					if !ok {
						return
					}
					sum += v
					count++
				}
			default:
			}
		}
	}()

	wg.Wait()
	close(stage1Done)
	forwarded.Wait()
	close(stage2Done)
	sink.Wait()

	fmt.Printf("pipeline moved %d items (checksum %d)\n", count, sum)

	tid := reg.Acquire()
	stage1.Drain(tid)
	stage2.Drain(tid)
	reg.Release(tid)
	s1 := stage1.Domain().Arena().Stats()
	s2 := stage2.Domain().Arena().Stats()
	fmt.Printf("LCRQ segments: %d allocated, %d live after drain\n", s1.Allocs, s1.Live)
	fmt.Printf("MS nodes:      %d allocated, %d live after drain\n", s2.Allocs, s2.Live)
}
