// Quickstart: the paper's Algorithm 1 — a Michael–Scott queue with
// OrcGC — shared by a handful of producer and consumer goroutines.
// Nothing below ever calls retire(), protect() or free(): reclamation
// is entirely automatic, and the final arena statistics prove every
// node was returned to the allocator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ds/msqueue"
	"repro/internal/rt"
)

func main() {
	const producers, consumers = 3, 3
	const perProducer = 100_000

	reg := rt.NewRegistry(producers + consumers + 1)
	setupTid := reg.Acquire()
	q := msqueue.NewOrc(setupTid, core.DomainConfig{MaxThreads: reg.Cap()})
	reg.Release(setupTid)

	var produced, consumed sync.WaitGroup
	var total uint64
	var mu sync.Mutex

	for p := 0; p < producers; p++ {
		produced.Add(1)
		go func() {
			defer produced.Done()
			tid := reg.Acquire()
			defer reg.Release(tid)
			for i := 1; i <= perProducer; i++ {
				q.Enqueue(tid, uint64(i))
			}
		}()
	}

	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			tid := reg.Acquire()
			defer reg.Release(tid)
			var sum uint64
			for {
				v, ok := q.Dequeue(tid)
				if ok {
					sum += v
					continue
				}
				select {
				case <-done:
					for { // drain the tail
						v, ok := q.Dequeue(tid)
						if !ok {
							break
						}
						sum += v
					}
					mu.Lock()
					total += sum
					mu.Unlock()
					return
				default:
				}
			}
		}()
	}

	produced.Wait()
	close(done)
	consumed.Wait()

	want := uint64(producers) * perProducer * (perProducer + 1) / 2
	fmt.Printf("consumed sum %d (want %d) — match: %v\n", total, want, total == want)

	tid := reg.Acquire()
	q.Drain(tid)
	reg.Release(tid)
	st := q.Domain().Arena().Stats()
	fmt.Printf("nodes allocated %d, freed %d, live %d — OrcGC reclaimed everything automatically\n",
		st.Allocs, st.Frees, st.Live)
}
