// uafdemo: why a reclamation scheme is needed at all, and how this
// reproduction makes the failure observable. The paper's motivating
// hazard is that freeing memory the system allocator may reuse turns a
// stale read into a segmentation fault. Here the dangerous interleaving
// is played out deterministically: a reader announces a protection, a
// writer unlinks and retires the object, then the reader dereferences.
// Under a deliberately broken scheme (free-on-retire, no protection
// handshake) every round is a use-after-free — caught by the arena's
// generation check instead of crashing, as a C++ system allocator would.
// The identical interleaving under pass-the-pointer never faults: the
// retire hands the object over to the announced protection.
//
//	go run ./examples/uafdemo
package main

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/reclaim"
)

type node struct{ payload uint64 }

func interleave(scheme string) (faults, freed uint64, intact uint64) {
	a := arena.New[node](arena.WithFaultMode(arena.Count))
	s := reclaim.MustNew(scheme, reclaim.Env{Free: a.FreeT, Hdr: a.Header},
		reclaim.Options{MaxThreads: 2, MaxHPs: 2})

	var slot atomic.Uint64
	h, p := a.Alloc()
	p.payload = uint64(h)
	s.OnAlloc(h)
	slot.Store(uint64(h))

	const rounds = 100_000
	for i := 0; i < rounds; i++ {
		// Reader (thread 0): protect the current object.
		got := s.GetProtected(0, 0, &slot)

		// Writer (thread 1): replace it and retire the old one.
		nh, pn := a.Alloc()
		pn.payload = uint64(nh)
		s.OnAlloc(nh)
		old := arena.Handle(slot.Swap(uint64(nh)))
		s.Retire(1, old)

		// Reader resumes: dereference what it protected.
		if n, ok := a.TryGet(got); ok {
			if n.payload == uint64(got) {
				intact++
			}
		} else {
			a.Get(got) // stale — the generation check records the fault
		}
		s.ClearAll(0)
	}
	for tid := 0; tid < 2; tid++ {
		s.Flush(tid)
	}
	st := a.Stats()
	return st.Faults, st.Frees, intact
}

func main() {
	fmt.Println("interleaving: reader protects → writer unlinks + retires → reader dereferences")
	fmt.Println("(100k rounds each)")
	f, freed, ok := interleave("unsafe")
	fmt.Printf("  free-on-retire (broken): %6d use-after-free faults, %6d safe reads, %d freed\n", f, ok, freed)
	f, freed, ok = interleave("ptp")
	fmt.Printf("  pass-the-pointer (PTP):  %6d use-after-free faults, %6d safe reads, %d freed\n", f, ok, freed)
	fmt.Println("\nPTP reclaims just as much memory, but a protected object is handed over,")
	fmt.Println("never freed under the reader — the property every scheme in Table 1 provides.")
}
