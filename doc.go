// Package repro is a from-scratch Go reproduction of "OrcGC: Automatic
// Lock-Free Memory Reclamation" (Correia, Ramalhete, Felber — PPoPP
// 2021).
//
// The library lives under internal/: the pass-the-pointer manual scheme
// and its competitors in internal/reclaim, the OrcGC automatic scheme in
// internal/core, the manual-memory substrate that makes reclamation
// observable under a garbage-collected language in internal/arena, and
// the paper's eleven data structures under internal/ds. The benchmark
// harness regenerating every figure and table of the evaluation is
// internal/bench, driven by cmd/orcbench and the artifact-named
// binaries. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
