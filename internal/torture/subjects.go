package torture

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/kvstore"
)

// Subject is one scheme × data-structure pairing the harness can run.
type Subject struct {
	Name string
	Kind string // "set", "queue", "kv", "scan", "cluster", or "overload"
}

// Subjects enumerates every pairing: all queue and set subjects from the
// bench registry (each data structure under OrcGC, under every manual
// scheme it supports, and the leak baselines), one kvstore chaos subject
// per store scheme, and one scheme-direct scan/elision subject per
// manual scheme.
func Subjects() []Subject {
	var out []Subject
	for _, n := range bench.QueueNames() {
		out = append(out, Subject{Name: n, Kind: "queue"})
	}
	seen := map[string]bool{}
	for _, group := range [][]string{
		bench.ListSchemeNames(), bench.OrcListNames(), bench.HashMapNames(), bench.TreeSkipNames(),
	} {
		for _, n := range group {
			if !seen[n] {
				seen[n] = true
				out = append(out, Subject{Name: n, Kind: "set"})
			}
		}
	}
	for _, scheme := range kvstore.Modes() {
		out = append(out, Subject{Name: "kv-" + scheme, Kind: "kv"})
	}
	for _, scheme := range scanSchemes() {
		out = append(out, Subject{Name: "scan-" + scheme, Kind: "scan"})
	}
	out = append(out, Subject{Name: "cluster-failover", Kind: "cluster"})
	out = append(out, Subject{Name: "kv-overload", Kind: "overload"})
	return out
}

// SubjectNames returns just the names, for flag parsing and usage text.
func SubjectNames() []string {
	subs := Subjects()
	out := make([]string, len(subs))
	for i, s := range subs {
		out[i] = s.Name
	}
	return out
}

// Resolve maps comma-separated subject names (or "all") to subjects.
func Resolve(spec string) ([]Subject, error) {
	all := Subjects()
	if spec == "" || spec == "all" {
		return all, nil
	}
	byName := make(map[string]Subject, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	var out []Subject
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		s, ok := byName[part]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("torture: unknown subject %q (known: %s)", part, strings.Join(known, ", "))
		}
		out = append(out, s)
	}
	return out, nil
}

// Run dispatches one subject to its runner.
func Run(s Subject, cfg Config) *Verdict {
	switch s.Kind {
	case "set":
		return RunSet(s.Name, cfg)
	case "queue":
		return RunQueue(s.Name, cfg)
	case "kv":
		return RunKV(strings.TrimPrefix(s.Name, "kv-"), cfg)
	case "scan":
		return RunScanScheme(strings.TrimPrefix(s.Name, "scan-"), cfg)
	case "cluster":
		return RunCluster(cfg)
	case "overload":
		return RunOverload(cfg)
	default:
		panic(fmt.Sprintf("torture: unknown subject kind %q", s.Kind))
	}
}
