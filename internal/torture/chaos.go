package torture

import (
	"context"
	"encoding/binary"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/kvstore"
)

// The kvstore chaos subject drives a live in-process server through
// every kind of client misbehavior the wire protocol permits — dropped
// connections mid-pipeline, aborted writes, partial frames, and slow
// readers — with scheduler perturbation injected at the reclamation
// hot paths underneath, then proves the store is still coherent: a clean
// client round-trips fresh writes, and DrainAndCheck's report shows the
// arenas back at baseline (conservation for the "none" scheme).

// chaosKeys bounds the chaos key range so Put/Del collide heavily.
const chaosKeys = 2048

// RunKV tortures one store scheme under connection chaos.
func RunKV(scheme string, cfg Config) *Verdict {
	cfg.defaults()
	cfg.Stalls = 0 // no workers advance opsDone here; a park would only spin
	hookMu.Lock()
	defer hookMu.Unlock()

	v := &Verdict{Subject: "kv-" + scheme, Kind: "kv", Seed: cfg.Seed, Threads: cfg.Threads}
	st, err := kvstore.New(kvstore.Config{Scheme: scheme, Shards: 4, Buckets: 256, MaxThreads: 64})
	if err != nil {
		v.failf("store construction: %v", err)
		return v
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		v.failf("listen: %v", err)
		return v
	}
	srv := kvstore.NewServer(st)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	in := newInjector(cfg)
	in.install()

	// Chaos phase: Threads goroutines, each running a deterministic
	// stream of misbehaving connections.
	connsPer := 4 + int(cfg.OpsPerThread/256)
	if connsPer > 32 {
		connsPer = 32
	}
	hashes := make([]uint64, cfg.Threads)
	dialFails := make([]int, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := pcg{s: mix64(cfg.Seed, uint64(tid)+0x6B76)}
			h := fnvOffset
			for c := 0; c < connsPer; c++ {
				fate := rng.next() % 5
				h = fnv1a(h, fate)
				if !chaosConn(addr, fate, &rng, &h) {
					dialFails[tid]++
				}
				in.opsDone.Add(1)
			}
			hashes[tid] = h
		}(w)
	}
	wg.Wait()
	in.uninstall()
	v.Ops = in.opsDone.Load()
	v.Perturbs = in.perturbs.Load()
	v.ScheduleHash = fnvOffset
	for _, h := range hashes {
		v.ScheduleHash = fnv1a(v.ScheduleHash, h)
	}
	for tid, n := range dialFails {
		if n > 0 {
			v.failf("tid %d: %d chaos connections failed to dial", tid, n)
		}
	}

	// Verify phase: the server must still serve a clean client, and the
	// drain report must balance.
	cl, err := kvstore.Dial(addr,
		kvstore.WithRetries(3),
		kvstore.WithRetryBudget(5*time.Second),
		kvstore.WithReadTimeout(30*time.Second),
	)
	if err != nil {
		v.failf("clean client dial after chaos: %v", err)
	} else {
		for k := uint64(1); k <= 16; k++ {
			if _, err := cl.Put(context.Background(), k, k*k); err != nil {
				v.failf("post-chaos put(%d): %v", k, err)
				break
			}
			if val, found, err := cl.Get(context.Background(), k); err != nil || !found || val != k*k {
				v.failf("post-chaos get(%d) = (%d, %v, %v), want (%d, true, nil)", k, val, found, err, k*k)
				break
			}
		}
		cl.SendDrain()
		if err := cl.Flush(); err != nil {
			v.failf("drain flush: %v", err)
		} else if rep, err := cl.RecvDrain(); err != nil {
			v.failf("drain: %v", err)
		} else {
			v.Baseline = rep.Baseline
			v.Arena.Live = rep.Live
			v.Scheme.RetiredNotFreed = rep.RetiredNotFreed
			v.Reclaiming = rep.Scheme != "none"
			if !rep.LeakOK {
				v.failf("drain report: scheme=%s live=%d baseline=%d pending=%d deleted=%d — leak check failed",
					rep.Scheme, rep.Live, rep.Baseline, rep.RetiredNotFreed, rep.Deleted)
			}
		}
		cl.Close()
	}
	srv.Shutdown()
	if err := <-served; err != nil {
		v.failf("serve: %v", err)
	}
	return v
}

// chaosConn runs one misbehaving connection. Returns false only when the
// dial itself failed; protocol errors afterwards are the point.
func chaosConn(addr string, fate uint64, rng *pcg, h *uint64) bool {
	if fate == 3 {
		// Partial frame: open a raw connection, write a truncated PUT
		// frame (length prefix promises 17 bytes, deliver 5), hang up.
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return false
		}
		var frame [9]byte
		binary.LittleEndian.PutUint32(frame[0:4], 17)
		frame[4] = kvstore.OpPut
		c.Write(frame[:5])
		*h = fnv1a(*h, 17)
		c.Close()
		return true
	}
	cl, err := kvstore.Dial(addr,
		kvstore.WithRetries(2),
		kvstore.WithRetryBackoff(10*time.Millisecond),
		kvstore.WithRetryBudget(2*time.Second),
		kvstore.WithReadTimeout(30*time.Second),
		kvstore.WithPipelineDepth(64),
	)
	if err != nil {
		return false
	}
	defer cl.Close()
	nops := int(rng.next()%48) + 8
	kinds := make([]byte, nops)
	for i := 0; i < nops; i++ {
		x := rng.next()
		key := x%chaosKeys + kvstore.MinKey
		switch x >> 62 {
		case 0, 1:
			cl.SendPut(key, x>>8)
			kinds[i] = kvstore.OpPut
		case 2:
			cl.SendGet(key)
			kinds[i] = kvstore.OpGet
		default:
			cl.SendDel(key)
			kinds[i] = kvstore.OpDel
		}
		*h = fnv1a(*h, uint64(kinds[i]), key)
	}
	switch fate {
	case 0: // clean: flush, read every response, close
		if cl.Flush() != nil {
			return true
		}
		recvN(cl, kinds, nops)
	case 1: // drop mid-pipeline: read half the responses, vanish
		if cl.Flush() != nil {
			return true
		}
		recvN(cl, kinds, nops/2)
	case 2: // abort: buffered requests never flushed, connection dies
	case 4: // slow reader: drain one response per scheduler round
		if cl.Flush() != nil {
			return true
		}
		for i := 0; i < nops; i++ {
			recvN(cl, kinds[i:], 1)
			runtime.Gosched()
		}
	}
	return true
}

func recvN(cl *kvstore.Client, kinds []byte, n int) {
	for i := 0; i < n && i < len(kinds); i++ {
		var err error
		switch kinds[i] {
		case kvstore.OpPut:
			_, err = cl.RecvPut()
		case kvstore.OpGet:
			_, _, err = cl.RecvGet()
		default:
			_, err = cl.RecvDel()
		}
		if err != nil {
			return
		}
	}
}
