package torture

import (
	"testing"
)

// smokeCfg keeps in-tree runs fast; cmd/orctorture is the heavy driver.
func smokeCfg(seed uint64) Config {
	return Config{Seed: seed, Threads: 4, OpsPerThread: 800, Keys: 256, Stalls: 1}
}

// TestScheduleDeterminism proves the acceptance condition that the same
// seed yields the same op schedules: two runs of the same (subject, seed,
// config) must report identical ScheduleHash values, and a different seed
// must diverge. Thread interleaving differs between runs — only the
// schedules are deterministic — so verdict stats are not compared.
func TestScheduleDeterminism(t *testing.T) {
	for _, sub := range []Subject{
		{Name: "michael-orc", Kind: "set"},
		{Name: "list-hp", Kind: "set"},
		{Name: "ms-ebr", Kind: "queue"},
		{Name: "lcrq-orc", Kind: "queue"},
	} {
		a := Run(sub, smokeCfg(42))
		b := Run(sub, smokeCfg(42))
		if a.ScheduleHash != b.ScheduleHash {
			t.Errorf("%s: same seed, different schedule hash: %016x vs %016x",
				sub.Name, a.ScheduleHash, b.ScheduleHash)
		}
		c := Run(sub, smokeCfg(43))
		if c.ScheduleHash == a.ScheduleHash {
			t.Errorf("%s: seeds 42 and 43 produced the same schedule hash %016x",
				sub.Name, a.ScheduleHash)
		}
		for _, v := range []*Verdict{a, b, c} {
			if !v.Passed() {
				t.Errorf("%s seed=%d: %v", sub.Name, v.Seed, v.Failures)
			}
		}
	}
}

// TestStallsTaken checks the injector actually parks stalled readers:
// a run with Stalls=1 on a protection-heavy subject must record parks.
func TestStallsTaken(t *testing.T) {
	cfg := smokeCfg(7)
	cfg.OpsPerThread = 2000
	v := RunSet("list-hp", cfg)
	if !v.Passed() {
		t.Fatalf("list-hp: %v", v.Failures)
	}
	if v.StallsTaken == 0 {
		t.Errorf("expected stalled-reader parks, injector took none (protects never hit StallEvery?)")
	}
}

// TestSmokeRepresentatives runs one subject per scheme family so the CI
// smoke exercises every reclamation path without the full 49-subject
// sweep. cmd/orctorture -subjects all covers the rest.
func TestSmokeRepresentatives(t *testing.T) {
	subs := []Subject{
		{Name: "michael-orc", Kind: "set"}, // OrcGC list
		{Name: "tbkp-orc", Kind: "set"},    // wait-free helping + descriptors
		{Name: "list-hp", Kind: "set"},     // hazard pointers
		{Name: "list-ebr", Kind: "set"},    // epochs
		{Name: "list-he", Kind: "set"},     // hazard eras
		{Name: "list-ibr", Kind: "set"},    // interval-based
		{Name: "list-none", Kind: "set"},   // leak baseline conservation
		{Name: "hsskip-orc", Kind: "set"},  // multi-level links
		{Name: "ms-orc", Kind: "queue"},    // queue under OrcGC
		{Name: "ms-hp", Kind: "queue"},     // queue under hazard pointers
		{Name: "lcrq-orc", Kind: "queue"},  // ring segments
		{Name: "kp-orc", Kind: "queue"},    // wait-free queue descriptors
	}
	for _, sub := range subs {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			t.Parallel() // hookMu serializes actual runs; this just queues
			v := Run(sub, smokeCfg(11))
			if !v.Passed() {
				t.Errorf("seed=%d: %v", v.Seed, v.Failures)
			}
			if v.Arena.Faults != 0 {
				t.Errorf("arena faults: %d", v.Arena.Faults)
			}
		})
	}
}

// TestScanTortureSmoke runs the scheme-direct scan/elision subject for
// every manual scheme: stalled readers park inside the elided protection
// branch, so the untouched published slot is the only thing keeping
// their object alive while writers churn the scan engine.
func TestScanTortureSmoke(t *testing.T) {
	for _, scheme := range scanSchemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel() // hookMu serializes actual runs; this just queues
			v := RunScanScheme(scheme, smokeCfg(23))
			if !v.Passed() {
				t.Errorf("seed=%d: %v", v.Seed, v.Failures)
			}
			if v.Scan.Elisions == 0 {
				t.Error("no elisions recorded")
			}
			if v.StallsTaken == 0 {
				t.Error("injector parked no readers")
			}
		})
	}
	// Determinism: same seed, same schedule hash.
	a := RunScanScheme("hp", smokeCfg(23))
	b := RunScanScheme("hp", smokeCfg(23))
	if a.ScheduleHash != b.ScheduleHash {
		t.Errorf("scan-hp schedule hash not deterministic: %016x vs %016x",
			a.ScheduleHash, b.ScheduleHash)
	}
}

// TestKVChaosSmoke runs the connection-chaos subject against the OrcGC
// store and the hazard-pointer store.
func TestKVChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos subject skipped in -short")
	}
	for _, scheme := range []string{"orcgc", "hp"} {
		cfg := smokeCfg(19)
		cfg.OpsPerThread = 512
		v := RunKV(scheme, cfg)
		if !v.Passed() {
			t.Errorf("kv-%s seed=%d: %v", scheme, v.Seed, v.Failures)
		}
	}
}

// TestClusterFailoverSmoke runs the proxy failover subject: three
// backends on different schemes, one killed and restarted mid-run, with
// the shadow models proving no acked write was lost at R=2.
func TestClusterFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster failover subject skipped in -short")
	}
	cfg := smokeCfg(31)
	cfg.OpsPerThread = 1500
	v := RunCluster(cfg)
	if !v.Passed() {
		t.Fatalf("cluster-failover seed=%d: %v", v.Seed, v.Failures)
	}
	if v.Cluster["routed"] == 0 {
		t.Error("proxy routed no ops")
	}
	if v.Cluster["breaker_trips"] == 0 {
		t.Error("victim kill never tripped the breaker")
	}
}

// TestResolve exercises the subject-spec parser.
func TestResolve(t *testing.T) {
	all, err := Resolve("all")
	if err != nil || len(all) < 40 {
		t.Fatalf("Resolve(all) = %d subjects, err %v", len(all), err)
	}
	two, err := Resolve("ms-orc, tbkp-orc")
	if err != nil || len(two) != 2 || two[0].Kind != "queue" || two[1].Kind != "set" {
		t.Fatalf("Resolve two = %+v, err %v", two, err)
	}
	if _, err := Resolve("no-such-subject"); err == nil {
		t.Fatal("Resolve accepted an unknown subject")
	}
}

// TestOverloadSmoke runs the admission-control overload subject: 3×
// capacity in budget-carrying connections against a 3-slot/4-waiter
// server, with strict shadows proving refused writes never execute and
// the wire-level refusal ledgers agreeing exactly.
func TestOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("overload subject skipped in -short")
	}
	cfg := smokeCfg(47)
	cfg.OpsPerThread = 600
	v := RunOverload(cfg)
	if !v.Passed() {
		t.Fatalf("kv-overload seed=%d: %v", v.Seed, v.Failures)
	}
	if v.Cluster["shed_total"] == 0 {
		t.Error("overload run shed nothing")
	}
	if v.Cluster["completed"] == 0 {
		t.Error("overload run completed nothing")
	}
	// Determinism: same seed, same schedule hash.
	b := RunOverload(cfg)
	if v.ScheduleHash != b.ScheduleHash {
		t.Errorf("overload schedule hash not deterministic: %016x vs %016x",
			v.ScheduleHash, b.ScheduleHash)
	}
}
