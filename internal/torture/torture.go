// Package torture is the deterministic, seeded torture harness: it runs
// every reclamation scheme × data-structure pairing from the bench
// registry under injected adversity — stalled readers parked inside the
// protection loop while holding published hazard/orc references,
// randomized op mixes checked against per-thread shadow models, and
// forced scheduler perturbation at the rt.Step injection points in the
// arena and reclamation hot paths — and ends every run with a verdict
// ledger: zero arena faults in Count mode, Live back at the baseline
// after a drain for reclaiming schemes, retired == freed + pending, and
// shadow-model conservation.
//
// Runs are seeded: the op schedule of every thread is a pure function of
// (seed, tid, config), witnessed by ScheduleHash, so a failing seed
// reproduces the same schedules (thread interleaving remains up to the
// scheduler — the adversity is real concurrency, not replay).
package torture

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/bench"
	"repro/internal/reclaim"
	"repro/internal/rt"
)

// Config parameterizes one torture run.
type Config struct {
	Seed         uint64
	Threads      int    // worker goroutines; 0 → 4 (capped at 64)
	OpsPerThread uint64 // ops each worker performs; 0 → 5000
	Keys         uint64 // set key-space size; 0 → 512
	InsertPct    int    // set mix; 0,0 → 35/35/30 insert/remove/contains
	RemovePct    int
	Stalls       int    // tids < Stalls park inside the protection loop
	StallEvery   uint64 // park every Nth protect of a stalled tid; 0 → 256
	StallHold    uint64 // global ops that must pass while parked; 0 → 2000
	PerturbMask  uint64 // Gosched when stepCount&mask==0; 0 → 63
}

func (c *Config) defaults() {
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Threads > 64 {
		c.Threads = 64 // queue value encoding reserves 24 bits for seq
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 5000
	}
	if c.OpsPerThread > 1<<24-1 {
		c.OpsPerThread = 1<<24 - 1
	}
	if c.Keys == 0 {
		c.Keys = 512
	}
	if c.InsertPct == 0 && c.RemovePct == 0 {
		c.InsertPct, c.RemovePct = 35, 35
	}
	if c.Stalls < 0 || c.Stalls > c.Threads {
		c.Stalls = 0
	}
	if c.StallEvery == 0 {
		c.StallEvery = 256
	}
	if c.StallHold == 0 {
		c.StallHold = 2000
	}
	if c.PerturbMask == 0 {
		c.PerturbMask = 63
	}
}

// Verdict is the ledger one run ends with. A run passes iff Failures is
// empty; every acceptance condition that does not hold appends one line.
type Verdict struct {
	Subject      string
	Kind         string // "set", "queue", "kv", "scan", "cluster", or "overload"
	Seed         uint64
	Threads      int
	Ops          uint64 // ops actually performed by workers
	ScheduleHash uint64 // FNV over every thread's op schedule
	Baseline     int64  // arena Live after construction
	Arena        arena.Stats
	Scheme       reclaim.Stats
	Scan         reclaim.ScanStats // zero-valued when the subject has no scan path
	Reclaiming   bool
	StallsTaken  uint64 // protect-loop parks actually executed
	Perturbs     uint64 // forced Gosched calls at injection points
	// Cluster holds proxy-level counters (routed ops, hedges, breaker
	// trips, rebalance keys moved) for the cluster-failover subject and
	// the admission ledger (sheds, expiries, max retire backlog) for the
	// overload subject; nil for other subjects.
	Cluster  map[string]int64
	Failures []string
}

// Passed reports whether every ledger condition held.
func (v *Verdict) Passed() bool { return len(v.Failures) == 0 }

func (v *Verdict) failf(format string, args ...any) {
	v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
}

// String renders the one-line verdict used by cmd/orctorture.
func (v *Verdict) String() string {
	status := "ok  "
	if !v.Passed() {
		status = "FAIL"
	}
	line := fmt.Sprintf("%s %-12s %-5s ops=%-7d hash=%016x live=%d base=%d faults=%d retired=%d freed=%d pending=%d stalls=%d perturbs=%d elide=%d",
		status, v.Subject, v.Kind, v.Ops, v.ScheduleHash, v.Arena.Live, v.Baseline,
		v.Arena.Faults, v.Scheme.Retired, v.Scheme.Freed, v.Scheme.RetiredNotFreed,
		v.StallsTaken, v.Perturbs, v.Scan.Elisions)
	if v.Cluster != nil {
		if _, ok := v.Cluster["shed_total"]; ok {
			line += fmt.Sprintf(" shed=%d expired=%d completed=%d maxbacklog=%d",
				v.Cluster["shed_total"], v.Cluster["deadline_exceeded_total"],
				v.Cluster["completed"], v.Cluster["max_backlog"])
		} else {
			line += fmt.Sprintf(" routed=%d hedges=%d trips=%d moved=%d",
				v.Cluster["routed"], v.Cluster["hedges_fired"], v.Cluster["breaker_trips"], v.Cluster["keys_moved"])
		}
	}
	return line
}

// hookMu serializes torture runs: the rt hook and the fault mode are
// process-global, so two concurrent runs would see each other's
// injections.
var hookMu sync.Mutex

// mix64 is splitmix64's finalizer — seeds per-thread streams so that
// nearby (seed, tid) pairs diverge immediately.
func mix64(seed, tid uint64) uint64 {
	x := seed + (tid+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

type pcg struct{ s uint64 }

func (r *pcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	x := r.s
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

const fnvOffset = uint64(14695981039346656037)

func fnv1a(h uint64, words ...uint64) uint64 {
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= w & 0xFF
			h *= 1099511628211
			w >>= 8
		}
	}
	return h
}

// injector owns the rt hook for one run: scheduler perturbation at every
// injection point, plus reader stalls parked inside the protection loop
// of designated tids. The park spins until StallHold further ops have
// completed globally (holding the published protection the whole time)
// or the run winds down.
type injector struct {
	cfg      Config
	opsDone  atomic.Uint64
	stallOff atomic.Bool
	stalls   atomic.Uint64
	perturbs atomic.Uint64
	steps    atomic.Uint64
	protects []atomic.Uint64 // per stalled tid: protect calls seen
}

func newInjector(cfg Config) *injector {
	return &injector{cfg: cfg, protects: make([]atomic.Uint64, cfg.Stalls)}
}

func (in *injector) hook(site rt.Site, tid int) {
	if site == rt.SiteProtect && tid >= 0 && tid < in.cfg.Stalls && !in.stallOff.Load() {
		if in.protects[tid].Add(1)%in.cfg.StallEvery == 0 {
			// Park here: the caller's hazard pointer / era / orc scratch
			// slot is published and validated, so the object it protects
			// must survive everything retired meanwhile.
			in.stalls.Add(1)
			target := in.opsDone.Load() + in.cfg.StallHold
			for spins := 0; in.opsDone.Load() < target && !in.stallOff.Load(); spins++ {
				runtime.Gosched()
				if spins > 1<<22 { // hard cap: never wedge the harness
					break
				}
			}
		}
	}
	if in.steps.Add(1)&in.cfg.PerturbMask == 0 {
		in.perturbs.Add(1)
		runtime.Gosched()
	}
}

func (in *injector) install()   { rt.SetHook(in.hook) }
func (in *injector) uninstall() { rt.SetHook(nil); in.stallOff.Store(true) }

// auditStats fills the ledger's accounting section and appends every
// violated condition: zero faults, retired == freed + pending, and — for
// reclaiming subjects after a full drain — Live back at baseline with an
// empty pending list.
func (v *Verdict) auditStats(ad bench.Admin) {
	snap := ad.Stats()
	v.Arena = snap.Arena()
	v.Scheme = snap.Scheme()
	v.Reclaiming = ad.Reclaiming()
	if scan, ok := snap.Scan(); ok {
		v.Scan = scan
		// Clamp invariant: wherever the adaptive policy left the retire
		// threshold, it must sit inside the engine's clamps.
		if v.Scan.MaxThreshold > 0 &&
			(v.Scan.Threshold < v.Scan.MinThreshold || v.Scan.Threshold > v.Scan.MaxThreshold) {
			v.failf("scan threshold %d outside clamps [%d, %d]",
				v.Scan.Threshold, v.Scan.MinThreshold, v.Scan.MaxThreshold)
		}
	}
	if v.Arena.Faults != 0 {
		v.failf("arena recorded %d stale-dereference faults (want 0)", v.Arena.Faults)
	}
	if ad.ExactPending() {
		if got, want := v.Scheme.RetiredNotFreed, int64(v.Scheme.Retired)-int64(v.Scheme.Freed); got != want {
			v.failf("scheme accounting broken: retired(%d) - freed(%d) = %d, but pending = %d",
				v.Scheme.Retired, v.Scheme.Freed, want, got)
		}
	}
	if int64(v.Arena.Allocs)-int64(v.Arena.Frees) != v.Arena.Live {
		v.failf("arena accounting broken: allocs(%d) - frees(%d) != live(%d)",
			v.Arena.Allocs, v.Arena.Frees, v.Arena.Live)
	}
	if ad.Reclaiming() {
		if v.Arena.Live != v.Baseline {
			v.failf("leak: live=%d after drain, baseline=%d (delta %+d, pending=%d)",
				v.Arena.Live, v.Baseline, v.Arena.Live-v.Baseline, v.Scheme.RetiredNotFreed)
		}
		if ad.ExactPending() && v.Scheme.RetiredNotFreed != 0 {
			v.failf("quiesce left %d retired objects pending", v.Scheme.RetiredNotFreed)
		}
	} else {
		// Leaking subjects still satisfy conservation: everything missing
		// from the arena ledger is parked on the scheme's leak list.
		if v.Scheme.Retired > 0 && v.Arena.Live-v.Baseline < v.Scheme.RetiredNotFreed {
			v.failf("leak conservation broken: live-baseline=%d < pending=%d",
				v.Arena.Live-v.Baseline, v.Scheme.RetiredNotFreed)
		}
	}
}
