package torture

import (
	"fmt"
	"sync"

	"repro/internal/arena"
	"repro/internal/bench"
)

// Set torture partitions the key space by ownership: tid mutates only
// keys congruent to tid modulo Threads, so a lock-free per-thread shadow
// map predicts the exact return value of every Insert and Remove (and of
// Contains on owned keys). Foreign keys are still read concurrently —
// the reclamation stress — their results just aren't predictable.

// ownedKey maps (tid, draw) into tid's key partition, 1-based so key 0
// (a sentinel in several structures) is never used.
func ownedKey(tid, threads int, draw, keysPer uint64) uint64 {
	return uint64(tid) + (draw%keysPer)*uint64(threads) + 1
}

// RunSet tortures one set subject from the bench registry.
func RunSet(name string, cfg Config) *Verdict {
	cfg.defaults()
	hookMu.Lock()
	defer hookMu.Unlock()

	v := &Verdict{Subject: name, Kind: "set", Seed: cfg.Seed, Threads: cfg.Threads}
	inst := bench.NewSet(name, cfg.Threads)
	ad := inst.Admin
	ad.Faults().SetMode(arena.Count) // survive and ledger faults, don't crash
	v.Baseline = ad.Stats().Arena().Live

	in := newInjector(cfg)
	in.install()

	keysPer := cfg.Keys/uint64(cfg.Threads) + 1
	shadows := make([]map[uint64]bool, cfg.Threads)
	hashes := make([]uint64, cfg.Threads)
	var mismatches sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := pcg{s: mix64(cfg.Seed, uint64(tid))}
			shadow := make(map[uint64]bool, keysPer)
			h := fnvOffset
			var fails []string
			for i := uint64(0); i < cfg.OpsPerThread; i++ {
				x := rng.next()
				p := int((x >> 48) % 100)
				switch {
				case p < cfg.InsertPct:
					k := ownedKey(tid, cfg.Threads, x, keysPer)
					h = fnv1a(h, 1, k)
					if got, want := inst.Set.Insert(tid, k), !shadow[k]; got != want && len(fails) < 4 {
						fails = append(fails, sprintfOp("insert", tid, k, got, want))
					}
					shadow[k] = true
				case p < cfg.InsertPct+cfg.RemovePct:
					k := ownedKey(tid, cfg.Threads, x, keysPer)
					h = fnv1a(h, 2, k)
					if got, want := inst.Set.Remove(tid, k), shadow[k]; got != want && len(fails) < 4 {
						fails = append(fails, sprintfOp("remove", tid, k, got, want))
					}
					delete(shadow, k)
				default:
					k := x%(keysPer*uint64(cfg.Threads)) + 1
					h = fnv1a(h, 3, k)
					got := inst.Set.Contains(tid, k)
					if int((k-1)%uint64(cfg.Threads)) == tid {
						if want := shadow[k]; got != want && len(fails) < 4 {
							fails = append(fails, sprintfOp("contains", tid, k, got, want))
						}
					}
				}
				in.opsDone.Add(1)
			}
			shadows[tid] = shadow
			hashes[tid] = h
			in.stallOff.Store(true) // first finisher releases parked readers
			if len(fails) > 0 {
				mismatches.Lock()
				v.Failures = append(v.Failures, fails...)
				mismatches.Unlock()
			}
		}(w)
	}
	wg.Wait()
	in.uninstall()

	v.Ops = in.opsDone.Load()
	v.StallsTaken = in.stalls.Load()
	v.Perturbs = in.perturbs.Load()
	v.ScheduleHash = fnvOffset
	for _, h := range hashes {
		v.ScheduleHash = fnv1a(v.ScheduleHash, h)
	}

	// Quiescent verify: every shadow-live key must be present; then empty
	// the structure and audit the reclamation ledger.
	for tid, shadow := range shadows {
		for k := range shadow {
			if !inst.Set.Contains(0, k) {
				v.failf("shadow conservation: key %d (owner tid %d) live in shadow, absent in set", k, tid)
			}
			if !inst.Set.Remove(0, k) {
				v.failf("drain: remove of shadow-live key %d returned false", k)
			}
		}
	}
	// Spot-check absent keys: everything the shadows say is dead must be.
	for tid := 0; tid < cfg.Threads; tid++ {
		for j := uint64(0); j < keysPer; j++ {
			k := uint64(tid) + j*uint64(cfg.Threads) + 1
			if !shadows[tid][k] && inst.Set.Contains(0, k) {
				v.failf("shadow conservation: key %d dead in shadow, present in set", k)
			}
		}
	}
	ad.Quiesce()
	v.auditStats(ad)
	return v
}

func sprintfOp(op string, tid int, k uint64, got, want bool) string {
	return fmt.Sprintf("shadow mismatch: %s(tid=%d, key=%d) got %v, want %v", op, tid, k, got, want)
}

// Queue torture tags every enqueued value with its producer and sequence
// number (tid<<24 | seq — LCRQ stores 32-bit items, 0xFFFFFFFF
// reserved), so the post-run audit can prove exactly-once delivery:
// every value enqueued is dequeued or drained exactly once, nothing
// alien appears, and nothing vanishes.

// RunQueue tortures one queue subject from the bench registry.
func RunQueue(name string, cfg Config) *Verdict {
	cfg.defaults()
	hookMu.Lock()
	defer hookMu.Unlock()

	v := &Verdict{Subject: name, Kind: "queue", Seed: cfg.Seed, Threads: cfg.Threads}
	inst := bench.NewQueue(name, cfg.Threads)
	ad := inst.Admin
	ad.Faults().SetMode(arena.Count)
	v.Baseline = ad.Stats().Arena().Live

	in := newInjector(cfg)
	in.install()

	enqCounts := make([]uint64, cfg.Threads)
	dequeued := make([][]uint64, cfg.Threads)
	hashes := make([]uint64, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := pcg{s: mix64(cfg.Seed, uint64(tid))}
			h := fnvOffset
			seq := uint64(0)
			var got []uint64
			for i := uint64(0); i < cfg.OpsPerThread; i++ {
				if rng.next()&1 == 0 {
					val := uint64(tid)<<24 | seq
					seq++
					h = fnv1a(h, 1, val)
					inst.Queue.Enqueue(tid, val)
				} else {
					h = fnv1a(h, 2)
					if val, ok := inst.Queue.Dequeue(tid); ok {
						got = append(got, val)
					}
				}
				in.opsDone.Add(1)
			}
			enqCounts[tid] = seq
			dequeued[tid] = got
			hashes[tid] = h
			in.stallOff.Store(true)
		}(w)
	}
	wg.Wait()
	in.uninstall()

	v.Ops = in.opsDone.Load()
	v.StallsTaken = in.stalls.Load()
	v.Perturbs = in.perturbs.Load()
	v.ScheduleHash = fnvOffset
	for _, h := range hashes {
		v.ScheduleHash = fnv1a(v.ScheduleHash, h)
	}

	// Drain the remainder single-threaded, then prove exactly-once.
	var drained []uint64
	for {
		val, ok := inst.Queue.Dequeue(0)
		if !ok {
			break
		}
		drained = append(drained, val)
	}
	if inst.Drain != nil {
		// Release structural roots (sentinels, descriptor arrays); the
		// queue is already empty so no values are discarded. When every
		// root is dropped, the post-quiesce expectation for a reclaiming
		// subject is an empty arena, not the construction baseline.
		inst.Drain(0)
		if inst.DrainDropsRoots {
			v.Baseline = 0
		}
	}
	seen := make(map[uint64]int)
	for _, per := range dequeued {
		for _, val := range per {
			seen[val]++
		}
	}
	for _, val := range drained {
		seen[val]++
	}
	var totalEnq uint64
	for tid, n := range enqCounts {
		totalEnq += n
		for s := uint64(0); s < n; s++ {
			val := uint64(tid)<<24 | s
			switch seen[val] {
			case 1:
				delete(seen, val)
			case 0:
				v.failf("lost value: tid=%d seq=%d enqueued, never dequeued", tid, s)
			default:
				v.failf("duplicated value: tid=%d seq=%d dequeued %d times", tid, s, seen[val])
				delete(seen, val)
			}
			if len(v.Failures) > 8 {
				v.failf("… further value failures suppressed")
				goto audit
			}
		}
	}
	for val := range seen {
		v.failf("alien value dequeued: %#x never enqueued", val)
		if len(v.Failures) > 8 {
			break
		}
	}
audit:
	ad.Quiesce()
	v.auditStats(ad)
	return v
}
