package torture

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/kvstore"
)

// The cluster-failover subject tortures the orccluster proxy's central
// promise — no acked write is ever lost at R=2 — by killing and
// restarting a backend in the middle of a live workload. Three
// in-process kvservers run three different reclamation schemes behind
// one proxy; seeded workers drive disjoint key partitions through real
// TCP connections, each checking every GET against its shadow model.
// Mid-run the seed-chosen victim's server is shut down, traffic runs
// degraded, then a *fresh empty* store is restarted on the same address
// and must resync before re-entering the read path. The run ends with
// the shadow verification, then per-backend DrainAndCheck leak verdicts
// — including the corpse of the original victim store, whose arenas
// must also balance.

// clusterSchemes are the three backends' reclamation schemes: the
// paper's scheme plus the two classic manual baselines.
var clusterSchemes = [3]string{"orcgc", "hp", "ebr"}

type clusterBackend struct {
	scheme string
	addr   string
	st     *kvstore.Store
	srv    *kvstore.Server
	done   chan error
}

func startClusterKV(scheme, addr string) (*clusterBackend, error) {
	st, err := kvstore.New(kvstore.Config{Scheme: scheme, Shards: 4, Buckets: 256, MaxThreads: 64})
	if err != nil {
		return nil, err
	}
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i == 100 {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond) // the just-killed listener may linger
	}
	b := &clusterBackend{scheme: scheme, addr: ln.Addr().String(), st: st, srv: kvstore.NewServer(st), done: make(chan error, 1)}
	go func() { b.done <- b.srv.Serve(ln) }()
	return b, nil
}

func (b *clusterBackend) shutdown() error {
	b.srv.Shutdown()
	return <-b.done
}

// RunCluster tortures the proxy under a mid-run backend kill/restart.
func RunCluster(cfg Config) *Verdict {
	cfg.defaults()
	cfg.Stalls = 0 // server tids park on opsDone, which stops once workers block on them
	hookMu.Lock()
	defer hookMu.Unlock()

	v := &Verdict{Subject: "cluster-failover", Kind: "cluster", Seed: cfg.Seed, Threads: cfg.Threads}

	var backs [3]*clusterBackend
	for i, scheme := range clusterSchemes {
		b, err := startClusterKV(scheme, "127.0.0.1:0")
		if err != nil {
			v.failf("backend %s: %v", scheme, err)
			return v
		}
		backs[i] = b
	}
	addrs := []string{backs[0].addr, backs[1].addr, backs[2].addr}
	p := cluster.New(cluster.Config{Backends: addrs, Replicas: 2, Lanes: 2, Depth: 64})
	if err := p.WaitReady(10 * time.Second); err != nil {
		v.failf("proxy: %v", err)
		return v
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		v.failf("proxy listen: %v", err)
		return v
	}
	served := make(chan error, 1)
	go func() { served <- p.Serve(pln) }()
	proxyAddr := pln.Addr().String()

	in := newInjector(cfg)
	in.install()

	total := uint64(cfg.Threads) * cfg.OpsPerThread
	victim := int(cfg.Seed % 3)
	var corpse *clusterBackend // the victim's original store, for its own leak verdict

	// Chaos controller: kill the victim around 30% of the run, restart
	// it empty on the same address around 50%, and require the proxy to
	// resync it back to healthy.
	chaosDone := make(chan error, 1)
	workersDone := make(chan struct{})
	go func() {
		waitOps := func(target uint64) {
			for in.opsDone.Load() < target {
				select {
				case <-workersDone:
					return
				default:
					time.Sleep(time.Millisecond)
				}
			}
		}
		waitOps(total * 3 / 10)
		corpse = backs[victim]
		if err := corpse.shutdown(); err != nil {
			chaosDone <- fmt.Errorf("victim shutdown: %w", err)
			return
		}
		waitOps(total * 5 / 10)
		nb, err := startClusterKV(corpse.scheme, corpse.addr)
		if err != nil {
			chaosDone <- fmt.Errorf("victim restart: %w", err)
			return
		}
		backs[victim] = nb
		// The restarted (empty) store must resync and rejoin the read
		// path while the workload is still running.
		if err := p.WaitReady(60 * time.Second); err != nil {
			chaosDone <- fmt.Errorf("victim never rejoined: %w", err)
			return
		}
		chaosDone <- nil
	}()

	// Workers: disjoint key partitions, per-key shadow models, every GET
	// verified. An op whose response errored is "maybe applied": its key
	// drops out of strict checking until a later successful read
	// re-anchors the shadow (sound because each key has one owner and
	// read-eligible replicas always agree on acked state).
	type worker struct {
		hash   uint64
		errs   uint64
		ops    uint64
		lost   []string
		shadow map[uint64]uint64
		maybe  map[uint64]bool
	}
	workers := make([]worker, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			me := &workers[tid]
			me.shadow = make(map[uint64]uint64, cfg.Keys)
			me.maybe = make(map[uint64]bool)
			base := kvstore.MinKey + uint64(tid)*cfg.Keys
			rng := pcg{s: mix64(cfg.Seed, uint64(tid)+0xC1A5)}
			cl, err := kvstore.Dial(proxyAddr,
				kvstore.WithReadTimeout(30*time.Second), kvstore.WithRetries(3),
			)
			if err != nil {
				me.lost = append(me.lost, fmt.Sprintf("tid %d: dial: %v", tid, err))
				return
			}
			defer cl.Close()
			h := fnvOffset
			for i := uint64(0); i < cfg.OpsPerThread; i++ {
				x := rng.next()
				key := base + x%cfg.Keys
				switch {
				case x>>61 < 3: // ~37.5% put
					val := mix64(x, key)
					h = fnv1a(h, uint64(kvstore.OpPut), key)
					if _, err := cl.Put(context.Background(), key, val); err != nil {
						me.errs++
						me.maybe[key] = true
					} else {
						me.shadow[key] = val
						delete(me.maybe, key)
					}
				case x>>61 < 5: // ~25% del
					h = fnv1a(h, uint64(kvstore.OpDel), key)
					if _, err := cl.Del(context.Background(), key); err != nil {
						me.errs++
						me.maybe[key] = true
					} else {
						delete(me.shadow, key)
						delete(me.maybe, key)
					}
				case x>>61 == 7 && x&63 == 0: // rare scan, failover exercise only
					h = fnv1a(h, uint64(kvstore.OpScan), key)
					if _, err := cl.Scan(context.Background(), key, 16); err != nil {
						me.errs++
					}
				default: // get, verified against the shadow
					h = fnv1a(h, uint64(kvstore.OpGet), key)
					val, found, err := cl.Get(context.Background(), key)
					if err != nil {
						me.errs++
						break
					}
					want, wantFound := me.shadow[key]
					if me.maybe[key] {
						// Ambiguous op outstanding: accept what the
						// cluster says and re-anchor the shadow on it.
						if found {
							me.shadow[key] = val
						} else {
							delete(me.shadow, key)
						}
						delete(me.maybe, key)
					} else if found != wantFound || (found && val != want) {
						me.lost = append(me.lost, fmt.Sprintf(
							"tid %d op %d: get(%d) = (%d, %v), shadow (%d, %v)",
							tid, i, key, val, found, want, wantFound))
						if len(me.lost) > 8 {
							return
						}
					}
				}
				me.ops++
				in.opsDone.Add(1)
			}
			me.hash = h
		}(w)
	}
	wg.Wait()
	close(workersDone)
	if err := <-chaosDone; err != nil {
		v.failf("chaos: %v", err)
	}
	in.uninstall()

	v.ScheduleHash = fnvOffset
	var errs uint64
	for tid := range workers {
		w := &workers[tid]
		v.Ops += w.ops
		errs += w.errs
		v.ScheduleHash = fnv1a(v.ScheduleHash, w.hash)
		for _, l := range w.lost {
			v.failf("lost acked write: %s", l)
		}
	}
	v.Perturbs = in.perturbs.Load()
	if v.Ops > 0 && errs > v.Ops/100 {
		v.failf("%d of %d ops errored (>1%%) — failover is not masking single-backend loss", errs, v.Ops)
	}

	// Final sweep: every key every worker believes acked must read back
	// through a fresh connection, after the cluster has settled.
	if cl, err := kvstore.Dial(proxyAddr, kvstore.WithReadTimeout(30*time.Second), kvstore.WithRetries(3)); err != nil {
		v.failf("verify dial: %v", err)
	} else {
		mismatches := 0
		for tid := range workers {
			w := &workers[tid]
			for key, want := range w.shadow {
				if w.maybe[key] {
					continue
				}
				val, found, err := cl.Get(context.Background(), key)
				if err != nil || !found || val != want {
					v.failf("final verify: get(%d) = (%d, %v, %v), want (%d, true)", key, val, found, err, want)
					if mismatches++; mismatches > 8 {
						break
					}
				}
			}
		}
		cl.Close()
	}

	// Proxy-level counters go to the ledger via the Admin surface.
	var ad bench.Admin = &bench.Hooks{ClusterStats: func() map[string]int64 {
		info := p.Snapshot()
		return map[string]int64{
			"routed":        int64(info.RoutedOps),
			"hedges_fired":  int64(info.HedgesFired),
			"hedge_wins":    int64(info.HedgeWins),
			"read_retries":  int64(info.ReadRetries),
			"degraded":      int64(info.DegradedWrites),
			"keys_moved":    int64(info.KeysMoved),
			"breaker_trips": breakerTrips(info),
		}
	}}
	v.Cluster = ad.Stats().Cluster()
	if v.Cluster["breaker_trips"] == 0 && corpse != nil {
		v.failf("victim was killed but the breaker never tripped")
	}

	p.Shutdown()
	if err := <-served; err != nil {
		v.failf("proxy serve: %v", err)
	}

	// Per-backend leak verdicts: the three live stores, plus the corpse
	// of the original victim — a kill/restart must not leak on either
	// side of the divide.
	check := func(tag string, b *clusterBackend, live bool) {
		if live {
			if err := b.shutdown(); err != nil {
				v.failf("%s (%s) shutdown: %v", tag, b.scheme, err)
			}
		}
		rep := b.st.DrainAndCheck(0)
		v.Baseline += rep.Baseline
		v.Arena.Live += rep.Live
		v.Scheme.RetiredNotFreed += rep.RetiredNotFreed
		if !rep.LeakOK {
			v.failf("%s (%s): leak check failed: live=%d baseline=%d pending=%d",
				tag, b.scheme, rep.Live, rep.Baseline, rep.RetiredNotFreed)
		}
	}
	for i, b := range backs {
		check(fmt.Sprintf("backend %d", i), b, true)
	}
	if corpse != nil {
		check("victim corpse", corpse, false)
	}
	v.Reclaiming = true
	return v
}

func breakerTrips(info cluster.Info) int64 {
	var n int64
	for _, nd := range info.Nodes {
		n += int64(nd.BreakerTrips)
	}
	return n
}
