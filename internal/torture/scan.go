package torture

import (
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/bench"
	"repro/internal/reclaim"
)

// Scan torture drives the reclamation schemes directly — no data
// structure in between — so the scan engine and the protection elision
// fast path take maximum pressure: every op is a protect or a
// replace-and-retire on a shared slot array, readers deliberately
// re-protect stable targets (the elided branch, where the injector's
// stalls park while the untouched slot is the only thing keeping the
// object alive), and writers churn hard enough that the adaptive
// threshold moves. The ledger adds scan-specific conditions on top of
// the usual ones: the fast path must actually have elided publishes,
// and the adaptive threshold must have respected its clamps.

type scanNode struct {
	Self uint64
}

// scanSchemes lists the schemes the scan kind covers: every manual
// scheme with a protection fast path.
func scanSchemes() []string { return []string{"hp", "ptb", "ptp", "ebr", "he", "ibr"} }

// RunScanScheme tortures one manual scheme's protection and scan paths.
func RunScanScheme(scheme string, cfg Config) *Verdict {
	cfg.defaults()
	hookMu.Lock()
	defer hookMu.Unlock()

	v := &Verdict{Subject: "scan-" + scheme, Kind: "scan", Seed: cfg.Seed, Threads: cfg.Threads}
	a := arena.New[scanNode](arena.WithFaultMode(arena.Count))
	s := reclaim.MustNew(scheme, reclaim.Env{Free: a.FreeT, Hdr: a.Header},
		reclaim.Options{MaxThreads: cfg.Threads, MaxHPs: 4})
	hooks := &bench.Hooks{
		FaultMode:   a.SetFaultMode,
		FaultHook:   a.SetFaultHook,
		ArenaStats:  a.Stats,
		SchemeStats: s.Stats,
		QuiesceFn: func() {
			for round := 0; round < 4; round++ {
				for tid := 0; tid < cfg.Threads; tid++ {
					s.ClearAll(tid)
					s.EndOp(tid)
				}
				for tid := 0; tid < cfg.Threads; tid++ {
					s.Flush(tid)
				}
			}
		},
		Reclaims:    true,
		ExactCounts: true,
	}
	if ss, ok := s.(reclaim.ScanStatser); ok {
		hooks.ScanStats = ss.ScanStats
	}
	var ad bench.Admin = hooks
	v.Baseline = ad.Stats().Arena().Live // 0: the drain empties every slot

	nslots := cfg.Keys
	if nslots == 0 {
		nslots = 256
	}
	slots := make([]atomic.Uint64, nslots)
	for i := range slots {
		h, p := a.Alloc()
		p.Self = uint64(h)
		s.OnAlloc(h)
		slots[i].Store(uint64(h))
	}

	in := newInjector(cfg)
	in.install()

	hashes := make([]uint64, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := pcg{s: mix64(cfg.Seed, uint64(tid))}
			h := fnvOffset
			hps := 4
			for i := uint64(0); i < cfg.OpsPerThread; i++ {
				x := rng.next()
				slot := x % nslots
				s.BeginOp(tid)
				if x>>60 < 6 { // ~37% writers: replace and retire
					h = fnv1a(h, 1, slot)
					nh, p := a.Alloc()
					p.Self = uint64(nh)
					s.OnAlloc(nh)
					if old := arena.Handle(slots[slot].Swap(uint64(nh))); !old.IsNil() {
						s.Retire(tid, old)
					}
				} else { // readers: protect, then re-protect the stable target
					h = fnv1a(h, 2, slot)
					idx := int(x>>16) % hps
					s.GetProtected(tid, idx, &slots[slot])
					// Back-to-back re-protect: unless a writer raced in
					// between, this takes the elided branch — and the
					// injector's stall can park right inside it.
					s.GetProtected(tid, idx, &slots[slot])
					if x&7 == 0 {
						s.BeginOp(tid) // re-announcement: EBR's elided path
					}
				}
				s.ClearAll(tid)
				s.EndOp(tid)
				in.opsDone.Add(1)
			}
			hashes[tid] = h
			in.stallOff.Store(true) // first finisher releases parked readers
		}(w)
	}
	wg.Wait()
	in.uninstall()

	v.Ops = in.opsDone.Load()
	v.StallsTaken = in.stalls.Load()
	v.Perturbs = in.perturbs.Load()
	v.ScheduleHash = fnvOffset
	for _, h := range hashes {
		v.ScheduleHash = fnv1a(v.ScheduleHash, h)
	}

	// Drain every slot single-threaded, then audit.
	for i := range slots {
		if old := arena.Handle(slots[i].Swap(0)); !old.IsNil() {
			s.Retire(0, old)
		}
	}
	ad.Quiesce()
	v.auditStats(ad)
	if v.Scan.Elisions == 0 {
		v.failf("protection fast path never elided a publish (%d ops)", v.Ops)
	}
	if scheme == "hp" || scheme == "he" || scheme == "ibr" {
		if v.Scan.Scans == 0 {
			v.failf("scan engine never ran a scan despite %d retires", v.Scheme.Retired)
		}
	}
	return v
}
