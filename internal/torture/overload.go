package torture

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/kvstore"
)

// The overload subject saturates a server whose admission control is
// deliberately tiny (3 inflight slots, 4 queue waiters) with three
// times as many budget-carrying connections as it has capacity, while
// the injector perturbs the reclamation hot paths underneath every
// admitted op. It proves the paper's robustness argument extended over
// the wire: shedding dead work keeps the retire backlog bounded, no
// acked write is ever lost, a shed or expired write provably never
// executes (strict shadow models — a refusal is a guarantee, not a
// maybe), and the two sides of the wire agree op-for-op on how much
// was refused.

// overloadBudget is the per-op execution budget the subject sends; ops
// parked in the admission queue longer than this are answered
// StatusDeadlineExceeded instead of executing.
const overloadBudget = 100 * time.Millisecond

// overloadTally is one connection's client-side ledger.
type overloadTally struct {
	ok      uint64
	shed    uint64 // ErrOverloaded observed
	expired uint64 // ErrDeadlineExceeded observed
}

// RunOverload tortures the admission-control path of an orcgc store.
func RunOverload(cfg Config) *Verdict {
	cfg.defaults()
	cfg.Stalls = 0 // no workers advance opsDone here; a park would only spin
	hookMu.Lock()
	defer hookMu.Unlock()

	v := &Verdict{Subject: "kv-overload", Kind: "overload", Seed: cfg.Seed, Threads: cfg.Threads}
	st, err := kvstore.New(kvstore.Config{Scheme: "orcgc", Shards: 4, Buckets: 256, MaxThreads: 64})
	if err != nil {
		v.failf("store construction: %v", err)
		return v
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		v.failf("listen: %v", err)
		return v
	}
	srv := kvstore.NewServer(st, kvstore.WithMaxInflight(3), kvstore.WithMaxQueue(4))
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	in := newInjector(cfg)
	in.install()

	// Backlog monitor: the acceptance condition is that shedding keeps
	// the retire backlog bounded even though the server never gets a
	// quiet moment. The bound is generous — the point is that it cannot
	// grow with offered load, only with admitted load.
	const backlogBound = 1 << 17
	var maxBacklog int64
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stopMon:
				return
			case <-time.After(2 * time.Millisecond):
				if b := st.RetiredNotFreed(); b > maxBacklog {
					maxBacklog = b
				}
			}
		}
	}()

	// Writers keep strict shadow models over disjoint key ranges;
	// flooders (2 per writer) pile read pressure on so offered load is
	// 3× the 3-slot + 4-waiter capacity. Every connection pipelines
	// with explicit wire budgets and reads every response, so the
	// client-side ledger accounts for every op the server refused.
	writers := cfg.Threads
	flooders := 2 * cfg.Threads
	conns := writers + flooders
	tallies := make([]overloadTally, conns)
	hashes := make([]uint64, conns)
	shadows := make([]map[uint64]uint64, writers)
	failures := make([][]string, conns)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			shadows[tid], hashes[tid], failures[tid] =
				overloadWriter(addr, cfg, tid, &tallies[tid])
		}(w)
	}
	for f := 0; f < flooders; f++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			hashes[tid], failures[tid] = overloadFlooder(addr, cfg, tid, &tallies[tid])
		}(writers + f)
	}
	wg.Wait()
	in.uninstall()
	close(stopMon)
	monWG.Wait()

	v.Ops = uint64(conns) * cfg.OpsPerThread
	v.Perturbs = in.perturbs.Load()
	v.ScheduleHash = fnvOffset
	for _, h := range hashes {
		v.ScheduleHash = fnv1a(v.ScheduleHash, h)
	}
	for _, fs := range failures {
		for _, f := range fs {
			v.failf("%s", f)
		}
	}

	// Ledger: the two sides of the wire must agree exactly — every
	// refusal the server counted was observed by exactly one client as
	// the matching sentinel error, and vice versa.
	var ct overloadTally
	for i := range tallies {
		ct.ok += tallies[i].ok
		ct.shed += tallies[i].shed
		ct.expired += tallies[i].expired
	}
	as := srv.AdmissionStats()
	if as.Shed != ct.shed {
		v.failf("server shed_total %d != client-observed overloads %d", as.Shed, ct.shed)
	}
	if as.DeadlineExceeded != ct.expired {
		v.failf("server deadline_exceeded_total %d != client-observed expiries %d",
			as.DeadlineExceeded, ct.expired)
	}
	if ct.shed == 0 {
		v.failf("%d connections against 3 slots + 4 waiters shed nothing — admission never saturated", conns)
	}
	if ct.ok == 0 {
		v.failf("no op completed under overload — admission starved everything")
	}
	if maxBacklog > backlogBound {
		v.failf("retire backlog peaked at %d (> bound %d) under overload", maxBacklog, backlogBound)
	}
	v.Cluster = map[string]int64{
		"shed_total":              int64(as.Shed),
		"deadline_exceeded_total": int64(as.DeadlineExceeded),
		"client_overloaded":       int64(ct.shed),
		"client_expired":          int64(ct.expired),
		"completed":               int64(ct.ok),
		"max_backlog":             maxBacklog,
	}

	// Verify phase: an unbudgeted clean client replays every writer's
	// final shadow — an acked write survived, a refused write left no
	// trace — then drains the store to its leak baseline.
	cl, err := kvstore.Dial(addr,
		kvstore.WithRetries(3),
		kvstore.WithRetryBudget(5*time.Second),
		kvstore.WithReadTimeout(30*time.Second),
	)
	if err != nil {
		v.failf("clean client dial after overload: %v", err)
	} else {
		for tid, shadow := range shadows {
			if shadow == nil {
				continue
			}
			base := overloadBase(tid)
			mismatches := 0
			for k := base; k < base+overloadKeys && mismatches < 4; k++ {
				cl.SendGet(k)
				if err := cl.Flush(); err != nil {
					v.failf("verify flush: %v", err)
					break
				}
				got, found, err := cl.RecvGet()
				if err != nil {
					v.failf("verify get(%d): %v", k, err)
					break
				}
				want, has := shadow[k]
				if found != has || (has && got != want) {
					v.failf("writer %d key %d: store=(%d,%v) shadow=(%d,%v) — a refused write executed or an acked one vanished",
						tid, k, got, found, want, has)
					mismatches++
				}
			}
		}
		cl.SendDrain()
		if err := cl.Flush(); err != nil {
			v.failf("drain flush: %v", err)
		} else if rep, err := cl.RecvDrain(); err != nil {
			v.failf("drain: %v", err)
		} else {
			v.Baseline = rep.Baseline
			v.Arena.Live = rep.Live
			v.Scheme.RetiredNotFreed = rep.RetiredNotFreed
			v.Reclaiming = rep.Scheme != "none"
			if !rep.LeakOK {
				v.failf("drain report: scheme=%s live=%d baseline=%d pending=%d deleted=%d — leak check failed",
					rep.Scheme, rep.Live, rep.Baseline, rep.RetiredNotFreed, rep.Deleted)
			}
		}
		cl.Close()
	}
	srv.Shutdown()
	if err := <-served; err != nil {
		v.failf("serve: %v", err)
	}
	return v
}

// overloadKeys is each writer's private key-range width; disjoint
// ranges make the per-writer shadow models exact (no cross-writer
// interleaving to reason away).
const overloadKeys = 512

func overloadBase(tid int) uint64 { return uint64(tid)*overloadKeys + kvstore.MinKey }

// overloadWriter drives one budgeted pipelined connection over its own
// key range, applying a STRICT shadow discipline: StatusOK mutates the
// shadow, ErrOverloaded/ErrDeadlineExceeded leave it untouched (the
// refusal statuses are a contract, not a guess), anything else is a
// failure. Responses arrive in send order, so the shadow replays the
// exact server-side serialization.
func overloadWriter(addr string, cfg Config, tid int, tal *overloadTally) (map[uint64]uint64, uint64, []string) {
	var fails []string
	failf := func(format string, args ...any) {
		if len(fails) < 8 {
			fails = append(fails, fmt.Sprintf("writer %d: "+format, append([]any{tid}, args...)...))
		}
	}
	cl, err := kvstore.Dial(addr,
		kvstore.WithRetries(2),
		kvstore.WithRetryBudget(2*time.Second),
		kvstore.WithReadTimeout(30*time.Second),
		kvstore.WithPipelineDepth(16),
	)
	if err != nil {
		return nil, fnvOffset, []string{fmt.Sprintf("writer %d: dial: %v", tid, err)}
	}
	defer cl.Close()
	if _, err := cl.Negotiate(context.Background()); err != nil {
		return nil, fnvOffset, []string{fmt.Sprintf("writer %d: negotiate: %v", tid, err)}
	}

	rng := pcg{s: mix64(cfg.Seed, uint64(tid)+0x4F4C)}
	h := fnvOffset
	base := overloadBase(tid)
	shadow := make(map[uint64]uint64, overloadKeys)

	type pendOp struct {
		op  uint8
		key uint64
		val uint64
	}
	const pipeline = 8
	pend := make([]pendOp, 0, pipeline)
	drain := func() bool {
		if err := cl.Flush(); err != nil {
			failf("flush: %v", err)
			return false
		}
		for _, po := range pend {
			switch po.op {
			case kvstore.OpPut:
				_, err := cl.RecvPut()
				switch {
				case err == nil:
					tal.ok++
					shadow[po.key] = po.val
				case isRefusal(err, tal):
				default:
					failf("put(%d): %v", po.key, err)
					return false
				}
			case kvstore.OpDel:
				found, err := cl.RecvDel()
				switch {
				case err == nil:
					tal.ok++
					if _, has := shadow[po.key]; has != found {
						failf("del(%d) found=%v but shadow has=%v", po.key, found, has)
					}
					delete(shadow, po.key)
				case isRefusal(err, tal):
				default:
					failf("del(%d): %v", po.key, err)
					return false
				}
			default: // OpGet
				got, found, err := cl.RecvGet()
				switch {
				case err == nil:
					tal.ok++
					want, has := shadow[po.key]
					if found != has || (has && got != want) {
						failf("get(%d) = (%d,%v), shadow (%d,%v)", po.key, got, found, want, has)
					}
				case isRefusal(err, tal):
				default:
					failf("get(%d): %v", po.key, err)
					return false
				}
			}
		}
		pend = pend[:0]
		return true
	}
	for i := uint64(0); i < cfg.OpsPerThread; i++ {
		x := rng.next()
		key := base + x%overloadKeys
		var po pendOp
		switch x >> 62 {
		case 0, 1:
			po = pendOp{op: kvstore.OpPut, key: key, val: x >> 8}
			cl.SendPutBudget(key, po.val, overloadBudget)
		case 2:
			po = pendOp{op: kvstore.OpGet, key: key}
			cl.SendGetBudget(key, overloadBudget)
		default:
			po = pendOp{op: kvstore.OpDel, key: key}
			cl.SendDelBudget(key, overloadBudget)
		}
		h = fnv1a(h, uint64(po.op), key)
		pend = append(pend, po)
		if len(pend) == pipeline && !drain() {
			return shadow, h, fails
		}
	}
	drain()
	return shadow, h, fails
}

// overloadFlooder is pure read/scan pressure: budgeted GETs over the
// writers' ranges plus occasional full-width SCANs (the op that holds
// an inflight slot longest). It asserts nothing about values — its job
// is to keep the admission queue full — but it still reads and tallies
// every response so the refusal ledger stays exact.
func overloadFlooder(addr string, cfg Config, tid int, tal *overloadTally) (uint64, []string) {
	cl, err := kvstore.Dial(addr,
		kvstore.WithRetries(2),
		kvstore.WithRetryBudget(2*time.Second),
		kvstore.WithReadTimeout(30*time.Second),
		kvstore.WithPipelineDepth(16),
	)
	if err != nil {
		return fnvOffset, []string{fmt.Sprintf("flooder %d: dial: %v", tid, err)}
	}
	defer cl.Close()
	if _, err := cl.Negotiate(context.Background()); err != nil {
		return fnvOffset, []string{fmt.Sprintf("flooder %d: negotiate: %v", tid, err)}
	}

	rng := pcg{s: mix64(cfg.Seed, uint64(tid)+0x464C)}
	h := fnvOffset
	span := uint64(cfg.Threads) * overloadKeys
	const pipeline = 8
	kinds := make([]uint8, 0, pipeline)
	var fails []string
	drain := func() bool {
		if err := cl.Flush(); err != nil {
			fails = append(fails, fmt.Sprintf("flooder %d: flush: %v", tid, err))
			return false
		}
		for _, op := range kinds {
			var err error
			if op == kvstore.OpScan {
				_, err = cl.RecvScan(nil)
			} else {
				_, _, err = cl.RecvGet()
			}
			switch {
			case err == nil:
				tal.ok++
			case isRefusal(err, tal):
			default:
				fails = append(fails, fmt.Sprintf("flooder %d: recv: %v", tid, err))
				return false
			}
		}
		kinds = kinds[:0]
		return true
	}
	for i := uint64(0); i < cfg.OpsPerThread; i++ {
		x := rng.next()
		key := x%span + kvstore.MinKey
		if x>>61 == 0 {
			cl.SendScanBudget(kvstore.MinKey, 256, overloadBudget)
			kinds = append(kinds, kvstore.OpScan)
			h = fnv1a(h, uint64(kvstore.OpScan), 256)
		} else {
			cl.SendGetBudget(key, overloadBudget)
			kinds = append(kinds, kvstore.OpGet)
			h = fnv1a(h, uint64(kvstore.OpGet), key)
		}
		if len(kinds) == pipeline && !drain() {
			return h, fails
		}
	}
	drain()
	return h, fails
}

// isRefusal tallies the two not-executed statuses, returning true when
// err was one of them.
func isRefusal(err error, tal *overloadTally) bool {
	switch {
	case errors.Is(err, kvstore.ErrOverloaded):
		tal.shed++
		return true
	case errors.Is(err, kvstore.ErrDeadlineExceeded):
		tal.expired++
		return true
	}
	return false
}
