// Package obs is the reclamation observatory: a low-overhead metrics and
// tracing layer threaded through the allocator, the reclamation schemes,
// and the orcstore service. It makes the paper's central quantity — the
// bound on retired-but-unreclaimed objects — observable *live*, per
// scheme and per thread, instead of only post-mortem via Stats()
// snapshots and the drain check.
//
// Design constraints, in order:
//
//  1. No-op by default. Every hot-path handle (*Counter, *Gauge, *Hist)
//     is nil-safe: when a component is built without a Registry the
//     handles stay nil and the instrumented call sites compile down to a
//     nil check. The sampled retire→free latency path and the trace ring
//     add, respectively, one branch on an existing counter and one
//     atomic bool load when disabled.
//  2. Lock-free on the hot path. Counters are shard-striped (tid-hashed
//     cache-line-padded cells), gauges are single atomics with CAS
//     high-water tracking, and histograms use the same log-bucketed
//     layout as internal/bench with atomic bucket cells. Registration is
//     mutex-guarded but happens only at construction time.
//  3. Pull, don't push. Expensive figures (per-tid RetireDepth sums,
//     arena occupancy, magazine hit rate) are registered as gauge
//     *functions* evaluated at scrape or by the background Sampler, so
//     steady-state cost is zero when nobody is looking.
//
// The HTTP surface (Registry.Handler, TraceHandler, Mux) serves
// /metrics in an expvar-compatible flat JSON form and a line-oriented
// text form, plus /debug/reclaim for the retire-path trace ring.
package obs

// Default is the process-wide registry used by the cmd binaries. Library
// code never touches it implicitly: components are instrumented only
// when a *Registry is passed to them explicitly, so importing obs does
// not by itself add any overhead.
var Default = NewRegistry()
