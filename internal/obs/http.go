package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// Handler serves the registry at a single endpoint:
//
//	GET /metrics              line-oriented text (name value)
//	GET /metrics?format=json  expvar-compatible flat JSON
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

// ScanDebug is the scan-engine surface a reclamation layer plugs into
// this package (obs must not import reclaim). Info returns a
// JSON-serializable snapshot of every instrumented scheme's scan state;
// SetAdaptive/Adaptive expose the global adaptive-threshold switch.
type ScanDebug struct {
	Info        func() any
	SetAdaptive func(bool)
	Adaptive    func() bool
}

var scanDebug struct {
	mu sync.Mutex
	d  *ScanDebug
}

// SetScanDebug registers the process-wide scan-engine debug surface.
// Called once from the reclamation package's init.
func SetScanDebug(d *ScanDebug) {
	scanDebug.mu.Lock()
	scanDebug.d = d
	scanDebug.mu.Unlock()
}

func getScanDebug() *ScanDebug {
	scanDebug.mu.Lock()
	defer scanDebug.mu.Unlock()
	return scanDebug.d
}

// TraceHandler serves the retire-path trace ring and the scan-engine
// state:
//
//	GET  /debug/reclaim                 {"enabled":…,"recorded":…,"events":[…],
//	                                     "scan":{"adaptive":…,"engines":{…}}}
//	GET  /debug/reclaim?n=512           limit the dump
//	POST /debug/reclaim?trace=on|off    toggle recording
//	POST /debug/reclaim?adaptive=on|off toggle adaptive scan thresholds
func TraceHandler() http.Handler { return RingHandler(Trace) }

// RingHandler serves an arbitrary ring (tests use private rings).
func RingHandler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t := req.URL.Query().Get("trace"); t != "" {
			if req.Method != http.MethodPost {
				http.Error(w, "toggling requires POST", http.StatusMethodNotAllowed)
				return
			}
			r.SetEnabled(t == "on" || t == "1" || t == "true")
		}
		if a := req.URL.Query().Get("adaptive"); a != "" {
			if req.Method != http.MethodPost {
				http.Error(w, "toggling requires POST", http.StatusMethodNotAllowed)
				return
			}
			if d := getScanDebug(); d != nil && d.SetAdaptive != nil {
				d.SetAdaptive(a == "on" || a == "1" || a == "true")
			}
		}
		n := 256
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		body := map[string]any{
			"enabled":  r.Enabled(),
			"recorded": r.Len(),
			"events":   r.Dump(n),
		}
		if d := getScanDebug(); d != nil && d.Info != nil {
			scan := map[string]any{"engines": d.Info()}
			if d.Adaptive != nil {
				scan["adaptive"] = d.Adaptive()
			}
			body["scan"] = scan
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
}

var expvarOnce sync.Once

// Mux mounts the full debug surface for a registry:
//
//	/metrics        text + JSON metrics (Handler)
//	/debug/reclaim  trace ring (TraceHandler)
//	/debug/vars     standard expvar page, with the registry published
//	                under "orcstore" so stock expvar tooling sees it
func Mux(reg *Registry) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("orcstore", expvar.Func(func() any {
			flat := map[string]any{}
			for _, m := range reg.Snapshot() {
				if m.Kind == "hist" {
					flat[m.Name] = m.Hist
				} else {
					flat[m.Name] = m.Value
				}
			}
			return flat
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/reclaim", TraceHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// AttachPprof mounts the standard net/http/pprof surface on mux under
// /debug/pprof/. It is opt-in (the kvserver/kvproxy -pprof flag) rather
// than part of Mux: the profile endpoints can pause the world, which is
// not something a metrics port should offer by default.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
