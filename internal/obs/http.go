package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"strconv"
	"sync"
)

// Handler serves the registry at a single endpoint:
//
//	GET /metrics              line-oriented text (name value)
//	GET /metrics?format=json  expvar-compatible flat JSON
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

// TraceHandler serves the retire-path trace ring:
//
//	GET  /debug/reclaim              {"enabled":…,"recorded":…,"events":[…]}
//	GET  /debug/reclaim?n=512        limit the dump
//	POST /debug/reclaim?trace=on|off toggle recording
func TraceHandler() http.Handler { return RingHandler(Trace) }

// RingHandler serves an arbitrary ring (tests use private rings).
func RingHandler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t := req.URL.Query().Get("trace"); t != "" {
			if req.Method != http.MethodPost {
				http.Error(w, "toggling requires POST", http.StatusMethodNotAllowed)
				return
			}
			r.SetEnabled(t == "on" || t == "1" || t == "true")
		}
		n := 256
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"enabled":  r.Enabled(),
			"recorded": r.Len(),
			"events":   r.Dump(n),
		})
	})
}

var expvarOnce sync.Once

// Mux mounts the full debug surface for a registry:
//
//	/metrics        text + JSON metrics (Handler)
//	/debug/reclaim  trace ring (TraceHandler)
//	/debug/vars     standard expvar page, with the registry published
//	                under "orcstore" so stock expvar tooling sees it
func Mux(reg *Registry) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("orcstore", expvar.Func(func() any {
			flat := map[string]any{}
			for _, m := range reg.Snapshot() {
				if m.Kind == "hist" {
					flat[m.Name] = m.Hist
				} else {
					flat[m.Name] = m.Value
				}
			}
			return flat
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/reclaim", TraceHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
