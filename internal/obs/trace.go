package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Retire-path trace ring: a fixed, overwriting, lock-free event buffer
// for debugging ABA and leak reports. Off by default — when disabled the
// instrumented call sites pay one atomic bool load. Events are handle
// lifecycle transitions (retire, free, protect-handover) tagged with the
// scheme instance that saw them.

// Kind classifies a trace event.
type Kind uint8

const (
	KindRetire Kind = 1 + iota
	KindFree
	KindHandover
)

func (k Kind) String() string {
	switch k {
	case KindRetire:
		return "retire"
	case KindFree:
		return "free"
	case KindHandover:
		return "handover"
	default:
		return "?"
	}
}

// Trace label interning: scheme instances register a label once at
// construction and record its small id per event, keeping ring slots
// fixed-size and allocation-free.
var (
	labelMu  sync.Mutex
	labelTab atomic.Pointer[[]string]
)

// TraceLabel interns name and returns its id for Ring.Record.
func TraceLabel(name string) uint16 {
	labelMu.Lock()
	defer labelMu.Unlock()
	var cur []string
	if p := labelTab.Load(); p != nil {
		cur = *p
	}
	for i, l := range cur {
		if l == name {
			return uint16(i)
		}
	}
	next := make([]string, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = name
	labelTab.Store(&next)
	return uint16(len(cur))
}

func labelName(id uint16) string {
	if p := labelTab.Load(); p != nil && int(id) < len(*p) {
		return (*p)[id]
	}
	return "?"
}

// Event is one decoded ring entry.
type Event struct {
	Seq    uint64 `json:"seq"`
	NS     int64  `json:"ns"` // UnixNano at record time
	Kind   string `json:"kind"`
	Scheme string `json:"scheme"`
	Tid    int    `json:"tid"`
	Handle uint64 `json:"handle"`
}

// Ring is the lock-free overwrite buffer. Writers claim a slot with one
// fetch-add and publish via the slot's meta word; a torn read (reader
// overlapping a wrapping writer) is detected by re-reading meta and the
// event is dropped from the dump rather than shown corrupted.
type Ring struct {
	on   atomic.Bool
	mask uint64
	pos  atomic.Uint64
	ns   []atomic.Int64
	hnd  []atomic.Uint64
	meta []atomic.Uint64 // kind(4) | label(12) | tid(16) | seq+1(32)
}

// NewRing creates a ring holding size events (rounded up to a power of
// two, minimum 64).
func NewRing(size int) *Ring {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Ring{
		mask: uint64(n - 1),
		ns:   make([]atomic.Int64, n),
		hnd:  make([]atomic.Uint64, n),
		meta: make([]atomic.Uint64, n),
	}
}

// Trace is the process-wide ring the reclamation schemes record into.
var Trace = NewRing(1 << 12)

// TraceOn reports whether the global ring is recording — the one load
// instrumented hot paths pay when tracing is off.
func TraceOn() bool { return Trace.Enabled() }

// Enabled reports whether the ring is recording.
func (r *Ring) Enabled() bool { return r.on.Load() }

// SetEnabled turns recording on or off.
func (r *Ring) SetEnabled(v bool) { r.on.Store(v) }

func packMeta(kind Kind, label uint16, tid int, seq uint64) uint64 {
	return (uint64(kind)&0xf)<<60 |
		(uint64(label)&0xfff)<<48 |
		uint64(uint16(tid))<<32 |
		(seq+1)&0xffffffff
}

// Record appends one event if the ring is enabled.
func (r *Ring) Record(kind Kind, label uint16, tid int, handle uint64) {
	if !r.on.Load() {
		return
	}
	seq := r.pos.Add(1) - 1
	i := seq & r.mask
	r.meta[i].Store(0) // invalidate while the payload is torn
	r.ns[i].Store(time.Now().UnixNano())
	r.hnd[i].Store(handle)
	r.meta[i].Store(packMeta(kind, label, tid, seq))
}

// Dump decodes up to max of the most recent events, oldest first. Slots
// being overwritten mid-read are skipped.
func (r *Ring) Dump(max int) []Event {
	n := int(r.mask) + 1
	if max <= 0 || max > n {
		max = n
	}
	head := r.pos.Load()
	lo := uint64(0)
	if head > uint64(max) {
		lo = head - uint64(max)
	}
	out := make([]Event, 0, max)
	for seq := lo; seq < head; seq++ {
		i := seq & r.mask
		m := r.meta[i].Load()
		if m == 0 || m&0xffffffff != (seq+1)&0xffffffff {
			continue // overwritten past this seq, or mid-write
		}
		ns := r.ns[i].Load()
		h := r.hnd[i].Load()
		if r.meta[i].Load() != m {
			continue // torn: a writer wrapped while we read
		}
		out = append(out, Event{
			Seq:    seq,
			NS:     ns,
			Kind:   Kind(m >> 60 & 0xf).String(),
			Scheme: labelName(uint16(m >> 48 & 0xfff)),
			Tid:    int(int16(m >> 32 & 0xffff)),
			Handle: h,
		})
	}
	return out
}

// Len reports how many events have ever been recorded (monotonic; the
// ring retains the most recent capacity of them).
func (r *Ring) Len() uint64 { return r.pos.Load() }
