package obs

import "testing"

// Property tests for the shared HDR bucket geometry. A simple seeded
// generator sweeps every magnitude rather than relying on hand-picked
// boundary values.

func propRng(s uint64) func() uint64 {
	return func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		x := s
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x
	}
}

// TestHistBucketRoundTripProperty: for values of every magnitude, the
// bucket's midpoint must land back in the same bucket, the bucket index
// must be in range, and the mapping must be monotone in the value.
func TestHistBucketRoundTripProperty(t *testing.T) {
	next := propRng(0xb0c4e7)
	check := func(v uint64) {
		b := HistBucketOf(v)
		if b < 0 || b >= HistBuckets {
			t.Fatalf("HistBucketOf(%d) = %d out of [0,%d)", v, b, HistBuckets)
		}
		mid := HistBucketMid(b)
		if got := HistBucketOf(mid); got != b {
			t.Fatalf("round trip broken: value %d → bucket %d → mid %d → bucket %d", v, b, mid, got)
		}
	}
	// Edges of every octave plus random values of every bit width.
	for shift := 0; shift < 64; shift++ {
		lo := uint64(1) << shift
		check(lo - 1)
		check(lo)
		check(lo + 1)
		for i := 0; i < 256; i++ {
			v := lo | next()&(lo-1)
			check(v)
		}
	}
	check(0)
	check(^uint64(0))

	// Monotonicity: bucket index never decreases with the value.
	prev := HistBucketOf(0)
	v := uint64(0)
	for i := 0; i < 1<<16; i++ {
		v += next()%(v/8+3) + 1 // growing strides cover all magnitudes
		b := HistBucketOf(v)
		if b < prev {
			t.Fatalf("not monotone: bucket(%d)=%d < previous %d", v, b, prev)
		}
		prev = b
		if v > 1<<62 {
			v = uint64(i) // rewind, resample the low range
			prev = HistBucketOf(v)
		}
	}
}

// TestHistBucketRelativeErrorProperty: above the linear region the
// midpoint must be within one sub-bucket width of the value — the ≤3.1%
// relative error the geometry promises (exact below histSubCount).
func TestHistBucketRelativeErrorProperty(t *testing.T) {
	next := propRng(0x5eed)
	for i := 0; i < 1<<16; i++ {
		v := next() >> (next() % 60)
		mid := HistBucketMid(HistBucketOf(v))
		var diff uint64
		if mid > v {
			diff = mid - v
		} else {
			diff = v - mid
		}
		if v < histSubCount {
			if diff != 0 {
				t.Fatalf("linear region must be exact: v=%d mid=%d", v, mid)
			}
			continue
		}
		// Sub-bucket width at magnitude v is v / 2^HistSubBits rounded up.
		if width := v>>HistSubBits + 1; diff > width {
			t.Fatalf("relative error: v=%d mid=%d diff=%d > width=%d", v, mid, diff, width)
		}
	}
}

// TestHistSummaryMatchesConcatenation: observing two streams into one
// concurrent Hist must summarize identically to observing their
// concatenation — Observe is order-independent and lossless at bucket
// granularity.
func TestHistSummaryMatchesConcatenation(t *testing.T) {
	next := propRng(42)
	var split, concat Hist
	var other Hist
	for i := 0; i < 4096; i++ {
		v := next() >> (next() % 48)
		if i%2 == 0 {
			split.Observe(v)
		} else {
			other.Observe(v)
		}
		concat.Observe(v)
	}
	// Fold other into split the way a scraper would: re-observe midpoints.
	// The geometry makes this exact at the bucket level: every midpoint
	// lands back in its own bucket (round-trip property above).
	for i := range other.counts {
		for n := other.counts[i].Load(); n > 0; n-- {
			split.counts[i].Add(1)
			split.total.Add(1)
		}
	}
	split.sum.Add(other.sum.Load())
	if m := other.max.Load(); m > split.max.Load() {
		split.max.Store(m)
	}
	a, b := split.Summary(), concat.Summary()
	if a != b {
		t.Fatalf("summaries diverge:\n split: %+v\nconcat: %+v", a, b)
	}
}
