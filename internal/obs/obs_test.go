package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterStriping: concurrent adders from distinct tids must not
// lose increments, and Value must sum every stripe.
func TestCounterStriping(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test/ops")
	const workers = 16
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(tid)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter lost increments: %d != %d", got, workers*per)
	}
	if reg.Counter("test/ops") != c {
		t.Fatal("same name must return the same counter")
	}
}

// TestNoOpPath: every handle must be callable through a nil receiver and
// a nil registry — the uninstrumented default.
func TestNoOpPath(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Hist("x")
	reg.GaugeFunc("x", func() int64 { return 1 })
	c.Add(3, 7)
	c.Inc(0)
	g.Set(9)
	g.Add(-2)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if h.Summary().Count != 0 {
		t.Fatal("nil hist summary must be empty")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var s *Sampler
	s.Register("x", func() int64 { return 1 })
	s.Start()
	s.Stop()
	if s.Max("x") != 0 {
		t.Fatal("nil sampler must read zero")
	}
}

// TestGaugeMax: Set and Add must both maintain the high-water mark.
func TestGaugeMax(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(5)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 5 {
		t.Fatalf("value=%d max=%d", g.Value(), g.Max())
	}
	g.Add(10)
	if g.Value() != 13 || g.Max() != 13 {
		t.Fatalf("value=%d max=%d", g.Value(), g.Max())
	}
	g.Add(-20)
	if g.Value() != -7 || g.Max() != 13 {
		t.Fatalf("value=%d max=%d", g.Value(), g.Max())
	}
}

// TestHistQuantiles: the concurrent histogram must agree with the
// geometry's error bound (≤ ~3.1% per octave) on known data.
func TestHistQuantiles(t *testing.T) {
	h := NewRegistry().Hist("lat")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := uint64(1); v <= 10000; v++ {
				h.Observe(v)
			}
		}()
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != 80000 {
		t.Fatalf("count %d", s.Count)
	}
	p50 := s.P50Us * 1e3
	if p50 < 5000*0.93 || p50 > 5000*1.07 {
		t.Fatalf("p50 %f out of tolerance around 5000", p50)
	}
	if s.MaxUs*1e3 != 10000 {
		t.Fatalf("max %f != 10000", s.MaxUs*1e3)
	}
	// Bucket round trip at every magnitude.
	for _, v := range []uint64{0, 1, 31, 32, 1000, 1 << 20, 1 << 40, 1<<63 + 12345} {
		b := HistBucketOf(v)
		mid := HistBucketMid(b)
		if HistBucketOf(mid) != b {
			t.Fatalf("bucket midpoint %d of %d maps to a different bucket", mid, v)
		}
	}
}

// TestRegistrySnapshotAndHTTP: text and JSON scrapes must carry every
// metric kind.
func TestRegistrySnapshotAndHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a/ops").Add(0, 42)
	reg.Gauge("a/depth").Set(7)
	reg.GaugeFunc("a/live", func() int64 { return 13 })
	reg.Hist("a/lat").Observe(1500)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	text := sb.String()
	for _, want := range []string{"a/ops 42", "a/depth 7", "a/live 13", "a/lat.count 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text scrape missing %q:\n%s", want, text)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var flat map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	if flat["a/ops"].(float64) != 42 || flat["a/live"].(float64) != 13 {
		t.Fatalf("json scrape: %v", flat)
	}
	if flat["a/lat"].(map[string]any)["count"].(float64) != 1 {
		t.Fatalf("json hist: %v", flat["a/lat"])
	}
}

// TestSampler: sources sample on cadence, keep a high-water mark, and
// SampleOnce works without Start.
func TestSampler(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Millisecond)
	v := int64(0)
	var mu sync.Mutex
	s.Register("backlog", func() int64 { mu.Lock(); defer mu.Unlock(); return v })

	s.SampleOnce()
	if s.Last("backlog") != 0 {
		t.Fatal("first sample")
	}
	mu.Lock()
	v = 100
	mu.Unlock()
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for s.Last("backlog") != 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	v = 40
	mu.Unlock()
	s.Stop()
	if s.Last("backlog") != 40 {
		t.Fatalf("last = %d, want 40 (final stop sample)", s.Last("backlog"))
	}
	if s.Max("backlog") != 100 {
		t.Fatalf("max = %d, want 100", s.Max("backlog"))
	}
}

// TestTraceRing: concurrent writers, dump coherence, and the on/off
// gate.
func TestTraceRing(t *testing.T) {
	r := NewRing(256)
	lbl := TraceLabel("test-scheme")
	r.Record(KindRetire, lbl, 1, 0xabc) // disabled: must drop
	if r.Len() != 0 {
		t.Fatal("disabled ring recorded an event")
	}
	r.SetEnabled(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := KindRetire
				if i%2 == 1 {
					k = KindFree
				}
				r.Record(k, lbl, tid, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8000 {
		t.Fatalf("recorded %d, want 8000", r.Len())
	}
	evs := r.Dump(0)
	if len(evs) == 0 || len(evs) > 256 {
		t.Fatalf("dump returned %d events", len(evs))
	}
	for _, e := range evs {
		if e.Scheme != "test-scheme" {
			t.Fatalf("label decode: %+v", e)
		}
		if e.Kind != "retire" && e.Kind != "free" {
			t.Fatalf("kind decode: %+v", e)
		}
		if e.Tid < 0 || e.Tid > 7 {
			t.Fatalf("tid decode: %+v", e)
		}
	}
	// Most recent events must be present and in order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("dump out of order")
		}
	}
}

// TestTraceHandler: the debug endpoint toggles recording and dumps.
func TestTraceHandler(t *testing.T) {
	r := NewRing(64)
	srv := httptest.NewServer(RingHandler(r))
	defer srv.Close()

	if resp, err := srv.Client().Post(srv.URL+"?trace=on", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if !r.Enabled() {
		t.Fatal("POST ?trace=on did not enable")
	}
	r.Record(KindFree, TraceLabel("h"), 3, 77)

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Enabled  bool    `json:"enabled"`
		Recorded uint64  `json:"recorded"`
		Events   []Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || out.Recorded != 1 || len(out.Events) != 1 || out.Events[0].Handle != 77 {
		t.Fatalf("trace dump: %+v", out)
	}
	// GET must not toggle.
	if resp, err := srv.Client().Get(srv.URL + "?trace=off"); err == nil {
		resp.Body.Close()
	}
	if !r.Enabled() {
		t.Fatal("GET ?trace=off must not toggle")
	}
}
