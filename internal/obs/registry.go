package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. Lookups during construction
// take a mutex; the returned handles are lock-free (see metrics.go). A
// nil *Registry is valid everywhere and hands out nil handles, which is
// the package's no-op default.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Hist
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		funcs:    map[string]func() int64{},
		hists:    map[string]*Hist{},
	}
}

// Counter returns (creating on first use) the named counter. Repeated
// calls with one name share the metric; a nil registry returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named settable gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at scrape time under the
// given name. Re-registering a name replaces the callback (fresh store
// instances in tests reuse registries). The callback must be safe to
// invoke from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Hist returns (creating on first use) the named histogram.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Metric is one scraped value. Exactly one of the value fields is
// meaningful, selected by Kind: "counter" and "func" use Value,
// "gauge" uses Value+Max, "hist" uses Hist.
type Metric struct {
	Name  string       `json:"name"`
	Kind  string       `json:"kind"`
	Value int64        `json:"value"`
	Max   int64        `json:"max,omitempty"`
	Hist  *HistSummary `json:"hist,omitempty"`
}

// Snapshot evaluates every metric (including gauge funcs) and returns
// them sorted by name.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+len(r.hists))
	var fns []struct {
		name string
		fn   func() int64
	}
	for n, c := range r.counters {
		out = append(out, Metric{Name: n, Kind: "counter", Value: int64(c.Value())})
	}
	for n, g := range r.gauges {
		out = append(out, Metric{Name: n, Kind: "gauge", Value: g.Value(), Max: g.Max()})
	}
	for n, h := range r.hists {
		s := h.Summary()
		out = append(out, Metric{Name: n, Kind: "hist", Value: int64(s.Count), Hist: &s})
	}
	for n, fn := range r.funcs {
		fns = append(fns, struct {
			name string
			fn   func() int64
		}{n, fn})
	}
	r.mu.RUnlock()
	// Gauge funcs run outside the registry lock: they may themselves
	// walk stores or arenas, and must not deadlock against registration.
	for _, f := range fns {
		out = append(out, Metric{Name: f.name, Kind: "func", Value: f.fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the snapshot one metric per line:
//
//	name value            (counters, gauges, funcs)
//	name.max value        (gauge high-water marks)
//	name.p99_us value     (histogram digests)
func (r *Registry) WriteText(w io.Writer) {
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "hist":
			h := m.Hist
			fmt.Fprintf(w, "%s.count %d\n", m.Name, h.Count)
			fmt.Fprintf(w, "%s.mean_us %.3f\n", m.Name, h.MeanUs)
			fmt.Fprintf(w, "%s.p50_us %.3f\n", m.Name, h.P50Us)
			fmt.Fprintf(w, "%s.p90_us %.3f\n", m.Name, h.P90Us)
			fmt.Fprintf(w, "%s.p99_us %.3f\n", m.Name, h.P99Us)
			fmt.Fprintf(w, "%s.p999_us %.3f\n", m.Name, h.P999Us)
			fmt.Fprintf(w, "%s.max_us %.3f\n", m.Name, h.MaxUs)
		case "gauge":
			fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
			fmt.Fprintf(w, "%s.max %d\n", m.Name, m.Max)
		default:
			fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		}
	}
}

// WriteJSON renders the snapshot as an expvar-compatible flat object:
// metric names map to numbers, histograms to summary objects, gauges to
// {value, max} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	flat := map[string]any{}
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "hist":
			flat[m.Name] = m.Hist
		case "gauge":
			flat[m.Name] = map[string]int64{"value": m.Value, "max": m.Max}
		default:
			flat[m.Name] = m.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}
