package obs

import (
	"sync"
	"time"
)

// Sampler periodically evaluates registered sources into gauges named
// "sampled/<name>" in its registry. It exists for figures that need a
// *cadenced* time series with a high-water mark — the paper's
// retired-but-unreclaimed backlog above all — rather than a value at
// whatever instant a scrape happens to land. cmd/membound and the
// kvserver both read backlog figures from one Sampler, so there is a
// single source of truth for "how deep did the retire backlog get".
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu      sync.Mutex
	sources []samplerSource
	stop    chan struct{}
	done    chan struct{}

	ticks *Gauge
}

type samplerSource struct {
	name string
	fn   func() int64
	g    *Gauge
}

// NewSampler creates a sampler feeding reg every interval (default
// 250ms when interval <= 0).
func NewSampler(reg *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &Sampler{reg: reg, interval: interval, ticks: reg.Gauge("sampler/ticks")}
}

// Register adds a source. Its value lands in gauge "sampled/<name>"
// (current reading + high-water) on every tick. Safe to call before or
// after Start.
func (s *Sampler) Register(name string, fn func() int64) {
	if s == nil || fn == nil {
		return
	}
	g := s.reg.Gauge("sampled/" + name)
	s.mu.Lock()
	s.sources = append(s.sources, samplerSource{name: name, fn: fn, g: g})
	s.mu.Unlock()
}

// SampleOnce evaluates every source immediately. Tests and quiescent
// readers use it to avoid racing the ticker.
func (s *Sampler) SampleOnce() {
	if s == nil {
		return
	}
	s.mu.Lock()
	srcs := make([]samplerSource, len(s.sources))
	copy(srcs, s.sources)
	s.mu.Unlock()
	for _, src := range srcs {
		src.g.Set(src.fn())
	}
	s.ticks.Add(1)
}

// Start launches the background loop. Starting an already-running
// sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.SampleOnce()
			}
		}
	}()
}

// Stop halts the loop, takes one final sample (so short runs always
// observe at least one reading), and waits for the goroutine to exit.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	s.SampleOnce()
}

// Last returns the most recent reading of a source (0 if never sampled).
func (s *Sampler) Last(name string) int64 {
	if s == nil {
		return 0
	}
	return s.reg.Gauge("sampled/" + name).Value()
}

// Max returns the high-water reading of a source.
func (s *Sampler) Max(name string) int64 {
	if s == nil {
		return 0
	}
	return s.reg.Gauge("sampled/" + name).Max()
}
