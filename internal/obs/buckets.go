package obs

import "math/bits"

// Log-bucketed histogram layout shared by obs.Hist (concurrent, scraped
// by /metrics) and bench.Hist (single-writer, merged at quiescence).
// This is the HDR-style geometry introduced with the kv latency work:
// HistSubBits bits of sub-bucket resolution per octave give a bounded
// ~3% relative error at every magnitude while covering the full uint64
// nanosecond range in a few KB.
const (
	// HistSubBits is the sub-bucket resolution: 2^HistSubBits buckets
	// per octave → ≤3.1% relative error.
	HistSubBits  = 5
	histSubCount = 1 << HistSubBits

	// HistBuckets is the total bucket count: one linear region below
	// 2^HistSubBits, then one region of histSubCount buckets per
	// remaining octave of a 64-bit value (the highest region index is
	// 64-HistSubBits, inclusive).
	HistBuckets = (64 - HistSubBits + 1) * histSubCount
)

// HistBucketOf maps a value (nanoseconds, by convention) to its bucket.
func HistBucketOf(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	k := bits.Len64(v)           // position of the highest set bit, > HistSubBits
	shift := k - HistSubBits - 1 // ≥ 0
	sub := (v >> uint(shift)) - histSubCount
	return (shift+1)<<HistSubBits + int(sub)
}

// HistBucketMid returns a representative (midpoint) value for bucket idx.
func HistBucketMid(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	shift := idx>>HistSubBits - 1
	sub := uint64(idx & (histSubCount - 1))
	lo := (histSubCount + sub) << uint(shift)
	return lo + (uint64(1)<<uint(shift))/2
}
