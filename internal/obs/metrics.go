package obs

import "sync/atomic"

const (
	// counterStripes is the number of striped cells per Counter;
	// writers pick a cell by tid so concurrent threads never contend on
	// one cache line. Power of two.
	counterStripes = 16

	// cacheLine matches the padding granularity used by the allocator
	// (128 covers adjacent-line prefetching).
	cacheLine = 128
)

type counterCell struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically increasing shard-striped counter. All
// methods are nil-safe: calling them on a nil *Counter is a no-op, which
// is how uninstrumented hot paths stay free.
type Counter struct {
	cells [counterStripes]counterCell
}

// Add increments the counter by n, striping by the caller's tid.
func (c *Counter) Add(tid int, n uint64) {
	if c == nil {
		return
	}
	c.cells[uint(tid)&(counterStripes-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc(tid int) { c.Add(tid, 1) }

// Value sums the stripes. Exact at quiescence, a consistent-enough
// snapshot under load (each stripe is read atomically).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous value with a high-water mark. Set and Add
// maintain Max with a CAS loop; like Counter, a nil *Gauge no-ops.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(d))
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the largest value ever Set/reached.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Hist is a concurrent log-bucketed histogram sharing bench.Hist's
// geometry (see buckets.go) with atomic cells, so any thread may Observe
// while /metrics scrapes. Nil-safe like the other handles.
type Hist struct {
	counts [HistBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// Observe records one nanosecond observation.
func (h *Hist) Observe(ns uint64) {
	if h == nil {
		return
	}
	h.counts[HistBucketOf(ns)].Add(1)
	h.total.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// HistSummary is the JSON-ready digest of a Hist, in microseconds (the
// resolution BENCH_kv.json and the figure tables report).
type HistSummary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summary digests the histogram. It walks the buckets once per requested
// quantile over a point-in-time copy of the counts, so a concurrent
// Observe can skew a quantile by at most one bucket.
func (h *Hist) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	var counts [HistBuckets]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	max := h.max.Load()
	q := func(p float64) float64 {
		if total == 0 {
			return 0
		}
		rank := uint64(p * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen > rank {
				if i == HistBucketOf(max) {
					return float64(max) / 1e3
				}
				return float64(HistBucketMid(i)) / 1e3
			}
		}
		return float64(max) / 1e3
	}
	out := HistSummary{Count: total, MaxUs: float64(max) / 1e3}
	if total > 0 {
		out.MeanUs = float64(h.sum.Load()) / float64(total) / 1e3
		out.P50Us = q(0.50)
		out.P90Us = q(0.90)
		out.P99Us = q(0.99)
		out.P999Us = q(0.999)
	}
	return out
}
