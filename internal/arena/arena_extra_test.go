package arena

import (
	"testing"
	"testing/quick"
)

// TestTryGetNeverPanicsOnGarbage: arbitrary bit patterns must be
// rejected gracefully, never dereferenced.
func TestTryGetNeverPanicsOnGarbage(t *testing.T) {
	a := New[node]()
	h, _ := a.Alloc()
	_ = h
	f := func(bits uint64) bool {
		_, ok := a.TryGet(Handle(bits))
		// The only acceptable true is for the handle we allocated.
		return !ok || Handle(bits).Unmarked() == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestValidRejectsWrongGeneration across many recycles of one slot.
func TestValidRejectsWrongGeneration(t *testing.T) {
	a := New[node]()
	var old []Handle
	h, _ := a.Alloc()
	for i := 0; i < 100; i++ {
		old = append(old, h)
		a.Free(h)
		h, _ = a.Alloc()
	}
	for _, o := range old {
		if a.Valid(o) {
			t.Fatalf("stale generation accepted: %v (current %v)", o, h)
		}
	}
	if !a.Valid(h) {
		t.Fatal("current handle rejected")
	}
}

// TestGenerationWrap: at the top of the 30-bit handle range the masked
// generation wraps, skipping the virgin value 0 — the freed slot lands
// on masked 2 (parity even) and the next alloc hands out generation 3.
func TestGenerationWrap(t *testing.T) {
	a := New[node]()
	h, _ := a.Alloc()
	idx := h.Index()
	s := a.slotAt(idx)
	a.Free(h)
	// Force the generation to the last even value and recycle.
	s.gen.Store((1 << genBits) - 2)
	h2, _ := a.Alloc()
	if h2.Gen() != (1<<genBits)-1 {
		t.Fatalf("gen %d", h2.Gen())
	}
	a.Free(h2)
	if g := s.gen.Load() & genValMask; g != 2 {
		t.Fatalf("generation wrapped to masked %d, want 2 (virgin 0 skipped)", g)
	}
	if a.Valid(h2) {
		t.Fatal("freed handle still valid across the wrap")
	}
	h3, _ := a.Alloc()
	if h3.Gen() != 3 {
		t.Fatalf("post-wrap gen %d, want 3", h3.Gen())
	}
	if !a.Valid(h3) {
		t.Fatal("post-wrap handle invalid")
	}
}

// TestFreeNilPanics and stale-free detection.
func TestFreeNilPanics(t *testing.T) {
	a := New[node]()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic freeing nil")
		}
	}()
	a.Free(Nil)
}

// TestHeaderOnStaleHandlePanics: scheme words must be generation-guarded
// too (the _orc word of a freed object is off limits).
func TestHeaderOnStaleHandlePanics(t *testing.T) {
	a := New[node]()
	h, _ := a.Alloc()
	a.Free(h)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on stale Header")
		}
	}()
	a.Header(h)
}

// TestStatsSlotsCountsCarvedOnly: recycling does not inflate Slots.
func TestStatsSlotsCountsCarvedOnly(t *testing.T) {
	a := New[node]()
	for i := 0; i < 50; i++ {
		h, _ := a.Alloc()
		a.Free(h)
	}
	if st := a.Stats(); st.Slots != 1 {
		t.Fatalf("Slots=%d want 1 (one slot recycled 50 times)", st.Slots)
	}
}

// TestZombieIsolation: Count-mode zombie reads must not alias real data.
func TestZombieIsolation(t *testing.T) {
	a := New[node](WithFaultMode(Count))
	h, p := a.Alloc()
	p.Key = 111
	a.Free(h)
	z := a.Get(h)
	if z.Key != 0 {
		t.Fatalf("zombie exposes stale data: %d", z.Key)
	}
	h2, p2 := a.Alloc()
	p2.Key = 222
	if z == p2 {
		t.Fatal("zombie aliases a live allocation")
	}
	_ = h2
}
