package arena

import (
	"fmt"
	"runtime"

	"repro/internal/rt"
)

// This file holds the allocation/free paths over the sharded free-slot
// pool. Three tiers:
//
//  1. per-tid magazines (AllocT/FreeT): plain array push/pop, no shared
//     CAS; spill/refill in batches of magBatch to the tid's home shard;
//  2. sharded Treiber stacks, one per P, with lock-free work-stealing
//     from sibling shards when the home shard runs dry;
//  3. the bump pointer (next), carving never-used slots out of chunks.
//
// The tid-less Alloc/Free keep working for callers without a thread id
// (constructors, tests): they skip the magazines — a magazine is
// single-owner and there is no owner to speak of — and go straight to the
// shard picked by the current P, so both APIs interoperate on one arena.
//
// The statistics stripes count slots that are live or magazine-cached,
// so they are updated only when a slot crosses the pool boundary (shared
// alloc/free, spill, refill): a magazine hit performs no shared-memory
// RMW at all — its atomic work is one generation store plus one
// single-writer counter store.

func (a *Arena[T]) stripeFor(idx uint32) *stripe {
	return &a.stripes[(idx>>stripeShift)&(statStripes-1)]
}

// stripeInc records idx entering the (live ∪ cached) census, maintaining
// the stripe high-water mark.
func (a *Arena[T]) stripeInc(idx uint32) {
	st := a.stripeFor(idx)
	l := st.live.Add(1)
	for {
		m := st.maxLive.Load()
		if l <= m || st.maxLive.CompareAndSwap(m, l) {
			return
		}
	}
}

// stripeDec records idx leaving the census (returned to a shard stack).
func (a *Arena[T]) stripeDec(idx uint32) { a.stripeFor(idx).live.Add(-1) }

// homeShard picks a shard for a caller without a tid: hash by the P the
// goroutine happens to run on, so concurrent tid-less callers spread
// out. The shard index is computed while still pinned, so the pick is
// consistent with the P that made it; the pin is dropped before the
// caller's Treiber-stack CAS loop (popShard yields via runtime.Gosched
// on a chunk-publication race, which must not run pinned). A migration
// between unpin and the stack operation is benign: the index is only a
// contention-spreading hint, and every shard accepts every slot.
func (a *Arena[T]) homeShard() uint32 {
	s := uint32(runtime_procPin()) & a.shardMask
	runtime_procUnpin()
	return s
}

// popShard pops one free slot index from shard s; idxNone when empty.
func (a *Arena[T]) popShard(s uint32) uint32 {
	head := &a.shards[s].head
	for {
		old := head.Load()
		aba, idx := unpackFree(old)
		if idx == idxNone {
			return idxNone
		}
		// Load the slot pointer once: if a racing chunk publication is
		// not yet visible the pointer is nil — back off and retry the
		// whole pop instead of faulting on the nil chunk.
		sl := a.slotAt(idx)
		if sl == nil {
			runtime.Gosched()
			continue
		}
		next := sl.freeNext.Load()
		if head.CompareAndSwap(old, packFree(aba+1, next)) {
			return idx
		}
	}
}

// pushOne pushes a single free slot index onto shard s.
func (a *Arena[T]) pushOne(s uint32, idx uint32) {
	a.pushChain(s, idx, idx)
}

// pushChain splices an already-linked chain first→…→last onto shard s
// with one CAS per attempt (only the chain tail is relinked on retry).
func (a *Arena[T]) pushChain(s uint32, first, last uint32) {
	head := &a.shards[s].head
	lastSlot := a.slotAt(last)
	for {
		old := head.Load()
		aba, h := unpackFree(old)
		lastSlot.freeNext.Store(h)
		if head.CompareAndSwap(old, packFree(aba+1, first)) {
			return
		}
	}
}

// takeShared pops one index from the shard pool, sweeping all shards
// starting at home. idxNone when every shard is empty.
func (a *Arena[T]) takeShared(home uint32) uint32 {
	n := uint32(len(a.shards))
	for d := uint32(0); d < n; d++ {
		if idx := a.popShard((home + d) & a.shardMask); idx != idxNone {
			return idx
		}
	}
	return idxNone
}

// magazineFor returns tid's magazine, creating it on first use; nil for
// out-of-range tids (callers then use the shared path).
func (a *Arena[T]) magazineFor(tid int) *magazine {
	if uint(tid) >= uint(len(a.mags)) {
		return nil
	}
	m := a.mags[tid].Load()
	if m == nil {
		m = new(magazine)
		a.mags[tid].Store(m)
	}
	return m
}

// refill fills tid's empty magazine: a batch from the home shard, else a
// half batch stolen from the first non-empty sibling, else a fresh batch
// carved off the bump pointer. Every acquired slot enters the stripe
// census here, so magazine hits need no accounting of their own.
func (a *Arena[T]) refill(m *magazine, home uint32) {
	a.magRefills.Add(1) // cold path: the magazine is empty
	for m.n < magBatch {
		idx := a.popShard(home)
		if idx == idxNone {
			break
		}
		a.stripeInc(idx)
		m.slots[m.n] = idx
		m.n++
	}
	if m.n > 0 {
		return
	}
	n := uint32(len(a.shards))
	for d := uint32(1); d < n; d++ {
		v := (home + d) & a.shardMask
		for m.n < magBatch/2 {
			idx := a.popShard(v)
			if idx == idxNone {
				break
			}
			a.stripeInc(idx)
			m.slots[m.n] = idx
			m.n++
		}
		if m.n > 0 {
			a.magSteals.Add(1)
			return
		}
	}
	base := uint32(a.next.Add(magBatch) - magBatch)
	for c := base >> a.chunkShift; c <= (base+magBatch-1)>>a.chunkShift; c++ {
		a.ensureChunk(c)
	}
	for i := uint32(0); i < magBatch; i++ {
		a.stripeInc(base + i)
		m.slots[i] = base + i
	}
	m.n = magBatch
}

// spill pushes the oldest magBatch indices of a full magazine to the home
// shard as one pre-linked chain (a single CAS on the shard head), keeping
// the hottest half cached. The spilled slots leave the stripe census.
func (a *Arena[T]) spill(m *magazine, home uint32) {
	a.magSpills.Add(1) // cold path: the magazine is full
	for i := 0; i < magBatch-1; i++ {
		a.slotAt(m.slots[i]).freeNext.Store(m.slots[i+1])
	}
	for i := 0; i < magBatch; i++ {
		a.stripeDec(m.slots[i])
	}
	a.pushChain(home, m.slots[0], m.slots[magBatch-1])
	copy(m.slots[:], m.slots[magBatch:m.n])
	m.n -= magBatch
}

// finishAlloc transitions a claimed free index to live — the generation
// goes odd — and returns the handle plus the zeroed payload. The raw
// counter keeps its full 32-bit width; Pack truncates to the genBits a
// handle carries, and validity checks compare masked.
func (a *Arena[T]) finishAlloc(idx uint32) (Handle, *T) {
	s := a.slotAt(idx)
	g := s.gen.Load()
	if g&1 != 0 {
		panic(fmt.Sprintf("arena: slot %d allocated while live", idx))
	}
	g++ // even→odd (parity survives the genValMask truncation)
	rt.Step(rt.SiteAlloc, -1)
	var zero T
	s.Val = zero
	// Header words are usually already zero (fresh chunks are zero-filled
	// and most schemes never stamp them), so test before storing: the
	// common path is two plain loads, not two sequentially consistent
	// stores.
	if s.HdrA.Load() != 0 {
		s.HdrA.Store(0)
	}
	if s.HdrB.Load() != 0 {
		s.HdrB.Store(0)
	}
	s.gen.Store(g)
	return Pack(idx, g), &s.Val
}

// finishFree validates h, poisons the payload and bumps the generation to
// even — freeing the slot and invalidating every outstanding handle in
// one store — returning the now-ownerless index. The caller decides which
// free pool receives it. The bump runs on the raw full-width counter (the
// handle only knows the masked value, so the raw counter is reloaded from
// the slot); when the masked value would land on 0 — the virgin sentinel
// — the bump skips ahead by 2, keeping parity even and reserving masked 0
// for slots that were never allocated.
func (a *Arena[T]) finishFree(h Handle) uint32 {
	h = h.Unmarked()
	if h.IsNil() {
		panic("arena: free of nil handle")
	}
	idx := h.Index()
	s := a.slotAt(idx)
	if s == nil {
		panic(fmt.Sprintf("arena: free of %v in unpublished chunk", h))
	}
	g := s.gen.Load()
	if h.Gen()&1 == 0 || g&genValMask != h.Gen() {
		panic(fmt.Sprintf("arena: double free or stale free of %v", h))
	}
	var zero T
	s.Val = zero // poison: stale readers see a zeroed husk
	g++
	if g&genValMask == 0 {
		g += 2 // skip the virgin value; parity stays even
	}
	s.gen.Store(g)
	rt.Step(rt.SiteFree, -1)
	return idx
}

// AllocT carves out a slot for thread tid and returns its handle plus a
// pointer for initialization. The payload and header words are zeroed;
// schemes that stamp headers (eras, orc) do so right after. The common
// case is a magazine hit whose only atomic writes are the slot's own
// generation store and the magazine's single-writer counter.
func (a *Arena[T]) AllocT(tid int) (Handle, *T) {
	m := a.magazineFor(tid)
	if m == nil {
		return a.Alloc()
	}
	if m.n == 0 {
		a.refill(m, uint32(tid)&a.shardMask)
	}
	m.n--
	h, p := a.finishAlloc(m.slots[m.n])
	m.allocs.Store(m.allocs.Load() + 1) // single-writer counter
	return h, p
}

// FreeT returns the object named by h to thread tid's magazine. The slot
// generation is bumped (invalidating every outstanding handle) and the
// payload is poisoned. Freeing a stale or nil handle panics: reclamation
// schemes must free each object exactly once.
func (a *Arena[T]) FreeT(tid int, h Handle) {
	m := a.magazineFor(tid)
	if m == nil {
		a.Free(h)
		return
	}
	idx := a.finishFree(h)
	if m.n == magCap {
		a.spill(m, uint32(tid)&a.shardMask)
	}
	m.slots[m.n] = idx
	m.n++
	m.frees.Store(m.frees.Load() + 1) // single-writer counter
}

// Alloc is the tid-less allocation path: recycle from the shard pool
// (sweeping all shards before growing, so single-threaded free-then-alloc
// always reuses the slot), else carve one fresh slot.
func (a *Arena[T]) Alloc() (Handle, *T) {
	idx := a.takeShared(a.homeShard())
	if idx == idxNone {
		idx = uint32(a.next.Add(1) - 1)
		a.ensureChunk(idx >> a.chunkShift)
	}
	a.stripeInc(idx)
	h, p := a.finishAlloc(idx)
	a.sharedAllocs.Add(1)
	return h, p
}

// Free is the tid-less free path: the slot goes to the shard picked by
// the current P.
func (a *Arena[T]) Free(h Handle) {
	a.freeToShard(a.homeShard(), h)
	a.sharedFrees.Add(1)
}

// freeToShard finishes the free and returns the slot straight to shard s,
// maintaining the stripe census.
func (a *Arena[T]) freeToShard(s uint32, h Handle) {
	idx := a.finishFree(h)
	a.stripeDec(idx)
	a.pushOne(s, idx)
}
