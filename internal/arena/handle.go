// Package arena provides the manual-memory substrate for the OrcGC
// reproduction: a chunked slab allocator with explicit Alloc/Free,
// generation-checked 64-bit handles, and payload poisoning.
//
// The paper's reclamation schemes are about returning memory to an
// allocator while lock-free readers may still hold references. Go's
// garbage collector would silently keep every node alive and make all
// reclamation a no-op, so tracked objects live in arena slots instead of
// on the Go heap. A reference to a node is a Handle, not a pointer:
//
//	bits 63..62  tag bits (the mark/flag bits lock-free structures keep
//	             in low pointer bits in C/C++)
//	bits 61..32  slot generation (the low genBits bits of the slot's
//	             full-width generation counter, bumped on every Alloc and
//	             Free; odd while the object is live, so a handle — always
//	             minted with an odd generation — matches only its own
//	             lifetime)
//	bits 31..0   slot index
//
// Slot generation counters are wider than the genBits a handle can
// carry, so every comparison between a stored generation and a handle's
// generation masks the stored value down to genBits first (see
// genValMask). Masking preserves parity, so the odd-live/even-free
// liveness encoding survives the truncation; the masked value 0 is
// reserved for virgin (never-allocated) slots and is skipped when a
// counter wraps.
//
// Dereferencing a handle whose generation no longer matches the slot is
// the reproduction's equivalent of the segmentation fault the paper
// ascribes to touching memory the system allocator already returned to
// the OS: in Strict mode it panics, in Count mode it records a fault.
package arena

import (
	"fmt"
	"slices"
)

// Handle is a tagged, generation-stamped reference to an arena slot.
// The zero Handle is the nil reference.
type Handle uint64

const (
	// Mark is the primary tag bit (the "logically deleted" mark of
	// Harris-style lists and the flag bit of the NM tree).
	Mark Handle = 1 << 63
	// Flag is the secondary tag bit (the NM tree needs two).
	Flag Handle = 1 << 62

	tagMask  Handle = Mark | Flag
	genBits         = 30
	genShift        = 32
	genMask  Handle = ((1 << genBits) - 1) << genShift
	idxMask  Handle = (1 << 32) - 1

	// genValMask truncates a raw (full-width) slot generation to the
	// genBits a handle packs. Slot generation counters may run wider
	// than genBits; every stored-vs-handle comparison masks with this
	// first, or a hot slot would spuriously fault forever once its raw
	// counter crossed 1<<genBits.
	genValMask uint32 = (1 << genBits) - 1
)

// Nil is the null handle.
const Nil Handle = 0

// Pack builds an untagged handle from a slot index and generation.
func Pack(idx uint32, gen uint32) Handle {
	return Handle(idx) | (Handle(gen&((1<<genBits)-1)) << genShift)
}

// Index returns the slot index of h.
func (h Handle) Index() uint32 { return uint32(h & idxMask) }

// Gen returns the generation stamp of h.
func (h Handle) Gen() uint32 { return uint32((h & genMask) >> genShift) }

// IsNil reports whether h is the nil reference (any tag bits are ignored:
// a marked nil is still nil as a reference).
func (h Handle) IsNil() bool { return h&^tagMask == 0 }

// Unmarked strips both tag bits, yielding the plain object reference.
func (h Handle) Unmarked() Handle { return h &^ tagMask }

// Marked reports whether the Mark tag bit is set.
func (h Handle) Marked() bool { return h&Mark != 0 }

// Flagged reports whether the Flag tag bit is set.
func (h Handle) Flagged() bool { return h&Flag != 0 }

// WithMark returns h with the Mark bit set.
func (h Handle) WithMark() Handle { return h | Mark }

// WithFlag returns h with the Flag bit set.
func (h Handle) WithFlag() Handle { return h | Flag }

// WithoutMark returns h with the Mark bit cleared.
func (h Handle) WithoutMark() Handle { return h &^ Mark }

// WithoutFlag returns h with the Flag bit cleared.
func (h Handle) WithoutFlag() Handle { return h &^ Flag }

// Tags returns only the tag bits of h.
func (h Handle) Tags() Handle { return h & tagMask }

// SameRef reports whether two handles name the same object, ignoring tags.
func (h Handle) SameRef(o Handle) bool { return h.Unmarked() == o.Unmarked() }

// Compare orders two handles by raw word value (index within generation
// within tags). Any total order works for the reclamation scan engine's
// sorted snapshots; the raw order is the cheapest and keeps equal
// handles adjacent, which is all binary search needs.
func (h Handle) Compare(o Handle) int {
	switch {
	case h < o:
		return -1
	case h > o:
		return 1
	default:
		return 0
	}
}

// SortHandles sorts hs in place by Compare. It allocates nothing: the
// scan engine re-sorts one reusable snapshot buffer per scan.
func SortHandles(hs []Handle) { slices.Sort(hs) }

// SearchHandles reports whether a Compare-sorted slice contains h, by
// binary search. Allocation-free.
func SearchHandles(sorted []Handle, h Handle) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == h
}

// String renders a handle for debugging.
func (h Handle) String() string {
	if h.IsNil() {
		if h.Tags() != 0 {
			return fmt.Sprintf("nil[tags=%x]", uint64(h.Tags())>>62)
		}
		return "nil"
	}
	s := fmt.Sprintf("h{idx=%d gen=%d", h.Index(), h.Gen())
	if h.Marked() {
		s += " M"
	}
	if h.Flagged() {
		s += " F"
	}
	return s + "}"
}
