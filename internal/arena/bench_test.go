// Allocator microbenchmark suite: the sharded/magazine allocator of this
// package measured against an in-file replica of the seed's single-free-
// list design (one global Treiber stack, div/mod slot addressing, global
// counters with a maxLive CAS loop). Benchmark* functions serve
// `go test -bench`; TestAllocBenchReport (gated on ALLOC_BENCH=1) runs a
// fixed-work comparison and records the numbers in BENCH_alloc.json at
// the repo root.
package arena_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/bench"
)

type benchNode struct{ Key uint64 }

// ---------------------------------------------------------------------------
// Baseline: the seed allocator, reproduced verbatim in miniature.

const (
	baseChunkSize = 1 << 12
	baseMaxChunks = 1 << 14
	baseIdxNone   = ^uint32(0)
)

type baseSlot struct {
	gen      atomic.Uint32
	state    atomic.Uint32
	freeNext atomic.Uint32
	_        uint32
	hdrA     atomic.Uint64
	hdrB     atomic.Uint64
	val      benchNode
}

type baseChunk struct{ slots []baseSlot }

type baselineArena struct {
	chunkSize uint32 // a runtime value, as in the seed: slotAt divides

	next     atomic.Uint64
	freeHead atomic.Uint64 // packed (aba:32, idx:32)

	allocs  atomic.Uint64
	frees   atomic.Uint64
	live    atomic.Int64
	maxLive atomic.Int64

	chunks [baseMaxChunks]atomic.Pointer[baseChunk]
}

func newBaseline() *baselineArena {
	b := &baselineArena{chunkSize: baseChunkSize}
	b.next.Store(1)
	b.freeHead.Store(uint64(baseIdxNone))
	return b
}

func (b *baselineArena) slotAt(idx uint32) *baseSlot {
	ch := b.chunks[idx/b.chunkSize].Load()
	if ch == nil {
		return nil
	}
	return &ch.slots[idx%b.chunkSize]
}

func (b *baselineArena) ensureChunk(c uint32) {
	if b.chunks[c].Load() != nil {
		return
	}
	b.chunks[c].CompareAndSwap(nil, &baseChunk{slots: make([]baseSlot, b.chunkSize)})
}

func (b *baselineArena) popFree() uint32 {
	for {
		old := b.freeHead.Load()
		aba, idx := uint32(old>>32), uint32(old)
		if idx == baseIdxNone {
			return baseIdxNone
		}
		sl := b.slotAt(idx)
		if sl == nil {
			runtime.Gosched()
			continue
		}
		next := sl.freeNext.Load()
		if b.freeHead.CompareAndSwap(old, uint64(aba+1)<<32|uint64(next)) {
			return idx
		}
	}
}

func (b *baselineArena) alloc() uint32 {
	idx := b.popFree()
	if idx == baseIdxNone {
		idx = uint32(b.next.Add(1) - 1)
		b.ensureChunk(idx / b.chunkSize)
	}
	s := b.slotAt(idx)
	if !s.state.CompareAndSwap(0, 1) {
		panic("baseline: double alloc")
	}
	if s.gen.Load() == 0 {
		s.gen.Store(1)
	}
	s.val = benchNode{}
	s.hdrA.Store(0)
	s.hdrB.Store(0)
	b.allocs.Add(1)
	l := b.live.Add(1)
	for {
		m := b.maxLive.Load()
		if l <= m || b.maxLive.CompareAndSwap(m, l) {
			break
		}
	}
	return idx
}

func (b *baselineArena) free(idx uint32) {
	s := b.slotAt(idx)
	s.val = benchNode{}
	s.gen.Store(s.gen.Load() + 1)
	if !s.state.CompareAndSwap(1, 0) {
		panic("baseline: double free")
	}
	for {
		old := b.freeHead.Load()
		aba, head := uint32(old>>32), uint32(old)
		s.freeNext.Store(head)
		if b.freeHead.CompareAndSwap(old, uint64(aba+1)<<32|uint64(idx)) {
			break
		}
	}
	b.frees.Add(1)
	b.live.Add(-1)
}

// ---------------------------------------------------------------------------
// Shared churn harness. Handles travel as uint64 so one harness drives
// both allocators.

const churnWindow = 48

// churn runs workers goroutines, each performing iters alloc/free pairs
// over a private window of live objects, and returns the wall-clock time.
func churn(workers, iters int, alloc func(tid int) uint64, free func(tid int, h uint64)) time.Duration {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			<-start
			held := make([]uint64, churnWindow)
			for i := range held {
				held[i] = alloc(tid)
			}
			seed := uint64(tid)*2654435769 + 1
			for i := 0; i < iters; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				j := int(seed>>33) % churnWindow
				free(tid, held[j])
				held[j] = alloc(tid)
			}
			for _, h := range held {
				free(tid, h)
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0)
}

func shardedFns(a *arena.Arena[benchNode]) (func(int) uint64, func(int, uint64)) {
	return func(tid int) uint64 { h, _ := a.AllocT(tid); return uint64(h) },
		func(tid int, h uint64) { a.FreeT(tid, arena.Handle(h)) }
}

func baselineFns(b *baselineArena) (func(int) uint64, func(int, uint64)) {
	return func(int) uint64 { return uint64(b.alloc()) },
		func(_ int, h uint64) { b.free(uint32(h)) }
}

// ---------------------------------------------------------------------------
// go test -bench entry points.

func BenchmarkAllocFreeSingle(b *testing.B) {
	b.Run("sharded", func(b *testing.B) {
		a := arena.New[benchNode]()
		for i := 0; i < b.N; i++ {
			h, _ := a.AllocT(0)
			a.FreeT(0, h)
		}
	})
	b.Run("baseline", func(b *testing.B) {
		ba := newBaseline()
		for i := 0; i < b.N; i++ {
			ba.free(ba.alloc())
		}
	})
}

func BenchmarkChurn(b *testing.B) {
	for _, g := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("sharded/g%d", g), func(b *testing.B) {
			a := arena.New[benchNode]()
			al, fr := shardedFns(a)
			churn(g, b.N/g+1, al, fr)
		})
		b.Run(fmt.Sprintf("baseline/g%d", g), func(b *testing.B) {
			ba := newBaseline()
			al, fr := baselineFns(ba)
			churn(g, b.N/g+1, al, fr)
		})
	}
}

// ---------------------------------------------------------------------------
// Fixed-work comparison recorded in BENCH_alloc.json.

type churnRow struct {
	Goroutines   int     `json:"goroutines"`
	BaselineMops float64 `json:"baseline_mops"`
	ShardedMops  float64 `json:"sharded_mops"`
	Speedup      float64 `json:"speedup"`
}

type allocReport struct {
	Benchmark    string `json:"benchmark"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Window       int    `json:"window"`
	PairsPerRun  int    `json:"pairs_per_run"`
	SingleThread struct {
		BaselineNsPerPair float64 `json:"baseline_ns_per_pair"`
		ShardedNsPerPair  float64 `json:"sharded_ns_per_pair"`
		Ratio             float64 `json:"sharded_over_baseline"`
	} `json:"single_thread"`
	Churn []churnRow `json:"churn"`
}

// bestMops runs the churn workload three times on fresh allocators and
// returns the best throughput in million alloc/free pairs per second.
func bestMops(workers, pairs int, fresh func() (func(int) uint64, func(int, uint64))) float64 {
	best := 0.0
	for run := 0; run < 3; run++ {
		al, fr := fresh()
		d := churn(workers, pairs/workers, al, fr)
		if m := float64(pairs) / d.Seconds() / 1e6; m > best {
			best = m
		}
	}
	return best
}

func TestAllocBenchReport(t *testing.T) {
	if os.Getenv("ALLOC_BENCH") == "" {
		t.Skip("set ALLOC_BENCH=1 to run the timed allocator comparison and write BENCH_alloc.json")
	}
	const pairs = 1 << 21

	rep := allocReport{
		Benchmark:   "arena alloc/free churn: sharded+magazines vs seed single free list",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Window:      churnWindow,
		PairsPerRun: pairs,
	}

	// Single-thread latency: tight alloc/free pairs, no goroutines.
	single := func(al func(int) uint64, fr func(int, uint64)) float64 {
		for i := 0; i < 1<<16; i++ { // warm the free path
			fr(0, al(0))
		}
		t0 := time.Now()
		for i := 0; i < pairs; i++ {
			fr(0, al(0))
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(pairs)
	}
	{
		al, fr := baselineFns(newBaseline())
		rep.SingleThread.BaselineNsPerPair = single(al, fr)
	}
	{
		al, fr := shardedFns(arena.New[benchNode]())
		rep.SingleThread.ShardedNsPerPair = single(al, fr)
	}
	rep.SingleThread.Ratio = rep.SingleThread.ShardedNsPerPair / rep.SingleThread.BaselineNsPerPair
	t.Logf("single-thread: baseline %.1f ns/pair, sharded %.1f ns/pair (ratio %.3f)",
		rep.SingleThread.BaselineNsPerPair, rep.SingleThread.ShardedNsPerPair, rep.SingleThread.Ratio)

	for _, g := range []int{1, 4, 16, 64} {
		row := churnRow{Goroutines: g}
		row.BaselineMops = bestMops(g, pairs, func() (func(int) uint64, func(int, uint64)) {
			return baselineFns(newBaseline())
		})
		row.ShardedMops = bestMops(g, pairs, func() (func(int) uint64, func(int, uint64)) {
			return shardedFns(arena.New[benchNode]())
		})
		row.Speedup = row.ShardedMops / row.BaselineMops
		rep.Churn = append(rep.Churn, row)
		t.Logf("churn g=%-2d: baseline %7.2f Mops, sharded %7.2f Mops (%.2fx)",
			g, row.BaselineMops, row.ShardedMops, row.Speedup)
	}

	if err := bench.WriteJSON("../../BENCH_alloc.json", rep); err != nil {
		t.Fatalf("writing BENCH_alloc.json: %v", err)
	}
}
