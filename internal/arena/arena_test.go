package arena

import (
	"sync"
	"testing"
	"testing/quick"
)

type node struct {
	Key  uint64
	Next uint64
}

func TestAllocFreeRoundtrip(t *testing.T) {
	a := New[node]()
	h, p := a.Alloc()
	if h.IsNil() {
		t.Fatal("alloc returned nil handle")
	}
	p.Key = 42
	if got := a.Get(h); got.Key != 42 {
		t.Fatalf("Get returned %d, want 42", got.Key)
	}
	a.Free(h)
	if _, ok := a.TryGet(h); ok {
		t.Fatal("TryGet succeeded on freed handle")
	}
}

func TestHandleNeverZero(t *testing.T) {
	a := New[node](WithChunkSize(8))
	for i := 0; i < 100; i++ {
		h, _ := a.Alloc()
		if uint64(h) == 0 {
			t.Fatal("valid handle equals Nil")
		}
	}
}

func TestGenerationBumpInvalidatesHandle(t *testing.T) {
	a := New[node]()
	h1, p := a.Alloc()
	p.Key = 1
	a.Free(h1)
	h2, _ := a.Alloc() // same slot, recycled
	if h1.Index() != h2.Index() {
		t.Fatalf("expected slot reuse, got %v then %v", h1, h2)
	}
	if h1.Gen() == h2.Gen() {
		t.Fatal("generation did not change on reuse")
	}
	if a.Valid(h1) {
		t.Fatal("stale handle still valid after reuse")
	}
	if !a.Valid(h2) {
		t.Fatal("fresh handle invalid")
	}
}

func TestStrictModePanicsOnUAF(t *testing.T) {
	a := New[node]()
	h, _ := a.Alloc()
	a.Free(h)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on use-after-free in Strict mode")
		}
	}()
	a.Get(h)
}

func TestCountModeRecordsUAF(t *testing.T) {
	a := New[node](WithFaultMode(Count))
	h, _ := a.Alloc()
	a.Free(h)
	z := a.Get(h)
	if z == nil {
		t.Fatal("Count mode returned nil")
	}
	if got := a.Stats().Faults; got != 1 {
		t.Fatalf("Faults = %d, want 1", got)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New[node]()
	h, _ := a.Alloc()
	a.Free(h)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	a.Free(h)
}

func TestFreeOfMarkedHandle(t *testing.T) {
	a := New[node]()
	h, _ := a.Alloc()
	a.Free(h.WithMark()) // tags must be ignored by Free
	if a.Valid(h) {
		t.Fatal("object still valid after Free of marked alias")
	}
}

func TestPoisonOnFree(t *testing.T) {
	a := New[node](WithFaultMode(Count))
	h, p := a.Alloc()
	p.Key = 99
	idx := h.Index()
	a.Free(h)
	// Peek at the raw slot: payload must be zeroed.
	s := a.slotAt(idx)
	if s.Val.Key != 0 {
		t.Fatalf("payload not poisoned: key=%d", s.Val.Key)
	}
}

func TestStatsTracking(t *testing.T) {
	a := New[node]()
	var hs []Handle
	for i := 0; i < 10; i++ {
		h, _ := a.Alloc()
		hs = append(hs, h)
	}
	st := a.Stats()
	if st.Allocs != 10 || st.Live != 10 || st.MaxLive != 10 {
		t.Fatalf("stats after 10 allocs: %+v", st)
	}
	for _, h := range hs[:7] {
		a.Free(h)
	}
	st = a.Stats()
	if st.Frees != 7 || st.Live != 3 || st.MaxLive != 10 {
		t.Fatalf("stats after 7 frees: %+v", st)
	}
}

func TestChunkGrowth(t *testing.T) {
	a := New[node](WithChunkSize(4))
	var hs []Handle
	for i := 0; i < 64; i++ {
		h, p := a.Alloc()
		p.Key = uint64(i)
		hs = append(hs, h)
	}
	for i, h := range hs {
		if a.Get(h).Key != uint64(i) {
			t.Fatalf("slot %d corrupted across chunk growth", i)
		}
	}
}

func TestHeaderWordsZeroedOnAlloc(t *testing.T) {
	a := New[node]()
	h, _ := a.Alloc()
	a.HdrA(h).Store(777)
	a.Free(h)
	h2, _ := a.Alloc() // recycles the slot
	if a.HdrA(h2).Load() != 0 {
		t.Fatal("header word leaked across reuse")
	}
}

func TestHandlePackProperty(t *testing.T) {
	f := func(idx uint32, gen uint32) bool {
		gen &= (1 << genBits) - 1
		h := Pack(idx, gen)
		return h.Index() == idx && h.Gen() == gen && h.Tags() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHandleTagProperty(t *testing.T) {
	f := func(idx uint32, gen uint32, mark, flag bool) bool {
		gen &= (1 << genBits) - 1
		h := Pack(idx, gen)
		if mark {
			h = h.WithMark()
		}
		if flag {
			h = h.WithFlag()
		}
		ok := h.Marked() == mark && h.Flagged() == flag
		ok = ok && h.Unmarked() == Pack(idx, gen)
		ok = ok && h.SameRef(Pack(idx, gen))
		ok = ok && h.WithoutMark().Marked() == false
		ok = ok && h.WithoutFlag().Flagged() == false
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarkedNilIsNil(t *testing.T) {
	if !Nil.WithMark().IsNil() {
		t.Fatal("marked nil should still be nil as a reference")
	}
	if Nil.WithMark() == Nil {
		t.Fatal("marked nil should differ bitwise from nil (CAS distinguishes them)")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := New[node](WithChunkSize(64))
	const workers = 8
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var held []Handle
			for i := 0; i < iters; i++ {
				h, p := a.Alloc()
				p.Key = seed
				held = append(held, h)
				if len(held) > 16 {
					// free a pseudo-random held handle
					j := int(seed+uint64(i)) % len(held)
					if a.Get(held[j]).Key != seed {
						panic("payload corrupted")
					}
					a.Free(held[j])
					held[j] = held[len(held)-1]
					held = held[:len(held)-1]
				}
			}
			for _, h := range held {
				a.Free(h)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	st := a.Stats()
	if st.Live != 0 {
		t.Fatalf("leak: %d live after all frees", st.Live)
	}
	if st.Allocs != workers*iters {
		t.Fatalf("allocs = %d, want %d", st.Allocs, workers*iters)
	}
}

func TestFreeListRecyclesBeforeGrowth(t *testing.T) {
	a := New[node]()
	h1, _ := a.Alloc()
	a.Free(h1)
	h2, _ := a.Alloc()
	if h2.Index() != h1.Index() {
		t.Fatalf("free list not used: got idx %d, want %d", h2.Index(), h1.Index())
	}
	st := a.Stats()
	if st.Slots != 1 {
		t.Fatalf("carved %d slots, want 1", st.Slots)
	}
}
