package arena

import (
	"fmt"
	"sync/atomic"
)

// FaultMode selects what a generation-check failure (use-after-free) does.
type FaultMode int

const (
	// Strict panics on a stale dereference — the reproduction's
	// segmentation fault. Tests and examples run Strict.
	Strict FaultMode = iota
	// Count records the fault and hands back a zombie object so the
	// caller can limp on; used by experiments that want to *measure*
	// how often a broken scheme faults instead of dying on the first.
	Count
)

const (
	maxChunks        = 1 << 14
	defaultChunkSize = 1 << 12

	stateFree uint32 = 0
	stateLive uint32 = 1

	idxNone uint32 = ^uint32(0)
)

// Slot is one allocation cell. HdrA and HdrB are two scheme-owned header
// words — the "extra words per object" column of the paper's Table 1.
// OrcGC keeps the _orc word in HdrA; hazard eras keeps birth/retire eras
// in HdrA/HdrB; plain pointer-based schemes leave them untouched.
type Slot[T any] struct {
	gen      atomic.Uint32
	state    atomic.Uint32
	freeNext atomic.Uint32 // free-list link, valid only while free
	_        uint32
	HdrA     atomic.Uint64
	HdrB     atomic.Uint64
	Val      T
}

type chunkOf[T any] struct {
	slots []Slot[T]
}

// Stats is a snapshot of an arena's allocation counters.
type Stats struct {
	Allocs  uint64 // total Alloc calls
	Frees   uint64 // total Free calls
	Live    int64  // Allocs - Frees
	MaxLive int64  // high-water mark of Live
	Faults  uint64 // stale dereferences observed (Count mode)
	Slots   uint64 // slots ever carved out of chunks
}

// Arena is a chunked slab allocator for values of type T.
// All methods are safe for concurrent use; Alloc and Free are lock-free.
type Arena[T any] struct {
	mode      FaultMode
	chunkSize uint32

	next     atomic.Uint64 // next never-used slot index
	freeHead atomic.Uint64 // packed (aba:32, idx:32) Treiber stack head

	allocs  atomic.Uint64
	frees   atomic.Uint64
	live    atomic.Int64
	maxLive atomic.Int64
	faults  atomic.Uint64

	zombie Slot[T] // target of stale derefs in Count mode

	chunks [maxChunks]atomic.Pointer[chunkOf[T]]
}

// Option configures an Arena.
type Option func(*config)

type config struct {
	mode      FaultMode
	chunkSize uint32
}

// WithFaultMode sets the use-after-free reaction (default Strict).
func WithFaultMode(m FaultMode) Option { return func(c *config) { c.mode = m } }

// WithChunkSize sets the number of slots per chunk (default 4096).
func WithChunkSize(n uint32) Option { return func(c *config) { c.chunkSize = n } }

// New creates an empty arena.
func New[T any](opts ...Option) *Arena[T] {
	cfg := config{mode: Strict, chunkSize: defaultChunkSize}
	for _, o := range opts {
		o(&cfg)
	}
	a := &Arena[T]{mode: cfg.mode, chunkSize: cfg.chunkSize}
	a.next.Store(1) // slot 0 reserved so no valid handle is ever 0
	a.freeHead.Store(packFree(0, idxNone))
	return a
}

func packFree(aba uint32, idx uint32) uint64 { return uint64(aba)<<32 | uint64(idx) }
func unpackFree(v uint64) (aba uint32, idx uint32) {
	return uint32(v >> 32), uint32(v)
}

func (a *Arena[T]) slotAt(idx uint32) *Slot[T] {
	c := idx / a.chunkSize
	ch := a.chunks[c].Load()
	if ch == nil {
		return nil
	}
	return &ch.slots[idx%a.chunkSize]
}

func (a *Arena[T]) ensureChunk(c uint32) *chunkOf[T] {
	if c >= maxChunks {
		panic(fmt.Sprintf("arena: out of chunks (%d slots exhausted)", uint64(maxChunks)*uint64(a.chunkSize)))
	}
	if ch := a.chunks[c].Load(); ch != nil {
		return ch
	}
	fresh := &chunkOf[T]{slots: make([]Slot[T], a.chunkSize)}
	if a.chunks[c].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return a.chunks[c].Load()
}

// Alloc carves out a slot and returns its handle plus a pointer for
// initialization. The payload is zeroed. The slot's header words are
// zeroed too; schemes that stamp headers (eras, orc) do so right after.
func (a *Arena[T]) Alloc() (Handle, *T) {
	idx := a.popFree()
	if idx == idxNone {
		idx = uint32(a.next.Add(1) - 1)
		a.ensureChunk(idx / a.chunkSize)
	}
	s := a.slotAt(idx)
	if !s.state.CompareAndSwap(stateFree, stateLive) {
		panic(fmt.Sprintf("arena: slot %d allocated while live", idx))
	}
	gen := s.gen.Load()
	if gen == 0 {
		// first use of a virgin slot
		s.gen.Store(1)
		gen = 1
	}
	var zero T
	s.Val = zero
	s.HdrA.Store(0)
	s.HdrB.Store(0)

	a.allocs.Add(1)
	l := a.live.Add(1)
	for {
		m := a.maxLive.Load()
		if l <= m || a.maxLive.CompareAndSwap(m, l) {
			break
		}
	}
	return Pack(idx, gen), &s.Val
}

func (a *Arena[T]) popFree() uint32 {
	for {
		old := a.freeHead.Load()
		aba, idx := unpackFree(old)
		if idx == idxNone {
			return idxNone
		}
		next := a.slotAt(idx).freeNext.Load()
		if a.freeHead.CompareAndSwap(old, packFree(aba+1, next)) {
			return idx
		}
	}
}

// Free returns the object named by h to the arena. The slot generation is
// bumped (invalidating every outstanding handle to the object) and the
// payload is poisoned (zeroed). Freeing a stale or nil handle panics:
// reclamation schemes must free each object exactly once.
func (a *Arena[T]) Free(h Handle) {
	h = h.Unmarked()
	if h.IsNil() {
		panic("arena: free of nil handle")
	}
	idx := h.Index()
	s := a.slotAt(idx)
	if s == nil || s.gen.Load() != h.Gen() {
		panic(fmt.Sprintf("arena: double free or stale free of %v", h))
	}
	var zero T
	s.Val = zero // poison: stale readers see a zeroed husk
	g := h.Gen() + 1
	if g >= 1<<genBits {
		g = 1
	}
	s.gen.Store(g)
	if !s.state.CompareAndSwap(stateLive, stateFree) {
		panic(fmt.Sprintf("arena: double free of %v", h))
	}
	for {
		old := a.freeHead.Load()
		aba, head := unpackFree(old)
		s.freeNext.Store(head)
		if a.freeHead.CompareAndSwap(old, packFree(aba+1, idx)) {
			break
		}
	}
	a.frees.Add(1)
	a.live.Add(-1)
}

// Get dereferences h, applying the generation check. Tag bits are
// ignored. In Strict mode a stale handle panics; in Count mode it is
// recorded and a zombie object is returned.
func (a *Arena[T]) Get(h Handle) *T {
	p, ok := a.TryGet(h)
	if !ok {
		a.faults.Add(1)
		if a.mode == Strict {
			panic(fmt.Sprintf("arena: use-after-free dereferencing %v", h.Unmarked()))
		}
		return &a.zombie.Val
	}
	return p
}

// TryGet dereferences h, reporting rather than reacting to staleness.
func (a *Arena[T]) TryGet(h Handle) (*T, bool) {
	h = h.Unmarked()
	if h.IsNil() {
		return nil, false
	}
	idx := h.Index()
	if uint64(idx) >= a.next.Load() {
		return nil, false
	}
	s := a.slotAt(idx)
	if s == nil || s.gen.Load() != h.Gen() || s.state.Load() != stateLive {
		return nil, false
	}
	return &s.Val, true
}

// Header returns the scheme header words of the (live or retired, but not
// yet freed) object named by h. Panics on a stale handle.
func (a *Arena[T]) Header(h Handle) (*atomic.Uint64, *atomic.Uint64) {
	h = h.Unmarked()
	idx := h.Index()
	s := a.slotAt(idx)
	if s == nil || s.gen.Load() != h.Gen() {
		panic(fmt.Sprintf("arena: use-after-free header access %v", h))
	}
	return &s.HdrA, &s.HdrB
}

// HdrA returns the first scheme header word (the _orc word under OrcGC).
func (a *Arena[T]) HdrA(h Handle) *atomic.Uint64 {
	p, _ := a.Header(h)
	return p
}

// Valid reports whether h currently names a live allocation.
func (a *Arena[T]) Valid(h Handle) bool {
	_, ok := a.TryGet(h)
	return ok
}

// Stats returns a snapshot of the arena counters.
func (a *Arena[T]) Stats() Stats {
	return Stats{
		Allocs:  a.allocs.Load(),
		Frees:   a.frees.Load(),
		Live:    a.live.Load(),
		MaxLive: a.maxLive.Load(),
		Faults:  a.faults.Load(),
		Slots:   a.next.Load() - 1,
	}
}
