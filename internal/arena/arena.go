package arena

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// FaultMode selects what a generation-check failure (use-after-free) does.
type FaultMode int

const (
	// Strict panics on a stale dereference — the reproduction's
	// segmentation fault. Tests and examples run Strict.
	Strict FaultMode = iota
	// Count records the fault and hands back a zombie object so the
	// caller can limp on; used by experiments that want to *measure*
	// how often a broken scheme faults instead of dying on the first.
	Count
)

const (
	maxChunks        = 1 << 14
	defaultChunkSize = 1 << 12

	idxNone uint32 = ^uint32(0)

	// cacheLine is the padding granularity keeping per-shard and
	// per-thread hot words on distinct lines (128 covers adjacent-line
	// prefetching).
	cacheLine = 128

	// maxTids bounds the tid space AllocT/FreeT accept; out-of-range
	// tids fall back to the shared sharded path.
	maxTids = 256

	// magCap is the capacity of a per-tid magazine; magBatch is the
	// number of slot indices moved per spill/refill between a magazine
	// and its home shard.
	magCap   = 64
	magBatch = 32

	// statStripes is the number of statistics stripes. Stripes are
	// selected by slot index (one carve batch lands in one stripe), so a
	// slot's alloc and free always hit the same stripe and per-stripe
	// Live never drifts negative the way tid-striped counters would
	// under producer/consumer workloads.
	statStripes = 64
	stripeShift = 5 // log2(magBatch): one carve batch maps to one stripe

	maxShards = 64
)

// Slot is one allocation cell. HdrA and HdrB are two scheme-owned header
// words — the "extra words per object" column of the paper's Table 1.
// OrcGC keeps the _orc word in HdrA; hazard eras keeps birth/retire eras
// in HdrA/HdrB; plain pointer-based schemes leave them untouched.
//
// Liveness is encoded in the generation's parity: odd while live, even
// while free (0 = virgin). Alloc and Free each bump the generation, so a
// handle (which always carries an odd generation) matches the slot
// exactly while its object is live — one atomic load validates both
// identity and liveness, and no separate state word is needed on the
// alloc/free path.
//
// The counter is a full 32-bit value while handles pack only genBits of
// it, so validity checks compare modulo 1<<genBits (masking keeps the
// parity bit). When the masked value would wrap to 0 — the virgin
// sentinel — the free path skips ahead by 2, preserving both parity and
// the "masked 0 means never allocated" invariant.
type Slot[T any] struct {
	gen      atomic.Uint32
	freeNext atomic.Uint32 // free-list link, valid only while free
	HdrA     atomic.Uint64
	HdrB     atomic.Uint64
	Val      T
}

type chunkOf[T any] struct {
	slots []Slot[T]
}

// Stats is a snapshot of an arena's allocation counters. Allocs, Frees
// and Live are exact at quiescence (they aggregate per-thread and shared
// counters; Live = Allocs - Frees). MaxLive sums per-stripe high-water
// marks of the (live ∪ magazine-cached) slot census and is therefore a
// ≥-approximation of the true high-water of Live: each stripe's maximum
// is at least its census at the moment the global peak occurred, and the
// census counts every live slot (cached ones only add), so the sum bounds
// the peak from above. The overshoot is bounded by the magazine capacity
// of the threads active at the peak.
type Stats struct {
	Allocs  uint64 // total Alloc/AllocT calls
	Frees   uint64 // total Free/FreeT calls
	Live    int64  // Allocs - Frees
	MaxLive int64  // upper bound on the high-water mark of Live
	Faults  uint64 // stale dereferences observed (Count mode)
	Slots   uint64 // slots ever carved out of chunks

	// Magazine traffic, counted only on the cold paths (a magazine hit
	// touches none of these): MagRefills is how many times an empty
	// magazine went to the shared pool, MagSpills how many times a full
	// one pushed a batch back, MagSteals how many refills had to rob a
	// sibling shard after the home shard ran dry. The magazine hit rate
	// is 1 - MagRefills·magBatch/Allocs to first order.
	MagRefills uint64
	MagSpills  uint64
	MagSteals  uint64
}

// Occupancy reports Live over the slots carved so far — the fraction of
// arena capacity holding live objects (0 when nothing was ever carved).
func (s Stats) Occupancy() float64 {
	if s.Slots == 0 {
		return 0
	}
	return float64(s.Live) / float64(s.Slots)
}

// MagHitRate estimates the AllocT fast-path rate: the fraction of
// allocations served from a magazine without touching the shared pool.
func (s Stats) MagHitRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	missed := s.MagRefills * magBatch
	if missed >= s.Allocs {
		return 0
	}
	return 1 - float64(missed)/float64(s.Allocs)
}

// Arena is a chunked slab allocator for values of type T.
//
// All methods are safe for concurrent use; Alloc/Free and AllocT/FreeT
// are lock-free. The free-slot pool is sharded: GOMAXPROCS-sized Treiber
// stacks (work-stealing between them) behind per-tid magazine caches that
// make the AllocT/FreeT common case entirely CAS-free on shared memory.
type Arena[T any] struct {
	mode       atomic.Int32 // FaultMode; atomic so SetFaultMode can flip it on a live arena
	faultHook  atomic.Pointer[func(Handle)]
	chunkSize  uint32
	chunkShift uint32
	chunkMask  uint32
	shardMask  uint32

	next atomic.Uint64 // next never-used slot index

	shards  []shard
	stripes [statStripes]stripe
	mags    [maxTids]atomic.Pointer[magazine]

	// Tid-less Alloc/Free counters (the sharded fallback path).
	sharedAllocs atomic.Uint64
	sharedFrees  atomic.Uint64
	faults       atomic.Uint64

	// Magazine cold-path counters (see Stats); bumped in refill/spill
	// only, never on a magazine hit.
	magRefills atomic.Uint64
	magSpills  atomic.Uint64
	magSteals  atomic.Uint64

	zombie Slot[T] // target of stale derefs in Count mode

	chunks [maxChunks]atomic.Pointer[chunkOf[T]]
}

// shard is one Treiber stack of free slot indices, alone on its cache
// line. The head packs (aba:32, idx:32) to defeat ABA.
type shard struct {
	head atomic.Uint64
	_    [cacheLine - 8]byte
}

// stripe is one statistics cell counting slots that are live or cached
// in a magazine; stripes are indexed by slot index so a slot's entry and
// exit always debit the same cell and per-stripe counts stay ≥ 0. The
// census changes only at pool boundaries (shared Alloc/Free, magazine
// spill/refill) — magazine hits touch no stripe at all.
type stripe struct {
	live    atomic.Int64
	maxLive atomic.Int64
	_       [cacheLine - 16]byte
}

// magazine is a per-tid cache of free slot indices plus that tid's
// single-writer alloc/free counters. Only the owning tid touches n and
// slots; the counters are written by the owner and read by Stats.
type magazine struct {
	n      uint32
	slots  [magCap]uint32
	allocs atomic.Uint64
	frees  atomic.Uint64
	_      [cacheLine]byte
}

// Option configures an Arena.
type Option func(*config)

type config struct {
	mode      FaultMode
	chunkSize uint32
	shards    uint32
}

// WithFaultMode sets the use-after-free reaction (default Strict).
func WithFaultMode(m FaultMode) Option { return func(c *config) { c.mode = m } }

// WithChunkSize sets the number of slots per chunk (default 4096).
// Non-power-of-two sizes are rounded up to the next power of two so slot
// addressing stays a shift and a mask.
func WithChunkSize(n uint32) Option { return func(c *config) { c.chunkSize = n } }

// WithShards sets the free-list shard count (default GOMAXPROCS, rounded
// up to a power of two, capped at 64). Tests use this to exercise the
// work-stealing path deterministically.
func WithShards(n uint32) Option { return func(c *config) { c.shards = n } }

func ceilPow2(n uint32) uint32 {
	if n <= 1 {
		return 1
	}
	return 1 << (32 - bits.LeadingZeros32(n-1))
}

// New creates an empty arena.
func New[T any](opts ...Option) *Arena[T] {
	cfg := config{mode: Strict, chunkSize: defaultChunkSize}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.chunkSize == 0 {
		cfg.chunkSize = defaultChunkSize
	}
	if cfg.shards == 0 {
		cfg.shards = uint32(runtime.GOMAXPROCS(0))
	}
	if cfg.shards > maxShards {
		cfg.shards = maxShards
	}
	cs := ceilPow2(cfg.chunkSize)
	ns := ceilPow2(cfg.shards)
	a := &Arena[T]{
		chunkSize:  cs,
		chunkShift: uint32(bits.TrailingZeros32(cs)),
		chunkMask:  cs - 1,
		shardMask:  ns - 1,
		shards:     make([]shard, ns),
	}
	for i := range a.shards {
		a.shards[i].head.Store(packFree(0, idxNone))
	}
	a.next.Store(1) // slot 0 reserved so no valid handle is ever 0
	a.mode.Store(int32(cfg.mode))
	return a
}

// SetFaultMode flips the use-after-free reaction on a live arena. The
// torture harness uses it to switch subjects built by ordinary
// constructors (which default to Strict) into Count mode so a run can
// measure faults instead of dying on the first one.
func (a *Arena[T]) SetFaultMode(m FaultMode) { a.mode.Store(int32(m)) }

// FaultMode returns the current use-after-free reaction.
func (a *Arena[T]) FaultMode() FaultMode { return FaultMode(a.mode.Load()) }

// SetFaultHook installs f to be called on every generation-check fault,
// in both modes, with the offending handle (nil uninstalls). Hooks run
// on the faulting goroutine before Strict mode panics; the torture
// harness uses one to attribute faults to the op that tripped them.
func (a *Arena[T]) SetFaultHook(f func(Handle)) {
	if f == nil {
		a.faultHook.Store(nil)
		return
	}
	a.faultHook.Store(&f)
}

// recordFault is the shared Count-mode accounting: bump the counter and
// fire the fault hook.
func (a *Arena[T]) recordFault(h Handle) {
	a.faults.Add(1)
	if f := a.faultHook.Load(); f != nil {
		(*f)(h)
	}
}

func packFree(aba uint32, idx uint32) uint64 { return uint64(aba)<<32 | uint64(idx) }
func unpackFree(v uint64) (aba uint32, idx uint32) {
	return uint32(v >> 32), uint32(v)
}

func (a *Arena[T]) slotAt(idx uint32) *Slot[T] {
	ch := a.chunks[idx>>a.chunkShift].Load()
	if ch == nil {
		return nil
	}
	return &ch.slots[idx&a.chunkMask]
}

func (a *Arena[T]) ensureChunk(c uint32) *chunkOf[T] {
	if c >= maxChunks {
		panic(fmt.Sprintf("arena: out of chunks (%d slots exhausted)", uint64(maxChunks)*uint64(a.chunkSize)))
	}
	if ch := a.chunks[c].Load(); ch != nil {
		return ch
	}
	fresh := &chunkOf[T]{slots: make([]Slot[T], a.chunkSize)}
	if a.chunks[c].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return a.chunks[c].Load()
}

// Get dereferences h, applying the generation check. Tag bits are
// ignored. In Strict mode a stale handle panics; in Count mode it is
// recorded and a zombie object is returned.
func (a *Arena[T]) Get(h Handle) *T {
	p, ok := a.TryGet(h)
	if !ok {
		a.recordFault(h)
		if FaultMode(a.mode.Load()) == Strict {
			panic(fmt.Sprintf("arena: use-after-free dereferencing %v", h.Unmarked()))
		}
		return &a.zombie.Val
	}
	return p
}

// TryGet dereferences h, reporting rather than reacting to staleness.
func (a *Arena[T]) TryGet(h Handle) (*T, bool) {
	h = h.Unmarked()
	if h.IsNil() {
		return nil, false
	}
	idx := h.Index()
	if uint64(idx) >= a.next.Load() {
		return nil, false
	}
	s := a.slotAt(idx)
	if s == nil || h.Gen()&1 == 0 || s.gen.Load()&genValMask != h.Gen() {
		return nil, false
	}
	return &s.Val, true
}

// Header returns the scheme header words of the (live or retired, but not
// yet freed) object named by h. A stale handle panics in Strict mode; in
// Count mode the fault is recorded and the zombie's header words come
// back so a limping run keeps limping instead of dying inside a scheme.
func (a *Arena[T]) Header(h Handle) (*atomic.Uint64, *atomic.Uint64) {
	h = h.Unmarked()
	idx := h.Index()
	s := a.slotAt(idx)
	if s == nil || h.Gen()&1 == 0 || s.gen.Load()&genValMask != h.Gen() {
		a.recordFault(h)
		if FaultMode(a.mode.Load()) == Strict {
			panic(fmt.Sprintf("arena: use-after-free header access %v", h))
		}
		return &a.zombie.HdrA, &a.zombie.HdrB
	}
	return &s.HdrA, &s.HdrB
}

// HdrA returns the first scheme header word (the _orc word under OrcGC).
func (a *Arena[T]) HdrA(h Handle) *atomic.Uint64 {
	p, _ := a.Header(h)
	return p
}

// Valid reports whether h currently names a live allocation.
func (a *Arena[T]) Valid(h Handle) bool {
	_, ok := a.TryGet(h)
	return ok
}

// Stats returns a snapshot of the arena counters. Exact at quiescence;
// see the Stats type for the MaxLive approximation.
func (a *Arena[T]) Stats() Stats {
	st := Stats{
		Allocs:     a.sharedAllocs.Load(),
		Frees:      a.sharedFrees.Load(),
		Faults:     a.faults.Load(),
		Slots:      a.next.Load() - 1,
		MagRefills: a.magRefills.Load(),
		MagSpills:  a.magSpills.Load(),
		MagSteals:  a.magSteals.Load(),
	}
	for i := range a.mags {
		if m := a.mags[i].Load(); m != nil {
			st.Allocs += m.allocs.Load()
			st.Frees += m.frees.Load()
		}
	}
	st.Live = int64(st.Allocs) - int64(st.Frees)
	for i := range a.stripes {
		st.MaxLive += a.stripes[i].maxLive.Load()
	}
	return st
}
