package arena

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestMagazineSpillRefillRoundtrip: a single tid churning more handles
// than a magazine holds must spill to its home shard and refill from it,
// never carving new slots once the pool is primed.
func TestMagazineSpillRefillRoundtrip(t *testing.T) {
	a := New[node](WithShards(8), WithChunkSize(64))
	const n = 200
	var hs []Handle
	for i := 0; i < n; i++ {
		h, p := a.AllocT(0)
		p.Key = uint64(i)
		hs = append(hs, h)
	}
	carved := a.Stats().Slots
	for _, h := range hs {
		a.FreeT(0, h)
	}
	hs = hs[:0]
	for i := 0; i < n; i++ {
		h, _ := a.AllocT(0)
		hs = append(hs, h)
	}
	if got := a.Stats().Slots; got != carved {
		t.Fatalf("Slots grew %d → %d: free→alloc cycle did not recycle", carved, got)
	}
	st := a.Stats()
	if st.Allocs != 2*n || st.Frees != n || st.Live != n {
		t.Fatalf("stats %+v, want allocs=%d frees=%d live=%d", st, 2*n, n, n)
	}
}

// TestWorkStealingRefill: a tid homed on an empty shard must steal freed
// slots from a sibling shard instead of carving fresh ones.
func TestWorkStealingRefill(t *testing.T) {
	a := New[node](WithShards(8), WithChunkSize(64))
	// Prime shard 5 directly with recycled slots (deterministic: the
	// spill/steal paths are what we are testing, not the P hash).
	var hs []Handle
	for i := 0; i < magBatch; i++ {
		h, _ := a.Alloc()
		hs = append(hs, h)
	}
	for _, h := range hs {
		a.freeToShard(5, h)
		a.sharedFrees.Add(1)
	}
	carved := a.Stats().Slots
	// tid 1 is homed on shard 1 (empty): its refill must sweep siblings
	// and find shard 5's stack.
	h, _ := a.AllocT(1)
	if got := a.Stats().Slots; got != carved {
		t.Fatalf("Slots grew %d → %d: refill carved instead of stealing", carved, got)
	}
	if h.IsNil() {
		t.Fatal("stolen alloc returned nil handle")
	}
}

// TestAllocTFreeTInterop: tid-less Alloc/Free and tid'd AllocT/FreeT must
// interoperate on one arena — objects allocated by one path freed by the
// other, with exact counters.
func TestAllocTFreeTInterop(t *testing.T) {
	a := New[node](WithShards(4))
	h1, _ := a.AllocT(3)
	h2, _ := a.Alloc()
	a.Free(h1)     // tid'd alloc, tid-less free
	a.FreeT(5, h2) // tid-less alloc, tid'd free (different tid, too)
	h3, _ := a.Alloc()
	a.FreeT(3, h3)
	st := a.Stats()
	if st.Allocs != 3 || st.Frees != 3 || st.Live != 0 {
		t.Fatalf("stats %+v, want allocs=3 frees=3 live=0", st)
	}
	if st.MaxLive < 2 {
		t.Fatalf("MaxLive=%d, want ≥ 2 (two objects were live at once)", st.MaxLive)
	}
}

// TestShardedStressChurn is the -race stress of the sharded allocator:
// concurrent AllocT/FreeT across tids mapping to distinct and shared
// shards, magazine spill/refill, cross-tid frees through channels
// (work-stealing), plus tid-less traffic. Asserts no slot is ever handed
// to two owners, Live is exact at quiescence, and MaxLive bounds the
// observed high-water from above.
func TestShardedStressChurn(t *testing.T) {
	a := New[node](WithShards(4), WithChunkSize(64))
	const (
		workers = 8
		iters   = 4000
	)
	var (
		wg       sync.WaitGroup
		trueLive atomic.Int64
		hiWater  atomic.Int64
	)
	// Cross-free channels: worker w hands every 7th handle to worker w+1.
	chans := make([]chan Handle, workers)
	for i := range chans {
		chans[i] = make(chan Handle, 256)
	}
	sample := func(l int64) {
		for {
			m := hiWater.Load()
			if l <= m || hiWater.CompareAndSwap(m, l) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var held []Handle
			seed := uint64(tid + 1)
			free := func(h Handle) {
				trueLive.Add(-1)
				a.FreeT(tid, h)
			}
			for i := 0; i < iters; i++ {
				h, p := a.AllocT(tid)
				p.Key = uint64(tid)<<32 | uint64(i)
				sample(trueLive.Add(1))
				if i%7 == 0 {
					// Hand to the neighbour; it frees with its own tid,
					// pushing the slot toward a different shard.
					select {
					case chans[(tid+1)%workers] <- h:
					default:
						held = append(held, h)
					}
				} else {
					held = append(held, h)
				}
				// Drain anything the neighbour handed us.
				for {
					select {
					case g := <-chans[tid]:
						free(g)
						continue
					default:
					}
					break
				}
				// Churn hard enough to overflow the magazine (magCap=64).
				if len(held) > 90 {
					seed = seed*6364136223846793005 + 1442695040888963407
					for k := 0; k < 48; k++ {
						j := int(seed>>33) % len(held)
						if got := a.Get(held[j]).Key >> 32; got != uint64(tid) {
							panic("payload corrupted across shards")
						}
						free(held[j])
						held[j] = held[len(held)-1]
						held = held[:len(held)-1]
						seed += uint64(k)
					}
				}
			}
			for _, h := range held {
				free(h)
			}
		}(w)
	}
	wg.Wait()
	// Drain handles still in flight in the channels.
	for i, c := range chans {
		for {
			select {
			case h := <-c:
				trueLive.Add(-1)
				a.FreeT(i, h)
				continue
			default:
			}
			break
		}
	}
	st := a.Stats()
	if st.Live != 0 {
		t.Fatalf("leak: Live=%d at quiescence", st.Live)
	}
	if st.Allocs != workers*iters {
		t.Fatalf("Allocs=%d, want %d", st.Allocs, workers*iters)
	}
	if st.Frees != st.Allocs {
		t.Fatalf("Frees=%d, want %d", st.Frees, st.Allocs)
	}
	if st.MaxLive < hiWater.Load() {
		t.Fatalf("MaxLive=%d below observed high-water %d", st.MaxLive, hiWater.Load())
	}
}

// TestMixedAPIsConcurrent: tid'd and tid-less callers on one arena under
// race detection; counters exact at quiescence.
func TestMixedAPIsConcurrent(t *testing.T) {
	a := New[node](WithShards(4), WithChunkSize(64))
	const iters = 3000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if tid%2 == 0 {
					h, _ := a.AllocT(tid)
					a.FreeT(tid, h)
				} else {
					h, _ := a.Alloc()
					a.Free(h)
				}
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats()
	if st.Allocs != 4*iters || st.Frees != 4*iters || st.Live != 0 {
		t.Fatalf("stats %+v, want allocs=frees=%d live=0", st, 4*iters)
	}
}

// TestMaxLiveSequentialExact: with a single allocating thread the striped
// MaxLive bound holds (it counts magazine-cached slots too, so it may
// overshoot by at most one refill batch per stripe).
func TestMaxLiveSequentialExact(t *testing.T) {
	a := New[node]()
	var hs []Handle
	for i := 0; i < 100; i++ {
		h, _ := a.AllocT(0)
		hs = append(hs, h)
	}
	for _, h := range hs {
		a.FreeT(0, h)
	}
	st := a.Stats()
	if st.Live != 0 || st.MaxLive < 100 {
		t.Fatalf("stats %+v, want live=0 maxLive≥100", st)
	}
}

// TestChunkSizeRoundsToPow2: WithChunkSize must round up so slot
// addressing stays shift/mask.
func TestChunkSizeRoundsToPow2(t *testing.T) {
	a := New[node](WithChunkSize(100)) // rounds to 128
	if a.chunkSize != 128 || a.chunkMask != 127 || a.chunkShift != 7 {
		t.Fatalf("chunkSize=%d shift=%d mask=%d, want 128/7/127", a.chunkSize, a.chunkShift, a.chunkMask)
	}
	// And addressing still works across chunk boundaries.
	var hs []Handle
	for i := 0; i < 300; i++ {
		h, p := a.Alloc()
		p.Key = uint64(i)
		hs = append(hs, h)
	}
	for i, h := range hs {
		if a.Get(h).Key != uint64(i) {
			t.Fatalf("slot %d corrupted", i)
		}
	}
}

// TestOutOfRangeTidFallsBack: AllocT/FreeT with a tid outside the
// magazine space must degrade to the shared path, not fault.
func TestOutOfRangeTidFallsBack(t *testing.T) {
	a := New[node]()
	h, _ := a.AllocT(maxTids + 7)
	a.FreeT(-1, h)
	st := a.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.Live != 0 {
		t.Fatalf("stats %+v, want allocs=frees=1 live=0", st)
	}
}
