package arena

import (
	"runtime"
	"sync"
	"testing"
)

// These are the generation-width regression tests: slot generation
// counters are full 32-bit values while handles pack only genBits (30)
// of them. Before the masked comparisons, a hot slot whose raw counter
// crossed 1<<genBits spuriously faulted on every dereference forever.
// Driving 2^30 real alloc/free cycles is minutes of work, so the tests
// inject the raw counter state directly.

// TestGenWidthMaskedCompare: a live handle must stay valid when the
// slot's raw generation carries bits above genBits (the state a
// full-width counter reaches after 2^30 alloc/free cycles). Fails on
// the pre-fix arena, whose checks compared the raw counter against the
// masked handle generation.
func TestGenWidthMaskedCompare(t *testing.T) {
	a := New[node]()
	h, p := a.Alloc()
	p.Key = 42
	s := a.slotAt(h.Index())

	// Simulate the counter having crossed 2^30: same masked value, raw
	// bits above genBits set.
	s.gen.Store(s.gen.Load() + 1<<genBits)

	if !a.Valid(h) {
		t.Fatal("live handle rejected once the raw generation crossed 2^30")
	}
	if q, ok := a.TryGet(h); !ok || q.Key != 42 {
		t.Fatalf("TryGet ok=%v on a live high-generation slot", ok)
	}
	if hdr, _ := a.Header(h); hdr == nil {
		t.Fatal("Header rejected a live high-generation slot")
	}
	if st := a.Stats(); st.Faults != 0 {
		t.Fatalf("spurious faults recorded: %d", st.Faults)
	}

	// The free path must also compare masked, or the slot is stuck.
	a.Free(h)
	if a.Valid(h) {
		t.Fatal("freed handle still valid")
	}
	h2, _ := a.Alloc()
	if h2.Index() != h.Index() {
		t.Fatalf("slot not recycled: %v vs %v", h2, h)
	}
	if h2.Gen()&1 != 1 {
		t.Fatalf("post-2^30 handle generation %d is not odd", h2.Gen())
	}
	if !a.Valid(h2) {
		t.Fatal("recycled high-generation handle invalid")
	}
}

// TestGenWrapCycles drives one slot through the masked wrap boundary
// with real alloc/free cycles (raw counter injected just below the
// boundary), checking at every step that the live handle validates, the
// freed handle faults, and the masked counter never revisits the virgin
// value 0.
func TestGenWrapCycles(t *testing.T) {
	a := New[node]()
	h, _ := a.Alloc()
	s := a.slotAt(h.Index())
	a.Free(h)

	// Park the raw counter a little below the masked wrap.
	s.gen.Store((1 << genBits) - 64)
	var prev Handle
	for i := 0; i < 4096; i++ {
		nh, _ := a.Alloc()
		if !a.Valid(nh) {
			t.Fatalf("cycle %d: live handle invalid (gen %d)", i, nh.Gen())
		}
		if !prev.IsNil() && a.Valid(prev) {
			t.Fatalf("cycle %d: stale handle from previous cycle still valid", i)
		}
		if g := s.gen.Load() & genValMask; g == 0 {
			t.Fatalf("cycle %d: masked generation hit the virgin value while live", i)
		}
		a.Free(nh)
		if g := s.gen.Load() & genValMask; g == 0 {
			t.Fatalf("cycle %d: masked generation hit the virgin value after free", i)
		}
		if a.Valid(nh) {
			t.Fatalf("cycle %d: freed handle still valid", i)
		}
		prev = nh
	}
}

// TestCountModeHeaderFault: in Count mode a stale Header access is
// recorded and answered with the zombie's header words instead of a
// panic, so a torture run can keep going and report the total.
func TestCountModeHeaderFault(t *testing.T) {
	a := New[node](WithFaultMode(Count))
	h, _ := a.Alloc()
	a.Free(h)
	hdrA, hdrB := a.Header(h)
	if hdrA == nil || hdrB == nil {
		t.Fatal("Count-mode Header returned nil words")
	}
	if hdrA != &a.zombie.HdrA || hdrB != &a.zombie.HdrB {
		t.Fatal("Count-mode Header did not return the zombie words")
	}
	if st := a.Stats(); st.Faults != 1 {
		t.Fatalf("Faults=%d want 1", st.Faults)
	}
}

// TestSetFaultModeAndHook: flipping a Strict arena to Count on the fly
// suppresses the panic, and the fault hook sees the offending handle.
func TestSetFaultModeAndHook(t *testing.T) {
	a := New[node]()
	var seen []Handle
	a.SetFaultHook(func(h Handle) { seen = append(seen, h) })
	a.SetFaultMode(Count)
	h, _ := a.Alloc()
	a.Free(h)
	_ = a.Get(h) // would panic under Strict
	if len(seen) != 1 || seen[0].Unmarked() != h.Unmarked() {
		t.Fatalf("fault hook saw %v, want [%v]", seen, h)
	}
	if st := a.Stats(); st.Faults != 1 {
		t.Fatalf("Faults=%d want 1", st.Faults)
	}
	a.SetFaultHook(nil)
	_ = a.Get(h)
	if len(seen) != 1 {
		t.Fatal("uninstalled fault hook still firing")
	}
}

// TestHomeShardConcurrentAllocFree is the -race witness for the tid-less
// path: homeShard reads the P id under procPin and releases the pin
// before the shard stacks are touched. The P index is only a
// contention-spreading hint, so the post-unpin use is benign — this test
// documents that by hammering Alloc/Free from more goroutines than Ps
// while GOMAXPROCS shifts underneath them.
func TestHomeShardConcurrentAllocFree(t *testing.T) {
	a := New[node](WithShards(4))
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var held []Handle
			for i := 0; i < iters; i++ {
				if i == iters/2 && seed == 0 {
					// Shift the P space mid-run so pinned ids go stale.
					runtime.GOMAXPROCS(2)
				}
				h, p := a.Alloc()
				p.Key = uint64(seed)<<32 | uint64(i)
				held = append(held, h)
				if len(held) >= 8 {
					for _, o := range held {
						a.Free(o)
					}
					held = held[:0]
				}
			}
			for _, o := range held {
				a.Free(o)
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats()
	if st.Live != 0 {
		t.Fatalf("Live=%d after balanced alloc/free", st.Live)
	}
	if st.Allocs != workers*iters {
		t.Fatalf("Allocs=%d want %d", st.Allocs, workers*iters)
	}
}
