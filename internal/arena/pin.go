package arena

import (
	_ "unsafe" // for go:linkname
)

// The tid-less Alloc/Free fallback hashes callers to a shard by the P
// they are running on, the same trick sync.Pool uses to get a
// contention-free shard hint without a thread id. The shard index is
// computed while pinned (see homeShard) and the pin is dropped before
// the shard is touched: the index is only a contention hint, so a
// migration after unpin at worst picks a suboptimal shard, never an
// incorrect one.

//go:linkname runtime_procPin runtime.procPin
func runtime_procPin() int

//go:linkname runtime_procUnpin runtime.procUnpin
func runtime_procUnpin()
