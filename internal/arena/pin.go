package arena

import (
	_ "unsafe" // for go:linkname
)

// The tid-less Alloc/Free fallback hashes callers to a shard by the P
// they are running on, the same trick sync.Pool uses to get a
// contention-free shard hint without a thread id. Pin/unpin immediately:
// the P index is only a hash, a stale value just picks a suboptimal
// shard.

//go:linkname runtime_procPin runtime.procPin
func runtime_procPin() int

//go:linkname runtime_procUnpin runtime.procUnpin
func runtime_procUnpin()
