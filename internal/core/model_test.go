package core

import (
	"math/rand"
	"testing"

	"repro/internal/arena"
)

// TestReachabilityModel drives the domain with random sequences of
// Make/Store/Load/CopyPtr/Release/chain-link operations against a
// reference graph, then checks that after all local references die and
// the matrix is flushed, the arena's live population is exactly the set
// of nodes reachable from the surviving roots. This is the paper's
// automatic-reclamation contract stated as one property: an object is
// alive iff a root path or nothing — never more, never less.
func TestReachabilityModel(t *testing.T) {
	const (
		numRoots = 6
		numOps   = 4000
		seeds    = 8
	)
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d := newTestDomain(1)
			roots := make([]Atomic, numRoots)

			// Reference model: node id → successor id (0 = nil), and
			// per-root current node id.
			type modelNode struct{ next int }
			model := map[int]*modelNode{}
			rootModel := make([]int, numRoots)
			handles := map[int]arena.Handle{}
			nextID := 1

			var p Ptr
			for op := 0; op < numOps; op++ {
				r := rng.Intn(numRoots)
				switch rng.Intn(5) {
				case 0: // fresh node into root r
					id := nextID
					nextID++
					h := d.Make(0, func(n *tNode) { n.Val = uint64(id) }, &p)
					d.Store(0, &roots[r], p.H())
					d.Release(0, &p)
					model[id] = &modelNode{}
					handles[id] = h
					rootModel[r] = id
				case 1: // clear root r
					d.Store(0, &roots[r], arena.Nil)
					rootModel[r] = 0
				case 2: // alias: root r := root r2
					r2 := rng.Intn(numRoots)
					h := d.LoadScratch(0, &roots[r2])
					var lp Ptr
					d.AdoptScratch(0, &lp, h)
					d.Store(0, &roots[r], lp.H())
					d.Release(0, &lp)
					rootModel[r] = rootModel[r2]
				case 3: // link: node-at-root-r.next := root r2's node
					if rootModel[r] == 0 {
						continue
					}
					r2 := rng.Intn(numRoots)
					// Refuse to create a cycle: OrcGC (like the paper,
					// §4) requires unreachable objects to be acyclic.
					cyc := false
					for id := rootModel[r2]; id != 0; id = model[id].next {
						if id == rootModel[r] {
							cyc = true
							break
						}
					}
					if cyc {
						continue
					}
					var a, b Ptr
					d.Load(0, &roots[r], &a)
					hb := d.Load(0, &roots[r2], &b)
					// Guard against model/structure divergence windows:
					// single-threaded, so they cannot diverge.
					node := d.Get(a.H())
					d.Store(0, &node.Next, hb)
					model[rootModel[r]].next = rootModel[r2]
					d.Release(0, &a)
					d.Release(0, &b)
				case 4: // unlink: node-at-root-r.next := nil
					if rootModel[r] == 0 {
						continue
					}
					var a Ptr
					d.Load(0, &roots[r], &a)
					node := d.Get(a.H())
					d.Store(0, &node.Next, arena.Nil)
					model[rootModel[r]].next = 0
					d.Release(0, &a)
				}
			}

			// Compute the model's reachable set.
			reachable := map[int]bool{}
			var mark func(id int)
			mark = func(id int) {
				for id != 0 && !reachable[id] {
					reachable[id] = true
					id = model[id].next
				}
			}
			for _, id := range rootModel {
				mark(id)
			}

			d.FlushAll()
			live := d.arena.Stats().Live
			if live != int64(len(reachable)) {
				t.Fatalf("seed %d: live=%d, model reachable=%d", seed, live, len(reachable))
			}
			// Every reachable node must still be valid and hold its id.
			for id := range reachable {
				h := handles[id]
				if !d.arena.Valid(h) {
					t.Fatalf("seed %d: reachable node %d was freed", seed, id)
				}
				if d.Get(h).Val != uint64(id) {
					t.Fatalf("seed %d: node %d payload corrupted", seed, id)
				}
			}
			// And tearing down the roots must reclaim everything.
			for i := range roots {
				d.Store(0, &roots[i], arena.Nil)
			}
			d.FlushAll()
			if live := d.arena.Stats().Live; live != 0 {
				t.Fatalf("seed %d: %d nodes leaked after teardown", seed, live)
			}
		})
	}
}
