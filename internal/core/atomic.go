package core

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/rt"
)

// Atomic is the Go rendering of the paper's orc_atomic<T*> (Algorithm 4):
// a shared hard link between tracked objects. Every mutation goes through
// Domain methods so the referents' _orc counters are maintained; the zero
// value is a nil link. Nodes embed one Atomic per shared pointer field.
type Atomic struct {
	v atomic.Uint64
}

// Raw returns the current handle without protecting it. Safe only for
// tag-bit inspection or comparison against already-protected handles,
// never for dereferencing.
func (a *Atomic) Raw() arena.Handle { return arena.Handle(a.v.Load()) }

// incrementOrc is Algorithm 4 lines 38–43. Precondition (Proposition 1):
// the caller already holds h published in some hazardous pointer (it came
// from a live Ptr or from Make).
func (d *Domain[T]) incrementOrc(tid int, h arena.Handle) {
	if h.IsNil() {
		return
	}
	h = h.Unmarked()
	orc := d.arena.HdrA(h)
	lorc := orc.Add(seqUnit + 1)
	if ocnt(lorc) != orcZero {
		return
	}
	// The increment landed the counter exactly back at zero (a racing
	// unlink got ahead of us): this thread saw it last, so it retires.
	if orc.CompareAndSwap(lorc, lorc+bretired) {
		d.retire(tid, h)
	}
}

// decrementOrc is Algorithm 4 lines 45–51. The object may not be
// protected by the caller (e.g. the displaced value of a store), so per
// Proposition 1 it is published in the scratch hazardous pointer hp[0]
// before the counter moves.
func (d *Domain[T]) decrementOrc(tid int, h arena.Handle) {
	if h.IsNil() {
		return
	}
	h = h.Unmarked()
	if t := d.tl[tid]; !t.pub(0, uint64(h)) {
		// Proposition 1 is satisfied by the existing publication: the
		// scratch slot has held h since an earlier seq-cst store.
		t.noteElide()
	}
	orc := d.arena.HdrA(h)
	lorc := orc.Add(seqUnit - 1)
	if ocnt(lorc) != orcZero {
		return
	}
	if orc.CompareAndSwap(lorc, lorc+bretired) {
		d.retire(tid, h)
	}
}

// Store is orc_atomic::store (Algorithm 4 lines 63–67): increment the new
// referent, exchange, decrement the displaced one. h must be nil or
// protected by a live Ptr of the calling thread.
func (d *Domain[T]) Store(tid int, a *Atomic, h arena.Handle) {
	d.incrementOrc(tid, h)
	old := arena.Handle(a.v.Swap(uint64(h)))
	d.decrementOrc(tid, old)
}

// CAS is orc_atomic::compare_exchange_strong (Algorithm 4 lines 69–74).
// The counter updates happen only after the CAS succeeds — the paper
// orders the increment after the instruction to avoid contention on _orc
// for failing CASes, which is why the counter can transiently go
// negative. new must be nil or protected by the calling thread; old and
// new may carry tag bits, which participate in the comparison bitwise.
func (d *Domain[T]) CAS(tid int, a *Atomic, old, new arena.Handle) bool {
	if !a.v.CompareAndSwap(uint64(old), uint64(new)) {
		return false
	}
	d.incrementOrc(tid, new)
	d.decrementOrc(tid, old)
	return true
}

// Exchange atomically replaces the link and returns the previous handle,
// maintaining both counters. The returned handle is protected in the
// scratch slot (decrementOrc published it); callers wanting to keep it
// must move it into a Ptr immediately via AdoptScratch.
func (d *Domain[T]) Exchange(tid int, a *Atomic, h arena.Handle) arena.Handle {
	d.incrementOrc(tid, h)
	old := arena.Handle(a.v.Swap(uint64(h)))
	d.decrementOrc(tid, old)
	return old
}

// Load is orc_atomic::load (Algorithm 4 lines 76–79) fused with the
// orc_ptr assignment the C++ caller performs on the returned temporary:
// the value is protected in the scratch slot hp[0] and then transferred
// into p following the Algorithm 7 assignment rules. The returned handle
// keeps its tag bits.
func (d *Domain[T]) Load(tid int, a *Atomic, p *Ptr) arena.Handle {
	h := d.getProtected(tid, 0, a)
	d.assign(tid, p, h, 0)
	return h
}

// LoadScratch protects the link's current value in the scratch slot and
// returns it without binding it to a Ptr — the equivalent of using the
// temporary orc_ptr returned by load() only for a comparison (e.g.
// `node != tail.load()` in Algorithm 1). The protection lasts until the
// scratch slot is next reused.
func (d *Domain[T]) LoadScratch(tid int, a *Atomic) arena.Handle {
	return d.getProtected(tid, 0, a)
}

// PublishWithSwap selects how hazardous pointers are published: false
// uses an atomic store, true an atomic exchange. The paper attributes
// its Intel-vs-AMD gap to exactly this instruction choice (§5: replacing
// the exchange with an mfence-backed store made AMD behave like Intel),
// so the cross-machine figures become an ablation over this knob here.
// Flip only while the domain is quiescent.
var PublishWithSwap atomic.Bool

// getProtected is the PTP/HP publication loop over an orc link,
// publishing the unmarked handle at hp[tid][idx]. The loop seeds its
// published value from the slot's shadow: when the link still holds
// what the slot already protects — the common case when re-reading a
// link just traversed — the call validates immediately with no store
// (the protection fast path). The elision is safe because the slot has
// continuously published the value since an earlier seq-cst store, so
// every retire scan ordered after that store sees it; the validating
// re-read of the link is unchanged.
func (d *Domain[T]) getProtected(tid int, idx int32, a *Atomic) arena.Handle {
	t := d.tl[tid]
	swap := PublishWithSwap.Load()
	published := t.shadow[idx]
	stored := false
	for {
		v := arena.Handle(a.v.Load())
		u := uint64(v.Unmarked())
		if u == published {
			if !stored {
				t.noteElide()
			}
			// Torture injection point: hp[tid][idx] is published and
			// validated, so a stall parked here pins the object (and,
			// transitively, whatever hands over to this slot) — on the
			// elided path the publication predates this call entirely.
			rt.Step(rt.SiteProtect, tid)
			return v
		}
		if swap {
			t.hp[idx].Swap(u)
		} else {
			t.hp[idx].Store(u)
		}
		t.shadow[idx] = u
		published = u
		stored = true
	}
}
