package core

import (
	"repro/internal/arena"
	"repro/internal/rt"
)

// retire is Algorithm 5 lines 92–118. The caller owns the object: it won
// the CAS that set BRETIRED. The object is deleted only once a full
// hazardous-pointer scan finds no protection while the _orc sequence
// stays unchanged (Lemma 1); if the scan finds a protection, the object
// is handed over to the protecting slot; if the counter moved, BRETIRED
// is cleared and responsibility is re-negotiated.
//
// Deleting an object decrements its children, which can cascade; nested
// retires triggered while retireStarted is set are queued on
// recursiveList and processed iteratively, keeping stack depth O(1).
func (d *Domain[T]) retire(tid int, h arena.Handle) {
	t := d.tl[tid]
	rt.Step(rt.SiteRetire, tid)
	d.retires.Add(1)
	if t.retireStarted {
		t.recursive = append(t.recursive, h)
		return
	}
	t.retireStarted = true
	for i := 0; ; i++ {
		for !h.IsNil() {
			orc := d.arena.HdrA(h)
			lorc := orc.Load()
			if ocnt(lorc) != bretired|orcZero {
				// The counter moved since BRETIRED was set: a local
				// reference re-linked the object. Step down; if the
				// counter is back at zero afterwards we re-own it.
				if lorc = d.clearBitRetired(tid, h); lorc == 0 {
					break
				}
			}
			if d.tryHandover(&h) {
				continue
			}
			lorc2 := orc.Load()
			if lorc2 != lorc {
				// Sequence moved during the scan: a protection may
				// have slipped behind it (Lemma 1 fails). Re-validate
				// ownership and rescan.
				if ocnt(lorc2) != bretired|orcZero {
					if d.clearBitRetired(tid, h) == 0 {
						break
					}
				}
				continue
			}
			d.deleteObj(tid, h)
			break
		}
		if i >= len(t.recursive) {
			break
		}
		h = t.recursive[i]
	}
	t.recursive = t.recursive[:0]
	t.retireStarted = false
}

// tryHandover is Algorithm 6 lines 134–145: scan every published
// hazardous pointer up to the index watermark; on a match, exchange the
// object into the paired handover slot and adopt whatever was parked
// there.
func (d *Domain[T]) tryHandover(h *arena.Handle) bool {
	lmax := int32(d.maxHPs.Load())
	for it := 0; it < d.maxThreads; it++ {
		t := d.tl[it]
		for idx := int32(0); idx < lmax; idx++ {
			if uint64(*h) == t.hp[idx].Load() {
				*h = arena.Handle(t.handovers[idx].Swap(uint64(*h)))
				return true
			}
		}
	}
	return false
}

// clearBitRetired is Algorithm 6 lines 147–158: relinquish retirement.
// Publishing h in the scratch slot first satisfies Proposition 1 for the
// counter update. Returns the post-CAS _orc value if the counter was back
// at zero and this thread re-acquired BRETIRED (it still owns the
// object), or 0 if ownership lapsed.
func (d *Domain[T]) clearBitRetired(tid int, h arena.Handle) uint64 {
	t := d.tl[tid]
	t.pub(0, uint64(h))
	orc := d.arena.HdrA(h)
	lorc := orc.Add(^bretired + 1) // fetch_add(-BRETIRED)
	if ocnt(lorc) == orcZero && orc.CompareAndSwap(lorc, lorc+bretired) {
		t.pub(0, 0)
		return lorc + bretired
	}
	t.pub(0, 0)
	return 0
}

// deleteObj destroys the object: visit every orc_atomic field to drop the
// hard links it holds (the C++ member-destructor walk, Algorithm 4 lines
// 58–61), then return the slot to the arena.
func (d *Domain[T]) deleteObj(tid int, h arena.Handle) {
	obj := d.arena.Get(h)
	if d.links != nil {
		d.links(obj, func(a *Atomic) {
			d.decrementOrc(tid, arena.Handle(a.v.Load()))
		})
	}
	rt.Step(rt.SiteReclaim, tid)
	d.arena.FreeT(tid, h)
	d.frees.Add(1)
}
