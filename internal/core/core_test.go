package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/arena"
)

// tNode is a minimal tracked node with one orc link.
type tNode struct {
	Val  uint64
	Next Atomic
}

func newTestDomain(threads int) *Domain[tNode] {
	a := arena.New[tNode]()
	return NewDomain(a, func(n *tNode, visit func(*Atomic)) {
		visit(&n.Next)
	}, DomainConfig{MaxThreads: threads, MaxHPs: 16})
}

func TestOrcWordProperties(t *testing.T) {
	f := func(incs, decs uint8) bool {
		w := orcZero
		for i := 0; i < int(incs); i++ {
			w += seqUnit + 1
		}
		for i := 0; i < int(decs); i++ {
			w += seqUnit - 1
		}
		if orcCount(w) != int64(incs)-int64(decs) {
			return false
		}
		if orcSeq(w) != uint64(incs)+uint64(decs) {
			return false
		}
		// ocnt == ORC_ZERO exactly when the counter nets to zero and
		// BRETIRED is clear.
		return (ocnt(w) == orcZero) == (incs == decs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrcWordRetiredBit(t *testing.T) {
	w := orcZero + bretired
	if !orcRetired(w) {
		t.Fatal("retired bit not detected")
	}
	if ocnt(w) != (bretired | orcZero) {
		t.Fatal("ocnt must include the BRETIRED bit")
	}
	w += ^bretired + 1 // clear via fetch_add(-BRETIRED)
	if orcRetired(w) || ocnt(w) != orcZero {
		t.Fatalf("clearing BRETIRED broke the word: %x", w)
	}
}

// TestMakeReleaseReclaims: an object never linked anywhere dies when its
// only Ptr is released.
func TestMakeReleaseReclaims(t *testing.T) {
	d := newTestDomain(2)
	var p Ptr
	h := d.Make(0, func(n *tNode) { n.Val = 7 }, &p)
	if d.Get(h).Val != 7 {
		t.Fatal("init not applied")
	}
	d.Release(0, &p)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("unlinked object survived Release")
	}
	if live := d.arena.Stats().Live; live != 0 {
		t.Fatalf("%d objects leaked", live)
	}
}

// TestHardLinkKeepsAlive: a hard link from a root Atomic pins the object
// after all local references die; removing the link reclaims it.
func TestHardLinkKeepsAlive(t *testing.T) {
	d := newTestDomain(2)
	var root Atomic
	var p Ptr
	h := d.Make(0, func(n *tNode) { n.Val = 1 }, &p)
	d.Store(0, &root, p.H())
	d.Release(0, &p)
	d.FlushAll()
	if !d.arena.Valid(h) {
		t.Fatal("hard-linked object reclaimed")
	}
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("object survived unlinking")
	}
}

// TestLoadProtects: a Ptr from Load keeps the object alive through a
// concurrent unlink.
func TestLoadProtects(t *testing.T) {
	d := newTestDomain(2)
	var root Atomic
	var p Ptr
	h := d.Make(0, nil, &p)
	d.Store(0, &root, p.H())
	d.Release(0, &p)

	var lp Ptr
	got := d.Load(1, &root, &lp) // thread 1 takes a protected local ref
	if got != h {
		t.Fatalf("Load returned %v want %v", got, h)
	}
	d.Store(0, &root, arena.Nil) // thread 0 unlinks
	if !d.arena.Valid(h) {
		t.Fatal("object freed while a Ptr protects it")
	}
	_ = d.Get(lp.H()) // must not fault
	d.Release(1, &lp)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("object survived final release")
	}
}

// TestChainCollapse: dropping the head of a long chain reclaims every
// node without deep recursion (Algorithm 5's recursiveList).
func TestChainCollapse(t *testing.T) {
	d := newTestDomain(2)
	var root Atomic
	const n = 50_000

	var prev Ptr
	d.Make(0, func(nd *tNode) { nd.Val = 0 }, &prev)
	d.Store(0, &root, prev.H())
	for i := 1; i < n; i++ {
		var p Ptr
		d.Make(0, func(nd *tNode) { nd.Val = uint64(i) }, &p)
		d.Store(0, &d.Get(prev.H()).Next, p.H())
		d.CopyPtr(0, &prev, &p)
		d.Release(0, &p)
	}
	d.Release(0, &prev)
	if live := d.arena.Stats().Live; live != n {
		t.Fatalf("built %d, want %d", live, n)
	}

	d.Store(0, &root, arena.Nil) // drop the chain head
	d.FlushAll()
	if live := d.arena.Stats().Live; live != 0 {
		t.Fatalf("chain collapse leaked %d of %d nodes", live, n)
	}
}

// TestReinsertion: the paper's third obstacle — an object that reaches
// zero hard links while a thread holds a local reference can be linked
// back in and must not be reclaimed.
func TestReinsertion(t *testing.T) {
	d := newTestDomain(2)
	var rootA, rootB Atomic
	var p Ptr
	h := d.Make(0, func(n *tNode) { n.Val = 42 }, &p)
	d.Store(0, &rootA, p.H())

	var lp Ptr
	d.Load(1, &rootA, &lp) // thread 1 holds a local ref

	d.Store(0, &rootA, arena.Nil) // zero hard links: retired internally
	if !d.arena.Valid(h) {
		t.Fatal("freed while locally referenced")
	}

	d.Store(1, &rootB, lp.H()) // thread 1 re-inserts via its local ref
	d.Release(1, &lp)
	d.FlushAll()
	if !d.arena.Valid(h) {
		t.Fatal("re-inserted object was reclaimed")
	}
	if d.Get(h).Val != 42 {
		t.Fatal("payload damaged across retire/reinsert")
	}

	d.Store(1, &rootB, arena.Nil)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("object survived final unlink")
	}
}

// TestCopyPtrSharing: two Ptrs to the same object; the object survives
// until both are released.
func TestCopyPtrSharing(t *testing.T) {
	d := newTestDomain(2)
	var p, q Ptr
	h := d.Make(0, nil, &p)
	d.CopyPtr(0, &q, &p)
	d.Release(0, &p)
	if !d.arena.Valid(h) {
		t.Fatal("freed while q still holds it")
	}
	_ = d.Get(q.H())
	d.Release(0, &q)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("object survived both releases")
	}
}

// TestCASMaintainsCounts: successful CAS moves both counters; failed CAS
// moves neither.
func TestCASMaintainsCounts(t *testing.T) {
	d := newTestDomain(2)
	var root Atomic
	var p1, p2 Ptr
	h1 := d.Make(0, nil, &p1)
	h2 := d.Make(0, nil, &p2)
	d.Store(0, &root, h1)

	if d.CAS(0, &root, h2, h1) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if !d.CAS(0, &root, h1, h2) {
		t.Fatal("CAS failed")
	}
	d.Release(0, &p1)
	d.Release(0, &p2)
	d.FlushAll()
	if d.arena.Valid(h1) {
		t.Fatal("h1 (unlinked by CAS) not reclaimed")
	}
	if !d.arena.Valid(h2) {
		t.Fatal("h2 (linked by CAS) reclaimed")
	}
}

// TestMarkedLinkCounting: storing a marked handle counts toward the same
// object as its unmarked form (Harris-style mark flips are count-neutral).
func TestMarkedLinkCounting(t *testing.T) {
	d := newTestDomain(2)
	var root Atomic
	var p Ptr
	h := d.Make(0, nil, &p)
	d.Store(0, &root, h)
	d.Release(0, &p)

	// Flip the mark bit via CAS: same referent, net count change zero.
	if !d.CAS(0, &root, h, h.WithMark()) {
		t.Fatal("mark CAS failed")
	}
	d.FlushAll()
	if !d.arena.Valid(h) {
		t.Fatal("mark flip reclaimed the object")
	}
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("object survived unlink of marked handle")
	}
}

// TestExchange: displaced handles lose a count.
func TestExchange(t *testing.T) {
	d := newTestDomain(2)
	var root Atomic
	var p1, p2 Ptr
	h1 := d.Make(0, nil, &p1)
	h2 := d.Make(0, nil, &p2)
	d.Store(0, &root, h1)
	old := d.Exchange(0, &root, h2)
	if old != h1 {
		t.Fatalf("Exchange returned %v want %v", old, h1)
	}
	d.Release(0, &p1)
	d.Release(0, &p2)
	d.FlushAll()
	if d.arena.Valid(h1) {
		t.Fatal("displaced object leaked")
	}
	if !d.arena.Valid(h2) {
		t.Fatal("stored object reclaimed")
	}
}

// TestLoadScratchComparison: LoadScratch protects long enough to compare.
func TestLoadScratchComparison(t *testing.T) {
	d := newTestDomain(2)
	var root Atomic
	var p Ptr
	h := d.Make(0, nil, &p)
	d.Store(0, &root, h)
	if got := d.LoadScratch(0, &root); got != h {
		t.Fatalf("LoadScratch %v want %v", got, h)
	}
	d.Release(0, &p)
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
}

// TestConcurrentChurn hammers a shared root from many goroutines: loads,
// stores, CASes. The strict arena panics on any use-after-free; at the
// end everything must drain to zero live objects.
func TestConcurrentChurn(t *testing.T) {
	const threads = 8
	const iters = 5_000
	d := newTestDomain(threads)
	roots := make([]Atomic, 8)

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := uint64(tid)*2654435761 + 1
			var p, lp Ptr
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				r := &roots[rng%uint64(len(roots))]
				switch rng % 4 {
				case 0, 1: // load + dereference
					h := d.Load(tid, r, &lp)
					if !h.IsNil() {
						if d.Get(h).Val == ^uint64(0) {
							panic("impossible payload")
						}
					}
				case 2: // publish a fresh node
					d.Make(tid, func(n *tNode) { n.Val = rng }, &p)
					d.Store(tid, r, p.H())
				case 3: // drop the root
					d.Store(tid, r, arena.Nil)
				}
			}
			d.Release(tid, &p)
			d.Release(tid, &lp)
		}(w)
	}
	wg.Wait()

	for i := range roots {
		d.Store(0, &roots[i], arena.Nil)
	}
	d.FlushAll()
	if live := d.arena.Stats().Live; live != 0 {
		t.Fatalf("churn leaked %d objects", live)
	}
	retires, frees := d.Stats()
	t.Logf("retires=%d frees=%d allocs=%d", retires, frees, d.arena.Stats().Allocs)
}

// TestPtrIdxReuse: repeatedly loading into the same Ptr must not leak
// hazard-pointer indices (the reuse path of the assignment operator).
func TestPtrIdxReuse(t *testing.T) {
	d := newTestDomain(1)
	var root Atomic
	var p Ptr
	h := d.Make(0, nil, &p)
	d.Store(0, &root, h)
	d.Release(0, &p)

	var lp Ptr
	for i := 0; i < 1000; i++ {
		d.Load(0, &root, &lp)
	}
	if lp.idx >= 4 {
		t.Fatalf("index leak: lp.idx=%d after repeated loads", lp.idx)
	}
	d.Release(0, &lp)
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
	if live := d.arena.Stats().Live; live != 0 {
		t.Fatalf("leaked %d", live)
	}
}

// TestHandoverOnRelease: thread B protects an object; thread A unlinks
// it; the object parks rather than frees; B's release lets it die.
func TestHandoverOnRelease(t *testing.T) {
	d := newTestDomain(2)
	var root Atomic
	var p Ptr
	h := d.Make(0, nil, &p)
	d.Store(0, &root, h)
	d.Release(0, &p)

	var lp Ptr
	d.Load(1, &root, &lp)
	d.Store(0, &root, arena.Nil)
	if !d.arena.Valid(h) {
		t.Fatal("freed while protected by thread 1")
	}
	d.Release(1, &lp)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("not reclaimed after protection dropped")
	}
}

// TestMaxHPsWatermark grows as indices are claimed.
func TestMaxHPsWatermark(t *testing.T) {
	d := newTestDomain(1)
	if d.maxHPs.Load() != 1 {
		t.Fatalf("initial watermark %d, want 1 (scratch)", d.maxHPs.Load())
	}
	var root Atomic
	var p1, p2, p3 Ptr
	h := d.Make(0, nil, &p1)
	d.Store(0, &root, h)
	d.Load(0, &root, &p2)
	d.CopyPtr(0, &p3, &p2)
	if d.maxHPs.Load() < 2 {
		t.Fatalf("watermark %d did not grow", d.maxHPs.Load())
	}
	d.Release(0, &p1)
	d.Release(0, &p2)
	d.Release(0, &p3)
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
}
