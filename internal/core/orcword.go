// Package core implements OrcGC, the paper's automatic lock-free memory
// reclamation scheme (§4, Algorithms 3–7): per-object reference counting
// of hard links combined with a pass-the-pointer hazardous-pointer layer
// protecting local references.
//
// The C++ artifact expresses OrcGC through type annotation — nodes extend
// orc_base, shared links are orc_atomic<T*>, locals are orc_ptr<T*> —
// and lets constructors/destructors insert the bookkeeping. Go has no
// destructors, so the same calls appear explicitly: a node embeds a
// core.Atomic per shared link, local references are core.Ptr values
// released with Domain.Release, and each Domain is built with a
// ForEachLink callback that enumerates a node's Atomic fields (the work
// the C++ compiler performs when it destroys orc_atomic members). Every
// algorithmic step — the _orc word transitions, the hazardous-pointer
// publication points, the handover protocol, the retire validation of
// Lemma 1 — follows the paper line by line.
package core

// The _orc word (Algorithm 3 lines 1–4) lives in the object's first
// arena header word. Layout:
//
//	bits  0..21  hard-link counter, biased at ORC_ZERO so it can swing
//	             negative (a CAS increments only after publication, so
//	             a racing unlink may decrement first)
//	bit      22  the ORC_ZERO bias bit
//	bit      23  BRETIRED: set by the thread that takes responsibility
//	             for retiring the object
//	bits 24..63  sequence, bumped on every counter update; lets retire
//	             detect any counter activity during its hazardous-
//	             pointer scan (Lemma 1)
const (
	seqUnit  uint64 = 1 << 24 // SEQ
	bretired uint64 = 1 << 23 // BRETIRED
	orcZero  uint64 = 1 << 22 // ORC_ZERO
	ocntMask uint64 = seqUnit - 1
)

// ocnt extracts the counter+flags field (Algorithm 3 line 4).
func ocnt(x uint64) uint64 { return x & ocntMask }

// orcSeq extracts the sequence field (diagnostics only).
func orcSeq(x uint64) uint64 { return x >> 24 }

// orcCount decodes the signed hard-link count (diagnostics only).
func orcCount(x uint64) int64 {
	return int64(x&(bretired-1)) - int64(orcZero)
}

// orcRetired reports whether BRETIRED is set (diagnostics only).
func orcRetired(x uint64) bool { return x&bretired != 0 }
