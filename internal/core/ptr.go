package core

import (
	"repro/internal/arena"
	"repro/internal/rt"
)

// Ptr is the paper's orc_ptr<T*> (Algorithm 7): a local reference to a
// tracked object, pinned through the hazardous-pointer row of its thread.
// While a Ptr holds an object, OrcGC will not deallocate it.
//
// C++ manages orc_ptr lifetime with constructors, assignment operators
// and destructors; in Go the same operations are explicit Domain calls:
//
//	var p core.Ptr            // orc_ptr<Node*> p;        (zero value)
//	d.Load(tid, &n.next, &p)  // p = n->next.load();
//	d.CopyPtr(tid, &q, &p)    // q = p;
//	d.Release(tid, &p)        // ~orc_ptr (end of scope)
//
// A Ptr belongs to the goroutine (tid) that filled it and must be
// Released by the same tid exactly once per fill chain; Release is
// idempotent on an empty Ptr.
type Ptr struct {
	h   arena.Handle
	idx int32 // 0 = unattached (no claimed index); valid indices are ≥ 1
}

// H returns the handle held by p (tag bits preserved).
func (p *Ptr) H() arena.Handle { return p.h }

// IsNil reports whether p references no object.
func (p *Ptr) IsNil() bool { return p.h.IsNil() }

// Unmark strips the tag bits from the held handle. The protection always
// covers the unmarked referent, so this only changes what H() reports —
// list traversals use it when adopting a possibly-marked successor link
// as the new current node.
func (p *Ptr) Unmark() { p.h = p.h.Unmarked() }

// assign implements the orc_ptr assignment operator (Algorithm 7 lines
// 182–194) of `*p = other`, where other is (h, srcIdx). The rule keeps
// protections moving only toward higher indices — the same direction the
// retire scan walks — so a protection can never hop behind the scanner:
//
//   - other sits at a lower index (always true for scratch loads):
//     reuse p's index if p is its sole user, else claim a fresh index
//     above other's, and publish there while other's slot still covers
//     the object.
//   - other sits at a higher index: share it (bump usedHaz).
func (d *Domain[T]) assign(tid int, p *Ptr, h arena.Handle, srcIdx int32) {
	t := d.tl[tid]
	if p.idx == 0 {
		// Unattached Ptr: first fill.
		if srcIdx == 0 {
			p.idx = d.getNewIdx(tid, 1)
			if !t.pub(p.idx, uint64(h.Unmarked())) {
				// Elision fast path: the claimed slot already publishes h
				// (clear deliberately leaves stale publications behind).
				t.noteElide()
				rt.Step(rt.SiteProtect, tid)
			}
		} else {
			d.usingIdx(tid, srcIdx)
			p.idx = srcIdx
		}
		p.h = h
		return
	}
	if srcIdx < p.idx {
		reuse := t.usedHaz[p.idx] == 1
		d.clear(tid, p.h, p.idx, reuse)
		if !reuse {
			p.idx = d.getNewIdx(tid, srcIdx+1)
		}
		if !t.pub(p.idx, uint64(h.Unmarked())) {
			// Elision fast path: republishing the handle the reused slot
			// already protects (e.g. `cur = cur->next` loops that land
			// back on the same node, or retry paths).
			t.noteElide()
			rt.Step(rt.SiteProtect, tid)
		}
	} else {
		d.clear(tid, p.h, p.idx, false)
		d.usingIdx(tid, srcIdx)
		p.idx = srcIdx
	}
	p.h = h
}

// CopyPtr is `*dst = *src` between two named orc_ptrs.
func (d *Domain[T]) CopyPtr(tid int, dst, src *Ptr) {
	d.assign(tid, dst, src.h, src.idx)
}

// AdoptScratch binds the handle currently protected in the scratch slot
// (from LoadScratch or Exchange) to p. h must be the value those calls
// returned, with the scratch protection still intact.
func (d *Domain[T]) AdoptScratch(tid int, p *Ptr, h arena.Handle) {
	d.assign(tid, p, h, 0)
}

// SetNil empties p, dropping its protection (assigning nullptr).
func (d *Domain[T]) SetNil(tid int, p *Ptr) {
	if p.idx == 0 {
		p.h = arena.Nil
		return
	}
	d.clear(tid, p.h, p.idx, false)
	p.h = arena.Nil
	p.idx = 0
}

// Release is the orc_ptr destructor (Algorithm 7 line 169): drop the
// local reference; if the object has no hard links and this was its last
// protection use of the index, it is retired.
func (d *Domain[T]) Release(tid int, p *Ptr) {
	if p.idx == 0 {
		p.h = arena.Nil
		return
	}
	d.clear(tid, p.h, p.idx, false)
	p.h = arena.Nil
	p.idx = 0
}
