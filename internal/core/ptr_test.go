package core

import (
	"testing"

	"repro/internal/arena"
)

// These tests pin down the Algorithm 7 assignment semantics: index
// claiming, sharing via usedHaz, the reuse fast path, and the
// copy-toward-higher-indices direction rule.

func TestAssignClaimsLowestFreeIndex(t *testing.T) {
	d := newTestDomain(1)
	var p1, p2, p3 Ptr
	d.Make(0, nil, &p1)
	d.Make(0, nil, &p2)
	d.Make(0, nil, &p3)
	if p1.idx != 1 || p2.idx != 2 || p3.idx != 3 {
		t.Fatalf("indices %d %d %d, want 1 2 3", p1.idx, p2.idx, p3.idx)
	}
	d.Release(0, &p2)
	var p4 Ptr
	d.Make(0, nil, &p4)
	if p4.idx != 2 {
		t.Fatalf("freed index not reclaimed: got %d want 2", p4.idx)
	}
	d.Release(0, &p1)
	d.Release(0, &p3)
	d.Release(0, &p4)
	d.FlushAll()
}

func TestCopyShareCountsUses(t *testing.T) {
	d := newTestDomain(1)
	var src Ptr
	d.Make(0, nil, &src)
	idx := src.idx

	// Copy from lower (src) into fresh dst: dst claims an index ABOVE
	// src's per the direction rule... here dst is unattached, so it
	// shares? No: unattached + srcIdx>0 shares the index.
	var dst Ptr
	d.CopyPtr(0, &dst, &src)
	if dst.idx != idx {
		t.Fatalf("fresh copy should share the index: %d vs %d", dst.idx, idx)
	}
	if d.tl[0].usedHaz[idx] != 2 {
		t.Fatalf("usedHaz=%d want 2", d.tl[0].usedHaz[idx])
	}
	d.Release(0, &src)
	if d.tl[0].usedHaz[idx] != 1 {
		t.Fatalf("usedHaz=%d want 1 after one release", d.tl[0].usedHaz[idx])
	}
	if !d.arena.Valid(dst.H()) {
		t.Fatal("object died while dst still holds it")
	}
	d.Release(0, &dst)
	d.FlushAll()
	if live := d.arena.Stats().Live; live != 0 {
		t.Fatalf("leak: %d", live)
	}
}

func TestAssignDirectionRule(t *testing.T) {
	d := newTestDomain(1)
	var root Atomic
	var a, b Ptr
	h := d.Make(0, nil, &a) // a at idx 1
	d.Store(0, &root, h)
	d.Load(0, &root, &b) // b claims idx 2

	// Assign b into a: b.idx (2) > a.idx (1) → a must move UP to share
	// b's index, never pull the protection down below the scanner.
	d.CopyPtr(0, &a, &b)
	if a.idx < b.idx {
		t.Fatalf("direction rule violated: a.idx=%d < b.idx=%d", a.idx, b.idx)
	}
	d.Release(0, &a)
	d.Release(0, &b)
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
}

func TestAssignReusePath(t *testing.T) {
	d := newTestDomain(1)
	var root1, root2 Atomic
	var p Ptr
	h1 := d.Make(0, nil, &p)
	d.Store(0, &root1, h1)
	d.Release(0, &p)
	var p2 Ptr
	h2 := d.Make(0, nil, &p2)
	d.Store(0, &root2, h2)
	d.Release(0, &p2)

	// Repeated loads into one sole-user Ptr must reuse its index (the
	// reuseIdx fast path), not walk the index space.
	var lp Ptr
	d.Load(0, &root1, &lp)
	first := lp.idx
	for i := 0; i < 50; i++ {
		d.Load(0, &root2, &lp)
		d.Load(0, &root1, &lp)
	}
	if lp.idx != first {
		t.Fatalf("index drifted from %d to %d despite sole use", first, lp.idx)
	}
	d.Release(0, &lp)
	d.Store(0, &root1, arena.Nil)
	d.Store(0, &root2, arena.Nil)
	d.FlushAll()
	if live := d.arena.Stats().Live; live != 0 {
		t.Fatalf("leak: %d", live)
	}
}

func TestSharedIdxNotReusedOnAssign(t *testing.T) {
	d := newTestDomain(1)
	var root Atomic
	var a, b Ptr
	h := d.Make(0, nil, &a)
	d.Store(0, &root, h)
	d.CopyPtr(0, &b, &a) // b shares a's index (usedHaz = 2)
	sharedIdx := a.idx

	// Loading into a (source at scratch 0 < a.idx, but a is NOT the
	// sole user) must claim a fresh index, leaving b's protection
	// untouched at the shared one.
	d.Load(0, &root, &a)
	if a.idx == sharedIdx {
		t.Fatal("assignment reused a shared index")
	}
	if d.tl[0].usedHaz[sharedIdx] != 1 {
		t.Fatalf("b lost its claim: usedHaz=%d", d.tl[0].usedHaz[sharedIdx])
	}
	d.Release(0, &a)
	d.Release(0, &b)
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
}

func TestSetNilDropsProtection(t *testing.T) {
	d := newTestDomain(1)
	var p Ptr
	h := d.Make(0, nil, &p)
	d.SetNil(0, &p)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("object survived SetNil of its only reference")
	}
	if !p.IsNil() || p.idx != 0 {
		t.Fatal("Ptr not reset by SetNil")
	}
}

func TestReleaseIdempotentOnEmpty(t *testing.T) {
	d := newTestDomain(1)
	var p Ptr
	d.Release(0, &p) // empty release is a no-op
	d.Release(0, &p)
	h := d.Make(0, nil, &p)
	d.Release(0, &p)
	d.Release(0, &p) // second release after emptying: no-op
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("object leaked")
	}
}

func TestUnmarkKeepsProtection(t *testing.T) {
	d := newTestDomain(1)
	var root Atomic
	var p Ptr
	h := d.Make(0, nil, &p)
	d.Store(0, &root, h.WithMark())
	var lp Ptr
	got := d.Load(0, &root, &lp)
	if !got.Marked() {
		t.Fatal("mark lost through Load")
	}
	lp.Unmark()
	if lp.H() != h {
		t.Fatalf("Unmark gave %v want %v", lp.H(), h)
	}
	_ = d.Get(lp.H()) // must still be protected
	d.Release(0, &p)
	d.Release(0, &lp)
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
}

func TestIndexExhaustionPanics(t *testing.T) {
	a := arena.New[tNode]()
	d := NewDomain(a, nil, DomainConfig{MaxThreads: 1, MaxHPs: 4})
	var keep [8]Ptr
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when hp indices run out")
		}
	}()
	for i := range keep {
		d.Make(0, nil, &keep[i]) // distinct objects, distinct indices
	}
}

func TestScratchNotClaimable(t *testing.T) {
	d := newTestDomain(1)
	var p Ptr
	d.Make(0, nil, &p)
	if p.idx == 0 {
		t.Fatal("a named Ptr must never sit on the scratch index")
	}
	d.Release(0, &p)
	d.FlushAll()
}
