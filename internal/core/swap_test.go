package core

import (
	"testing"

	"repro/internal/arena"
)

// TestPublishWithSwapMode: the exchange-publish ablation must be
// behaviourally identical — protection, reclamation and reinsertion all
// work the same under either publication instruction.
func TestPublishWithSwapMode(t *testing.T) {
	PublishWithSwap.Store(true)
	defer PublishWithSwap.Store(false)

	d := newTestDomain(2)
	var root Atomic
	var p Ptr
	h := d.Make(0, func(n *tNode) { n.Val = 3 }, &p)
	d.Store(0, &root, p.H())
	d.Release(0, &p)

	var lp Ptr
	if got := d.Load(1, &root, &lp); got != h {
		t.Fatalf("Load under swap publish: %v want %v", got, h)
	}
	d.Store(0, &root, arena.Nil)
	if !d.arena.Valid(h) {
		t.Fatal("protected object freed under swap publish")
	}
	d.Release(1, &lp)
	d.FlushAll()
	if d.arena.Valid(h) {
		t.Fatal("object not reclaimed under swap publish")
	}
}

// TestChurnUnderSwapPublish reruns the concurrency mill with the
// ablation active.
func TestChurnUnderSwapPublish(t *testing.T) {
	PublishWithSwap.Store(true)
	defer PublishWithSwap.Store(false)

	d := newTestDomain(4)
	var root Atomic
	done := make(chan struct{})
	go func() {
		defer close(done)
		var p Ptr
		for i := 0; i < 3000; i++ {
			d.Make(1, func(n *tNode) { n.Val = uint64(i) }, &p)
			d.Store(1, &root, p.H())
		}
		d.Release(1, &p)
	}()
	var lp Ptr
	for i := 0; i < 3000; i++ {
		if h := d.Load(0, &root, &lp); !h.IsNil() {
			_ = d.Get(h) // strict arena panics on any UAF
		}
	}
	d.Release(0, &lp)
	<-done
	d.Store(0, &root, arena.Nil)
	d.FlushAll()
	if live := d.arena.Stats().Live; live != 0 {
		t.Fatalf("leak under swap publish: %d", live)
	}
}
