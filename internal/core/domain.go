package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
)

// ForEachLink enumerates the Atomic (orc_atomic) fields of a node. It is
// the Go stand-in for the destructor calls the C++ runtime makes on
// orc_atomic members when an object is deleted: Domain.deleteObj visits
// every link to decrement the referents' counters.
type ForEachLink[T any] func(obj *T, visit func(*Atomic))

// tlInfo is the per-thread block of Algorithm 3 (struct TLInfo): the
// hazardous-pointer row, the paired handover row, the usedHaz index
// refcounts, and the recursive-retire state.
type tlInfo struct {
	hp            []atomic.Uint64
	shadow        []uint64 // owner-written mirror of hp (protection fast path)
	handovers     []atomic.Uint64
	usedHaz       []int32
	retireStarted bool
	recursive     []arena.Handle
	elides        atomic.Uint64 // elided hp publications, single-writer
}

// pub publishes u in hp[idx] unless the slot already holds it. The
// shadow is the owner's record of what the slot publishes, so a match
// means the store — a seq-cst operation on a cache line every retire
// scan reads — can be elided without changing the published set: the
// slot has continuously protected u since the earlier publication
// (DESIGN.md §1.2). Reports whether it stored.
func (t *tlInfo) pub(idx int32, u uint64) bool {
	if t.shadow[idx] == u {
		return false
	}
	t.shadow[idx] = u
	t.hp[idx].Store(u)
	return true
}

// noteElide counts one elided publication (single-writer counter, read
// concurrently by Domain.Elisions).
func (t *tlInfo) noteElide() { t.elides.Store(t.elides.Load() + 1) }

// Domain ties OrcGC to one arena of tracked objects: it owns the
// PassThePointerOrcGC state (Algorithm 3/5/6) for that object type. All
// objects of the domain are created with Make and reclaimed automatically
// once they have no hard links, no protected local references, and no
// global references.
type Domain[T any] struct {
	arena      *arena.Arena[T]
	links      ForEachLink[T]
	maxThreads int
	capHPs     int32
	maxHPs     atomic.Int64 // watermark over claimed hp indices (≥1: slot 0 is scratch)
	tl         []*tlInfo

	frees   atomic.Uint64
	retires atomic.Uint64
}

// DomainConfig sizes a Domain.
type DomainConfig struct {
	MaxThreads int // capacity of the tid space (default 64)
	MaxHPs     int // hazardous-pointer slots per thread incl. scratch (default 72)
}

// NewDomain creates an OrcGC domain over a, with links enumerating each
// node's Atomic fields (may be nil for leaf objects with no links).
func NewDomain[T any](a *arena.Arena[T], links ForEachLink[T], cfg DomainConfig) *Domain[T] {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 64
	}
	if cfg.MaxHPs <= 0 {
		cfg.MaxHPs = 72
	}
	d := &Domain[T]{
		arena:      a,
		links:      links,
		maxThreads: cfg.MaxThreads,
		capHPs:     int32(cfg.MaxHPs),
		tl:         make([]*tlInfo, cfg.MaxThreads),
	}
	d.maxHPs.Store(1) // scratch slot 0 always scanned
	for i := range d.tl {
		d.tl[i] = &tlInfo{
			hp:        make([]atomic.Uint64, cfg.MaxHPs),
			shadow:    make([]uint64, cfg.MaxHPs),
			handovers: make([]atomic.Uint64, cfg.MaxHPs),
			usedHaz:   make([]int32, cfg.MaxHPs),
		}
	}
	return d
}

// Arena exposes the domain's arena (stats, direct reads in tests).
func (d *Domain[T]) Arena() *arena.Arena[T] { return d.arena }

// Get dereferences a protected handle.
func (d *Domain[T]) Get(h arena.Handle) *T { return d.arena.Get(h) }

// Make is make_orc<T> (Algorithm 3 lines 31–36): allocate, initialize the
// _orc word to ORC_ZERO, run the constructor, protect the object in the
// scratch slot and bind it to p. The object has no hard links yet; it
// stays alive through p's protection and is reclaimed automatically if
// dropped without ever being linked.
func (d *Domain[T]) Make(tid int, init func(*T), p *Ptr) arena.Handle {
	h, obj := d.arena.AllocT(tid)
	d.arena.HdrA(h).Store(orcZero)
	if init != nil {
		init(obj)
	}
	d.tl[tid].pub(0, uint64(h))
	d.assign(tid, p, h, 0)
	return h
}

// InitLink sets an Atomic field of an object under construction (the
// orc_atomic(T ptr) constructor, Algorithm 4 lines 53–56). target must be
// nil or protected by the calling thread.
func (d *Domain[T]) InitLink(tid int, a *Atomic, target arena.Handle) {
	d.incrementOrc(tid, target)
	a.v.Store(uint64(target))
}

// getNewIdx is Algorithm 6 lines 119–127: claim the lowest free hp index
// at or above start and push the global scan watermark.
func (d *Domain[T]) getNewIdx(tid int, start int32) int32 {
	t := d.tl[tid]
	if start < 1 {
		start = 1
	}
	for idx := start; idx < d.capHPs; idx++ {
		if t.usedHaz[idx] != 0 {
			continue
		}
		t.usedHaz[idx]++
		for {
			cur := d.maxHPs.Load()
			if cur > int64(idx) || d.maxHPs.CompareAndSwap(cur, int64(idx)+1) {
				break
			}
		}
		return idx
	}
	panic(fmt.Sprintf("core: thread %d exhausted %d hazard-pointer indices", tid, d.capHPs))
}

// usingIdx is Algorithm 6 lines 129–132: add a sharer to an index.
func (d *Domain[T]) usingIdx(tid int, idx int32) {
	if idx == 0 {
		return
	}
	d.tl[tid].usedHaz[idx]++
}

// clear is Algorithm 5 lines 80–90: drop one use of an index and, when
// the object loses its last local reference, check whether it became
// unreachable (counter at ORC_ZERO) and retire it. Note the hazardous
// pointer itself is deliberately *not* nulled — Proposition 1 needs the
// object published while the BRETIRED CAS runs, and the stale publication
// is overwritten on the index's next use (the paper accepts the
// temporarily parked objects this can cause).
func (d *Domain[T]) clear(tid int, h arena.Handle, idx int32, reuse bool) {
	t := d.tl[tid]
	if !reuse && idx != 0 {
		t.usedHaz[idx]--
		if t.usedHaz[idx] != 0 {
			return
		}
	}
	if h.IsNil() {
		return
	}
	h = h.Unmarked()
	orc := d.arena.HdrA(h)
	lorc := orc.Load()
	if ocnt(lorc) == orcZero {
		if orc.CompareAndSwap(lorc, lorc+bretired) {
			d.retire(tid, h)
		}
	}
}

// Stats reports the domain's reclamation counters; arena stats carry the
// live/high-water memory numbers.
func (d *Domain[T]) Stats() (retires, frees uint64) {
	return d.retires.Load(), d.frees.Load()
}

// Elisions reports how many hazardous-pointer publications the domain's
// protection fast path elided (slot already held the value).
func (d *Domain[T]) Elisions() uint64 {
	var n uint64
	for _, t := range d.tl {
		n += t.elides.Load()
	}
	return n
}

// FlushAll drains every thread's hazardous pointers and handover slots.
// Quiescent use only (benchmark teardown, leak accounting in tests):
// concurrent domain operations would race with it.
//
// Draining loops to a fixed point: deleting a parked object decrements
// its children, and decrementOrc's Proposition-1 publication in hp[0]
// re-parks each dying child in the scratch handover slot — a long chain
// therefore surfaces one node per drain round (the paper's acknowledged
// "parked until the slot is reused" behaviour, compressed here into a
// loop instead of waiting for future operations).
func (d *Domain[T]) FlushAll() {
	clearRows := func() {
		for tid := 0; tid < d.maxThreads; tid++ {
			t := d.tl[tid]
			for i := int32(0); i < d.capHPs; i++ {
				t.hp[i].Store(0)
				t.shadow[i] = 0 // quiescent cross-thread write: keep the mirror true
				t.usedHaz[i] = 0
			}
		}
	}
	clearRows()
	for {
		drained := false
		for tid := 0; tid < d.maxThreads; tid++ {
			t := d.tl[tid]
			for i := int32(0); i < d.capHPs; i++ {
				h := arena.Handle(t.handovers[i].Swap(0))
				if h.IsNil() {
					continue
				}
				drained = true
				// Retires during this drain republish only this
				// thread's scratch slot (decrementOrc's Proposition-1
				// store); drop it so the scan cannot re-park on it.
				t.pub(0, 0)
				d.retire(tid, h)
				// Chain collapse: each delete re-parks its dying child
				// in this thread's scratch handover slot; drain it in
				// place so a chain costs one round, not one per node.
				for {
					h0 := arena.Handle(t.handovers[0].Swap(0))
					if h0.IsNil() {
						break
					}
					t.pub(0, 0)
					d.retire(tid, h0)
				}
			}
		}
		if !drained {
			return
		}
	}
}
