package kvstore

import (
	"context"
	"net"
	"sync"
	"testing"
)

// ctx is the no-deadline context the blocking round trips in these
// tests run under; cancellation behavior has its own test.
var ctx = context.Background()

func startServer(t *testing.T, scheme string, maxThreads int) (*Store, *Server, string) {
	t.Helper()
	st, err := New(Config{Scheme: scheme, Shards: 4, Buckets: 256, MaxThreads: maxThreads})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return st, srv, ln.Addr().String()
}

// TestServerRoundTrip exercises every op through the blocking client.
func TestServerRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, "orcgc", 4)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if ins, err := cl.Put(ctx, 42, 1000); err != nil || !ins {
		t.Fatalf("put = %v,%v", ins, err)
	}
	if v, ok, err := cl.Get(ctx, 42); err != nil || !ok || v != 1000 {
		t.Fatalf("get = %d,%v,%v", v, ok, err)
	}
	if _, ok, _ := cl.Get(ctx, 43); ok {
		t.Fatal("get on absent key")
	}
	for k := uint64(100); k < 110; k++ {
		cl.Put(ctx, k, k*2)
	}
	pairs, err := cl.Scan(ctx, 100, 5)
	if err != nil || len(pairs) != 10 {
		t.Fatalf("scan = %v (err %v)", pairs, err)
	}
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i+1] != pairs[i]*2 {
			t.Fatalf("scan pair %d→%d", pairs[i], pairs[i+1])
		}
	}
	if ok, _ := cl.Del(ctx, 42); !ok {
		t.Fatal("del")
	}
	if ok, _ := cl.Del(ctx, 42); ok {
		t.Fatal("double del reported found")
	}
	stats, err := cl.Stats(ctx)
	if err != nil || stats.Scheme != "orcgc" || stats.Live <= stats.Baseline {
		t.Fatalf("stats = %+v (err %v)", stats, err)
	}
	if _, _, err := cl.Get(ctx, 0); err == nil {
		t.Fatal("key 0 must produce a server error")
	}
}

// TestServerPipelinedDrain is the -race integration test: an in-process
// server on loopback, 8 concurrent clients each pipelining a mixed
// get/put/del/scan workload, run under both orcgc and hp, asserting
// arena Live returns to the post-construction baseline after the
// workload drains. This is the tentpole's end-to-end leak check: every
// reclamation handoff (connection tids, epoch brackets held across
// scans, retired nodes parked on per-thread lists) must unwind.
func TestServerPipelinedDrain(t *testing.T) {
	const clients = 8
	const opsPer = 600
	const pipeline = 32
	for _, scheme := range []string{"orcgc", "hp"} {
		t.Run(scheme, func(t *testing.T) {
			st, srv, addr := startServer(t, scheme, clients+2)

			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					cl, err := Dial(addr)
					if err != nil {
						t.Error(err)
						return
					}
					defer cl.Close()
					base := seed * 10000
					x := seed + 1
					sent := make([]uint8, 0, pipeline)
					flushAndDrain := func() {
						if err := cl.Flush(); err != nil {
							t.Error(err)
							return
						}
						for _, op := range sent {
							var err error
							switch op {
							case OpGet:
								_, _, err = cl.RecvGet()
							case OpPut:
								_, err = cl.RecvPut()
							case OpDel:
								_, err = cl.RecvDel()
							case OpScan:
								_, err = cl.RecvScan(nil)
							}
							if err != nil {
								t.Error(err)
								return
							}
						}
						sent = sent[:0]
					}
					for i := 0; i < opsPer; i++ {
						x = x*6364136223846793005 + 1442695040888963407 // LCG
						k := base + x%512 + 1
						switch x >> 60 & 7 {
						case 0, 1, 2:
							cl.SendGet(k)
							sent = append(sent, OpGet)
						case 3, 4, 5:
							cl.SendPut(k, x)
							sent = append(sent, OpPut)
						case 6:
							cl.SendDel(k)
							sent = append(sent, OpDel)
						default:
							cl.SendScan(base, 16)
							sent = append(sent, OpScan)
						}
						if len(sent) == pipeline {
							flushAndDrain()
						}
					}
					flushAndDrain()
					// Empty this client's keys so drain has little to do.
					for k := base + 1; k <= base+512; k++ {
						cl.SendDel(k)
						sent = append(sent, OpDel)
						if len(sent) == pipeline {
							flushAndDrain()
						}
					}
					flushAndDrain()
				}(uint64(w))
			}
			wg.Wait()
			srv.Shutdown()

			rep := st.DrainAndCheck(0)
			if !rep.LeakOK {
				t.Fatalf("%s: leak check failed: %+v", scheme, rep)
			}
			if rep.Live != rep.Baseline {
				t.Fatalf("%s: Live %d != baseline %d after drain", scheme, rep.Live, rep.Baseline)
			}
		})
	}
}

// TestServerTidExhaustion checks the server refuses connections beyond
// the tid pool instead of corrupting reclamation state.
func TestServerTidExhaustion(t *testing.T) {
	_, _, addr := startServer(t, "ebr", 2) // pool = {1}: one connection
	cl1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	if _, err := cl1.Put(ctx, 1, 1); err != nil {
		t.Fatal(err)
	}
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Put(ctx, 2, 2); err == nil {
		t.Fatal("second connection should have been refused")
	}
}
