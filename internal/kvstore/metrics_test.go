package kvstore

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// startInstrumentedServer is startServer with the observability layer
// wired: the store and server both report into one registry.
func startInstrumentedServer(t *testing.T, scheme string, maxThreads int) (*Store, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := New(Config{Scheme: scheme, Shards: 4, Buckets: 256, MaxThreads: maxThreads, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	srv.Instrument(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return st, ln.Addr().String(), reg
}

func scrape(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var flat map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	return flat
}

// TestMetricsScrapeUnderLoad churns the store through 8 pipelined
// clients while scraping /metrics concurrently, for both the automatic
// scheme (orcgc) and a manual one (hp). Run under -race this doubles as
// a data-race check on every gauge func; the assertions check that ops
// counters are monotone across scrapes and that the final gauges agree
// with the store's own Stats()/arena figures at drain.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	for _, scheme := range []string{"orcgc", "hp"} {
		t.Run(scheme, func(t *testing.T) {
			st, addr, reg := startInstrumentedServer(t, scheme, 16)
			msrv := httptest.NewServer(reg.Handler())
			defer msrv.Close()

			const clients = 8
			const opsPer = 800
			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					cl, err := Dial(addr,
						WithDialTimeout(5*time.Second),
						WithReadTimeout(30*time.Second),
						WithPipelineDepth(64),
						WithRetries(3),
					)
					if err != nil {
						t.Error(err)
						return
					}
					defer cl.Close()
					const window = 64
					inflight := 0
					drain := func(n int) {
						for ; n > 0; n-- {
							if _, err := cl.recv(); err != nil {
								t.Error(err)
								return
							}
							inflight--
						}
					}
					x := seed
					for n := 0; n < opsPer; n++ {
						x = x*6364136223846793005 + 1442695040888963407
						key := x%2048 + MinKey
						switch x % 4 {
						case 0:
							cl.SendPut(key, x)
						case 1:
							cl.SendGet(key)
						case 2:
							cl.SendDel(key)
						default:
							cl.SendScan(key, 16)
						}
						inflight++
						if inflight == window {
							cl.Flush()
							drain(inflight)
						}
					}
					cl.Flush()
					drain(inflight)
				}(uint64(w + 1))
			}

			// Concurrent scraper: ops counters must be monotone scrape
			// over scrape while the churn runs.
			scrapeDone := make(chan struct{})
			go func() {
				defer close(scrapeDone)
				var lastOps float64
				for i := 0; i < 20; i++ {
					flat := scrape(t, msrv.URL)
					var ops float64
					for _, k := range []string{"get", "put", "del", "scan"} {
						if v, ok := flat["kv/server/ops/"+k].(float64); ok {
							ops += v
						}
					}
					if ops < lastOps {
						t.Errorf("ops went backwards: %f < %f", ops, lastOps)
						return
					}
					lastOps = ops
					time.Sleep(2 * time.Millisecond)
				}
			}()
			wg.Wait()
			<-scrapeDone

			// Quiescent: drain through the store and cross-check gauges
			// against the store's own accounting.
			rep := st.DrainAndCheck(0)
			if !rep.LeakOK {
				t.Fatalf("drain leak check failed: %+v", rep)
			}
			flat := scrape(t, msrv.URL)
			if got := int64(flat["kv/live"].(float64)); got != st.Stats().Live {
				t.Fatalf("kv/live gauge %d != store live %d", got, st.Stats().Live)
			}
			if got := int64(flat["kv/retired_not_freed"].(float64)); got != st.RetiredNotFreed() {
				t.Fatalf("kv/retired_not_freed gauge %d != %d", got, st.RetiredNotFreed())
			}
			var totalOps float64
			for _, k := range []string{"get", "put", "del", "scan"} {
				totalOps += flat["kv/server/ops/"+k].(float64)
			}
			if int(totalOps) != clients*opsPer {
				t.Fatalf("ops counters sum %d, want %d", int(totalOps), clients*opsPer)
			}
			if scheme == "hp" {
				// Manual schemes also report per-index reclaim gauges.
				if _, ok := flat["reclaim/shard0/map/retired"]; !ok {
					t.Fatalf("missing per-index reclaim gauges in %v", flat)
				}
				// Conservation at quiescence: retired == freed + pending
				// summed over every index.
				var retired, freed, pending float64
				for k, v := range flat {
					f, _ := v.(float64)
					switch {
					case len(k) > 8 && k[:8] == "reclaim/" && k[len(k)-8:] == "/retired":
						retired += f
					case len(k) > 8 && k[:8] == "reclaim/" && k[len(k)-6:] == "/freed":
						freed += f
					case len(k) > 8 && k[:8] == "reclaim/" && k[len(k)-8:] == "/pending":
						pending += f
					}
				}
				if retired != freed+pending {
					t.Fatalf("conservation violated: retired %f != freed %f + pending %f", retired, freed, pending)
				}
			}
			// Arena gauges must agree with the summed SideStats.
			var live, slots int64
			for _, s := range st.Stats().Sides {
				live += s.Live
				slots += int64(s.Slots)
			}
			if got := int64(flat["kv/arena/live"].(float64)); got != live {
				t.Fatalf("kv/arena/live gauge %d != %d", got, live)
			}
			if got := int64(flat["kv/arena/slots"].(float64)); got != slots {
				t.Fatalf("kv/arena/slots gauge %d != %d", got, slots)
			}
		})
	}
}

// TestDialWithRetry: a server that comes up late is reached through the
// dial retry loop.
func TestDialWithRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening now

	srvCh := make(chan *Server, 1)
	go func() {
		time.Sleep(80 * time.Millisecond)
		st, err := New(Config{Scheme: "orcgc", Shards: 2, Buckets: 64, MaxThreads: 4})
		if err != nil {
			t.Error(err)
			srvCh <- nil
			return
		}
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Error(err) // port was re-taken; rare, treat as failure
			srvCh <- nil
			return
		}
		srv := NewServer(st)
		go srv.Serve(ln2)
		srvCh <- srv
	}()
	t.Cleanup(func() {
		if srv := <-srvCh; srv != nil {
			srv.Shutdown()
		}
	})

	// Through the deprecated DialWith shim on purpose: the struct form
	// must keep working for old callers.
	cl, err := DialWith(addr, Options{DialRetries: 8, DialBackoff: 40 * time.Millisecond})
	if err != nil {
		t.Fatalf("DialWith never reached the late server: %v", err)
	}
	if ins, err := cl.Put(ctx, 7, 7); err != nil || !ins {
		t.Fatalf("put through retried dial: %v %v", ins, err)
	}
	cl.Close()
}

// TestDialRetryBudget: exhausted retries return promptly — the loop
// neither sleeps after the final failed attempt nor waits out backoffs
// the budget cannot afford — and the last dial error comes back wrapped
// so callers can still errors.As their way to the net.OpError.
func TestDialRetryBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // connection refused from here on

	t0 := time.Now()
	_, err = Dial(addr,
		WithRetries(1000),
		WithRetryBackoff(20*time.Millisecond),
		WithRetryBudget(100*time.Millisecond),
	)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("DialWith succeeded against a dead address")
	}
	// 1000 retries at a doubling 20ms backoff would take minutes; the
	// budget must cut it off around the 100ms mark (generous ceiling for
	// slow CI).
	if elapsed > 2*time.Second {
		t.Fatalf("exhausted retries took %v, budget was 100ms", elapsed)
	}
	var opErr *net.OpError
	if !errors.As(err, &opErr) {
		t.Fatalf("wrapped error lost the net.OpError: %v", err)
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("error does not name the budget: %v", err)
	}

	// Exhaustion by count wraps too, and still returns without a
	// trailing sleep: 2 extra attempts at 10ms/20ms backoff must come
	// back well before a third (40ms) backoff could have run.
	t0 = time.Now()
	_, err = Dial(addr, WithRetries(2), WithRetryBackoff(10*time.Millisecond))
	elapsed = time.Since(t0)
	if err == nil {
		t.Fatal("DialWith succeeded against a dead address")
	}
	if !errors.As(err, &opErr) {
		t.Fatalf("wrapped error lost the net.OpError: %v", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error does not report the attempt count: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("count-exhausted retries took %v", elapsed)
	}

	// A zero-retry failure stays a plain net error (no wrapping noise).
	_, err = Dial(addr)
	if err == nil {
		t.Fatal("Dial succeeded against a dead address")
	}
	if !errors.As(err, &opErr) {
		t.Fatalf("first-attempt failure not a net error: %v", err)
	}
}
