package kvstore

import (
	"testing"
)

func TestStoreAllModes(t *testing.T) {
	for _, mode := range Modes() {
		t.Run(mode, func(t *testing.T) {
			st, err := New(Config{Scheme: mode, Shards: 4, Buckets: 64, MaxThreads: 4})
			if err != nil {
				t.Fatal(err)
			}
			if ins, _ := st.Put(0, 5, 50); !ins {
				t.Fatal("first put should insert")
			}
			if ins, _ := st.Put(0, 5, 55); ins {
				t.Fatal("second put should update")
			}
			for k := uint64(1); k <= 20; k++ {
				st.Put(0, k*3, k)
			}
			if v, ok, _ := st.Get(0, 5); !ok || v != 55 {
				t.Fatalf("get(5) = %d,%v", v, ok)
			}
			if _, ok, _ := st.Get(0, 4); ok {
				t.Fatal("get(4) on absent key")
			}
			pairs, _ := st.Scan(0, 1, 100)
			last := uint64(0)
			for i := 0; i < len(pairs); i += 2 {
				if pairs[i] <= last {
					t.Fatalf("scan not strictly ascending at %v", pairs)
				}
				last = pairs[i]
			}
			if len(pairs)/2 != 21 {
				t.Fatalf("scan found %d keys, want 21", len(pairs)/2)
			}
			// Bounded scan across the shard merge.
			pairs, _ = st.Scan(0, 10, 5)
			if len(pairs)/2 != 5 || pairs[0] < 10 {
				t.Fatalf("bounded scan = %v", pairs)
			}
			if ok, _ := st.Del(0, 5); !ok {
				t.Fatal("del(5)")
			}
			if _, ok, _ := st.Get(0, 5); ok {
				t.Fatal("get after del")
			}
			if _, err := st.Put(0, 0, 1); err == nil {
				t.Fatal("key 0 must be rejected")
			}
			rep := st.DrainAndCheck(0)
			if !rep.LeakOK {
				t.Fatalf("drain leak check failed: %+v", rep)
			}
			if rep.Deleted != 20 {
				t.Fatalf("drain deleted %d keys, want 20", rep.Deleted)
			}
		})
	}
}

func TestStoreRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Scheme: "bogus"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := New(Config{Scheme: "unsafe"}); err == nil {
		t.Fatal("unsafe scheme accepted")
	}
	if _, err := New(Config{Shards: 3}); err == nil {
		t.Fatal("non-power-of-two shards accepted")
	}
}

func TestStoreAliases(t *testing.T) {
	st, err := New(Config{Scheme: "leak", Shards: 1, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme() != "none" {
		t.Fatalf("leak alias resolved to %q", st.Scheme())
	}
}
