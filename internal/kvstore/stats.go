package kvstore

import (
	"repro/internal/arena"
	"repro/internal/reclaim"
)

// SideStats reports one index's allocator and reclamation pressure.
type SideStats struct {
	Index           string `json:"index"`  // e.g. "shard0/map"
	Scheme          string `json:"scheme"` // scheme actually running this index
	Allocs          uint64 `json:"allocs"`
	Frees           uint64 `json:"frees"`
	Live            int64  `json:"live"`
	MaxLive         int64  `json:"max_live"`
	Slots           uint64 `json:"slots"`       // arena capacity carved so far
	MagRefills      uint64 `json:"mag_refills"` // magazine cold-path entries
	RetiredNotFreed int64  `json:"retired_not_freed"`
	RetireDepth     int    `json:"retire_depth"` // sum of per-tid retired-list lengths
}

// Stats is the store-wide snapshot served by the STATS op.
type Stats struct {
	Scheme   string      `json:"scheme"`
	Shards   int         `json:"shards"`
	Live     int64       `json:"live"`
	MaxLive  int64       `json:"max_live"`
	Baseline int64       `json:"baseline"` // arena Live right after construction
	Sides    []SideStats `json:"sides"`
}

// orcSide reports an orcgc index. RetiredNotFreed stays zero: the
// domain's retire counter counts retire *attempts* (ownership can be
// re-negotiated per Algorithm 5), so retires−frees is not a backlog;
// orcgc's reclamation debt shows up directly as arena Live above the
// logical population, and its leak verdict is Live == baseline.
func orcSide(index, scheme string, ar func() arena.Stats) func() SideStats {
	return func() SideStats {
		a := ar()
		return SideStats{
			Index: index, Scheme: scheme,
			Allocs: a.Allocs, Frees: a.Frees, Live: a.Live, MaxLive: a.MaxLive,
			Slots: a.Slots, MagRefills: a.MagRefills,
		}
	}
}

func manualSide(index, scheme string, ar func() arena.Stats, s reclaim.Scheme, maxThreads int) func() SideStats {
	return func() SideStats {
		a := ar()
		rs := s.Stats()
		depth := 0
		for t := 0; t < maxThreads; t++ {
			depth += s.RetireDepth(t)
		}
		return SideStats{
			Index: index, Scheme: scheme,
			Allocs: a.Allocs, Frees: a.Frees, Live: a.Live, MaxLive: a.MaxLive,
			Slots: a.Slots, MagRefills: a.MagRefills,
			RetiredNotFreed: rs.RetiredNotFreed,
			RetireDepth:     depth,
		}
	}
}

// Stats snapshots the whole store.
func (st *Store) Stats() Stats {
	sides := st.stats()
	out := Stats{
		Scheme:   st.cfg.Scheme,
		Shards:   st.cfg.Shards,
		Baseline: st.baseline,
		Sides:    sides,
	}
	for _, s := range sides {
		out.Live += s.Live
		out.MaxLive += s.MaxLive
	}
	return out
}

// RetiredNotFreed sums reclamation backlog over every index.
func (st *Store) RetiredNotFreed() int64 {
	var n int64
	for _, s := range st.stats() {
		n += s.RetiredNotFreed
	}
	return n
}

// DrainReport is the outcome of DrainAndCheck.
type DrainReport struct {
	Scheme          string `json:"scheme"`
	Baseline        int64  `json:"baseline"`
	Live            int64  `json:"live"`
	RetiredNotFreed int64  `json:"retired_not_freed"`
	Deleted         int    `json:"deleted"`
	LeakOK          bool   `json:"leak_ok"`
}

// DrainAndCheck empties the store and verifies the arenas returned to
// the post-construction baseline. Quiescent use only: no concurrent
// operations may be in flight, and every tid that ever operated must
// have completed. Reclaiming schemes must return Live to exactly the
// baseline; the "none" baseline instead satisfies conservation:
// Live − baseline == RetiredNotFreed (everything missing is accounted
// for on the leak lists).
func (st *Store) DrainAndCheck(tid int) DrainReport {
	deleted := 0
	for {
		pairs, _ := st.Scan(tid, MinKey, 4096)
		if len(pairs) == 0 {
			break
		}
		for i := 0; i < len(pairs); i += 2 {
			if ok, _ := st.Del(tid, pairs[i]); ok {
				deleted++
			}
		}
	}
	// Flush rounds: every tid clears its protections, then each round
	// retries the deferred frees that earlier rounds' protections held up.
	for round := 0; round < 3; round++ {
		for t := 0; t < st.cfg.MaxThreads; t++ {
			st.flush(t)
		}
	}
	rep := DrainReport{
		Scheme:          st.cfg.Scheme,
		Baseline:        st.baseline,
		Live:            st.live(),
		RetiredNotFreed: st.RetiredNotFreed(),
		Deleted:         deleted,
	}
	if st.cfg.Scheme == "none" {
		rep.LeakOK = rep.Live-rep.Baseline == rep.RetiredNotFreed
	} else {
		rep.LeakOK = rep.Live == rep.Baseline
	}
	return rep
}
