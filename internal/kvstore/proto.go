package kvstore

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: length-prefixed little-endian binary frames, designed
// for pipelining — a client may write any number of requests before
// reading responses; the server answers strictly in request order.
//
//	request  frame: u32 payloadLen | u8 op | op-specific fields
//	response frame: u32 payloadLen | u8 status | op-specific fields
//
// Ops and their request/response payloads (after the op/status byte):
//
//	GET   key u64                → OK: val u64        | NotFound
//	PUT   key u64, val u64       → OK: inserted u8
//	DEL   key u64                → OK | NotFound
//	SCAN  from u64, limit u32    → OK: n u32, n×(k u64, v u64)
//	STATS                        → OK: JSON bytes (kvstore.Stats)
//	DRAIN                        → OK: JSON bytes (kvstore.DrainReport);
//	                               quiescent use only (no other traffic)
//
// Err responses carry a UTF-8 message.
const (
	OpGet   = uint8(1)
	OpPut   = uint8(2)
	OpDel   = uint8(3)
	OpScan  = uint8(4)
	OpStats = uint8(5)
	OpDrain = uint8(6)

	StatusOK       = uint8(0)
	StatusNotFound = uint8(1)
	StatusErr      = uint8(2)
)

// Cluster admin ops, served only by the kvproxy (internal/cluster). A
// plain kvserver answers them with an Err frame, so pointing an admin
// client at the wrong tier fails loudly instead of silently. Their
// payloads are UTF-8 backend addresses after the op byte; responses are
// JSON after the status byte.
//
//	CLUSTER_INFO                 → OK: JSON (cluster.Info)
//	CLUSTER_ADD    addr          → OK: JSON (cluster.RebalanceReport)
//	CLUSTER_DRAIN  addr          → OK: JSON (cluster.RebalanceReport);
//	                               hands the node's keys off, then drops
//	                               it from the ring (the process stays up
//	                               for its own drain/leak check)
//	CLUSTER_REMOVE addr          → OK: JSON (cluster.RebalanceReport);
//	                               same retirement protocol, but works on
//	                               a node that is already gone — the
//	                               handoff re-replicates its keys from
//	                               the surviving replicas instead
const (
	OpClusterInfo   = uint8(16)
	OpClusterAdd    = uint8(17)
	OpClusterDrain  = uint8(18)
	OpClusterRemove = uint8(19)
)

// MaxFrame bounds a frame payload; a SCAN of MaxScanLimit pairs is the
// largest legitimate frame.
const (
	MaxScanLimit = 1024
	MaxFrame     = 16 + MaxScanLimit*16
)

// readFrame reads one length-prefixed frame payload into buf (growing
// it as needed) and returns the payload slice.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("kvstore: bad frame length %d", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// appendFrame appends a length-prefixed frame holding payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame and AppendFrame expose the framing to the cluster proxy,
// which terminates the protocol on its client side and forwards request
// payloads to backends verbatim.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) { return readFrame(r, buf) }
func AppendFrame(dst, payload []byte) []byte            { return appendFrame(dst, payload) }

// Field accessors for proxies that route on the key without decoding
// the full request.
func PayloadU64(b []byte, off int) (uint64, bool) { return getU64(b, off) }
func PayloadU32(b []byte, off int) (uint32, bool) { return getU32(b, off) }
func AppendU64(dst []byte, v uint64) []byte       { return appendU64(dst, v) }
func AppendU32(dst []byte, v uint32) []byte       { return appendU32(dst, v) }

// beginFrame reserves the length prefix in dst and returns the offset
// where the payload starts; endFrame back-fills the prefix once the
// payload is complete. Between the two, the response is encoded directly
// into the connection's pooled buffer — no intermediate payload slice.
func beginFrame(dst []byte) ([]byte, int) {
	dst = append(dst, 0, 0, 0, 0)
	return dst, len(dst)
}

func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start-4:], uint32(len(dst)-start))
	return dst
}

func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

func getU64(b []byte, off int) (uint64, bool) {
	if off+8 > len(b) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b[off:]), true
}

func getU32(b []byte, off int) (uint32, bool) {
	if off+4 > len(b) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b[off:]), true
}
