package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Wire protocol: length-prefixed little-endian binary frames, designed
// for pipelining — a client may write any number of requests before
// reading responses; the server answers strictly in request order.
//
//	request  frame: u32 payloadLen | u8 op | op-specific fields
//	response frame: u32 payloadLen | u8 status | op-specific fields
//
// Ops and their request/response payloads (after the op/status byte):
//
//	GET   key u64                → OK: val u64        | NotFound
//	PUT   key u64, val u64       → OK: inserted u8
//	DEL   key u64                → OK | NotFound
//	SCAN  from u64, limit u32    → OK: n u32, n×(k u64, v u64)
//	STATS                        → OK: JSON bytes (kvstore.Stats)
//	DRAIN                        → OK: JSON bytes (kvstore.DrainReport);
//	                               quiescent use only (no other traffic)
//	HELLO client-version u32     → OK: server-version u32; the pair
//	                               speaks min(client, server)
//
// Err responses carry a UTF-8 message.
//
// Version negotiation (wire v1): a pre-versioning server answers HELLO
// like any unknown op — with a well-formed Err frame — so a v1 client
// negotiates down to v0 without a connection reset. Servers never
// initiate; an un-negotiated connection is treated as v0 by both sides.
//
// Execution budgets (wire v1): any data-op request may carry a budget by
// OR-ing OpFlagBudget into the op byte and inserting the remaining
// budget, in microseconds, directly after it:
//
//	budgeted frame: u32 payloadLen | u8 op|OpFlagBudget | u32 budgetUs | fields
//
// The server converts the budget to a local deadline at parse time and
// re-checks it at dequeue (after any admission-queue wait): an expired
// op is answered StatusDeadlineExceeded *instead of being executed*, and
// an op refused by admission control is answered StatusOverloaded.
// Either status is a contract that the op had no effect.
const (
	OpGet   = uint8(1)
	OpPut   = uint8(2)
	OpDel   = uint8(3)
	OpScan  = uint8(4)
	OpStats = uint8(5)
	OpDrain = uint8(6)
	OpHello = uint8(7)

	// OpFlagBudget marks a request op byte as budget-prefixed. High bit
	// so the flagged range can never collide with a real op.
	OpFlagBudget = uint8(0x80)

	StatusOK               = uint8(0)
	StatusNotFound         = uint8(1)
	StatusErr              = uint8(2)
	StatusDeadlineExceeded = uint8(3)
	StatusOverloaded       = uint8(4)
)

// ProtoVersion is the highest wire version this build speaks: v1 adds
// HELLO negotiation, budget prefixes, and the two shed statuses.
const ProtoVersion = 1

// maxBudget caps the on-wire budget; anything longer is indistinguishable
// from "no deadline" in practice and must still fit the u32 µs field.
const maxBudget = time.Hour

// Cluster admin ops, served only by the kvproxy (internal/cluster). A
// plain kvserver answers them with an Err frame, so pointing an admin
// client at the wrong tier fails loudly instead of silently. Their
// payloads are UTF-8 backend addresses after the op byte; responses are
// JSON after the status byte.
//
//	CLUSTER_INFO                 → OK: JSON (cluster.Info)
//	CLUSTER_ADD    addr          → OK: JSON (cluster.RebalanceReport)
//	CLUSTER_DRAIN  addr          → OK: JSON (cluster.RebalanceReport);
//	                               hands the node's keys off, then drops
//	                               it from the ring (the process stays up
//	                               for its own drain/leak check)
//	CLUSTER_REMOVE addr          → OK: JSON (cluster.RebalanceReport);
//	                               same retirement protocol, but works on
//	                               a node that is already gone — the
//	                               handoff re-replicates its keys from
//	                               the surviving replicas instead
const (
	OpClusterInfo   = uint8(16)
	OpClusterAdd    = uint8(17)
	OpClusterDrain  = uint8(18)
	OpClusterRemove = uint8(19)
)

// MaxFrame bounds a frame payload; a SCAN of MaxScanLimit pairs is the
// largest legitimate frame.
const (
	MaxScanLimit = 1024
	MaxFrame     = 16 + MaxScanLimit*16
)

// readFrame reads one length-prefixed frame payload into buf (growing
// it as needed) and returns the payload slice.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("kvstore: bad frame length %d", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readFrameBuffered reads one frame through br's buffer using
// Peek/Discard so that an *aborted* read — a poisoned deadline firing
// mid-wait — consumes nothing: the frame stays buffered (or unread) and
// the response stream keeps its alignment, leaving the connection
// reusable after a cancellation. br's buffer must hold a full frame
// (4+MaxFrame bytes).
func readFrameBuffered(br *bufio.Reader, buf []byte) ([]byte, error) {
	hdr, err := br.Peek(4)
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("kvstore: bad frame length %d", n)
	}
	full, err := br.Peek(4 + int(n))
	if err != nil {
		return nil, err
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	copy(buf, full[4:])
	if _, err := br.Discard(4 + int(n)); err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendBudget appends a budget-prefixed op header (op|OpFlagBudget and
// the budget in microseconds, clamped to [1µs, maxBudget]) to dst. The
// caller appends the op's usual fields after it.
func AppendBudget(dst []byte, op uint8, budget time.Duration) []byte {
	if budget > maxBudget {
		budget = maxBudget
	}
	us := budget.Microseconds()
	if us < 1 {
		us = 1
	}
	dst = append(dst, op|OpFlagBudget)
	return appendU32(dst, uint32(us))
}

// SplitBudget strips the optional budget prefix from a request payload.
// The plain payload is reconstructed in place — payload[4] is rewritten
// to the bare op byte and the returned slice starts there — so the
// caller must own the buffer. Returns the plain payload, the budget
// (0 when absent), and false for a malformed budgeted frame.
func SplitBudget(payload []byte) ([]byte, time.Duration, bool) {
	if len(payload) == 0 || payload[0]&OpFlagBudget == 0 {
		return payload, 0, true
	}
	us, ok := getU32(payload, 1)
	if !ok || us == 0 {
		return payload, 0, false
	}
	payload[4] = payload[0] &^ OpFlagBudget
	return payload[4:], time.Duration(us) * time.Microsecond, true
}

// RewriteFrameBudget overwrites the budget field of a budget-flagged
// frame (length prefix included) in place — the zero-copy counterpart
// of AppendBudget for a proxy that forwards one pooled frame to several
// backends, each with a different remaining budget. Returns false if
// the frame is not budget-flagged or too short to carry the field.
func RewriteFrameBudget(frame []byte, budget time.Duration) bool {
	if len(frame) < 9 || frame[4]&OpFlagBudget == 0 {
		return false
	}
	if budget > maxBudget {
		budget = maxBudget
	}
	us := budget.Microseconds()
	if us < 1 {
		us = 1
	}
	binary.LittleEndian.PutUint32(frame[5:9], uint32(us))
	return true
}

// appendFrame appends a length-prefixed frame holding payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame and AppendFrame expose the framing to the cluster proxy,
// which terminates the protocol on its client side and forwards request
// payloads to backends verbatim.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) { return readFrame(r, buf) }
func AppendFrame(dst, payload []byte) []byte            { return appendFrame(dst, payload) }

// Field accessors for proxies that route on the key without decoding
// the full request.
func PayloadU64(b []byte, off int) (uint64, bool) { return getU64(b, off) }
func PayloadU32(b []byte, off int) (uint32, bool) { return getU32(b, off) }
func AppendU64(dst []byte, v uint64) []byte       { return appendU64(dst, v) }
func AppendU32(dst []byte, v uint32) []byte       { return appendU32(dst, v) }

// beginFrame reserves the length prefix in dst and returns the offset
// where the payload starts; endFrame back-fills the prefix once the
// payload is complete. Between the two, the response is encoded directly
// into the connection's pooled buffer — no intermediate payload slice.
func beginFrame(dst []byte) ([]byte, int) {
	dst = append(dst, 0, 0, 0, 0)
	return dst, len(dst)
}

func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start-4:], uint32(len(dst)-start))
	return dst
}

func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

func getU64(b []byte, off int) (uint64, bool) {
	if off+8 > len(b) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b[off:]), true
}

func getU32(b []byte, off int) (uint32, bool) {
	if off+4 > len(b) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b[off:]), true
}
