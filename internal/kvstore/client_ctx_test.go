package kvstore

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// muteServer accepts connections and then never responds — the shape of
// a backend that died with the socket still open (or is wedged behind a
// partition that swallows replies).
func muteServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			// Swallow whatever arrives; never write back.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestGetCancellation: a Get blocked on a dead backend returns when its
// context is cancelled — promptly, with the cancellation cause in the
// error chain, and without closing the connection (the abort abandons
// the wait, not the conn; tearing down is the caller's decision).
func TestGetCancellation(t *testing.T) {
	addr := muteServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, _, err = cl.Get(cctx, 1)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("Get against a mute backend returned a response")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Get error does not carry context.Canceled: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled Get took %v to unblock", elapsed)
	}

	// The connection survives the abort: the socket still accepts
	// writes, so a caller that knows no response bytes were in flight
	// may keep using it.
	cl.SendGet(2)
	if err := cl.Flush(); err != nil {
		t.Fatalf("connection unusable after cancellation: %v", err)
	}
}

// TestGetDeadlineExceeded: an already-expired context aborts the wait
// with its own cause rather than hanging even briefly.
func TestGetDeadlineExceeded(t *testing.T) {
	addr := muteServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	dctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-dctx.Done()
	if _, _, err := cl.Get(dctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-context Get: want DeadlineExceeded in chain, got %v", err)
	}
}
