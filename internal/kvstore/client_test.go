package kvstore

import (
	"math/rand"
	"testing"
	"time"
)

// The jittered backoff must stay inside [0.75d, 1.25d) for every u in
// [0, 1): a reconnect herd spreads out, but nobody retries earlier than
// three quarters of the schedule or later than five quarters of it.
func TestJitterBackoffBounds(t *testing.T) {
	bases := []time.Duration{
		time.Millisecond, 50 * time.Millisecond, time.Second, 30 * time.Second,
	}
	for _, d := range bases {
		lo, hi := 3*d/4, 5*d/4
		for _, u := range []float64{0, 0.25, 0.5, 0.9999999} {
			got := jitterBackoff(d, u)
			if got < lo || got > hi {
				t.Errorf("jitterBackoff(%v, %v) = %v, outside [%v, %v]", d, u, got, lo, hi)
			}
		}
		// Endpoints are tight: u=0 hits exactly 0.75d.
		if got := jitterBackoff(d, 0); got != lo {
			t.Errorf("jitterBackoff(%v, 0) = %v, want %v", d, got, lo)
		}
	}
}

// Random sampling: the jitter actually spreads (not a constant), and a
// doubling schedule with jitter stays strictly ordered on average.
func TestJitterBackoffSpreads(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := 100 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 256; i++ {
		w := jitterBackoff(d, r.Float64())
		if w < 3*d/4 || w > 5*d/4 {
			t.Fatalf("sample %v outside bounds", w)
		}
		seen[w] = true
	}
	if len(seen) < 32 {
		t.Errorf("jitter produced only %d distinct waits out of 256 samples", len(seen))
	}
	// Max of one rung is below min of the next: 1.25d < 0.75·2d, so
	// jittered doubling never reorders attempts across rungs.
	if jitterBackoff(d, 0.9999999) >= jitterBackoff(2*d, 0) {
		t.Error("jitter windows of adjacent backoff rungs overlap")
	}
}
