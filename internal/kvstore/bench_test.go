package kvstore

import (
	"net"
	"testing"
)

func startBenchServer(b *testing.B, scheme string, maxThreads int) string {
	b.Helper()
	st, err := New(Config{Scheme: scheme, Shards: 4, Buckets: 256, MaxThreads: maxThreads})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(st)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	b.Cleanup(func() {
		srv.Shutdown()
		<-done
	})
	return ln.Addr().String()
}

// BenchmarkServerPipeline measures the server's per-op cost on the
// pipelined TCP path: one connection writing windows of mixed requests
// and draining the responses. Run with -benchmem to see server-side
// allocs/op reflected in the process totals (client and server share
// the process on loopback).
func BenchmarkServerPipeline(b *testing.B) {
	addr := startBenchServer(b, "hp", 8)
	cl, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	// Warm the store and both ends' buffers.
	for k := uint64(1); k <= 256; k++ {
		if _, err := cl.Put(ctx, k, k); err != nil {
			b.Fatal(err)
		}
	}

	const window = 64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		w := window
		if rem := b.N - n; rem < w {
			w = rem
		}
		for i := 0; i < w; i++ {
			k := uint64(n+i)%256 + 1
			switch (n + i) % 4 {
			case 0:
				cl.SendPut(k, uint64(n))
			default:
				cl.SendGet(k)
			}
		}
		if err := cl.Flush(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < w; i++ {
			k := uint64(n+i)%256 + 1
			switch (n + i) % 4 {
			case 0:
				if _, err := cl.RecvPut(); err != nil {
					b.Fatal(err)
				}
			default:
				if _, _, err := cl.RecvGet(); err != nil {
					b.Fatal(err)
				}
			}
			_ = k
		}
		n += w
	}
}
