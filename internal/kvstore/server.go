package kvstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Server serves the wire protocol over TCP. Each accepted connection
// checks a tid out of a fixed pool for its lifetime — the tid is what
// the reclamation layer keys its per-thread state on, so connections
// map one-to-one onto reclamation threads. A reader goroutine parses
// and executes requests serially (per-connection order is the protocol
// contract) while a writer goroutine streams responses, flushing only
// when the pipeline goes idle.
type Server struct {
	st *Store
	ln net.Listener

	tids chan int // pool of tids 1..MaxThreads-1; tid 0 belongs to New/drain

	mu     sync.Mutex
	conns  map[net.Conn]*connState
	closed bool

	m *srvMetrics // nil unless Instrument was called

	wg sync.WaitGroup
}

// connState is what the server tracks per live connection; the response
// channel is kept so the queue-depth gauge can sum backlogs.
type connState struct {
	resp chan *[]byte
}

// framePool recycles response-frame buffers between each connection's
// reader goroutine (which encodes a response into one) and writer
// goroutine (which returns it once the bytes are in the bufio writer) —
// the arena's magazine style applied to the TCP path. Buffers are
// passed as *[]byte so Put never allocates a slice header, and a
// steady-state request makes zero frame allocations.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// srvMetrics is the optional request-path instrumentation: one striped
// counter and one sampled latency histogram per op kind, keyed by the
// connection's tid so concurrent handlers never contend on a stripe.
type srvMetrics struct {
	ops [opMax]*obs.Counter
	lat [opMax]*obs.Hist
}

const opMax = OpDrain + 1

func opName(op byte) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpScan:
		return "scan"
	case OpStats:
		return "stats"
	case OpDrain:
		return "drain"
	default:
		return "other"
	}
}

// latSampleMask selects which requests get timed: 1 in 64, cheap enough
// to leave on in production scrapes.
const latSampleMask = 63

// NewServer wraps st; the caller keeps ownership of st (for
// DrainAndCheck after Shutdown).
func NewServer(st *Store) *Server {
	s := &Server{
		st:    st,
		tids:  make(chan int, st.MaxThreads()-1),
		conns: make(map[net.Conn]*connState),
	}
	for t := 1; t < st.MaxThreads(); t++ {
		s.tids <- t
	}
	return s
}

// Instrument registers the server's request metrics with reg: per-op
// throughput counters ("kv/server/ops/get"), 1-in-64-sampled per-op
// latency histograms ("kv/server/lat/get_ns"), and gauges for active
// connections and summed response-queue depth. Call before Serve.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &srvMetrics{}
	for op := byte(OpGet); op < opMax; op++ {
		m.ops[op] = reg.Counter("kv/server/ops/" + opName(op))
		m.lat[op] = reg.Hist("kv/server/lat/" + opName(op) + "_ns")
	}
	s.m = m
	reg.GaugeFunc("kv/server/conns", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	})
	reg.GaugeFunc("kv/server/queue_depth", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var d int64
		for _, cs := range s.conns {
			d += int64(len(cs.resp))
		}
		return d
	})
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// once the accept loop exits; Shutdown waits for the connections.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("kvstore: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		select {
		case tid := <-s.tids:
			cs, ok := s.track(c)
			if !ok {
				s.tids <- tid
				c.Close()
				return nil
			}
			s.wg.Add(1)
			go s.handle(c, cs, tid)
		default:
			// Tid pool exhausted: every reclamation thread slot is in
			// use. Refuse rather than queue — the client sees EOF.
			c.Close()
		}
	}
}

func (s *Server) track(c net.Conn) (*connState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	cs := &connState{resp: make(chan *[]byte, 256)}
	s.conns[c] = cs
	return cs, true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown drains gracefully: stop accepting, half-close every
// connection's read side so in-flight pipelines finish and their
// responses flush, then wait for all handlers to exit.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			c.Close()
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// handle runs one connection: the reader executes ops with this
// connection's tid and hands encoded responses to the writer over the
// tracked response channel.
func (s *Server) handle(c net.Conn, cs *connState, tid int) {
	defer s.wg.Done()
	defer func() { s.tids <- tid }()
	defer s.untrack(c)
	defer c.Close()

	resp := cs.resp
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		bw := bufio.NewWriterSize(c, 64<<10)
		for bp := range resp {
			bw.Write(*bp)
			idle := len(resp) == 0
			*bp = (*bp)[:0]
			framePool.Put(bp)
			if idle {
				bw.Flush() // pipeline idle — push responses out
			}
		}
		bw.Flush()
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	var buf []byte
	m := s.m
	var nops uint64
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			break // EOF, half-close, or framing error
		}
		buf = payload
		bp := framePool.Get().(*[]byte)
		if m == nil {
			*bp = s.execute(tid, (*bp)[:0], payload)
			resp <- bp
			continue
		}
		op := payload[0]
		if op < opMax {
			m.ops[op].Inc(tid)
		}
		if nops&latSampleMask == 0 && op < opMax {
			t0 := time.Now()
			*bp = s.execute(tid, (*bp)[:0], payload)
			m.lat[op].Observe(uint64(time.Since(t0)))
		} else {
			*bp = s.execute(tid, (*bp)[:0], payload)
		}
		resp <- bp
		nops++
	}
	close(resp)
	wwg.Wait()
}

// execute runs one request, encoding the response frame directly into
// dst (a recycled buffer from framePool), and returns the grown slice.
func (s *Server) execute(tid int, dst, req []byte) []byte {
	out, fs := beginFrame(dst)
	op := req[0]
	switch op {
	case OpGet:
		key, ok := getU64(req, 1)
		if !ok {
			return errFrame(out, fs, "short GET")
		}
		v, found, err := s.st.Get(tid, key)
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		if !found {
			return endFrame(append(out, StatusNotFound), fs)
		}
		out = append(out, StatusOK)
		out = appendU64(out, v)
		return endFrame(out, fs)
	case OpPut:
		key, ok1 := getU64(req, 1)
		val, ok2 := getU64(req, 9)
		if !ok1 || !ok2 {
			return errFrame(out, fs, "short PUT")
		}
		ins, err := s.st.Put(tid, key, val)
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		b := uint8(0)
		if ins {
			b = 1
		}
		return endFrame(append(out, StatusOK, b), fs)
	case OpDel:
		key, ok := getU64(req, 1)
		if !ok {
			return errFrame(out, fs, "short DEL")
		}
		found, err := s.st.Del(tid, key)
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		if !found {
			return endFrame(append(out, StatusNotFound), fs)
		}
		return endFrame(append(out, StatusOK), fs)
	case OpScan:
		from, ok1 := getU64(req, 1)
		limit, ok2 := getU32(req, 9)
		if !ok1 || !ok2 {
			return errFrame(out, fs, "short SCAN")
		}
		if limit > MaxScanLimit {
			limit = MaxScanLimit
		}
		pairs, err := s.st.Scan(tid, from, int(limit))
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		out = append(out, StatusOK)
		out = appendU32(out, uint32(len(pairs)/2))
		for _, w := range pairs {
			out = appendU64(out, w)
		}
		return endFrame(out, fs)
	case OpStats:
		js, err := json.Marshal(s.st.Stats())
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		out = append(out, StatusOK)
		return endFrame(append(out, js...), fs)
	case OpDrain:
		// Quiescent barrier: DrainAndCheck walks every tid's protection
		// slots (plain owner-mirrors, not atomics), so every other
		// connection must be gone first. Claiming the whole tid pool
		// does both jobs at once: each receive is the happens-before
		// edge with the handler that returned that tid (or with the
		// pool seeding, for never-used tids), and an empty pool makes
		// Serve refuse connections that arrive mid-drain. A client that
		// keeps its connection open makes this time out rather than
		// race.
		claimed := make([]int, 0, cap(s.tids))
		timeout := time.After(30 * time.Second)
		for len(claimed) < cap(s.tids)-1 {
			select {
			case t := <-s.tids:
				claimed = append(claimed, t)
			case <-timeout:
				for _, t := range claimed {
					s.tids <- t
				}
				return errFrame(out, fs, "drain: store busy (another connection still holds a reclamation tid)")
			}
		}
		js, err := json.Marshal(s.st.DrainAndCheck(tid))
		for _, t := range claimed {
			s.tids <- t
		}
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		out = append(out, StatusOK)
		return endFrame(append(out, js...), fs)
	default:
		return errFrame(out, fs, fmt.Sprintf("unknown op %d", op))
	}
}

// errFrame completes an in-progress frame as an error response. The
// payload hole is still empty on every error path (errors are detected
// before any payload bytes are appended).
func errFrame(out []byte, start int, msg string) []byte {
	out = append(out, StatusErr)
	out = append(out, msg...)
	return endFrame(out, start)
}

// ListenAndServe is the cmd/kvserver entry point: listen on addr and
// serve until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}
