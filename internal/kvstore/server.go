package kvstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Server serves the wire protocol over TCP. Each accepted connection
// checks a tid out of a fixed pool for its lifetime — the tid is what
// the reclamation layer keys its per-thread state on, so connections
// map one-to-one onto reclamation threads. A reader goroutine parses
// and executes requests serially (per-connection order is the protocol
// contract) while a writer goroutine streams responses, flushing only
// when the pipeline goes idle.
type Server struct {
	st *Store
	ln net.Listener

	tids chan int // pool of tids 1..MaxThreads-1; tid 0 belongs to New/drain

	adm admission

	mu     sync.Mutex
	conns  map[net.Conn]*connState
	closed bool

	m *srvMetrics // nil unless Instrument was called

	wg sync.WaitGroup
}

// admission bounds concurrent data-op execution. slots holds one token
// per free inflight slot (nil = unlimited); an op that cannot get a
// token immediately either queues (bounded by queueCap waiters) or is
// shed with StatusOverloaded on the spot — saturation degrades to
// fast-fail, not latency collapse. Budgeted ops re-check their deadline
// after the queue wait, so a slot is never spent executing work whose
// caller has already given up (the OrcGC robustness argument over the
// wire: bounding dead work bounds the retire backlog).
type admission struct {
	slots    chan struct{}
	limit    int
	queueCap int64
	waiters  atomic.Int64
	shed     atomic.Uint64
	expired  atomic.Uint64
}

func (a *admission) init(limit, queue int) {
	if limit <= 0 {
		return
	}
	if queue <= 0 {
		queue = 2 * limit
	}
	a.limit = limit
	a.queueCap = int64(queue)
	a.slots = make(chan struct{}, limit)
	for i := 0; i < limit; i++ {
		a.slots <- struct{}{}
	}
}

// acquire takes an inflight slot, waiting until deadline (zero = wait
// forever) while the waiter bound allows. Returns StatusOK holding a
// slot, or the shed status to answer with — in which case no slot is
// held and the op must not execute.
func (a *admission) acquire(deadline time.Time) uint8 {
	select {
	case <-a.slots:
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			a.release()
			a.expired.Add(1)
			return StatusDeadlineExceeded
		}
		return StatusOK
	default:
	}
	if a.waiters.Add(1) > a.queueCap {
		a.waiters.Add(-1)
		a.shed.Add(1)
		return StatusOverloaded
	}
	defer a.waiters.Add(-1)
	if deadline.IsZero() {
		<-a.slots
		return StatusOK
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-a.slots:
		return StatusOK
	case <-timer.C:
		a.expired.Add(1)
		return StatusDeadlineExceeded
	}
}

func (a *admission) release() { a.slots <- struct{}{} }

// AdmissionStats is the admission-control ledger: configured bounds and
// the running shed counters. Shed counts ops refused with
// StatusOverloaded; DeadlineExceeded counts ops refused with
// StatusDeadlineExceeded. Both count refusals that provably did not
// execute.
type AdmissionStats struct {
	InflightLimit    int    `json:"inflight_limit"`
	QueueLimit       int    `json:"queue_limit"`
	Shed             uint64 `json:"shed_total"`
	DeadlineExceeded uint64 `json:"deadline_exceeded_total"`
}

// AdmissionStats snapshots the admission ledger.
func (s *Server) AdmissionStats() AdmissionStats {
	return AdmissionStats{
		InflightLimit:    s.adm.limit,
		QueueLimit:       int(s.adm.queueCap),
		Shed:             s.adm.shed.Load(),
		DeadlineExceeded: s.adm.expired.Load(),
	}
}

// connState is what the server tracks per live connection; the response
// channel is kept so the queue-depth gauge can sum backlogs.
type connState struct {
	resp chan *[]byte
}

// framePool recycles response-frame buffers between each connection's
// reader goroutine (which encodes a response into one) and writer
// goroutine (which returns it once the bytes are in the bufio writer) —
// the arena's magazine style applied to the TCP path. Buffers are
// passed as *[]byte so Put never allocates a slice header, and a
// steady-state request makes zero frame allocations.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// srvMetrics is the optional request-path instrumentation: one striped
// counter and one sampled latency histogram per op kind, keyed by the
// connection's tid so concurrent handlers never contend on a stripe.
type srvMetrics struct {
	ops [opMax]*obs.Counter
	lat [opMax]*obs.Hist
}

const opMax = OpHello + 1

func opName(op byte) string {
	switch op {
	case OpHello:
		return "hello"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpScan:
		return "scan"
	case OpStats:
		return "stats"
	case OpDrain:
		return "drain"
	default:
		return "other"
	}
}

// latSampleMask selects which requests get timed: 1 in 64, cheap enough
// to leave on in production scrapes.
const latSampleMask = 63

// ServerOption tunes a Server at construction.
type ServerOption func(*serverConfig)

type serverConfig struct {
	maxInflight int
	maxQueue    int
}

// WithMaxInflight bounds how many data ops (GET/PUT/DEL/SCAN) may
// execute concurrently; excess arrivals queue up to the WithMaxQueue
// bound and are shed with StatusOverloaded past it. 0 (the default)
// leaves admission unlimited. Control ops (STATS/DRAIN/HELLO) bypass
// admission — an operator must be able to inspect a saturated server.
func WithMaxInflight(n int) ServerOption {
	return func(c *serverConfig) { c.maxInflight = n }
}

// WithMaxQueue bounds how many data ops may wait for an inflight slot
// before new arrivals are shed (default 2× the inflight bound).
func WithMaxQueue(n int) ServerOption {
	return func(c *serverConfig) { c.maxQueue = n }
}

// NewServer wraps st; the caller keeps ownership of st (for
// DrainAndCheck after Shutdown).
func NewServer(st *Store, opts ...ServerOption) *Server {
	var sc serverConfig
	for _, o := range opts {
		o(&sc)
	}
	s := &Server{
		st:    st,
		tids:  make(chan int, st.MaxThreads()-1),
		conns: make(map[net.Conn]*connState),
	}
	s.adm.init(sc.maxInflight, sc.maxQueue)
	for t := 1; t < st.MaxThreads(); t++ {
		s.tids <- t
	}
	return s
}

// Instrument registers the server's request metrics with reg: per-op
// throughput counters ("kv/server/ops/get"), 1-in-64-sampled per-op
// latency histograms ("kv/server/lat/get_ns"), and gauges for active
// connections and summed response-queue depth. Call before Serve.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &srvMetrics{}
	for op := byte(OpGet); op < opMax; op++ {
		m.ops[op] = reg.Counter("kv/server/ops/" + opName(op))
		m.lat[op] = reg.Hist("kv/server/lat/" + opName(op) + "_ns")
	}
	s.m = m
	reg.GaugeFunc("kv/server/conns", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	})
	reg.GaugeFunc("kv/server/queue_depth", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var d int64
		for _, cs := range s.conns {
			d += int64(len(cs.resp))
		}
		return d
	})
	reg.GaugeFunc("kv/server/shed_total", func() int64 {
		return int64(s.adm.shed.Load())
	})
	reg.GaugeFunc("kv/server/deadline_exceeded_total", func() int64 {
		return int64(s.adm.expired.Load())
	})
	reg.GaugeFunc("kv/server/inflight_limit", func() int64 {
		return int64(s.adm.limit)
	})
	reg.GaugeFunc("kv/server/inflight", func() int64 {
		if s.adm.slots == nil {
			return 0
		}
		return int64(s.adm.limit - len(s.adm.slots))
	})
	reg.GaugeFunc("kv/server/queue_waiters", func() int64 {
		return s.adm.waiters.Load()
	})
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// once the accept loop exits; Shutdown waits for the connections.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("kvstore: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		select {
		case tid := <-s.tids:
			cs, ok := s.track(c)
			if !ok {
				s.tids <- tid
				c.Close()
				return nil
			}
			s.wg.Add(1)
			go s.handle(c, cs, tid)
		default:
			// Tid pool exhausted: every reclamation thread slot is in
			// use. Refuse rather than queue — the client sees EOF.
			c.Close()
		}
	}
}

func (s *Server) track(c net.Conn) (*connState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	cs := &connState{resp: make(chan *[]byte, 256)}
	s.conns[c] = cs
	return cs, true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown drains gracefully: stop accepting, half-close every
// connection's read side so in-flight pipelines finish and their
// responses flush, then wait for all handlers to exit.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			c.Close()
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// handle runs one connection: the reader executes ops with this
// connection's tid and hands encoded responses to the writer over the
// tracked response channel.
func (s *Server) handle(c net.Conn, cs *connState, tid int) {
	defer s.wg.Done()
	defer func() { s.tids <- tid }()
	defer s.untrack(c)
	defer c.Close()

	resp := cs.resp
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		bw := bufio.NewWriterSize(c, 64<<10)
		for bp := range resp {
			bw.Write(*bp)
			idle := len(resp) == 0
			*bp = (*bp)[:0]
			framePool.Put(bp)
			if idle {
				bw.Flush() // pipeline idle — push responses out
			}
		}
		bw.Flush()
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	var buf []byte
	m := s.m
	var nops uint64
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			break // EOF, half-close, or framing error
		}
		buf = payload
		bp := framePool.Get().(*[]byte)
		// The budget becomes a local deadline at parse time; transit and
		// admission-queue time burn it, execution is gated on it.
		req, budget, ok := SplitBudget(payload)
		if !ok {
			out, fs := beginFrame((*bp)[:0])
			*bp = errFrame(out, fs, "malformed budget prefix")
			resp <- bp
			continue
		}
		var deadline time.Time
		if budget > 0 {
			deadline = time.Now().Add(budget)
		}
		if m == nil {
			*bp = s.serveOne(tid, (*bp)[:0], req, deadline)
			resp <- bp
			continue
		}
		op := req[0]
		if op < opMax {
			m.ops[op].Inc(tid)
		}
		if nops&latSampleMask == 0 && op < opMax {
			t0 := time.Now()
			*bp = s.serveOne(tid, (*bp)[:0], req, deadline)
			m.lat[op].Observe(uint64(time.Since(t0)))
		} else {
			*bp = s.serveOne(tid, (*bp)[:0], req, deadline)
		}
		resp <- bp
		nops++
	}
	close(resp)
	wwg.Wait()
}

// serveOne applies the deadline check and admission control, then
// executes. Only data ops (GET/PUT/DEL/SCAN) are gated; control ops
// pass straight through. Every rejection happens *before* the store is
// touched, so a StatusDeadlineExceeded or StatusOverloaded response is
// a proof the op had no effect.
func (s *Server) serveOne(tid int, dst, req []byte, deadline time.Time) []byte {
	if op := req[0]; op >= OpGet && op <= OpScan {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			s.adm.expired.Add(1)
			return statusFrame(dst, StatusDeadlineExceeded)
		}
		if s.adm.slots != nil {
			if st := s.adm.acquire(deadline); st != StatusOK {
				return statusFrame(dst, st)
			}
			defer s.adm.release()
		}
	}
	return s.execute(tid, dst, req)
}

// statusFrame encodes a bare single-status response into dst.
func statusFrame(dst []byte, status uint8) []byte {
	out, fs := beginFrame(dst)
	return endFrame(append(out, status), fs)
}

// execute runs one request, encoding the response frame directly into
// dst (a recycled buffer from framePool), and returns the grown slice.
func (s *Server) execute(tid int, dst, req []byte) []byte {
	out, fs := beginFrame(dst)
	op := req[0]
	switch op {
	case OpHello:
		// Version negotiation: answer with this build's wire version;
		// the pair speaks the min. A pre-versioning server would have
		// fallen through to the unknown-op Err frame below, which a v1
		// client reads as "v0".
		out = append(out, StatusOK)
		out = appendU32(out, ProtoVersion)
		return endFrame(out, fs)
	case OpGet:
		key, ok := getU64(req, 1)
		if !ok {
			return errFrame(out, fs, "short GET")
		}
		v, found, err := s.st.Get(tid, key)
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		if !found {
			return endFrame(append(out, StatusNotFound), fs)
		}
		out = append(out, StatusOK)
		out = appendU64(out, v)
		return endFrame(out, fs)
	case OpPut:
		key, ok1 := getU64(req, 1)
		val, ok2 := getU64(req, 9)
		if !ok1 || !ok2 {
			return errFrame(out, fs, "short PUT")
		}
		ins, err := s.st.Put(tid, key, val)
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		b := uint8(0)
		if ins {
			b = 1
		}
		return endFrame(append(out, StatusOK, b), fs)
	case OpDel:
		key, ok := getU64(req, 1)
		if !ok {
			return errFrame(out, fs, "short DEL")
		}
		found, err := s.st.Del(tid, key)
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		if !found {
			return endFrame(append(out, StatusNotFound), fs)
		}
		return endFrame(append(out, StatusOK), fs)
	case OpScan:
		from, ok1 := getU64(req, 1)
		limit, ok2 := getU32(req, 9)
		if !ok1 || !ok2 {
			return errFrame(out, fs, "short SCAN")
		}
		if limit > MaxScanLimit {
			limit = MaxScanLimit
		}
		pairs, err := s.st.Scan(tid, from, int(limit))
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		out = append(out, StatusOK)
		out = appendU32(out, uint32(len(pairs)/2))
		for _, w := range pairs {
			out = appendU64(out, w)
		}
		return endFrame(out, fs)
	case OpStats:
		js, err := json.Marshal(s.st.Stats())
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		out = append(out, StatusOK)
		return endFrame(append(out, js...), fs)
	case OpDrain:
		// Quiescent barrier: DrainAndCheck walks every tid's protection
		// slots (plain owner-mirrors, not atomics), so every other
		// connection must be gone first. Claiming the whole tid pool
		// does both jobs at once: each receive is the happens-before
		// edge with the handler that returned that tid (or with the
		// pool seeding, for never-used tids), and an empty pool makes
		// Serve refuse connections that arrive mid-drain. A client that
		// keeps its connection open makes this time out rather than
		// race.
		claimed := make([]int, 0, cap(s.tids))
		timeout := time.After(30 * time.Second)
		for len(claimed) < cap(s.tids)-1 {
			select {
			case t := <-s.tids:
				claimed = append(claimed, t)
			case <-timeout:
				for _, t := range claimed {
					s.tids <- t
				}
				return errFrame(out, fs, "drain: store busy (another connection still holds a reclamation tid)")
			}
		}
		js, err := json.Marshal(s.st.DrainAndCheck(tid))
		for _, t := range claimed {
			s.tids <- t
		}
		if err != nil {
			return errFrame(out, fs, err.Error())
		}
		out = append(out, StatusOK)
		return endFrame(append(out, js...), fs)
	default:
		return errFrame(out, fs, fmt.Sprintf("unknown op %d", op))
	}
}

// errFrame completes an in-progress frame as an error response. The
// payload hole is still empty on every error path (errors are detected
// before any payload bytes are appended).
func errFrame(out []byte, start int, msg string) []byte {
	out = append(out, StatusErr)
	out = append(out, msg...)
	return endFrame(out, start)
}

// ListenAndServe is the cmd/kvserver entry point: listen on addr and
// serve until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}
