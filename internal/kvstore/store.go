// Package kvstore is orcstore: a sharded in-memory key/value store
// whose shards are the repo's lock-free maps, generic over reclamation
// scheme. Each shard pairs a hash map (point ops: Get/Put/Del) with a
// skip list (ordered Scan); both indexes hold the same key→value pairs.
// The store exists to put every reclamation scheme under real traffic —
// long-lived connections, pipelined mixed workloads, range scans that
// pin epochs — rather than the closed-loop microbenchmark shape.
//
// Scheme wiring per mode:
//
//	orcgc        OrcMap + CRF skip list (fully automatic)
//	ebr, none    ManualMap(s) + HS skip list(s)
//	hp, ptb,     ManualMap(s) + HS skip list under EBR — the HS list's
//	ptp, he, ibr wait-free traversal walks through removed nodes with no
//	             per-pointer validation window, so pointer-based schemes
//	             cannot protect it (the paper's §2 second obstacle); the
//	             scan index falls back to epochs while the point index
//	             runs the requested scheme.
package kvstore

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/ds/skiplist"
	"repro/internal/obs"
	"repro/internal/reclaim"
)

// MinKey and MaxKey bound the valid key space; 0 and ^uint64(0) are the
// skip-list head/tail sentinels.
const (
	MinKey = uint64(1)
	MaxKey = ^uint64(0) - 1
)

// Config sizes a Store.
type Config struct {
	Scheme     string // "orcgc" or any reclaim scheme name/alias
	Shards     int    // power of two; default 8
	Buckets    int    // hash buckets per shard; default 1024
	MaxThreads int    // tid space shared by every index; default 64

	// Metrics, when non-nil, registers the store's gauges ("kv/live",
	// "kv/occupancy_bp", "kv/mag_hit_rate_bp", …) and threads per-index
	// labels ("shardN/map") into the reclamation layer so every manual
	// scheme instance reports under its own prefix. Nil (the default)
	// costs the data path nothing.
	Metrics *obs.Registry
}

func (c *Config) defaults() error {
	if c.Scheme == "" {
		c.Scheme = "orcgc"
	}
	if c.Scheme != "orcgc" {
		canon, ok := reclaim.Canonical(c.Scheme)
		if !ok || canon == "unsafe" {
			return fmt.Errorf("kvstore: unknown scheme %q", c.Scheme)
		}
		c.Scheme = canon
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards&(c.Shards-1) != 0 {
		return fmt.Errorf("kvstore: shards must be a power of two, got %d", c.Shards)
	}
	if c.Buckets <= 0 {
		c.Buckets = 1024
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	return nil
}

// pointIndex is the hash-map face of a shard.
type pointIndex interface {
	Put(tid int, key, val uint64) bool
	Get(tid int, key uint64) (uint64, bool)
	Remove(tid int, key uint64) bool
}

// scanIndex is the skip-list face of a shard.
type scanIndex interface {
	Put(tid int, key, val uint64) bool
	Remove(tid int, key uint64) bool
	Scan(tid int, from uint64, limit int, emit func(k, v uint64) bool) int
}

type shard struct {
	point pointIndex
	scan  scanIndex
}

// Store is the sharded KV store. All methods are safe for concurrent
// use; the tid identifies the calling thread to the reclamation layer
// and must be unique among concurrently operating callers.
type Store struct {
	cfg       Config
	shardMask uint64
	shards    []shard
	stats     func() []SideStats // per-index stats collectors
	flush     func(tid int)      // one best-effort drain round over every index
	baseline  int64              // total arena Live right after New
}

// Modes lists every scheme a Store can be built with.
func Modes() []string {
	return append([]string{"orcgc"}, reclaim.Names()...)
}

// New builds a Store. tid 0 is used for construction.
func New(cfg Config) (*Store, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg, shardMask: uint64(cfg.Shards - 1)}
	st.shards = make([]shard, cfg.Shards)

	var collect []func() SideStats
	var flushers []func(tid int)
	var arenas []func() arena.Stats
	for i := range st.shards {
		sh := &st.shards[i]
		label := fmt.Sprintf("shard%d", i)
		switch cfg.Scheme {
		case "orcgc":
			m := hashmap.NewOrc(0, cfg.Buckets, core.DomainConfig{MaxThreads: cfg.MaxThreads})
			s := skiplist.NewCRFOrc(0, core.DomainConfig{MaxThreads: cfg.MaxThreads})
			sh.point, sh.scan = m, s
			collect = append(collect,
				orcSide(label+"/map", "orcgc", m.Domain().Arena().Stats),
				orcSide(label+"/skip", "orcgc", s.Domain().Arena().Stats))
			arenas = append(arenas, m.Domain().Arena().Stats, s.Domain().Arena().Stats)
			flushers = append(flushers,
				func(int) { m.Domain().FlushAll() },
				func(int) { s.Domain().FlushAll() })
		default:
			m := hashmap.NewManual(cfg.Scheme, cfg.Buckets, reclaim.Options{
				MaxThreads: cfg.MaxThreads, Label: label + "/map", Metrics: cfg.Metrics})
			scanScheme := cfg.Scheme
			if scanScheme != "ebr" && scanScheme != "none" {
				scanScheme = "ebr" // §2 fallback, see package comment
			}
			s := skiplist.NewHSManual(scanScheme, reclaim.Options{
				MaxThreads: cfg.MaxThreads, Label: label + "/skip", Metrics: cfg.Metrics})
			sh.point, sh.scan = m, s
			collect = append(collect,
				manualSide(label+"/map", cfg.Scheme, m.Arena().Stats, m.Scheme(), cfg.MaxThreads),
				manualSide(label+"/skip", scanScheme, s.Arena().Stats, s.Scheme(), cfg.MaxThreads))
			arenas = append(arenas, m.Arena().Stats, s.Arena().Stats)
			flushers = append(flushers,
				func(tid int) { m.Scheme().ClearAll(tid); m.Scheme().Flush(tid) },
				func(tid int) { s.Scheme().ClearAll(tid); s.Scheme().Flush(tid) })
		}
	}
	st.stats = func() []SideStats {
		out := make([]SideStats, len(collect))
		for i, f := range collect {
			out[i] = f()
		}
		return out
	}
	st.flush = func(tid int) {
		for _, f := range flushers {
			f(tid)
		}
	}
	st.baseline = st.live()
	st.instrument(arenas)
	return st, nil
}

// arenaStats sums arena counters over every index — evaluated at scrape
// time only (each call walks the per-tid magazine counters).
func sumArenaStats(arenas []func() arena.Stats) arena.Stats {
	var sum arena.Stats
	for _, f := range arenas {
		a := f()
		sum.Allocs += a.Allocs
		sum.Frees += a.Frees
		sum.Live += a.Live
		sum.MaxLive += a.MaxLive
		sum.Faults += a.Faults
		sum.Slots += a.Slots
		sum.MagRefills += a.MagRefills
		sum.MagSpills += a.MagSpills
		sum.MagSteals += a.MagSteals
	}
	return sum
}

// instrument registers the store-wide gauge funcs. All figures are
// computed at scrape time from state the store maintains anyway; the
// data path is untouched, which is how the instrumented store stays
// within the <2% overhead budget.
func (st *Store) instrument(arenas []func() arena.Stats) {
	reg := st.cfg.Metrics
	if reg == nil {
		return
	}
	reg.GaugeFunc("kv/live", func() int64 { return st.live() })
	reg.GaugeFunc("kv/baseline", func() int64 { return st.baseline })
	reg.GaugeFunc("kv/retired_not_freed", func() int64 { return st.RetiredNotFreed() })
	reg.GaugeFunc("kv/retire_depth", func() int64 {
		var d int64
		for _, s := range st.stats() {
			d += int64(s.RetireDepth)
		}
		return d
	})
	reg.GaugeFunc("kv/arena/live", func() int64 { return sumArenaStats(arenas).Live })
	reg.GaugeFunc("kv/arena/slots", func() int64 { return int64(sumArenaStats(arenas).Slots) })
	// Ratios land as basis points (×10⁴) so they fit integer gauges.
	reg.GaugeFunc("kv/arena/occupancy_bp", func() int64 {
		return int64(sumArenaStats(arenas).Occupancy() * 1e4)
	})
	reg.GaugeFunc("kv/arena/mag_hit_rate_bp", func() int64 {
		return int64(sumArenaStats(arenas).MagHitRate() * 1e4)
	})
	reg.GaugeFunc("kv/arena/mag_refills", func() int64 { return int64(sumArenaStats(arenas).MagRefills) })
	reg.GaugeFunc("kv/arena/mag_steals", func() int64 { return int64(sumArenaStats(arenas).MagSteals) })
}

// Scheme reports the canonical scheme the store was built with.
func (st *Store) Scheme() string { return st.cfg.Scheme }

// MaxThreads reports the tid capacity.
func (st *Store) MaxThreads() int { return st.cfg.MaxThreads }

// shardOf spreads keys across shards by Fibonacci hashing so adjacent
// keys land on different shards (scans then merge across all shards).
func (st *Store) shardOf(key uint64) *shard {
	return &st.shards[(key*0x9e3779b97f4a7c15)>>32&st.shardMask]
}

func validKey(key uint64) bool { return key >= MinKey && key <= MaxKey }

// Put inserts or updates key; true when newly inserted. The two indexes
// are each linearizable but updated point-index-first, so a concurrent
// Scan may trail a Put/Del by one operation.
func (st *Store) Put(tid int, key, val uint64) (bool, error) {
	if !validKey(key) {
		return false, fmt.Errorf("kvstore: key %d out of range", key)
	}
	sh := st.shardOf(key)
	ins := sh.point.Put(tid, key, val)
	sh.scan.Put(tid, key, val)
	return ins, nil
}

// Get returns the value under key.
func (st *Store) Get(tid int, key uint64) (uint64, bool, error) {
	if !validKey(key) {
		return 0, false, fmt.Errorf("kvstore: key %d out of range", key)
	}
	v, ok := st.shardOf(key).point.Get(tid, key)
	return v, ok, nil
}

// Del removes key; true if it was present.
func (st *Store) Del(tid int, key uint64) (bool, error) {
	if !validKey(key) {
		return false, fmt.Errorf("kvstore: key %d out of range", key)
	}
	sh := st.shardOf(key)
	ok := sh.point.Remove(tid, key)
	sh.scan.Remove(tid, key)
	return ok, nil
}

// Scan emits up to limit pairs with key ≥ from in ascending key order,
// k-way-merging the per-shard ordered scans. Each shard scan runs once,
// bounded by limit, inside its own protection bracket.
func (st *Store) Scan(tid int, from uint64, limit int) ([]uint64, error) {
	if from < MinKey {
		from = MinKey
	}
	if limit <= 0 {
		return nil, nil
	}
	type cursor struct {
		pairs []uint64 // k,v interleaved, ascending
		pos   int
	}
	curs := make([]cursor, len(st.shards))
	for i := range st.shards {
		c := &curs[i]
		st.shards[i].scan.Scan(tid, from, limit, func(k, v uint64) bool {
			c.pairs = append(c.pairs, k, v)
			return true
		})
	}
	out := make([]uint64, 0, 2*limit)
	for len(out) < 2*limit {
		best := -1
		var bestKey uint64
		for i := range curs {
			c := &curs[i]
			if c.pos >= len(c.pairs) {
				continue
			}
			if best < 0 || c.pairs[c.pos] < bestKey {
				best, bestKey = i, c.pairs[c.pos]
			}
		}
		if best < 0 {
			break
		}
		c := &curs[best]
		out = append(out, c.pairs[c.pos], c.pairs[c.pos+1])
		c.pos += 2
	}
	return out, nil
}

// live sums arena Live over every index.
func (st *Store) live() int64 {
	var n int64
	for _, s := range st.stats() {
		n += s.Live
	}
	return n
}
