package kvstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDeadlineExceeded and ErrOverloaded are the client-side faces of
// the two v1 shed statuses. Both carry the server's contract that the
// op was refused *before* execution — a Put answered with either
// provably had no effect.
var (
	ErrDeadlineExceeded = errors.New("kvstore: deadline exceeded before execution")
	ErrOverloaded       = errors.New("kvstore: server overloaded, op shed")
)

// Client speaks the wire protocol over one connection. It supports
// pipelining through the split Send*/Recv* halves: issue any number of
// Send* calls, Flush, then Recv* once per outstanding request, in
// order. The single-sender/single-receiver contract: at most one
// goroutine may call Send*/Flush and at most one may call Recv* at a
// time (they may be different goroutines).
//
// The blocking helpers (Get/Put/Del/Scan/Stats/Drain/Negotiate/
// Cluster*) each do a full round trip and must not be mixed with
// outstanding pipelined requests — but they MAY be called from any
// number of goroutines concurrently with each other: a ticket queue
// (see startOp) serializes them in send order, and a cancelled ctx
// aborts only its own op's wait, never a neighbour's.
type Client struct {
	c    net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	opts Options

	wbuf []byte
	rbuf []byte

	// proto is the negotiated wire version + 1 (0 = never negotiated;
	// an un-negotiated connection conservatively speaks v0).
	proto atomic.Int32

	// Blocking-helper response FIFO. hmu guards send order, the ticket
	// list, and skips; consumed is touched only by the current head
	// reader, which is single-threaded by construction.
	hmu      sync.Mutex
	headT    *ticket
	tailT    *ticket
	skips    int // stale response frames owed before the next ticket enqueued
	consumed bool
}

// ticket is one blocking helper's place in the response FIFO. A ticket
// becomes the read-side owner when its ready channel closes; skip is
// how many stale frames (debt left by cancelled predecessors) it must
// discard before its own response. A ticket abandoned before reaching
// the head leaves its own frame as debt for the next live owner.
type ticket struct {
	skip      int
	ready     chan struct{}
	abandoned bool // guarded by Client.hmu
	next      *ticket
}

// Options configures a Client connection. The zero value reproduces the
// historical Dial behavior: no timeouts, no retries, 64 KiB buffers.
type Options struct {
	// DialTimeout bounds the TCP connect (0 = OS default).
	DialTimeout time.Duration
	// ReadTimeout bounds each response read; 0 disables. A pipelined
	// receiver under a stalled server fails with a timeout error
	// instead of hanging forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds each Flush; 0 disables.
	WriteTimeout time.Duration
	// Pipeline is the expected number of in-flight requests; it sizes
	// the connection buffers (~32 bytes per queued frame, min 4 KiB,
	// default 64 KiB).
	Pipeline int
	// DialRetries is how many extra connect attempts to make after a
	// failure (0 = fail on the first error).
	DialRetries int
	// DialBackoff is the wait before the first retry, doubling per
	// attempt (default 50ms when DialRetries > 0).
	DialBackoff time.Duration
	// DialRetryBudget caps the total wall-clock spent across dial
	// attempts and backoffs; once spent, DialWith returns the last dial
	// error without waiting out the remaining retries (default 15s when
	// DialRetries > 0; negative disables the cap).
	DialRetryBudget time.Duration
}

func (o *Options) bufSize() int {
	if o.Pipeline <= 0 {
		return 64 << 10
	}
	n := o.Pipeline * 32
	if n < 4<<10 {
		n = 4 << 10
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// Option adjusts one connection knob; pass any number to Dial. Each
// option corresponds to an Options field, so the set an operator tuned
// by struct literal translates one-for-one.
type Option func(*Options)

// WithDialTimeout bounds the TCP connect.
func WithDialTimeout(d time.Duration) Option {
	return func(o *Options) { o.DialTimeout = d }
}

// WithReadTimeout bounds each response read.
func WithReadTimeout(d time.Duration) Option {
	return func(o *Options) { o.ReadTimeout = d }
}

// WithWriteTimeout bounds each Flush.
func WithWriteTimeout(d time.Duration) Option {
	return func(o *Options) { o.WriteTimeout = d }
}

// WithPipelineDepth sizes the connection buffers for n in-flight
// requests.
func WithPipelineDepth(n int) Option {
	return func(o *Options) { o.Pipeline = n }
}

// WithRetries grants n extra connect attempts after a dial failure.
func WithRetries(n int) Option {
	return func(o *Options) { o.DialRetries = n }
}

// WithRetryBackoff sets the wait before the first retry (doubling per
// attempt, ±25% jitter).
func WithRetryBackoff(d time.Duration) Option {
	return func(o *Options) { o.DialBackoff = d }
}

// WithRetryBudget caps the total wall-clock spent across dial attempts
// and backoffs; negative disables the cap.
func WithRetryBudget(d time.Duration) Option {
	return func(o *Options) { o.DialRetryBudget = d }
}

// maxDialBackoff caps the dial retry backoff doubling: a generous retry
// budget must stretch into more attempts, not exponentially longer (and
// eventually overflowing) sleeps.
const maxDialBackoff = 2 * time.Second

// nextBackoff doubles a backoff wait up to maxDialBackoff; the cap also
// catches sign overflow from pathological doubling counts.
func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d <= 0 || d > maxDialBackoff {
		d = maxDialBackoff
	}
	return d
}

// jitterBackoff spreads one backoff wait over [0.75d, 1.25d), picking
// the point by u ∈ [0, 1). Pooled clients all notice a dead backend at
// the same instant; without jitter their doubling schedules stay
// synchronized and the restarted process takes the whole herd's
// reconnect burst at once.
func jitterBackoff(d time.Duration, u float64) time.Duration {
	return time.Duration(float64(d) * (0.75 + 0.5*u))
}

// Dial connects to a kvstore server. With no options it reproduces the
// historical behavior: no timeouts, no retries, 64 KiB buffers. Failed
// attempts (under WithRetries) back off exponentially with ±25% jitter
// (see jitterBackoff), but the loop never sleeps after the attempt it
// already knows to be the last — exhausted retries (by count or by
// WithRetryBudget) return promptly with the last dial error wrapped
// (errors.Unwrap recovers the net error).
func Dial(addr string, opts ...Option) (*Client, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return dial(addr, o)
}

// DialWith connects with an explicit Options struct.
//
// Deprecated: use Dial with functional options; DialWith(addr, o) is
// exactly Dial with one option per set field.
func DialWith(addr string, opts Options) (*Client, error) {
	return dial(addr, opts)
}

func dial(addr string, opts Options) (*Client, error) {
	backoff := opts.DialBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	budget := opts.DialRetryBudget
	if budget == 0 {
		budget = 15 * time.Second
	}
	start := time.Now()
	var c net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		c, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err == nil {
			break
		}
		if attempt >= opts.DialRetries {
			if attempt == 0 {
				return nil, err // plain first-attempt failure, nothing retried
			}
			return nil, fmt.Errorf("kvstore: dial %s: %d attempts over %v: %w",
				addr, attempt+1, time.Since(start).Round(time.Millisecond), err)
		}
		// The next attempt only runs after the backoff; if that would
		// blow the retry budget, this failure is final — return now
		// rather than sleeping through a wait whose attempt we would
		// not make. The budget check uses the jittered wait actually
		// about to be slept.
		wait := jitterBackoff(backoff, rand.Float64())
		if budget > 0 && time.Since(start)+wait > budget {
			return nil, fmt.Errorf("kvstore: dial %s: retry budget %v exhausted after %d attempts: %w",
				addr, budget, attempt+1, err)
		}
		time.Sleep(wait)
		backoff = nextBackoff(backoff)
	}
	size := opts.bufSize()
	// The read buffer must hold a full frame so aborted reads can use
	// Peek/Discard without ever consuming a partial frame.
	rsize := size
	if rsize < MaxFrame+4 {
		rsize = MaxFrame + 4
	}
	return &Client{
		c:    c,
		bw:   bufio.NewWriterSize(c, size),
		br:   bufio.NewReaderSize(c, rsize),
		opts: opts,
	}, nil
}

// Close tears the connection down.
func (cl *Client) Close() error { return cl.c.Close() }

// CloseWrite half-closes the sending side, telling the server the
// pipeline is complete; queued responses still arrive.
func (cl *Client) CloseWrite() error {
	cl.Flush()
	if tc, ok := cl.c.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}

func (cl *Client) send(payload []byte) {
	cl.wbuf = appendFrame(cl.wbuf[:0], payload)
	cl.bw.Write(cl.wbuf)
}

// SendGet queues a GET.
func (cl *Client) SendGet(key uint64) {
	p := []byte{OpGet}
	cl.send(appendU64(p, key))
}

// SendPut queues a PUT.
func (cl *Client) SendPut(key, val uint64) {
	p := []byte{OpPut}
	p = appendU64(p, key)
	cl.send(appendU64(p, val))
}

// SendDel queues a DEL.
func (cl *Client) SendDel(key uint64) {
	p := []byte{OpDel}
	cl.send(appendU64(p, key))
}

// SendScan queues a SCAN.
func (cl *Client) SendScan(from uint64, limit uint32) {
	p := []byte{OpScan}
	p = appendU64(p, from)
	cl.send(appendU32(p, limit))
}

// SendGetBudget queues a GET carrying an execution budget. A budget ≤ 0
// or an un-negotiated/v0 connection falls back to a plain GET — old
// servers would reject the flagged op byte.
func (cl *Client) SendGetBudget(key uint64, budget time.Duration) {
	if budget <= 0 || cl.proto.Load() < ProtoVersion+1 {
		cl.SendGet(key)
		return
	}
	p := AppendBudget(make([]byte, 0, 13), OpGet, budget)
	cl.send(appendU64(p, key))
}

// SendPutBudget queues a PUT carrying an execution budget.
func (cl *Client) SendPutBudget(key, val uint64, budget time.Duration) {
	if budget <= 0 || cl.proto.Load() < ProtoVersion+1 {
		cl.SendPut(key, val)
		return
	}
	p := AppendBudget(make([]byte, 0, 21), OpPut, budget)
	p = appendU64(p, key)
	cl.send(appendU64(p, val))
}

// SendDelBudget queues a DEL carrying an execution budget.
func (cl *Client) SendDelBudget(key uint64, budget time.Duration) {
	if budget <= 0 || cl.proto.Load() < ProtoVersion+1 {
		cl.SendDel(key)
		return
	}
	p := AppendBudget(make([]byte, 0, 13), OpDel, budget)
	cl.send(appendU64(p, key))
}

// SendScanBudget queues a SCAN carrying an execution budget.
func (cl *Client) SendScanBudget(from uint64, limit uint32, budget time.Duration) {
	if budget <= 0 || cl.proto.Load() < ProtoVersion+1 {
		cl.SendScan(from, limit)
		return
	}
	p := AppendBudget(make([]byte, 0, 17), OpScan, budget)
	p = appendU64(p, from)
	cl.send(appendU32(p, limit))
}

// SendStats queues a STATS.
func (cl *Client) SendStats() { cl.send([]byte{OpStats}) }

// SendRaw queues an already-encoded request payload (op byte plus
// fields). The cluster proxy forwards client payloads to backends with
// this, so a protocol extension never needs a matching proxy release.
func (cl *Client) SendRaw(payload []byte) { cl.send(payload) }

// RecvRaw reads one response payload, appending it (status byte
// included) to dst and returning the extended slice. Unlike the typed
// Recv* helpers it does not convert non-OK statuses into Go errors — a
// proxy forwards error frames to its own client verbatim.
func (cl *Client) RecvRaw(dst []byte) ([]byte, error) {
	p, err := cl.recvRaw()
	if err != nil {
		return dst, err
	}
	return append(dst, p...), nil
}

// RecvFrame reads one response frame and appends it *whole* — 4-byte
// length prefix included — to dst, returning the extended slice. This
// is the forwarding-proxy receive path: the captured frame can be
// written verbatim to another connection with no re-framing and no
// second copy (RecvRaw round-trips the payload through the client's
// internal buffer; RecvFrame copies straight out of the read buffer).
func (cl *Client) RecvFrame(dst []byte) ([]byte, error) {
	cl.consumed = false
	if cl.opts.ReadTimeout > 0 {
		cl.c.SetReadDeadline(time.Now().Add(cl.opts.ReadTimeout))
		defer cl.c.SetReadDeadline(time.Time{})
	}
	hdr, err := cl.br.Peek(4)
	if err != nil {
		return dst, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > MaxFrame {
		return dst, fmt.Errorf("kvstore: bad frame length %d", n)
	}
	full, err := cl.br.Peek(4 + int(n))
	if err != nil {
		return dst, err
	}
	dst = append(dst, full...)
	if _, err := cl.br.Discard(4 + int(n)); err != nil {
		return dst, err
	}
	cl.consumed = true
	return dst, nil
}

// WriteFrames writes a batch of already-encoded frames with one writev
// syscall, flushing any frames buffered via Send* first so wire order
// is preserved. The Buffers slice is consumed (advanced) by the write,
// per net.Buffers semantics; callers keep their own references to the
// underlying frames.
func (cl *Client) WriteFrames(bufs *net.Buffers) error {
	if cl.opts.WriteTimeout > 0 {
		cl.c.SetWriteDeadline(time.Now().Add(cl.opts.WriteTimeout))
		defer cl.c.SetWriteDeadline(time.Time{})
	}
	if cl.bw.Buffered() > 0 {
		if err := cl.bw.Flush(); err != nil {
			return err
		}
	}
	_, err := bufs.WriteTo(cl.c)
	return err
}

// SendDrain queues a DRAIN (quiescent use only).
func (cl *Client) SendDrain() { cl.send([]byte{OpDrain}) }

// Flush pushes all queued requests to the wire.
func (cl *Client) Flush() error {
	if cl.opts.WriteTimeout > 0 {
		cl.c.SetWriteDeadline(time.Now().Add(cl.opts.WriteTimeout))
		defer cl.c.SetWriteDeadline(time.Time{})
	}
	return cl.bw.Flush()
}

// recvRaw reads one response frame with no status mapping. It records
// whether a frame was actually consumed (cl.consumed) so a cancelled
// blocking op knows exactly how many stale frames it leaves behind, and
// reads through Peek/Discard so an aborted wait never strands the
// stream mid-frame.
func (cl *Client) recvRaw() ([]byte, error) {
	cl.consumed = false
	if cl.opts.ReadTimeout > 0 {
		cl.c.SetReadDeadline(time.Now().Add(cl.opts.ReadTimeout))
		defer cl.c.SetReadDeadline(time.Time{})
	}
	p, err := readFrameBuffered(cl.br, cl.rbuf)
	if err != nil {
		return nil, err
	}
	cl.rbuf = p
	cl.consumed = true
	return p, nil
}

// recv reads one response payload (status byte first), mapping the
// terminal statuses to errors.
func (cl *Client) recv() ([]byte, error) {
	p, err := cl.recvRaw()
	if err != nil {
		return nil, err
	}
	switch p[0] {
	case StatusErr:
		return nil, fmt.Errorf("kvstore: server error: %s", p[1:])
	case StatusDeadlineExceeded:
		return nil, ErrDeadlineExceeded
	case StatusOverloaded:
		return nil, ErrOverloaded
	}
	return p, nil
}

// RecvGet consumes a GET response.
func (cl *Client) RecvGet() (val uint64, found bool, err error) {
	p, err := cl.recv()
	if err != nil {
		return 0, false, err
	}
	if p[0] == StatusNotFound {
		return 0, false, nil
	}
	v, ok := getU64(p, 1)
	if !ok {
		return 0, false, fmt.Errorf("kvstore: short GET response")
	}
	return v, true, nil
}

// RecvPut consumes a PUT response; inserted is true for a fresh key.
func (cl *Client) RecvPut() (inserted bool, err error) {
	p, err := cl.recv()
	if err != nil {
		return false, err
	}
	return len(p) >= 2 && p[1] == 1, nil
}

// RecvDel consumes a DEL response; found is false for an absent key.
func (cl *Client) RecvDel() (found bool, err error) {
	p, err := cl.recv()
	if err != nil {
		return false, err
	}
	return p[0] == StatusOK, nil
}

// RecvScan consumes a SCAN response, appending interleaved k,v pairs to
// dst and returning the extended slice.
func (cl *Client) RecvScan(dst []uint64) ([]uint64, error) {
	p, err := cl.recv()
	if err != nil {
		return dst, err
	}
	n, ok := getU32(p, 1)
	if !ok {
		return dst, fmt.Errorf("kvstore: short SCAN response")
	}
	off := 5
	for i := uint32(0); i < 2*n; i++ {
		w, ok := getU64(p, off)
		if !ok {
			return dst, fmt.Errorf("kvstore: truncated SCAN response")
		}
		dst = append(dst, w)
		off += 8
	}
	return dst, nil
}

// RecvStats consumes a STATS response.
func (cl *Client) RecvStats() (Stats, error) {
	var st Stats
	p, err := cl.recv()
	if err != nil {
		return st, err
	}
	err = json.Unmarshal(p[1:], &st)
	return st, err
}

// RecvDrain consumes a DRAIN response.
func (cl *Client) RecvDrain() (DrainReport, error) {
	var rep DrainReport
	p, err := cl.recv()
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(p[1:], &rep)
	return rep, err
}

// arm points ctx cancellation at a blocked response read: on ctx.Done
// the read deadline is forced into the past, which wakes the reader
// with a timeout error, and the returned finish func maps that error
// back to ctx's cause. Cancellation abandons the wait, not the
// connection — the conn stays open and the caller decides whether to
// Close it. The deadline poison is connection-wide, which is why only
// the head of the ticket queue (the sole goroutine reading responses)
// ever arms a context: armed anywhere else, one op's cancellation
// would fail a concurrent, never-cancelled op mid-read. Peek/Discard
// framing (readFrameBuffered) guarantees the aborted read consumed
// nothing, so the stream stays aligned for the next owner.
func (cl *Client) arm(ctx context.Context) func(error) error {
	if ctx == nil || ctx.Done() == nil {
		return func(err error) error { return err }
	}
	quit := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			cl.c.SetReadDeadline(time.Now())
		case <-quit:
		}
	}()
	return func(err error) error {
		close(quit)
		<-exited
		// Clear the poison deadline so the connection stays usable; the
		// watcher has exited, so nothing can re-poison it afterwards.
		cl.c.SetReadDeadline(time.Time{})
		if err != nil && ctx.Err() != nil {
			return fmt.Errorf("kvstore: %w", context.Cause(ctx))
		}
		return err
	}
}

// startOp queues one blocking round trip: the request is sent and
// flushed under hmu — so wire order matches ticket order — and a
// ticket is appended to the response FIFO. A ticket enqueued into an
// empty queue becomes the owner immediately, inheriting any stale-frame
// debt cancelled predecessors left behind.
func (cl *Client) startOp(send func()) (*ticket, error) {
	cl.hmu.Lock()
	defer cl.hmu.Unlock()
	send()
	if err := cl.Flush(); err != nil {
		return nil, err
	}
	t := &ticket{ready: make(chan struct{})}
	if cl.tailT == nil {
		t.skip, cl.skips = cl.skips, 0
		cl.headT, cl.tailT = t, t
		close(t.ready)
	} else {
		cl.tailT.next = t
		cl.tailT = t
	}
	return t, nil
}

// awaitHead blocks until t owns the read side or ctx is cancelled. On
// cancellation it re-checks ownership under hmu: a ticket that became
// head in the race must proceed (its armed read settles the books);
// one still queued is marked abandoned and its frame becomes debt.
func (cl *Client) awaitHead(ctx context.Context, t *ticket) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil {
		<-t.ready
		return nil
	}
	select {
	case <-t.ready:
		return nil
	case <-done:
	}
	cl.hmu.Lock()
	defer cl.hmu.Unlock()
	select {
	case <-t.ready:
		return nil
	default:
		t.abandoned = true
		return fmt.Errorf("kvstore: %w", context.Cause(ctx))
	}
}

// finishOp runs t's turn at the head of the response FIFO: discard the
// stale frames cancelled predecessors owe, read this op's response with
// ctx armed (only the head ever arms — see arm), then hand ownership to
// the next live ticket along with whatever debt this turn left unpaid.
// recvFn must fully parse the response before returning: the underlying
// buffer is reused by the next owner.
func (cl *Client) finishOp(ctx context.Context, t *ticket, recvFn func() error) error {
	if err := cl.awaitHead(ctx, t); err != nil {
		return err
	}
	if ctx != nil && ctx.Err() != nil {
		// Became head while already cancelled: don't bother arming a
		// read that must abort; leave the debt and hand off.
		cl.finishTurn(t.skip + 1)
		return fmt.Errorf("kvstore: %w", context.Cause(ctx))
	}
	finish := cl.arm(ctx)
	var err error
	for t.skip > 0 && err == nil {
		if _, err = cl.recvRaw(); err == nil {
			t.skip--
		}
	}
	reached := false
	if err == nil {
		reached = true
		err = recvFn()
	}
	err = finish(err)
	owed := t.skip
	if !reached || !cl.consumed {
		owed++ // this op's own response is still on the wire
	}
	cl.finishTurn(owed)
	return err
}

// finishTurn pops the head ticket and promotes the next live one,
// folding in owed stale frames plus the debt of any tickets that were
// abandoned while queued.
func (cl *Client) finishTurn(owed int) {
	cl.hmu.Lock()
	defer cl.hmu.Unlock()
	t := cl.headT.next
	for t != nil && t.abandoned {
		owed += t.skip + 1
		t = t.next
	}
	cl.headT = t
	if t == nil {
		cl.tailT = nil
		cl.skips += owed
		return
	}
	t.skip += owed
	close(t.ready)
}

// budgetFor derives the wire budget from ctx: the remaining time to its
// deadline when the connection has negotiated v1, 0 (no budget field)
// otherwise. An already-expired ctx fails the op before any bytes go
// out.
func (cl *Client) budgetFor(ctx context.Context) (time.Duration, error) {
	if ctx == nil {
		return 0, nil
	}
	if ctx.Err() != nil {
		return 0, fmt.Errorf("kvstore: %w", context.Cause(ctx))
	}
	dl, ok := ctx.Deadline()
	if !ok || cl.proto.Load() < ProtoVersion+1 {
		return 0, nil
	}
	d := time.Until(dl)
	if d <= 0 {
		return 0, fmt.Errorf("kvstore: %w", context.DeadlineExceeded)
	}
	return d, nil
}

// Negotiate performs the HELLO round trip and caches the wire version
// shared with the server. A pre-versioning server answers HELLO like
// any unknown op — with an Err frame — which negotiates down to v0, so
// Negotiate never errors on version grounds. Until Negotiate succeeds
// the connection conservatively speaks v0 (no budget prefixes).
func (cl *Client) Negotiate(ctx context.Context) (int, error) {
	if v := cl.proto.Load(); v > 0 {
		return int(v) - 1, nil
	}
	t, err := cl.startOp(func() {
		p := []byte{OpHello}
		cl.send(appendU32(p, ProtoVersion))
	})
	if err != nil {
		return 0, err
	}
	ver := 0
	err = cl.finishOp(ctx, t, func() error {
		p, e := cl.recvRaw()
		if e != nil {
			return e
		}
		if p[0] == StatusOK {
			if v, ok := getU32(p, 1); ok {
				ver = int(v)
				if ver > ProtoVersion {
					ver = ProtoVersion
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	cl.proto.Store(int32(ver) + 1)
	return ver, nil
}

// Proto reports the negotiated wire version (0 before Negotiate).
func (cl *Client) Proto() int {
	if v := cl.proto.Load(); v > 0 {
		return int(v) - 1
	}
	return 0
}

// Get is a blocking round trip; cancelling ctx aborts this op's wait
// (never a concurrent op's) without closing the connection. On a v1
// connection a ctx deadline also rides the wire as an execution budget.
func (cl *Client) Get(ctx context.Context, key uint64) (uint64, bool, error) {
	budget, err := cl.budgetFor(ctx)
	if err != nil {
		return 0, false, err
	}
	t, err := cl.startOp(func() { cl.SendGetBudget(key, budget) })
	if err != nil {
		return 0, false, err
	}
	var v uint64
	var found bool
	err = cl.finishOp(ctx, t, func() (e error) {
		v, found, e = cl.RecvGet()
		return e
	})
	return v, found, err
}

// Put is a blocking round trip.
func (cl *Client) Put(ctx context.Context, key, val uint64) (bool, error) {
	budget, err := cl.budgetFor(ctx)
	if err != nil {
		return false, err
	}
	t, err := cl.startOp(func() { cl.SendPutBudget(key, val, budget) })
	if err != nil {
		return false, err
	}
	var ins bool
	err = cl.finishOp(ctx, t, func() (e error) {
		ins, e = cl.RecvPut()
		return e
	})
	return ins, err
}

// Del is a blocking round trip.
func (cl *Client) Del(ctx context.Context, key uint64) (bool, error) {
	budget, err := cl.budgetFor(ctx)
	if err != nil {
		return false, err
	}
	t, err := cl.startOp(func() { cl.SendDelBudget(key, budget) })
	if err != nil {
		return false, err
	}
	var found bool
	err = cl.finishOp(ctx, t, func() (e error) {
		found, e = cl.RecvDel()
		return e
	})
	return found, err
}

// Scan is a blocking round trip returning interleaved k,v pairs.
func (cl *Client) Scan(ctx context.Context, from uint64, limit uint32) ([]uint64, error) {
	budget, err := cl.budgetFor(ctx)
	if err != nil {
		return nil, err
	}
	t, err := cl.startOp(func() { cl.SendScanBudget(from, limit, budget) })
	if err != nil {
		return nil, err
	}
	var pairs []uint64
	err = cl.finishOp(ctx, t, func() (e error) {
		pairs, e = cl.RecvScan(nil)
		return e
	})
	return pairs, err
}

// Stats is a blocking round trip.
func (cl *Client) Stats(ctx context.Context) (Stats, error) {
	t, err := cl.startOp(cl.SendStats)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	err = cl.finishOp(ctx, t, func() (e error) {
		st, e = cl.RecvStats()
		return e
	})
	return st, err
}

// Drain is a blocking round trip (quiescent use only).
func (cl *Client) Drain(ctx context.Context) (DrainReport, error) {
	t, err := cl.startOp(cl.SendDrain)
	if err != nil {
		return DrainReport{}, err
	}
	var rep DrainReport
	err = cl.finishOp(ctx, t, func() (e error) {
		rep, e = cl.RecvDrain()
		return e
	})
	return rep, err
}

// clusterRPC does one blocking admin round trip against a kvproxy and
// unmarshals the JSON response into out (skipped when out is nil).
func (cl *Client) clusterRPC(ctx context.Context, op uint8, addr string, out any) error {
	budget, err := cl.budgetFor(ctx)
	if err != nil {
		return err
	}
	t, err := cl.startOp(func() {
		var p []byte
		if budget > 0 {
			p = AppendBudget(p, op, budget)
		} else {
			p = []byte{op}
		}
		cl.send(append(p, addr...))
	})
	if err != nil {
		return err
	}
	return cl.finishOp(ctx, t, func() error {
		resp, e := cl.recv()
		if e != nil {
			return e
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(resp[1:], out)
	})
}

// ClusterInfo fetches a kvproxy's topology snapshot. The result is the
// raw JSON (cluster.Info) so kvstore does not import the cluster
// package.
func (cl *Client) ClusterInfo(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	err := cl.clusterRPC(ctx, OpClusterInfo, "", &raw)
	return raw, err
}

// ClusterAdd asks a kvproxy to add a backend and hand its share of the
// keys over; the JSON response is a cluster.RebalanceReport.
func (cl *Client) ClusterAdd(ctx context.Context, addr string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := cl.clusterRPC(ctx, OpClusterAdd, addr, &raw)
	return raw, err
}

// ClusterDrain asks a kvproxy to hand a backend's keys off to the rest
// of the ring and then drop it from the topology.
func (cl *Client) ClusterDrain(ctx context.Context, addr string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := cl.clusterRPC(ctx, OpClusterDrain, addr, &raw)
	return raw, err
}

// ClusterRemove drops a backend from a kvproxy's topology with no
// handoff — the verb for a node that is already gone.
func (cl *Client) ClusterRemove(ctx context.Context, addr string) error {
	return cl.clusterRPC(ctx, OpClusterRemove, addr, nil)
}
