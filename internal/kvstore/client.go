package kvstore

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Client speaks the wire protocol over one connection. It supports
// pipelining through the split Send*/Recv* halves: issue any number of
// Send* calls, Flush, then Recv* once per outstanding request, in
// order. The single-sender/single-receiver contract: at most one
// goroutine may call Send*/Flush and at most one may call Recv* at a
// time (they may be different goroutines). The blocking helpers
// (Get/Put/Del/Scan/Stats/Drain) each do a full round trip and must not
// be mixed with outstanding pipelined requests; they take a Context
// whose cancellation aborts the response wait without closing the
// connection (see arm).
type Client struct {
	c    net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	opts Options

	wbuf []byte
	rbuf []byte
}

// Options configures a Client connection. The zero value reproduces the
// historical Dial behavior: no timeouts, no retries, 64 KiB buffers.
type Options struct {
	// DialTimeout bounds the TCP connect (0 = OS default).
	DialTimeout time.Duration
	// ReadTimeout bounds each response read; 0 disables. A pipelined
	// receiver under a stalled server fails with a timeout error
	// instead of hanging forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds each Flush; 0 disables.
	WriteTimeout time.Duration
	// Pipeline is the expected number of in-flight requests; it sizes
	// the connection buffers (~32 bytes per queued frame, min 4 KiB,
	// default 64 KiB).
	Pipeline int
	// DialRetries is how many extra connect attempts to make after a
	// failure (0 = fail on the first error).
	DialRetries int
	// DialBackoff is the wait before the first retry, doubling per
	// attempt (default 50ms when DialRetries > 0).
	DialBackoff time.Duration
	// DialRetryBudget caps the total wall-clock spent across dial
	// attempts and backoffs; once spent, DialWith returns the last dial
	// error without waiting out the remaining retries (default 15s when
	// DialRetries > 0; negative disables the cap).
	DialRetryBudget time.Duration
}

func (o *Options) bufSize() int {
	if o.Pipeline <= 0 {
		return 64 << 10
	}
	n := o.Pipeline * 32
	if n < 4<<10 {
		n = 4 << 10
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// Option adjusts one connection knob; pass any number to Dial. Each
// option corresponds to an Options field, so the set an operator tuned
// by struct literal translates one-for-one.
type Option func(*Options)

// WithDialTimeout bounds the TCP connect.
func WithDialTimeout(d time.Duration) Option {
	return func(o *Options) { o.DialTimeout = d }
}

// WithReadTimeout bounds each response read.
func WithReadTimeout(d time.Duration) Option {
	return func(o *Options) { o.ReadTimeout = d }
}

// WithWriteTimeout bounds each Flush.
func WithWriteTimeout(d time.Duration) Option {
	return func(o *Options) { o.WriteTimeout = d }
}

// WithPipelineDepth sizes the connection buffers for n in-flight
// requests.
func WithPipelineDepth(n int) Option {
	return func(o *Options) { o.Pipeline = n }
}

// WithRetries grants n extra connect attempts after a dial failure.
func WithRetries(n int) Option {
	return func(o *Options) { o.DialRetries = n }
}

// WithRetryBackoff sets the wait before the first retry (doubling per
// attempt, ±25% jitter).
func WithRetryBackoff(d time.Duration) Option {
	return func(o *Options) { o.DialBackoff = d }
}

// WithRetryBudget caps the total wall-clock spent across dial attempts
// and backoffs; negative disables the cap.
func WithRetryBudget(d time.Duration) Option {
	return func(o *Options) { o.DialRetryBudget = d }
}

// jitterBackoff spreads one backoff wait over [0.75d, 1.25d), picking
// the point by u ∈ [0, 1). Pooled clients all notice a dead backend at
// the same instant; without jitter their doubling schedules stay
// synchronized and the restarted process takes the whole herd's
// reconnect burst at once.
func jitterBackoff(d time.Duration, u float64) time.Duration {
	return time.Duration(float64(d) * (0.75 + 0.5*u))
}

// Dial connects to a kvstore server. With no options it reproduces the
// historical behavior: no timeouts, no retries, 64 KiB buffers. Failed
// attempts (under WithRetries) back off exponentially with ±25% jitter
// (see jitterBackoff), but the loop never sleeps after the attempt it
// already knows to be the last — exhausted retries (by count or by
// WithRetryBudget) return promptly with the last dial error wrapped
// (errors.Unwrap recovers the net error).
func Dial(addr string, opts ...Option) (*Client, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return dial(addr, o)
}

// DialWith connects with an explicit Options struct.
//
// Deprecated: use Dial with functional options; DialWith(addr, o) is
// exactly Dial with one option per set field.
func DialWith(addr string, opts Options) (*Client, error) {
	return dial(addr, opts)
}

func dial(addr string, opts Options) (*Client, error) {
	backoff := opts.DialBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	budget := opts.DialRetryBudget
	if budget == 0 {
		budget = 15 * time.Second
	}
	start := time.Now()
	var c net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		c, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err == nil {
			break
		}
		if attempt >= opts.DialRetries {
			if attempt == 0 {
				return nil, err // plain first-attempt failure, nothing retried
			}
			return nil, fmt.Errorf("kvstore: dial %s: %d attempts over %v: %w",
				addr, attempt+1, time.Since(start).Round(time.Millisecond), err)
		}
		// The next attempt only runs after the backoff; if that would
		// blow the retry budget, this failure is final — return now
		// rather than sleeping through a wait whose attempt we would
		// not make. The budget check uses the jittered wait actually
		// about to be slept.
		wait := jitterBackoff(backoff, rand.Float64())
		if budget > 0 && time.Since(start)+wait > budget {
			return nil, fmt.Errorf("kvstore: dial %s: retry budget %v exhausted after %d attempts: %w",
				addr, budget, attempt+1, err)
		}
		time.Sleep(wait)
		backoff *= 2
	}
	size := opts.bufSize()
	return &Client{
		c:    c,
		bw:   bufio.NewWriterSize(c, size),
		br:   bufio.NewReaderSize(c, size),
		opts: opts,
	}, nil
}

// Close tears the connection down.
func (cl *Client) Close() error { return cl.c.Close() }

// CloseWrite half-closes the sending side, telling the server the
// pipeline is complete; queued responses still arrive.
func (cl *Client) CloseWrite() error {
	cl.Flush()
	if tc, ok := cl.c.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}

func (cl *Client) send(payload []byte) {
	cl.wbuf = appendFrame(cl.wbuf[:0], payload)
	cl.bw.Write(cl.wbuf)
}

// SendGet queues a GET.
func (cl *Client) SendGet(key uint64) {
	p := []byte{OpGet}
	cl.send(appendU64(p, key))
}

// SendPut queues a PUT.
func (cl *Client) SendPut(key, val uint64) {
	p := []byte{OpPut}
	p = appendU64(p, key)
	cl.send(appendU64(p, val))
}

// SendDel queues a DEL.
func (cl *Client) SendDel(key uint64) {
	p := []byte{OpDel}
	cl.send(appendU64(p, key))
}

// SendScan queues a SCAN.
func (cl *Client) SendScan(from uint64, limit uint32) {
	p := []byte{OpScan}
	p = appendU64(p, from)
	cl.send(appendU32(p, limit))
}

// SendStats queues a STATS.
func (cl *Client) SendStats() { cl.send([]byte{OpStats}) }

// SendRaw queues an already-encoded request payload (op byte plus
// fields). The cluster proxy forwards client payloads to backends with
// this, so a protocol extension never needs a matching proxy release.
func (cl *Client) SendRaw(payload []byte) { cl.send(payload) }

// RecvRaw reads one response payload, appending it (status byte
// included) to dst and returning the extended slice. Unlike the typed
// Recv* helpers it does not convert StatusErr into a Go error — a proxy
// forwards error frames to its own client verbatim.
func (cl *Client) RecvRaw(dst []byte) ([]byte, error) {
	if cl.opts.ReadTimeout > 0 {
		cl.c.SetReadDeadline(time.Now().Add(cl.opts.ReadTimeout))
		defer cl.c.SetReadDeadline(time.Time{})
	}
	p, err := readFrame(cl.br, cl.rbuf)
	if err != nil {
		return dst, err
	}
	cl.rbuf = p
	return append(dst, p...), nil
}

// SendDrain queues a DRAIN (quiescent use only).
func (cl *Client) SendDrain() { cl.send([]byte{OpDrain}) }

// Flush pushes all queued requests to the wire.
func (cl *Client) Flush() error {
	if cl.opts.WriteTimeout > 0 {
		cl.c.SetWriteDeadline(time.Now().Add(cl.opts.WriteTimeout))
		defer cl.c.SetWriteDeadline(time.Time{})
	}
	return cl.bw.Flush()
}

// recv reads one response payload (status byte first).
func (cl *Client) recv() ([]byte, error) {
	if cl.opts.ReadTimeout > 0 {
		cl.c.SetReadDeadline(time.Now().Add(cl.opts.ReadTimeout))
		defer cl.c.SetReadDeadline(time.Time{})
	}
	p, err := readFrame(cl.br, cl.rbuf)
	if err != nil {
		return nil, err
	}
	cl.rbuf = p
	if p[0] == StatusErr {
		return nil, fmt.Errorf("kvstore: server error: %s", p[1:])
	}
	return p, nil
}

// RecvGet consumes a GET response.
func (cl *Client) RecvGet() (val uint64, found bool, err error) {
	p, err := cl.recv()
	if err != nil {
		return 0, false, err
	}
	if p[0] == StatusNotFound {
		return 0, false, nil
	}
	v, ok := getU64(p, 1)
	if !ok {
		return 0, false, fmt.Errorf("kvstore: short GET response")
	}
	return v, true, nil
}

// RecvPut consumes a PUT response; inserted is true for a fresh key.
func (cl *Client) RecvPut() (inserted bool, err error) {
	p, err := cl.recv()
	if err != nil {
		return false, err
	}
	return len(p) >= 2 && p[1] == 1, nil
}

// RecvDel consumes a DEL response; found is false for an absent key.
func (cl *Client) RecvDel() (found bool, err error) {
	p, err := cl.recv()
	if err != nil {
		return false, err
	}
	return p[0] == StatusOK, nil
}

// RecvScan consumes a SCAN response, appending interleaved k,v pairs to
// dst and returning the extended slice.
func (cl *Client) RecvScan(dst []uint64) ([]uint64, error) {
	p, err := cl.recv()
	if err != nil {
		return dst, err
	}
	n, ok := getU32(p, 1)
	if !ok {
		return dst, fmt.Errorf("kvstore: short SCAN response")
	}
	off := 5
	for i := uint32(0); i < 2*n; i++ {
		w, ok := getU64(p, off)
		if !ok {
			return dst, fmt.Errorf("kvstore: truncated SCAN response")
		}
		dst = append(dst, w)
		off += 8
	}
	return dst, nil
}

// RecvStats consumes a STATS response.
func (cl *Client) RecvStats() (Stats, error) {
	var st Stats
	p, err := cl.recv()
	if err != nil {
		return st, err
	}
	err = json.Unmarshal(p[1:], &st)
	return st, err
}

// RecvDrain consumes a DRAIN response.
func (cl *Client) RecvDrain() (DrainReport, error) {
	var rep DrainReport
	p, err := cl.recv()
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(p[1:], &rep)
	return rep, err
}

// arm points ctx cancellation at a blocked response read: on ctx.Done
// the read deadline is forced into the past, which wakes the reader
// with a timeout error, and the returned finish func maps that error
// back to ctx's cause. Cancellation abandons the wait, not the
// connection — the conn stays open and the caller decides whether to
// Close it. The response stream may be left mid-frame, though, so a
// cancelled client should only be reused when the caller knows the
// aborted response never started arriving.
func (cl *Client) arm(ctx context.Context) func(error) error {
	if ctx == nil || ctx.Done() == nil {
		return func(err error) error { return err }
	}
	quit := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			cl.c.SetReadDeadline(time.Now())
		case <-quit:
		}
	}()
	return func(err error) error {
		close(quit)
		<-exited
		// Clear the poison deadline so the connection stays usable; the
		// watcher has exited, so nothing can re-poison it afterwards.
		cl.c.SetReadDeadline(time.Time{})
		if err != nil && ctx.Err() != nil {
			return fmt.Errorf("kvstore: %w", context.Cause(ctx))
		}
		return err
	}
}

// Get is a blocking round trip; cancelling ctx aborts the response
// wait (see arm) without closing the connection.
func (cl *Client) Get(ctx context.Context, key uint64) (uint64, bool, error) {
	cl.SendGet(key)
	if err := cl.Flush(); err != nil {
		return 0, false, err
	}
	finish := cl.arm(ctx)
	v, ok, err := cl.RecvGet()
	return v, ok, finish(err)
}

// Put is a blocking round trip.
func (cl *Client) Put(ctx context.Context, key, val uint64) (bool, error) {
	cl.SendPut(key, val)
	if err := cl.Flush(); err != nil {
		return false, err
	}
	finish := cl.arm(ctx)
	ins, err := cl.RecvPut()
	return ins, finish(err)
}

// Del is a blocking round trip.
func (cl *Client) Del(ctx context.Context, key uint64) (bool, error) {
	cl.SendDel(key)
	if err := cl.Flush(); err != nil {
		return false, err
	}
	finish := cl.arm(ctx)
	found, err := cl.RecvDel()
	return found, finish(err)
}

// Scan is a blocking round trip returning interleaved k,v pairs.
func (cl *Client) Scan(ctx context.Context, from uint64, limit uint32) ([]uint64, error) {
	cl.SendScan(from, limit)
	if err := cl.Flush(); err != nil {
		return nil, err
	}
	finish := cl.arm(ctx)
	pairs, err := cl.RecvScan(nil)
	return pairs, finish(err)
}

// Stats is a blocking round trip.
func (cl *Client) Stats(ctx context.Context) (Stats, error) {
	cl.SendStats()
	if err := cl.Flush(); err != nil {
		return Stats{}, err
	}
	finish := cl.arm(ctx)
	st, err := cl.RecvStats()
	return st, finish(err)
}

// Drain is a blocking round trip (quiescent use only).
func (cl *Client) Drain(ctx context.Context) (DrainReport, error) {
	cl.SendDrain()
	if err := cl.Flush(); err != nil {
		return DrainReport{}, err
	}
	finish := cl.arm(ctx)
	rep, err := cl.RecvDrain()
	return rep, finish(err)
}

// clusterRPC does one blocking admin round trip against a kvproxy and
// unmarshals the JSON response into out (skipped when out is nil).
func (cl *Client) clusterRPC(ctx context.Context, op uint8, addr string, out any) error {
	p := append([]byte{op}, addr...)
	cl.send(p)
	if err := cl.Flush(); err != nil {
		return err
	}
	finish := cl.arm(ctx)
	resp, err := cl.recv()
	if err = finish(err); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(resp[1:], out)
}

// ClusterInfo fetches a kvproxy's topology snapshot. The result is the
// raw JSON (cluster.Info) so kvstore does not import the cluster
// package.
func (cl *Client) ClusterInfo(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	err := cl.clusterRPC(ctx, OpClusterInfo, "", &raw)
	return raw, err
}

// ClusterAdd asks a kvproxy to add a backend and hand its share of the
// keys over; the JSON response is a cluster.RebalanceReport.
func (cl *Client) ClusterAdd(ctx context.Context, addr string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := cl.clusterRPC(ctx, OpClusterAdd, addr, &raw)
	return raw, err
}

// ClusterDrain asks a kvproxy to hand a backend's keys off to the rest
// of the ring and then drop it from the topology.
func (cl *Client) ClusterDrain(ctx context.Context, addr string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := cl.clusterRPC(ctx, OpClusterDrain, addr, &raw)
	return raw, err
}

// ClusterRemove drops a backend from a kvproxy's topology with no
// handoff — the verb for a node that is already gone.
func (cl *Client) ClusterRemove(ctx context.Context, addr string) error {
	return cl.clusterRPC(ctx, OpClusterRemove, addr, nil)
}
