package kvstore

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The dial backoff doubling must stop at maxDialBackoff: a generous
// retry budget stretches into more attempts, not exponentially longer
// sleeps. Before the cap, 20 retries meant a final wait of 50ms<<19 ≈
// 7 hours.
func TestNextBackoffCap(t *testing.T) {
	d := 50 * time.Millisecond
	for i := 0; i < 40; i++ {
		d = nextBackoff(d)
		if d > maxDialBackoff {
			t.Fatalf("backoff %v exceeds cap %v after %d doublings", d, maxDialBackoff, i+1)
		}
		if d <= 0 {
			t.Fatalf("backoff overflowed to %v after %d doublings", d, i+1)
		}
	}
	if d != maxDialBackoff {
		t.Fatalf("backoff settled at %v, want cap %v", d, maxDialBackoff)
	}
	// The cap also swallows overflow from a pathological starting value.
	if got := nextBackoff(maxDialBackoff); got != maxDialBackoff {
		t.Fatalf("nextBackoff(cap) = %v, want %v", got, maxDialBackoff)
	}
	if got := nextBackoff(time.Duration(1) << 62); got != maxDialBackoff {
		t.Fatalf("nextBackoff(overflowing) = %v, want %v", got, maxDialBackoff)
	}
}

// Deterministic admission-policy unit tests: the struct is exercised
// directly, no wire or clock races involved beyond expired timers.
func TestAdmissionPolicy(t *testing.T) {
	var a admission
	a.init(1, 2)

	// Free slot + live deadline: admitted.
	if st := a.acquire(time.Now().Add(time.Minute)); st != StatusOK {
		t.Fatalf("acquire with free slot = %d", st)
	}
	a.release()

	// Free slot + already-expired deadline: the post-token re-check
	// refuses and returns the slot.
	if st := a.acquire(time.Now().Add(-time.Millisecond)); st != StatusDeadlineExceeded {
		t.Fatalf("acquire with expired deadline = %d, want %d", st, StatusDeadlineExceeded)
	}
	if got := a.expired.Load(); got != 1 {
		t.Fatalf("expired = %d after deadline refusal", got)
	}
	if len(a.slots) != 1 {
		t.Fatal("refused acquire leaked the slot")
	}

	// Slot taken + deadline: queue until the deadline fires.
	<-a.slots
	if st := a.acquire(time.Now().Add(5 * time.Millisecond)); st != StatusDeadlineExceeded {
		t.Fatalf("queued acquire past deadline = %d, want %d", st, StatusDeadlineExceeded)
	}
	if got := a.expired.Load(); got != 2 {
		t.Fatalf("expired = %d after queue-wait expiry", got)
	}

	// Slot taken + queue full: the next arrival is shed immediately.
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if st := a.acquire(time.Time{}); st == StatusOK {
				admitted.Add(1)
				a.release()
			}
		}()
	}
	for a.waiters.Load() != 2 {
		time.Sleep(time.Millisecond)
	}
	if st := a.acquire(time.Now().Add(time.Minute)); st != StatusOverloaded {
		t.Fatalf("acquire with full queue = %d, want %d", st, StatusOverloaded)
	}
	if got := a.shed.Load(); got != 1 {
		t.Fatalf("shed = %d after overload refusal", got)
	}
	a.release() // hand the held slot to the queued waiters
	wg.Wait()
	if admitted.Load() != 2 {
		t.Fatalf("only %d of 2 queued waiters were admitted", admitted.Load())
	}
	if len(a.slots) != 1 {
		t.Fatal("slot lost after queued waiters drained")
	}
}

// HELLO against a current server negotiates v1, the result is cached,
// and budgeted round trips work end to end afterwards.
func TestNegotiateV1(t *testing.T) {
	_, _, addr := startServer(t, "orcgc", 4)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if v := cl.Proto(); v != 0 {
		t.Fatalf("pre-negotiation Proto() = %d", v)
	}
	ver, err := cl.Negotiate(ctx)
	if err != nil || ver != ProtoVersion {
		t.Fatalf("Negotiate = %d, %v; want %d", ver, err, ProtoVersion)
	}
	if v := cl.Proto(); v != ProtoVersion {
		t.Fatalf("Proto() = %d after negotiation", v)
	}
	if ver, err = cl.Negotiate(ctx); err != nil || ver != ProtoVersion {
		t.Fatalf("cached Negotiate = %d, %v", ver, err)
	}
	// A generous ctx deadline rides the wire as a budget and the op
	// still succeeds.
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if ins, err := cl.Put(dctx, 7, 70); err != nil || !ins {
		t.Fatalf("budgeted Put = %v, %v", ins, err)
	}
	if v, ok, err := cl.Get(dctx, 7); err != nil || !ok || v != 70 {
		t.Fatalf("budgeted Get = %d, %v, %v", v, ok, err)
	}
}

// errServer answers every frame with a well-formed Err frame — the
// shape of a pre-versioning server that does not know HELLO.
func errServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				var buf []byte
				for {
					if _, err := readFrame(c, buf); err != nil {
						return
					}
					resp := appendFrame(nil, append([]byte{StatusErr}, "unknown op"...))
					if _, err := c.Write(resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// HELLO against a pre-versioning server (which answers it like any
// unknown op, with an Err frame) negotiates down to v0 without an
// error or a connection reset, and the client then never emits budget
// prefixes the old server would choke on.
func TestNegotiateV0Fallback(t *testing.T) {
	addr := errServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ver, err := cl.Negotiate(ctx)
	if err != nil || ver != 0 {
		t.Fatalf("Negotiate against v0 server = %d, %v; want 0, nil", ver, err)
	}
	if v := cl.Proto(); v != 0 {
		t.Fatalf("Proto() = %d after v0 fallback", v)
	}
	// A ctx deadline must NOT grow a budget prefix on a v0 connection:
	// the fake answers the op (proving the op byte was one it could
	// parse as a frame) and the client maps its Err normally.
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if b, err := cl.budgetFor(dctx); err != nil || b != 0 {
		t.Fatalf("budgetFor on v0 conn = %v, %v; want 0", b, err)
	}
	if _, _, err := cl.Get(dctx, 1); err == nil {
		t.Fatal("errServer Get returned no error")
	}
}

// A budgeted op that expires while queued behind a saturated inflight
// bound is answered StatusDeadlineExceeded instead of executing: the
// Put provably has no effect.
func TestBudgetExpiresInQueue(t *testing.T) {
	st, err := New(Config{Scheme: "orcgc", Shards: 4, Buckets: 256, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, WithMaxInflight(1), WithMaxQueue(4))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		<-done
	})
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Negotiate(ctx); err != nil {
		t.Fatal(err)
	}

	// Hold the only inflight slot so the op must queue until its budget
	// runs out. (Same-package test: the slot channel is the admission
	// token pool.)
	<-srv.adm.slots

	cl.SendPutBudget(99, 1, 30*time.Millisecond)
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RecvPut(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued-past-budget Put err = %v, want ErrDeadlineExceeded", err)
	}
	if got := srv.AdmissionStats().DeadlineExceeded; got != 1 {
		t.Fatalf("DeadlineExceeded = %d", got)
	}

	srv.adm.slots <- struct{}{} // restore the slot
	if _, ok, err := cl.Get(ctx, 99); err != nil || ok {
		t.Fatalf("expired Put left a value behind: found=%v err=%v", ok, err)
	}
}

// With the inflight slot held and the waiter queue full, the next
// arrival is shed with StatusOverloaded — fast-fail, not latency
// collapse — and the refusal is visible on both sides of the wire.
func TestShedWhenQueueFull(t *testing.T) {
	st, err := New(Config{Scheme: "orcgc", Shards: 4, Buckets: 256, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, WithMaxInflight(1), WithMaxQueue(2))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		<-done
	})
	dialT := func() *Client {
		cl, err := Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}

	<-srv.adm.slots // saturate: no op can execute until restored

	// Two connections park in the admission queue (no budget → they
	// wait for the slot indefinitely).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cl := dialT()
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			if _, err := cl.Put(ctx, k, k); err != nil {
				t.Errorf("queued Put(%d): %v", k, err)
			}
		}(uint64(i + 1))
	}
	for srv.adm.waiters.Load() != 2 {
		time.Sleep(time.Millisecond)
	}

	// The third arrival finds the queue full and is shed on the spot.
	cl3 := dialT()
	t0 := time.Now()
	_, err = cl3.Put(ctx, 3, 3)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue Put err = %v, want ErrOverloaded", err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("shed took %v — shedding must be immediate", el)
	}
	if got := srv.AdmissionStats().Shed; got != 1 {
		t.Fatalf("Shed = %d", got)
	}

	srv.adm.slots <- struct{}{} // let the queued writers through
	wg.Wait()
	if _, ok, _ := cl3.Get(ctx, 3); ok {
		t.Fatal("shed Put executed anyway")
	}
	for _, k := range []uint64{1, 2} {
		if v, ok, err := cl3.Get(ctx, k); err != nil || !ok || v != k {
			t.Fatalf("queued Put(%d) lost: %d, %v, %v", k, v, ok, err)
		}
	}
}

// The -race saturation test: 16 pipelining connections against a
// 2-slot/2-waiter server. Every server-side refusal must surface as
// exactly one client-side ErrOverloaded or ErrDeadlineExceeded — the
// ledgers match to the op — every accepted op completes, and the store
// drains back to its leak baseline afterwards.
func TestSaturationAccounting(t *testing.T) {
	const conns = 16
	const opsPer = 300
	const pipeline = 8
	st, err := New(Config{Scheme: "orcgc", Shards: 4, Buckets: 256, MaxThreads: conns + 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, WithMaxInflight(2), WithMaxQueue(2))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// The store executes an op in microseconds, so 16 connections alone
	// cannot reliably fill 2 slots + 2 waiters. Hold both slots for the
	// opening phase — the shape of two wedged ops — so the fleet
	// provably runs into queue-full sheds and queue-wait expiries, then
	// hand the slots back mid-run so the tail completes normally.
	<-srv.adm.slots
	<-srv.adm.slots
	go func() {
		time.Sleep(60 * time.Millisecond)
		srv.adm.slots <- struct{}{}
		srv.adm.slots <- struct{}{}
	}()

	var shed, expired, completed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			cl, err := Dial(ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			if _, err := cl.Negotiate(ctx); err != nil {
				t.Error(err)
				return
			}
			count := func(err error) bool {
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, ErrDeadlineExceeded):
					expired.Add(1)
				default:
					t.Errorf("worker %d: %v", seed, err)
					return false
				}
				return true
			}
			base := seed * 1000
			x := seed + 1
			sent := make([]uint8, 0, pipeline)
			drain := func() bool {
				if err := cl.Flush(); err != nil {
					t.Error(err)
					return false
				}
				for _, op := range sent {
					var err error
					switch op {
					case OpGet:
						_, _, err = cl.RecvGet()
					case OpPut:
						_, err = cl.RecvPut()
					case OpDel:
						_, err = cl.RecvDel()
					}
					if !count(err) {
						return false
					}
				}
				sent = sent[:0]
				return true
			}
			for i := 0; i < opsPer; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				k := base + x%256 + 1
				const budget = 20 * time.Millisecond
				switch x >> 61 & 3 {
				case 0:
					cl.SendGetBudget(k, budget)
					sent = append(sent, OpGet)
				case 1, 2:
					cl.SendPutBudget(k, x, budget)
					sent = append(sent, OpPut)
				default:
					cl.SendDelBudget(k, budget)
					sent = append(sent, OpDel)
				}
				if len(sent) == pipeline && !drain() {
					return
				}
			}
			drain()
		}(uint64(w))
	}
	wg.Wait()

	as := srv.AdmissionStats()
	if as.Shed != shed.Load() {
		t.Errorf("server shed_total %d != client-observed ErrOverloaded %d", as.Shed, shed.Load())
	}
	if as.DeadlineExceeded != expired.Load() {
		t.Errorf("server deadline_exceeded_total %d != client-observed ErrDeadlineExceeded %d",
			as.DeadlineExceeded, expired.Load())
	}
	if shed.Load() == 0 {
		t.Error("16 connections vs 2 held slots + 2 waiters produced zero sheds")
	}
	if total := completed.Load() + shed.Load() + expired.Load(); total != conns*opsPer {
		t.Errorf("ledger accounts for %d of %d ops", total, conns*opsPer)
	}
	if completed.Load() == 0 {
		t.Error("no op completed after the slots were restored — admission starved everything")
	}
	t.Logf("completed=%d shed=%d expired=%d", completed.Load(), shed.Load(), expired.Load())

	srv.Shutdown()
	<-done
	rep := st.DrainAndCheck(0)
	if !rep.LeakOK {
		t.Fatalf("leak check failed after saturation: %+v", rep)
	}
}

// slowEchoServer answers every GET in arrival order with value =
// key*10, pausing before each response — long enough for a test to
// cancel one op while another waits behind it.
func slowEchoServer(t *testing.T, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				var buf []byte
				for {
					p, err := readFrame(c, buf)
					if err != nil {
						return
					}
					buf = p
					key := binary.LittleEndian.Uint64(p[1:])
					time.Sleep(delay)
					resp := []byte{StatusOK}
					resp = appendU64(resp, key*10)
					if _, err := c.Write(appendFrame(nil, resp)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// Regression: cancelling one pipelined blocking op must not poison the
// shared connection for its concurrent neighbours. The old failure
// mode: the cancelled op's watcher forced the read deadline into the
// past on the SHARED conn, so a concurrent never-cancelled Get — the
// one actually reading at that moment, or the next to read — failed
// with i/o timeout. Now only the head of the ticket queue arms a
// context, an aborted read consumes nothing, and the successor
// discards the cancelled op's stale frame before its own.
func TestCancellationDoesNotPoisonNeighbour(t *testing.T) {
	addr := slowEchoServer(t, 120*time.Millisecond)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cctx, cancel := context.WithCancel(ctx)
	errs := make(chan error, 1)
	go func() {
		_, _, err := cl.Get(cctx, 1) // head: will be cancelled mid-wait
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Get(1) send and become head

	type res struct {
		v   uint64
		ok  bool
		err error
	}
	second := make(chan res, 1)
	go func() {
		v, ok, err := cl.Get(ctx, 2) // queued behind the doomed head
		second <- res{v, ok, err}
	}()
	time.Sleep(20 * time.Millisecond) // let Get(2) send and enqueue
	cancel()

	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Get err = %v, want context.Canceled in chain", err)
	}
	r := <-second
	if r.err != nil || !r.ok || r.v != 20 {
		t.Fatalf("neighbour Get poisoned by cancellation: v=%d ok=%v err=%v", r.v, r.ok, r.err)
	}

	// Third op on the same connection: the stream stayed aligned and
	// the deadline poison was cleared.
	if v, ok, err := cl.Get(ctx, 3); err != nil || !ok || v != 30 {
		t.Fatalf("post-cancellation Get = %d, %v, %v", v, ok, err)
	}
}
