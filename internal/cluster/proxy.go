package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/obs"
)

// Config sizes a Proxy. The zero value of every field gets a sane
// default from New.
type Config struct {
	Backends []string // initial backend addresses
	Replicas int      // copies per key, clamped to the backend count (default 2)
	VNodes   int      // ring vnode budget (default DefaultVNodes)
	Lanes    int      // pipelined connections per backend (default 4)
	Depth    int      // in-flight requests per lane (default 128)

	DialTimeout time.Duration // per backend connect (default 2s)
	IOTimeout   time.Duration // per backend response read (default 10s)

	Metrics *obs.Registry // optional; nil disables instrumentation
}

const (
	maxReplicas = 8
	stripeCount = 1024 // write-serialization stripes (power of two)
)

// topology is the immutable (ring, backends) pair the routing path
// reads with one atomic load — ids in the ring index backs directly.
type topology struct {
	ring  *Ring
	backs []*backend
}

// Proxy terminates the kvstore wire protocol on its client side and
// routes each op to a replica set of backends chosen by the ring.
//
// Consistency contract (what makes hedged reads and failover safe):
// an acked write is present on every read-eligible replica of its key.
// Writes fan out to all write-eligible replicas under a per-key stripe
// lock and ride key-pinned lanes, so replicas execute same-key writes
// in one global order; any healthy replica that fails a write is
// demoted out of the read set *before* the client sees the ack. Reads
// therefore trust whichever read-eligible replica answers first.
//
// Topology changes are two-phase: while a migration is in flight the
// proxy routes writes to the union of the current and next replica
// sets but keeps reading from the current ones, and only swaps the
// ring once the handoff has copied every key to its new home.
type Proxy struct {
	cfg Config
	reg *obs.Registry

	topo atomic.Pointer[topology]
	next atomic.Pointer[topology] // non-nil while a migration is in flight
	tmu  sync.Mutex               // serializes topology changes
	byAddr map[string]*backend

	locks [stripeCount]sync.Mutex

	ln     net.Listener
	cmu    sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	routed          atomic.Uint64 // client requests dispatched
	hedges          atomic.Uint64 // hedged reads fired
	hedgeWins       atomic.Uint64 // hedges that answered first (or rescued a failed primary)
	hedgesCancelled atomic.Uint64 // losing hedge calls abandoned (lane claim released early)
	readRetries     atomic.Uint64 // reads that failed over past the first replica
	degraded        atomic.Uint64 // writes acked with fewer than the full replica set
	keysMoved       atomic.Uint64 // keys copied by resync/handoff
	shedObserved    atomic.Uint64 // backend shed/deadline statuses seen on forwarded ops
	deadlineRejects atomic.Uint64 // ops the proxy itself refused on an expired budget
}

// New builds a proxy over the configured backends and starts their
// connection pools. Backends need not be reachable yet — each pool
// dials with jittered backoff until its server appears. The initial
// backends are assumed empty-and-consistent (a fresh cluster); nodes
// added or re-added later always resync before serving reads.
func New(cfg Config) *Proxy {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > maxReplicas {
		cfg.Replicas = maxReplicas
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 4
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 128
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 10 * time.Second
	}
	p := &Proxy{
		cfg:    cfg,
		reg:    cfg.Metrics,
		byAddr: map[string]*backend{},
		conns:  map[net.Conn]struct{}{},
	}
	backs := make([]*backend, len(cfg.Backends))
	for i, addr := range cfg.Backends {
		b := newBackend(p, addr, p.reg.Hist("cluster/backend/"+addr+"/rtt"))
		p.byAddr[addr] = b
		backs[i] = b
	}
	p.topo.Store(&topology{ring: BuildRing(cfg.Backends, cfg.VNodes), backs: backs})
	p.instrument()
	for _, b := range backs {
		p.registerBackendMetrics(b)
		b.start(true)
	}
	return p
}

func (p *Proxy) instrument() {
	reg := p.reg
	if reg == nil {
		return
	}
	reg.GaugeFunc("cluster/backends", func() int64 { return int64(len(p.topo.Load().backs)) })
	reg.GaugeFunc("cluster/ops/routed", func() int64 { return int64(p.routed.Load()) })
	reg.GaugeFunc("cluster/hedge/fired", func() int64 { return int64(p.hedges.Load()) })
	reg.GaugeFunc("cluster/hedge/wins", func() int64 { return int64(p.hedgeWins.Load()) })
	reg.GaugeFunc("cluster/hedge/cancelled", func() int64 { return int64(p.hedgesCancelled.Load()) })
	reg.GaugeFunc("cluster/sheds_observed", func() int64 { return int64(p.shedObserved.Load()) })
	reg.GaugeFunc("cluster/deadline_rejects", func() int64 { return int64(p.deadlineRejects.Load()) })
	reg.GaugeFunc("cluster/read/retries", func() int64 { return int64(p.readRetries.Load()) })
	reg.GaugeFunc("cluster/writes/degraded", func() int64 { return int64(p.degraded.Load()) })
	reg.GaugeFunc("cluster/rebalance/keys_moved", func() int64 { return int64(p.keysMoved.Load()) })
	reg.GaugeFunc("cluster/breaker/trips", func() int64 {
		p.tmu.Lock()
		defer p.tmu.Unlock()
		var n int64
		for _, b := range p.byAddr {
			n += int64(b.trips.Load())
		}
		return n
	})
}

func (p *Proxy) registerBackendMetrics(b *backend) {
	if p.reg == nil {
		return
	}
	prefix := "cluster/backend/" + b.addr
	p.reg.GaugeFunc(prefix+"/inflight", b.inflight.Load)
	p.reg.GaugeFunc(prefix+"/state", func() int64 { return int64(b.state.Load()) })
	p.reg.GaugeFunc(prefix+"/trips", func() int64 { return int64(b.trips.Load()) })
}

// WaitReady blocks until every backend in the current topology is
// healthy, or the timeout elapses.
func (p *Proxy) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		for _, b := range p.topo.Load().backs {
			if !b.readEligible() {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("cluster: backends not ready before timeout")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Serve accepts client connections until the listener closes.
func (p *Proxy) Serve(ln net.Listener) error {
	p.cmu.Lock()
	p.ln = ln
	p.cmu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			p.cmu.Lock()
			closed := p.closed
			p.cmu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.cmu.Lock()
		if p.closed {
			p.cmu.Unlock()
			c.Close()
			return nil
		}
		p.conns[c] = struct{}{}
		p.wg.Add(1)
		p.cmu.Unlock()
		go p.handle(c)
	}
}

// Shutdown stops accepting, unblocks every client reader, waits for
// in-flight requests to answer, and tears down the backend pools.
func (p *Proxy) Shutdown() {
	p.cmu.Lock()
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	for c := range p.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseRead()
		}
	}
	p.cmu.Unlock()
	p.wg.Wait()
	p.tmu.Lock()
	backs := make([]*backend, 0, len(p.byAddr))
	for _, b := range p.byAddr {
		backs = append(backs, b)
	}
	p.tmu.Unlock()
	for _, b := range backs {
		b.stopAndWait()
	}
}

// handle is the per-client-connection loop: the reader parses frames
// and starts each op inline (data ops run as pooled state machines —
// no goroutine per op); the writer streams the responses back strictly
// in request order (the protocol's pipelining contract), gathering a
// burst of completed responses into one writev.
func (p *Proxy) handle(c net.Conn) {
	defer p.wg.Done()
	defer func() {
		p.cmu.Lock()
		delete(p.conns, c)
		p.cmu.Unlock()
		c.Close()
	}()
	order := make(chan *call, 4*p.cfg.Depth)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go p.writeLoop(c, order, &wwg)
	br := bufio.NewReaderSize(c, 64<<10)
	var req []byte
	for {
		payload, err := kvstore.ReadFrame(br, req)
		if err != nil {
			break
		}
		req = payload
		order <- p.dispatch(payload)
	}
	close(order)
	wwg.Wait()
}

// writeLoop is the client-facing response writer. Responses arrive as
// complete pooled frames (the backend receive path captures the length
// prefix too), so the writer never re-encodes: it collects the head
// call's frame plus every already-completed successor — bounded by
// maxWriteBatch — into one net.Buffers writev. A successor pulled from
// order but not yet done flushes the ready batch first, then becomes
// the next head; the syscall count tracks bursts, not ops.
func (p *Proxy) writeLoop(c net.Conn, order <-chan *call, wwg *sync.WaitGroup) {
	defer wwg.Done()
	const maxWriteBatch = 64
	var (
		bufs   net.Buffers
		owners []*call
		broken bool
	)
	appendCa := func(ca *call) { // ca.done already consumed
		if ca.err != nil {
			eb := getBuf()
			*eb = append((*eb)[:0], 0, 0, 0, 0, kvstore.StatusErr)
			*eb = append(*eb, ca.err.Error()...)
			n := uint32(len(*eb) - 4)
			(*eb)[0], (*eb)[1], (*eb)[2], (*eb)[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
			ca.respBuf = eb
		}
		bufs = append(bufs, *ca.respBuf)
		owners = append(owners, ca)
	}
	flush := func() {
		if len(owners) == 0 {
			return
		}
		if !broken {
			b := bufs // WriteTo consumes its slice; keep ours for recycling
			if _, err := b.WriteTo(c); err != nil {
				broken = true // keep collecting so ops never leak
			}
		}
		for i, ca := range owners {
			putCall(ca)
			owners[i] = nil
			bufs[i] = nil
		}
		owners, bufs = owners[:0], bufs[:0]
	}
	for ca := range order {
		<-ca.done
		appendCa(ca)
	gather:
		for len(owners) < maxWriteBatch {
			var nca *call
			select {
			case nc, ok := <-order:
				if !ok {
					flush()
					return
				}
				nca = nc
			default:
				break gather
			}
			select {
			case <-nca.done:
			default:
				flush() // write what is ready before parking on the next head
				<-nca.done
			}
			appendCa(nca)
		}
		flush()
	}
	flush()
}

var (
	errShortReq = errors.New("cluster: short request")
	errBusy     = errors.New("cluster: topology change already in progress")
)

// dispatch hands one request payload to its handler and returns the
// call the writer will wait on. Data ops (GET/PUT/DEL) start a pooled
// state machine inline — zero goroutines, zero allocations on the
// steady-state path; completions are driven by the backend lane
// receivers and re-serialized in order by the writer. The remaining
// verbs (scan/stats/drain/admin) are scatter-gather control ops and
// keep their per-op goroutine. A budget prefix is stripped here and
// becomes a proxy-local deadline; handlers forward the remaining
// budget (minus each backend's observed RTT) and refuse ops whose
// budget is already spent before submitting anything — the
// not-executed contract holds through the proxy.
func (p *Proxy) dispatch(payload []byte) *call {
	ca := getCall()
	p.routed.Add(1)
	req, budget, okb := kvstore.SplitBudget(payload)
	if !okb {
		ca.fail(errShortReq)
		return ca
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	switch op := req[0]; op {
	case kvstore.OpGet:
		key, ok := kvstore.PayloadU64(req, 1)
		if !ok {
			ca.fail(errShortReq)
			return ca
		}
		p.startGet(req, key, deadline, ca)
	case kvstore.OpPut, kvstore.OpDel:
		key, ok := kvstore.PayloadU64(req, 1)
		if !ok {
			ca.fail(errShortReq)
			return ca
		}
		p.startWrite(req, key, deadline, ca)
	case kvstore.OpScan:
		from, ok1 := kvstore.PayloadU64(req, 1)
		limit, ok2 := kvstore.PayloadU32(req, 9)
		if !ok1 || !ok2 {
			ca.fail(errShortReq)
			return ca
		}
		go p.doScan(from, limit, deadline, ca)
	case kvstore.OpHello:
		// The proxy terminates negotiation itself: it can always strip
		// budgets, downgrading per backend as needed, so it answers v1
		// regardless of what the backends speak.
		buf := getBuf()
		*buf = append((*buf)[:0], 5, 0, 0, 0, kvstore.StatusOK)
		*buf = kvstore.AppendU32(*buf, kvstore.ProtoVersion)
		ca.complete(buf)
	case kvstore.OpStats:
		go p.doStats(ca)
	case kvstore.OpDrain:
		go p.doDrain(ca)
	case kvstore.OpClusterInfo:
		go p.doInfo(ca)
	case kvstore.OpClusterAdd, kvstore.OpClusterDrain, kvstore.OpClusterRemove:
		addr := string(req[1:])
		go p.doTopo(op, addr, deadline, ca)
	default:
		ca.fail(fmt.Errorf("cluster: unknown op %d", req[0]))
	}
	return ca
}

// completeStatus finishes a client call with a bare status frame — the
// not-executed statuses (StatusDeadlineExceeded / StatusOverloaded).
func completeStatus(ca *call, status uint8) {
	buf := getBuf()
	*buf = append((*buf)[:0], 1, 0, 0, 0, status)
	ca.complete(buf)
}

// isShedStatus reports whether a backend response is one of the two
// refused-without-executing statuses.
func isShedStatus(resp []byte) bool {
	return len(resp) > 0 && (resp[0] == kvstore.StatusOverloaded || resp[0] == kvstore.StatusDeadlineExceeded)
}

func (p *Proxy) replicas() int { return p.cfg.Replicas }

// transfer moves a backend response into the client-facing call
// (buffer ownership included) and completes it.
func transfer(src, dst *call) {
	dst.respBuf, dst.resp = src.respBuf, src.resp
	src.respBuf, src.resp = nil, nil
	putCall(src)
	dst.done <- struct{}{}
}

// readSet appends the read-eligible replicas of key, preference order.
func (p *Proxy) readSet(key uint64, dst []*backend) []*backend {
	t := p.topo.Load()
	var idbuf [maxReplicas]int32
	for _, id := range t.ring.Lookup(key, p.replicas(), idbuf[:0]) {
		if b := t.backs[id]; b.readEligible() {
			dst = append(dst, b)
		}
	}
	return dst
}

// writeSet appends the write-eligible replicas of key — the union of
// the current and (mid-migration) next topologies' replica sets, so a
// key being handed off keeps both its old and new homes fresh.
// healthy[i] records read-eligibility at submission time, which decides
// whether a failure must demote the replica before the ack.
func (p *Proxy) writeSet(key uint64, dst []*backend, healthy []bool) ([]*backend, []bool) {
	appendFrom := func(t *topology) {
		var idbuf [maxReplicas]int32
		for _, id := range t.ring.Lookup(key, p.replicas(), idbuf[:0]) {
			b := t.backs[id]
			dup := false
			for _, seen := range dst {
				if seen == b {
					dup = true
					break
				}
			}
			if dup || !b.writeEligible() {
				continue
			}
			dst = append(dst, b)
			healthy = append(healthy, b.readEligible())
		}
	}
	appendFrom(p.topo.Load())
	if nt := p.next.Load(); nt != nil {
		appendFrom(nt)
	}
	return dst, healthy
}

func scanReq(dst []byte, from uint64, limit uint32) []byte {
	dst = append(dst[:0], kvstore.OpScan)
	dst = kvstore.AppendU64(dst, from)
	return kvstore.AppendU32(dst, limit)
}

// doScan scatters the window to every read-eligible backend and merges.
// A backend that filled its window bounds how far the merge may trust
// the union (the horizon): keys past the smallest full-window last key
// might be missing from that backend's reply, so the merged response is
// cut there and the client's next page re-covers the rest.
func (p *Proxy) doScan(from uint64, limit uint32, deadline time.Time, ca *call) {
	// A scan's budget is checked proxy-side only; the backend fan-out
	// stays unbudgeted because a shed scan source would silently truncate
	// the merged window.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		p.deadlineRejects.Add(1)
		completeStatus(ca, kvstore.StatusDeadlineExceeded)
		return
	}
	if limit == 0 {
		buf := getBuf()
		*buf = append((*buf)[:0], 5, 0, 0, 0, kvstore.StatusOK)
		*buf = kvstore.AppendU32(*buf, 0)
		ca.complete(buf)
		return
	}
	if limit > kvstore.MaxScanLimit {
		limit = kvstore.MaxScanLimit
	}
	t := p.topo.Load()
	type sres struct {
		pairs []uint64
		ok    bool
	}
	var sources []*backend
	for _, b := range t.backs {
		if b.readEligible() {
			sources = append(sources, b)
		}
	}
	if len(sources) == 0 {
		ca.fail(errNoReplica)
		return
	}
	results := make([]sres, len(sources))
	var wg sync.WaitGroup
	var req [13]byte
	reqb := scanReq(req[:0], from, limit)
	for i, b := range sources {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			rc, err := b.roundTrip(reqb, false, 0)
			if err != nil {
				return
			}
			defer putCall(rc)
			if rc.resp[0] != kvstore.StatusOK {
				return
			}
			nPairs, ok := kvstore.PayloadU32(rc.resp, 1)
			if !ok {
				return
			}
			pairs := make([]uint64, 0, 2*nPairs)
			off := 5
			for j := uint32(0); j < 2*nPairs; j++ {
				w, ok := kvstore.PayloadU64(rc.resp, off)
				if !ok {
					return
				}
				pairs = append(pairs, w)
				off += 8
			}
			results[i] = sres{pairs: pairs, ok: true}
		}(i, b)
	}
	wg.Wait()
	anyOK := false
	horizon := uint64(1<<64 - 1)
	type kv struct{ k, v uint64 }
	var merged []kv
	for _, r := range results {
		if !r.ok {
			continue
		}
		anyOK = true
		for j := 0; j+1 < len(r.pairs); j += 2 {
			merged = append(merged, kv{r.pairs[j], r.pairs[j+1]})
		}
		if uint32(len(r.pairs)/2) == limit {
			if last := r.pairs[len(r.pairs)-2]; last < horizon {
				horizon = last
			}
		}
	}
	if !anyOK {
		ca.fail(errNoReplica)
		return
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].k < merged[b].k })
	buf := getBuf()
	// Frame layout: [len u32][status][count u32][pairs...]; the length
	// and count are back-filled once the merge settles.
	out := append((*buf)[:0], 0, 0, 0, 0, kvstore.StatusOK, 0, 0, 0, 0)
	count := uint32(0)
	var prev uint64
	for _, e := range merged {
		if e.k > horizon || count == limit {
			break
		}
		if count > 0 && e.k == prev {
			continue
		}
		out = kvstore.AppendU64(out, e.k)
		out = kvstore.AppendU64(out, e.v)
		prev = e.k
		count++
	}
	n := uint32(len(out) - 4)
	out[0], out[1], out[2], out[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	out[5] = byte(count)
	out[6] = byte(count >> 8)
	out[7] = byte(count >> 16)
	out[8] = byte(count >> 24)
	*buf = out
	ca.complete(buf)
}

// doStats aggregates every reachable backend's STATS into one snapshot.
// Per-side detail is omitted: the aggregate must fit one response frame
// regardless of cluster size (per-backend sides live on each backend's
// own /metrics endpoint).
func (p *Proxy) doStats(ca *call) {
	t := p.topo.Load()
	agg := kvstore.Stats{}
	var schemes []string
	reached := 0
	for _, b := range t.backs {
		rc, err := b.roundTrip([]byte{kvstore.OpStats}, false, 0)
		if err != nil {
			continue
		}
		var st kvstore.Stats
		ok := rc.resp[0] == kvstore.StatusOK
		if ok {
			ok = json.Unmarshal(rc.resp[1:], &st) == nil
		}
		putCall(rc)
		if !ok {
			continue
		}
		reached++
		agg.Shards += st.Shards
		agg.Live += st.Live
		agg.MaxLive += st.MaxLive
		agg.Baseline += st.Baseline
		schemes = append(schemes, st.Scheme)
	}
	if reached == 0 {
		ca.fail(errNoReplica)
		return
	}
	agg.Scheme = "cluster(" + strings.Join(schemes, "+") + ")"
	p.respondJSON(ca, agg)
}

// doDrain fans DRAIN to every backend (quiescent use only, like the
// single-node op) and merges the reports: sums of the accounting
// fields, logical AND of the leak verdicts.
// quiesce waits until the cluster has no internal writers: no topology
// change pending and no backend mid-resync. DRAIN inherits kvstore's
// quiescent-use-only contract, and the proxy's own rebalance traffic
// counts — fanning OpDrain while resync is still copying keys would
// race DrainAndCheck's FlushAll against live Puts on the target store.
func (p *Proxy) quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		busy := p.next.Load() != nil
		if !busy {
			// Anything short of Healthy either is resyncing or will
			// start a resync the moment it reconnects (and a down
			// backend can't answer OpDrain anyway) — wait it out.
			for _, b := range p.topo.Load().backs {
				if b.state.Load() != stateHealthy {
					busy = true
					break
				}
			}
		}
		if !busy {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("cluster: resync still in progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// doDrain inherits kvstore's quiescent-use-only DRAIN contract, and the
// servers enforce it: OpDrain claims a backend's whole tid pool, so it
// only proceeds once every other connection to that server — including
// this proxy's own pool lanes — is gone. The proxy therefore stops all
// pools, drains each backend over a fresh direct connection, then
// rebuilds the pools (bootstrap: the stores are all empty now, so no
// resync). Client ops that race the drain window fail fast; drain is an
// operator action, not a data-path verb.
func (p *Proxy) doDrain(ca *call) {
	if err := p.quiesce(time.Minute); err != nil {
		ca.fail(err)
		return
	}
	p.tmu.Lock()
	defer p.tmu.Unlock()
	if p.next.Load() != nil { // a topology change slipped in after quiesce
		ca.fail(errors.New("cluster: topology change in progress"))
		return
	}
	old := p.topo.Load()
	for _, b := range old.backs {
		b.stopAndWait()
	}

	agg := kvstore.DrainReport{LeakOK: true}
	var schemes []string
	drainErr := func() error {
		for _, b := range old.backs {
			cl, err := kvstore.Dial(b.addr,
				kvstore.WithDialTimeout(p.cfg.DialTimeout),
				kvstore.WithReadTimeout(time.Minute), // the barrier alone can take 30s
				kvstore.WithRetries(2),
			)
			if err != nil {
				return fmt.Errorf("cluster: drain %s: %w", b.addr, err)
			}
			rep, err := cl.Drain(context.Background())
			cl.Close()
			if err != nil {
				return fmt.Errorf("cluster: drain %s: %w", b.addr, err)
			}
			agg.Baseline += rep.Baseline
			agg.Live += rep.Live
			agg.RetiredNotFreed += rep.RetiredNotFreed
			agg.Deleted += rep.Deleted
			agg.LeakOK = agg.LeakOK && rep.LeakOK
			schemes = append(schemes, rep.Scheme)
		}
		return nil
	}()

	// Rebuild the pools on the same ring, carrying each backend's RTT
	// history so hedge delays stay calibrated.
	backs := make([]*backend, len(old.backs))
	for i, ob := range old.backs {
		nb := newBackend(p, ob.addr, ob.rtt)
		p.byAddr[ob.addr] = nb
		p.registerBackendMetrics(nb)
		backs[i] = nb
		nb.start(true)
	}
	p.topo.Store(&topology{ring: old.ring, backs: backs})

	if drainErr != nil {
		ca.fail(drainErr)
		return
	}
	agg.Scheme = "cluster(" + strings.Join(schemes, "+") + ")"
	p.respondJSON(ca, agg)
}

// NodeInfo is one backend's slice of the Info snapshot.
type NodeInfo struct {
	Addr         string `json:"addr"`
	Scheme       string `json:"scheme"`
	State        string `json:"state"`
	Inflight     int64  `json:"inflight"`
	BreakerTrips uint64 `json:"breaker_trips"`
	DialFailures int64  `json:"dial_failures"`
	HedgeDelayUs int64  `json:"hedge_delay_us"`
}

// Info is the CLUSTER_INFO response.
type Info struct {
	Replicas       int        `json:"replicas"`
	VNodes         int        `json:"vnodes"`
	Migrating      bool       `json:"migrating"`
	Nodes          []NodeInfo `json:"nodes"`
	RoutedOps       uint64     `json:"routed_ops"`
	HedgesFired     uint64     `json:"hedges_fired"`
	HedgeWins       uint64     `json:"hedge_wins"`
	HedgesCancelled uint64     `json:"hedges_cancelled"`
	ReadRetries     uint64     `json:"read_retries"`
	DegradedWrites  uint64     `json:"degraded_writes"`
	KeysMoved       uint64     `json:"keys_moved"`
	ShedsObserved   uint64     `json:"sheds_observed"`
	DeadlineRejects uint64     `json:"deadline_rejects"`
}

// Snapshot assembles the Info the CLUSTER_INFO verb serves; in-process
// embedders (the torture harness) read it directly.
func (p *Proxy) Snapshot() Info {
	p.tmu.Lock()
	backs := make([]*backend, 0, len(p.byAddr))
	for _, b := range p.byAddr {
		backs = append(backs, b)
	}
	p.tmu.Unlock()
	sort.Slice(backs, func(i, j int) bool { return backs[i].addr < backs[j].addr })
	info := Info{
		Replicas:       p.replicas(),
		VNodes:         p.cfg.VNodes,
		Migrating:      p.next.Load() != nil,
		RoutedOps:       p.routed.Load(),
		HedgesFired:     p.hedges.Load(),
		HedgeWins:       p.hedgeWins.Load(),
		HedgesCancelled: p.hedgesCancelled.Load(),
		ReadRetries:     p.readRetries.Load(),
		DegradedWrites:  p.degraded.Load(),
		KeysMoved:       p.keysMoved.Load(),
		ShedsObserved:   p.shedObserved.Load(),
		DeadlineRejects: p.deadlineRejects.Load(),
	}
	for _, b := range backs {
		info.Nodes = append(info.Nodes, NodeInfo{
			Addr:         b.addr,
			Scheme:       *b.scheme.Load(),
			State:        stateName(b.state.Load()),
			Inflight:     b.inflight.Load(),
			BreakerTrips: b.trips.Load(),
			DialFailures: b.dialErrs.Load(),
			HedgeDelayUs: b.hedgeDelay().Microseconds(),
		})
	}
	return info
}

func (p *Proxy) doInfo(ca *call) {
	p.respondJSON(ca, p.Snapshot())
}

func (p *Proxy) doTopo(op uint8, addr string, deadline time.Time, ca *call) {
	// A budget on an admin op becomes the rebalance context's deadline:
	// AddBackend/DrainBackend/RemoveBackend check it between keys, so a
	// caller-bounded drain stops copying when the caller gives up.
	ctx := context.Background()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	var rep RebalanceReport
	var err error
	switch op {
	case kvstore.OpClusterAdd:
		rep, err = p.AddBackend(ctx, addr)
	case kvstore.OpClusterDrain:
		rep, err = p.DrainBackend(ctx, addr)
	case kvstore.OpClusterRemove:
		rep, err = p.RemoveBackend(ctx, addr)
	}
	if err != nil {
		ca.fail(err)
		return
	}
	p.respondJSON(ca, rep)
}

func (p *Proxy) respondJSON(ca *call, v any) {
	js, err := json.Marshal(v)
	if err != nil {
		ca.fail(err)
		return
	}
	buf := getBuf()
	*buf = append((*buf)[:0], 0, 0, 0, 0, kvstore.StatusOK)
	*buf = append(*buf, js...)
	n := uint32(len(*buf) - 4)
	(*buf)[0], (*buf)[1], (*buf)[2], (*buf)[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	ca.complete(buf)
}
