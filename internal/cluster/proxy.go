package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/obs"
)

// Config sizes a Proxy. The zero value of every field gets a sane
// default from New.
type Config struct {
	Backends []string // initial backend addresses
	Replicas int      // copies per key, clamped to the backend count (default 2)
	VNodes   int      // ring vnode budget (default DefaultVNodes)
	Lanes    int      // pipelined connections per backend (default 4)
	Depth    int      // in-flight requests per lane (default 128)

	DialTimeout time.Duration // per backend connect (default 2s)
	IOTimeout   time.Duration // per backend response read (default 10s)

	Metrics *obs.Registry // optional; nil disables instrumentation
}

const (
	maxReplicas = 8
	stripeCount = 1024 // write-serialization stripes (power of two)
)

// topology is the immutable (ring, backends) pair the routing path
// reads with one atomic load — ids in the ring index backs directly.
type topology struct {
	ring  *Ring
	backs []*backend
}

// Proxy terminates the kvstore wire protocol on its client side and
// routes each op to a replica set of backends chosen by the ring.
//
// Consistency contract (what makes hedged reads and failover safe):
// an acked write is present on every read-eligible replica of its key.
// Writes fan out to all write-eligible replicas under a per-key stripe
// lock and ride key-pinned lanes, so replicas execute same-key writes
// in one global order; any healthy replica that fails a write is
// demoted out of the read set *before* the client sees the ack. Reads
// therefore trust whichever read-eligible replica answers first.
//
// Topology changes are two-phase: while a migration is in flight the
// proxy routes writes to the union of the current and next replica
// sets but keeps reading from the current ones, and only swaps the
// ring once the handoff has copied every key to its new home.
type Proxy struct {
	cfg Config
	reg *obs.Registry

	topo atomic.Pointer[topology]
	next atomic.Pointer[topology] // non-nil while a migration is in flight
	tmu  sync.Mutex               // serializes topology changes
	byAddr map[string]*backend

	locks [stripeCount]sync.Mutex

	ln     net.Listener
	cmu    sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	routed          atomic.Uint64 // client requests dispatched
	hedges          atomic.Uint64 // hedged reads fired
	hedgeWins       atomic.Uint64 // hedges that answered first (or rescued a failed primary)
	hedgesCancelled atomic.Uint64 // losing hedge calls abandoned (lane claim released early)
	readRetries     atomic.Uint64 // reads that failed over past the first replica
	degraded        atomic.Uint64 // writes acked with fewer than the full replica set
	keysMoved       atomic.Uint64 // keys copied by resync/handoff
	shedObserved    atomic.Uint64 // backend shed/deadline statuses seen on forwarded ops
	deadlineRejects atomic.Uint64 // ops the proxy itself refused on an expired budget
}

// New builds a proxy over the configured backends and starts their
// connection pools. Backends need not be reachable yet — each pool
// dials with jittered backoff until its server appears. The initial
// backends are assumed empty-and-consistent (a fresh cluster); nodes
// added or re-added later always resync before serving reads.
func New(cfg Config) *Proxy {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > maxReplicas {
		cfg.Replicas = maxReplicas
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 4
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 128
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 10 * time.Second
	}
	p := &Proxy{
		cfg:    cfg,
		reg:    cfg.Metrics,
		byAddr: map[string]*backend{},
		conns:  map[net.Conn]struct{}{},
	}
	backs := make([]*backend, len(cfg.Backends))
	for i, addr := range cfg.Backends {
		b := newBackend(p, addr, p.reg.Hist("cluster/backend/"+addr+"/rtt"))
		p.byAddr[addr] = b
		backs[i] = b
	}
	p.topo.Store(&topology{ring: BuildRing(cfg.Backends, cfg.VNodes), backs: backs})
	p.instrument()
	for _, b := range backs {
		p.registerBackendMetrics(b)
		b.start(true)
	}
	return p
}

func (p *Proxy) instrument() {
	reg := p.reg
	if reg == nil {
		return
	}
	reg.GaugeFunc("cluster/backends", func() int64 { return int64(len(p.topo.Load().backs)) })
	reg.GaugeFunc("cluster/ops/routed", func() int64 { return int64(p.routed.Load()) })
	reg.GaugeFunc("cluster/hedge/fired", func() int64 { return int64(p.hedges.Load()) })
	reg.GaugeFunc("cluster/hedge/wins", func() int64 { return int64(p.hedgeWins.Load()) })
	reg.GaugeFunc("cluster/hedge/cancelled", func() int64 { return int64(p.hedgesCancelled.Load()) })
	reg.GaugeFunc("cluster/sheds_observed", func() int64 { return int64(p.shedObserved.Load()) })
	reg.GaugeFunc("cluster/deadline_rejects", func() int64 { return int64(p.deadlineRejects.Load()) })
	reg.GaugeFunc("cluster/read/retries", func() int64 { return int64(p.readRetries.Load()) })
	reg.GaugeFunc("cluster/writes/degraded", func() int64 { return int64(p.degraded.Load()) })
	reg.GaugeFunc("cluster/rebalance/keys_moved", func() int64 { return int64(p.keysMoved.Load()) })
	reg.GaugeFunc("cluster/breaker/trips", func() int64 {
		p.tmu.Lock()
		defer p.tmu.Unlock()
		var n int64
		for _, b := range p.byAddr {
			n += int64(b.trips.Load())
		}
		return n
	})
}

func (p *Proxy) registerBackendMetrics(b *backend) {
	if p.reg == nil {
		return
	}
	prefix := "cluster/backend/" + b.addr
	p.reg.GaugeFunc(prefix+"/inflight", b.inflight.Load)
	p.reg.GaugeFunc(prefix+"/state", func() int64 { return int64(b.state.Load()) })
	p.reg.GaugeFunc(prefix+"/trips", func() int64 { return int64(b.trips.Load()) })
}

// WaitReady blocks until every backend in the current topology is
// healthy, or the timeout elapses.
func (p *Proxy) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		for _, b := range p.topo.Load().backs {
			if !b.readEligible() {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("cluster: backends not ready before timeout")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Serve accepts client connections until the listener closes.
func (p *Proxy) Serve(ln net.Listener) error {
	p.cmu.Lock()
	p.ln = ln
	p.cmu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			p.cmu.Lock()
			closed := p.closed
			p.cmu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.cmu.Lock()
		if p.closed {
			p.cmu.Unlock()
			c.Close()
			return nil
		}
		p.conns[c] = struct{}{}
		p.wg.Add(1)
		p.cmu.Unlock()
		go p.handle(c)
	}
}

// Shutdown stops accepting, unblocks every client reader, waits for
// in-flight requests to answer, and tears down the backend pools.
func (p *Proxy) Shutdown() {
	p.cmu.Lock()
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	for c := range p.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseRead()
		}
	}
	p.cmu.Unlock()
	p.wg.Wait()
	p.tmu.Lock()
	backs := make([]*backend, 0, len(p.byAddr))
	for _, b := range p.byAddr {
		backs = append(backs, b)
	}
	p.tmu.Unlock()
	for _, b := range backs {
		b.stopAndWait()
	}
}

// handle is the per-client-connection loop: the reader parses frames
// and dispatches each to a worker goroutine; the writer streams the
// responses back strictly in request order (the protocol's pipelining
// contract), flushing whenever the pipeline goes idle.
func (p *Proxy) handle(c net.Conn) {
	defer p.wg.Done()
	defer func() {
		p.cmu.Lock()
		delete(p.conns, c)
		p.cmu.Unlock()
		c.Close()
	}()
	order := make(chan *call, 4*p.cfg.Depth)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		bw := bufio.NewWriterSize(c, 64<<10)
		var scratch []byte
		broken := false
		for ca := range order {
			<-ca.done
			if !broken {
				if ca.err != nil {
					payload := append([]byte{kvstore.StatusErr}, ca.err.Error()...)
					scratch = kvstore.AppendFrame(scratch[:0], payload)
				} else {
					scratch = kvstore.AppendFrame(scratch[:0], ca.resp)
				}
				if _, err := bw.Write(scratch); err != nil {
					broken = true // keep collecting so dispatchers never leak
				}
			}
			putCall(ca)
			if !broken && len(order) == 0 {
				bw.Flush()
			}
		}
		bw.Flush()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	var req []byte
	for {
		payload, err := kvstore.ReadFrame(br, req)
		if err != nil {
			break
		}
		req = payload
		order <- p.dispatch(payload)
	}
	close(order)
	wwg.Wait()
}

var (
	errShortReq = errors.New("cluster: short request")
	errBusy     = errors.New("cluster: topology change already in progress")
)

// dispatch hands one request payload to its handler and returns the
// call the writer will wait on. Handlers run in their own goroutine so
// a slow replica never stalls requests queued behind it on the same
// client connection; the writer re-serializes completions in order.
// A budget prefix is stripped here and becomes a proxy-local deadline;
// handlers forward the remaining budget (minus each backend's observed
// RTT) and refuse ops whose budget is already spent before submitting
// anything — the not-executed contract holds through the proxy.
func (p *Proxy) dispatch(payload []byte) *call {
	ca := getCall()
	p.routed.Add(1)
	req, budget, okb := kvstore.SplitBudget(payload)
	if !okb {
		ca.fail(errShortReq)
		return ca
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	switch op := req[0]; op {
	case kvstore.OpGet:
		key, ok := kvstore.PayloadU64(req, 1)
		if !ok {
			ca.fail(errShortReq)
			return ca
		}
		creq := copyBuf(req)
		go p.doGet(creq, key, deadline, ca)
	case kvstore.OpPut, kvstore.OpDel:
		key, ok := kvstore.PayloadU64(req, 1)
		if !ok {
			ca.fail(errShortReq)
			return ca
		}
		creq := copyBuf(req)
		go p.doWrite(creq, key, deadline, ca)
	case kvstore.OpScan:
		from, ok1 := kvstore.PayloadU64(req, 1)
		limit, ok2 := kvstore.PayloadU32(req, 9)
		if !ok1 || !ok2 {
			ca.fail(errShortReq)
			return ca
		}
		go p.doScan(from, limit, deadline, ca)
	case kvstore.OpHello:
		// The proxy terminates negotiation itself: it can always strip
		// budgets, downgrading per backend as needed, so it answers v1
		// regardless of what the backends speak.
		buf := getBuf()
		*buf = kvstore.AppendU32(append((*buf)[:0], kvstore.StatusOK), kvstore.ProtoVersion)
		ca.complete(buf)
	case kvstore.OpStats:
		go p.doStats(ca)
	case kvstore.OpDrain:
		go p.doDrain(ca)
	case kvstore.OpClusterInfo:
		go p.doInfo(ca)
	case kvstore.OpClusterAdd, kvstore.OpClusterDrain, kvstore.OpClusterRemove:
		addr := string(req[1:])
		go p.doTopo(op, addr, deadline, ca)
	default:
		ca.fail(fmt.Errorf("cluster: unknown op %d", req[0]))
	}
	return ca
}

// completeStatus finishes a client call with a bare status frame — the
// not-executed statuses (StatusDeadlineExceeded / StatusOverloaded).
func completeStatus(ca *call, status uint8) {
	buf := getBuf()
	*buf = append((*buf)[:0], status)
	ca.complete(buf)
}

// isShedStatus reports whether a backend response is one of the two
// refused-without-executing statuses.
func isShedStatus(resp []byte) bool {
	return len(resp) > 0 && (resp[0] == kvstore.StatusOverloaded || resp[0] == kvstore.StatusDeadlineExceeded)
}

// fwd encodes the remaining budget for b into scratch and returns the
// frame to submit: req itself when no deadline applies (or b predates
// budgets), nil when the budget — minus b's observed RTT — is already
// spent, meaning the caller should fast-fail instead of doing dead
// work. The returned slice is only valid until scratch's next reuse;
// submit copies it to the wire before returning, so a stack scratch
// reused across sequential submissions is fine.
func fwd(b *backend, req []byte, deadline time.Time, scratch []byte) []byte {
	if deadline.IsZero() {
		return req
	}
	rem := time.Until(deadline)
	if b.proto.Load() < 1 {
		if rem <= 0 {
			return nil
		}
		return req // pre-budget backend: forward plain, proxy deadline still applied
	}
	rem -= b.netRTT()
	if rem <= 0 {
		return nil
	}
	scratch = kvstore.AppendBudget(scratch[:0], req[0], rem)
	return append(scratch, req[1:]...)
}

func (p *Proxy) replicas() int { return p.cfg.Replicas }

// transfer moves a backend response into the client-facing call
// (buffer ownership included) and completes it.
func transfer(src, dst *call) {
	dst.respBuf, dst.resp = src.respBuf, src.resp
	src.respBuf, src.resp = nil, nil
	putCall(src)
	dst.done <- struct{}{}
}

// readSet appends the read-eligible replicas of key, preference order.
func (p *Proxy) readSet(key uint64, dst []*backend) []*backend {
	t := p.topo.Load()
	var idbuf [maxReplicas]int32
	for _, id := range t.ring.Lookup(key, p.replicas(), idbuf[:0]) {
		if b := t.backs[id]; b.readEligible() {
			dst = append(dst, b)
		}
	}
	return dst
}

// doGet serves a GET with hedging, failover, and budget forwarding.
// The primary replica gets the request first; if it has not answered
// within the p99-derived hedge delay, the second replica gets a copy
// and the first *success* wins — the loser's call is abandoned, which
// releases its claim on its lane without parking a goroutine. A replica
// that answers with a shed status is healthy-but-loaded: it is not
// demoted, but the read fails over to the remaining candidates, and if
// every candidate refuses, the refusal passes through to the client.
func (p *Proxy) doGet(req *[]byte, key uint64, deadline time.Time, ca *call) {
	defer putBuf(req)
	var cbuf [maxReplicas]*backend
	cands := p.readSet(key, cbuf[:0])
	if len(cands) == 0 {
		ca.fail(errNoReplica)
		return
	}
	var lastShed uint8
	var sbuf [32]byte
	// settle inspects a completed backend call: 0 = answered the client,
	// 1 = transport failure (replica demoted), 2 = shed status (replica
	// healthy, try elsewhere).
	settle := func(bc *call, b *backend) int {
		if bc.err != nil {
			b.suspect()
			putCall(bc)
			return 1
		}
		if isShedStatus(bc.resp) {
			p.shedObserved.Add(1)
			lastShed = bc.resp[0]
			putCall(bc)
			return 2
		}
		transfer(bc, ca)
		return 0
	}
	giveUp := func() {
		if lastShed != 0 {
			completeStatus(ca, lastShed)
			return
		}
		ca.fail(errNoReplica)
	}
	finish := func(rest []*backend) {
		p.readRetries.Add(1)
		p.getSequential(rest, *req, deadline, lastShed, ca)
	}

	breq := fwd(cands[0], *req, deadline, sbuf[:0])
	if breq == nil {
		p.deadlineRejects.Add(1)
		completeStatus(ca, kvstore.StatusDeadlineExceeded)
		return
	}
	bc := getCall()
	if !cands[0].submitAny(breq, bc) {
		putCall(bc)
		cands[0].suspect()
		finish(cands[1:])
		return
	}
	if len(cands) == 1 {
		<-bc.done
		if settle(bc, cands[0]) != 0 {
			giveUp()
		}
		return
	}
	timer := time.NewTimer(cands[0].hedgeDelay())
	select {
	case <-bc.done:
		timer.Stop()
		if settle(bc, cands[0]) != 0 {
			finish(cands[1:])
		}
		return
	case <-timer.C:
	}
	p.hedges.Add(1)
	var hc *call
	if hreq := fwd(cands[1], *req, deadline, sbuf[:0]); hreq != nil {
		hc = getCall()
		if !cands[1].submitAny(hreq, hc) {
			putCall(hc)
			hc = nil
		}
	}
	if hc == nil {
		// No budget left for a hedge, or no live lane: wait the primary out.
		<-bc.done
		if settle(bc, cands[0]) != 0 {
			finish(cands[2:])
		}
		return
	}
	select {
	case <-bc.done:
		switch settle(bc, cands[0]) {
		case 0:
			hc.abandon() // loser's lane claim released; completer recycles
			p.hedgesCancelled.Add(1)
			return
		}
		<-hc.done
		if settle(hc, cands[1]) == 0 {
			p.hedgeWins.Add(1)
			return
		}
		finish(cands[2:])
	case <-hc.done:
		if settle(hc, cands[1]) == 0 {
			p.hedgeWins.Add(1)
			bc.abandon()
			p.hedgesCancelled.Add(1)
			return
		}
		<-bc.done
		if settle(bc, cands[0]) == 0 {
			return
		}
		finish(cands[2:])
	}
}

func (p *Proxy) getSequential(cands []*backend, req []byte, deadline time.Time, lastShed uint8, ca *call) {
	var sbuf [32]byte
	for _, b := range cands {
		breq := fwd(b, req, deadline, sbuf[:0])
		if breq == nil {
			// Budget ran out mid-failover: the op was never submitted
			// anywhere that executed it.
			lastShed = kvstore.StatusDeadlineExceeded
			p.deadlineRejects.Add(1)
			break
		}
		rc, err := b.roundTrip(breq, false, 0)
		if err != nil {
			b.suspect()
			continue
		}
		if isShedStatus(rc.resp) {
			p.shedObserved.Add(1)
			lastShed = rc.resp[0]
			putCall(rc)
			continue
		}
		transfer(rc, ca)
		return
	}
	if lastShed != 0 {
		completeStatus(ca, lastShed)
		return
	}
	ca.fail(errNoReplica)
}

// writeSet appends the write-eligible replicas of key — the union of
// the current and (mid-migration) next topologies' replica sets, so a
// key being handed off keeps both its old and new homes fresh.
// healthy[i] records read-eligibility at submission time, which decides
// whether a failure must demote the replica before the ack.
func (p *Proxy) writeSet(key uint64, dst []*backend, healthy []bool) ([]*backend, []bool) {
	appendFrom := func(t *topology) {
		var idbuf [maxReplicas]int32
		for _, id := range t.ring.Lookup(key, p.replicas(), idbuf[:0]) {
			b := t.backs[id]
			dup := false
			for _, seen := range dst {
				if seen == b {
					dup = true
					break
				}
			}
			if dup || !b.writeEligible() {
				continue
			}
			dst = append(dst, b)
			healthy = append(healthy, b.readEligible())
		}
	}
	appendFrom(p.topo.Load())
	if nt := p.next.Load(); nt != nil {
		appendFrom(nt)
	}
	return dst, healthy
}

// doWrite serves PUT and DEL. All submissions happen under the key's
// stripe lock onto key-pinned lanes, giving every replica the same
// same-key execution order; acks wait for every replica, demote the
// failures, and succeed if at least one replica holds the write.
//
// Budgets gate writes only *before* submission: an expired budget is
// refused here, with nothing on any wire, so StatusDeadlineExceeded
// keeps meaning "no replica executed this". The forwarded frames are
// unbudgeted — once a write is in flight to a replica set, a per-replica
// deadline expiry would mean divergence, exactly what the ack invariant
// forbids. A replica may still shed an unbudgeted write under admission
// pressure (StatusOverloaded); that replica missed the write while
// others may have applied it, so it is demoted before the ack like any
// failed replica. Only when *no* replica applied it does the refusal
// pass through to the client with no demotions — the cluster-wide
// not-executed case.
func (p *Proxy) doWrite(req *[]byte, key uint64, deadline time.Time, ca *call) {
	defer putBuf(req)
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		p.deadlineRejects.Add(1)
		completeStatus(ca, kvstore.StatusDeadlineExceeded)
		return
	}
	var bbuf [2 * maxReplicas]*backend
	var hbuf [2 * maxReplicas]bool
	var bcs [2 * maxReplicas]*call
	var bks [2 * maxReplicas]*backend
	var healthy [2 * maxReplicas]bool
	var sheds [2 * maxReplicas]bool
	n := 0

	stripe := &p.locks[key&(stripeCount-1)]
	stripe.Lock()
	set, elig := p.writeSet(key, bbuf[:0], hbuf[:0])
	for i, b := range set {
		bc := getCall()
		if b.submitKeyed(key, *req, bc) {
			bcs[n], bks[n], healthy[n] = bc, b, elig[i]
			n++
		} else {
			putCall(bc)
			if elig[i] {
				b.suspect()
			}
		}
	}
	stripe.Unlock()
	if n == 0 {
		ca.fail(errNoReplica)
		return
	}
	okCount, shedCount := 0, 0
	for i := 0; i < n; i++ {
		<-bcs[i].done
		if bcs[i].err != nil {
			// Demote before the client can see the ack: a replica that
			// missed this write must not serve the next read.
			if healthy[i] {
				bks[i].suspect()
			}
			putCall(bcs[i])
			bcs[i] = nil
			continue
		}
		if isShedStatus(bcs[i].resp) {
			p.shedObserved.Add(1)
			sheds[i] = true
			shedCount++
			continue
		}
		okCount++
	}
	if okCount == 0 {
		for i := 0; i < n; i++ {
			if bcs[i] != nil {
				putCall(bcs[i])
			}
		}
		if shedCount > 0 {
			// Every live replica refused before executing: the write
			// happened nowhere, so nobody diverged and nobody is demoted.
			completeStatus(ca, kvstore.StatusOverloaded)
			return
		}
		ca.fail(errNoReplica)
		return
	}
	// At least one replica holds the write; a replica that shed it
	// missed it and must leave the read set before the ack, exactly
	// like a transport failure.
	for i := 0; i < n; i++ {
		if sheds[i] {
			if healthy[i] {
				bks[i].suspect()
			}
			putCall(bcs[i])
			bcs[i] = nil
		}
	}
	if okCount < n {
		p.degraded.Add(1)
	}
	// Response: the first surviving replica in ring order answers; for
	// DEL prefer any replica that found the key (a replica added to the
	// set mid-recovery may legitimately miss it).
	op := (*req)[0]
	var winner *call
	for i := 0; i < n; i++ {
		c := bcs[i]
		if c == nil {
			continue
		}
		if winner == nil {
			winner = c
			continue
		}
		if op == kvstore.OpDel && winner.resp[0] != kvstore.StatusOK && c.resp[0] == kvstore.StatusOK {
			putCall(winner)
			winner = c
			continue
		}
		putCall(c)
	}
	transfer(winner, ca)
}

func scanReq(dst []byte, from uint64, limit uint32) []byte {
	dst = append(dst[:0], kvstore.OpScan)
	dst = kvstore.AppendU64(dst, from)
	return kvstore.AppendU32(dst, limit)
}

// doScan scatters the window to every read-eligible backend and merges.
// A backend that filled its window bounds how far the merge may trust
// the union (the horizon): keys past the smallest full-window last key
// might be missing from that backend's reply, so the merged response is
// cut there and the client's next page re-covers the rest.
func (p *Proxy) doScan(from uint64, limit uint32, deadline time.Time, ca *call) {
	// A scan's budget is checked proxy-side only; the backend fan-out
	// stays unbudgeted because a shed scan source would silently truncate
	// the merged window.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		p.deadlineRejects.Add(1)
		completeStatus(ca, kvstore.StatusDeadlineExceeded)
		return
	}
	if limit == 0 {
		buf := getBuf()
		*buf = kvstore.AppendU32(append((*buf)[:0], kvstore.StatusOK), 0)
		ca.complete(buf)
		return
	}
	if limit > kvstore.MaxScanLimit {
		limit = kvstore.MaxScanLimit
	}
	t := p.topo.Load()
	type sres struct {
		pairs []uint64
		ok    bool
	}
	var sources []*backend
	for _, b := range t.backs {
		if b.readEligible() {
			sources = append(sources, b)
		}
	}
	if len(sources) == 0 {
		ca.fail(errNoReplica)
		return
	}
	results := make([]sres, len(sources))
	var wg sync.WaitGroup
	var req [13]byte
	reqb := scanReq(req[:0], from, limit)
	for i, b := range sources {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			rc, err := b.roundTrip(reqb, false, 0)
			if err != nil {
				return
			}
			defer putCall(rc)
			if rc.resp[0] != kvstore.StatusOK {
				return
			}
			nPairs, ok := kvstore.PayloadU32(rc.resp, 1)
			if !ok {
				return
			}
			pairs := make([]uint64, 0, 2*nPairs)
			off := 5
			for j := uint32(0); j < 2*nPairs; j++ {
				w, ok := kvstore.PayloadU64(rc.resp, off)
				if !ok {
					return
				}
				pairs = append(pairs, w)
				off += 8
			}
			results[i] = sres{pairs: pairs, ok: true}
		}(i, b)
	}
	wg.Wait()
	anyOK := false
	horizon := uint64(1<<64 - 1)
	type kv struct{ k, v uint64 }
	var merged []kv
	for _, r := range results {
		if !r.ok {
			continue
		}
		anyOK = true
		for j := 0; j+1 < len(r.pairs); j += 2 {
			merged = append(merged, kv{r.pairs[j], r.pairs[j+1]})
		}
		if uint32(len(r.pairs)/2) == limit {
			if last := r.pairs[len(r.pairs)-2]; last < horizon {
				horizon = last
			}
		}
	}
	if !anyOK {
		ca.fail(errNoReplica)
		return
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].k < merged[b].k })
	buf := getBuf()
	out := append((*buf)[:0], kvstore.StatusOK, 0, 0, 0, 0)
	count := uint32(0)
	var prev uint64
	for _, e := range merged {
		if e.k > horizon || count == limit {
			break
		}
		if count > 0 && e.k == prev {
			continue
		}
		out = kvstore.AppendU64(out, e.k)
		out = kvstore.AppendU64(out, e.v)
		prev = e.k
		count++
	}
	out[1] = byte(count)
	out[2] = byte(count >> 8)
	out[3] = byte(count >> 16)
	out[4] = byte(count >> 24)
	*buf = out
	ca.complete(buf)
}

// doStats aggregates every reachable backend's STATS into one snapshot.
// Per-side detail is omitted: the aggregate must fit one response frame
// regardless of cluster size (per-backend sides live on each backend's
// own /metrics endpoint).
func (p *Proxy) doStats(ca *call) {
	t := p.topo.Load()
	agg := kvstore.Stats{}
	var schemes []string
	reached := 0
	for _, b := range t.backs {
		rc, err := b.roundTrip([]byte{kvstore.OpStats}, false, 0)
		if err != nil {
			continue
		}
		var st kvstore.Stats
		ok := rc.resp[0] == kvstore.StatusOK
		if ok {
			ok = json.Unmarshal(rc.resp[1:], &st) == nil
		}
		putCall(rc)
		if !ok {
			continue
		}
		reached++
		agg.Shards += st.Shards
		agg.Live += st.Live
		agg.MaxLive += st.MaxLive
		agg.Baseline += st.Baseline
		schemes = append(schemes, st.Scheme)
	}
	if reached == 0 {
		ca.fail(errNoReplica)
		return
	}
	agg.Scheme = "cluster(" + strings.Join(schemes, "+") + ")"
	p.respondJSON(ca, agg)
}

// doDrain fans DRAIN to every backend (quiescent use only, like the
// single-node op) and merges the reports: sums of the accounting
// fields, logical AND of the leak verdicts.
// quiesce waits until the cluster has no internal writers: no topology
// change pending and no backend mid-resync. DRAIN inherits kvstore's
// quiescent-use-only contract, and the proxy's own rebalance traffic
// counts — fanning OpDrain while resync is still copying keys would
// race DrainAndCheck's FlushAll against live Puts on the target store.
func (p *Proxy) quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		busy := p.next.Load() != nil
		if !busy {
			// Anything short of Healthy either is resyncing or will
			// start a resync the moment it reconnects (and a down
			// backend can't answer OpDrain anyway) — wait it out.
			for _, b := range p.topo.Load().backs {
				if b.state.Load() != stateHealthy {
					busy = true
					break
				}
			}
		}
		if !busy {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("cluster: resync still in progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// doDrain inherits kvstore's quiescent-use-only DRAIN contract, and the
// servers enforce it: OpDrain claims a backend's whole tid pool, so it
// only proceeds once every other connection to that server — including
// this proxy's own pool lanes — is gone. The proxy therefore stops all
// pools, drains each backend over a fresh direct connection, then
// rebuilds the pools (bootstrap: the stores are all empty now, so no
// resync). Client ops that race the drain window fail fast; drain is an
// operator action, not a data-path verb.
func (p *Proxy) doDrain(ca *call) {
	if err := p.quiesce(time.Minute); err != nil {
		ca.fail(err)
		return
	}
	p.tmu.Lock()
	defer p.tmu.Unlock()
	if p.next.Load() != nil { // a topology change slipped in after quiesce
		ca.fail(errors.New("cluster: topology change in progress"))
		return
	}
	old := p.topo.Load()
	for _, b := range old.backs {
		b.stopAndWait()
	}

	agg := kvstore.DrainReport{LeakOK: true}
	var schemes []string
	drainErr := func() error {
		for _, b := range old.backs {
			cl, err := kvstore.Dial(b.addr,
				kvstore.WithDialTimeout(p.cfg.DialTimeout),
				kvstore.WithReadTimeout(time.Minute), // the barrier alone can take 30s
				kvstore.WithRetries(2),
			)
			if err != nil {
				return fmt.Errorf("cluster: drain %s: %w", b.addr, err)
			}
			rep, err := cl.Drain(context.Background())
			cl.Close()
			if err != nil {
				return fmt.Errorf("cluster: drain %s: %w", b.addr, err)
			}
			agg.Baseline += rep.Baseline
			agg.Live += rep.Live
			agg.RetiredNotFreed += rep.RetiredNotFreed
			agg.Deleted += rep.Deleted
			agg.LeakOK = agg.LeakOK && rep.LeakOK
			schemes = append(schemes, rep.Scheme)
		}
		return nil
	}()

	// Rebuild the pools on the same ring, carrying each backend's RTT
	// history so hedge delays stay calibrated.
	backs := make([]*backend, len(old.backs))
	for i, ob := range old.backs {
		nb := newBackend(p, ob.addr, ob.rtt)
		p.byAddr[ob.addr] = nb
		p.registerBackendMetrics(nb)
		backs[i] = nb
		nb.start(true)
	}
	p.topo.Store(&topology{ring: old.ring, backs: backs})

	if drainErr != nil {
		ca.fail(drainErr)
		return
	}
	agg.Scheme = "cluster(" + strings.Join(schemes, "+") + ")"
	p.respondJSON(ca, agg)
}

// NodeInfo is one backend's slice of the Info snapshot.
type NodeInfo struct {
	Addr         string `json:"addr"`
	Scheme       string `json:"scheme"`
	State        string `json:"state"`
	Inflight     int64  `json:"inflight"`
	BreakerTrips uint64 `json:"breaker_trips"`
	DialFailures int64  `json:"dial_failures"`
	HedgeDelayUs int64  `json:"hedge_delay_us"`
}

// Info is the CLUSTER_INFO response.
type Info struct {
	Replicas       int        `json:"replicas"`
	VNodes         int        `json:"vnodes"`
	Migrating      bool       `json:"migrating"`
	Nodes          []NodeInfo `json:"nodes"`
	RoutedOps       uint64     `json:"routed_ops"`
	HedgesFired     uint64     `json:"hedges_fired"`
	HedgeWins       uint64     `json:"hedge_wins"`
	HedgesCancelled uint64     `json:"hedges_cancelled"`
	ReadRetries     uint64     `json:"read_retries"`
	DegradedWrites  uint64     `json:"degraded_writes"`
	KeysMoved       uint64     `json:"keys_moved"`
	ShedsObserved   uint64     `json:"sheds_observed"`
	DeadlineRejects uint64     `json:"deadline_rejects"`
}

// Snapshot assembles the Info the CLUSTER_INFO verb serves; in-process
// embedders (the torture harness) read it directly.
func (p *Proxy) Snapshot() Info {
	p.tmu.Lock()
	backs := make([]*backend, 0, len(p.byAddr))
	for _, b := range p.byAddr {
		backs = append(backs, b)
	}
	p.tmu.Unlock()
	sort.Slice(backs, func(i, j int) bool { return backs[i].addr < backs[j].addr })
	info := Info{
		Replicas:       p.replicas(),
		VNodes:         p.cfg.VNodes,
		Migrating:      p.next.Load() != nil,
		RoutedOps:       p.routed.Load(),
		HedgesFired:     p.hedges.Load(),
		HedgeWins:       p.hedgeWins.Load(),
		HedgesCancelled: p.hedgesCancelled.Load(),
		ReadRetries:     p.readRetries.Load(),
		DegradedWrites:  p.degraded.Load(),
		KeysMoved:       p.keysMoved.Load(),
		ShedsObserved:   p.shedObserved.Load(),
		DeadlineRejects: p.deadlineRejects.Load(),
	}
	for _, b := range backs {
		info.Nodes = append(info.Nodes, NodeInfo{
			Addr:         b.addr,
			Scheme:       *b.scheme.Load(),
			State:        stateName(b.state.Load()),
			Inflight:     b.inflight.Load(),
			BreakerTrips: b.trips.Load(),
			DialFailures: b.dialErrs.Load(),
			HedgeDelayUs: b.hedgeDelay().Microseconds(),
		})
	}
	return info
}

func (p *Proxy) doInfo(ca *call) {
	p.respondJSON(ca, p.Snapshot())
}

func (p *Proxy) doTopo(op uint8, addr string, deadline time.Time, ca *call) {
	// A budget on an admin op becomes the rebalance context's deadline:
	// AddBackend/DrainBackend/RemoveBackend check it between keys, so a
	// caller-bounded drain stops copying when the caller gives up.
	ctx := context.Background()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	var rep RebalanceReport
	var err error
	switch op {
	case kvstore.OpClusterAdd:
		rep, err = p.AddBackend(ctx, addr)
	case kvstore.OpClusterDrain:
		rep, err = p.DrainBackend(ctx, addr)
	case kvstore.OpClusterRemove:
		rep, err = p.RemoveBackend(ctx, addr)
	}
	if err != nil {
		ca.fail(err)
		return
	}
	p.respondJSON(ca, rep)
}

func (p *Proxy) respondJSON(ca *call, v any) {
	js, err := json.Marshal(v)
	if err != nil {
		ca.fail(err)
		return
	}
	buf := getBuf()
	*buf = append(append((*buf)[:0], kvstore.StatusOK), js...)
	ca.complete(buf)
}
