package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func addrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return out
}

// Placement is a pure function of the topology: two rings built from
// the same node list agree on every key, and key placement does not
// depend on the probe order or any per-process state.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := addrs(5)
	a := BuildRing(nodes, 128)
	b := BuildRing(nodes, 128)
	var bufA, bufB [3]int32
	for seed := uint64(0); seed < 4; seed++ {
		for i := uint64(0); i < 20000; i++ {
			key := splitmix64(seed*1e9 + i)
			ra := a.Lookup(key, 3, bufA[:0])
			rb := b.Lookup(key, 3, bufB[:0])
			if len(ra) != 3 || len(rb) != 3 {
				t.Fatalf("key %d: want 3 replicas, got %d and %d", key, len(ra), len(rb))
			}
			for j := range ra {
				if ra[j] != rb[j] {
					t.Fatalf("key %d: rings disagree: %v vs %v", key, ra, rb)
				}
			}
			if ra[0] == ra[1] || ra[0] == ra[2] || ra[1] == ra[2] {
				t.Fatalf("key %d: replica set %v is not distinct", key, ra)
			}
		}
	}
}

// At 128 vnodes the primary-key share of every node stays within ±10%
// of fair across cluster sizes 2..8.
func TestRingBalance(t *testing.T) {
	const keys = 200000
	for _, n := range []int{2, 3, 4, 5, 8} {
		r := BuildRing(addrs(n), 128)
		counts := make([]int, n)
		var buf [1]int32
		for i := 0; i < keys; i++ {
			ids := r.Lookup(uint64(i)*2654435761+1, 1, buf[:0])
			counts[ids[0]]++
		}
		fair := float64(keys) / float64(n)
		for id, c := range counts {
			dev := (float64(c) - fair) / fair
			if dev > 0.10 || dev < -0.10 {
				t.Errorf("n=%d node %d holds %d keys (fair %.0f, deviation %+.1f%%)",
					n, id, c, fair, dev*100)
			}
		}
	}
}

// Adding one node to an N-node ring must remap only ~K/(N+1) primaries,
// and every remapped key must move *to* the new node — the minimal
// movement property that makes live joins cheap.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	const keys = 100000
	base := addrs(4)
	before := BuildRing(base, 128)
	after := BuildRing(append(append([]string(nil), base...), "10.0.0.99:7070"), 128)
	newID := after.NodeID("10.0.0.99:7070")
	moved := 0
	var buf [1]int32
	for i := 0; i < keys; i++ {
		key := uint64(i)*0x9E3779B97F4A7C15 + 7
		pb := before.Lookup(key, 1, buf[:0])[0]
		pa := after.Lookup(key, 1, buf[:0])[0]
		if int(pa) < len(base) && pa != pb {
			t.Fatalf("key %d moved between surviving nodes: %d → %d", key, pb, pa)
		}
		if pa == newID {
			moved++
		}
	}
	expect := float64(keys) / 5
	if f := float64(moved); f < 0.5*expect || f > 1.5*expect {
		t.Errorf("join moved %d primaries, want ≈%.0f (K/N+1)", moved, expect)
	}
}

// Removing a node remaps only that node's keys; survivors keep theirs.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	const keys = 100000
	nodes := addrs(5)
	before := BuildRing(nodes, 128)
	after := BuildRing(nodes[:4], 128)
	gone := before.NodeID(nodes[4])
	moved := 0
	var buf [1]int32
	for i := 0; i < keys; i++ {
		key := uint64(i)*0xBF58476D1CE4E5B9 + 3
		pb := before.Lookup(key, 1, buf[:0])[0]
		pa := after.Lookup(key, 1, buf[:0])[0]
		if pb != gone && pa != pb {
			t.Fatalf("key %d moved although its primary survived: %d → %d", key, pb, pa)
		}
		if pb == gone {
			moved++
		}
	}
	expect := float64(keys) / 5
	if f := float64(moved); f < 0.5*expect || f > 1.5*expect {
		t.Errorf("leave moved %d primaries, want ≈%.0f (K/N)", moved, expect)
	}
}

// The routing path allocates nothing when the caller reuses its buffer.
func TestRingLookupZeroAlloc(t *testing.T) {
	r := BuildRing(addrs(5), 128)
	buf := make([]int32, 0, 3)
	n := testing.AllocsPerRun(1000, func() {
		buf = r.Lookup(12345, 3, buf)
	})
	if n != 0 {
		t.Errorf("Lookup allocates %.1f times per call, want 0", n)
	}
}

// Lookup stays correct while the published topology is swapped under
// it — the proxy's exact access pattern: readers load the ring through
// an atomic pointer per request while a topology churner installs
// fresh rings. Each result must be internally consistent with whichever
// ring the reader loaded (right length, valid distinct ids, and exactly
// the ids that ring's own preference table holds for the key), never a
// blend of two topologies. Run with -race: the readers' only sync with
// the swapper is the pointer load, so any mutation of a published ring
// would be flagged.
func TestRingLookupUnderConcurrentSwap(t *testing.T) {
	rings := make([]*Ring, 6)
	for i := range rings {
		rings[i] = BuildRing(addrs(i+3), 64) // 3..8 nodes
	}
	var cur atomic.Pointer[Ring]
	cur.Store(rings[0])

	stop := make(chan struct{})
	var swaps atomic.Uint64
	go func() {
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cur.Store(rings[i%len(rings)])
			swaps.Add(1)
			runtime.Gosched()
		}
	}()

	const readers = 4
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			buf := make([]int32, 0, 3)
			want := make([]int32, 0, 3)
			for i := 0; i < 20000; i++ {
				key := uint64(id)<<32 | uint64(i)
				r := cur.Load()
				buf = r.Lookup(key, 2, buf)
				if len(buf) != 2 {
					errs[id] = fmt.Errorf("key %d: %d ids, want 2", key, len(buf))
					return
				}
				if buf[0] == buf[1] {
					errs[id] = fmt.Errorf("key %d: duplicate replica id %d", key, buf[0])
					return
				}
				for _, b := range buf {
					if b < 0 || int(b) >= len(r.Nodes) {
						errs[id] = fmt.Errorf("key %d: id %d out of range for %d nodes", key, b, len(r.Nodes))
						return
					}
				}
				// Same ring, same key ⇒ bitwise-identical answer; a torn
				// read of a swapped table could not reproduce itself.
				want = r.Lookup(key, 2, want)
				if buf[0] != want[0] || buf[1] != want[1] {
					errs[id] = fmt.Errorf("key %d: unstable lookup %v vs %v", key, buf, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	for id, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v", id, err)
		}
	}
	if swaps.Load() == 0 {
		t.Error("swapper never swapped; the test raced nothing")
	}
}
