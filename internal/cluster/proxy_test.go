package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/kvstore"
)

// testBackend is one in-process kvserver a proxy test can kill and
// restart on a stable address.
type testBackend struct {
	addr string
	st   *kvstore.Store
	srv  *kvstore.Server
	done chan error
}

func startKV(t *testing.T, scheme, addr string) *testBackend {
	t.Helper()
	st, err := kvstore.New(kvstore.Config{Scheme: scheme, Shards: 4, Buckets: 256, MaxThreads: 64})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i == 50 {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	b := &testBackend{addr: ln.Addr().String(), st: st, srv: kvstore.NewServer(st), done: make(chan error, 1)}
	go func() { b.done <- b.srv.Serve(ln) }()
	return b
}

func (b *testBackend) kill(t *testing.T) {
	t.Helper()
	b.srv.Shutdown()
	if err := <-b.done; err != nil {
		t.Errorf("backend %s serve: %v", b.addr, err)
	}
}

func startCluster(t *testing.T, schemes []string, replicas int) (*Proxy, []*testBackend, string) {
	t.Helper()
	backs := make([]*testBackend, len(schemes))
	addrs := make([]string, len(schemes))
	for i, s := range schemes {
		backs[i] = startKV(t, s, "")
		addrs[i] = backs[i].addr
	}
	p := New(Config{Backends: addrs, Replicas: replicas, Lanes: 2, Depth: 64})
	if err := p.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- p.Serve(ln) }()
	t.Cleanup(func() {
		p.Shutdown()
		if err := <-served; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})
	return p, backs, ln.Addr().String()
}

var ctx = context.Background()

func proxyClient(t *testing.T, addr string) *kvstore.Client {
	t.Helper()
	cl, err := kvstore.Dial(addr, kvstore.WithReadTimeout(30*time.Second), kvstore.WithRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func clusterInfo(t *testing.T, cl *kvstore.Client) Info {
	t.Helper()
	raw, err := cl.ClusterInfo(ctx)
	if err != nil {
		t.Fatalf("CLUSTER_INFO: %v", err)
	}
	var info Info
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatalf("CLUSTER_INFO decode: %v", err)
	}
	return info
}

func waitAllHealthy(t *testing.T, cl *kvstore.Client, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info := clusterInfo(t, cl)
		healthy := 0
		for _, nd := range info.Nodes {
			if nd.State == "healthy" {
				healthy++
			}
		}
		if healthy == n && len(info.Nodes) == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached %d healthy nodes: %+v", n, info.Nodes)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Every op a kvstore client can issue works unchanged through the
// proxy, across backends running three different reclamation schemes.
func TestProxyBasicOps(t *testing.T) {
	_, _, addr := startCluster(t, []string{"orcgc", "hp", "ebr"}, 2)
	cl := proxyClient(t, addr)

	if ins, err := cl.Put(ctx, 42, 1000); err != nil || !ins {
		t.Fatalf("put = %v, %v", ins, err)
	}
	if ins, err := cl.Put(ctx, 42, 2000); err != nil || ins {
		t.Fatalf("overwrite put = %v, %v (want update)", ins, err)
	}
	if v, ok, err := cl.Get(ctx, 42); err != nil || !ok || v != 2000 {
		t.Fatalf("get = %d, %v, %v", v, ok, err)
	}
	if _, ok, _ := cl.Get(ctx, 43); ok {
		t.Fatal("get on absent key found something")
	}
	if found, err := cl.Del(ctx, 42); err != nil || !found {
		t.Fatalf("del = %v, %v", found, err)
	}
	if found, _ := cl.Del(ctx, 42); found {
		t.Fatal("double del found the key")
	}

	for k := uint64(100); k < 150; k++ {
		if _, err := cl.Put(ctx, k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := cl.Scan(ctx, 100, 25)
	if err != nil || len(pairs) != 50 {
		t.Fatalf("scan returned %d pairs (err %v), want 25", len(pairs)/2, err)
	}
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i+1] != pairs[i]*3 {
			t.Fatalf("scan pair %d→%d", pairs[i], pairs[i+1])
		}
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Scheme != "cluster(orcgc+hp+ebr)" {
		t.Fatalf("aggregate scheme = %q", st.Scheme)
	}
	if st.Live <= 0 {
		t.Fatalf("aggregate live = %d", st.Live)
	}

	info := clusterInfo(t, cl)
	if len(info.Nodes) != 3 || info.Replicas != 2 {
		t.Fatalf("info = %+v", info)
	}
	for _, nd := range info.Nodes {
		if nd.State != "healthy" {
			t.Fatalf("node %s is %s", nd.Addr, nd.State)
		}
	}
}

// With R=2, every write is acked only once it is on every read-eligible
// replica, so killing any single backend loses nothing: every acked key
// stays readable and new writes keep succeeding.
func TestProxyFailoverKill(t *testing.T) {
	_, backs, addr := startCluster(t, []string{"orcgc", "hp", "ebr"}, 2)
	cl := proxyClient(t, addr)

	const keys = 500
	for k := uint64(1); k <= keys; k++ {
		if _, err := cl.Put(ctx, k, k^0xABCD); err != nil {
			t.Fatalf("put(%d): %v", k, err)
		}
	}
	backs[1].kill(t)

	for k := uint64(1); k <= keys; k++ {
		v, ok, err := cl.Get(ctx, k)
		if err != nil || !ok || v != k^0xABCD {
			t.Fatalf("get(%d) after kill = (%d, %v, %v)", k, v, ok, err)
		}
	}
	for k := uint64(keys + 1); k <= keys+100; k++ {
		if _, err := cl.Put(ctx, k, k); err != nil {
			t.Fatalf("put(%d) after kill: %v", k, err)
		}
		if v, ok, err := cl.Get(ctx, k); err != nil || !ok || v != k {
			t.Fatalf("get(%d) after kill = (%d, %v, %v)", k, v, ok, err)
		}
	}
}

// A backend that restarts empty is resynced from its peers before it
// serves reads again: after the rejoin completes, killing a *different*
// backend leaves every acked key readable — including keys whose only
// other replica was the one that died first.
func TestProxyKillRestartResync(t *testing.T) {
	_, backs, addr := startCluster(t, []string{"orcgc", "hp", "ebr"}, 2)
	cl := proxyClient(t, addr)

	const keys = 400
	for k := uint64(1); k <= keys; k++ {
		if _, err := cl.Put(ctx, k, k*7); err != nil {
			t.Fatal(err)
		}
	}
	downAddr := backs[0].addr
	backs[0].kill(t)

	// Writes acked while node 0 is down land only on the survivors.
	for k := uint64(keys + 1); k <= 2*keys; k++ {
		if _, err := cl.Put(ctx, k, k*7); err != nil {
			t.Fatalf("put(%d) during outage: %v", k, err)
		}
	}

	// Restart node 0 empty on the same address; the proxy must resync it.
	backs[0] = startKV(t, "orcgc", downAddr)
	waitAllHealthy(t, cl, 3, 30*time.Second)

	// Now kill a different node: reads for keys replicated on
	// {node0, node1} fall to the resynced node 0.
	backs[1].kill(t)
	for k := uint64(1); k <= 2*keys; k++ {
		v, ok, err := cl.Get(ctx, k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("get(%d) after restart+kill = (%d, %v, %v)", k, v, ok, err)
		}
	}
}

// Paginated scans through the proxy enumerate the merged keyspace
// exactly once even though every backend holds a different subset.
func TestProxyScanPagination(t *testing.T) {
	_, _, addr := startCluster(t, []string{"orcgc", "hp", "ebr"}, 2)
	cl := proxyClient(t, addr)

	const keys = 3000
	for k := uint64(1); k <= keys; k++ {
		if _, err := cl.Put(ctx, k, k+5); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]uint64{}
	cursor := uint64(1)
	for {
		pairs, err := cl.Scan(ctx, cursor, 512)
		if err != nil {
			t.Fatalf("scan from %d: %v", cursor, err)
		}
		if len(pairs) == 0 {
			break
		}
		for i := 0; i < len(pairs); i += 2 {
			if _, dup := seen[pairs[i]]; dup {
				t.Fatalf("key %d scanned twice", pairs[i])
			}
			seen[pairs[i]] = pairs[i+1]
		}
		cursor = pairs[len(pairs)-2] + 1
	}
	if len(seen) != keys {
		t.Fatalf("scan enumerated %d keys, want %d", len(seen), keys)
	}
	for k, v := range seen {
		if v != k+5 {
			t.Fatalf("key %d has value %d", k, v)
		}
	}
}

// Live topology changes: a joined node syncs its share before entering
// the read path, and a drained node's keys are handed off before it
// leaves, so clients never observe a missing key either way.
func TestProxyTopologyAddDrain(t *testing.T) {
	_, _, addr := startCluster(t, []string{"orcgc", "hp"}, 2)
	cl := proxyClient(t, addr)

	const keys = 400
	for k := uint64(1); k <= keys; k++ {
		if _, err := cl.Put(ctx, k, k+9); err != nil {
			t.Fatal(err)
		}
	}

	third := startKV(t, "ebr", "")
	raw, err := cl.ClusterAdd(ctx, third.addr)
	if err != nil {
		t.Fatalf("CLUSTER_ADD: %v", err)
	}
	var rep RebalanceReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.KeysMoved == 0 {
		t.Error("join moved zero keys into the new node")
	}
	waitAllHealthy(t, cl, 3, 30*time.Second)
	for k := uint64(1); k <= keys; k++ {
		if v, ok, err := cl.Get(ctx, k); err != nil || !ok || v != k+9 {
			t.Fatalf("get(%d) after add = (%d, %v, %v)", k, v, ok, err)
		}
	}

	info := clusterInfo(t, cl)
	drainAddr := info.Nodes[0].Addr
	raw, err = cl.ClusterDrain(ctx, drainAddr)
	if err != nil {
		t.Fatalf("CLUSTER_DRAIN: %v", err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	info = clusterInfo(t, cl)
	if len(info.Nodes) != 2 {
		t.Fatalf("after drain, %d nodes remain: %+v", len(info.Nodes), info.Nodes)
	}
	for _, nd := range info.Nodes {
		if nd.Addr == drainAddr {
			t.Fatalf("drained node %s still in topology", drainAddr)
		}
	}
	for k := uint64(1); k <= keys; k++ {
		if v, ok, err := cl.Get(ctx, k); err != nil || !ok || v != k+9 {
			t.Fatalf("get(%d) after drain = (%d, %v, %v)", k, v, ok, err)
		}
	}
}

// The hedge delay tracks 2×p99 of observed RTTs, clamped to its bounds.
func TestHedgeDelayClamp(t *testing.T) {
	b := newBackend(nil, "x", nil)
	if d := b.hedgeDelay(); d != time.Millisecond {
		t.Fatalf("default hedge delay = %v", d)
	}
	for i := 0; i < 1024; i++ {
		b.observeRTT(5 * time.Microsecond) // tiny RTTs → clamp at floor
	}
	if d := b.hedgeDelay(); d != hedgeMin {
		t.Fatalf("hedge delay after tiny RTTs = %v, want %v", d, hedgeMin)
	}
	for i := 0; i < 4096; i++ {
		b.observeRTT(time.Second) // huge RTTs → clamp at ceiling
	}
	if d := b.hedgeDelay(); d != hedgeMax {
		t.Fatalf("hedge delay after huge RTTs = %v, want %v", d, hedgeMax)
	}
}

// A fresh backend used to keep the 1ms default hedge delay for its
// whole first 512-sample window; now each of the first rttWarmup
// samples re-derives it, so a handful of observations is enough to
// move both the hedge trigger and the p50 budget deduction.
func TestHedgeWarmup(t *testing.T) {
	b := newBackend(nil, "x", nil)
	if d := b.hedgeDelay(); d != time.Millisecond {
		t.Fatalf("default hedge delay = %v", d)
	}
	if rtt := b.netRTT(); rtt != 0 {
		t.Fatalf("p50 estimate before any sample = %v", rtt)
	}
	for i := 0; i < 4; i++ {
		b.observeRTT(4 * time.Millisecond)
	}
	// 2×p99 of a 4ms population is 8ms — far from both clamps and from
	// the 1ms default, proving warm-up re-derivation fired well before
	// sample 512.
	if d := b.hedgeDelay(); d == time.Millisecond || d < 4*time.Millisecond {
		t.Fatalf("hedge delay after 4 warm-up samples = %v, want ≈2×p99 of 4ms", d)
	}
	if rtt := b.netRTT(); rtt <= 0 {
		t.Fatalf("p50 estimate after warm-up samples = %v", rtt)
	}
}

// A budget that cannot survive the proxy hop is refused with
// StatusDeadlineExceeded — by the proxy itself or by the backend the
// remainder was forwarded to — and the op provably does not execute.
func TestProxyBudgetExpiry(t *testing.T) {
	p, _, addr := startCluster(t, []string{"orcgc", "hp"}, 2)
	cl := proxyClient(t, addr)
	if ver, err := cl.Negotiate(ctx); err != nil || ver != kvstore.ProtoVersion {
		t.Fatalf("Negotiate through proxy = %d, %v", ver, err)
	}

	// A healthy budget flows through end to end.
	if ins, err := cl.Put(ctx, 77, 770); err != nil || !ins {
		t.Fatalf("Put = %v, %v", ins, err)
	}
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	if v, ok, err := cl.Get(dctx, 77); err != nil || !ok || v != 770 {
		t.Fatalf("budgeted Get through proxy = %d, %v, %v", v, ok, err)
	}
	cancel()

	// A 1µs budget is dead on arrival: the PUT must be refused without
	// effect, wherever along the pipeline the expiry is noticed.
	cl.SendPutBudget(78, 780, time.Microsecond)
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RecvPut(); !errors.Is(err, kvstore.ErrDeadlineExceeded) {
		t.Fatalf("1µs-budget Put err = %v, want ErrDeadlineExceeded", err)
	}
	if _, ok, err := cl.Get(ctx, 78); err != nil || ok {
		t.Fatalf("expired Put executed through proxy: found=%v err=%v", ok, err)
	}
	cl.SendGetBudget(77, time.Microsecond)
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.RecvGet(); !errors.Is(err, kvstore.ErrDeadlineExceeded) {
		t.Fatalf("1µs-budget Get err = %v, want ErrDeadlineExceeded", err)
	}
	if n := p.Snapshot().DeadlineRejects; n == 0 {
		t.Log("expiries were noticed downstream of the proxy (backend-side)")
	}
}
