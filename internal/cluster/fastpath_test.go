package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/kvstore"
)

// stubProxy assembles a Proxy whose backends never dial: every lane
// submission is intercepted by the testSubmit seam and answered inline
// with a canned StatusOK frame. This isolates the dispatch state
// machines (getOp/writeOp, call and frame pooling) from the network so
// AllocsPerRun measures only the proxy's own fast path.
func stubProxy(nback int) *Proxy {
	p := &Proxy{
		cfg:    Config{Replicas: 2, Lanes: 2, Depth: 64},
		byAddr: map[string]*backend{},
	}
	addrs := make([]string, nback)
	backs := make([]*backend, nback)
	for i := range backs {
		addrs[i] = fmt.Sprintf("stub-%d", i)
		b := newBackend(p, addrs[i], nil)
		b.state.Store(stateHealthy)
		b.proto.Store(1)
		b.testSubmit = func(fr *wireBuf, ca *call) bool {
			rb := getBuf()
			*rb = append((*rb)[:0], 9, 0, 0, 0, kvstore.StatusOK)
			*rb = kvstore.AppendU64(*rb, 424242)
			ca.complete(rb)
			return true
		}
		p.byAddr[addrs[i]] = b
		backs[i] = b
	}
	p.topo.Store(&topology{ring: BuildRing(addrs, DefaultVNodes), backs: backs})
	return p
}

func runOp(p *Proxy, req []byte) *call {
	ca := p.dispatch(req)
	<-ca.done
	return ca
}

// TestProxySteadyStateAllocs is the tentpole's zero-allocation guard:
// once the pools are warm, a proxied GET and a proxied PUT must not
// allocate at all — no goroutines, no call structs, no frames, no
// response buffers.
func TestProxySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race pass")
	}
	p := stubProxy(3)
	getReq := kvstore.AppendU64([]byte{kvstore.OpGet}, 7)
	putReq := kvstore.AppendU64(kvstore.AppendU64([]byte{kvstore.OpPut}, 7), 70)

	// Warm every pool (calls, ops, wire frames, response buffers) before
	// measuring; pool misses on the first iterations are expected.
	for i := 0; i < 64; i++ {
		putCall(runOp(p, getReq))
		putCall(runOp(p, putReq))
	}

	if n := testing.AllocsPerRun(2000, func() {
		putCall(runOp(p, getReq))
	}); n != 0 {
		t.Errorf("steady-state proxied GET allocates %.3f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(2000, func() {
		putCall(runOp(p, putReq))
	}); n != 0 {
		t.Errorf("steady-state proxied PUT allocates %.3f objects/op, want 0", n)
	}
}

// TestProxySteadyStateResults sanity-checks the stubbed fast path the
// alloc guard rides on: responses really are the canned backend frames,
// routed and pooled correctly.
func TestProxySteadyStateResults(t *testing.T) {
	p := stubProxy(3)
	getReq := kvstore.AppendU64([]byte{kvstore.OpGet}, 7)
	for i := 0; i < 100; i++ {
		ca := runOp(p, getReq)
		if ca.err != nil {
			t.Fatalf("stubbed GET err: %v", ca.err)
		}
		if ca.resp[0] != kvstore.StatusOK {
			t.Fatalf("stubbed GET status = %d", ca.resp[0])
		}
		if v, ok := kvstore.PayloadU64(ca.resp, 1); !ok || v != 424242 {
			t.Fatalf("stubbed GET value = %d, %v", v, ok)
		}
		putCall(ca)
	}
}

// TestProxyGoroutineBaseline is the goroutine-leak regression test: a
// mixed workload pushed through topology churn (ADD, DRAIN, REMOVE)
// must leave the process at its per-lane/per-conn goroutine baseline —
// steady-state ops and retired topologies may not park goroutines.
func TestProxyGoroutineBaseline(t *testing.T) {
	p, _, addr := startCluster(t, []string{"orcgc", "hp", "ebr"}, 2)
	cl := proxyClient(t, addr)
	if _, err := cl.Put(ctx, 1, 10); err != nil {
		t.Fatal(err)
	}

	// Baseline: cluster up, one idle client connected, pools warm.
	runtime.GC()
	base := runtime.NumGoroutine()

	// Mixed workload across several client connections...
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcl, err := kvstore.Dial(addr, kvstore.WithReadTimeout(30*time.Second), kvstore.WithRetries(3))
			if err != nil {
				t.Errorf("churn dial: %v", err)
				return
			}
			defer wcl.Close() // before the baseline re-check, unlike t.Cleanup
			for i := 0; i < 400; i++ {
				k := uint64((w+1)*1000 + i) // disjoint from the sentinel key 1
				if _, err := wcl.Put(ctx, k, k*3); err != nil {
					t.Errorf("churn Put: %v", err)
					return
				}
				if _, _, err := wcl.Get(ctx, k); err != nil {
					t.Errorf("churn Get: %v", err)
					return
				}
				if i%10 == 0 {
					if _, err := wcl.Del(ctx, k); err != nil {
						t.Errorf("churn Del: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// ...while the topology churns underneath it: a node joins, drains
	// back out, and a second join is torn down via the removal path.
	extra := startKV(t, "orcgc", "")
	if _, err := p.AddBackend(ctx, extra.addr); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DrainBackend(ctx, extra.addr); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddBackend(ctx, extra.addr); err != nil {
		t.Fatal(err)
	}
	extra.kill(t)
	// The removal path skips the dead node as a copy source only once
	// the proxy has demoted it. Idle lanes notice a peer death on their
	// next submission, so keep a trickle of writes flowing until the
	// dead node's failures get it suspected out of the read set.
	p.tmu.Lock()
	eb := p.byAddr[extra.addr]
	p.tmu.Unlock()
	for i, deadline := uint64(0), time.Now().Add(10*time.Second); eb.readEligible(); i++ {
		if time.Now().After(deadline) {
			t.Fatal("killed backend never left the read set")
		}
		cl.Put(ctx, 5000+i%64, i) // best-effort probe; failures are the point
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := p.RemoveBackend(ctx, extra.addr); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// The workload clients' own goroutines and the retired backend's
	// lanes need a moment to unwind; poll until we are back at (or
	// below) baseline plus a small tolerance for the test server's
	// still-closing accept loops.
	const tolerance = 3
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= base+tolerance {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines after churn = %d, baseline %d (+%d allowed)\n%s",
				now, base, tolerance, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The data must have survived the churn.
	if v, ok, err := cl.Get(ctx, 1); err != nil || !ok || v != 10 {
		t.Fatalf("Get after churn = %d, %v, %v", v, ok, err)
	}
}
