// Package cluster is orccluster: a consistent-hash sharded proxy that
// fronts N kvserver backends (each free to run a different reclamation
// scheme) behind the same length-prefixed wire protocol, adding
// replication, hedged reads, circuit-broken connection pools, and live
// topology changes. Existing clients (kvload, kvstore.Client) work
// against a proxy unmodified.
//
// The partition map is this file: an immutable consistent-hash ring in
// the equal-slot variant (Dynamo's "strategy 3"). Instead of scattering
// each node's virtual nodes at random positions — whose exponential arc
// lengths leave per-node shares ~1/√vnodes wide, outside ±10% at 128 —
// the circle is pre-cut into Q equal slots (Q sized from the vnode
// budget) and each slot's replica preference order is decided by
// highest-random-weight hashing over the node set. That keeps the two
// properties that matter and tightens the third:
//
//   - minimal movement: adding a node only inserts it into each slot's
//     preference list, so a key's primary changes only when the new
//     node wins that slot — exactly the ~K/N handoff share, and a
//     replica set changes by at most one member;
//   - determinism: the ring is a pure function of (nodes, vnodes);
//   - balance: per-slot owners are i.i.d. across Q ≫ vnodes slots, so
//     the share deviation is ~√(N/Q) — well inside ±10%.
//
// The proxy publishes a *Ring through an atomic pointer; the hot
// routing path is one atomic load, one splitmix64 hash, one shift, and
// a copy out of the slot's precomputed preference list — no locks and
// no allocations (the replica slice is the caller's reusable buffer,
// the scanset buffer-pooling idiom). Topology changes build a fresh
// Ring and swap the pointer; requests in flight finish against the
// ring they started with.
package cluster

import "sort"

// Ring is an immutable consistent-hash partition map. Node ids are
// indices into Nodes; Lookup returns ids, and the proxy maps them to
// backend pools.
type Ring struct {
	Nodes  []string // backend addresses in join order
	VNodes int      // virtual-node budget per backend (sizes the slot table)

	slotBits uint    // Q = 1 << slotBits equal slots on the circle
	pref     []int32 // Q × len(Nodes) preference lists, slot-major
}

// DefaultVNodes is the vnode budget a zero config gets.
const DefaultVNodes = 128

// slotsFor picks the slot-table size: enough slots that every node's
// share is averaged over ≥ vnodes independent slot decisions even in
// large clusters, capped to keep topology rebuilds trivially cheap.
func slotsFor(vnodes int) uint {
	bits := uint(6) // floor of 64 slots
	for 1<<bits < vnodes*64 && bits < 16 {
		bits++
	}
	return bits
}

// splitmix64 is the same finalizer the torture harness seeds with —
// full avalanche, so sequential keys spread uniformly over slots.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashAddr seeds a node's weight stream from its address (FNV-1a).
func hashAddr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// BuildRing computes the slot table for a node set. Deterministic: two
// proxies building a ring from the same topology agree on every key.
func BuildRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		Nodes:    append([]string(nil), nodes...),
		VNodes:   vnodes,
		slotBits: slotsFor(vnodes),
	}
	n := len(nodes)
	if n == 0 {
		return r
	}
	q := 1 << r.slotBits
	seeds := make([]uint64, n)
	for i, addr := range nodes {
		seeds[i] = hashAddr(addr)
	}
	r.pref = make([]int32, q*n)
	type weighted struct {
		w  uint64
		id int32
	}
	row := make([]weighted, n)
	for s := 0; s < q; s++ {
		for i := 0; i < n; i++ {
			row[i] = weighted{splitmix64(seeds[i] ^ splitmix64(uint64(s)+1)), int32(i)}
		}
		sort.Slice(row, func(a, b int) bool {
			if row[a].w != row[b].w {
				return row[a].w > row[b].w
			}
			return row[a].id < row[b].id // total order even on weight ties
		})
		for i := 0; i < n; i++ {
			r.pref[s*n+i] = row[i].id
		}
	}
	return r
}

// Lookup appends the ids of the first `want` nodes in key's preference
// order — the key's primary followed by its replicas — and returns the
// extended slice. dst is the caller's reusable buffer; with cap(dst) ≥
// want the call performs zero allocations. want is clamped to the node
// count.
func (r *Ring) Lookup(key uint64, want int, dst []int32) []int32 {
	dst = dst[:0]
	n := len(r.Nodes)
	if n == 0 || want <= 0 {
		return dst
	}
	if want > n {
		want = n
	}
	s := int(splitmix64(key) >> (64 - r.slotBits))
	return append(dst, r.pref[s*n:s*n+want]...)
}

// Primary is Lookup's first choice, for callers that only route.
func (r *Ring) Primary(key uint64) int32 {
	var buf [1]int32
	ids := r.Lookup(key, 1, buf[:0])
	if len(ids) == 0 {
		return -1
	}
	return ids[0]
}

// NodeID returns the id of addr in this ring, or -1.
func (r *Ring) NodeID(addr string) int32 {
	for i, a := range r.Nodes {
		if a == addr {
			return int32(i)
		}
	}
	return -1
}
