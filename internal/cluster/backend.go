package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/obs"
)

// Backend lifecycle. A backend is write-eligible while Recovering or
// Healthy and read-eligible only while Healthy — the invariant the
// whole failover design rests on: a replica that may have missed a
// write (its connections died, or it just rejoined) never serves a
// read until the proxy has resynced it from a healthy peer.
const (
	stateConnecting int32 = iota // dialing; breaker open, no traffic
	stateRecovering              // connected; writes land, reads skip it until resync completes
	stateHealthy                 // full member
	stateStopped                 // removed from the topology
)

func stateName(s int32) string {
	switch s {
	case stateConnecting:
		return "connecting"
	case stateRecovering:
		return "recovering"
	case stateHealthy:
		return "healthy"
	default:
		return "stopped"
	}
}

var (
	errBackendDown = errors.New("cluster: backend down")
	errNoReplica   = errors.New("cluster: no live replica")
)

// call is one request in flight to a backend (and, reused on the other
// side, one client-facing response slot).
//
// A call settles in one of two ways. A *blocking* call (gop and wop
// nil) carries exactly one done token per cycle: the completer sends,
// the collector receives, and only then may the call return to the
// pool. A *continuation* call belongs to a pooled per-op state machine
// (getOp or writeOp): the completer — usually a lane receiver — invokes
// the op's backendDone directly instead of waking a parked goroutine,
// which is what makes a steady-state proxied op goroutine-free.
//
// respBuf always holds a complete response *frame* (4-byte length
// prefix included) so the client-facing writer can forward it verbatim;
// resp is the payload view into it, status byte first.
type call struct {
	done    chan struct{}
	resp    []byte  // response payload, status byte first; aliases respBuf[4:]
	respBuf *[]byte // pooled framed backing storage, recycled by putCall
	err     error
	start   time.Time
	state   atomic.Int32

	// Continuation routing: at most one of gop/wop is set. srcB is the
	// backend the call was submitted to (for demotion on failure) and
	// isHedge tags the speculative copy of a hedged read.
	gop     *getOp
	wop     *writeOp
	srcB    *backend
	isHedge bool
}

const (
	callLive    int32 = iota // completer has not delivered yet
	callSettled              // completer delivered
)

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

func getCall() *call {
	ca := callPool.Get().(*call)
	ca.resp, ca.err = nil, nil
	ca.start = time.Now()
	ca.state.Store(callLive)
	return ca
}

func putCall(ca *call) {
	if ca.respBuf != nil {
		putBuf(ca.respBuf)
		ca.respBuf = nil
	}
	ca.resp = nil
	ca.gop, ca.wop, ca.srcB = nil, nil, nil
	ca.isHedge = false
	callPool.Put(ca)
}

// complete fulfils a call with a pooled framed response buffer
// (ownership transfers to the call), then either runs the owning op's
// continuation inline or wakes the blocked collector. The continuation
// is the last thing that happens here: it may recycle ca.
func (ca *call) complete(respBuf *[]byte) {
	if ca.state.CompareAndSwap(callLive, callSettled) {
		ca.respBuf = respBuf
		if respBuf != nil {
			ca.resp = (*respBuf)[4:]
		}
		if op := ca.gop; op != nil {
			op.backendDone(ca)
			return
		}
		if op := ca.wop; op != nil {
			op.backendDone(ca)
			return
		}
		ca.done <- struct{}{}
		return
	}
	if respBuf != nil {
		putBuf(respBuf)
	}
	putCall(ca)
}

func (ca *call) fail(err error) {
	if ca.state.CompareAndSwap(callLive, callSettled) {
		ca.err = err
		if op := ca.gop; op != nil {
			op.backendDone(ca)
			return
		}
		if op := ca.wop; op != nil {
			op.backendDone(ca)
			return
		}
		ca.done <- struct{}{}
		return
	}
	putCall(ca)
}

// bufPool recycles response frames — the frame pool idiom from
// kvstore's server applied to the proxy's two hops.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) <= 64<<10 {
		*bp = (*bp)[:0]
		bufPool.Put(bp)
	}
}

// wireBuf is a pooled, refcounted request frame (length prefix
// included). The builder holds one reference; every lane submission
// takes another, released once the frame has been written to the wire
// (or the lane died). A frame's bytes may be rewritten in place — the
// per-backend budget field — only while the owner holds the *sole*
// reference; a frame some lane still has queued is cloned instead.
type wireBuf struct {
	b    []byte
	refs atomic.Int32
}

var wirePool = sync.Pool{New: func() any { return &wireBuf{b: make([]byte, 0, 64)} }}

func getWire() *wireBuf {
	w := wirePool.Get().(*wireBuf)
	w.b = w.b[:0]
	w.refs.Store(1)
	return w
}

func (w *wireBuf) ref() { w.refs.Add(1) }

func (w *wireBuf) unref() {
	if w.refs.Add(-1) == 0 && cap(w.b) <= 64<<10 {
		wirePool.Put(w)
	}
}

// sealWire back-fills the 4-byte length prefix a frame was seeded with.
func sealWire(w *wireBuf) {
	n := uint32(len(w.b) - 4)
	w.b[0], w.b[1], w.b[2], w.b[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
}

// conn is one pipelined lane to a backend. Submissions append to the
// wire and to the pending FIFO under mu; a receiver goroutine pairs
// responses with pending calls in order. Writes for one key always ride
// one lane (picked by key hash), so every replica executes same-key
// writes in the proxy's submission order.
type conn struct {
	b   *backend
	gen uint64
	cl  *kvstore.Client

	mu      sync.Mutex
	dead    bool
	pending chan *call
	flushCh chan struct{} // wakes the flusher; cap 1, closed by killLocked

	// Outbound frame queue, drained by one writev. outW holds the
	// refcounts, outB the parallel byte views handed to net.Buffers;
	// scratch is the reusable copy WriteTo is allowed to consume.
	outW    []*wireBuf
	outB    [][]byte
	scratch [][]byte
}

// submit queues the frame fr on this lane (taking its own reference on
// it). Returns false if the lane is dead.
//
// Flushing is coalesced: the common path only queues the frame and
// wakes the lane's flusher, so concurrent submissions share one writev
// syscall instead of paying one each. The exception is a lane at full
// depth — there we must write *before* blocking on the pending queue,
// because the flusher needs mu (held across the block) and the queue
// only drains once the queued requests reach the server.
func (c *conn) submit(fr *wireBuf, ca *call) bool {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return false
	}
	fr.ref()
	c.outW = append(c.outW, fr)
	c.outB = append(c.outB, fr.b)
	select {
	case c.pending <- ca:
		select {
		case c.flushCh <- struct{}{}:
		default: // a wakeup is already queued; it will cover this frame
		}
	default:
		if err := c.writeLocked(); err != nil {
			// The lane is broken; the receiver will fail the calls
			// already pending once its read errors. This call was never
			// reliably on the wire, so fail it here and kill the lane.
			c.killLocked()
			c.mu.Unlock()
			return false
		}
		c.pending <- ca // blocks at depth: natural per-lane backpressure
	}
	c.mu.Unlock()
	c.b.inflight.Add(1)
	return true
}

// trySubmit is submit for callers that must never block — op
// continuations running on a lane receiver or a hedge timer. A lane at
// full depth reports full=true (alive, just no room) instead of
// queuing behind the depth limit.
func (c *conn) trySubmit(fr *wireBuf, ca *call) (ok, full bool) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return false, false
	}
	select {
	case c.pending <- ca:
	default:
		c.mu.Unlock()
		return false, true
	}
	fr.ref()
	c.outW = append(c.outW, fr)
	c.outB = append(c.outB, fr.b)
	select {
	case c.flushCh <- struct{}{}:
	default:
	}
	c.mu.Unlock()
	c.b.inflight.Add(1)
	return true, false
}

// writeLocked writevs every queued frame in one syscall; mu held. The
// queue is copied into scratch first — net.Buffers.WriteTo consumes
// the slice it is given — and the frame references are released only
// after the write, which is what gates in-place budget rewrites: a
// frame with any outstanding lane reference is still (about to be) on
// some wire and must be cloned, not rewritten.
func (c *conn) writeLocked() error {
	if len(c.outB) == 0 {
		return nil
	}
	c.scratch = append(c.scratch[:0], c.outB...)
	bufs := net.Buffers(c.scratch)
	err := c.cl.WriteFrames(&bufs)
	for i := range c.scratch {
		c.scratch[i] = nil
	}
	c.releaseOutLocked()
	return err
}

func (c *conn) releaseOutLocked() {
	for i, w := range c.outW {
		w.unref()
		c.outW[i] = nil
		c.outB[i] = nil
	}
	c.outW = c.outW[:0]
	c.outB = c.outB[:0]
}

// flushLoop pushes queued frames to the wire whenever submit signals.
// One wakeup covers every frame queued before the flush runs, so a
// burst of submissions costs one syscall.
func (c *conn) flushLoop() {
	for range c.flushCh {
		c.mu.Lock()
		if c.dead {
			c.mu.Unlock()
			return
		}
		if err := c.writeLocked(); err != nil {
			c.killLocked()
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
	}
}

// killLocked marks the lane dead and closes the socket; mu held. The
// pending channel is closed here — submitters check dead under mu
// first, so no send can race the close.
func (c *conn) killLocked() {
	if c.dead {
		return
	}
	c.dead = true
	c.cl.Close()
	c.releaseOutLocked()
	close(c.pending)
	close(c.flushCh) // sends are gated on !dead under mu, like pending
	c.b.noteDeath(c.gen)
}

func (c *conn) kill() {
	c.mu.Lock()
	c.killLocked()
	c.mu.Unlock()
}

// recvLoop pairs responses with pending calls, capturing each response
// as a whole frame (prefix included) so the client-facing writer can
// forward it without re-encoding. Completing a call runs its op
// continuation inline on this goroutine — the hot path's only
// goroutines are the lane receivers that already exist. On a read
// error it fails the current call, keeps draining (subsequent reads
// fail instantly on the closed socket), and exits when kill closes the
// channel.
func (c *conn) recvLoop() {
	var sampled uint64
	for ca := range c.pending {
		buf := getBuf()
		p, err := c.cl.RecvFrame((*buf)[:0])
		if err != nil {
			putBuf(buf)
			c.b.inflight.Add(-1)
			ca.fail(err)
			// Kill from a fresh goroutine: kill takes mu, and a
			// submitter blocked on the full pending channel holds mu
			// until this loop consumes its call.
			go c.kill()
			continue
		}
		*buf = p
		if sampled++; sampled&15 == 0 {
			c.b.observeRTT(time.Since(ca.start))
		}
		c.b.inflight.Add(-1)
		ca.complete(buf)
	}
}

// backend is one kvserver behind the proxy: a pool of pipelined lanes,
// a circuit breaker (the monitor goroutine), and the latency digest
// that derives the hedged-read delay.
type backend struct {
	addr string
	p    *Proxy

	state    atomic.Int32
	gen      atomic.Uint64 // bumped per (re)connect; stale lane deaths are ignored
	lanes    atomic.Pointer[[]*conn]
	rr       atomic.Uint32
	inflight atomic.Int64

	scheme atomic.Pointer[string] // reclamation scheme reported by the backend's STATS
	proto  atomic.Int32           // wire version negotiated at connect (0 = pre-budget server)

	rtt       *obs.Hist
	rttN      atomic.Uint64
	rttP50Ns  atomic.Int64 // cached p50, deducted from forwarded budgets
	hedgeNs   atomic.Int64
	trips     atomic.Uint64 // breaker openings
	dialErrs  atomic.Int64  // consecutive dial failures while reconnecting
	syncMoved atomic.Uint64 // keys copied in by the last resync

	deaths chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup

	// testSubmit, when set, intercepts every lane submission — the seam
	// the allocation guard uses to complete calls synchronously without
	// sockets or servers (testing.AllocsPerRun measures process-global
	// allocations, so the real transport would drown the signal).
	testSubmit func(fr *wireBuf, ca *call) bool
}

func newBackend(p *Proxy, addr string, hist *obs.Hist) *backend {
	if hist == nil {
		hist = &obs.Hist{}
	}
	b := &backend{
		addr:   addr,
		p:      p,
		rtt:    hist,
		deaths: make(chan struct{}, 4),
		stop:   make(chan struct{}),
	}
	empty := ""
	b.scheme.Store(&empty)
	b.state.Store(stateConnecting)
	return b
}

func (b *backend) start(bootstrap bool) {
	b.wg.Add(1)
	go b.run(bootstrap)
}

func (b *backend) stopAndWait() {
	b.state.Store(stateStopped)
	close(b.stop)
	b.wg.Wait()
}

// noteDeath tells the monitor a lane of the current generation died.
func (b *backend) noteDeath(gen uint64) {
	if b.gen.Load() != gen {
		return // a lane from a torn-down pool failing late
	}
	select {
	case b.deaths <- struct{}{}:
	default:
	}
}

// suspect flips a backend out of the read set the moment a write to it
// fails, *before* the proxy acks that write — the ordering that makes
// "acked ⇒ every read-eligible replica has it" hold even in the window
// before the monitor processes the lane death.
func (b *backend) suspect() {
	if b.state.CompareAndSwap(stateHealthy, stateConnecting) {
		b.trips.Add(1)
		b.noteDeath(b.gen.Load())
	}
}

// run is the breaker/monitor loop: dial the pool, resync if this is a
// rejoin, serve until a lane dies, tear down, repeat with jittered
// backoff. Exits when the backend is removed from the topology.
func (b *backend) run(bootstrap bool) {
	defer b.wg.Done()
	first := true
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-b.stop:
			return
		default:
		}
		gen := b.gen.Add(1)
		lanes, err := b.connect(gen)
		if err != nil {
			b.dialErrs.Add(1)
			wait := time.Duration(float64(backoff) * (0.75 + 0.5*rand.Float64()))
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			select {
			case <-b.stop:
				return
			case <-time.After(wait):
			}
			continue
		}
		backoff = 50 * time.Millisecond
		b.dialErrs.Store(0)
		b.lanes.Store(&lanes)
		if first && bootstrap {
			// Initial topology: every backend starts empty and
			// consistent; there is nothing to copy and no healthy peer
			// to copy it from yet.
			b.state.Store(stateHealthy)
		} else {
			b.state.Store(stateRecovering)
			if err := b.p.resync(b); err != nil {
				b.teardown(lanes)
				continue
			}
			b.state.CompareAndSwap(stateRecovering, stateHealthy)
		}
		first = false
		select {
		case <-b.stop:
			b.teardown(lanes)
			return
		case <-b.deaths:
			b.trips.Add(1)
			b.state.Store(stateConnecting)
			b.teardown(lanes)
		}
	}
}

func (b *backend) connect(gen uint64) ([]*conn, error) {
	cfg := b.p.cfg
	lanes := make([]*conn, cfg.Lanes)
	for i := range lanes {
		cl, err := kvstore.Dial(b.addr,
			kvstore.WithDialTimeout(cfg.DialTimeout),
			kvstore.WithReadTimeout(cfg.IOTimeout),
			kvstore.WithPipelineDepth(cfg.Depth),
			kvstore.WithRetries(2),
			kvstore.WithRetryBackoff(25*time.Millisecond),
		)
		if err != nil {
			for _, c := range lanes[:i] {
				c.kill()
			}
			return nil, err
		}
		if i == 0 {
			// Lane 0 pays two round trips before the pool goes live:
			// HELLO (records whether this backend understands budget
			// prefixes — a pre-versioning server negotiates down to 0)
			// and STATS (records the reclamation scheme).
			ver, err := cl.Negotiate(context.Background())
			if err != nil {
				cl.Close()
				return nil, fmt.Errorf("cluster: %s HELLO: %w", b.addr, err)
			}
			b.proto.Store(int32(ver))
			st, err := cl.Stats(context.Background())
			if err != nil {
				cl.Close()
				return nil, fmt.Errorf("cluster: %s STATS: %w", b.addr, err)
			}
			b.scheme.Store(&st.Scheme)
		}
		c := &conn{b: b, gen: gen, cl: cl, pending: make(chan *call, cfg.Depth), flushCh: make(chan struct{}, 1)}
		lanes[i] = c
		go c.recvLoop()
		go c.flushLoop()
	}
	return lanes, nil
}

func (b *backend) teardown(lanes []*conn) {
	b.lanes.Store(nil)
	for _, c := range lanes {
		c.kill()
	}
	// Clear death signals raised by the pool just torn down so the next
	// pool does not get recycled on arrival (fresh-lane deaths re-raise:
	// their generation is current).
	for {
		select {
		case <-b.deaths:
		default:
			return
		}
	}
}

// laneFor pins same-key traffic to one lane so every replica executes
// writes to a key in the proxy's stripe order.
func (b *backend) laneFor(key uint64) *conn {
	lp := b.lanes.Load()
	if lp == nil {
		return nil
	}
	lanes := *lp
	return lanes[splitmix64(key)%uint64(len(lanes))]
}

// submitKeyed queues an op on the key's lane. No cross-lane fallback:
// order matters, and a dead lane means the pool is going down anyway.
func (b *backend) submitKeyed(key uint64, fr *wireBuf, ca *call) bool {
	if b.testSubmit != nil {
		return b.testSubmit(fr, ca)
	}
	c := b.laneFor(key)
	return c != nil && c.submit(fr, ca)
}

// submitAny queues an order-insensitive op (reads, scans, stats) on any
// live lane. Blocks at full depth — only for callers that may park
// (the client reader, the blocking round-trip helpers).
func (b *backend) submitAny(fr *wireBuf, ca *call) bool {
	if b.testSubmit != nil {
		return b.testSubmit(fr, ca)
	}
	lp := b.lanes.Load()
	if lp == nil {
		return false
	}
	lanes := *lp
	start := int(b.rr.Add(1))
	for k := 0; k < len(lanes); k++ {
		if lanes[(start+k)%len(lanes)].submit(fr, ca) {
			return true
		}
	}
	return false
}

// trySubmitAny is submitAny for continuation contexts: it never blocks,
// and reports whether the refusal was depth (full — every live lane at
// capacity) rather than death.
func (b *backend) trySubmitAny(fr *wireBuf, ca *call) (ok, full bool) {
	if b.testSubmit != nil {
		return b.testSubmit(fr, ca), false
	}
	lp := b.lanes.Load()
	if lp == nil {
		return false, false
	}
	lanes := *lp
	start := int(b.rr.Add(1))
	for k := 0; k < len(lanes); k++ {
		ok, f := lanes[(start+k)%len(lanes)].trySubmit(fr, ca)
		if ok {
			return true, false
		}
		full = full || f
	}
	return false, full
}

// roundTrip is the blocking helper the scatter paths (scan, stats,
// drain, resync) use. The returned call owns the response; the caller
// must putCall it after consuming resp.
func (b *backend) roundTrip(req []byte, keyed bool, key uint64) (*call, error) {
	fr := getWire()
	fr.b = kvstore.AppendFrame(fr.b, req)
	ca := getCall()
	ok := false
	if keyed {
		ok = b.submitKeyed(key, fr, ca)
	} else {
		ok = b.submitAny(fr, ca)
	}
	fr.unref()
	if !ok {
		putCall(ca)
		return nil, errBackendDown
	}
	<-ca.done
	if ca.err != nil {
		err := ca.err
		putCall(ca)
		return nil, err
	}
	return ca, nil
}

// Hedge-delay bookkeeping: re-derive the hedged read trigger as 2×p99,
// clamped to [250µs, 25ms]. Steady state re-derives every 512 sampled
// RTTs, but each of the first rttWarmup samples re-derives immediately —
// a freshly added or rejoined backend used to hedge on the 1ms default
// for its whole first 512-sample window, firing wild hedges on slow
// links and never firing on fast ones.
const (
	hedgeMin  = 250 * time.Microsecond
	hedgeMax  = 25 * time.Millisecond
	rttWarmup = 16
)

func (b *backend) observeRTT(d time.Duration) {
	b.rtt.Observe(uint64(d))
	if n := b.rttN.Add(1); n <= rttWarmup || n&511 == 0 {
		sum := b.rtt.Summary()
		b.rttP50Ns.Store(int64(sum.P50Us * 1e3))
		p99 := time.Duration(sum.P99Us * 1e3)
		h := 2 * p99
		if h < hedgeMin {
			h = hedgeMin
		}
		if h > hedgeMax {
			h = hedgeMax
		}
		b.hedgeNs.Store(int64(h))
	}
}

// netRTT is the running p50 round-trip estimate; the proxy deducts it
// from budgets forwarded to this backend so the server-side deadline
// accounts for the return hop.
func (b *backend) netRTT() time.Duration { return time.Duration(b.rttP50Ns.Load()) }

// hedgeDelay is how long a Get waits on the first replica before firing
// the hedge at the second.
func (b *backend) hedgeDelay() time.Duration {
	if ns := b.hedgeNs.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return time.Millisecond
}

func (b *backend) readEligible() bool  { return b.state.Load() == stateHealthy }
func (b *backend) writeEligible() bool { s := b.state.Load(); return s == stateHealthy || s == stateRecovering }
