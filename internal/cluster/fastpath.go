package cluster

// The proxy fast path: pooled per-op state machines that replace the
// PR-7 goroutine-per-op dispatch. A steady-state proxied Get or Put
// costs zero goroutine spawns and zero heap allocations — the op is
// driven entirely by goroutines that already exist (the client reader
// that starts it, the lane receivers that complete its backend calls,
// and, for a hedged read that actually fires, the op's own reusable
// timer callback), and every piece of per-op state lives in a pool:
// the op itself, its calls, its forwarded frame, and its response
// buffers.

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
)

// getOp is the state machine behind a proxied GET: primary submission,
// p99-derived hedging, sequential failover, shed pass-through, and
// budget forwarding — the exact decision tree PR-7 ran on a parked
// goroutine with timers and channel selects, folded into a small
// lock-protected struct driven by completions.
//
// Locking: mu serializes the event handlers (backendDone, the hedge
// timer callback, failover). Submissions never happen with mu held — a
// submission can complete inline (the test seam, or a lane receiver
// racing ahead) and the completion handler takes mu.
//
// Lifetime: refs counts the reasons the op must stay out of the pool —
// one per in-flight backend call, one while the hedge timer is armed
// (its callback may already be running when the op settles), and one
// held by the starting goroutine across setup. The last release
// recycles; the timer itself is kept and re-armed with Reset, so a
// pooled op's hedge costs no allocation either.
type getOp struct {
	p        *Proxy
	ca       *call    // client-facing call; answered exactly once
	frame    *wireBuf // forwarded request frame (budget-flagged iff deadline set)
	deadline time.Time

	refs atomic.Int32

	mu          sync.Mutex
	cands       [maxReplicas]*backend
	ncand       int
	next        int   // next candidate index (hedge target / failover)
	outstanding int   // backend calls in flight
	finished    bool  // client answered; late completions just recycle
	retried     bool  // readRetries counted for this op
	armed       bool  // hedge timer armed for this incarnation
	lastShed    uint8 // most recent refusal status seen

	timer *time.Timer // created once per pooled op, re-armed with Reset
}

var getOpPool = sync.Pool{New: func() any { return &getOp{} }}

// startGet begins a proxied GET on the client reader's goroutine. The
// request bytes are captured into the op's pooled frame before return;
// the caller's buffer may be reused immediately.
func (p *Proxy) startGet(req []byte, key uint64, deadline time.Time, ca *call) {
	op := getOpPool.Get().(*getOp)
	op.p, op.ca, op.deadline = p, ca, deadline
	op.ncand, op.next, op.outstanding = 0, 0, 0
	op.finished, op.retried, op.armed = false, false, false
	op.lastShed = 0
	op.refs.Store(1) // setup hold

	var cbuf [maxReplicas]*backend
	cands := p.readSet(key, cbuf[:0])
	if len(cands) == 0 {
		op.finished = true
		ca.fail(errNoReplica)
		op.release()
		return
	}
	op.ncand = copy(op.cands[:], cands)

	// Master frame: the client's request re-framed once, with the
	// budget field (when a deadline applies) in a fixed spot so each
	// backend submission can rewrite it in place instead of re-encoding.
	fr := getWire()
	if deadline.IsZero() {
		fr.b = kvstore.AppendFrame(fr.b, req)
	} else {
		fr.b = append(fr.b, 0, 0, 0, 0)
		fr.b = kvstore.AppendBudget(fr.b, req[0], time.Until(deadline))
		fr.b = append(fr.b, req[1:]...)
		sealWire(fr)
	}
	op.frame = fr

	b := op.cands[0]
	op.next = 1
	bfr := op.frameFor(b)
	if bfr == nil {
		p.deadlineRejects.Add(1)
		op.finished = true
		completeStatus(ca, kvstore.StatusDeadlineExceeded)
		op.release()
		return
	}
	bc := op.newCall(b, false)
	op.mu.Lock()
	op.outstanding++
	op.mu.Unlock()
	ok := b.submitAny(bfr, bc) // blocking is fine: reader context, backpressure intended
	if bfr != fr {
		bfr.unref()
	}
	if !ok {
		op.mu.Lock()
		op.outstanding--
		op.retried = true
		op.mu.Unlock()
		putCall(bc)
		op.release() // the failed call's ref
		b.suspect()
		p.readRetries.Add(1)
		op.failover()
		op.release()
		return
	}
	if op.ncand > 1 {
		op.arm(b.hedgeDelay())
	}
	op.release()
}

// newCall allocates (from the pool) one backend call owned by this op;
// the call holds a reference on the op until its completion handler —
// or the failed-submit path — releases it.
func (op *getOp) newCall(b *backend, hedge bool) *call {
	bc := getCall()
	bc.gop = op
	bc.srcB = b
	bc.isHedge = hedge
	op.refs.Add(1)
	return bc
}

// frameFor returns the frame to submit to b: the shared master when the
// op holds the sole reference (budget rewritten in place), or a pooled
// clone when some lane still has the master queued. nil means the
// budget — minus b's observed RTT — is already spent and the caller
// must fast-fail instead of doing dead work. Callers unref the result
// iff it is not op.frame.
func (op *getOp) frameFor(b *backend) *wireBuf {
	if op.deadline.IsZero() {
		return op.frame
	}
	rem := time.Until(op.deadline)
	if b.proto.Load() < 1 {
		if rem <= 0 {
			return nil
		}
		// Pre-budget backend: forward a plain frame (the proxy-side
		// deadline still applies), built from the master's fields.
		nf := getWire()
		nf.b = append(nf.b, 0, 0, 0, 0)
		nf.b = append(nf.b, op.frame.b[4]&^kvstore.OpFlagBudget)
		nf.b = append(nf.b, op.frame.b[9:]...)
		sealWire(nf)
		return nf
	}
	// The backend's budget clock restarts at its parse, so the hop over
	// there must be paid out of the forwarded budget here. A cold RTT
	// estimate reads 0, but the hop is never actually free — floor it,
	// or a degenerate budget survives the trip and gets executed.
	hop := b.netRTT()
	if hop < minHopCost {
		hop = minHopCost
	}
	if rem -= hop; rem <= 0 {
		return nil
	}
	if op.frame.refs.Load() == 1 {
		kvstore.RewriteFrameBudget(op.frame.b, rem)
		return op.frame
	}
	nf := getWire()
	nf.b = append(nf.b, op.frame.b...)
	kvstore.RewriteFrameBudget(nf.b, rem)
	return nf
}

// arm schedules the hedge: if the primary has not answered within its
// p99-derived delay, the next candidate gets a copy.
func (op *getOp) arm(d time.Duration) {
	op.mu.Lock()
	if op.finished || op.retried {
		// Already answered, or already failing over sequentially — a
		// hedge on top of a retry would be a third copy in flight.
		op.mu.Unlock()
		return
	}
	op.armed = true
	op.refs.Add(1)
	if op.timer == nil {
		op.timer = time.AfterFunc(d, op.hedgeFire)
	} else {
		op.timer.Reset(d)
	}
	op.mu.Unlock()
}

// disarmLocked cancels a pending hedge timer; mu held. If Stop loses —
// the callback already fired or is running — the callback keeps its
// reference and will see armed == false. The direct decrement cannot
// be the last reference: every caller holds one of its own.
func (op *getOp) disarmLocked() {
	if op.armed {
		op.armed = false
		if op.timer.Stop() {
			op.refs.Add(-1)
		}
	}
}

// hedgeFire is the timer callback: fire one speculative read at the
// next candidate. Refusals to submit are quiet — a full or dead lane
// just means the primary is waited out, matching the PR-7 flow (the
// consumed candidate is skipped if failover follows).
func (op *getOp) hedgeFire() {
	op.mu.Lock()
	if !op.armed || op.finished {
		op.mu.Unlock()
		op.release()
		return
	}
	op.armed = false
	if op.next >= op.ncand {
		op.mu.Unlock()
		op.release()
		return
	}
	b := op.cands[op.next]
	op.next++
	op.mu.Unlock()
	op.p.hedges.Add(1)

	bfr := op.frameFor(b)
	if bfr == nil {
		op.release() // no budget left for a hedge: wait the primary out
		return
	}
	bc := op.newCall(b, true)
	op.mu.Lock()
	op.outstanding++
	op.mu.Unlock()
	ok, _ := b.trySubmitAny(bfr, bc)
	if bfr != op.frame {
		bfr.unref()
	}
	if !ok {
		op.mu.Lock()
		op.outstanding--
		op.mu.Unlock()
		putCall(bc)
		op.release() // the call's ref
	}
	op.release() // the timer's ref
}

// backendDone is the continuation a lane receiver runs when one of this
// op's backend calls settles. 0, 1, or 2 of the op's calls may still be
// in flight at any moment; the first success answers the client, and a
// failure falls over only once no sibling is still racing.
func (op *getOp) backendDone(bc *call) {
	op.mu.Lock()
	op.outstanding--
	if op.finished {
		op.mu.Unlock()
		putCall(bc)
		op.release()
		return
	}
	if bc.err == nil && !isShedStatus(bc.resp) {
		op.finished = true
		if bc.isHedge {
			op.p.hedgeWins.Add(1)
		}
		if op.outstanding > 0 {
			// The losing sibling's lane claim is released by its own
			// completion; count it the way abandon() used to.
			op.p.hedgesCancelled.Add(1)
		}
		op.disarmLocked()
		op.mu.Unlock()
		transfer(bc, op.ca)
		op.release()
		return
	}
	if bc.err != nil {
		// Demote before any ack the failover may produce: a replica
		// that failed must not serve the next read.
		bc.srcB.suspect()
	} else {
		op.p.shedObserved.Add(1)
		op.lastShed = bc.resp[0]
	}
	putCall(bc)
	if op.outstanding > 0 {
		op.mu.Unlock()
		op.release()
		return
	}
	op.disarmLocked()
	if !op.retried {
		op.retried = true
		op.p.readRetries.Add(1)
	}
	op.mu.Unlock()
	op.failover()
	op.release()
}

// failover walks the remaining candidates sequentially: submit to the
// next one and return — its completion re-enters backendDone. Dead
// backends are demoted and skipped; a full lane (no room without
// blocking, which a continuation must never do) reads as proxy-side
// overload; an exhausted budget refuses the op with the not-executed
// contract intact.
func (op *getOp) failover() {
	for {
		op.mu.Lock()
		if op.finished {
			op.mu.Unlock()
			return
		}
		if op.next >= op.ncand {
			op.mu.Unlock()
			op.giveUp()
			return
		}
		b := op.cands[op.next]
		op.next++
		op.mu.Unlock()

		bfr := op.frameFor(b)
		if bfr == nil {
			op.p.deadlineRejects.Add(1)
			op.mu.Lock()
			op.lastShed = kvstore.StatusDeadlineExceeded
			op.mu.Unlock()
			op.giveUp()
			return
		}
		bc := op.newCall(b, false)
		op.mu.Lock()
		op.outstanding++
		op.mu.Unlock()
		ok, full := b.trySubmitAny(bfr, bc)
		if bfr != op.frame {
			bfr.unref()
		}
		if ok {
			return
		}
		op.mu.Lock()
		op.outstanding--
		if full {
			op.lastShed = kvstore.StatusOverloaded
		}
		op.mu.Unlock()
		putCall(bc)
		op.release()
		if !full {
			b.suspect()
		}
	}
}

// giveUp answers the client after every candidate was exhausted: the
// last refusal status passes through (shed semantics preserved), or the
// read fails outright.
func (op *getOp) giveUp() {
	op.mu.Lock()
	if op.finished {
		op.mu.Unlock()
		return
	}
	op.finished = true
	shed := op.lastShed
	op.mu.Unlock()
	if shed != 0 {
		completeStatus(op.ca, shed)
		return
	}
	op.ca.fail(errNoReplica)
}

func (op *getOp) release() {
	if op.refs.Add(-1) == 0 {
		if op.frame != nil {
			op.frame.unref()
			op.frame = nil
		}
		for i := 0; i < op.ncand; i++ {
			op.cands[i] = nil
		}
		op.p, op.ca = nil, nil
		getOpPool.Put(op)
	}
}

// writeOp is the state machine behind a proxied PUT/DEL. All
// submissions happen on the starting goroutine under the key's stripe
// lock — the stripe covers lane submission only, so replicas execute
// same-key writes in one global order while completions settle
// lock-free. The last replica completion to arrive runs the
// settlement: demote the replicas that missed the write before the
// client can see the ack, then pick the winner.
type writeOp struct {
	p     *Proxy
	ca    *call
	frame *wireBuf
	op    uint8

	// outstanding counts in-flight replica calls plus one setup hold;
	// the decrement chain orders every completer's writes before the
	// settling goroutine's reads.
	outstanding atomic.Int32

	n       int
	calls   [2 * maxReplicas]*call
	backs   [2 * maxReplicas]*backend
	healthy [2 * maxReplicas]bool
	sheds   [2 * maxReplicas]bool
}

var writeOpPool = sync.Pool{New: func() any { return &writeOp{} }}

// minWriteBudget is the cheapest plausible proxy→replica round trip; a
// budgeted write with less than this remaining can never be acked in
// time, and unlike a read it cannot be refused downstream.
const minWriteBudget = 20 * time.Microsecond

// minHopCost floors the per-hop budget deduction for forwarded reads
// when the RTT estimator is still cold (it reads 0 before warm-up).
const minHopCost = 20 * time.Microsecond

// startWrite begins a proxied PUT/DEL on the client reader's goroutine.
//
// Budgets gate writes only *before* submission: an expired budget is
// refused here, with nothing on any wire, so StatusDeadlineExceeded
// keeps meaning "no replica executed this". The forwarded frame is
// unbudgeted — once a write is in flight to a replica set, a
// per-replica deadline expiry would mean divergence, exactly what the
// ack invariant forbids.
func (p *Proxy) startWrite(req []byte, key uint64, deadline time.Time, ca *call) {
	// A write whose remaining budget cannot cover even a loopback round
	// trip is dead on arrival; it must be refused *here* because the
	// forwarded frame carries no budget for a backend to notice. (The
	// old goroutine-per-op dispatch got this check for free — the spawn
	// latency alone outlived a degenerate budget. Inline dispatch runs
	// the check within nanoseconds of parsing, so it needs the floor.)
	if !deadline.IsZero() && time.Until(deadline) < minWriteBudget {
		p.deadlineRejects.Add(1)
		completeStatus(ca, kvstore.StatusDeadlineExceeded)
		return
	}
	op := writeOpPool.Get().(*writeOp)
	op.p, op.ca, op.op = p, ca, req[0]
	op.n = 0
	op.outstanding.Store(1) // setup hold: no settlement while still submitting

	fr := getWire()
	fr.b = kvstore.AppendFrame(fr.b, req)
	op.frame = fr

	var bbuf [2 * maxReplicas]*backend
	var hbuf [2 * maxReplicas]bool
	stripe := &p.locks[key&(stripeCount-1)]
	stripe.Lock()
	set, elig := p.writeSet(key, bbuf[:0], hbuf[:0])
	for i, b := range set {
		bc := getCall()
		bc.wop = op
		bc.srcB = b
		n := op.n
		op.calls[n], op.backs[n], op.healthy[n] = bc, b, elig[i]
		op.sheds[n] = false
		op.n = n + 1
		op.outstanding.Add(1)
		if !b.submitKeyed(key, fr, bc) {
			op.n = n
			op.calls[n] = nil
			op.outstanding.Add(-1) // cannot hit 0: setup hold outstanding
			bc.wop = nil
			putCall(bc)
			if elig[i] {
				b.suspect()
			}
		}
	}
	stripe.Unlock()
	if op.outstanding.Add(-1) == 0 { // release the setup hold
		op.settle()
	}
}

// backendDone is the continuation a lane receiver runs per replica
// completion; the results are read all at once by settle.
func (op *writeOp) backendDone(_ *call) {
	if op.outstanding.Add(-1) == 0 {
		op.settle()
	}
}

// settle runs exactly once, on whichever goroutine retired the op's
// last outstanding count. It is the PR-7 doWrite epilogue verbatim:
// demote failures and sheds before the ack, degrade if short of the
// full set, prefer a DEL answer that found the key, all-refused passes
// StatusOverloaded through with no demotions (the cluster-wide
// not-executed case).
func (op *writeOp) settle() {
	p := op.p
	n := op.n
	if n == 0 {
		op.ca.fail(errNoReplica)
		op.recycle()
		return
	}
	okCount, shedCount := 0, 0
	for i := 0; i < n; i++ {
		bc := op.calls[i]
		if bc.err != nil {
			// Demote before the client can see the ack: a replica that
			// missed this write must not serve the next read.
			if op.healthy[i] {
				op.backs[i].suspect()
			}
			putCall(bc)
			op.calls[i] = nil
			continue
		}
		if isShedStatus(bc.resp) {
			p.shedObserved.Add(1)
			op.sheds[i] = true
			shedCount++
			continue
		}
		okCount++
	}
	if okCount == 0 {
		for i := 0; i < n; i++ {
			if op.calls[i] != nil {
				putCall(op.calls[i])
				op.calls[i] = nil
			}
		}
		if shedCount > 0 {
			// Every live replica refused before executing: the write
			// happened nowhere, so nobody diverged and nobody is demoted.
			completeStatus(op.ca, kvstore.StatusOverloaded)
		} else {
			op.ca.fail(errNoReplica)
		}
		op.recycle()
		return
	}
	// At least one replica holds the write; a replica that shed it
	// missed it and must leave the read set before the ack, exactly
	// like a transport failure.
	for i := 0; i < n; i++ {
		if op.sheds[i] {
			if op.healthy[i] {
				op.backs[i].suspect()
			}
			putCall(op.calls[i])
			op.calls[i] = nil
		}
	}
	if okCount < n {
		p.degraded.Add(1)
	}
	var winner *call
	for i := 0; i < n; i++ {
		c := op.calls[i]
		if c == nil {
			continue
		}
		op.calls[i] = nil
		if winner == nil {
			winner = c
			continue
		}
		if op.op == kvstore.OpDel && winner.resp[0] != kvstore.StatusOK && c.resp[0] == kvstore.StatusOK {
			putCall(winner)
			winner = c
			continue
		}
		putCall(c)
	}
	transfer(winner, op.ca)
	op.recycle()
}

func (op *writeOp) recycle() {
	op.frame.unref()
	op.frame = nil
	for i := 0; i < op.n; i++ {
		op.backs[i] = nil
	}
	op.p, op.ca = nil, nil
	writeOpPool.Put(op)
}
