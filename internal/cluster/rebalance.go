package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/kvstore"
)

// RebalanceReport is the CLUSTER_ADD / CLUSTER_DRAIN / CLUSTER_REMOVE
// response: how much data a topology change actually shuffled.
type RebalanceReport struct {
	Addr       string `json:"addr"`
	KeysMoved  uint64 `json:"keys_moved"`
	DurationMs int64  `json:"duration_ms"`
}

func getReqB(dst []byte, k uint64) []byte {
	return kvstore.AppendU64(append(dst[:0], kvstore.OpGet), k)
}

func putReqB(dst []byte, k, v uint64) []byte {
	return kvstore.AppendU64(kvstore.AppendU64(append(dst[:0], kvstore.OpPut), k), v)
}

func delReqB(dst []byte, k uint64) []byte {
	return kvstore.AppendU64(append(dst[:0], kvstore.OpDel), k)
}

// placeTopo is the placement rebalancing works toward: the pending
// topology when a migration is in flight, else the current one.
func (p *Proxy) placeTopo() *topology {
	if nt := p.next.Load(); nt != nil {
		return nt
	}
	return p.topo.Load()
}

// authoritativeGet reads key from the first read-eligible replica that
// answers, through the key-pinned lane so the read orders behind every
// client write already submitted for the key. This is the value
// rebalancing propagates: by the ack invariant it reflects all acked
// writes.
func (p *Proxy) authoritativeGet(k uint64) (uint64, bool, error) {
	t := p.topo.Load()
	var idbuf [maxReplicas]int32
	var req [9]byte
	reqb := getReqB(req[:0], k)
	for _, id := range t.ring.Lookup(k, p.replicas(), idbuf[:0]) {
		b := t.backs[id]
		if !b.readEligible() {
			continue
		}
		rc, err := b.roundTrip(reqb, true, k)
		if err != nil {
			continue
		}
		status := rc.resp[0]
		if status == kvstore.StatusOK {
			v, ok := kvstore.PayloadU64(rc.resp, 1)
			putCall(rc)
			if !ok {
				return 0, false, errors.New("cluster: short GET response")
			}
			return v, true, nil
		}
		putCall(rc)
		if status == kvstore.StatusNotFound {
			return 0, false, nil
		}
	}
	return 0, false, errNoReplica
}

// forEachKey enumerates the union of the sources' key spaces in
// ascending order via resumable SCAN windows. The horizon rule makes
// the merge exact under concurrent churn: when a source fills its
// window, keys beyond its last returned key may be missing from that
// reply, so only keys up to the smallest such last key are visited this
// round and the cursor resumes just past it.
func (p *Proxy) forEachKey(sources []*backend, fn func(k uint64) error) error {
	if len(sources) == 0 {
		return errNoReplica
	}
	cursor := kvstore.MinKey
	var reqb [13]byte
	keys := make([]uint64, 0, 4096)
	type sres struct {
		keys []uint64
		full bool
		ok   bool
	}
	results := make([]sres, len(sources))
	for {
		req := scanReq(reqb[:0], cursor, kvstore.MaxScanLimit)
		var wg sync.WaitGroup
		for i, b := range sources {
			wg.Add(1)
			go func(i int, b *backend) {
				defer wg.Done()
				results[i] = sres{}
				rc, err := b.roundTrip(req, false, 0)
				if err != nil {
					return
				}
				defer putCall(rc)
				if rc.resp[0] != kvstore.StatusOK {
					return
				}
				n, ok := kvstore.PayloadU32(rc.resp, 1)
				if !ok {
					return
				}
				ks := make([]uint64, 0, n)
				off := 5
				for j := uint32(0); j < n; j++ {
					k, ok := kvstore.PayloadU64(rc.resp, off)
					if !ok {
						return
					}
					ks = append(ks, k)
					off += 16
				}
				results[i] = sres{keys: ks, full: n == kvstore.MaxScanLimit, ok: true}
			}(i, b)
		}
		wg.Wait()
		horizon := uint64(1<<64 - 1)
		anyOK, anyFull := false, false
		keys = keys[:0]
		for _, r := range results {
			if !r.ok {
				return errors.New("cluster: rebalance scan lost a source")
			}
			anyOK = true
			keys = append(keys, r.keys...)
			if r.full {
				anyFull = true
				if last := r.keys[len(r.keys)-1]; last < horizon {
					horizon = last
				}
			}
		}
		if !anyOK {
			return errNoReplica
		}
		sortU64(keys)
		var prev uint64
		seen := false
		for _, k := range keys {
			if anyFull && k > horizon {
				break
			}
			if seen && k == prev {
				continue
			}
			seen, prev = true, k
			if err := fn(k); err != nil {
				return err
			}
		}
		if !anyFull || horizon >= kvstore.MaxKey {
			return nil
		}
		cursor = horizon + 1
	}
}

func sortU64(a []uint64) {
	// Small shell sort: the slices are at most a few windows long and
	// mostly presorted (per-source runs).
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			for j := i; j >= gap && a[j-gap] > a[j]; j -= gap {
				a[j-gap], a[j] = a[j], a[j-gap]
			}
		}
	}
}

// copyKeyTo copies the authoritative value of k to backend b under the
// key's stripe lock. Returns 1 if the copy actually inserted (the
// "keys moved" unit). A key deleted concurrently is skipped — the
// stripe lock makes the read-then-put atomic against client writes, so
// no stale value can resurrect.
func (p *Proxy) copyKeyTo(k uint64, b *backend) (uint64, error) {
	stripe := &p.locks[k&(stripeCount-1)]
	stripe.Lock()
	defer stripe.Unlock()
	v, found, err := p.authoritativeGet(k)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, nil
	}
	var req [17]byte
	rc, err := b.roundTrip(putReqB(req[:0], k, v), true, k)
	if err != nil {
		return 0, err
	}
	inserted := len(rc.resp) >= 2 && rc.resp[0] == kvstore.StatusOK && rc.resp[1] == 1
	putCall(rc)
	if inserted {
		return 1, nil
	}
	return 0, nil
}

// deleteKeyOn removes k from backend b if the authoritative view says
// it should not be there (or pred says b no longer owns it).
func (p *Proxy) deleteKeyOn(k uint64, b *backend, ownership bool) error {
	stripe := &p.locks[k&(stripeCount-1)]
	stripe.Lock()
	defer stripe.Unlock()
	if ownership {
		_, found, err := p.authoritativeGet(k)
		if err != nil {
			return err
		}
		if found {
			return nil
		}
	}
	var req [9]byte
	rc, err := b.roundTrip(delReqB(req[:0], k), true, k)
	if err != nil {
		return err
	}
	putCall(rc)
	return nil
}

func backsContain(t *topology, ids []int32, b *backend) bool {
	for _, id := range ids {
		if t.backs[id] == b {
			return true
		}
	}
	return false
}

// resync brings a rejoining or newly added backend up to date before it
// may serve reads: every key whose placement includes b gets the
// authoritative value copied in, then the reconcile pass deletes keys b
// still holds from before it went away — either because ownership moved
// or because the key was deleted while b was gone. Runs concurrently
// with client traffic; stripe locks plus key-pinned lanes serialize it
// against writes. Called by the backend monitor (rejoins) and by
// AddBackend (joins, through the monitor's first connect).
func (p *Proxy) resync(b *backend) error {
	var sources []*backend
	for _, s := range p.topo.Load().backs {
		if s != b && s.readEligible() {
			sources = append(sources, s)
		}
	}
	if len(sources) == 0 {
		// Nothing read-eligible to copy from: nothing acked is
		// recoverable anyway, so b's own contents are the best state.
		b.syncMoved.Store(0)
		return nil
	}
	var moved uint64
	var idbuf [maxReplicas]int32
	err := p.forEachKey(sources, func(k uint64) error {
		pt := p.placeTopo()
		if !backsContain(pt, pt.ring.Lookup(k, p.replicas(), idbuf[:0]), b) {
			return nil
		}
		n, err := p.copyKeyTo(k, b)
		moved += n
		return err
	})
	if err != nil {
		return err
	}
	// Reconcile: b's leftover keys that the cluster no longer has (or
	// that b no longer owns) must go, or a later read could resurrect a
	// deleted key once b turns healthy.
	err = p.forEachKey([]*backend{b}, func(k uint64) error {
		pt := p.placeTopo()
		owns := backsContain(pt, pt.ring.Lookup(k, p.replicas(), idbuf[:0]), b)
		if !owns {
			return p.deleteKeyOn(k, b, false)
		}
		return p.deleteKeyOn(k, b, true)
	})
	if err != nil {
		return err
	}
	b.syncMoved.Store(moved)
	p.keysMoved.Add(moved)
	return nil
}

// AddBackend joins addr to the ring: the node connects, resyncs its
// share of the key space (writes already fan to it mid-migration), and
// only then enters the read path when the pending topology is swapped
// in. Blocks until the node is healthy, the sync deadline passes, or
// ctx is cancelled — cancellation rolls the pending topology back and
// leaves the ring as it was.
func (p *Proxy) AddBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	start := time.Now()
	p.tmu.Lock()
	if p.next.Load() != nil {
		p.tmu.Unlock()
		return RebalanceReport{}, errBusy
	}
	t := p.topo.Load()
	if t.ring.NodeID(addr) >= 0 {
		p.tmu.Unlock()
		return RebalanceReport{}, fmt.Errorf("cluster: backend %s already present", addr)
	}
	b := newBackend(p, addr, p.reg.Hist("cluster/backend/"+addr+"/rtt"))
	p.byAddr[addr] = b
	nodes := append(append([]string{}, t.ring.Nodes...), addr)
	backs := append(append([]*backend{}, t.backs...), b)
	nt := &topology{ring: BuildRing(nodes, p.cfg.VNodes), backs: backs}
	p.next.Store(nt)
	p.registerBackendMetrics(b)
	b.start(false)
	p.tmu.Unlock()

	deadline := time.Now().Add(60 * time.Second)
	for b.state.Load() != stateHealthy {
		if err := ctx.Err(); err != nil || time.Now().After(deadline) {
			p.tmu.Lock()
			p.next.Store(nil)
			delete(p.byAddr, addr)
			p.tmu.Unlock()
			b.stopAndWait()
			if err != nil {
				return RebalanceReport{}, fmt.Errorf("cluster: add %s: %w", addr, context.Cause(ctx))
			}
			return RebalanceReport{}, fmt.Errorf("cluster: backend %s did not sync in time", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	p.tmu.Lock()
	p.topo.Store(nt)
	p.next.Store(nil)
	p.tmu.Unlock()
	return RebalanceReport{
		Addr:       addr,
		KeysMoved:  b.syncMoved.Load(),
		DurationMs: time.Since(start).Milliseconds(),
	}, nil
}

// DrainBackend hands addr's keys off to the ring minus addr, then drops
// it from the topology. The node keeps serving reads as a member until
// every key it owned exists on its promoted replacement, so there is no
// window where a read-eligible replica lacks acked data. The backend
// process itself stays up — its own DRAIN/leak check is the operator's
// last step.
func (p *Proxy) DrainBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	return p.retire(ctx, addr)
}

// RemoveBackend drops addr and re-replicates its keys from the
// surviving replicas. Meant for a node that is already dead: the node
// is simply skipped as a copy source (it is not read-eligible), and the
// survivors rebuild full replication.
func (p *Proxy) RemoveBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	return p.retire(ctx, addr)
}

func (p *Proxy) retire(ctx context.Context, addr string) (RebalanceReport, error) {
	start := time.Now()
	p.tmu.Lock()
	if p.next.Load() != nil {
		p.tmu.Unlock()
		return RebalanceReport{}, errBusy
	}
	t := p.topo.Load()
	id := t.ring.NodeID(addr)
	if id < 0 {
		p.tmu.Unlock()
		return RebalanceReport{}, fmt.Errorf("cluster: unknown backend %s", addr)
	}
	if len(t.ring.Nodes) <= 1 {
		p.tmu.Unlock()
		return RebalanceReport{}, errors.New("cluster: cannot remove the last backend")
	}
	b := t.backs[id]
	nodes := make([]string, 0, len(t.ring.Nodes)-1)
	backs := make([]*backend, 0, len(t.backs)-1)
	for i, n := range t.ring.Nodes {
		if int32(i) == id {
			continue
		}
		nodes = append(nodes, n)
		backs = append(backs, t.backs[i])
	}
	nt := &topology{ring: BuildRing(nodes, p.cfg.VNodes), backs: backs}
	p.next.Store(nt)
	p.tmu.Unlock()

	moved, err := p.handoff(ctx, t, nt)
	p.tmu.Lock()
	p.next.Store(nil)
	if err == nil {
		p.topo.Store(nt)
		delete(p.byAddr, addr)
	}
	p.tmu.Unlock()
	if err != nil {
		return RebalanceReport{}, fmt.Errorf("cluster: handoff from %s: %w", addr, err)
	}
	b.stopAndWait()
	p.keysMoved.Add(moved)
	return RebalanceReport{
		Addr:       addr,
		KeysMoved:  moved,
		DurationMs: time.Since(start).Milliseconds(),
	}, nil
}

// handoff copies every key whose pending replica set gained a member to
// that member, sourcing values authoritatively under the key's stripe.
// Keys whose replica set is unchanged (the vast majority, by the ring's
// minimal-movement property) are skipped without taking any lock.
// Cancelling ctx stops the copy between keys; the retire caller rolls
// the pending topology back, and keys already copied are harmless
// extras the ring no longer routes to.
func (p *Proxy) handoff(ctx context.Context, old, nt *topology) (uint64, error) {
	var sources []*backend
	for _, s := range old.backs {
		if s.readEligible() {
			sources = append(sources, s)
		}
	}
	var moved uint64
	var ob, nb [maxReplicas]int32
	err := p.forEachKey(sources, func(k uint64) error {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		oldSet := old.ring.Lookup(k, p.replicas(), ob[:0])
		newSet := nt.ring.Lookup(k, p.replicas(), nb[:0])
		for _, nid := range newSet {
			tb := nt.backs[nid]
			if backsContain(old, oldSet, tb) {
				continue
			}
			n, err := p.copyKeyTo(k, tb)
			if err != nil {
				return err
			}
			moved += n
		}
		return nil
	})
	return moved, err
}
