package reclaim

import (
	"sync/atomic"

	"repro/internal/arena"
)

// PTP is the paper's pass-the-pointer scheme (§3.1, Algorithm 2): the
// protection loop of HP/PTB combined with a retire that never builds a
// thread-local retired list. Instead, retire scans the published
// hazardous pointers and, on a match, *exchanges* the object into the
// handover slot paired with that hazardous pointer, adopting whatever
// pointer the exchange displaced and continuing the scan further down.
// The thread that clears a hazardous pointer drains its handover slot.
//
// At any time at most one object per (thread, hp-index) pair sits in the
// handover matrix and each scanning thread carries at most one object,
// so retired-but-undeleted objects number at most t×(H+1) — the linear
// bound of the paper's Table 1.
type PTP struct {
	counters
	env       Env
	cfg       Config
	hp        *hpArrays
	handovers [][]atomic.Uint64

	// DrainOnClear enables Algorithm 2 lines 15–19: Clear also drains
	// the paired handover slot. The paper marks those lines optional —
	// without them objects can sit parked until the slot's next use,
	// affecting neither correctness nor the bound. Default true; flip
	// only before the scheme is shared (ablation benchmarks use this).
	DrainOnClear bool
}

func init() {
	Register(Registration{
		Name:  "ptp",
		Rank:  3,
		Build: func(env Env, opts Options) Scheme { return newPTP(env, opts) },
	})
}

// newPTP builds a pass-the-pointer instance; construct via New("ptp", …).
func newPTP(env Env, cfg Options) *PTP {
	cfg.defaults()
	p := &PTP{
		env:          env,
		cfg:          cfg,
		hp:           newHPArrays(cfg.MaxThreads, cfg.MaxHPs),
		handovers:    make([][]atomic.Uint64, cfg.MaxThreads),
		DrainOnClear: true,
	}
	for i := range p.handovers {
		p.handovers[i] = make([]atomic.Uint64, cfg.MaxHPs+8)
	}
	return p
}

// Name returns "ptp".
func (*PTP) Name() string { return "ptp" }

// BeginOp is a no-op for PTP.
func (*PTP) BeginOp(int) {}

// EndOp is a no-op for PTP.
func (*PTP) EndOp(int) {}

// GetProtected implements Algorithm 2 lines 4–11 (identical to HP/PTB).
func (p *PTP) GetProtected(tid, idx int, addr *atomic.Uint64) arena.Handle {
	return p.hp.getProtected(tid, idx, addr)
}

// Protect publishes an already-pinned handle.
func (p *PTP) Protect(tid, idx int, v arena.Handle) { p.hp.publish(tid, idx, v) }

// Clear implements Algorithm 2 lines 13–20: clear the hazardous pointer,
// then drain the paired handover slot, taking over the responsibility to
// delete whatever object was parked there.
func (p *PTP) Clear(tid, idx int) {
	p.hp.clear(tid, idx)
	if !p.DrainOnClear {
		return
	}
	if p.handovers[tid][idx].Load() != 0 {
		if v := arena.Handle(p.handovers[tid][idx].Swap(0)); !v.IsNil() {
			p.handoverOrDelete(tid, v, tid)
		}
	}
}

// ClearAll clears and drains every slot of the thread.
func (p *PTP) ClearAll(tid int) {
	for i := 0; i < p.cfg.MaxHPs; i++ {
		p.Clear(tid, i)
	}
}

// OnAlloc is a no-op for PTP.
func (*PTP) OnAlloc(arena.Handle) {}

// Retire implements Algorithm 2 line 22.
func (p *PTP) Retire(tid int, v arena.Handle) {
	p.onRetire(tid, v)
	p.handoverOrDelete(tid, v.Unmarked(), 0)
}

// handoverOrDelete is Algorithm 2 lines 24–37: push the pointer forward
// through the handover matrix until it either displaces nothing (parked)
// or survives the whole scan unprotected (deleted). tid is the calling
// thread (for the allocator's free path); start is the thread row the
// scan begins at.
func (p *PTP) handoverOrDelete(tid int, ptr arena.Handle, start int) {
	for it := start; it < p.cfg.MaxThreads; it++ {
		for idx := 0; idx < p.cfg.MaxHPs; {
			if p.hp.read(it, idx) == ptr {
				ptr = arena.Handle(p.handovers[it][idx].Swap(uint64(ptr)))
				if ptr.IsNil() {
					return
				}
				// The displaced pointer may itself be protected by
				// this very slot; re-check before moving on.
				if p.hp.read(it, idx) == ptr {
					continue
				}
			}
			idx++
		}
	}
	p.env.Free(tid, ptr)
	p.onFree(tid, ptr)
}

// RetireDepth reports how many objects are parked in tid's handover
// slots (PTP keeps no thread-local retired list; parked objects are its
// only deferred state).
func (p *PTP) RetireDepth(tid int) int {
	n := 0
	for idx := 0; idx < p.cfg.MaxHPs; idx++ {
		if p.handovers[tid][idx].Load() != 0 {
			n++
		}
	}
	return n
}

// Flush drains the thread's own handover slots.
func (p *PTP) Flush(tid int) {
	for idx := 0; idx < p.cfg.MaxHPs; idx++ {
		if v := arena.Handle(p.handovers[tid][idx].Swap(0)); !v.IsNil() {
			p.handoverOrDelete(tid, v, 0)
		}
	}
}

// ScanStats reports the hazardous-pointer matrix's protection elisions
// (PTP has no scan engine; only the Elisions field is meaningful).
func (p *PTP) ScanStats() ScanStats { return ScanStats{Elisions: p.hp.elisions()} }

// Stats reports counters.
func (p *PTP) Stats() Stats { return p.snapshot() }
