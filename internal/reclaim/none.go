package reclaim

import (
	"sync/atomic"

	"repro/internal/arena"
)

// None is the leaking baseline: protection is free, retire leaks. This is
// the "no reclamation" configuration the paper normalizes queue
// throughput against in Figures 1 and 2.
type None struct {
	counters
}

func init() {
	Register(Registration{
		Name:    "none",
		Aliases: []string{"leak"},
		Rank:    0,
		Build:   func(env Env, opts Options) Scheme { return newNone(env, opts) },
	})
	Register(Registration{
		Name:   "unsafe",
		Hidden: true, // constructible for the UAF demo, not benchmarked
		Build:  func(env Env, opts Options) Scheme { return newUnsafe(env, opts) },
	})
}

// newNone builds the leaking baseline scheme.
func newNone(Env, Options) *None { return &None{} }

// Name returns "none".
func (*None) Name() string { return "none" }

// BeginOp is a no-op.
func (*None) BeginOp(int) {}

// EndOp is a no-op.
func (*None) EndOp(int) {}

// GetProtected just loads the handle; nothing is ever freed, so no
// protection is necessary.
func (*None) GetProtected(_, _ int, addr *atomic.Uint64) arena.Handle {
	return arena.Handle(addr.Load())
}

// Protect is a no-op.
func (*None) Protect(int, int, arena.Handle) {}

// Clear is a no-op.
func (*None) Clear(int, int) {}

// ClearAll is a no-op.
func (*None) ClearAll(int) {}

// Retire leaks the object, counting it as permanently unreclaimed.
func (n *None) Retire(tid int, h arena.Handle) { n.onRetire(tid, h) }

// OnAlloc is a no-op.
func (*None) OnAlloc(arena.Handle) {}

// Flush is a no-op.
func (*None) Flush(int) {}

// RetireDepth is 0: None keeps no retire list (the leak is global and
// visible as Stats().RetiredNotFreed).
func (*None) RetireDepth(int) int { return 0 }

// Stats reports the leak count in RetiredNotFreed.
func (n *None) Stats() Stats { return n.snapshot() }

// Unsafe frees on retire without any protection handshake. It is *wrong*
// by construction and exists so tests and the uafdemo example can show
// the arena's generation check catching the resulting use-after-free,
// the fault the paper attributes to reclaiming memory the system
// allocator may reuse.
type Unsafe struct {
	counters
	env Env
}

// newUnsafe builds the deliberately broken scheme.
func newUnsafe(env Env, _ Options) *Unsafe { return &Unsafe{env: env} }

// Name returns "unsafe".
func (*Unsafe) Name() string { return "unsafe" }

// BeginOp is a no-op.
func (*Unsafe) BeginOp(int) {}

// EndOp is a no-op.
func (*Unsafe) EndOp(int) {}

// GetProtected loads without protecting — the bug.
func (*Unsafe) GetProtected(_, _ int, addr *atomic.Uint64) arena.Handle {
	return arena.Handle(addr.Load())
}

// Protect is a no-op — the bug.
func (*Unsafe) Protect(int, int, arena.Handle) {}

// Clear is a no-op.
func (*Unsafe) Clear(int, int) {}

// ClearAll is a no-op.
func (*Unsafe) ClearAll(int) {}

// Retire frees immediately, regardless of concurrent readers.
func (u *Unsafe) Retire(tid int, h arena.Handle) {
	u.onRetire(tid, h)
	u.env.Free(tid, h.Unmarked())
	u.onFree(tid, h)
}

// OnAlloc is a no-op.
func (*Unsafe) OnAlloc(arena.Handle) {}

// Flush is a no-op.
func (*Unsafe) Flush(int) {}

// RetireDepth is 0: Unsafe frees eagerly and defers nothing.
func (*Unsafe) RetireDepth(int) int { return 0 }

// Stats reports counters.
func (u *Unsafe) Stats() Stats { return u.snapshot() }
