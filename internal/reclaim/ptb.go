package reclaim

import (
	"sync/atomic"

	"repro/internal/arena"
)

// PTB is Herlihy–Luchangco–Moir pass-the-buck. Guards are the hazardous
// pointers; Liberate scans the values the caller wants freed and, for
// each value still guarded, hands the buck by exchanging the value into
// the guard's handoff box, adopting the displaced value into its working
// set. Values that survive the guard scan unguarded are freed; values
// the pass could not finish with stay in the caller's pending list for
// the next Liberate — this carrying of per-thread lists is what gives
// PTB its O(H·t²) bound, versus PTP's in-place forwarding.
//
// The original uses a double-word CAS on (value, version) handoff slots;
// here object identity is a 32-bit arena slot index, so a (index:32,
// version:32) pair fits one word and a plain exchange carries the full
// 64-bit handle (see DESIGN.md substitutions).
type PTB struct {
	counters
	env     Env
	cfg     Config
	hp      *hpArrays
	boxes   [][]atomic.Uint64
	pending [][]arena.Handle
}

func init() {
	Register(Registration{
		Name:  "ptb",
		Rank:  2,
		Build: func(env Env, opts Options) Scheme { return newPTB(env, opts) },
	})
}

// newPTB builds a pass-the-buck instance; construct via New("ptb", …).
func newPTB(env Env, cfg Options) *PTB {
	cfg.defaults()
	p := &PTB{
		env:     env,
		cfg:     cfg,
		hp:      newHPArrays(cfg.MaxThreads, cfg.MaxHPs),
		boxes:   make([][]atomic.Uint64, cfg.MaxThreads),
		pending: make([][]arena.Handle, cfg.MaxThreads),
	}
	for i := range p.boxes {
		p.boxes[i] = make([]atomic.Uint64, cfg.MaxHPs+8)
	}
	return p
}

// Name returns "ptb".
func (*PTB) Name() string { return "ptb" }

// BeginOp is a no-op for PTB.
func (*PTB) BeginOp(int) {}

// EndOp is a no-op for PTB.
func (*PTB) EndOp(int) {}

// GetProtected posts a guard for the value read from addr.
func (p *PTB) GetProtected(tid, idx int, addr *atomic.Uint64) arena.Handle {
	return p.hp.getProtected(tid, idx, addr)
}

// Protect posts a guard for an already-pinned handle.
func (p *PTB) Protect(tid, idx int, v arena.Handle) { p.hp.publish(tid, idx, v) }

// Clear drops the guard and adopts anything parked in its handoff box.
func (p *PTB) Clear(tid, idx int) {
	p.hp.clear(tid, idx)
	if p.boxes[tid][idx].Load() != 0 {
		if v := arena.Handle(p.boxes[tid][idx].Swap(0)); !v.IsNil() {
			p.pending[tid] = append(p.pending[tid], v)
		}
	}
}

// ClearAll drops every guard of the thread.
func (p *PTB) ClearAll(tid int) {
	for i := 0; i < p.cfg.MaxHPs; i++ {
		p.Clear(tid, i)
	}
}

// OnAlloc is a no-op for PTB.
func (*PTB) OnAlloc(arena.Handle) {}

// Retire adds the value to the caller's set and runs Liberate.
func (p *PTB) Retire(tid int, v arena.Handle) {
	p.onRetire(tid, v)
	p.pending[tid] = append(p.pending[tid], v.Unmarked())
	p.liberate(tid)
}

func (p *PTB) liberate(tid int) {
	list := p.pending[tid]
	p.pending[tid] = nil
	// Each processed element is either freed or parked in a box; parking
	// can displace an element back into the working set, so cap the work
	// per pass and carry the remainder.
	budget := len(list) + p.cfg.MaxThreads*p.cfg.MaxHPs
	for i := 0; i < len(list); i++ {
		if i >= budget {
			p.pending[tid] = append(p.pending[tid], list[i:]...)
			return
		}
		v := list[i]
		g, gi, guarded := p.findGuard(v)
		if !guarded {
			p.env.Free(tid, v)
			p.onFree(tid, v)
			continue
		}
		old := arena.Handle(p.boxes[g][gi].Swap(uint64(v)))
		if !old.IsNil() && old != v {
			list = append(list, old)
		}
	}
}

func (p *PTB) findGuard(v arena.Handle) (t, idx int, ok bool) {
	for t := 0; t < p.cfg.MaxThreads; t++ {
		for i := 0; i < p.cfg.MaxHPs; i++ {
			if p.hp.read(t, i) == v {
				return t, i, true
			}
		}
	}
	return 0, 0, false
}

// RetireDepth reports the length of tid's pending list.
func (p *PTB) RetireDepth(tid int) int { return len(p.pending[tid]) }

// Flush reruns Liberate on the pending list.
func (p *PTB) Flush(tid int) {
	if len(p.pending[tid]) > 0 {
		p.liberate(tid)
	}
	// Also drain this thread's own boxes at quiescence.
	for idx := 0; idx < p.cfg.MaxHPs; idx++ {
		if v := arena.Handle(p.boxes[tid][idx].Swap(0)); !v.IsNil() {
			p.pending[tid] = append(p.pending[tid], v)
		}
	}
	if len(p.pending[tid]) > 0 {
		p.liberate(tid)
	}
}

// ScanStats reports the guard matrix's protection elisions (PTB has no
// scan engine; only the Elisions field is meaningful).
func (p *PTB) ScanStats() ScanStats { return ScanStats{Elisions: p.hp.elisions()} }

// Stats reports counters.
func (p *PTB) Stats() Stats { return p.snapshot() }
