package reclaim

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/rt"
)

const ebrIdle = ^uint64(0)

type ebrItem struct {
	h     arena.Handle
	epoch uint64
}

// EBR is classic three-epoch epoch-based reclamation (Fraser / RCU
// family). Protection is a per-operation epoch announcement — wait-free
// and cheap — but retire is blocking: a thread parked inside an
// operation stalls the epoch and unreclaimed memory is unbounded, which
// is exactly the Table 1 row the paper contrasts the lock-free schemes
// against.
type EBR struct {
	counters
	env Env
	cfg Config

	global       atomic.Uint64
	reservations []rt.PaddedUint64
	shadow       []padWord // owner-written mirror of reservations
	elide        []rt.PaddedUint64
	limbo        [][]ebrItem
	ops          []int // per-thread retire counter for amortized advance
}

func init() {
	Register(Registration{
		Name:  "ebr",
		Rank:  4,
		Build: func(env Env, opts Options) Scheme { return newEBR(env, opts) },
	})
}

// newEBR builds an epoch-based-reclamation instance; construct via
// New("ebr", …).
func newEBR(env Env, cfg Options) *EBR {
	cfg.defaults()
	e := &EBR{
		env:          env,
		cfg:          cfg,
		reservations: make([]rt.PaddedUint64, cfg.MaxThreads),
		shadow:       make([]padWord, cfg.MaxThreads),
		elide:        make([]rt.PaddedUint64, cfg.MaxThreads),
		limbo:        make([][]ebrItem, cfg.MaxThreads),
		ops:          make([]int, cfg.MaxThreads),
	}
	e.global.Store(2)
	for i := range e.reservations {
		e.reservations[i].Store(ebrIdle)
		e.shadow[i].v = ebrIdle
	}
	return e
}

// Name returns "ebr".
func (*EBR) Name() string { return "ebr" }

// BeginOp announces the thread is active in the current epoch. The
// announcement store is elided when the slot already publishes the
// current epoch (repeated BeginOp without an intervening EndOp) — the
// published reservation is identical either way. EndOp must always
// store: an elided idle announcement would block epoch advancement.
func (e *EBR) BeginOp(tid int) {
	g := e.global.Load()
	if e.shadow[tid].v == g {
		c := &e.elide[tid]
		c.Store(c.Load() + 1)
		rt.Step(rt.SiteProtect, tid)
		return
	}
	e.shadow[tid].v = g
	e.reservations[tid].Store(g)
}

// EndOp marks the thread quiescent.
func (e *EBR) EndOp(tid int) {
	if e.shadow[tid].v == ebrIdle {
		return
	}
	e.shadow[tid].v = ebrIdle
	e.reservations[tid].Store(ebrIdle)
}

// GetProtected needs no per-pointer work: the epoch announcement covers
// every object reachable during the operation. The torture injection
// point still fires here — a reader stalled inside an operation holds
// its epoch reservation, which is exactly EBR's unbounded worst case.
func (e *EBR) GetProtected(tid, _ int, addr *atomic.Uint64) arena.Handle {
	rt.Step(rt.SiteProtect, tid)
	return arena.Handle(addr.Load())
}

// Protect is a no-op under epochs.
func (*EBR) Protect(int, int, arena.Handle) {}

// Clear is a no-op under epochs.
func (*EBR) Clear(int, int) {}

// ClearAll is a no-op under epochs.
func (*EBR) ClearAll(int) {}

// OnAlloc is a no-op for EBR.
func (*EBR) OnAlloc(arena.Handle) {}

// Retire stamps the object with the current epoch and occasionally tries
// to advance the epoch and reap the limbo list.
func (e *EBR) Retire(tid int, v arena.Handle) {
	e.onRetire(tid, v)
	e.limbo[tid] = append(e.limbo[tid], ebrItem{h: v.Unmarked(), epoch: e.global.Load()})
	e.ops[tid]++
	if e.ops[tid]%32 == 0 {
		e.tryAdvance()
		e.reap(tid)
	}
}

// tryAdvance bumps the global epoch if every active thread has observed
// the current one. A single stalled reader blocks the bump — EBR's
// defining weakness.
func (e *EBR) tryAdvance() {
	cur := e.global.Load()
	for t := 0; t < e.cfg.MaxThreads; t++ {
		r := e.reservations[t].Load()
		if r != ebrIdle && r < cur {
			return
		}
	}
	e.global.CompareAndSwap(cur, cur+1)
}

// reap frees limbo entries two epochs behind the global epoch: every
// thread active when they were retired has since passed through a
// quiescent announcement.
func (e *EBR) reap(tid int) {
	g := e.global.Load()
	keep := e.limbo[tid][:0]
	for _, it := range e.limbo[tid] {
		if it.epoch+2 <= g {
			e.env.Free(tid, it.h)
			e.onFree(tid, it.h)
		} else {
			keep = append(keep, it)
		}
	}
	e.limbo[tid] = keep
}

// RetireDepth reports the length of tid's limbo list.
func (e *EBR) RetireDepth(tid int) int { return len(e.limbo[tid]) }

// Flush attempts an advance and a reap.
func (e *EBR) Flush(tid int) {
	e.tryAdvance()
	e.tryAdvance()
	e.reap(tid)
}

// ScanStats reports EBR's elided epoch announcements (EBR has no scan
// engine; only the Elisions field is meaningful).
func (e *EBR) ScanStats() ScanStats {
	var s ScanStats
	for i := range e.elide {
		s.Elisions += e.elide[i].Load()
	}
	return s
}

// Stats reports counters.
func (e *EBR) Stats() Stats { return e.snapshot() }
