package reclaim

import (
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/rt"
)

// HE is hazard eras (Ramalhete–Correia, SPAA '17): each object carries a
// birth era and a retire era in its two header words; readers publish
// the era in which they are traversing instead of individual pointers. A
// retired object may be freed once no published era intersects its
// lifetime interval. Lock-free protect, wait-free retire, bound
// O(#L·H·t²) — looser than the pointer-based schemes, cheaper protects.
//
// Like hpArrays, the published era matrix carries an owner-written
// shadow: Protect and GetProtected consult it and elide the store when
// the slot already publishes the current era — the common case between
// clock ticks, since the era clock only advances on retire. The era
// reservation the slot holds is unchanged by the elided call, so every
// concurrent scan still observes it (DESIGN.md §1.2).
type HE struct {
	counters
	env Env
	cfg Config

	clock   atomic.Uint64
	eras    [][]atomic.Uint64 // published eras, 0 = none
	shadow  [][]uint64        // owner-written mirror of eras
	retired [][]heItem
	eng     *scanEngine
}

type heItem struct {
	h      arena.Handle
	birth  uint64
	retire uint64
}

func init() {
	Register(Registration{
		Name:  "he",
		Rank:  5,
		Build: func(env Env, opts Options) Scheme { return newHE(env, opts) },
	})
}

// newHE builds a hazard-eras instance; construct via New("he", …).
func newHE(env Env, cfg Options) *HE {
	cfg.defaults()
	base := cfg.MaxHPs * cfg.MaxThreads
	if base < 64 {
		base = 64
	}
	if cfg.ScanThreshold > 0 {
		base = cfg.ScanThreshold
	}
	h := &HE{
		env:     env,
		cfg:     cfg,
		eras:    make([][]atomic.Uint64, cfg.MaxThreads),
		shadow:  make([][]uint64, cfg.MaxThreads),
		retired: make([][]heItem, cfg.MaxThreads),
		eng:     newScanEngine(cfg.MaxThreads, cfg.MaxThreads*cfg.MaxHPs, base),
	}
	h.clock.Store(1)
	for i := range h.eras {
		h.eras[i] = make([]atomic.Uint64, cfg.MaxHPs+8)
		h.shadow[i] = make([]uint64, cfg.MaxHPs+8)
	}
	return h
}

// Name returns "he".
func (*HE) Name() string { return "he" }

// BeginOp is a no-op (eras are published per protection slot).
func (*HE) BeginOp(int) {}

// EndOp clears all published eras of the thread.
func (h *HE) EndOp(tid int) { h.ClearAll(tid) }

// OnAlloc stamps the object's birth era into header word A.
func (h *HE) OnAlloc(v arena.Handle) {
	birth, _ := h.env.Hdr(v)
	birth.Store(h.clock.Load())
}

// GetProtected publishes the current era until the era is stable across
// the read of addr — the HE protection loop. The published era is read
// from the owner's shadow (no atomic load), and a call that finds the
// slot already holding the current era performs no store at all.
func (h *HE) GetProtected(tid, idx int, addr *atomic.Uint64) arena.Handle {
	sh := h.shadow[tid]
	prev := sh[idx]
	stored := false
	for {
		v := arena.Handle(addr.Load())
		era := h.clock.Load()
		if era == prev {
			if !stored {
				h.eng.noteElide(tid)
			}
			// Torture injection point: the era reservation is stable and
			// published; a stall here holds it across the hook — on the
			// elided path the reservation predates this call entirely.
			rt.Step(rt.SiteProtect, tid)
			return v
		}
		h.eras[tid][idx].Store(era)
		sh[idx] = era
		prev = era
		stored = true
	}
}

// Protect publishes the current era in the slot, eliding the store when
// the slot already holds it.
func (h *HE) Protect(tid, idx int, _ arena.Handle) {
	e := h.clock.Load()
	if h.shadow[tid][idx] == e {
		h.eng.noteElide(tid)
		rt.Step(rt.SiteProtect, tid)
		return
	}
	h.shadow[tid][idx] = e
	h.eras[tid][idx].Store(e)
}

// Clear resets one era slot.
func (h *HE) Clear(tid, idx int) {
	if h.shadow[tid][idx] == 0 {
		return
	}
	h.shadow[tid][idx] = 0
	h.eras[tid][idx].Store(0)
}

// ClearAll resets every era slot of the thread.
func (h *HE) ClearAll(tid int) {
	for i := 0; i < h.cfg.MaxHPs; i++ {
		h.Clear(tid, i)
	}
}

// Retire stamps the retire era, bumps the era clock, and scans when the
// thread's retired list has reached the adaptive threshold. The scan
// runs before the append, capping list growth (see HP.Retire).
func (h *HE) Retire(tid int, v arena.Handle) {
	h.onRetire(tid, v)
	v = v.Unmarked()
	birth, retire := h.env.Hdr(v)
	e := h.clock.Load()
	retire.Store(e)
	if len(h.retired[tid]) >= h.eng.threshold(tid) {
		h.scan(tid)
	}
	h.retired[tid] = append(h.retired[tid], heItem{h: v, birth: birth.Load(), retire: e})
	h.clock.Add(1)
}

func (h *HE) scan(tid int) {
	start := time.Now()
	// Snapshot all published eras once, sorted for binary-search probes.
	eras := h.eng.snapshotEras(tid, h.eras, h.cfg.MaxThreads, h.cfg.MaxHPs)
	batch := len(h.retired[tid])
	keep := h.retired[tid][:0]
	for _, it := range h.retired[tid] {
		if eraReserved(eras, it.birth, it.retire) {
			keep = append(keep, it)
			continue
		}
		h.env.Free(tid, it.h)
		h.onFree(tid, it.h)
	}
	h.retired[tid] = keep
	h.eng.afterScan(tid, batch, batch-len(keep), time.Since(start))
	h.onScan(time.Since(start))
}

// Flush scans unconditionally.
func (h *HE) Flush(tid int) { h.scan(tid) }

// RetireDepth reports the length of tid's retired list.
func (h *HE) RetireDepth(tid int) int { return len(h.retired[tid]) }

// ScanStats reports the scan engine's counters.
func (h *HE) ScanStats() ScanStats { return h.eng.stats() }

// Stats reports counters.
func (h *HE) Stats() Stats { return h.snapshot() }
