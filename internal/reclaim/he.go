package reclaim

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/rt"
)

// HE is hazard eras (Ramalhete–Correia, SPAA '17): each object carries a
// birth era and a retire era in its two header words; readers publish
// the era in which they are traversing instead of individual pointers. A
// retired object may be freed once no published era intersects its
// lifetime interval. Lock-free protect, wait-free retire, bound
// O(#L·H·t²) — looser than the pointer-based schemes, cheaper protects.
type HE struct {
	counters
	env Env
	cfg Config

	clock   atomic.Uint64
	eras    [][]atomic.Uint64 // published eras, 0 = none
	retired [][]heItem
	thresh  int
}

type heItem struct {
	h      arena.Handle
	birth  uint64
	retire uint64
}

func init() {
	Register(Registration{
		Name:  "he",
		Rank:  5,
		Build: func(env Env, opts Options) Scheme { return newHE(env, opts) },
	})
}

// newHE builds a hazard-eras instance; construct via New("he", …).
func newHE(env Env, cfg Options) *HE {
	cfg.defaults()
	h := &HE{
		env:     env,
		cfg:     cfg,
		eras:    make([][]atomic.Uint64, cfg.MaxThreads),
		retired: make([][]heItem, cfg.MaxThreads),
		thresh:  cfg.MaxHPs * cfg.MaxThreads,
	}
	h.clock.Store(1)
	for i := range h.eras {
		h.eras[i] = make([]atomic.Uint64, cfg.MaxHPs+8)
	}
	if h.thresh < 64 {
		h.thresh = 64
	}
	return h
}

// Name returns "he".
func (*HE) Name() string { return "he" }

// BeginOp is a no-op (eras are published per protection slot).
func (*HE) BeginOp(int) {}

// EndOp clears all published eras of the thread.
func (h *HE) EndOp(tid int) { h.ClearAll(tid) }

// OnAlloc stamps the object's birth era into header word A.
func (h *HE) OnAlloc(v arena.Handle) {
	birth, _ := h.env.Hdr(v)
	birth.Store(h.clock.Load())
}

// GetProtected publishes the current era until the era is stable across
// the read of addr — the HE protection loop.
func (h *HE) GetProtected(tid, idx int, addr *atomic.Uint64) arena.Handle {
	prev := h.eras[tid][idx].Load()
	for {
		v := arena.Handle(addr.Load())
		era := h.clock.Load()
		if era == prev {
			// Torture injection point: the era reservation is stable and
			// published; a stall here holds it across the hook.
			rt.Step(rt.SiteProtect, tid)
			return v
		}
		h.eras[tid][idx].Store(era)
		prev = era
	}
}

// Protect publishes the current era in the slot.
func (h *HE) Protect(tid, idx int, _ arena.Handle) {
	h.eras[tid][idx].Store(h.clock.Load())
}

// Clear resets one era slot.
func (h *HE) Clear(tid, idx int) { h.eras[tid][idx].Store(0) }

// ClearAll resets every era slot of the thread.
func (h *HE) ClearAll(tid int) {
	for i := 0; i < h.cfg.MaxHPs; i++ {
		h.eras[tid][i].Store(0)
	}
}

// Retire stamps the retire era, bumps the era clock, and scans when the
// thread's retired list is long enough.
func (h *HE) Retire(tid int, v arena.Handle) {
	h.onRetire(tid, v)
	v = v.Unmarked()
	birth, retire := h.env.Hdr(v)
	e := h.clock.Load()
	retire.Store(e)
	h.retired[tid] = append(h.retired[tid], heItem{h: v, birth: birth.Load(), retire: e})
	h.clock.Add(1)
	if len(h.retired[tid]) >= h.thresh {
		h.scan(tid)
	}
}

func (h *HE) scan(tid int) {
	// Snapshot all published eras once.
	var eras []uint64
	for t := 0; t < h.cfg.MaxThreads; t++ {
		for i := 0; i < h.cfg.MaxHPs; i++ {
			if e := h.eras[t][i].Load(); e != 0 {
				eras = append(eras, e)
			}
		}
	}
	keep := h.retired[tid][:0]
	for _, it := range h.retired[tid] {
		if intervalReserved(eras, it.birth, it.retire) {
			keep = append(keep, it)
			continue
		}
		h.env.Free(tid, it.h)
		h.onFree(tid, it.h)
	}
	h.retired[tid] = keep
}

func intervalReserved(eras []uint64, birth, retire uint64) bool {
	for _, e := range eras {
		if birth <= e && e <= retire {
			return true
		}
	}
	return false
}

// Flush scans unconditionally.
func (h *HE) Flush(tid int) { h.scan(tid) }

// RetireDepth reports the length of tid's retired list.
func (h *HE) RetireDepth(tid int) int { return len(h.retired[tid]) }

// Stats reports counters.
func (h *HE) Stats() Stats { return h.snapshot() }
