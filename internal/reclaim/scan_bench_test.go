// Scan-engine microbenchmark suite: the zero-allocation snapshot+probe
// scan of this package measured against an in-file replica of the seed's
// map-based scan (rebuild a map[Handle]struct{} of the published set on
// every scan, probe by hash). Benchmark* functions serve `go test
// -bench`; TestScanBenchReport (gated on SCAN_BENCH=1) runs a fixed-work
// comparison across goroutine counts and records the numbers in
// BENCH_scan.json at the repo root.
package reclaim

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arena"
)

// benchHandle fabricates a plausible arena handle: non-zero generation,
// distinct index. No arena is needed — scans compare handles, they never
// dereference them.
func benchHandle(i int) arena.Handle {
	return arena.Handle(uint64(1)<<32 | uint64(i+1))
}

// scanFixture is the shared scan workload: a published hazardous-pointer
// matrix (threads×hps, fully populated) and a per-tid retired-list
// template in which one entry in four is published (kept by the scan)
// and the rest are strangers (freed). Free is a no-op counter so the
// same template replays every iteration.
type scanFixture struct {
	hp       *hpArrays
	threads  int
	hps      int
	template []arena.Handle
	freed    atomic.Uint64
}

func newScanFixture(threads, hps, batch int) *scanFixture {
	f := &scanFixture{hp: newHPArrays(threads, hps), threads: threads, hps: hps}
	published := make([]arena.Handle, 0, threads*hps)
	for t := 0; t < threads; t++ {
		for i := 0; i < hps; i++ {
			h := benchHandle(t*hps + i)
			f.hp.publish(t, i, h)
			published = append(published, h)
		}
	}
	for i := 0; i < batch; i++ {
		if i%4 == 0 {
			f.template = append(f.template, published[i%len(published)])
		} else {
			f.template = append(f.template, benchHandle(1<<20+i))
		}
	}
	return f
}

func (f *scanFixture) free(arena.Handle) { f.freed.Add(1) }

// engineScan is the scan loop of HP.scan, using the engine's reusable
// snapshot and binary-search probes.
func (f *scanFixture) engineScan(e *scanEngine, tid int, list []arena.Handle) []arena.Handle {
	published := e.snapshotHP(tid, f.hp, f.threads, f.hps)
	keep := list[:0]
	for _, v := range list {
		if arena.SearchHandles(published, v) {
			keep = append(keep, v)
			continue
		}
		f.free(v)
	}
	return keep
}

// mapScan is the seed's scan, reproduced in miniature: a fresh hash set
// of the published values per scan.
func (f *scanFixture) mapScan(list []arena.Handle) []arena.Handle {
	set := make(map[arena.Handle]struct{}, f.threads*f.hps)
	for t := 0; t < f.threads; t++ {
		for i := 0; i < f.hps; i++ {
			if p := f.hp.read(t, i); !p.IsNil() {
				set[p] = struct{}{}
			}
		}
	}
	keep := list[:0]
	for _, v := range list {
		if _, ok := set[v]; ok {
			keep = append(keep, v)
			continue
		}
		f.free(v)
	}
	return keep
}

// ---------------------------------------------------------------------------
// go test -bench entry points.

const benchBatch = 256

func BenchmarkScan(b *testing.B) {
	const threads, hps = 8, 8
	b.Run("engine", func(b *testing.B) {
		f := newScanFixture(threads, hps, benchBatch)
		e := newScanEngine(threads, threads*hps, benchBatch)
		list := make([]arena.Handle, benchBatch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(list[:benchBatch], f.template)
			f.engineScan(e, 0, list[:benchBatch])
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		f := newScanFixture(threads, hps, benchBatch)
		list := make([]arena.Handle, benchBatch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(list[:benchBatch], f.template)
			f.mapScan(list[:benchBatch])
		}
	})
}

// BenchmarkProtectHop measures the protection publish: the elided path
// (republishing the value the slot already holds — the traversal hot
// case) against the store path (the value changes every call).
func BenchmarkProtectHop(b *testing.B) {
	a, env := testEnv(b, arena.Strict)
	s := newHP(env, Options{MaxThreads: 2, MaxHPs: 4})
	h1 := allocNode(a, s)
	h2 := allocNode(a, s)
	var slot atomic.Uint64
	b.Run("elided", func(b *testing.B) {
		slot.Store(uint64(h1))
		s.GetProtected(0, 0, &slot)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.GetProtected(0, 0, &slot)
		}
	})
	b.Run("store", func(b *testing.B) {
		hs := [2]uint64{uint64(h1), uint64(h2)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot.Store(hs[i&1]) // target moves: every publish must store
			s.GetProtected(0, 0, &slot)
		}
	})
}

// ---------------------------------------------------------------------------
// Fixed-work comparison recorded in BENCH_scan.json.

type scanRow struct {
	Goroutines    int     `json:"goroutines"`
	BaselineMscan float64 `json:"baseline_mhandles_per_sec"`
	EngineMscan   float64 `json:"engine_mhandles_per_sec"`
	Speedup       float64 `json:"speedup"`
}

type scanReport struct {
	Benchmark  string `json:"benchmark"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Threads    int    `json:"published_threads"`
	HPs        int    `json:"published_hps"`
	Batch      int    `json:"batch"`
	ScansPerG  int    `json:"scans_per_goroutine"`
	ProtectNs  struct {
		Elided float64 `json:"elided_ns_per_op"`
		Store  float64 `json:"store_ns_per_op"`
	} `json:"protect"`
	Scan []scanRow `json:"scan"`
}

// scanWork runs workers goroutines, each replaying the template through
// scan `scans` times, and returns million handles examined per second.
func scanWork(workers, scans int, run func(tid int, list []arena.Handle) []arena.Handle, template []arena.Handle) float64 {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			list := make([]arena.Handle, len(template))
			<-start
			for i := 0; i < scans; i++ {
				copy(list[:len(template)], template)
				run(tid, list[:len(template)])
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	d := time.Since(t0)
	return float64(workers*scans*len(template)) / d.Seconds() / 1e6
}

func bestScanMops(workers, scans int, run func(tid int, list []arena.Handle) []arena.Handle, template []arena.Handle) float64 {
	best := 0.0
	for r := 0; r < 3; r++ {
		if m := scanWork(workers, scans, run, template); m > best {
			best = m
		}
	}
	return best
}

func TestScanBenchReport(t *testing.T) {
	if os.Getenv("SCAN_BENCH") == "" {
		t.Skip("set SCAN_BENCH=1 to run the timed scan comparison and write BENCH_scan.json")
	}
	const threads, hps = 8, 8
	const scans = 1 << 14

	rep := scanReport{
		Benchmark:  "retire-scan: reusable sorted snapshot + binary search vs seed per-scan map",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Threads:    threads,
		HPs:        hps,
		Batch:      benchBatch,
		ScansPerG:  scans,
	}

	// Protect fast path: tight republish loops, single goroutine.
	{
		a, env := testEnv(t, arena.Strict)
		s := newHP(env, Options{MaxThreads: 2, MaxHPs: 4})
		h1, h2 := allocNode(a, s), allocNode(a, s)
		var slot atomic.Uint64
		slot.Store(uint64(h1))
		s.GetProtected(0, 0, &slot)
		const n = 1 << 22
		t0 := time.Now()
		for i := 0; i < n; i++ {
			s.GetProtected(0, 0, &slot)
		}
		rep.ProtectNs.Elided = float64(time.Since(t0).Nanoseconds()) / n
		hs := [2]uint64{uint64(h1), uint64(h2)}
		t0 = time.Now()
		for i := 0; i < n; i++ {
			slot.Store(hs[i&1])
			s.GetProtected(0, 0, &slot)
		}
		rep.ProtectNs.Store = float64(time.Since(t0).Nanoseconds()) / n
		t.Logf("protect: elided %.2f ns/op, store %.2f ns/op", rep.ProtectNs.Elided, rep.ProtectNs.Store)
	}

	for _, g := range []int{1, 2, 4, 8} {
		row := scanRow{Goroutines: g}
		{
			f := newScanFixture(threads, hps, benchBatch)
			row.BaselineMscan = bestScanMops(g, scans, func(tid int, list []arena.Handle) []arena.Handle {
				return f.mapScan(list)
			}, f.template)
		}
		{
			f := newScanFixture(threads, hps, benchBatch)
			e := newScanEngine(threads, threads*hps, benchBatch)
			row.EngineMscan = bestScanMops(g, scans, func(tid int, list []arena.Handle) []arena.Handle {
				return f.engineScan(e, tid, list)
			}, f.template)
		}
		row.Speedup = row.EngineMscan / row.BaselineMscan
		rep.Scan = append(rep.Scan, row)
		t.Logf("scan g=%d: baseline %7.2f Mhandles/s, engine %7.2f Mhandles/s (%.2fx)",
			g, row.BaselineMscan, row.EngineMscan, row.Speedup)
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_scan.json", append(js, '\n'), 0o644); err != nil {
		t.Fatalf("writing BENCH_scan.json: %v", err)
	}
}
