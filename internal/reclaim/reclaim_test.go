package reclaim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arena"
	"repro/internal/obs"
)

type tnode struct {
	Self uint64 // the node's own handle, for payload integrity checks
}

func testEnv(t testing.TB, mode arena.FaultMode) (*arena.Arena[tnode], Env) {
	t.Helper()
	a := arena.New[tnode](arena.WithFaultMode(mode))
	return a, Env{
		Free: a.FreeT,
		Hdr:  a.Header,
	}
}

func allocNode(a *arena.Arena[tnode], s Scheme) arena.Handle {
	h, p := a.Alloc()
	p.Self = uint64(h)
	s.OnAlloc(h)
	return h
}

func lockfreeSchemes() []string { return []string{"hp", "ptb", "ptp", "he", "ibr"} }

func allSchemes() []string { return []string{"none", "hp", "ptb", "ptp", "ebr", "he", "ibr"} }

// TestProtectPreventsFree: a protected object must survive a retire by
// another thread; after the protection clears, flushing frees it.
func TestProtectPreventsFree(t *testing.T) {
	for _, name := range lockfreeSchemes() {
		t.Run(name, func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := MustNew(name, env, Options{MaxThreads: 2, MaxHPs: 4})

			var slot atomic.Uint64
			h := allocNode(a, s)
			slot.Store(uint64(h))

			s.BeginOp(0)
			got := s.GetProtected(0, 0, &slot)
			if got != h {
				t.Fatalf("GetProtected returned %v, want %v", got, h)
			}

			// Thread 1 unlinks and retires.
			s.BeginOp(1)
			slot.Store(0)
			s.Retire(1, h)
			s.Flush(1)
			s.EndOp(1)

			// Still protected: dereference must succeed.
			if a.Get(h).Self != uint64(h) {
				t.Fatal("payload corrupted while protected")
			}

			s.ClearAll(0)
			s.EndOp(0)
			s.Flush(1)
			s.Flush(0)
			if a.Valid(h) {
				t.Fatalf("%s: object still live after clear+flush", name)
			}
		})
	}
}

// TestRetireUnprotectedFrees: with nobody protecting, retire must
// eventually free (immediately for PTP, after Flush for list-based).
func TestRetireUnprotectedFrees(t *testing.T) {
	for _, name := range lockfreeSchemes() {
		t.Run(name, func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := MustNew(name, env, Options{MaxThreads: 2, MaxHPs: 4})
			h := allocNode(a, s)
			s.Retire(0, h)
			s.Flush(0)
			if a.Valid(h) {
				t.Fatal("unprotected retired object not freed")
			}
			st := s.Stats()
			if st.Retired != 1 || st.Freed != 1 || st.RetiredNotFreed != 0 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// TestPTPImmediateFree: PTP deletes an unprotected object during retire
// itself — no thread-local retired list, no Flush needed.
func TestPTPImmediateFree(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newPTP(env, Options{MaxThreads: 4, MaxHPs: 4})
	h := allocNode(a, s)
	s.Retire(0, h)
	if a.Valid(h) {
		t.Fatal("PTP retire of unprotected object must free synchronously")
	}
}

// TestPTPHandover: retiring an object protected by another thread parks
// it in that thread's handover slot; the protector's Clear adopts and
// frees it.
func TestPTPHandover(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newPTP(env, Options{MaxThreads: 4, MaxHPs: 4})

	var slot atomic.Uint64
	h := allocNode(a, s)
	slot.Store(uint64(h))

	s.GetProtected(1, 2, &slot) // thread 1 protects at idx 2
	slot.Store(0)
	s.Retire(0, h) // thread 0 retires; must hand over, not free
	if !a.Valid(h) {
		t.Fatal("protected object was freed")
	}
	if parked := arena.Handle(s.handovers[1][2].Load()); parked != h {
		t.Fatalf("object not parked in protector's handover slot: %v", parked)
	}
	s.Clear(1, 2) // protector clears: adopts the buck and frees
	if a.Valid(h) {
		t.Fatal("object survived protector's clear")
	}
}

// TestPTPHandoverDisplacement: a handover slot already holding an object
// passes the displaced object onward (Alg. 2 line 28-31).
func TestPTPHandoverDisplacement(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newPTP(env, Options{MaxThreads: 4, MaxHPs: 4})

	var s1, s2 atomic.Uint64
	h1 := allocNode(a, s)
	h2 := allocNode(a, s)
	s1.Store(uint64(h1))
	s2.Store(uint64(h2))

	s.GetProtected(1, 0, &s1)
	s.Retire(0, h1) // parked at [1][0]
	if !a.Valid(h1) {
		t.Fatal("h1 freed while protected")
	}

	// Thread 1 re-protects the same slot index with h2; h1 is still
	// parked. Retiring h2 exchanges it into [1][0], displacing h1,
	// which is now unprotected and must be freed.
	s.GetProtected(1, 0, &s2)
	s.Retire(0, h2)
	if a.Valid(h1) {
		t.Fatal("displaced h1 not freed")
	}
	if !a.Valid(h2) {
		t.Fatal("h2 freed while protected")
	}
	s.Clear(1, 0)
	if a.Valid(h2) {
		t.Fatal("h2 survived clear")
	}
}

// TestPTPBoundInvariant: the paper's §3.1 claim — at any time at most
// t×(H+1) retired-but-undeleted objects. We hammer retire from all
// threads while readers hold protections and assert the high-water mark.
func TestPTPBoundInvariant(t *testing.T) {
	const threads = 8
	const hps = 4
	a, env := testEnv(t, arena.Strict)
	s := newPTP(env, Options{MaxThreads: threads, MaxHPs: hps})

	slots := make([]atomic.Uint64, 64)
	for i := range slots {
		slots[i].Store(uint64(allocNode(a, s)))
	}

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: protect random slots.
	for r := 0; r < threads/2; r++ {
		readers.Add(1)
		go func(tid int) {
			defer readers.Done()
			rng := uint64(tid + 1)
			for {
				select {
				case <-stop:
					s.ClearAll(tid)
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				i := rng % uint64(len(slots))
				idx := int(rng>>32) % hps
				s.GetProtected(tid, idx, &slots[i])
				if rng%7 == 0 {
					s.Clear(tid, idx)
				}
			}
		}(r)
	}
	// Writers: replace and retire.
	for w := threads / 2; w < threads; w++ {
		writers.Add(1)
		go func(tid int) {
			defer writers.Done()
			rng := uint64(tid * 977)
			for n := 0; n < 3000; n++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				i := rng % uint64(len(slots))
				nh := allocNode(a, s)
				old := arena.Handle(slots[i].Swap(uint64(nh)))
				if !old.IsNil() {
					s.Retire(tid, old)
				}
				if max := s.Stats().MaxRetiredNotFreed; max > int64(threads*(hps+1)) {
					panic(fmt.Sprintf("PTP bound violated: %d > %d", max, threads*(hps+1)))
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	st := s.Stats()
	bound := int64(threads * (hps + 1))
	if st.MaxRetiredNotFreed > bound {
		t.Fatalf("PTP linear bound violated: max %d > t(H+1) = %d", st.MaxRetiredNotFreed, bound)
	}
	t.Logf("PTP max retired-not-freed = %d (bound %d)", st.MaxRetiredNotFreed, bound)
}

// TestPTPNoDrainStillCorrect: with Algorithm 2's optional clear-drain
// disabled, parked objects linger until the slot is reused, but nothing
// may be freed early and the bound must still hold.
func TestPTPNoDrainStillCorrect(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newPTP(env, Options{MaxThreads: 2, MaxHPs: 2})
	s.DrainOnClear = false

	var slot atomic.Uint64
	h := allocNode(a, s)
	slot.Store(uint64(h))
	s.GetProtected(1, 0, &slot)
	slot.Store(0)
	s.Retire(0, h) // parks at thread 1 slot 0
	s.Clear(1, 0)  // without drain the object stays parked
	if !a.Valid(h) {
		t.Fatal("parked object freed by drain-less clear")
	}
	// Reusing the slot and retiring the new occupant displaces it.
	h2 := allocNode(a, s)
	slot.Store(uint64(h2))
	s.GetProtected(1, 0, &slot)
	slot.Store(0)
	s.Retire(0, h2)
	if a.Valid(h) {
		t.Fatal("displaced object not freed")
	}
	s.Clear(1, 0) // drop the protection (no drain), then flush the park
	s.Flush(1)
	if a.Valid(h2) {
		t.Fatal("h2 not freed after flush")
	}
}

// TestSchemeStress runs a protect/replace/retire mill under every
// scheme with the strict arena: any use-after-free panics.
func TestSchemeStress(t *testing.T) {
	for _, name := range lockfreeSchemes() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const threads = 6
			const hps = 3
			a, env := testEnv(t, arena.Strict)
			s := MustNew(name, env, Options{MaxThreads: threads, MaxHPs: hps})

			slots := make([]atomic.Uint64, 32)
			for i := range slots {
				h, p := a.Alloc()
				p.Self = uint64(h)
				s.OnAlloc(h)
				slots[i].Store(uint64(h))
			}

			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid*2654435761 + 1)
					for n := 0; n < 4000; n++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						i := rng % uint64(len(slots))
						s.BeginOp(tid)
						if rng%3 == 0 {
							// writer: replace and retire
							nh, p := a.Alloc()
							p.Self = uint64(nh)
							s.OnAlloc(nh)
							old := arena.Handle(slots[i].Swap(uint64(nh)))
							if !old.IsNil() {
								s.Retire(tid, old)
							}
						} else {
							// reader: protect then dereference
							h := s.GetProtected(tid, int(rng>>16)%hps, &slots[i])
							if !h.IsNil() {
								got := a.Get(h) // panics on UAF
								if got.Self != uint64(h.Unmarked()) {
									panic("payload integrity violated")
								}
							}
						}
						s.ClearAll(tid)
						s.EndOp(tid)
					}
					s.Flush(tid)
				}(w)
			}
			wg.Wait()

			for tid := 0; tid < threads; tid++ {
				s.Flush(tid)
			}
			st := s.Stats()
			t.Logf("%s: retired=%d freed=%d pending=%d maxPending=%d",
				name, st.Retired, st.Freed, st.RetiredNotFreed, st.MaxRetiredNotFreed)
			if st.Freed == 0 {
				t.Fatalf("%s freed nothing under churn", name)
			}
		})
	}
}

// TestUnsafeSchemeCaught: the deliberately broken scheme must produce a
// detectable use-after-free under the counting arena.
func TestUnsafeSchemeCaught(t *testing.T) {
	a, env := testEnv(t, arena.Count)
	s := newUnsafe(env, Options{})
	var slot atomic.Uint64
	h := allocNode(a, s)
	slot.Store(uint64(h))

	got := s.GetProtected(0, 0, &slot) // no real protection
	slot.Store(0)
	s.Retire(1, h) // frees immediately despite the reader

	a.Get(got) // stale: recorded as fault
	if a.Stats().Faults == 0 {
		t.Fatal("broken scheme escaped the generation check")
	}
}

// TestEBRStalledReaderBlocksReclamation: the Table 1 "blocking" row.
func TestEBRStalledReaderBlocksReclamation(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newEBR(env, Options{MaxThreads: 2, MaxHPs: 1})

	s.BeginOp(0) // reader enters and never leaves

	var freedBefore uint64
	for n := 0; n < 500; n++ {
		h := allocNode(a, s)
		s.Retire(1, h)
	}
	s.Flush(1)
	freedBefore = s.Stats().Freed
	if freedBefore != 0 {
		t.Fatalf("EBR freed %d objects past a stalled reader", freedBefore)
	}

	s.EndOp(0) // reader finally quiesces
	s.Flush(1)
	s.Flush(1)
	if s.Stats().Freed == 0 {
		t.Fatal("EBR freed nothing even after the reader quiesced")
	}
}

// TestHEEraStamping: birth/retire eras land in the header words.
func TestHEEraStamping(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newHE(env, Options{MaxThreads: 2, MaxHPs: 2})
	h := allocNode(a, s)
	birth, retire := a.Header(h)
	if birth.Load() == 0 {
		t.Fatal("birth era not stamped")
	}
	if retire.Load() != 0 {
		t.Fatal("retire era set before retire")
	}
	bh := birth.Load()
	s.Retire(0, h)
	// The handle may already be freed; eras were captured at retire.
	_ = bh
	st := s.Stats()
	if st.Retired != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestHEProtectionHoldsInterval: an object whose lifetime interval
// includes a published era must not be freed.
func TestHEProtectionHoldsInterval(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newHE(env, Options{MaxThreads: 2, MaxHPs: 2})
	var slot atomic.Uint64
	h := allocNode(a, s)
	slot.Store(uint64(h))

	got := s.GetProtected(0, 0, &slot)
	if got != h {
		t.Fatal("wrong handle")
	}
	slot.Store(0)
	s.Retire(1, h)
	s.Flush(1)
	if !a.Valid(h) {
		t.Fatal("HE freed an era-protected object")
	}
	s.ClearAll(0)
	s.Flush(1)
	if a.Valid(h) {
		t.Fatal("HE failed to free after clear")
	}
}

// TestIBRIntervalProtection: same for 2GEIBR with its [lower, upper]
// reservations.
func TestIBRIntervalProtection(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newIBR(env, Options{MaxThreads: 2, MaxHPs: 2})
	var slot atomic.Uint64
	h := allocNode(a, s)
	slot.Store(uint64(h))

	s.BeginOp(0)
	got := s.GetProtected(0, 0, &slot)
	if got != h {
		t.Fatal("wrong handle")
	}
	slot.Store(0)
	s.Retire(1, h)
	s.Flush(1)
	if !a.Valid(h) {
		t.Fatal("IBR freed a reserved-interval object")
	}
	s.EndOp(0)
	s.Flush(1)
	if a.Valid(h) {
		t.Fatal("IBR failed to free after reservation dropped")
	}
}

// TestNoneLeaks: the baseline must never free.
func TestNoneLeaks(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newNone(env, Options{})
	h := allocNode(a, s)
	s.Retire(0, h)
	s.Flush(0)
	if !a.Valid(h) {
		t.Fatal("None freed an object")
	}
	if s.Stats().RetiredNotFreed != 1 {
		t.Fatal("leak not counted")
	}
}

// TestNewUnknownErrors guards the factory: unknown names are an error
// (names arrive from flags and network config), and MustNew converts
// that error to a panic for statically known names.
func TestNewUnknownErrors(t *testing.T) {
	if s, err := New("bogus", Env{}, Options{}); err == nil || s != nil {
		t.Fatalf("New(bogus) = %v, %v; want nil, error", s, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic for unknown scheme")
		}
	}()
	MustNew("bogus", Env{}, Options{})
}

// TestNamesConstructible: every advertised name must construct, in the
// paper's presentation order, and Name() must round-trip.
func TestNamesConstructible(t *testing.T) {
	want := []string{"none", "hp", "ptb", "ptp", "ebr", "he", "ibr"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	_, env := testEnv(t, arena.Strict)
	for _, n := range Names() {
		s, err := New(n, env, Options{MaxThreads: 2, MaxHPs: 2})
		if err != nil || s == nil {
			t.Fatalf("New(%q) = %v, %v", n, s, err)
		}
		if s.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, s.Name())
		}
	}
}

// TestAliasesResolve: aliases construct the canonical scheme and
// Canonical reports them.
func TestAliasesResolve(t *testing.T) {
	_, env := testEnv(t, arena.Strict)
	for alias, canon := range map[string]string{
		"leak": "none", "2geibr": "ibr", "unsafe": "unsafe", "hp": "hp",
	} {
		if c, ok := Canonical(alias); !ok || c != canon {
			t.Fatalf("Canonical(%q) = %q, %v; want %q", alias, c, ok, canon)
		}
		if s := MustNew(alias, env, Options{MaxThreads: 2, MaxHPs: 2}); s.Name() != canon {
			t.Fatalf("MustNew(%q).Name() = %q, want %q", alias, s.Name(), canon)
		}
	}
	if _, ok := Canonical("nope"); ok {
		t.Fatal("Canonical must reject unknown names")
	}
}

// TestMarkedHandleRetire: schemes must treat marked handles as their
// unmarked referent.
func TestMarkedHandleRetire(t *testing.T) {
	for _, name := range lockfreeSchemes() {
		t.Run(name, func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := MustNew(name, env, Options{MaxThreads: 2, MaxHPs: 2})
			h := allocNode(a, s)
			s.Retire(0, h.WithMark())
			s.Flush(0)
			if a.Valid(h) {
				t.Fatal("marked retire leaked")
			}
		})
	}
}

// TestGetProtectedTracksMovingTarget: the protection loop must converge
// on a slot that keeps changing and return a value consistent with a
// published protection.
func TestGetProtectedTracksMovingTarget(t *testing.T) {
	for _, name := range []string{"hp", "ptb", "ptp"} {
		t.Run(name, func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := MustNew(name, env, Options{MaxThreads: 4, MaxHPs: 2})
			var slot atomic.Uint64
			h0 := allocNode(a, s)
			slot.Store(uint64(h0))

			done := make(chan struct{})
			go func() {
				defer close(done)
				for n := 0; n < 2000; n++ {
					nh := allocNode(a, s)
					old := arena.Handle(slot.Swap(uint64(nh)))
					s.Retire(1, old)
				}
			}()
			for n := 0; n < 2000; n++ {
				h := s.GetProtected(0, 0, &slot)
				if h.IsNil() {
					t.Fatal("nil from non-nil slot")
				}
				if a.Get(h).Self != uint64(h) {
					t.Fatal("dereferenced wrong or stale object")
				}
				s.Clear(0, 0)
			}
			<-done
		})
	}
}

// TestMetricsInstrumentation: constructing with Options.Metrics must
// expose gauge funcs that track the scheme's counters, and the sampled
// free-latency histogram must record under churn.
func TestMetricsInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	a, env := testEnv(t, arena.Strict)
	s := MustNew("hp", env, Options{MaxThreads: 2, MaxHPs: 2, Label: "t/hp", Metrics: reg})

	const n = 500
	for i := 0; i < n; i++ {
		s.Retire(0, allocNode(a, s))
	}
	s.Flush(0)

	snap := map[string]int64{}
	for _, m := range reg.Snapshot() {
		snap[m.Name] = m.Value
	}
	st := s.Stats()
	if snap["reclaim/t/hp/retired"] != int64(st.Retired) || snap["reclaim/t/hp/freed"] != int64(st.Freed) {
		t.Fatalf("gauges %v disagree with Stats %+v", snap, st)
	}
	if snap["reclaim/t/hp/pending"] != st.RetiredNotFreed {
		t.Fatalf("pending gauge %d != %d", snap["reclaim/t/hp/pending"], st.RetiredNotFreed)
	}
	if snap["reclaim/t/hp/retire_depth"] != int64(s.RetireDepth(0)+s.RetireDepth(1)) {
		t.Fatal("retire_depth gauge disagrees with RetireDepth")
	}
	// 1-in-64 sampling over 500 retires must have landed some spans.
	if reg.Hist("reclaim/t/hp/free_lat_ns").Count() == 0 {
		t.Fatal("free-latency histogram recorded nothing")
	}
}

// TestUninstrumentedNoMetrics: the default (nil Metrics) must leave the
// instrumentation pointer nil — the no-op fast path.
func TestUninstrumentedNoMetrics(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newHP(env, Options{MaxThreads: 2, MaxHPs: 2})
	if s.inst != nil {
		t.Fatal("uninstrumented scheme has instrumentation state")
	}
	s.Retire(0, allocNode(a, s))
	s.Flush(0)
}
