package reclaim

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arena"
)

// ---------------------------------------------------------------------
// Adaptive threshold policy (white-box): afterScan is the entire policy,
// so driving it directly with synthetic scan outcomes is deterministic.

func TestAdaptiveThresholdPolicy(t *testing.T) {
	defer SetAdaptiveScan(true)
	e := newScanEngine(2, 64, 64)
	if e.minT != 16 || e.maxT != 1024 {
		t.Fatalf("clamps for base 64: [%d, %d], want [16, 1024]", e.minT, e.maxT)
	}
	if got := e.threshold(0); got != 64 {
		t.Fatalf("initial threshold %d, want base 64", got)
	}

	// A scan freeing nothing doubles the threshold, up to the clamp.
	want := 64
	for i := 0; i < 8; i++ {
		e.afterScan(0, 100, 0, time.Microsecond)
		want *= 2
		if want > e.maxT {
			want = e.maxT
		}
		if got := e.threshold(0); got != want {
			t.Fatalf("grow step %d: threshold %d, want %d", i, got, want)
		}
	}
	if e.threshold(0) != e.maxT {
		t.Fatalf("threshold %d did not clamp at maxT %d", e.threshold(0), e.maxT)
	}

	// Mid-band ratio (exactly the boundaries included) leaves it alone.
	for _, freed := range []int{25, 50, 75} {
		e.afterScan(0, 100, freed, time.Microsecond)
		if got := e.threshold(0); got != e.maxT {
			t.Fatalf("freed %d/100 moved threshold to %d", freed, got)
		}
	}
	// Empty-list scans (Flush on a drained thread) never move it.
	e.afterScan(0, 0, 0, time.Microsecond)
	if got := e.threshold(0); got != e.maxT {
		t.Fatalf("batch 0 moved threshold to %d", got)
	}

	// A scan freeing everything halves it, down to the clamp.
	want = e.maxT
	for i := 0; i < 10; i++ {
		e.afterScan(0, 100, 100, time.Microsecond)
		want /= 2
		if want < e.minT {
			want = e.minT
		}
		if got := e.threshold(0); got != want {
			t.Fatalf("shrink step %d: threshold %d, want %d", i, got, want)
		}
	}
	if e.threshold(0) != e.minT {
		t.Fatalf("threshold %d did not clamp at minT %d", e.threshold(0), e.minT)
	}

	// Thresholds are per-thread: tid 1 never moved.
	if got := e.threshold(1); got != 64 {
		t.Fatalf("tid 1 threshold %d, want untouched base 64", got)
	}

	// With the global switch off, outcomes stop moving the threshold.
	SetAdaptiveScan(false)
	e.afterScan(0, 100, 0, time.Microsecond)
	if got := e.threshold(0); got != e.minT {
		t.Fatalf("disabled policy still moved threshold to %d", got)
	}
	SetAdaptiveScan(true)

	st := e.stats()
	if st.Scans == 0 || st.Scanned == 0 || st.Freed == 0 || st.ScanNs == 0 {
		t.Fatalf("stats not booked: %+v", st)
	}
	if st.MinThreshold != e.minT || st.MaxThreshold != e.maxT {
		t.Fatalf("stats clamps %d/%d, want %d/%d", st.MinThreshold, st.MaxThreshold, e.minT, e.maxT)
	}
}

func TestScanEngineClampEdges(t *testing.T) {
	// Tiny base: the floor must not sit above the base itself.
	e := newScanEngine(1, 8, 4)
	if e.minT != 4 || e.maxT != 64 {
		t.Fatalf("base 4 clamps [%d, %d], want [4, 64]", e.minT, e.maxT)
	}
	// Degenerate base.
	e = newScanEngine(1, 8, 0)
	if e.base != 1 || e.threshold(0) != 1 {
		t.Fatalf("base 0 not normalized: base=%d threshold=%d", e.base, e.threshold(0))
	}
}

// TestAdaptiveThresholdRandomWalk drives afterScan with a seeded stream
// of arbitrary scan outcomes and asserts the clamp invariant holds at
// every step. Deterministic: the walk is a pure function of the seed.
func TestAdaptiveThresholdRandomWalk(t *testing.T) {
	e := newScanEngine(1, 8, 64)
	rng := uint64(0x9E3779B97F4A7C15) // fixed seed
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		batch := int(rng%256) + 1
		freed := int((rng >> 32) % uint64(batch+1))
		e.afterScan(0, batch, freed, time.Nanosecond)
		if th := e.threshold(0); th < e.minT || th > e.maxT {
			t.Fatalf("step %d (batch=%d freed=%d): threshold %d outside [%d, %d]",
				i, batch, freed, th, e.minT, e.maxT)
		}
	}
}

// TestScanThresholdOption: Options.ScanThreshold overrides each scheme's
// classic base formula.
func TestScanThresholdOption(t *testing.T) {
	_, env := testEnv(t, arena.Strict)
	opts := Options{MaxThreads: 2, MaxHPs: 2, ScanThreshold: 8}
	for name, eng := range map[string]*scanEngine{
		"hp":  newHP(env, opts).eng,
		"he":  newHE(env, opts).eng,
		"ibr": newIBR(env, opts).eng,
	} {
		if eng.base != 8 {
			t.Errorf("%s: base %d, want ScanThreshold override 8", name, eng.base)
		}
	}
	// Defaults: HP classic R = 2·H·t (floored), HE/IBR H·t (floored).
	big := Options{MaxThreads: 16, MaxHPs: 8}
	if got := newHP(env, big).eng.base; got != 256 {
		t.Errorf("hp default base %d, want 2·8·16 = 256", got)
	}
	if got := newHE(env, big).eng.base; got != 128 {
		t.Errorf("he default base %d, want 8·16 = 128", got)
	}
}

// ---------------------------------------------------------------------
// End-to-end adaptive behaviour per scheme: pin the whole retired set so
// scans free nothing (threshold must ride to the ceiling), then release
// and churn (threshold must ride back to the floor). Deterministic:
// single goroutine, fixed counts.

func driveThreshold(t *testing.T, a *arena.Arena[tnode], s Scheme, eng *scanEngine, pinned []arena.Handle, unpin func()) {
	t.Helper()
	for _, h := range pinned {
		//orcvet:ignore retire scheme unit test: the nodes were never published, there is nothing to unlink
		s.Retire(0, h)
		if th := eng.threshold(0); th < eng.minT || th > eng.maxT {
			t.Fatalf("threshold %d outside clamps [%d, %d] during grow", th, eng.minT, eng.maxT)
		}
	}
	if th := eng.threshold(0); th != eng.maxT {
		t.Fatalf("threshold %d after pinned churn, want ceiling %d", th, eng.maxT)
	}
	for _, h := range pinned {
		if !a.Valid(h) {
			t.Fatal("pinned object freed while protected")
		}
	}

	unpin()
	for i := 0; i < 500; i++ {
		s.Retire(0, allocNode(a, s))
	}
	if th := eng.threshold(0); th != eng.minT {
		t.Fatalf("threshold %d after free-running churn, want floor %d", th, eng.minT)
	}
	ss := s.(ScanStatser).ScanStats()
	if ss.Scans == 0 || ss.Freed == 0 {
		t.Fatalf("scan stats not booked: %+v", ss)
	}
	if ss.LastFreedRatioBP != 10000 {
		t.Fatalf("last freed ratio %dbp, want 10000 after unpinned scans", ss.LastFreedRatioBP)
	}
}

func TestAdaptiveThresholdHP(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	const pinCount = 140 // enough slots to pin past base·16 = 128
	s := newHP(env, Options{MaxThreads: 2, MaxHPs: pinCount, ScanThreshold: 8})
	pinned := make([]arena.Handle, pinCount)
	for i := range pinned {
		pinned[i] = allocNode(a, s)
		s.Protect(1, i, pinned[i])
	}
	driveThreshold(t, a, s, s.eng, pinned, func() { s.ClearAll(1) })
}

func TestAdaptiveThresholdHE(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newHE(env, Options{MaxThreads: 2, MaxHPs: 4, ScanThreshold: 8})
	pinned := make([]arena.Handle, 140)
	for i := range pinned {
		pinned[i] = allocNode(a, s)
	}
	// One published era pins every object born before it and retired
	// after — the whole pinned set.
	s.Protect(1, 0, arena.Nil)
	driveThreshold(t, a, s, s.eng, pinned, func() { s.Clear(1, 0) })
}

func TestAdaptiveThresholdIBR(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newIBR(env, Options{MaxThreads: 2, MaxHPs: 4, ScanThreshold: 8})
	pinned := make([]arena.Handle, 140)
	for i := range pinned {
		pinned[i] = allocNode(a, s)
	}
	// A reservation taken after the allocations covers every birth.
	s.BeginOp(1)
	driveThreshold(t, a, s, s.eng, pinned, func() { s.EndOp(1) })
}

// ---------------------------------------------------------------------
// Zero-allocation guarantees. Steady-state scans reuse the per-thread
// snapshot buffers; the first scan pays the (single) growth.

func scanZeroAllocCase(t *testing.T, a *arena.Arena[tnode], s Scheme) {
	t.Helper()
	s.Flush(0)
	s.Flush(0) // warm: snapshot buffers grown to capacity
	if got := testing.AllocsPerRun(200, func() { s.Flush(0) }); got != 0 {
		t.Errorf("scan allocates %.1f times per run, want 0", got)
	}
	_ = a
}

func TestScanZeroAllocHP(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newHP(env, Options{MaxThreads: 4, MaxHPs: 8, ScanThreshold: 64})
	for i := 0; i < 8; i++ {
		h := allocNode(a, s)
		s.Protect(1, i, h) // keep the retired list non-empty across scans
		//orcvet:ignore retire scheme unit test: the nodes were never published, there is nothing to unlink
		s.Retire(0, h)
	}
	scanZeroAllocCase(t, a, s)
}

func TestScanZeroAllocHE(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newHE(env, Options{MaxThreads: 4, MaxHPs: 8, ScanThreshold: 64})
	hs := make([]arena.Handle, 8)
	for i := range hs {
		hs[i] = allocNode(a, s)
	}
	s.Protect(1, 0, arena.Nil)
	for _, h := range hs {
		//orcvet:ignore retire scheme unit test: the nodes were never published, there is nothing to unlink
		s.Retire(0, h)
	}
	scanZeroAllocCase(t, a, s)
}

func TestScanZeroAllocIBR(t *testing.T) {
	a, env := testEnv(t, arena.Strict)
	s := newIBR(env, Options{MaxThreads: 4, MaxHPs: 8, ScanThreshold: 64})
	hs := make([]arena.Handle, 8)
	for i := range hs {
		hs[i] = allocNode(a, s)
	}
	s.BeginOp(1)
	for _, h := range hs {
		//orcvet:ignore retire scheme unit test: the nodes were never published, there is nothing to unlink
		s.Retire(0, h)
	}
	scanZeroAllocCase(t, a, s)
}

// TestProtectFastPathZeroAlloc: the protection hot path — republishing
// a stable target — must not allocate for any scheme.
func TestProtectFastPathZeroAlloc(t *testing.T) {
	for _, name := range lockfreeSchemes() {
		t.Run(name, func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := MustNew(name, env, Options{MaxThreads: 2, MaxHPs: 4})
			var slot atomic.Uint64
			slot.Store(uint64(allocNode(a, s)))
			s.BeginOp(0)
			s.GetProtected(0, 0, &slot)
			if got := testing.AllocsPerRun(200, func() { s.GetProtected(0, 0, &slot) }); got != 0 {
				t.Errorf("GetProtected allocates %.1f times per run, want 0", got)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Elision fast path: counters tick, and an elided republish is still a
// protection.

func TestElisionCounters(t *testing.T) {
	a, env := testEnv(t, arena.Strict)

	hp := newHP(env, Options{MaxThreads: 2, MaxHPs: 2})
	h := allocNode(a, hp)
	hp.Protect(0, 0, h)
	hp.Protect(0, 0, h) // same handle: elided
	if got := hp.ScanStats().Elisions; got == 0 {
		t.Error("hp: republish of same handle not counted as elision")
	}

	he := newHE(env, Options{MaxThreads: 2, MaxHPs: 2})
	he.Protect(0, 0, arena.Nil)
	he.Protect(0, 0, arena.Nil) // clock unchanged: elided
	if got := he.ScanStats().Elisions; got == 0 {
		t.Error("he: republish of current era not counted as elision")
	}

	ibr := newIBR(env, Options{MaxThreads: 2, MaxHPs: 2})
	ibr.BeginOp(0)
	ibr.Protect(0, 0, arena.Nil) // upper already covers the clock: elided
	if got := ibr.ScanStats().Elisions; got == 0 {
		t.Error("ibr: covered ratchet not counted as elision")
	}

	ebr := newEBR(env, Options{MaxThreads: 2, MaxHPs: 2})
	ebr.BeginOp(0)
	ebr.BeginOp(0) // epoch unchanged: elided re-announcement
	if got := ebr.ScanStats().Elisions; got == 0 {
		t.Error("ebr: re-announcement of current epoch not counted as elision")
	}
}

// TestElidedRepublishStillProtects: after an elided GetProtected, a
// concurrent retire must still observe the protection — the slot was
// never cleared, so the published value continues to cover the object.
func TestElidedRepublishStillProtects(t *testing.T) {
	for _, name := range lockfreeSchemes() {
		t.Run(name, func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := MustNew(name, env, Options{MaxThreads: 2, MaxHPs: 4})
			var slot atomic.Uint64
			h := allocNode(a, s)
			slot.Store(uint64(h))

			s.BeginOp(0)
			s.GetProtected(0, 0, &slot)
			before := elisionsOf(s)
			got := s.GetProtected(0, 0, &slot) // stable target: elided
			if got != h {
				t.Fatalf("GetProtected = %v, want %v", got, h)
			}
			if name != "he" && name != "ibr" && elisionsOf(s) == before {
				// Era schemes may legitimately store if another test
				// advanced their clock; the pointer schemes must elide.
				t.Fatal("second GetProtected of a stable target did not elide")
			}

			slot.Store(0)
			s.Retire(1, h)
			s.Flush(1)
			if !a.Valid(h) {
				t.Fatal("object freed despite elided (still-published) protection")
			}
			s.ClearAll(0)
			s.EndOp(0)
			s.Flush(1)
			s.Flush(0) // PTB hands the buck to the protector's pending list
			if a.Valid(h) {
				t.Fatal("object not freed after protection dropped")
			}
		})
	}
}

func elisionsOf(s Scheme) uint64 {
	if ss, ok := s.(ScanStatser); ok {
		return ss.ScanStats().Elisions
	}
	return 0
}

// ---------------------------------------------------------------------
// Satellite regression: Retire scans *before* appending, so a stalled
// reader pinning part of the retired set cannot make the list's backing
// array grow past the threshold — each scan culls back below it before
// the append lands.

func TestScanBeforeAppendBoundsRetiredList(t *testing.T) {
	SetAdaptiveScan(false) // freeze thresholds: the bound is then exact
	defer SetAdaptiveScan(true)
	const threshold = 32

	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"hp", func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := newHP(env, Options{MaxThreads: 2, MaxHPs: 4, ScanThreshold: threshold})
			for i := 0; i < 4; i++ { // stalled reader pins 4 objects forever
				h := allocNode(a, s)
				s.Protect(1, i, h)
				s.Retire(0, h)
			}
			for i := 0; i < 10000; i++ {
				s.Retire(0, allocNode(a, s))
			}
			assertBounded(t, s.RetireDepth(0), cap(s.retired[0]), threshold)
		}},
		{"he", func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := newHE(env, Options{MaxThreads: 2, MaxHPs: 4, ScanThreshold: threshold})
			pins := make([]arena.Handle, 4)
			for i := range pins {
				pins[i] = allocNode(a, s)
			}
			s.Protect(1, 0, arena.Nil) // stalled reader holds this era forever
			for _, h := range pins {
				s.Retire(0, h)
			}
			for i := 0; i < 10000; i++ {
				s.Retire(0, allocNode(a, s))
			}
			assertBounded(t, s.RetireDepth(0), cap(s.retired[0]), threshold)
		}},
		{"ibr", func(t *testing.T) {
			a, env := testEnv(t, arena.Strict)
			s := newIBR(env, Options{MaxThreads: 2, MaxHPs: 4, ScanThreshold: threshold})
			pins := make([]arena.Handle, 4)
			for i := range pins {
				pins[i] = allocNode(a, s)
			}
			s.BeginOp(1) // stalled reader's reservation never ends
			for _, h := range pins {
				s.Retire(0, h)
			}
			for i := 0; i < 10000; i++ {
				s.Retire(0, allocNode(a, s))
			}
			assertBounded(t, s.RetireDepth(0), cap(s.retired[0]), threshold)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

func assertBounded(t *testing.T, depth, capacity, threshold int) {
	t.Helper()
	if depth > threshold+1 {
		t.Errorf("retired depth %d after 10k retires past a stalled reader, want ≤ %d",
			depth, threshold+1)
	}
	// The scan-before-append order means the backing array never needs
	// to hold more than threshold entries: append always follows a cull.
	if capacity > 2*threshold {
		t.Errorf("retired list capacity %d, want ≤ %d (scan-before-append cap)",
			capacity, 2*threshold)
	}
}
