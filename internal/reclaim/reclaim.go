// Package reclaim implements the manual lock-free memory reclamation
// schemes compared in the paper's evaluation: hazard pointers (HP),
// pass-the-buck (PTB), the paper's pass-the-pointer (PTP, §3.1 /
// Algorithm 2), epoch-based reclamation (EBR), hazard eras (HE),
// two-generation interval-based reclamation (2GEIBR), plus a leaking
// baseline (None) and a deliberately unsafe scheme used to demonstrate
// that the arena's generation check catches use-after-free.
//
// All schemes operate on arena.Handle references. A data structure built
// on a scheme follows the classic manual protocol: GetProtected before
// dereferencing a shared link, Retire once a node is unreachable,
// ClearAll when an operation finishes.
package reclaim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
)

// Env binds a scheme to the arena holding its objects.
type Env struct {
	// Free returns an object to the allocator. Called exactly once per
	// retired object, at a point where the scheme has proven no thread
	// can still dereference it. The tid is the reclaiming thread's id:
	// arena.FreeT uses it to return the slot to that thread's magazine
	// cache, keeping the scheme's free path off the shared free lists.
	Free func(tid int, h arena.Handle)
	// Hdr exposes the object's two scheme header words (birth/retire
	// eras for HE and IBR). May be nil for schemes that keep no
	// per-object state.
	Hdr func(arena.Handle) (*atomic.Uint64, *atomic.Uint64)
}

// Config sizes a scheme's per-thread structures.
type Config struct {
	MaxThreads int // capacity of the tid space
	MaxHPs     int // H: hazardous pointers per thread the structure needs
}

func (c *Config) defaults() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	if c.MaxHPs <= 0 {
		c.MaxHPs = 8
	}
}

// Stats reports a scheme's reclamation pressure. RetiredNotFreed and
// MaxRetiredNotFreed are the quantities bounded by the paper's Table 1.
type Stats struct {
	Retired            uint64
	Freed              uint64
	RetiredNotFreed    int64
	MaxRetiredNotFreed int64
}

// Scheme is the manual reclamation interface shared by all schemes.
//
// GetProtected loads *addr and protects the referenced object in slot
// idx of the calling thread's hazardous-pointer array, looping until the
// published protection is validated against addr. The returned handle
// keeps whatever tag bits were stored. Protect publishes an
// already-loaded handle without validation (safe only when the object is
// already protected through another slot or otherwise pinned). Clear
// resets one slot; ClearAll resets every slot of the thread and must be
// called when an operation completes. Retire hands over an unreachable
// object; BeginOp/EndOp bracket a data-structure operation (meaningful
// for the epoch- and era-based schemes, no-ops elsewhere). OnAlloc
// stamps a freshly allocated object (era schemes); structures call it
// right after arena.Alloc.
type Scheme interface {
	Name() string
	BeginOp(tid int)
	EndOp(tid int)
	GetProtected(tid, idx int, addr *atomic.Uint64) arena.Handle
	Protect(tid, idx int, h arena.Handle)
	Clear(tid, idx int)
	ClearAll(tid int)
	Retire(tid int, h arena.Handle)
	OnAlloc(h arena.Handle)
	// Flush makes a best effort to drain this thread's deferred frees;
	// tests call it at quiescent points.
	Flush(tid int)
	// RetireDepth reports how many retired-but-not-yet-freed objects the
	// scheme currently holds on behalf of tid (thread-local retired/limbo
	// list length, or parked handover slots for the list-free schemes).
	// Zero for schemes that keep no per-thread state; the global pending
	// count is Stats().RetiredNotFreed.
	RetireDepth(tid int) int
	Stats() Stats
}

// counters implements the shared Stats bookkeeping.
type counters struct {
	retired atomic.Uint64
	freed   atomic.Uint64
	pending atomic.Int64
	maxPend atomic.Int64
}

func (c *counters) onRetire() {
	c.retired.Add(1)
	p := c.pending.Add(1)
	for {
		m := c.maxPend.Load()
		if p <= m || c.maxPend.CompareAndSwap(m, p) {
			return
		}
	}
}

func (c *counters) onFree() {
	c.freed.Add(1)
	c.pending.Add(-1)
}

func (c *counters) snapshot() Stats {
	return Stats{
		Retired:            c.retired.Load(),
		Freed:              c.freed.Load(),
		RetiredNotFreed:    c.pending.Load(),
		MaxRetiredNotFreed: c.maxPend.Load(),
	}
}

// Names lists every scheme constructible by New, in presentation order.
func Names() []string {
	return []string{"none", "hp", "ptb", "ptp", "ebr", "he", "ibr"}
}

// Canonical resolves a scheme name or alias ("leak"→"none",
// "2geibr"→"ibr") to its canonical form, reporting whether the name is
// known. It is the single scheme-by-name resolver shared by the bench
// registry, cmd flag parsing, and the kv service.
func Canonical(name string) (string, bool) {
	switch name {
	case "none", "leak":
		return "none", true
	case "hp", "ptb", "ptp", "ebr", "he":
		return name, true
	case "ibr", "2geibr":
		return "ibr", true
	case "unsafe":
		return "unsafe", true
	default:
		return "", false
	}
}

// New constructs a scheme by name (aliases accepted, see Canonical).
func New(name string, env Env, cfg Config) Scheme {
	canon, ok := Canonical(name)
	if !ok {
		panic(fmt.Sprintf("reclaim: unknown scheme %q", name))
	}
	switch canon {
	case "none":
		return NewNone(env, cfg)
	case "hp":
		return NewHP(env, cfg)
	case "ptb":
		return NewPTB(env, cfg)
	case "ptp":
		return NewPTP(env, cfg)
	case "ebr":
		return NewEBR(env, cfg)
	case "he":
		return NewHE(env, cfg)
	case "ibr":
		return NewIBR(env, cfg)
	default:
		return NewUnsafe(env, cfg)
	}
}
