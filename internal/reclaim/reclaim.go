// Package reclaim implements the manual lock-free memory reclamation
// schemes compared in the paper's evaluation: hazard pointers (HP),
// pass-the-buck (PTB), the paper's pass-the-pointer (PTP, §3.1 /
// Algorithm 2), epoch-based reclamation (EBR), hazard eras (HE),
// two-generation interval-based reclamation (2GEIBR), plus a leaking
// baseline (None) and a deliberately unsafe scheme used to demonstrate
// that the arena's generation check catches use-after-free.
//
// All schemes operate on arena.Handle references. A data structure built
// on a scheme follows the classic manual protocol: GetProtected before
// dereferencing a shared link, Retire once a node is unreachable,
// ClearAll when an operation finishes.
//
// Schemes are constructed through the factory: New(name, env, opts)
// resolves a name or alias against a self-registering registry (each
// scheme file Registers itself in init), so adding a scheme never means
// touching a switch statement in the callers. The "Pointer Life Cycle
// Types" line of work argues protocol misuse is reclamation's chronic
// failure mode; a single factory entry point with an error return (and
// MustNew for static names) is this package's answer on the
// construction side.
package reclaim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/obs"
	"repro/internal/rt"
)

// Env binds a scheme to the arena holding its objects.
type Env struct {
	// Free returns an object to the allocator. Called exactly once per
	// retired object, at a point where the scheme has proven no thread
	// can still dereference it. The tid is the reclaiming thread's id:
	// arena.FreeT uses it to return the slot to that thread's magazine
	// cache, keeping the scheme's free path off the shared free lists.
	Free func(tid int, h arena.Handle)
	// Hdr exposes the object's two scheme header words (birth/retire
	// eras for HE and IBR). May be nil for schemes that keep no
	// per-object state.
	Hdr func(arena.Handle) (*atomic.Uint64, *atomic.Uint64)
}

// Options sizes a scheme's per-thread structures and, optionally, wires
// the instance into the observability layer.
type Options struct {
	MaxThreads int // capacity of the tid space
	MaxHPs     int // H: hazardous pointers per thread the structure needs

	// ScanThreshold overrides the scheme's classic base retire threshold
	// (HP: 2·H·t, HE/IBR: H·t, each floored at 64). The adaptive policy
	// still moves the per-thread threshold from this base within its
	// clamps; deterministic tests use a small override to force scans.
	// 0 means the classic default.
	ScanThreshold int

	// Label namespaces this instance's metrics (e.g. "shard0/map");
	// empty defaults to the scheme name. Ignored when Metrics is nil.
	Label string
	// Metrics, when non-nil, registers this instance's reclamation
	// pressure under "reclaim/<Label>/..." (retired, freed, pending,
	// retire_depth gauges — evaluated at scrape, costing the hot path
	// nothing) and enables the sampled retire→free latency histogram
	// and the trace-ring hooks. Nil (the default) leaves every hot
	// path uninstrumented.
	Metrics *obs.Registry
}

// Config is the former name of Options.
//
// Deprecated: use Options. Kept as an alias so pre-factory call sites
// keep compiling for one PR.
type Config = Options

func (c *Options) defaults() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	if c.MaxHPs <= 0 {
		c.MaxHPs = 8
	}
}

// Stats reports a scheme's reclamation pressure. RetiredNotFreed and
// MaxRetiredNotFreed are the quantities bounded by the paper's Table 1.
type Stats struct {
	Retired            uint64
	Freed              uint64
	RetiredNotFreed    int64
	MaxRetiredNotFreed int64
}

// Scheme is the manual reclamation interface shared by all schemes.
//
// GetProtected loads *addr and protects the referenced object in slot
// idx of the calling thread's hazardous-pointer array, looping until the
// published protection is validated against addr. The returned handle
// keeps whatever tag bits were stored. Protect publishes an
// already-loaded handle without validation (safe only when the object is
// already protected through another slot or otherwise pinned). Clear
// resets one slot; ClearAll resets every slot of the thread and must be
// called when an operation completes. Retire hands over an unreachable
// object; BeginOp/EndOp bracket a data-structure operation (meaningful
// for the epoch- and era-based schemes, no-ops elsewhere). OnAlloc
// stamps a freshly allocated object (era schemes); structures call it
// right after arena.Alloc.
type Scheme interface {
	Name() string
	BeginOp(tid int)
	EndOp(tid int)
	GetProtected(tid, idx int, addr *atomic.Uint64) arena.Handle
	Protect(tid, idx int, h arena.Handle)
	Clear(tid, idx int)
	ClearAll(tid int)
	Retire(tid int, h arena.Handle)
	OnAlloc(h arena.Handle)
	// Flush makes a best effort to drain this thread's deferred frees;
	// tests call it at quiescent points.
	Flush(tid int)
	// RetireDepth reports how many retired-but-not-yet-freed objects the
	// scheme currently holds on behalf of tid (thread-local retired/limbo
	// list length, or parked handover slots for the list-free schemes).
	// Zero for schemes that keep no per-thread state; the global pending
	// count is Stats().RetiredNotFreed.
	RetireDepth(tid int) int
	Stats() Stats
}

// ---------------------------------------------------------------------
// Scheme registry

// Builder constructs one scheme instance. opts arrives with defaults
// applied.
type Builder func(env Env, opts Options) Scheme

// Registration describes a scheme to the factory.
type Registration struct {
	Name    string   // canonical name
	Aliases []string // accepted synonyms ("leak" → "none")
	Rank    int      // position in Names() — the paper's presentation order
	Hidden  bool     // constructible but absent from Names() ("unsafe")
	Build   Builder
}

var (
	regMu   sync.RWMutex
	schemes = map[string]Registration{}
	aliases = map[string]string{}
)

// Register adds a scheme to the factory. Each scheme file calls it from
// init, so the registry is complete before any New. Registering a
// duplicate name or alias panics — it is a programming error, caught at
// process start.
func Register(r Registration) {
	regMu.Lock()
	defer regMu.Unlock()
	if r.Name == "" || r.Build == nil {
		panic("reclaim: Register needs a name and a builder")
	}
	if _, dup := schemes[r.Name]; dup {
		panic(fmt.Sprintf("reclaim: scheme %q registered twice", r.Name))
	}
	if _, dup := aliases[r.Name]; dup {
		panic(fmt.Sprintf("reclaim: scheme %q collides with an alias", r.Name))
	}
	schemes[r.Name] = r
	for _, a := range r.Aliases {
		if _, dup := aliases[a]; dup {
			panic(fmt.Sprintf("reclaim: alias %q registered twice", a))
		}
		if _, dup := schemes[a]; dup {
			panic(fmt.Sprintf("reclaim: alias %q collides with a scheme", a))
		}
		aliases[a] = r.Name
	}
}

// Names lists every registered, non-hidden scheme in presentation order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	regs := make([]Registration, 0, len(schemes))
	for _, r := range schemes {
		if !r.Hidden {
			regs = append(regs, r)
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Rank < regs[j].Rank })
	out := make([]string, len(regs))
	for i, r := range regs {
		out[i] = r.Name
	}
	return out
}

// Canonical resolves a scheme name or alias ("leak"→"none",
// "2geibr"→"ibr") to its canonical form, reporting whether the name is
// known. It is the single scheme-by-name resolver shared by the bench
// registry, cmd flag parsing, and the kv service.
func Canonical(name string) (string, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if _, ok := schemes[name]; ok {
		return name, true
	}
	if c, ok := aliases[name]; ok {
		return c, true
	}
	return "", false
}

func lookup(name string) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if c, ok := aliases[name]; ok {
		name = c
	}
	r, ok := schemes[name]
	return r, ok
}

// New constructs a scheme by name (aliases accepted, see Canonical). An
// unknown name is an error, not a panic: scheme names arrive from flags
// and network config, and the factory is where they are validated.
func New(name string, env Env, opts Options) (Scheme, error) {
	reg, ok := lookup(name)
	if !ok {
		return nil, fmt.Errorf("reclaim: unknown scheme %q (have %v)", name, Names())
	}
	opts.defaults()
	s := reg.Build(env, opts)
	if opts.Metrics != nil {
		instrument(s, reg.Name, opts)
	}
	return s, nil
}

// MustNew is New for statically known names; it panics on error.
// Data-structure constructors that take a scheme name from a trusted
// caller use it.
func MustNew(name string, env Env, opts Options) Scheme {
	s, err := New(name, env, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// ---------------------------------------------------------------------
// Shared counters + instrumentation

// spanSlots sizes the sampled retire→free latency table; spanSampleMask
// selects which retires start a span (1 in 64).
const (
	spanSlots      = 512
	spanSampleMask = 63
)

type spanSlot struct {
	h  atomic.Uint64
	ns atomic.Int64
}

// spanTable tracks a sampled subset of in-flight retirements so the
// free path can report how long objects sit on retired lists. Start
// claims an empty hash slot (occupied slots drop the sample — sampling
// is best-effort by design); end adopts the slot with one CAS.
type spanTable struct {
	slots [spanSlots]spanSlot
}

func spanHash(h uint64) uint64 { return (h * 0x9e3779b97f4a7c15) >> 32 }

func (t *spanTable) start(h uint64, ns int64) {
	s := &t.slots[spanHash(h)&(spanSlots-1)]
	if s.h.Load() != 0 {
		return
	}
	s.ns.Store(ns)
	s.h.CompareAndSwap(0, h)
}

func (t *spanTable) end(h uint64) (int64, bool) {
	s := &t.slots[spanHash(h)&(spanSlots-1)]
	if s.h.Load() != h || !s.h.CompareAndSwap(h, 0) {
		return 0, false
	}
	return s.ns.Load(), true
}

// instr is the optional per-instance observability state hanging off
// counters. All hot-path uses are guarded by a single nil check.
type instr struct {
	label   uint16    // trace-ring label id
	lat     *obs.Hist // sampled retire→free latency (ns)
	scanLat *obs.Hist // scan duration (ns), one observation per scan
	spans   spanTable
}

// counters implements the shared Stats bookkeeping.
type counters struct {
	retired atomic.Uint64
	freed   atomic.Uint64
	pending atomic.Int64
	maxPend atomic.Int64
	inst    *instr // nil unless Options.Metrics was set
}

// hooks exposes the embedded counters to the factory's instrumentation;
// it is promoted through embedding on every scheme.
func (c *counters) hooks() *counters { return c }

func (c *counters) onRetire(tid int, h arena.Handle) {
	rt.Step(rt.SiteRetire, tid)
	n := c.retired.Add(1)
	p := c.pending.Add(1)
	for {
		m := c.maxPend.Load()
		if p <= m || c.maxPend.CompareAndSwap(m, p) {
			break
		}
	}
	if in := c.inst; in != nil {
		if obs.TraceOn() {
			obs.Trace.Record(obs.KindRetire, in.label, tid, uint64(h.Unmarked()))
		}
		if n&spanSampleMask == 0 {
			in.spans.start(uint64(h.Unmarked()), time.Now().UnixNano())
		}
	}
}

func (c *counters) onFree(tid int, h arena.Handle) {
	rt.Step(rt.SiteReclaim, tid)
	c.freed.Add(1)
	c.pending.Add(-1)
	if in := c.inst; in != nil {
		if obs.TraceOn() {
			obs.Trace.Record(obs.KindFree, in.label, tid, uint64(h.Unmarked()))
		}
		if ns, ok := in.spans.end(uint64(h.Unmarked())); ok {
			if d := time.Now().UnixNano() - ns; d >= 0 {
				in.lat.Observe(uint64(d))
			}
		}
	}
}

// onScan records one scan's duration into the instance histogram; free
// outside the instrumented path (one nil check per scan, not per op).
func (c *counters) onScan(d time.Duration) {
	if in := c.inst; in != nil && in.scanLat != nil {
		in.scanLat.Observe(uint64(d.Nanoseconds()))
	}
}

func (c *counters) snapshot() Stats {
	return Stats{
		Retired:            c.retired.Load(),
		Freed:              c.freed.Load(),
		RetiredNotFreed:    c.pending.Load(),
		MaxRetiredNotFreed: c.maxPend.Load(),
	}
}

// instrument wires one constructed scheme into opts.Metrics under
// "reclaim/<label>/...". The retired/freed/pending/retire_depth figures
// are gauge funcs over state the scheme maintains anyway, so the hot
// path pays only for the latency sampling and (when enabled) the trace
// ring.
func instrument(s Scheme, canonical string, opts Options) {
	h, ok := s.(interface{ hooks() *counters })
	if !ok {
		return
	}
	label := opts.Label
	if label == "" {
		label = canonical
	}
	prefix := "reclaim/" + label
	c := h.hooks()
	c.inst = &instr{
		label: obs.TraceLabel(label),
		lat:   opts.Metrics.Hist(prefix + "/free_lat_ns"),
	}
	opts.Metrics.GaugeFunc(prefix+"/retired", func() int64 { return int64(c.retired.Load()) })
	opts.Metrics.GaugeFunc(prefix+"/freed", func() int64 { return int64(c.freed.Load()) })
	opts.Metrics.GaugeFunc(prefix+"/pending", func() int64 { return c.pending.Load() })
	opts.Metrics.GaugeFunc(prefix+"/pending_max", func() int64 { return c.maxPend.Load() })
	maxThreads := opts.MaxThreads
	opts.Metrics.GaugeFunc(prefix+"/retire_depth", func() int64 {
		var d int64
		for t := 0; t < maxThreads; t++ {
			d += int64(s.RetireDepth(t))
		}
		return d
	})
	if ss, ok := s.(ScanStatser); ok {
		c.inst.scanLat = opts.Metrics.Hist(prefix + "/scan_ns")
		opts.Metrics.GaugeFunc(prefix+"/elisions", func() int64 { return int64(ss.ScanStats().Elisions) })
		opts.Metrics.GaugeFunc(prefix+"/scans", func() int64 { return int64(ss.ScanStats().Scans) })
		opts.Metrics.GaugeFunc(prefix+"/scan_freed_ratio_bp", func() int64 { return ss.ScanStats().FreedRatioBP })
		opts.Metrics.GaugeFunc(prefix+"/scan_threshold", func() int64 { return int64(ss.ScanStats().Threshold) })
		registerScanDebug(label, ss.ScanStats)
	}
}
