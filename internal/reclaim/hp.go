package reclaim

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/rt"
)

// hpArrays is the published hazardous-pointer matrix shared by the
// pointer-based schemes: one single-writer row per thread, readable by
// every retiring thread. Entries hold unmarked handles.
type hpArrays struct {
	rows [][]atomic.Uint64
	hps  int
}

func newHPArrays(threads, hps int) *hpArrays {
	a := &hpArrays{rows: make([][]atomic.Uint64, threads), hps: hps}
	for i := range a.rows {
		// One backing array per thread keeps rows on separate cache
		// lines without explicit padding structs.
		a.rows[i] = make([]atomic.Uint64, hps+8)
	}
	return a
}

func (a *hpArrays) publish(tid, idx int, h arena.Handle) {
	a.rows[tid][idx].Store(uint64(h.Unmarked()))
}

func (a *hpArrays) read(tid, idx int) arena.Handle {
	return arena.Handle(a.rows[tid][idx].Load())
}

func (a *hpArrays) clear(tid, idx int) {
	a.rows[tid][idx].Store(0)
}

func (a *hpArrays) clearAll(tid int) {
	for i := 0; i < a.hps; i++ {
		a.rows[tid][i].Store(0)
	}
}

// PublishWithSwap mirrors core.PublishWithSwap for the manual schemes:
// publish hazardous pointers with exchange instead of store (the
// Intel/AMD ablation of DESIGN.md). Flip only at quiescence.
var PublishWithSwap atomic.Bool

// getProtected is the protection loop shared verbatim by HP, PTB and PTP
// (the paper notes the three schemes protect identically): re-publish
// until the address still holds the published value.
func (a *hpArrays) getProtected(tid, idx int, addr *atomic.Uint64) arena.Handle {
	swap := PublishWithSwap.Load()
	var published arena.Handle = ^arena.Handle(0)
	for {
		v := arena.Handle(addr.Load())
		if v.Unmarked() == published {
			// Torture injection point: the caller's hazardous pointer is
			// published and validated, so a stall parked here pins the
			// object for as long as the hook blocks.
			rt.Step(rt.SiteProtect, tid)
			return v
		}
		published = v.Unmarked()
		if swap {
			a.rows[tid][idx].Swap(uint64(published))
		} else {
			a.rows[tid][idx].Store(uint64(published))
		}
	}
}

// HP is Michael's hazard-pointers scheme: per-thread retired lists,
// amortized scans that free every retired object not currently
// published. Bound on unreclaimed objects: O(H·t²).
type HP struct {
	counters
	env Env
	cfg Config
	hp  *hpArrays
	// per-thread retired lists; single-owner, no synchronization
	retired [][]arena.Handle
	// scan threshold: classic R = 2·H·t
	threshold int
}

func init() {
	Register(Registration{
		Name:  "hp",
		Rank:  1,
		Build: func(env Env, opts Options) Scheme { return newHP(env, opts) },
	})
}

// newHP builds a hazard-pointers instance; construct via New("hp", …).
func newHP(env Env, cfg Options) *HP {
	cfg.defaults()
	h := &HP{
		env:       env,
		cfg:       cfg,
		hp:        newHPArrays(cfg.MaxThreads, cfg.MaxHPs),
		retired:   make([][]arena.Handle, cfg.MaxThreads),
		threshold: 2 * cfg.MaxHPs * cfg.MaxThreads,
	}
	if h.threshold < 64 {
		h.threshold = 64
	}
	return h
}

// Name returns "hp".
func (*HP) Name() string { return "hp" }

// BeginOp is a no-op for HP.
func (*HP) BeginOp(int) {}

// EndOp is a no-op for HP.
func (*HP) EndOp(int) {}

// GetProtected implements the standard hazard-pointer protection loop.
func (h *HP) GetProtected(tid, idx int, addr *atomic.Uint64) arena.Handle {
	return h.hp.getProtected(tid, idx, addr)
}

// Protect publishes an already-pinned handle.
func (h *HP) Protect(tid, idx int, v arena.Handle) { h.hp.publish(tid, idx, v) }

// Clear clears one slot.
func (h *HP) Clear(tid, idx int) { h.hp.clear(tid, idx) }

// ClearAll clears the thread's row.
func (h *HP) ClearAll(tid int) { h.hp.clearAll(tid) }

// OnAlloc is a no-op for HP.
func (*HP) OnAlloc(arena.Handle) {}

// Retire appends to the thread's retired list and scans when the list
// reaches the threshold.
func (h *HP) Retire(tid int, v arena.Handle) {
	h.onRetire(tid, v)
	h.retired[tid] = append(h.retired[tid], v.Unmarked())
	if len(h.retired[tid]) >= h.threshold {
		h.scan(tid)
	}
}

// Flush runs a scan unconditionally.
func (h *HP) Flush(tid int) { h.scan(tid) }

// RetireDepth reports the length of tid's retired list.
func (h *HP) RetireDepth(tid int) int { return len(h.retired[tid]) }

func (h *HP) scan(tid int) {
	published := make(map[arena.Handle]struct{}, h.cfg.MaxThreads*h.cfg.MaxHPs)
	for t := 0; t < h.cfg.MaxThreads; t++ {
		for i := 0; i < h.cfg.MaxHPs; i++ {
			if p := h.hp.read(t, i); !p.IsNil() {
				published[p] = struct{}{}
			}
		}
	}
	keep := h.retired[tid][:0]
	for _, v := range h.retired[tid] {
		if _, hazardous := published[v]; hazardous {
			keep = append(keep, v)
			continue
		}
		h.env.Free(tid, v)
		h.onFree(tid, v)
	}
	h.retired[tid] = keep
}

// Stats reports counters.
func (h *HP) Stats() Stats { return h.snapshot() }
