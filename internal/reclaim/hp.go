package reclaim

import (
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/rt"
)

// hpArrays is the published hazardous-pointer matrix shared by the
// pointer-based schemes: one single-writer row per thread, readable by
// every retiring thread. Entries hold unmarked handles.
//
// Each row carries a plain (non-atomic) shadow mirror written only by
// the owning thread. The shadow is what makes the protection fast path
// possible: before storing to the shared row — a seq-cst store Go
// compiles to XCHG on amd64, plus a potential remote invalidation of
// every scanning reader's cached copy — the owner checks the shadow and
// elides the store when the slot already holds the value. The elision
// is safe because the slot's published protection is exactly the value
// being republished: any scan concurrent with the elided call already
// sees the handle, and the caller's validating re-read of the source
// address is unaffected. See DESIGN.md §1.2.
type hpArrays struct {
	rows   [][]atomic.Uint64
	shadow [][]uint64        // owner-written mirror of rows
	elide  []rt.PaddedUint64 // per-thread elided publishes
	hps    int
}

func newHPArrays(threads, hps int) *hpArrays {
	a := &hpArrays{
		rows:   make([][]atomic.Uint64, threads),
		shadow: make([][]uint64, threads),
		elide:  make([]rt.PaddedUint64, threads),
		hps:    hps,
	}
	for i := range a.rows {
		// One backing array per thread keeps rows on separate cache
		// lines without explicit padding structs.
		a.rows[i] = make([]atomic.Uint64, hps+8)
		a.shadow[i] = make([]uint64, hps+8)
	}
	return a
}

func (a *hpArrays) publish(tid, idx int, h arena.Handle) {
	u := uint64(h.Unmarked())
	if a.shadow[tid][idx] == u {
		// Elision fast path: the slot already publishes u. Torture
		// injection point inside the branch — a stall parked here must
		// still be protected by the untouched slot.
		c := &a.elide[tid]
		c.Store(c.Load() + 1)
		rt.Step(rt.SiteProtect, tid)
		return
	}
	a.shadow[tid][idx] = u
	a.rows[tid][idx].Store(u)
}

func (a *hpArrays) read(tid, idx int) arena.Handle {
	return arena.Handle(a.rows[tid][idx].Load())
}

func (a *hpArrays) clear(tid, idx int) {
	if a.shadow[tid][idx] == 0 {
		return
	}
	a.shadow[tid][idx] = 0
	a.rows[tid][idx].Store(0)
}

func (a *hpArrays) clearAll(tid int) {
	for i := 0; i < a.hps; i++ {
		a.clear(tid, i)
	}
}

// elisions sums the elided publishes across threads.
func (a *hpArrays) elisions() uint64 {
	var n uint64
	for i := range a.elide {
		n += a.elide[i].Load()
	}
	return n
}

// PublishWithSwap mirrors core.PublishWithSwap for the manual schemes:
// publish hazardous pointers with exchange instead of store (the
// Intel/AMD ablation of DESIGN.md). Flip only at quiescence.
var PublishWithSwap atomic.Bool

// getProtected is the protection loop shared verbatim by HP, PTB and PTP
// (the paper notes the three schemes protect identically): re-publish
// until the address still holds the published value. The loop seeds its
// "published" value from the shadow, so a hop that lands on the handle
// the slot already protects — the common case when retrying a traversal
// or revisiting the same node — validates immediately with no store at
// all (the elision fast path).
func (a *hpArrays) getProtected(tid, idx int, addr *atomic.Uint64) arena.Handle {
	swap := PublishWithSwap.Load()
	sh := a.shadow[tid]
	published := sh[idx]
	stored := false
	for {
		v := arena.Handle(addr.Load())
		u := uint64(v.Unmarked())
		if u == published {
			if !stored {
				c := &a.elide[tid]
				c.Store(c.Load() + 1)
			}
			// Torture injection point: the caller's hazardous pointer is
			// published and validated, so a stall parked here pins the
			// object for as long as the hook blocks — on the elided path
			// the protection predates this call entirely.
			rt.Step(rt.SiteProtect, tid)
			return v
		}
		if swap {
			a.rows[tid][idx].Swap(u)
		} else {
			a.rows[tid][idx].Store(u)
		}
		sh[idx] = u
		published = u
		stored = true
	}
}

// HP is Michael's hazard-pointers scheme: per-thread retired lists,
// amortized scans that free every retired object not currently
// published. Bound on unreclaimed objects: O(H·t²).
type HP struct {
	counters
	env Env
	cfg Config
	hp  *hpArrays
	// per-thread retired lists; single-owner, no synchronization
	retired [][]arena.Handle
	eng     *scanEngine
}

func init() {
	Register(Registration{
		Name:  "hp",
		Rank:  1,
		Build: func(env Env, opts Options) Scheme { return newHP(env, opts) },
	})
}

// newHP builds a hazard-pointers instance; construct via New("hp", …).
func newHP(env Env, cfg Options) *HP {
	cfg.defaults()
	// Classic base threshold R = 2·H·t; Options.ScanThreshold overrides.
	base := 2 * cfg.MaxHPs * cfg.MaxThreads
	if base < 64 {
		base = 64
	}
	if cfg.ScanThreshold > 0 {
		base = cfg.ScanThreshold
	}
	return &HP{
		env:     env,
		cfg:     cfg,
		hp:      newHPArrays(cfg.MaxThreads, cfg.MaxHPs),
		retired: make([][]arena.Handle, cfg.MaxThreads),
		eng:     newScanEngine(cfg.MaxThreads, cfg.MaxThreads*cfg.MaxHPs, base),
	}
}

// Name returns "hp".
func (*HP) Name() string { return "hp" }

// BeginOp is a no-op for HP.
func (*HP) BeginOp(int) {}

// EndOp is a no-op for HP.
func (*HP) EndOp(int) {}

// GetProtected implements the standard hazard-pointer protection loop.
func (h *HP) GetProtected(tid, idx int, addr *atomic.Uint64) arena.Handle {
	return h.hp.getProtected(tid, idx, addr)
}

// Protect publishes an already-pinned handle.
func (h *HP) Protect(tid, idx int, v arena.Handle) { h.hp.publish(tid, idx, v) }

// Clear clears one slot.
func (h *HP) Clear(tid, idx int) { h.hp.clear(tid, idx) }

// ClearAll clears the thread's row.
func (h *HP) ClearAll(tid int) { h.hp.clearAll(tid) }

// OnAlloc is a no-op for HP.
func (*HP) OnAlloc(arena.Handle) {}

// Retire scans when the thread's retired list has reached the adaptive
// threshold, then appends. Scanning before the append caps the list: a
// scan that frees nothing cannot let the list grow past threshold by a
// whole batch before the next scan fires (the adaptive policy raises
// the threshold instead, up to its clamp).
func (h *HP) Retire(tid int, v arena.Handle) {
	h.onRetire(tid, v)
	if len(h.retired[tid]) >= h.eng.threshold(tid) {
		h.scan(tid)
	}
	h.retired[tid] = append(h.retired[tid], v.Unmarked())
}

// Flush runs a scan unconditionally.
func (h *HP) Flush(tid int) { h.scan(tid) }

// RetireDepth reports the length of tid's retired list.
func (h *HP) RetireDepth(tid int) int { return len(h.retired[tid]) }

func (h *HP) scan(tid int) {
	start := time.Now()
	published := h.eng.snapshotHP(tid, h.hp, h.cfg.MaxThreads, h.cfg.MaxHPs)
	batch := len(h.retired[tid])
	keep := h.retired[tid][:0]
	for _, v := range h.retired[tid] {
		if arena.SearchHandles(published, v) {
			keep = append(keep, v)
			continue
		}
		h.env.Free(tid, v)
		h.onFree(tid, v)
	}
	h.retired[tid] = keep
	h.eng.afterScan(tid, batch, batch-len(keep), time.Since(start))
	h.onScan(time.Since(start))
}

// ScanStats reports the scan engine's counters plus the protection
// elisions of the shared hazardous-pointer matrix.
func (h *HP) ScanStats() ScanStats {
	s := h.eng.stats()
	s.Elisions += h.hp.elisions()
	return s
}

// Stats reports counters.
func (h *HP) Stats() Stats { return h.snapshot() }
