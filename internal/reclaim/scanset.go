package reclaim

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/obs"
	"repro/internal/rt"
)

// The scan engine is the shared zero-allocation substrate behind the
// scanning schemes (HP, HE, IBR). The seed implementations rebuilt a
// map[Handle]struct{} of the published set on every scan — an
// allocation, a hash per probe, and GC pressure exactly on the
// reclamation critical path. The engine replaces that with one reusable
// per-thread snapshot buffer per scheme: the published set is collected
// once per scan into a buffer grown once to its maximum possible size
// (threads × slots), sorted in place, and probed by binary search.
// Steady-state scans allocate nothing (enforced by TestScanZeroAlloc).
//
// The engine also owns the retire threshold, and makes it adaptive: a
// scan that frees almost none of its batch means readers are pinning
// the retired set, so scanning again soon is wasted work — the
// threshold doubles (up to a clamp). A scan that frees almost all of
// its batch means reclamation is keeping up and the pending list can be
// kept short — the threshold halves (down to a clamp). Thresholds are
// per-thread (each thread owns its retired list), the policy is applied
// by the scanning thread only, and the knob is observable through
// Scheme.ScanStats, bench.Admin and the /debug/reclaim endpoint.

// Adaptive threshold policy: grow when a scan frees < 25% of its batch,
// shrink when it frees > 75%, always clamped to [minThreshold,
// maxThreshold].
const (
	scanGrowBelowBP   = 2500 // basis points of batch freed
	scanShrinkAboveBP = 7500
)

var scanAdaptive atomic.Bool

func init() {
	scanAdaptive.Store(true)
	// Surface the scan engine on /debug/reclaim without obs importing
	// this package: the handler asks the registered provider for a
	// snapshot and routes the adaptive toggle back here.
	obs.SetScanDebug(&obs.ScanDebug{
		Info:        func() any { return ScanDebugSnapshot() },
		SetAdaptive: SetAdaptiveScan,
		Adaptive:    AdaptiveScanEnabled,
	})
}

// SetAdaptiveScan flips the adaptive retire-threshold policy for every
// scan engine in the process (default on). With it off, thresholds
// freeze at their current values.
func SetAdaptiveScan(on bool) { scanAdaptive.Store(on) }

// AdaptiveScanEnabled reports the global adaptive-threshold switch.
func AdaptiveScanEnabled() bool { return scanAdaptive.Load() }

// ScanStats snapshots one scheme instance's scan-engine state. The
// counters aggregate across threads; Threshold is the largest current
// per-thread threshold.
type ScanStats struct {
	Scans            uint64 `json:"scans"`               // scans executed
	Scanned          uint64 `json:"scanned"`             // retired objects examined
	Freed            uint64 `json:"freed"`               // objects freed by scans
	ScanNs           int64  `json:"scan_ns"`             // total time inside scans
	Elisions         uint64 `json:"elisions"`            // protection publishes elided
	Threshold        int    `json:"threshold"`           // current (max across threads)
	MinThreshold     int    `json:"min_threshold"`       // clamp floor
	MaxThreshold     int    `json:"max_threshold"`       // clamp ceiling
	FreedRatioBP     int64  `json:"freed_ratio_bp"`      // lifetime freed/scanned, basis points
	LastFreedRatioBP int64  `json:"last_freed_ratio_bp"` // most recent scan (max across threads)
	Adaptive         bool   `json:"adaptive"`
}

// ScanStatser is implemented by schemes that expose scan-engine or
// protection-elision accounting.
type ScanStatser interface {
	ScanStats() ScanStats
}

// iv is one [lo, hi] era reservation interval.
type iv struct{ lo, hi uint64 }

// padWord is a plain, owner-written word alone on its cache line —
// the per-thread shadow of a published slot (see the elision fast
// path in hp.go/he.go/ibr.go/ebr.go).
type padWord struct {
	v uint64
	_ [rt.CacheLine - 8]byte
}

// scanTL is one thread's engine state. The snapshot buffers are touched
// only by the owning thread during its own scans; the threshold and the
// counters are written by the owner and read concurrently by metrics
// gauges, so they are atomics (single-writer, no RMW contention).
type scanTL struct {
	snap  []arena.Handle // reusable published-handle snapshot (HP)
	eras  []uint64       // reusable era snapshot (HE)
	ivs   []iv           // reusable interval snapshot, sorted by lo (IBR)
	maxHi []uint64       // prefix maxima over ivs[..i].hi (IBR)

	threshold   atomic.Int64
	scans       atomic.Uint64
	scanned     atomic.Uint64
	freed       atomic.Uint64
	scanNs      atomic.Int64
	elide       atomic.Uint64
	lastRatioBP atomic.Int64

	_ [rt.CacheLine]byte
}

// scanEngine holds the per-thread scan state for one scheme instance.
type scanEngine struct {
	base    int // initial threshold
	minT    int // clamp floor
	maxT    int // clamp ceiling
	snapCap int // maximum possible snapshot size (threads × slots)
	tl      []scanTL
}

// newScanEngine sizes an engine for a scheme with the given per-thread
// base threshold and a published set of at most snapCap entries.
func newScanEngine(threads, snapCap, base int) *scanEngine {
	if base < 1 {
		base = 1
	}
	e := &scanEngine{
		base:    base,
		minT:    max(8, base/4),
		maxT:    base * 16,
		snapCap: snapCap,
		tl:      make([]scanTL, threads),
	}
	if e.minT > base {
		e.minT = base
	}
	for i := range e.tl {
		e.tl[i].threshold.Store(int64(base))
	}
	return e
}

// threshold returns tid's current retire threshold.
func (e *scanEngine) threshold(tid int) int { return int(e.tl[tid].threshold.Load()) }

// noteElide records one elided protection publish for tid.
func (e *scanEngine) noteElide(tid int) {
	c := &e.tl[tid].elide
	c.Store(c.Load() + 1)
}

// afterScan books one scan's outcome and applies the adaptive policy.
// batch is the retired-list length the scan examined, freed how many it
// reclaimed. Flush-driven scans over empty lists (batch 0) count as
// scans but do not move the threshold.
func (e *scanEngine) afterScan(tid, batch, freed int, dur time.Duration) {
	tl := &e.tl[tid]
	tl.scans.Store(tl.scans.Load() + 1)
	tl.scanned.Store(tl.scanned.Load() + uint64(batch))
	tl.freed.Store(tl.freed.Load() + uint64(freed))
	tl.scanNs.Store(tl.scanNs.Load() + dur.Nanoseconds())
	if batch == 0 {
		return
	}
	ratioBP := int64(freed) * 10000 / int64(batch)
	tl.lastRatioBP.Store(ratioBP)
	if !scanAdaptive.Load() {
		return
	}
	t := int(tl.threshold.Load())
	switch {
	case ratioBP < scanGrowBelowBP:
		t *= 2
		if t > e.maxT {
			t = e.maxT
		}
	case ratioBP > scanShrinkAboveBP:
		t /= 2
		if t < e.minT {
			t = e.minT
		}
	default:
		return
	}
	tl.threshold.Store(int64(t))
}

// stats aggregates the engine counters across threads.
func (e *scanEngine) stats() ScanStats {
	s := ScanStats{
		MinThreshold: e.minT,
		MaxThreshold: e.maxT,
		Adaptive:     scanAdaptive.Load(),
	}
	for i := range e.tl {
		tl := &e.tl[i]
		s.Scans += tl.scans.Load()
		s.Scanned += tl.scanned.Load()
		s.Freed += tl.freed.Load()
		s.ScanNs += tl.scanNs.Load()
		s.Elisions += tl.elide.Load()
		if t := int(tl.threshold.Load()); t > s.Threshold {
			s.Threshold = t
		}
		if r := tl.lastRatioBP.Load(); r > s.LastFreedRatioBP {
			s.LastFreedRatioBP = r
		}
	}
	if s.Scanned > 0 {
		s.FreedRatioBP = int64(s.Freed) * 10000 / int64(s.Scanned)
	}
	return s
}

// ---------------------------------------------------------------------
// Snapshot builders: one pass over the published set per scan, into
// tid's reusable buffer, sorted for binary-search probes. The buffers
// are grown once to snapCap and never reallocated.

// snapshotHP collects the non-nil published hazardous pointers into
// tid's sorted handle snapshot.
func (e *scanEngine) snapshotHP(tid int, a *hpArrays, threads, hps int) []arena.Handle {
	tl := &e.tl[tid]
	if cap(tl.snap) < e.snapCap {
		tl.snap = make([]arena.Handle, 0, e.snapCap)
	}
	buf := tl.snap[:0]
	for t := 0; t < threads; t++ {
		for i := 0; i < hps; i++ {
			if p := a.read(t, i); !p.IsNil() {
				buf = append(buf, p)
			}
		}
	}
	arena.SortHandles(buf)
	tl.snap = buf
	return buf
}

// snapshotEras collects the non-zero published eras into tid's sorted
// era snapshot.
func (e *scanEngine) snapshotEras(tid int, eras [][]atomic.Uint64, threads, hps int) []uint64 {
	tl := &e.tl[tid]
	if cap(tl.eras) < e.snapCap {
		tl.eras = make([]uint64, 0, e.snapCap)
	}
	buf := tl.eras[:0]
	for t := 0; t < threads; t++ {
		row := eras[t]
		for i := 0; i < hps; i++ {
			if v := row[i].Load(); v != 0 {
				buf = append(buf, v)
			}
		}
	}
	slices.Sort(buf)
	tl.eras = buf
	return buf
}

// eraReserved reports whether any published era in the sorted snapshot
// falls inside [birth, retire]: binary-search the first era ≥ birth and
// check it against retire.
func eraReserved(sorted []uint64, birth, retire uint64) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < birth {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] <= retire
}

// snapshotIntervals collects the active [lower, upper] reservations
// into tid's interval snapshot, sorted by lower bound, with running
// prefix maxima over the upper bounds for O(log n) intersection probes.
func (e *scanEngine) snapshotIntervals(tid int, lower, upper []rt.PaddedUint64, threads int) {
	tl := &e.tl[tid]
	if cap(tl.ivs) < threads {
		tl.ivs = make([]iv, 0, threads)
		tl.maxHi = make([]uint64, 0, threads)
	}
	buf := tl.ivs[:0]
	for t := 0; t < threads; t++ {
		lo := lower[t].Load()
		if lo == 0 {
			continue
		}
		hi := upper[t].Load()
		if hi < lo {
			hi = lo
		}
		buf = append(buf, iv{lo, hi})
	}
	slices.SortFunc(buf, cmpIV)
	mh := tl.maxHi[:0]
	run := uint64(0)
	for _, r := range buf {
		if r.hi > run {
			run = r.hi
		}
		mh = append(mh, run)
	}
	tl.ivs = buf
	tl.maxHi = mh
}

func cmpIV(a, b iv) int {
	switch {
	case a.lo < b.lo:
		return -1
	case a.lo > b.lo:
		return 1
	default:
		return 0
	}
}

// intervalReserved reports whether any snapshotted reservation
// intersects [birth, retire]: among the intervals with lo ≤ retire
// (a sorted prefix), an intersection exists iff the largest hi reaches
// back to birth.
func (e *scanEngine) intervalReserved(tid int, birth, retire uint64) bool {
	tl := &e.tl[tid]
	ivs := tl.ivs
	// Last interval with lo <= retire.
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivs[mid].lo <= retire {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo > 0 && tl.maxHi[lo-1] >= birth
}

// ---------------------------------------------------------------------
// /debug/reclaim surface: instrumented scheme instances register their
// ScanStats providers here; the obs handler folds the snapshot into the
// endpoint's JSON. Only instrumented instances register (tests build
// thousands of anonymous ones), and the table is capped as a backstop.

type scanDebugEntry struct {
	label string
	fn    func() ScanStats
}

var (
	scanDbgMu sync.Mutex
	scanDbg   []scanDebugEntry
)

const scanDbgCap = 128

func registerScanDebug(label string, fn func() ScanStats) {
	scanDbgMu.Lock()
	defer scanDbgMu.Unlock()
	if len(scanDbg) >= scanDbgCap {
		return
	}
	scanDbg = append(scanDbg, scanDebugEntry{label, fn})
}

// ScanDebugSnapshot returns the ScanStats of every registered
// (instrumented) scheme instance, keyed by metric label.
func ScanDebugSnapshot() map[string]ScanStats {
	scanDbgMu.Lock()
	entries := make([]scanDebugEntry, len(scanDbg))
	copy(entries, scanDbg)
	scanDbgMu.Unlock()
	out := make(map[string]ScanStats, len(entries))
	for _, e := range entries {
		out[e.label] = e.fn()
	}
	return out
}
