package reclaim

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/rt"
)

// IBR is two-generation interval-based reclamation (2GEIBR, Wen et al.,
// PPoPP '18) — the IBR variant the paper singles out as lock-free with
// bounded memory. Each thread reserves an era *interval* [lower, upper]:
// lower is pinned at operation start, upper is ratcheted forward by the
// HE-style protection loop. A retired object is freed once its
// [birth, retire] interval intersects no thread's reservation. The
// interval reservation is what inflates the bound past HE's (the paper's
// related-work discussion of Hyaline/IBR).
type IBR struct {
	counters
	env Env
	cfg Config

	clock   atomic.Uint64
	lower   []rt.PaddedUint64 // 0 = inactive
	upper   []rt.PaddedUint64
	retired [][]heItem
	allocs  atomic.Uint64
	thresh  int
}

func init() {
	Register(Registration{
		Name:    "ibr",
		Aliases: []string{"2geibr"},
		Rank:    6,
		Build:   func(env Env, opts Options) Scheme { return newIBR(env, opts) },
	})
}

// newIBR builds a 2GEIBR instance; construct via New("ibr", …).
func newIBR(env Env, cfg Options) *IBR {
	cfg.defaults()
	i := &IBR{
		env:     env,
		cfg:     cfg,
		lower:   make([]rt.PaddedUint64, cfg.MaxThreads),
		upper:   make([]rt.PaddedUint64, cfg.MaxThreads),
		retired: make([][]heItem, cfg.MaxThreads),
		thresh:  cfg.MaxHPs * cfg.MaxThreads,
	}
	i.clock.Store(1)
	if i.thresh < 64 {
		i.thresh = 64
	}
	return i
}

// Name returns "ibr".
func (*IBR) Name() string { return "ibr" }

// BeginOp pins the reservation interval at the current era.
func (i *IBR) BeginOp(tid int) {
	e := i.clock.Load()
	i.lower[tid].Store(e)
	i.upper[tid].Store(e)
}

// EndOp drops the reservation.
func (i *IBR) EndOp(tid int) {
	i.lower[tid].Store(0)
	i.upper[tid].Store(0)
}

// OnAlloc stamps the birth era and advances the era clock every few
// allocations (IBR ticks on allocation, unlike HE's tick on retire).
func (i *IBR) OnAlloc(v arena.Handle) {
	birth, _ := i.env.Hdr(v)
	birth.Store(i.clock.Load())
	if i.allocs.Add(1)%16 == 0 {
		i.clock.Add(1)
	}
}

// GetProtected ratchets the upper reservation until the era is stable
// across the read.
func (i *IBR) GetProtected(tid, _ int, addr *atomic.Uint64) arena.Handle {
	prev := i.upper[tid].Load()
	for {
		v := arena.Handle(addr.Load())
		era := i.clock.Load()
		if era == prev {
			// Torture injection point: the interval reservation is
			// published; a stall here widens it across the hook.
			rt.Step(rt.SiteProtect, tid)
			return v
		}
		i.upper[tid].Store(era)
		prev = era
	}
}

// Protect ratchets the upper reservation.
func (i *IBR) Protect(tid, _ int, _ arena.Handle) {
	e := i.clock.Load()
	if e > i.upper[tid].Load() {
		i.upper[tid].Store(e)
	}
}

// Clear is a no-op: intervals are per-thread, not per-slot.
func (*IBR) Clear(int, int) {}

// ClearAll is a no-op; EndOp drops the reservation.
func (*IBR) ClearAll(int) {}

// Retire stamps the retire era and scans when the list is long enough.
func (i *IBR) Retire(tid int, v arena.Handle) {
	i.onRetire(tid, v)
	v = v.Unmarked()
	birth, retire := i.env.Hdr(v)
	e := i.clock.Load()
	retire.Store(e)
	i.retired[tid] = append(i.retired[tid], heItem{h: v, birth: birth.Load(), retire: e})
	if len(i.retired[tid]) >= i.thresh {
		i.scan(tid)
	}
}

func (i *IBR) scan(tid int) {
	type iv struct{ lo, hi uint64 }
	var res []iv
	for t := 0; t < i.cfg.MaxThreads; t++ {
		lo := i.lower[t].Load()
		if lo == 0 {
			continue
		}
		hi := i.upper[t].Load()
		if hi < lo {
			hi = lo
		}
		res = append(res, iv{lo, hi})
	}
	keep := i.retired[tid][:0]
	for _, it := range i.retired[tid] {
		conflict := false
		for _, r := range res {
			if it.birth <= r.hi && r.lo <= it.retire {
				conflict = true
				break
			}
		}
		if conflict {
			keep = append(keep, it)
			continue
		}
		i.env.Free(tid, it.h)
		i.onFree(tid, it.h)
	}
	i.retired[tid] = keep
}

// Flush scans unconditionally.
func (i *IBR) Flush(tid int) { i.scan(tid) }

// RetireDepth reports the length of tid's retired list.
func (i *IBR) RetireDepth(tid int) int { return len(i.retired[tid]) }

// Stats reports counters.
func (i *IBR) Stats() Stats { return i.snapshot() }
