package reclaim

import (
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/rt"
)

// IBR is two-generation interval-based reclamation (2GEIBR, Wen et al.,
// PPoPP '18) — the IBR variant the paper singles out as lock-free with
// bounded memory. Each thread reserves an era *interval* [lower, upper]:
// lower is pinned at operation start, upper is ratcheted forward by the
// HE-style protection loop. A retired object is freed once its
// [birth, retire] interval intersects no thread's reservation. The
// interval reservation is what inflates the bound past HE's (the paper's
// related-work discussion of Hyaline/IBR).
//
// The upper reservation carries an owner-written shadow so the ratchet
// can compare against the published value without an atomic load and
// elide the store while the era clock is unchanged — between clock
// ticks (one per 16 allocations) every hop takes the elided path
// (DESIGN.md §1.2).
type IBR struct {
	counters
	env Env
	cfg Config

	clock   atomic.Uint64
	lower   []rt.PaddedUint64 // 0 = inactive
	upper   []rt.PaddedUint64
	shUpper []padWord // owner-written mirror of upper
	retired [][]heItem
	allocs  atomic.Uint64
	eng     *scanEngine
}

func init() {
	Register(Registration{
		Name:    "ibr",
		Aliases: []string{"2geibr"},
		Rank:    6,
		Build:   func(env Env, opts Options) Scheme { return newIBR(env, opts) },
	})
}

// newIBR builds a 2GEIBR instance; construct via New("ibr", …).
func newIBR(env Env, cfg Options) *IBR {
	cfg.defaults()
	base := cfg.MaxHPs * cfg.MaxThreads
	if base < 64 {
		base = 64
	}
	if cfg.ScanThreshold > 0 {
		base = cfg.ScanThreshold
	}
	i := &IBR{
		env:     env,
		cfg:     cfg,
		lower:   make([]rt.PaddedUint64, cfg.MaxThreads),
		upper:   make([]rt.PaddedUint64, cfg.MaxThreads),
		shUpper: make([]padWord, cfg.MaxThreads),
		retired: make([][]heItem, cfg.MaxThreads),
		eng:     newScanEngine(cfg.MaxThreads, cfg.MaxThreads, base),
	}
	i.clock.Store(1)
	return i
}

// Name returns "ibr".
func (*IBR) Name() string { return "ibr" }

// BeginOp pins the reservation interval at the current era.
func (i *IBR) BeginOp(tid int) {
	e := i.clock.Load()
	i.lower[tid].Store(e)
	i.upper[tid].Store(e)
	i.shUpper[tid].v = e
}

// EndOp drops the reservation.
func (i *IBR) EndOp(tid int) {
	i.lower[tid].Store(0)
	i.upper[tid].Store(0)
	i.shUpper[tid].v = 0
}

// OnAlloc stamps the birth era and advances the era clock every few
// allocations (IBR ticks on allocation, unlike HE's tick on retire).
func (i *IBR) OnAlloc(v arena.Handle) {
	birth, _ := i.env.Hdr(v)
	birth.Store(i.clock.Load())
	if i.allocs.Add(1)%16 == 0 {
		i.clock.Add(1)
	}
}

// GetProtected ratchets the upper reservation until the era is stable
// across the read. The published upper bound is read from the shadow,
// and while the clock is unchanged the whole call elides the store.
func (i *IBR) GetProtected(tid, _ int, addr *atomic.Uint64) arena.Handle {
	sh := &i.shUpper[tid]
	prev := sh.v
	stored := false
	for {
		v := arena.Handle(addr.Load())
		era := i.clock.Load()
		if era == prev {
			if !stored {
				i.eng.noteElide(tid)
			}
			// Torture injection point: the interval reservation is
			// published; a stall here widens it across the hook — on the
			// elided path the reservation predates this call entirely.
			rt.Step(rt.SiteProtect, tid)
			return v
		}
		i.upper[tid].Store(era)
		sh.v = era
		prev = era
		stored = true
	}
}

// Protect ratchets the upper reservation, eliding the store while the
// published bound already covers the current era.
func (i *IBR) Protect(tid, _ int, _ arena.Handle) {
	e := i.clock.Load()
	sh := &i.shUpper[tid]
	if e <= sh.v {
		i.eng.noteElide(tid)
		rt.Step(rt.SiteProtect, tid)
		return
	}
	i.upper[tid].Store(e)
	sh.v = e
}

// Clear is a no-op: intervals are per-thread, not per-slot.
func (*IBR) Clear(int, int) {}

// ClearAll is a no-op; EndOp drops the reservation.
func (*IBR) ClearAll(int) {}

// Retire stamps the retire era and scans when the list has reached the
// adaptive threshold. The scan runs before the append, capping list
// growth (see HP.Retire).
func (i *IBR) Retire(tid int, v arena.Handle) {
	i.onRetire(tid, v)
	v = v.Unmarked()
	birth, retire := i.env.Hdr(v)
	e := i.clock.Load()
	retire.Store(e)
	if len(i.retired[tid]) >= i.eng.threshold(tid) {
		i.scan(tid)
	}
	i.retired[tid] = append(i.retired[tid], heItem{h: v, birth: birth.Load(), retire: e})
}

func (i *IBR) scan(tid int) {
	start := time.Now()
	i.eng.snapshotIntervals(tid, i.lower, i.upper, i.cfg.MaxThreads)
	batch := len(i.retired[tid])
	keep := i.retired[tid][:0]
	for _, it := range i.retired[tid] {
		if i.eng.intervalReserved(tid, it.birth, it.retire) {
			keep = append(keep, it)
			continue
		}
		i.env.Free(tid, it.h)
		i.onFree(tid, it.h)
	}
	i.retired[tid] = keep
	i.eng.afterScan(tid, batch, batch-len(keep), time.Since(start))
	i.onScan(time.Since(start))
}

// Flush scans unconditionally.
func (i *IBR) Flush(tid int) { i.scan(tid) }

// RetireDepth reports the length of tid's retired list.
func (i *IBR) RetireDepth(tid int) int { return len(i.retired[tid]) }

// ScanStats reports the scan engine's counters.
func (i *IBR) ScanStats() ScanStats { return i.eng.stats() }

// Stats reports counters.
func (i *IBR) Stats() Stats { return i.snapshot() }
