// Package msqueue implements the Michael–Scott lock-free queue [20] in
// two variants: OrcQueue, annotated with OrcGC exactly as the paper's
// Algorithm 1, and ManualQueue, the classic hazard-pointer formulation
// parameterized over any manual reclamation scheme — the pairing used by
// the queue experiments of Figures 1 and 2.
package msqueue

import (
	"repro/internal/arena"
	"repro/internal/core"
)

// Node is the queue node of Algorithm 1: an item and one orc-tracked
// hard link to the successor.
type Node struct {
	item uint64
	next core.Atomic
}

// OrcQueue is MSQueueOrcGC from Algorithm 1. All reclamation is
// automatic: no retire call appears anywhere below, only type-annotated
// loads, stores and CASes.
type OrcQueue struct {
	d    *core.Domain[Node]
	head core.Atomic
	tail core.Atomic
}

// NewOrc builds the queue with its sentinel node. The constructor runs
// on the caller's tid.
func NewOrc(tid int, cfg core.DomainConfig) *OrcQueue {
	a := arena.New[Node]()
	d := core.NewDomain(a, func(n *Node, visit func(*core.Atomic)) {
		visit(&n.next)
	}, cfg)
	q := &OrcQueue{d: d}
	var p core.Ptr
	d.Make(tid, nil, &p) // sentinel
	d.Store(tid, &q.head, p.H())
	d.Store(tid, &q.tail, p.H())
	d.Release(tid, &p)
	return q
}

// Domain exposes the OrcGC domain (stats, teardown).
func (q *OrcQueue) Domain() *core.Domain[Node] { return q.d }

// Enqueue is Algorithm 1 lines 16–30.
func (q *OrcQueue) Enqueue(tid int, item uint64) {
	d := q.d
	var newNode, ltail, lnext core.Ptr
	d.Make(tid, func(n *Node) { n.item = item }, &newNode)
	for {
		d.Load(tid, &q.tail, &ltail)
		d.Load(tid, &d.Get(ltail.H()).next, &lnext)
		if lnext.IsNil() {
			if d.CAS(tid, &d.Get(ltail.H()).next, arena.Nil, newNode.H()) {
				d.CAS(tid, &q.tail, ltail.H(), newNode.H())
				break
			}
		} else {
			d.CAS(tid, &q.tail, ltail.H(), lnext.H())
		}
	}
	d.Release(tid, &newNode)
	d.Release(tid, &ltail)
	d.Release(tid, &lnext)
}

// Dequeue is Algorithm 1 lines 32–40. The zero return with ok=false
// signals an empty queue.
func (q *OrcQueue) Dequeue(tid int) (uint64, bool) {
	d := q.d
	var node, lnext core.Ptr
	d.Load(tid, &q.head, &node)
	for node.H() != d.LoadScratch(tid, &q.tail) {
		d.Load(tid, &d.Get(node.H()).next, &lnext)
		if d.CAS(tid, &q.head, node.H(), lnext.H()) {
			item := d.Get(lnext.H()).item
			d.Release(tid, &node)
			d.Release(tid, &lnext)
			return item, true
		}
		d.Load(tid, &q.head, &node)
	}
	d.Release(tid, &node)
	d.Release(tid, &lnext)
	return 0, false
}

// Drain empties the queue and releases the sentinel links; quiescent use
// only (teardown and leak accounting).
func (q *OrcQueue) Drain(tid int) {
	for {
		if _, ok := q.Dequeue(tid); !ok {
			break
		}
	}
	d := q.d
	d.Store(tid, &q.tail, arena.Nil)
	d.Store(tid, &q.head, arena.Nil)
	d.FlushAll()
}
