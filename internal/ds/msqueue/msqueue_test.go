package msqueue

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
)

func TestOrcSequentialFIFO(t *testing.T) {
	q := NewOrc(0, core.DomainConfig{MaxThreads: 2})
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(0, i)
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := q.Dequeue(0)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("dequeue from empty succeeded")
	}
}

func TestOrcEmptyQueue(t *testing.T) {
	q := NewOrc(0, core.DomainConfig{MaxThreads: 2})
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("fresh queue not empty")
	}
	q.Enqueue(0, 9)
	if v, ok := q.Dequeue(0); !ok || v != 9 {
		t.Fatal("single element roundtrip failed")
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue should be empty again")
	}
}

// TestOrcNoLeak: after drain + flush, only zero nodes remain live.
func TestOrcNoLeak(t *testing.T) {
	q := NewOrc(0, core.DomainConfig{MaxThreads: 2})
	for i := uint64(0); i < 1000; i++ {
		q.Enqueue(0, i)
	}
	for i := 0; i < 500; i++ {
		q.Dequeue(0)
	}
	q.Drain(0)
	if live := q.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("%d nodes leaked", live)
	}
}

// TestOrcConcurrent: conservation (multiset in == multiset out) and
// UAF-freedom under the strict arena.
func TestOrcConcurrent(t *testing.T) {
	const producers, consumers = 4, 4
	const perProducer = 10_000
	q := NewOrc(0, core.DomainConfig{MaxThreads: producers + consumers + 1})

	var sumIn, sumOut, countOut rt64
	var wg, prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		prodWG.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				v := uint64(tid)<<32 | uint64(i+1)
				q.Enqueue(tid, v)
				sumIn.add(v)
			}
		}(p + 1)
	}
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				v, ok := q.Dequeue(tid)
				if ok {
					sumOut.add(v)
					countOut.add(1)
					continue
				}
				select {
				case <-done:
					// final sweep after producers stop
					for {
						v, ok := q.Dequeue(tid)
						if !ok {
							return
						}
						sumOut.add(v)
						countOut.add(1)
					}
				default:
				}
			}
		}(producers + c + 1)
	}
	go func() {
		prodWG.Wait()
		close(done)
	}()
	wg.Wait()

	if countOut.v != producers*perProducer {
		t.Fatalf("count mismatch: %d out, want %d", countOut.v, producers*perProducer)
	}
	if sumIn.v != sumOut.v {
		t.Fatalf("sum mismatch: in %d out %d", sumIn.v, sumOut.v)
	}
	q.Drain(0)
	if live := q.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("%d nodes leaked", live)
	}
}

// TestOrcPerProducerOrder: items from one producer come out in order.
func TestOrcPerProducerOrder(t *testing.T) {
	const producers = 3
	const perProducer = 5000
	q := NewOrc(0, core.DomainConfig{MaxThreads: producers + 2})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(tid, uint64(tid)<<32|uint64(i))
			}
		}(p + 1)
	}
	wg.Wait()
	last := make(map[uint64]uint64)
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		p, seq := v>>32, v&0xffffffff
		if prev, seen := last[p]; seen && seq <= prev {
			t.Fatalf("producer %d out of order: %d after %d", p, seq, prev)
		}
		last[p] = seq
	}
}

func TestManualSequential(t *testing.T) {
	for _, scheme := range reclaim.Names() {
		t.Run(scheme, func(t *testing.T) {
			q := NewManual(scheme, reclaim.Options{MaxThreads: 2})
			for i := uint64(1); i <= 64; i++ {
				q.Enqueue(0, i)
			}
			for i := uint64(1); i <= 64; i++ {
				v, ok := q.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("%s: dequeue %d got %d ok=%v", scheme, i, v, ok)
				}
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("not empty at end")
			}
		})
	}
}

// TestManualConcurrent: every scheme must survive concurrent churn with
// the strict arena watching for use-after-free.
func TestManualConcurrent(t *testing.T) {
	for _, scheme := range []string{"hp", "ptb", "ptp", "ebr", "he", "ibr"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			const workers = 6
			const iters = 8000
			q := NewManual(scheme, reclaim.Options{MaxThreads: workers})
			var wg sync.WaitGroup
			var sumIn, sumOut rt64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						v := uint64(tid)<<32 | uint64(i+1)
						q.Enqueue(tid, v)
						sumIn.add(v)
						if got, ok := q.Dequeue(tid); ok {
							sumOut.add(got)
						}
					}
				}(w)
			}
			wg.Wait()
			for {
				v, ok := q.Dequeue(0)
				if !ok {
					break
				}
				sumOut.add(v)
			}
			if sumIn.v != sumOut.v {
				t.Fatalf("conservation violated: in %d out %d", sumIn.v, sumOut.v)
			}
			for tid := 0; tid < workers; tid++ {
				q.Scheme().Flush(tid)
			}
			st := q.Scheme().Stats()
			t.Logf("%s: retired=%d freed=%d pending=%d", scheme, st.Retired, st.Freed, st.RetiredNotFreed)
		})
	}
}

// TestManualReclaims: schemes other than none must actually free nodes.
func TestManualReclaims(t *testing.T) {
	for _, scheme := range []string{"hp", "ptb", "ptp", "ebr", "he", "ibr"} {
		t.Run(scheme, func(t *testing.T) {
			q := NewManual(scheme, reclaim.Options{MaxThreads: 2})
			for r := 0; r < 20; r++ {
				for i := uint64(0); i < 200; i++ {
					q.Enqueue(0, i)
				}
				q.Drain(0)
			}
			q.Scheme().Flush(0)
			st := q.Scheme().Stats()
			if st.Freed == 0 {
				t.Fatalf("%s freed nothing over 4000 retires", scheme)
			}
			live := q.Arena().Stats().Live
			t.Logf("%s: live=%d freed=%d", scheme, live, st.Freed)
		})
	}
}

// rt64 is a tiny atomic accumulator for tests.
type rt64 struct {
	mu sync.Mutex
	v  uint64
}

func (r *rt64) add(x uint64) {
	r.mu.Lock()
	r.v += x
	r.mu.Unlock()
}
