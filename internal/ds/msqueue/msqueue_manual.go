package msqueue

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/reclaim"
)

// MNode is the node of the manually reclaimed queue. The two header
// words needed by era schemes live in the arena slot, not here.
type MNode struct {
	item uint64
	next atomic.Uint64 // arena.Handle
}

// ManualQueue is the Michael–Scott queue under a manual reclamation
// scheme: hazardous pointer 0 pins the head/tail node, pointer 1 the
// successor, and retire is called on dequeued sentinels — the protocol
// the paper contrasts OrcGC's annotation-only deployment against.
type ManualQueue struct {
	a    *arena.Arena[MNode]
	s    reclaim.Scheme
	head atomic.Uint64
	tail atomic.Uint64
}

// HPsNeeded is H for this structure.
const HPsNeeded = 2

// NewManual builds a queue whose nodes are reclaimed by scheme name
// (see reclaim.Names).
func NewManual(scheme string, cfg reclaim.Options) *ManualQueue {
	a := arena.New[MNode]()
	cfg.MaxHPs = HPsNeeded
	q := &ManualQueue{a: a}
	q.s = reclaim.MustNew(scheme, reclaim.Env{Free: a.FreeT, Hdr: a.Header}, cfg)
	h, _ := a.Alloc() // sentinel
	q.s.OnAlloc(h)
	q.head.Store(uint64(h))
	q.tail.Store(uint64(h))
	return q
}

// Scheme exposes the reclamation scheme (stats, flushing).
func (q *ManualQueue) Scheme() reclaim.Scheme { return q.s }

// Arena exposes the node arena.
func (q *ManualQueue) Arena() *arena.Arena[MNode] { return q.a }

// Enqueue appends item.
func (q *ManualQueue) Enqueue(tid int, item uint64) {
	s := q.s
	s.BeginOp(tid)
	nh, n := q.a.AllocT(tid)
	n.item = item
	s.OnAlloc(nh)
	for {
		ltail := s.GetProtected(tid, 0, &q.tail)
		node := q.a.Get(ltail)
		lnext := arena.Handle(node.next.Load())
		if arena.Handle(q.tail.Load()) != ltail {
			continue
		}
		if lnext.IsNil() {
			if node.next.CompareAndSwap(0, uint64(nh)) {
				q.tail.CompareAndSwap(uint64(ltail), uint64(nh))
				break
			}
		} else {
			q.tail.CompareAndSwap(uint64(ltail), uint64(lnext))
		}
	}
	s.ClearAll(tid)
	s.EndOp(tid)
}

// Dequeue removes the oldest item; ok=false when empty.
func (q *ManualQueue) Dequeue(tid int) (item uint64, ok bool) {
	s := q.s
	s.BeginOp(tid)
	for {
		lhead := s.GetProtected(tid, 0, &q.head)
		ltail := arena.Handle(q.tail.Load())
		lnext := s.GetProtected(tid, 1, &q.a.Get(lhead).next)
		if arena.Handle(q.head.Load()) != lhead {
			continue
		}
		if lhead == ltail {
			if lnext.IsNil() {
				s.ClearAll(tid)
				s.EndOp(tid)
				return 0, false
			}
			q.tail.CompareAndSwap(uint64(ltail), uint64(lnext))
			continue
		}
		// Read the item before swinging head: after the CAS the old
		// sentinel is retired and the new sentinel's item is consumed.
		item = q.a.Get(lnext).item
		if q.head.CompareAndSwap(uint64(lhead), uint64(lnext)) {
			s.Retire(tid, lhead)
			s.ClearAll(tid)
			s.EndOp(tid)
			return item, true
		}
	}
}

// Drain empties the queue and flushes deferred frees; quiescent use only.
func (q *ManualQueue) Drain(tid int) {
	for {
		if _, ok := q.Dequeue(tid); !ok {
			break
		}
	}
	q.s.Flush(tid)
}
