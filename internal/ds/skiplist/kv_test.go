package skiplist

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
)

// kvSkip is the Put/Get/Scan surface shared by CRFOrc and HSManual.
type kvSkip interface {
	Put(tid int, key, val uint64) bool
	Get(tid int, key uint64) (uint64, bool)
	Remove(tid int, key uint64) bool
	Scan(tid int, from uint64, limit int, emit func(k, v uint64) bool) int
}

func kvSkipVariants(threads int) map[string]kvSkip {
	return map[string]kvSkip{
		"crf-orc": NewCRFOrc(0, core.DomainConfig{MaxThreads: threads}),
		"hs-ebr":  NewHSManual("ebr", reclaim.Options{MaxThreads: threads}),
		"hs-none": NewHSManual("none", reclaim.Options{MaxThreads: threads}),
	}
}

func TestKVSequential(t *testing.T) {
	for name, s := range kvSkipVariants(2) {
		t.Run(name, func(t *testing.T) {
			if !s.Put(0, 10, 1) || !s.Put(0, 30, 3) || !s.Put(0, 20, 2) {
				t.Fatal("inserting puts")
			}
			if s.Put(0, 20, 22) {
				t.Fatal("update reported as insert")
			}
			if v, ok := s.Get(0, 20); !ok || v != 22 {
				t.Fatalf("get(20) = %d,%v", v, ok)
			}
			if _, ok := s.Get(0, 15); ok {
				t.Fatal("get(15) on absent key")
			}
			var got []uint64
			n := s.Scan(0, 0, 10, func(k, v uint64) bool {
				got = append(got, k, v)
				return true
			})
			want := []uint64{10, 1, 20, 22, 30, 3}
			if n != 3 || len(got) != 6 {
				t.Fatalf("scan n=%d got=%v", n, got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("scan got %v want %v", got, want)
				}
			}
			// Bounded scan starting mid-range.
			got = got[:0]
			if n := s.Scan(0, 11, 1, func(k, v uint64) bool { got = append(got, k); return true }); n != 1 || got[0] != 20 {
				t.Fatalf("scan(from=11,limit=1) n=%d got=%v", n, got)
			}
			s.Remove(0, 20)
			got = got[:0]
			s.Scan(0, 0, 10, func(k, v uint64) bool { got = append(got, k); return true })
			if len(got) != 2 || got[0] != 10 || got[1] != 30 {
				t.Fatalf("scan after remove = %v", got)
			}
		})
	}
}

// TestKVScanUnderChurn runs scans concurrently with put/remove churn
// and checks every scan's output is strictly ascending, within range,
// and only ever contains keys that could legitimately be present.
func TestKVScanUnderChurn(t *testing.T) {
	const workers = 3
	const scanners = 2
	const per = 300
	for name, s := range kvSkipVariants(workers + scanners) {
		s := s
		t.Run(name, func(t *testing.T) {
			// Stable backbone keys that are never removed.
			for k := uint64(100); k <= 1000; k += 100 {
				s.Put(0, k, k)
			}
			var wg sync.WaitGroup
			errs := make(chan string, workers+scanners)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						k := uint64(tid*2000+i%37) + 2000
						s.Put(tid, k, k)
						if i%3 == 0 {
							s.Remove(tid, k)
						}
					}
				}(w)
			}
			for w := 0; w < scanners; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						last := uint64(0)
						bad := false
						s.Scan(tid, 50, 64, func(k, v uint64) bool {
							if k <= last || k < 50 {
								bad = true
								return false
							}
							last = k
							return true
						})
						if bad {
							errs <- name
							return
						}
					}
				}(workers + w)
			}
			wg.Wait()
			close(errs)
			if msg, bad := <-errs; bad {
				t.Fatalf("%s: scan emitted out-of-order or out-of-range key", msg)
			}
			// The backbone must be fully visible at quiescence.
			seen := map[uint64]bool{}
			s.Scan(0, 0, 1000, func(k, v uint64) bool { seen[k] = true; return true })
			for k := uint64(100); k <= 1000; k += 100 {
				if !seen[k] {
					t.Fatalf("backbone key %d missing from scan", k)
				}
			}
		})
	}
}
