package skiplist

import (
	"repro/internal/arena"
	"repro/internal/core"
)

// CRFOrc is the paper's new CRF-skip (§5): a Herlihy–Shavit-style skip
// list redesigned so removed nodes are *completely isolated* before
// being left behind. Two changes make that possible:
//
//  1. Insert never publishes a node whose upper-level successor link is
//     stale: before each upper-level link CAS it re-synchronizes the new
//     node's own successor link (closing the book's quirk that lets a
//     linked node point at long-removed nodes).
//  2. The remover that wins the bottom-level mark runs find() (which
//     snips the node off every level) and then *poisons* every
//     successor link, dropping the hard links a removed node would
//     otherwise keep into the structure. Traversals that step on poison
//     restart from the top level.
//
// Restarting makes contains lock-free instead of wait-free, and in
// exchange the unreclaimed population stays linear — the HS-skip vs
// CRF-skip footprint contrast of §5 (≈19 GB vs <1 GB).
type CRFOrc struct {
	d     *core.Domain[Node]
	head  core.Atomic
	tail  core.Atomic
	tailH arena.Handle // tail is root-linked forever, so the bare handle is safe
	rng   *levelRNG
}

// NewCRFOrc builds an empty CRF skip list.
func NewCRFOrc(tid int, cfg core.DomainConfig) *CRFOrc {
	a := arena.New[Node]()
	d := core.NewDomain(a, nodeLinks, cfg)
	s := &CRFOrc{d: d, rng: newLevelRNG(cfg.MaxThreads)}
	var pt, ph core.Ptr
	d.Make(tid, func(n *Node) { n.key, n.topLevel = tailKey, MaxLevels-1 }, &pt)
	d.Make(tid, func(n *Node) { n.key, n.topLevel = headKey, MaxLevels-1 }, &ph)
	hn := d.Get(ph.H())
	for l := 0; l < MaxLevels; l++ {
		d.InitLink(tid, &hn.next[l], pt.H())
	}
	d.Store(tid, &s.head, ph.H())
	d.Store(tid, &s.tail, pt.H())
	s.tailH = pt.H()
	d.Release(tid, &pt)
	d.Release(tid, &ph)
	return s
}

// snipPoisoned handles the rare race where an insert linked a node at an
// upper level after the remover had already isolated and poisoned it:
// the husk's successor link is gone, but upper levels are only
// shortcuts, so truncating the level to the tail sentinel preserves
// correctness (searches fall through to lower levels). The tail is
// permanently root-linked, so its counter can never hit zero and the
// bare-handle CAS is safe. At level 0 the race is impossible (a node is
// always bottom-linked before any remover can find it), so callers
// simply restart there.
func (s *CRFOrc) snipPoisoned(tid, level int, pred *core.Ptr, curr *core.Ptr) {
	if level == 0 {
		return
	}
	s.d.CAS(tid, &s.d.Get(pred.H()).next[level], curr.H(), s.tailH)
}

// Domain exposes the OrcGC domain.
func (s *CRFOrc) Domain() *core.Domain[Node] { return s.d }

// Destroy drops the roots and flushes; quiescent use only.
func (s *CRFOrc) Destroy(tid int) {
	s.d.Store(tid, &s.head, arena.Nil)
	s.d.Store(tid, &s.tail, arena.Nil)
	s.d.FlushAll()
}

func (s *CRFOrc) releaseSeek(tid int, r *orcSeek) {
	for l := 0; l < MaxLevels; l++ {
		s.d.Release(tid, &r.preds[l])
		s.d.Release(tid, &r.succs[l])
	}
}

// find fills the preds/succs windows, snipping marked nodes; stepping on
// a poisoned link restarts the whole descent.
func (s *CRFOrc) find(tid int, key uint64, r *orcSeek) bool {
	d := s.d
	var pred, curr, succ core.Ptr
	defer func() {
		d.Release(tid, &pred)
		d.Release(tid, &curr)
		d.Release(tid, &succ)
	}()
retry:
	for {
		d.Load(tid, &s.head, &pred)
		for level := MaxLevels - 1; level >= 0; level-- {
			// pred itself may have been poisoned between levels — its
			// links then read as poison, so restart from the head.
			if ch := d.Load(tid, &d.Get(pred.H()).next[level], &curr); isPoison(ch) {
				continue retry
			}
			curr.Unmark()
			for {
				succH := d.Load(tid, &d.Get(curr.H()).next[level], &succ)
				if isPoison(succH) {
					s.snipPoisoned(tid, level, &pred, &curr)
					continue retry // curr is a poisoned husk
				}
				for succH.Marked() {
					if !d.CAS(tid, &d.Get(pred.H()).next[level], curr.H(), succH.Unmarked()) {
						continue retry
					}
					if ch := d.Load(tid, &d.Get(pred.H()).next[level], &curr); isPoison(ch) {
						continue retry
					}
					curr.Unmark()
					succH = d.Load(tid, &d.Get(curr.H()).next[level], &succ)
					if isPoison(succH) {
						s.snipPoisoned(tid, level, &pred, &curr)
						continue retry
					}
				}
				if d.Get(curr.H()).key < key {
					d.CopyPtr(tid, &pred, &curr)
					d.CopyPtr(tid, &curr, &succ)
					curr.Unmark()
				} else {
					break
				}
			}
			d.CopyPtr(tid, &r.preds[level], &pred)
			d.CopyPtr(tid, &r.succs[level], &curr)
		}
		return d.Get(r.succs[0].H()).key == key
	}
}

// Insert adds key; false if present.
func (s *CRFOrc) Insert(tid int, key uint64) bool {
	d := s.d
	topLevel := int32(s.rng.next(tid))
	var r orcSeek
	var nn core.Ptr
	defer s.releaseSeek(tid, &r)
	defer d.Release(tid, &nn)
	for {
		if s.find(tid, key, &r) {
			return false
		}
		d.Make(tid, func(n *Node) { n.key, n.topLevel = key, topLevel }, &nn)
		if s.linkNew(tid, &nn, topLevel, &r) {
			return true
		}
		d.Release(tid, &nn)
	}
}

// Put inserts key→val or updates an existing key's value; true when
// newly inserted. An in-place update linearizes at the val store: the
// bottom-level mark (and poison) are permanent once set, so finding
// next[0] clean after the store proves the update preceded any removal.
func (s *CRFOrc) Put(tid int, key, val uint64) bool {
	d := s.d
	topLevel := int32(s.rng.next(tid))
	var r orcSeek
	var nn core.Ptr
	defer s.releaseSeek(tid, &r)
	defer d.Release(tid, &nn)
	for {
		if s.find(tid, key, &r) {
			nd := d.Get(r.succs[0].H())
			nd.val.Store(val)
			if b := nd.next[0].Raw(); b.Marked() || isPoison(b) {
				continue // a concurrent remove may have missed the update
			}
			return false
		}
		d.Make(tid, func(n *Node) {
			n.key, n.topLevel = key, topLevel
			n.val.Store(val)
		}, &nn)
		if s.linkNew(tid, &nn, topLevel, &r) {
			return true
		}
		d.Release(tid, &nn)
	}
}

// linkNew publishes the prepared node nn at its bottom level and then
// walks the upper levels with the CRF re-synchronization — the shared
// tail of Insert and Put. It reports whether nn was published (false
// means the bottom-level CAS lost and the caller should retry).
func (s *CRFOrc) linkNew(tid int, nn *core.Ptr, topLevel int32, r *orcSeek) bool {
	d := s.d
	var own core.Ptr
	defer d.Release(tid, &own)
	nd := d.Get(nn.H())
	for l := int32(0); l <= topLevel; l++ {
		d.InitLink(tid, &nd.next[l], r.succs[l].H())
	}
	if !d.CAS(tid, &d.Get(r.preds[0].H()).next[0], r.succs[0].H(), nn.H()) {
		return false
	}
	key := nd.key
	for l := int32(1); l <= topLevel; l++ {
		for {
			// Re-synchronize our own successor link before exposing this
			// level — the CRF fix: a linked node never points at a node
			// that was removed before the link was made.
			cur := d.Load(tid, &nd.next[l], &own)
			if cur.Marked() || isPoison(cur) {
				return true // we were removed mid-insert; stop
			}
			if cur != r.succs[l].H() {
				if !d.CAS(tid, &nd.next[l], cur, r.succs[l].H()) {
					continue
				}
			}
			if d.CAS(tid, &d.Get(r.preds[l].H()).next[l], r.succs[l].H(), nn.H()) {
				break
			}
			s.find(tid, key, r)
			if r.succs[0].H() != nn.H() && d.Get(nn.H()).next[0].Raw().Marked() {
				return true // removed while linking; abandon upper levels
			}
		}
	}
	return true
}

// Get returns the value stored under key.
func (s *CRFOrc) Get(tid int, key uint64) (uint64, bool) {
	d := s.d
	var r orcSeek
	defer s.releaseSeek(tid, &r)
	if !s.find(tid, key, &r) {
		return 0, false
	}
	nd := d.Get(r.succs[0].H())
	v := nd.val.Load()
	if b := nd.next[0].Raw(); b.Marked() || isPoison(b) {
		return 0, false
	}
	return v, true
}

// Scan walks level 0 in ascending key order starting at the first live
// key ≥ from, calling emit for up to limit live pairs. Stepping on a
// poisoned husk restarts the walk just past the last emitted key, so
// nothing is emitted twice. Returns the number emitted; emit may stop
// the scan early by returning false.
func (s *CRFOrc) Scan(tid int, from uint64, limit int, emit func(k, v uint64) bool) int {
	d := s.d
	if from < 1 {
		from = 1
	}
	count := 0
	lo := from
	var cur, succ core.Ptr
	defer func() {
		d.Release(tid, &cur)
		d.Release(tid, &succ)
	}()
retry:
	for count < limit && lo < tailKey {
		var r orcSeek
		s.find(tid, lo, &r) // positions succs[0] at the first node ≥ lo
		d.CopyPtr(tid, &cur, &r.succs[0])
		s.releaseSeek(tid, &r)
		for count < limit {
			nd := d.Get(cur.H())
			k := nd.key
			if k == tailKey {
				return count
			}
			v := nd.val.Load()
			succH := d.Load(tid, &nd.next[0], &succ)
			if isPoison(succH) {
				lo = maxU64(lo, k) // k itself may be a husk: re-seek it
				continue retry
			}
			if !succH.Marked() && k >= lo {
				lo = k + 1
				count++
				if !emit(k, v) {
					return count
				}
			}
			d.CopyPtr(tid, &cur, &succ)
			cur.Unmark()
		}
	}
	return count
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Remove deletes key; false if absent.
func (s *CRFOrc) Remove(tid int, key uint64) bool {
	d := s.d
	var r orcSeek
	var node, succ core.Ptr
	defer s.releaseSeek(tid, &r)
	defer func() {
		d.Release(tid, &node)
		d.Release(tid, &succ)
	}()
	if !s.find(tid, key, &r) {
		return false
	}
	d.CopyPtr(tid, &node, &r.succs[0])
	nd := d.Get(node.H())
	for l := nd.topLevel; l >= 1; l-- {
		succH := d.Load(tid, &nd.next[l], &succ)
		for !succH.Marked() && !isPoison(succH) {
			d.CAS(tid, &nd.next[l], succH, succH.WithMark())
			succH = d.Load(tid, &nd.next[l], &succ)
		}
	}
	for {
		succH := d.Load(tid, &nd.next[0], &succ)
		if succH.Marked() || isPoison(succH) {
			return false
		}
		if !d.CAS(tid, &nd.next[0], succH, succH.WithMark()) {
			continue
		}
		// We own the removal: physically unlink everywhere, then poison
		// every level so this husk stops hard-linking live nodes.
		s.find(tid, key, &r)
		for l := nd.topLevel; l >= 0; l-- {
			d.Store(tid, &nd.next[l], poison)
		}
		return true
	}
}

// Contains is the restarting lookup: it walks through marked nodes but
// restarts from the top whenever it steps on a poisoned husk.
func (s *CRFOrc) Contains(tid int, key uint64) bool {
	d := s.d
	var pred, curr, succ core.Ptr
	defer func() {
		d.Release(tid, &pred)
		d.Release(tid, &curr)
		d.Release(tid, &succ)
	}()
retry:
	for {
		d.Load(tid, &s.head, &pred)
		for level := MaxLevels - 1; level >= 0; level-- {
			// pred may have been poisoned since the previous level.
			if ch := d.Load(tid, &d.Get(pred.H()).next[level], &curr); isPoison(ch) {
				continue retry
			}
			curr.Unmark()
			for {
				succH := d.Load(tid, &d.Get(curr.H()).next[level], &succ)
				if isPoison(succH) {
					s.snipPoisoned(tid, level, &pred, &curr)
					continue retry
				}
				for succH.Marked() {
					d.CopyPtr(tid, &curr, &succ)
					curr.Unmark()
					succH = d.Load(tid, &d.Get(curr.H()).next[level], &succ)
					if isPoison(succH) {
						// curr may sit behind other marked nodes here;
						// just restart — a find will snip the husk.
						continue retry
					}
				}
				if d.Get(curr.H()).key < key {
					d.CopyPtr(tid, &pred, &curr)
					d.CopyPtr(tid, &curr, &succ)
					curr.Unmark()
				} else {
					break
				}
			}
		}
		cn := d.Get(curr.H())
		return cn.key == key && !cn.next[0].Raw().Marked()
	}
}
