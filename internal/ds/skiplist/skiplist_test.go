package skiplist

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
)

type set interface {
	Insert(tid int, key uint64) bool
	Remove(tid int, key uint64) bool
	Contains(tid int, key uint64) bool
}

func lists(threads int) map[string]set {
	return map[string]set{
		"hs-orc":  NewHSOrc(0, core.DomainConfig{MaxThreads: threads}),
		"crf-orc": NewCRFOrc(0, core.DomainConfig{MaxThreads: threads}),
		"hs-ebr":  NewHSManual("ebr", reclaim.Options{MaxThreads: threads}),
		"hs-none": NewHSManual("none", reclaim.Options{MaxThreads: threads}),
	}
}

func TestLevelRNGDistribution(t *testing.T) {
	r := newLevelRNG(1)
	counts := make([]int, MaxLevels)
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[r.next(0)]++
	}
	if counts[0] < n/3 || counts[0] > 2*n/3 {
		t.Fatalf("level 0 frequency off: %d of %d", counts[0], n)
	}
	for l := 1; l < 4; l++ {
		if counts[l] == 0 {
			t.Fatalf("level %d never chosen", l)
		}
		ratio := float64(counts[l-1]) / float64(counts[l])
		if ratio < 1.3 || ratio > 3.0 {
			t.Fatalf("level %d/%d ratio %.2f not ≈2", l-1, l, ratio)
		}
	}
}

func TestPoisonEncoding(t *testing.T) {
	if !isPoison(poison) {
		t.Fatal("poison not recognized")
	}
	if !poison.IsNil() || !poison.Marked() || !poison.Flagged() {
		t.Fatal("poison must be a nil handle with both tags")
	}
	if isPoison(poison.WithoutFlag()) {
		t.Fatal("plain marked nil mistaken for poison")
	}
}

func TestSequentialSemantics(t *testing.T) {
	for name, s := range lists(2) {
		t.Run(name, func(t *testing.T) {
			if s.Contains(0, 7) {
				t.Fatal("empty list contains 7")
			}
			if !s.Insert(0, 7) || s.Insert(0, 7) {
				t.Fatal("insert semantics")
			}
			for _, k := range []uint64{3, 11, 5, 9, 1} {
				if !s.Insert(0, k) {
					t.Fatalf("insert %d", k)
				}
			}
			for _, k := range []uint64{1, 3, 5, 7, 9, 11} {
				if !s.Contains(0, k) {
					t.Fatalf("missing %d", k)
				}
			}
			if !s.Remove(0, 7) || s.Remove(0, 7) {
				t.Fatal("remove semantics")
			}
			if s.Contains(0, 7) {
				t.Fatal("7 still present")
			}
		})
	}
}

func TestAgainstModel(t *testing.T) {
	for name, s := range lists(2) {
		t.Run(name, func(t *testing.T) {
			model := map[uint64]bool{}
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 30_000; i++ {
				k := uint64(rng.Intn(400)) + 1
				switch rng.Intn(3) {
				case 0:
					if s.Insert(0, k) != !model[k] {
						t.Fatalf("insert(%d) vs model at %d", k, i)
					}
					model[k] = true
				case 1:
					if s.Remove(0, k) != model[k] {
						t.Fatalf("remove(%d) vs model at %d", k, i)
					}
					model[k] = false
				default:
					if s.Contains(0, k) != model[k] {
						t.Fatalf("contains(%d) vs model at %d", k, i)
					}
				}
			}
		})
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	for name, s := range lists(9) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			const span = 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid*span) + 1
					for round := 0; round < 10; round++ {
						for k := base; k < base+span; k++ {
							if !s.Insert(tid, k) {
								panic("owned insert failed")
							}
						}
						for k := base; k < base+span; k++ {
							if !s.Contains(tid, k) {
								panic("owned key missing")
							}
						}
						for k := base; k < base+span; k++ {
							if !s.Remove(tid, k) {
								panic("owned remove failed")
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func TestConcurrentShared(t *testing.T) {
	for name, s := range lists(9) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid)*69621 + 3
					for i := 0; i < 6000; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						k := rng%96 + 1
						switch rng % 3 {
						case 0:
							s.Insert(tid, k)
						case 1:
							s.Remove(tid, k)
						default:
							s.Contains(tid, k)
						}
					}
				}(w)
			}
			wg.Wait()
			for k := uint64(1); k <= 96; k++ {
				s.Remove(0, k)
				if s.Contains(0, k) {
					t.Fatalf("key %d survived removal", k)
				}
			}
		})
	}
}

// TestCRFNoLeak: CRF must reclaim everything once drained — the §5
// footprint claim in miniature.
func TestCRFNoLeak(t *testing.T) {
	s := NewCRFOrc(0, core.DomainConfig{MaxThreads: 2})
	for k := uint64(1); k <= 400; k++ {
		s.Insert(0, k)
	}
	for k := uint64(1); k <= 400; k++ {
		if !s.Remove(0, k) {
			t.Fatalf("remove %d failed", k)
		}
	}
	s.Destroy(0)
	if live := s.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("CRF leaked %d nodes", live)
	}
}

// TestHSOrcDrains: single-threaded HS-skip also drains fully (chains
// only build up under concurrency).
func TestHSOrcDrains(t *testing.T) {
	s := NewHSOrc(0, core.DomainConfig{MaxThreads: 2})
	for k := uint64(1); k <= 400; k++ {
		s.Insert(0, k)
	}
	for k := uint64(1); k <= 400; k++ {
		if !s.Remove(0, k) {
			t.Fatalf("remove %d failed", k)
		}
	}
	s.Destroy(0)
	if live := s.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("HS-orc leaked %d nodes after teardown", live)
	}
}

// TestCRFFootprintBeatsHS reproduces the shape of the §5 memory claim
// at miniature scale: under identical concurrent churn, CRF-skip's
// live high-water stays well below HS-skip's.
func TestCRFFootprintBeatsHS(t *testing.T) {
	const workers = 8
	const iters = 15_000
	churn := func(s set) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				rng := uint64(tid)*40503 + 13
				for i := 0; i < iters; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					k := rng%512 + 1
					if rng%2 == 0 {
						s.Insert(tid, k)
					} else {
						s.Remove(tid, k)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	hs := NewHSOrc(0, core.DomainConfig{MaxThreads: workers + 1})
	churn(hs)
	hsHigh := hs.Domain().Arena().Stats().MaxLive
	crf := NewCRFOrc(0, core.DomainConfig{MaxThreads: workers + 1})
	churn(crf)
	crfHigh := crf.Domain().Arena().Stats().MaxLive
	t.Logf("high-water live nodes: HS=%d CRF=%d", hsHigh, crfHigh)
	if crfHigh > hsHigh*2 {
		t.Fatalf("CRF footprint (%d) should not exceed HS (%d)", crfHigh, hsHigh)
	}
}
