package skiplist

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/reclaim"
)

//orcvet:file-ignore protect epoch-protected: BeginOp pins the epoch, so raw loads stay dereferenceable until EndOp

// MNode is a manually reclaimed skip-list node. val is a plain payload
// word, written only under the scheme's protection (epoch).
type MNode struct {
	key      uint64
	val      atomic.Uint64
	topLevel int32
	next     [MaxLevels]atomic.Uint64
}

// HSManual is the Herlihy–Shavit skip list under manual reclamation.
// Only "ebr" and "none" are accepted: the wait-free contains traverses
// marked nodes without any per-pointer protection window the pointer-
// based schemes could validate, and removed nodes keep live successor
// links — the second obstacle of §2. The winning remover retires its
// node after the physical unlink; epoch grace periods keep the chained
// traversals safe.
type HSManual struct {
	a     *arena.Arena[MNode]
	s     reclaim.Scheme
	headH arena.Handle
	tailH arena.Handle
	rng   *levelRNG
}

type mseek struct {
	preds, succs [MaxLevels]arena.Handle
}

// NewHSManual builds a skip list with scheme "ebr" or "none".
func NewHSManual(scheme string, cfg reclaim.Options) *HSManual {
	if scheme != "ebr" && scheme != "none" {
		panic(fmt.Sprintf("skiplist: scheme %q cannot reclaim the HS skip list (only ebr/none)", scheme))
	}
	a := arena.New[MNode]()
	cfg.MaxHPs = 1
	s := &HSManual{a: a, rng: newLevelRNG(max(cfg.MaxThreads, 1))}
	s.s = reclaim.MustNew(scheme, reclaim.Env{Free: a.FreeT, Hdr: a.Header}, cfg)

	th, tn := a.Alloc()
	tn.key, tn.topLevel = tailKey, MaxLevels-1
	s.s.OnAlloc(th)
	hh, hn := a.Alloc()
	hn.key, hn.topLevel = headKey, MaxLevels-1
	for l := 0; l < MaxLevels; l++ {
		hn.next[l].Store(uint64(th))
	}
	s.s.OnAlloc(hh)
	s.headH, s.tailH = hh, th
	return s
}

// Scheme exposes the reclamation scheme.
func (s *HSManual) Scheme() reclaim.Scheme { return s.s }

// Arena exposes the node arena.
func (s *HSManual) Arena() *arena.Arena[MNode] { return s.a }

func (s *HSManual) find(key uint64, r *mseek) bool {
	a := s.a
retry:
	for {
		pred := s.headH
		for level := MaxLevels - 1; level >= 0; level-- {
			curr := arena.Handle(a.Get(pred).next[level].Load()).Unmarked()
			for {
				cn := a.Get(curr)
				succ := arena.Handle(cn.next[level].Load())
				for succ.Marked() {
					if !a.Get(pred).next[level].CompareAndSwap(uint64(curr), uint64(succ.Unmarked())) {
						continue retry
					}
					curr = arena.Handle(a.Get(pred).next[level].Load()).Unmarked()
					cn = a.Get(curr)
					succ = arena.Handle(cn.next[level].Load())
				}
				if cn.key < key {
					pred = curr
					curr = succ.Unmarked()
				} else {
					break
				}
			}
			r.preds[level] = pred
			r.succs[level] = curr
		}
		return a.Get(r.succs[0]).key == key
	}
}

// Insert adds key; false if present.
func (s *HSManual) Insert(tid int, key uint64) bool {
	a := s.a
	s.s.BeginOp(tid)
	defer s.s.EndOp(tid)
	topLevel := int32(s.rng.next(tid))
	var r mseek
	for {
		if s.find(key, &r) {
			return false
		}
		nh, n := a.AllocT(tid)
		n.key, n.topLevel = key, topLevel
		for l := int32(0); l <= topLevel; l++ {
			n.next[l].Store(uint64(r.succs[l]))
		}
		s.s.OnAlloc(nh)
		if !a.Get(r.preds[0]).next[0].CompareAndSwap(uint64(r.succs[0]), uint64(nh)) {
			a.FreeT(tid, nh) // never published
			continue
		}
		for l := int32(1); l <= topLevel; l++ {
			for {
				if a.Get(r.preds[l]).next[l].CompareAndSwap(uint64(r.succs[l]), uint64(nh)) {
					break
				}
				s.find(key, &r) // book-faithful: nh.next[l] left stale
			}
		}
		return true
	}
}

// Remove deletes key; false if absent.
func (s *HSManual) Remove(tid int, key uint64) bool {
	a := s.a
	s.s.BeginOp(tid)
	defer s.s.EndOp(tid)
	var r mseek
	if !s.find(key, &r) {
		return false
	}
	node := r.succs[0]
	nd := a.Get(node)
	for l := nd.topLevel; l >= 1; l-- {
		succ := arena.Handle(nd.next[l].Load())
		for !succ.Marked() {
			nd.next[l].CompareAndSwap(uint64(succ), uint64(succ.WithMark()))
			succ = arena.Handle(nd.next[l].Load())
		}
	}
	for {
		succ := arena.Handle(nd.next[0].Load())
		if succ.Marked() {
			return false
		}
		if nd.next[0].CompareAndSwap(uint64(succ), uint64(succ.WithMark())) {
			s.find(key, &r) // physical unlink
			//orcvet:ignore retire the mark CAS above is the logical delete; find() completes the physical unlink
			s.s.Retire(tid, node)
			return true
		}
	}
}

// Put inserts key→val or updates an existing key's value; true when
// newly inserted. An in-place update linearizes at the val store: the
// bottom-level mark is permanent once set, so finding next[0] unmarked
// after the store proves the update preceded any removal of the node.
func (s *HSManual) Put(tid int, key, val uint64) bool {
	a := s.a
	s.s.BeginOp(tid)
	defer s.s.EndOp(tid)
	topLevel := int32(s.rng.next(tid))
	var r mseek
	for {
		if s.find(key, &r) {
			nd := a.Get(r.succs[0])
			nd.val.Store(val)
			if arena.Handle(nd.next[0].Load()).Marked() {
				continue // a concurrent remove may have missed the update
			}
			return false
		}
		nh, n := a.AllocT(tid)
		n.key, n.topLevel = key, topLevel
		n.val.Store(val)
		for l := int32(0); l <= topLevel; l++ {
			n.next[l].Store(uint64(r.succs[l]))
		}
		s.s.OnAlloc(nh)
		if !a.Get(r.preds[0]).next[0].CompareAndSwap(uint64(r.succs[0]), uint64(nh)) {
			a.FreeT(tid, nh) // never published
			continue
		}
		for l := int32(1); l <= topLevel; l++ {
			for {
				if a.Get(r.preds[l]).next[l].CompareAndSwap(uint64(r.succs[l]), uint64(nh)) {
					break
				}
				s.find(key, &r)
			}
		}
		return true
	}
}

// Get returns the value stored under key, using the book's
// non-restarting descent.
func (s *HSManual) Get(tid int, key uint64) (uint64, bool) {
	a := s.a
	s.s.BeginOp(tid)
	defer s.s.EndOp(tid)
	curr := s.descend(key)
	cn := a.Get(curr)
	if cn.key != key || arena.Handle(cn.next[0].Load()).Marked() {
		return 0, false
	}
	return cn.val.Load(), true
}

// descend runs the book's wait-free traversal and returns the first
// node with key ≥ the target at level 0 (possibly reached through
// marked nodes, which epoch protection keeps dereferenceable).
func (s *HSManual) descend(key uint64) arena.Handle {
	a := s.a
	pred := s.headH
	var curr arena.Handle
	for level := MaxLevels - 1; level >= 0; level-- {
		curr = arena.Handle(a.Get(pred).next[level].Load()).Unmarked()
		for {
			cn := a.Get(curr)
			succ := arena.Handle(cn.next[level].Load())
			for succ.Marked() {
				curr = succ.Unmarked()
				cn = a.Get(curr)
				succ = arena.Handle(cn.next[level].Load())
			}
			if cn.key < key {
				pred = curr
				curr = succ.Unmarked()
			} else {
				break
			}
		}
	}
	return curr
}

// Scan walks level 0 in ascending key order starting at the first live
// key ≥ from, calling emit for up to limit live pairs (marked nodes are
// traversed but not emitted). It returns the number emitted; emit may
// stop the scan early by returning false. The whole scan runs inside
// one epoch-protected operation — the long-lived-reader shape that
// stresses epoch-based reclamation.
func (s *HSManual) Scan(tid int, from uint64, limit int, emit func(k, v uint64) bool) int {
	a := s.a
	s.s.BeginOp(tid)
	defer s.s.EndOp(tid)
	if from < 1 {
		from = 1
	}
	curr := s.descend(from)
	count := 0
	for count < limit {
		cn := a.Get(curr)
		if cn.key == tailKey {
			break
		}
		succ := arena.Handle(cn.next[0].Load())
		if !succ.Marked() && cn.key >= from {
			if !emit(cn.key, cn.val.Load()) {
				count++
				break
			}
			count++
		}
		curr = succ.Unmarked()
	}
	return count
}

// Contains is the book's non-restarting lookup.
func (s *HSManual) Contains(tid int, key uint64) bool {
	a := s.a
	s.s.BeginOp(tid)
	defer s.s.EndOp(tid)
	pred := s.headH
	var curr arena.Handle
	for level := MaxLevels - 1; level >= 0; level-- {
		curr = arena.Handle(a.Get(pred).next[level].Load()).Unmarked()
		for {
			cn := a.Get(curr)
			succ := arena.Handle(cn.next[level].Load())
			for succ.Marked() {
				curr = succ.Unmarked()
				cn = a.Get(curr)
				succ = arena.Handle(cn.next[level].Load())
			}
			if cn.key < key {
				pred = curr
				curr = succ.Unmarked()
			} else {
				break
			}
		}
	}
	cn := a.Get(curr)
	return cn.key == key && !arena.Handle(cn.next[0].Load()).Marked()
}
