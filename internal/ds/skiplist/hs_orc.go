package skiplist

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
)

// Node is a skip-list node: key, height, and one orc link per level.
// val is a plain payload word (never a link, so it stays outside
// nodeLinks); it is written only while the node is protected.
type Node struct {
	key      uint64
	val      atomic.Uint64
	topLevel int32
	next     [MaxLevels]core.Atomic
}

func nodeLinks(n *Node, visit func(*core.Atomic)) {
	for l := range n.next {
		visit(&n.next[l])
	}
}

// orcSeek carries the per-operation preds/succs windows as live Ptrs.
type orcSeek struct {
	preds, succs [MaxLevels]core.Ptr
}

// HSOrc is the Herlihy–Shavit lock-free skip list under OrcGC, ported
// verbatim from the book's Java — including the stale upper-level
// successor links its insert leaves behind, which are what let removed
// nodes chain together and inflate the unreclaimed-memory footprint the
// paper measures (≈19 GB vs CRF's <1 GB).
type HSOrc struct {
	d    *core.Domain[Node]
	head core.Atomic
	tail core.Atomic
	rng  *levelRNG
}

// NewHSOrc builds an empty skip list.
func NewHSOrc(tid int, cfg core.DomainConfig) *HSOrc {
	a := arena.New[Node]()
	d := core.NewDomain(a, nodeLinks, cfg)
	s := &HSOrc{d: d, rng: newLevelRNG(cfg.MaxThreads)}
	s.initSentinels(tid)
	return s
}

func (s *HSOrc) initSentinels(tid int) {
	d := s.d
	var pt, ph core.Ptr
	d.Make(tid, func(n *Node) { n.key, n.topLevel = tailKey, MaxLevels-1 }, &pt)
	d.Make(tid, func(n *Node) { n.key, n.topLevel = headKey, MaxLevels-1 }, &ph)
	hn := d.Get(ph.H())
	for l := 0; l < MaxLevels; l++ {
		d.InitLink(tid, &hn.next[l], pt.H())
	}
	d.Store(tid, &s.head, ph.H())
	d.Store(tid, &s.tail, pt.H())
	d.Release(tid, &pt)
	d.Release(tid, &ph)
}

// Domain exposes the OrcGC domain.
func (s *HSOrc) Domain() *core.Domain[Node] { return s.d }

// Destroy drops the roots and flushes; quiescent use only.
func (s *HSOrc) Destroy(tid int) {
	s.d.Store(tid, &s.head, arena.Nil)
	s.d.Store(tid, &s.tail, arena.Nil)
	s.d.FlushAll()
}

func (s *HSOrc) releaseSeek(tid int, r *orcSeek) {
	for l := 0; l < MaxLevels; l++ {
		s.d.Release(tid, &r.preds[l])
		s.d.Release(tid, &r.succs[l])
	}
}

// find fills the preds/succs windows around key, snipping marked nodes
// off every level it descends through. Restarts on any failed snip.
func (s *HSOrc) find(tid int, key uint64, r *orcSeek) bool {
	d := s.d
	var pred, curr, succ core.Ptr
	defer func() {
		d.Release(tid, &pred)
		d.Release(tid, &curr)
		d.Release(tid, &succ)
	}()
retry:
	for {
		d.Load(tid, &s.head, &pred)
		for level := MaxLevels - 1; level >= 0; level-- {
			d.Load(tid, &d.Get(pred.H()).next[level], &curr)
			curr.Unmark()
			for {
				succH := d.Load(tid, &d.Get(curr.H()).next[level], &succ)
				for succH.Marked() {
					if !d.CAS(tid, &d.Get(pred.H()).next[level], curr.H(), succH.Unmarked()) {
						continue retry
					}
					d.Load(tid, &d.Get(pred.H()).next[level], &curr)
					curr.Unmark()
					succH = d.Load(tid, &d.Get(curr.H()).next[level], &succ)
				}
				if d.Get(curr.H()).key < key {
					d.CopyPtr(tid, &pred, &curr)
					d.CopyPtr(tid, &curr, &succ)
					curr.Unmark()
				} else {
					break
				}
			}
			d.CopyPtr(tid, &r.preds[level], &pred)
			d.CopyPtr(tid, &r.succs[level], &curr)
		}
		return d.Get(r.succs[0].H()).key == key
	}
}

// Insert adds key; false if present.
func (s *HSOrc) Insert(tid int, key uint64) bool {
	d := s.d
	topLevel := int32(s.rng.next(tid))
	var r orcSeek
	var nn core.Ptr
	defer s.releaseSeek(tid, &r)
	defer d.Release(tid, &nn)
	for {
		if s.find(tid, key, &r) {
			return false
		}
		d.Make(tid, func(n *Node) { n.key, n.topLevel = key, topLevel }, &nn)
		nd := d.Get(nn.H())
		for l := int32(0); l <= topLevel; l++ {
			d.InitLink(tid, &nd.next[l], r.succs[l].H())
		}
		if !d.CAS(tid, &d.Get(r.preds[0].H()).next[0], r.succs[0].H(), nn.H()) {
			d.Release(tid, &nn) // auto-collected, links unwound
			continue
		}
		for l := int32(1); l <= topLevel; l++ {
			for {
				if d.CAS(tid, &d.Get(r.preds[l].H()).next[l], r.succs[l].H(), nn.H()) {
					break
				}
				// Book-faithful: refresh the window but do NOT update
				// nn.next[l] — the stale link is HS-skip's signature.
				s.find(tid, key, &r)
			}
		}
		return true
	}
}

// Remove deletes key; false if absent.
func (s *HSOrc) Remove(tid int, key uint64) bool {
	d := s.d
	var r orcSeek
	var node, succ core.Ptr
	defer s.releaseSeek(tid, &r)
	defer func() {
		d.Release(tid, &node)
		d.Release(tid, &succ)
	}()
	if !s.find(tid, key, &r) {
		return false
	}
	d.CopyPtr(tid, &node, &r.succs[0])
	nd := d.Get(node.H())
	for l := nd.topLevel; l >= 1; l-- {
		succH := d.Load(tid, &nd.next[l], &succ)
		for !succH.Marked() {
			d.CAS(tid, &nd.next[l], succH, succH.WithMark())
			succH = d.Load(tid, &nd.next[l], &succ)
		}
	}
	for {
		succH := d.Load(tid, &nd.next[0], &succ)
		if succH.Marked() {
			return false // another remover won
		}
		if d.CAS(tid, &nd.next[0], succH, succH.WithMark()) {
			s.find(tid, key, &r) // physical unlink; no retire under OrcGC
			return true
		}
	}
}

// Contains descends without restarting, walking straight through marked
// nodes — the wait-free lookup whose price is the chained unreclaimed
// nodes the paper measures.
func (s *HSOrc) Contains(tid int, key uint64) bool {
	d := s.d
	var pred, curr, succ core.Ptr
	defer func() {
		d.Release(tid, &pred)
		d.Release(tid, &curr)
		d.Release(tid, &succ)
	}()
	d.Load(tid, &s.head, &pred)
	found := false
	for level := MaxLevels - 1; level >= 0; level-- {
		d.Load(tid, &d.Get(pred.H()).next[level], &curr)
		curr.Unmark()
		for {
			succH := d.Load(tid, &d.Get(curr.H()).next[level], &succ)
			for succH.Marked() {
				d.CopyPtr(tid, &curr, &succ)
				curr.Unmark()
				succH = d.Load(tid, &d.Get(curr.H()).next[level], &succ)
			}
			if d.Get(curr.H()).key < key {
				d.CopyPtr(tid, &pred, &curr)
				d.CopyPtr(tid, &curr, &succ)
				curr.Unmark()
			} else {
				break
			}
		}
		if level == 0 {
			found = d.Get(curr.H()).key == key && !d.Get(curr.H()).next[0].Raw().Marked()
		}
	}
	return found
}
