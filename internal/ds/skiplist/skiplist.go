// Package skiplist implements the two lock-free skip lists of the
// paper's Figures 7 and 8 plus the §5 memory-footprint experiment:
//
//   - HSOrc / HSManual — the Herlihy–Shavit lock-free skip list [15]
//     (the book's LockFreeSkipList, which the authors ported from Java).
//     Its contains() descends without ever restarting, traversing marked
//     nodes, and its insert leaves upper-level successor links stale —
//     so removed nodes can chain to other removed nodes, giving a
//     key-bounded population of unreclaimable memory (the ≈19 GB data
//     point). Also the paper's third-obstacle structure: a half-inserted
//     node can be removed and later completes its insertion.
//   - CRFOrc — the paper's new CRF-skip: removers fully isolate a node
//     and then *poison* its successor links; any traversal that steps on
//     poison restarts from the top. Poisoning breaks removed-node chains
//     (memory stays linear) at the cost of making contains lock-free
//     rather than wait-free.
//
// Keys must lie strictly between 0 and 2^64−1 (head/tail sentinels).
package skiplist

import (
	"repro/internal/arena"
	"repro/internal/rt"
)

// MaxLevels is the skip-list height (level indices 0..MaxLevels-1).
const MaxLevels = 16

const (
	headKey = uint64(0)
	tailKey = ^uint64(0)
)

// poison is the link value CRF removers install once a node is isolated:
// a nil reference carrying both tag bits, never produced by any other
// operation.
var poison = arena.Nil.WithFlag().WithMark()

func isPoison(h arena.Handle) bool { return h.IsNil() && h.Flagged() }

// levelRNG hands out geometric levels, one xorshift state per thread.
type levelRNG struct {
	states []rt.PaddedUint64
}

func newLevelRNG(threads int) *levelRNG {
	r := &levelRNG{states: make([]rt.PaddedUint64, threads)}
	for i := range r.states {
		r.states[i].Store(uint64(i)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D)
	}
	return r
}

// next returns a level in [0, MaxLevels): P(level ≥ k) = 2^-k.
func (r *levelRNG) next(tid int) int {
	x := r.states[tid].Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.states[tid].Store(x)
	lvl := 0
	for x&1 == 1 && lvl < MaxLevels-1 {
		lvl++
		x >>= 1
	}
	return lvl
}
