package nmtree

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/reclaim"
)

// MNode is the manually reclaimed tree node.
type MNode struct {
	key         uint64
	leaf        bool
	left, right atomic.Uint64
}

// ManualTree is the NM tree under manual reclamation. Only epoch-based
// reclamation ("ebr") and the leaking baseline ("none") are accepted:
// the helped multi-node unlink means a deleter cannot in general name
// every node its operation freed, so pointer-based schemes (HP/PTB/PTP)
// and era schemes cannot be deployed without redesigning the algorithm —
// the situation §2 "Limitations of existing schemes" describes, and the
// reason the paper pairs this tree with OrcGC.
//
// Even under EBR the retire placement is conservative: the thread whose
// cleanup CAS unlinks a chunk retires the successor node, and the
// injecting deleter retires its leaf; internal nodes of helped multi-
// level chunks are leaked (rare — only when deletes stack on one path).
type ManualTree struct {
	a     *arena.Arena[MNode]
	s     reclaim.Scheme
	rootH arena.Handle
}

type mseek struct {
	ancestor, successor, parent, leaf arena.Handle
}

// NewManual builds a tree with scheme "ebr" or "none".
func NewManual(scheme string, cfg reclaim.Options) *ManualTree {
	if scheme != "ebr" && scheme != "none" {
		panic(fmt.Sprintf("nmtree: scheme %q cannot reclaim the NM tree (only ebr/none)", scheme))
	}
	a := arena.New[MNode]()
	t := &ManualTree{a: a}
	cfg.MaxHPs = 1
	t.s = reclaim.MustNew(scheme, reclaim.Env{Free: a.FreeT, Hdr: a.Header}, cfg)

	alloc := func(key uint64, leaf bool) arena.Handle {
		h, n := a.Alloc()
		n.key, n.leaf = key, leaf
		t.s.OnAlloc(h)
		return h
	}
	l0 := alloc(KInf0, true)
	l1 := alloc(KInf1, true)
	l2 := alloc(KInf2, true)
	s := alloc(KInf1, false)
	sn := a.Get(s)
	sn.left.Store(uint64(l0))
	sn.right.Store(uint64(l1))
	r := alloc(KInf2, false)
	rn := a.Get(r)
	rn.left.Store(uint64(s))
	rn.right.Store(uint64(l2))
	t.rootH = r
	return t
}

// Scheme exposes the reclamation scheme.
func (t *ManualTree) Scheme() reclaim.Scheme { return t.s }

// Arena exposes the node arena.
func (t *ManualTree) Arena() *arena.Arena[MNode] { return t.a }

func (t *ManualTree) edge(n *MNode, key uint64) *atomic.Uint64 {
	if key < n.key {
		return &n.left
	}
	return &n.right
}

func (t *ManualTree) seek(key uint64) mseek {
	a := t.a
	sr := mseek{ancestor: t.rootH}
	anc := a.Get(t.rootH)
	sr.successor = arena.Handle(anc.left.Load()).Unmarked()
	sr.parent = sr.successor
	parentField := arena.Handle(a.Get(sr.parent).left.Load())
	sr.leaf = parentField.Unmarked()
	for {
		node := a.Get(sr.leaf)
		if node.leaf {
			return sr
		}
		if !parentField.Marked() {
			sr.ancestor = sr.parent
			sr.successor = sr.leaf
		}
		sr.parent = sr.leaf
		parentField = arena.Handle(t.edge(node, key).Load())
		sr.leaf = parentField.Unmarked()
	}
}

func (t *ManualTree) cleanup(tid int, key uint64, sr mseek) bool {
	a := t.a
	parentNode := a.Get(sr.parent)
	var cEdge, sEdge *atomic.Uint64
	if key < parentNode.key {
		cEdge, sEdge = &parentNode.left, &parentNode.right
	} else {
		cEdge, sEdge = &parentNode.right, &parentNode.left
	}
	if !arena.Handle(cEdge.Load()).Flagged() {
		sEdge = cEdge
	}
	sv := arena.Handle(sEdge.Load())
	for !sv.Marked() {
		sEdge.CompareAndSwap(uint64(sv), uint64(sv.WithMark()))
		sv = arena.Handle(sEdge.Load())
	}
	newVal := sv.Unmarked()
	if sv.Flagged() {
		newVal = newVal.WithFlag()
	}
	ancNode := a.Get(sr.ancestor)
	if t.edge(ancNode, key).CompareAndSwap(uint64(sr.successor), uint64(newVal)) {
		t.s.Retire(tid, sr.successor)
		return true
	}
	return false
}

// Insert adds key; false if present.
func (t *ManualTree) Insert(tid int, key uint64) bool {
	s, a := t.s, t.a
	s.BeginOp(tid)
	defer s.EndOp(tid)
	for {
		sr := t.seek(key)
		leafNode := a.Get(sr.leaf)
		if leafNode.key == key {
			return false
		}
		parentNode := a.Get(sr.parent)
		edge := t.edge(parentNode, key)

		nl, lnode := a.AllocT(tid)
		lnode.key, lnode.leaf = key, true
		s.OnAlloc(nl)
		ik := key
		if leafNode.key > ik {
			ik = leafNode.key
		}
		ni, inode := a.AllocT(tid)
		inode.key = ik
		s.OnAlloc(ni)
		if key < leafNode.key {
			inode.left.Store(uint64(nl))
			inode.right.Store(uint64(sr.leaf))
		} else {
			inode.left.Store(uint64(sr.leaf))
			inode.right.Store(uint64(nl))
		}
		if edge.CompareAndSwap(uint64(sr.leaf), uint64(ni)) {
			return true
		}
		a.FreeT(tid, ni) // never published
		a.FreeT(tid, nl)
		cur := arena.Handle(edge.Load())
		if cur.Unmarked() == sr.leaf && cur.Tags() != 0 {
			t.cleanup(tid, key, sr)
		}
	}
}

// Remove deletes key; false if absent.
func (t *ManualTree) Remove(tid int, key uint64) bool {
	s, a := t.s, t.a
	s.BeginOp(tid)
	defer s.EndOp(tid)
	var target arena.Handle
	injecting := true
	for {
		sr := t.seek(key)
		if injecting {
			leafNode := a.Get(sr.leaf)
			if leafNode.key != key {
				return false
			}
			parentNode := a.Get(sr.parent)
			edge := t.edge(parentNode, key)
			if edge.CompareAndSwap(uint64(sr.leaf), uint64(sr.leaf.WithFlag())) {
				injecting = false
				target = sr.leaf
				if t.cleanup(tid, key, sr) {
					s.Retire(tid, target)
					return true
				}
			} else {
				cur := arena.Handle(edge.Load())
				if cur.Unmarked() == sr.leaf && cur.Tags() != 0 {
					t.cleanup(tid, key, sr)
				}
			}
			continue
		}
		if sr.leaf != target {
			s.Retire(tid, target) // a helper unlinked it; we still own the leaf
			return true
		}
		if t.cleanup(tid, key, sr) {
			s.Retire(tid, target)
			return true
		}
	}
}

// Contains reports membership.
func (t *ManualTree) Contains(tid int, key uint64) bool {
	s, a := t.s, t.a
	s.BeginOp(tid)
	defer s.EndOp(tid)
	cur := t.rootH
	for {
		n := a.Get(cur)
		if n.leaf {
			return n.key == key
		}
		cur = arena.Handle(t.edge(n, key).Load()).Unmarked()
	}
}
