package nmtree

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
)

type set interface {
	Insert(tid int, key uint64) bool
	Remove(tid int, key uint64) bool
	Contains(tid int, key uint64) bool
}

func trees(threads int) map[string]set {
	return map[string]set{
		"orc":  NewOrc(0, core.DomainConfig{MaxThreads: threads}),
		"ebr":  NewManual("ebr", reclaim.Options{MaxThreads: threads}),
		"none": NewManual("none", reclaim.Options{MaxThreads: threads}),
	}
}

func TestSequentialSemantics(t *testing.T) {
	for name, s := range trees(2) {
		t.Run(name, func(t *testing.T) {
			if s.Contains(0, 10) {
				t.Fatal("empty tree contains 10")
			}
			if !s.Insert(0, 10) || s.Insert(0, 10) {
				t.Fatal("insert semantics broken")
			}
			for _, k := range []uint64{5, 15, 3, 7, 12, 20} {
				if !s.Insert(0, k) {
					t.Fatalf("insert %d failed", k)
				}
			}
			for _, k := range []uint64{3, 5, 7, 10, 12, 15, 20} {
				if !s.Contains(0, k) {
					t.Fatalf("key %d missing", k)
				}
			}
			if !s.Remove(0, 10) || s.Remove(0, 10) {
				t.Fatal("remove semantics broken")
			}
			if s.Contains(0, 10) {
				t.Fatal("10 still present")
			}
			for _, k := range []uint64{3, 5, 7, 12, 15, 20} {
				if !s.Contains(0, k) {
					t.Fatalf("key %d lost after unrelated remove", k)
				}
			}
		})
	}
}

func TestAgainstModel(t *testing.T) {
	for name, s := range trees(2) {
		t.Run(name, func(t *testing.T) {
			model := map[uint64]bool{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 30_000; i++ {
				k := uint64(rng.Intn(300)) + 1
				switch rng.Intn(3) {
				case 0:
					if s.Insert(0, k) != !model[k] {
						t.Fatalf("insert(%d) vs model at %d", k, i)
					}
					model[k] = true
				case 1:
					if s.Remove(0, k) != model[k] {
						t.Fatalf("remove(%d) vs model at %d", k, i)
					}
					model[k] = false
				default:
					if s.Contains(0, k) != model[k] {
						t.Fatalf("contains(%d) vs model at %d", k, i)
					}
				}
			}
		})
	}
}

func TestRemoveRootChild(t *testing.T) {
	for name, s := range trees(2) {
		t.Run(name, func(t *testing.T) {
			s.Insert(0, 1)
			if !s.Remove(0, 1) {
				t.Fatal("remove sole key failed")
			}
			if s.Contains(0, 1) {
				t.Fatal("key still visible")
			}
			// tree must still accept inserts
			if !s.Insert(0, 2) || !s.Contains(0, 2) {
				t.Fatal("tree unusable after emptying")
			}
		})
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	for name, s := range trees(9) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			const span = 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid*span) + 1
					for round := 0; round < 15; round++ {
						for k := base; k < base+span; k++ {
							if !s.Insert(tid, k) {
								panic("owned insert failed")
							}
						}
						for k := base; k < base+span; k++ {
							if !s.Contains(tid, k) {
								panic("owned key missing")
							}
						}
						for k := base; k < base+span; k++ {
							if !s.Remove(tid, k) {
								panic("owned remove failed")
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func TestConcurrentShared(t *testing.T) {
	for name, s := range trees(9) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid)*48271 + 11
					for i := 0; i < 8000; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						k := rng%128 + 1
						switch rng % 3 {
						case 0:
							s.Insert(tid, k)
						case 1:
							s.Remove(tid, k)
						default:
							s.Contains(tid, k)
						}
					}
				}(w)
			}
			wg.Wait()
			for k := uint64(1); k <= 128; k++ {
				s.Remove(0, k)
				if s.Contains(0, k) {
					t.Fatalf("key %d survived removal", k)
				}
			}
		})
	}
}

// TestOrcTreeNoLeak: inserting and removing all keys reclaims every node
// beyond the five sentinels.
func TestOrcTreeNoLeak(t *testing.T) {
	tr := NewOrc(0, core.DomainConfig{MaxThreads: 2})
	for k := uint64(1); k <= 500; k++ {
		tr.Insert(0, k)
	}
	for k := uint64(1); k <= 500; k++ {
		if !tr.Remove(0, k) {
			t.Fatalf("remove %d failed", k)
		}
	}
	tr.Destroy(0)
	if live := tr.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestEBRTreeReclaims: the epoch variant must actually free memory.
func TestEBRTreeReclaims(t *testing.T) {
	tr := NewManual("ebr", reclaim.Options{MaxThreads: 2})
	for round := 0; round < 10; round++ {
		for k := uint64(1); k <= 200; k++ {
			tr.Insert(0, k)
		}
		for k := uint64(1); k <= 200; k++ {
			tr.Remove(0, k)
		}
	}
	tr.Scheme().Flush(0)
	if st := tr.Scheme().Stats(); st.Freed == 0 {
		t.Fatal("EBR tree freed nothing")
	}
}

// TestManualRejectsPointerSchemes: the constructor must refuse schemes
// that cannot reclaim this structure (the paper's obstacle 1).
func TestManualRejectsPointerSchemes(t *testing.T) {
	for _, scheme := range []string{"hp", "ptb", "ptp", "he", "ibr"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewManual(%q) did not panic", scheme)
				}
			}()
			NewManual(scheme, reclaim.Options{})
		}()
	}
}
