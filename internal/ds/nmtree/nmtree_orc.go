// Package nmtree implements the Natarajan–Mittal lock-free external
// binary search tree [22] — the tree of Figures 7 and 8.
//
// Keys live in leaves; internal nodes route. Deletion is edge-based: the
// deleter *flags* the edge parent→leaf, then *tags* the sibling edge so
// it cannot change, and finally swings the ancestor's edge from the
// successor to the sibling, unlinking a whole chain in one CAS. That
// multi-node unlink is why pointer-based manual schemes do not apply
// cleanly (the helped unlink removes nodes whose deleters cannot know
// they are gone — the paper's first obstacle); OrcTree needs no retire
// calls at all, while ManualTree supports only epoch-based reclamation
// and the leaking baseline, retiring conservatively (see its comment).
//
// Handle tag bits: arena.Flag is the NM "flag" (leaf edge under
// deletion), arena.Mark is the NM "tag" (sibling edge frozen).
package nmtree

import (
	"repro/internal/arena"
	"repro/internal/core"
)

// Sentinel keys: all real keys must be < KInf0.
const (
	KInf0 = ^uint64(2)
	KInf1 = ^uint64(1)
	KInf2 = ^uint64(0)
)

// Node is a tree node; leaf is immutable after creation.
type Node struct {
	key         uint64
	leaf        bool
	left, right core.Atomic
}

func nodeLinks(n *Node, visit func(*core.Atomic)) {
	visit(&n.left)
	visit(&n.right)
}

// OrcTree is the NM tree with OrcGC annotation only.
type OrcTree struct {
	d    *core.Domain[Node]
	root core.Atomic // hard link to R; R and S are never deleted
}

// seekRec is the paper's seek record: ancestor→successor is the deepest
// untagged edge above parent; parent→leaf is the final edge.
type seekRec struct {
	ancestor, successor, parent, leaf core.Ptr
}

func (t *OrcTree) releaseRec(tid int, sr *seekRec) {
	t.d.Release(tid, &sr.ancestor)
	t.d.Release(tid, &sr.successor)
	t.d.Release(tid, &sr.parent)
	t.d.Release(tid, &sr.leaf)
}

// NewOrc builds the sentinel skeleton R(∞₂){S(∞₁){leaf ∞₀, leaf ∞₁}, leaf ∞₂}.
func NewOrc(tid int, cfg core.DomainConfig) *OrcTree {
	a := arena.New[Node]()
	d := core.NewDomain(a, nodeLinks, cfg)
	t := &OrcTree{d: d}

	var l0, l1, l2, s, r core.Ptr
	d.Make(tid, func(n *Node) { n.key, n.leaf = KInf0, true }, &l0)
	d.Make(tid, func(n *Node) { n.key, n.leaf = KInf1, true }, &l1)
	d.Make(tid, func(n *Node) { n.key, n.leaf = KInf2, true }, &l2)
	d.Make(tid, func(n *Node) { n.key = KInf1 }, &s)
	sn := d.Get(s.H())
	d.InitLink(tid, &sn.left, l0.H())
	d.InitLink(tid, &sn.right, l1.H())
	d.Make(tid, func(n *Node) { n.key = KInf2 }, &r)
	rn := d.Get(r.H())
	d.InitLink(tid, &rn.left, s.H())
	d.InitLink(tid, &rn.right, l2.H())
	d.Store(tid, &t.root, r.H())
	for _, p := range []*core.Ptr{&l0, &l1, &l2, &s, &r} {
		d.Release(tid, p)
	}
	return t
}

// Domain exposes the OrcGC domain.
func (t *OrcTree) Domain() *core.Domain[Node] { return t.d }

// Destroy drops the root and flushes; quiescent use only.
func (t *OrcTree) Destroy(tid int) {
	t.d.Store(tid, &t.root, arena.Nil)
	t.d.FlushAll()
}

func childEdge(n *Node, key uint64) *core.Atomic {
	if key < n.key {
		return &n.left
	}
	return &n.right
}

// seek descends to the leaf for key, maintaining the seek record.
func (t *OrcTree) seek(tid int, key uint64, sr *seekRec) {
	d := t.d
	d.Load(tid, &t.root, &sr.ancestor)
	anc := d.Get(sr.ancestor.H())
	d.Load(tid, &anc.left, &sr.successor)
	sr.successor.Unmark()
	d.CopyPtr(tid, &sr.parent, &sr.successor)
	parentField := d.Load(tid, &d.Get(sr.parent.H()).left, &sr.leaf)
	sr.leaf.Unmark()
	for {
		node := d.Get(sr.leaf.H())
		if node.leaf {
			return
		}
		// Descend through the internal node currently in sr.leaf.
		if !parentField.Marked() { // untagged edge into it
			d.CopyPtr(tid, &sr.ancestor, &sr.parent)
			d.CopyPtr(tid, &sr.successor, &sr.leaf)
		}
		d.CopyPtr(tid, &sr.parent, &sr.leaf)
		parentField = d.Load(tid, childEdge(node, key), &sr.leaf)
		sr.leaf.Unmark()
	}
}

// cleanup attempts the physical removal for the delete flagged around
// key: freeze the sibling edge with a tag, then swing the ancestor edge
// from successor to sibling (preserving the sibling's flag). True iff
// this thread's CAS performed the unlink.
func (t *OrcTree) cleanup(tid int, key uint64, sr *seekRec) bool {
	d := t.d
	parentNode := d.Get(sr.parent.H())
	var cEdge, sEdge *core.Atomic
	if key < parentNode.key {
		cEdge, sEdge = &parentNode.left, &parentNode.right
	} else {
		cEdge, sEdge = &parentNode.right, &parentNode.left
	}
	if !cEdge.Raw().Flagged() {
		// The flag sits on the other edge: we are helping a delete of
		// the sibling, so the chunk to excise hangs off cEdge's side.
		sEdge = cEdge
	}
	var sib core.Ptr
	defer d.Release(tid, &sib)
	sv := d.Load(tid, sEdge, &sib)
	for !sv.Marked() {
		d.CAS(tid, sEdge, sv, sv.WithMark())
		sv = d.Load(tid, sEdge, &sib)
	}
	newVal := sv.Unmarked()
	if sv.Flagged() {
		newVal = newVal.WithFlag()
	}
	ancNode := d.Get(sr.ancestor.H())
	return d.CAS(tid, childEdge(ancNode, key), sr.successor.H(), newVal)
	// No retire anywhere: the CAS dropped the only external hard link
	// to the successor chunk; OrcGC collapses it recursively.
}

// Insert adds key; false if present.
func (t *OrcTree) Insert(tid int, key uint64) bool {
	d := t.d
	var sr seekRec
	var nl, ni core.Ptr
	defer t.releaseRec(tid, &sr)
	defer func() {
		d.Release(tid, &nl)
		d.Release(tid, &ni)
	}()
	for {
		t.seek(tid, key, &sr)
		leafNode := d.Get(sr.leaf.H())
		if leafNode.key == key {
			return false
		}
		parentNode := d.Get(sr.parent.H())
		edge := childEdge(parentNode, key)

		d.Make(tid, func(n *Node) { n.key, n.leaf = key, true }, &nl)
		ik := key
		if leafNode.key > ik {
			ik = leafNode.key
		}
		d.Make(tid, func(n *Node) { n.key = ik }, &ni)
		in := d.Get(ni.H())
		if key < leafNode.key {
			d.InitLink(tid, &in.left, nl.H())
			d.InitLink(tid, &in.right, sr.leaf.H())
		} else {
			d.InitLink(tid, &in.left, sr.leaf.H())
			d.InitLink(tid, &in.right, nl.H())
		}
		if d.CAS(tid, edge, sr.leaf.H(), ni.H()) {
			return true
		}
		// Discard the speculative nodes (auto-reclaimed) and help any
		// pending delete blocking this edge.
		d.Release(tid, &ni)
		d.Release(tid, &nl)
		cur := edge.Raw()
		if cur.Unmarked() == sr.leaf.H() && cur.Tags() != 0 {
			t.cleanup(tid, key, &sr)
		}
	}
}

// Remove deletes key; false if absent.
func (t *OrcTree) Remove(tid int, key uint64) bool {
	d := t.d
	var sr seekRec
	var target core.Ptr
	defer t.releaseRec(tid, &sr)
	defer d.Release(tid, &target)
	injecting := true
	for {
		t.seek(tid, key, &sr)
		if injecting {
			leafNode := d.Get(sr.leaf.H())
			if leafNode.key != key {
				return false
			}
			parentNode := d.Get(sr.parent.H())
			edge := childEdge(parentNode, key)
			if d.CAS(tid, edge, sr.leaf.H(), sr.leaf.H().WithFlag()) {
				injecting = false
				d.CopyPtr(tid, &target, &sr.leaf)
				if t.cleanup(tid, key, &sr) {
					return true
				}
			} else {
				cur := edge.Raw()
				if cur.Unmarked() == sr.leaf.H() && cur.Tags() != 0 {
					t.cleanup(tid, key, &sr)
				}
			}
			continue
		}
		if sr.leaf.H() != target.H() {
			return true // a helper finished the unlink
		}
		if t.cleanup(tid, key, &sr) {
			return true
		}
	}
}

// Contains reports membership.
func (t *OrcTree) Contains(tid int, key uint64) bool {
	d := t.d
	var cur, next core.Ptr
	defer func() {
		d.Release(tid, &cur)
		d.Release(tid, &next)
	}()
	d.Load(tid, &t.root, &cur)
	for {
		n := d.Get(cur.H())
		if n.leaf {
			return n.key == key
		}
		d.Load(tid, childEdge(n, key), &next)
		d.CopyPtr(tid, &cur, &next)
		cur.Unmark()
	}
}
