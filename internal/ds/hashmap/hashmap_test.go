package hashmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/reclaim"
)

type set interface {
	Insert(tid int, key uint64) bool
	Remove(tid int, key uint64) bool
	Contains(tid int, key uint64) bool
}

func maps(threads int) map[string]set {
	out := map[string]set{
		"orc": NewOrc(0, 16, core.DomainConfig{MaxThreads: threads}),
	}
	for _, scheme := range reclaim.Names() {
		out["manual-"+scheme] = NewManual(scheme, 16, reclaim.Options{MaxThreads: threads})
	}
	return out
}

func TestBucketOfProperty(t *testing.T) {
	f := func(key uint64, n uint8) bool {
		nb := int(n%63) + 1
		b := bucketOf(key, nb)
		return b >= 0 && b < nb && b == bucketOf(key, nb) // in range, stable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialSemantics(t *testing.T) {
	for name, m := range maps(2) {
		t.Run(name, func(t *testing.T) {
			if m.Contains(0, 10) {
				t.Fatal("empty map contains 10")
			}
			if !m.Insert(0, 10) || m.Insert(0, 10) {
				t.Fatal("insert semantics")
			}
			// collide several keys into the same small bucket space
			for k := uint64(1); k <= 100; k++ {
				if k != 10 && !m.Insert(0, k) {
					t.Fatalf("insert %d", k)
				}
			}
			for k := uint64(1); k <= 100; k++ {
				if !m.Contains(0, k) {
					t.Fatalf("missing %d", k)
				}
			}
			if !m.Remove(0, 10) || m.Remove(0, 10) {
				t.Fatal("remove semantics")
			}
			if m.Contains(0, 10) {
				t.Fatal("10 still present")
			}
		})
	}
}

func TestAgainstModel(t *testing.T) {
	for name, m := range maps(2) {
		t.Run(name, func(t *testing.T) {
			model := map[uint64]bool{}
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < 25_000; i++ {
				k := uint64(rng.Intn(500)) + 1
				switch rng.Intn(3) {
				case 0:
					if m.Insert(0, k) != !model[k] {
						t.Fatalf("insert(%d) vs model at %d", k, i)
					}
					model[k] = true
				case 1:
					if m.Remove(0, k) != model[k] {
						t.Fatalf("remove(%d) vs model at %d", k, i)
					}
					model[k] = false
				default:
					if m.Contains(0, k) != model[k] {
						t.Fatalf("contains(%d) vs model at %d", k, i)
					}
				}
			}
		})
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	for name, m := range maps(9) {
		name, m := name, m
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			const span = 120
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid*span) + 1
					for round := 0; round < 20; round++ {
						for k := base; k < base+span; k++ {
							if !m.Insert(tid, k) {
								panic("owned insert failed")
							}
						}
						for k := base; k < base+span; k++ {
							if !m.Contains(tid, k) {
								panic("owned key missing")
							}
						}
						for k := base; k < base+span; k++ {
							if !m.Remove(tid, k) {
								panic("owned remove failed")
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func TestConcurrentShared(t *testing.T) {
	for name, m := range maps(9) {
		name, m := name, m
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid)*104729 + 19
					for i := 0; i < 8000; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						k := rng%256 + 1
						switch rng % 3 {
						case 0:
							m.Insert(tid, k)
						case 1:
							m.Remove(tid, k)
						default:
							m.Contains(tid, k)
						}
					}
				}(w)
			}
			wg.Wait()
			for k := uint64(1); k <= 256; k++ {
				m.Remove(0, k)
				if m.Contains(0, k) {
					t.Fatalf("key %d survived removal", k)
				}
			}
		})
	}
}

func TestOrcMapNoLeak(t *testing.T) {
	m := NewOrc(0, 8, core.DomainConfig{MaxThreads: 2})
	for k := uint64(1); k <= 500; k++ {
		m.Insert(0, k)
	}
	for k := uint64(1); k <= 500; k++ {
		if !m.Remove(0, k) {
			t.Fatalf("remove %d", k)
		}
	}
	m.Destroy(0)
	if live := m.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

func TestManualMapReclaims(t *testing.T) {
	for _, scheme := range []string{"hp", "ptb", "ptp", "ebr", "he", "ibr"} {
		t.Run(scheme, func(t *testing.T) {
			m := NewManual(scheme, 8, reclaim.Options{MaxThreads: 2})
			for round := 0; round < 10; round++ {
				for k := uint64(1); k <= 200; k++ {
					m.Insert(0, k)
				}
				for k := uint64(1); k <= 200; k++ {
					m.Remove(0, k)
				}
			}
			m.Scheme().Flush(0)
			if m.Scheme().Stats().Freed == 0 {
				t.Fatalf("%s freed nothing", scheme)
			}
		})
	}
}

func TestSingleBucketDegenerate(t *testing.T) {
	// One bucket = a plain Michael list; all collision paths exercised.
	m := NewOrc(0, 1, core.DomainConfig{MaxThreads: 2})
	for k := uint64(1); k <= 64; k++ {
		if !m.Insert(0, k) {
			t.Fatalf("insert %d", k)
		}
	}
	for k := uint64(64); k >= 1; k-- {
		if !m.Remove(0, k) {
			t.Fatalf("remove %d", k)
		}
	}
	m.Destroy(0)
	if live := m.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("leaked %d", live)
	}
}
