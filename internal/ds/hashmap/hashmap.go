// Package hashmap implements Michael's lock-free hash table [18]: a
// fixed array of bucket roots, each heading a sorted lock-free linked
// list. The paper's §1 motivates OrcGC with exactly this class of
// structure — the hash map is the standard beneficiary of the Michael
// list, and deploying OrcGC on it is again annotation-only. Provided in
// an OrcGC variant and a manual variant parameterized over every scheme
// in internal/reclaim (buckets are plain Michael lists, so all manual
// schemes apply).
//
// Unlike the sentinel-framed lists in internal/ds/list, buckets here are
// nil-terminated from a root Atomic — exercising the no-sentinel shape
// of the algorithms.
package hashmap

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
)

// Node is a bucket-list node. val is a plain payload word (not a link:
// it never references another tracked object, so it stays outside
// nodeLinks). It is written only while the node is protected, so reads
// through a protected handle are always safe.
type Node struct {
	key  uint64
	val  atomic.Uint64
	next core.Atomic
}

func nodeLinks(n *Node, visit func(*core.Atomic)) { visit(&n.next) }

func bucketOf(key uint64, nbuckets int) int {
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(nbuckets))
}

// OrcMap is the hash map under OrcGC.
type OrcMap struct {
	d       *core.Domain[Node]
	buckets []core.Atomic
}

// NewOrc builds a map with nbuckets buckets (default 64).
func NewOrc(tid int, nbuckets int, cfg core.DomainConfig) *OrcMap {
	if nbuckets <= 0 {
		nbuckets = 64
	}
	a := arena.New[Node]()
	d := core.NewDomain(a, nodeLinks, cfg)
	_ = tid
	return &OrcMap{d: d, buckets: make([]core.Atomic, nbuckets)}
}

// Domain exposes the OrcGC domain.
func (m *OrcMap) Domain() *core.Domain[Node] { return m.d }

// Destroy drops every bucket root and flushes; quiescent use only.
func (m *OrcMap) Destroy(tid int) {
	for i := range m.buckets {
		m.d.Store(tid, &m.buckets[i], arena.Nil)
	}
	m.d.FlushAll()
}

// find positions (prevA, cur) around key inside the bucket list; cur is
// nil when the key belongs at the end. Marked nodes on the way are
// unlinked (no retire — OrcGC).
func (m *OrcMap) find(tid int, root *core.Atomic, key uint64, prev, cur, next *core.Ptr) (prevA *core.Atomic, found bool) {
	d := m.d
retry:
	for {
		prevA = root
		d.Load(tid, prevA, cur)
		cur.Unmark()
		for {
			if cur.IsNil() {
				return prevA, false
			}
			curN := d.Get(cur.H())
			nextH := d.Load(tid, &curN.next, next)
			if prevA.Raw() != cur.H() {
				continue retry
			}
			if !nextH.Marked() {
				if curN.key >= key {
					return prevA, curN.key == key
				}
				prevA = &curN.next
				d.CopyPtr(tid, prev, cur)
			} else {
				if !d.CAS(tid, prevA, cur.H(), nextH.Unmarked()) {
					continue retry
				}
			}
			d.CopyPtr(tid, cur, next)
			cur.Unmark()
		}
	}
}

// Insert adds key; false if present.
func (m *OrcMap) Insert(tid int, key uint64) bool {
	d := m.d
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	var prev, cur, next, nn core.Ptr
	defer func() {
		d.Release(tid, &prev)
		d.Release(tid, &cur)
		d.Release(tid, &next)
		d.Release(tid, &nn)
	}()
	for {
		prevA, found := m.find(tid, root, key, &prev, &cur, &next)
		if found {
			return false
		}
		d.Make(tid, func(n *Node) { n.key = key }, &nn)
		d.InitLink(tid, &d.Get(nn.H()).next, cur.H())
		if d.CAS(tid, prevA, cur.H(), nn.H()) {
			return true
		}
		d.Release(tid, &nn)
	}
}

// Remove deletes key; false if absent.
func (m *OrcMap) Remove(tid int, key uint64) bool {
	d := m.d
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	var prev, cur, next core.Ptr
	defer func() {
		d.Release(tid, &prev)
		d.Release(tid, &cur)
		d.Release(tid, &next)
	}()
	for {
		prevA, found := m.find(tid, root, key, &prev, &cur, &next)
		if !found {
			return false
		}
		curN := d.Get(cur.H())
		nextH := d.Load(tid, &curN.next, &next)
		if nextH.Marked() {
			continue
		}
		if !d.CAS(tid, &curN.next, nextH, nextH.WithMark()) {
			continue
		}
		if !d.CAS(tid, prevA, cur.H(), nextH.Unmarked()) {
			m.find(tid, root, key, &prev, &cur, &next)
		}
		return true
	}
}

// Get returns the value stored under key.
func (m *OrcMap) Get(tid int, key uint64) (uint64, bool) {
	d := m.d
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	var prev, cur, next core.Ptr
	defer func() {
		d.Release(tid, &prev)
		d.Release(tid, &cur)
		d.Release(tid, &next)
	}()
	_, found := m.find(tid, root, key, &prev, &cur, &next)
	if !found {
		return 0, false
	}
	return d.Get(cur.H()).val.Load(), true
}

// Put inserts key→val or updates the value of an existing key; it
// returns true when the key was newly inserted. An in-place update
// linearizes at the val store: if the node is found unmarked afterwards
// the update preceded any concurrent removal of that node; if it was
// already marked the removal may have won, so Put retries and inserts a
// fresh node (the mark bit on next is permanent once set).
func (m *OrcMap) Put(tid int, key, val uint64) bool {
	d := m.d
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	var prev, cur, next, nn core.Ptr
	defer func() {
		d.Release(tid, &prev)
		d.Release(tid, &cur)
		d.Release(tid, &next)
		d.Release(tid, &nn)
	}()
	for {
		prevA, found := m.find(tid, root, key, &prev, &cur, &next)
		if found {
			curN := d.Get(cur.H())
			curN.val.Store(val)
			if curN.next.Raw().Marked() {
				continue // a concurrent remove may have missed the update
			}
			return false
		}
		d.Make(tid, func(n *Node) {
			n.key = key
			n.val.Store(val)
		}, &nn)
		d.InitLink(tid, &d.Get(nn.H()).next, cur.H())
		if d.CAS(tid, prevA, cur.H(), nn.H()) {
			return true
		}
		d.Release(tid, &nn)
	}
}

// Contains reports membership.
func (m *OrcMap) Contains(tid int, key uint64) bool {
	d := m.d
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	var prev, cur, next core.Ptr
	_, found := m.find(tid, root, key, &prev, &cur, &next)
	d.Release(tid, &prev)
	d.Release(tid, &cur)
	d.Release(tid, &next)
	return found
}
