package hashmap

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/reclaim"
)

// MNode is a manually reclaimed bucket-list node. val is a plain
// payload word, written only while the node is protected by the
// scheme's hazardous pointers (or covered by its epoch).
type MNode struct {
	key  uint64
	val  atomic.Uint64
	next atomic.Uint64
}

// HPsNeeded is H for the bucket list: next, cur, prev.
const HPsNeeded = 3

// ManualMap is Michael's hash table under any manual reclamation scheme.
type ManualMap struct {
	a       *arena.Arena[MNode]
	s       reclaim.Scheme
	buckets []atomic.Uint64
}

// NewManual builds a map reclaimed by scheme name.
func NewManual(scheme string, nbuckets int, cfg reclaim.Options) *ManualMap {
	if nbuckets <= 0 {
		nbuckets = 64
	}
	a := arena.New[MNode]()
	cfg.MaxHPs = HPsNeeded
	m := &ManualMap{a: a, buckets: make([]atomic.Uint64, nbuckets)}
	m.s = reclaim.MustNew(scheme, reclaim.Env{Free: a.FreeT, Hdr: a.Header}, cfg)
	return m
}

// Scheme exposes the reclamation scheme.
func (m *ManualMap) Scheme() reclaim.Scheme { return m.s }

// Arena exposes the node arena.
func (m *ManualMap) Arena() *arena.Arena[MNode] { return m.a }

// find positions (prevA, cur) in the bucket with hazardous pointers
// held (hp1=cur, hp2=prev node, hp0=successor); cur may be Nil.
func (m *ManualMap) find(tid int, root *atomic.Uint64, key uint64) (prevA *atomic.Uint64, cur arena.Handle, found bool) {
retry:
	for {
		prevA = root
		m.s.Clear(tid, 2)
		cur = m.s.GetProtected(tid, 1, prevA).Unmarked()
		for {
			if cur.IsNil() {
				return prevA, cur, false
			}
			curN := m.a.Get(cur)
			next := m.s.GetProtected(tid, 0, &curN.next)
			if arena.Handle(prevA.Load()) != cur {
				continue retry
			}
			if !next.Marked() {
				if curN.key >= key {
					return prevA, cur, curN.key == key
				}
				prevA = &curN.next
				m.s.Protect(tid, 2, cur)
			} else {
				if !prevA.CompareAndSwap(uint64(cur), uint64(next.Unmarked())) {
					continue retry
				}
				m.s.Retire(tid, cur)
			}
			cur = next.Unmarked()
			m.s.Protect(tid, 1, cur)
		}
	}
}

// Insert adds key; false if present.
func (m *ManualMap) Insert(tid int, key uint64) bool {
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	m.s.BeginOp(tid)
	defer m.s.EndOp(tid)
	defer m.s.ClearAll(tid)
	for {
		prevA, cur, found := m.find(tid, root, key)
		if found {
			return false
		}
		nh, n := m.a.AllocT(tid)
		n.key = key
		n.next.Store(uint64(cur))
		m.s.OnAlloc(nh)
		if prevA.CompareAndSwap(uint64(cur), uint64(nh)) {
			return true
		}
		m.a.FreeT(tid, nh)
	}
}

// Remove deletes key; false if absent.
func (m *ManualMap) Remove(tid int, key uint64) bool {
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	m.s.BeginOp(tid)
	defer m.s.EndOp(tid)
	defer m.s.ClearAll(tid)
	for {
		prevA, cur, found := m.find(tid, root, key)
		if !found {
			return false
		}
		curN := m.a.Get(cur)
		next := arena.Handle(curN.next.Load())
		if next.Marked() {
			continue
		}
		if !curN.next.CompareAndSwap(uint64(next), uint64(next.WithMark())) {
			continue
		}
		if prevA.CompareAndSwap(uint64(cur), uint64(next)) {
			m.s.Retire(tid, cur)
		} else {
			m.find(tid, root, key)
		}
		return true
	}
}

// Get returns the value stored under key.
func (m *ManualMap) Get(tid int, key uint64) (uint64, bool) {
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	m.s.BeginOp(tid)
	defer m.s.EndOp(tid)
	defer m.s.ClearAll(tid)
	_, cur, found := m.find(tid, root, key)
	if !found {
		return 0, false
	}
	return m.a.Get(cur).val.Load(), true
}

// Put inserts key→val or updates the value of an existing key; true
// when newly inserted. See OrcMap.Put for the update linearization
// argument (the mark bit on next is permanent once set, so an unmarked
// re-check after the val store proves the update preceded any removal).
func (m *ManualMap) Put(tid int, key, val uint64) bool {
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	m.s.BeginOp(tid)
	defer m.s.EndOp(tid)
	defer m.s.ClearAll(tid)
	for {
		prevA, cur, found := m.find(tid, root, key)
		if found {
			curN := m.a.Get(cur)
			curN.val.Store(val)
			if arena.Handle(curN.next.Load()).Marked() {
				continue // a concurrent remove may have missed the update
			}
			return false
		}
		nh, n := m.a.AllocT(tid)
		n.key = key
		n.val.Store(val)
		n.next.Store(uint64(cur))
		m.s.OnAlloc(nh)
		if prevA.CompareAndSwap(uint64(cur), uint64(nh)) {
			return true
		}
		m.a.FreeT(tid, nh)
	}
}

// Contains reports membership.
func (m *ManualMap) Contains(tid int, key uint64) bool {
	root := &m.buckets[bucketOf(key, len(m.buckets))]
	m.s.BeginOp(tid)
	_, _, found := m.find(tid, root, key)
	m.s.ClearAll(tid)
	m.s.EndOp(tid)
	return found
}
