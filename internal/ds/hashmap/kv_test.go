package hashmap

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
)

// kvMap is the Put/Get surface shared by both variants.
type kvMap interface {
	Put(tid int, key, val uint64) bool
	Get(tid int, key uint64) (uint64, bool)
	Remove(tid int, key uint64) bool
}

func kvVariants(threads int) map[string]kvMap {
	out := map[string]kvMap{
		"orc": NewOrc(0, 64, core.DomainConfig{MaxThreads: threads}),
	}
	for _, s := range []string{"hp", "ebr", "ptp", "none"} {
		out["manual-"+s] = NewManual(s, 64, reclaim.Options{MaxThreads: threads})
	}
	return out
}

func TestPutGetSequential(t *testing.T) {
	for name, m := range kvVariants(2) {
		t.Run(name, func(t *testing.T) {
			if _, ok := m.Get(0, 7); ok {
				t.Fatal("get on empty map")
			}
			if !m.Put(0, 7, 100) {
				t.Fatal("first put should insert")
			}
			if v, ok := m.Get(0, 7); !ok || v != 100 {
				t.Fatalf("get = %d,%v want 100,true", v, ok)
			}
			if m.Put(0, 7, 200) {
				t.Fatal("second put should update, not insert")
			}
			if v, ok := m.Get(0, 7); !ok || v != 200 {
				t.Fatalf("get after update = %d,%v want 200,true", v, ok)
			}
			if !m.Remove(0, 7) {
				t.Fatal("remove")
			}
			if _, ok := m.Get(0, 7); ok {
				t.Fatal("get after remove")
			}
			if !m.Put(0, 7, 300) {
				t.Fatal("put after remove should insert")
			}
			if v, _ := m.Get(0, 7); v != 300 {
				t.Fatalf("get = %d want 300", v)
			}
		})
	}
}

// TestPutGetConcurrent checks read-your-writes per key under concurrent
// put/del churn on other keys: each worker owns a disjoint key set and
// every Get must return the worker's latest Put value (or miss right
// after its own Remove).
func TestPutGetConcurrent(t *testing.T) {
	const workers = 4
	const per = 400
	for name, m := range kvVariants(workers) {
		m := m
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan string, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid * 1000)
					for i := 0; i < per; i++ {
						k := base + uint64(i%17) + 1
						want := uint64(tid*per + i)
						m.Put(tid, k, want)
						if v, ok := m.Get(tid, k); !ok || v != want {
							errs <- name
							return
						}
						if i%5 == 0 {
							m.Remove(tid, k)
							if _, ok := m.Get(tid, k); ok {
								errs <- name
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			if msg, bad := <-errs; bad {
				t.Fatalf("%s: lost an update on its own key", msg)
			}
		})
	}
}
