// Package kpqueue implements the Kogan–Petrank wait-free MPMC queue
// [17]: phase-numbered operation descriptors with universal helping.
// This is the paper's first-obstacle structure — a node's removal can be
// completed by any helper, so no thread can know when to call retire(),
// and no manual lock-free scheme in Table 1 applies to the original
// algorithm. OrcGC reclaims both the nodes and the descriptors purely
// from hard-link counts; the leak variant is the performance baseline.
//
// Node and descriptor share one arena object type (Obj) so that
// descriptor→node hard links stay inside a single OrcGC domain.
package kpqueue

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
)

// Obj is either a queue node or an operation descriptor.
type Obj struct {
	// node fields
	value  uint64
	enqTid int32        // creator thread, immutable
	deqTid atomic.Int32 // claimed by the dequeue that removes this node
	next   core.Atomic
	// descriptor fields (immutable once published)
	phase   int64
	pending bool
	enqueue bool
	node    core.Atomic // descriptor's node reference
}

func objLinks(o *Obj, visit func(*core.Atomic)) {
	visit(&o.next)
	visit(&o.node)
}

// OrcQueue is the KP queue under OrcGC.
type OrcQueue struct {
	d     *core.Domain[Obj]
	nthr  int
	head  core.Atomic
	tail  core.Atomic
	state []core.Atomic // one descriptor slot per thread
}

// NewOrc builds the queue with its sentinel node and idle descriptors.
func NewOrc(tid int, cfg core.DomainConfig) *OrcQueue {
	a := arena.New[Obj]()
	d := core.NewDomain(a, objLinks, cfg)
	q := &OrcQueue{d: d, nthr: cfg.MaxThreads}
	if q.nthr <= 0 {
		q.nthr = 64
	}
	q.state = make([]core.Atomic, q.nthr)

	var p core.Ptr
	d.Make(tid, func(o *Obj) {
		o.enqTid = -1
		o.deqTid.Store(-1)
	}, &p) // sentinel
	d.Store(tid, &q.head, p.H())
	d.Store(tid, &q.tail, p.H())
	d.Release(tid, &p)
	for i := range q.state {
		d.Make(tid, func(o *Obj) {
			o.phase = -1
			o.pending = false
			o.enqueue = true
		}, &p)
		d.Store(tid, &q.state[i], p.H())
		d.Release(tid, &p)
	}
	return q
}

// Domain exposes the OrcGC domain.
func (q *OrcQueue) Domain() *core.Domain[Obj] { return q.d }

func (q *OrcQueue) maxPhase(tid int) int64 {
	d := q.d
	var p core.Ptr
	maxP := int64(-1)
	for i := range q.state {
		h := d.Load(tid, &q.state[i], &p)
		if !h.IsNil() {
			if ph := d.Get(h).phase; ph > maxP {
				maxP = ph
			}
		}
	}
	d.Release(tid, &p)
	return maxP
}

func (q *OrcQueue) isStillPending(tid, i int, phase int64) bool {
	d := q.d
	var p core.Ptr
	h := d.Load(tid, &q.state[i], &p)
	ok := false
	if !h.IsNil() {
		dd := d.Get(h)
		ok = dd.pending && dd.phase <= phase
	}
	d.Release(tid, &p)
	return ok
}

func (q *OrcQueue) help(tid int, phase int64) {
	d := q.d
	var p core.Ptr
	for i := 0; i < q.nthr; i++ {
		h := d.Load(tid, &q.state[i], &p)
		if h.IsNil() {
			continue
		}
		dd := d.Get(h)
		if dd.pending && dd.phase <= phase {
			if dd.enqueue {
				q.helpEnq(tid, i, phase)
			} else {
				q.helpDeq(tid, i, phase)
			}
		}
	}
	d.Release(tid, &p)
}

// Enqueue appends item; wait-free through helping.
func (q *OrcQueue) Enqueue(tid int, item uint64) {
	d := q.d
	phase := q.maxPhase(tid) + 1
	var node, desc core.Ptr
	d.Make(tid, func(o *Obj) {
		o.value = item
		o.enqTid = int32(tid)
		o.deqTid.Store(-1)
	}, &node)
	d.Make(tid, func(o *Obj) {
		o.phase = phase
		o.pending = true
		o.enqueue = true
	}, &desc)
	d.InitLink(tid, &d.Get(desc.H()).node, node.H())
	d.Store(tid, &q.state[tid], desc.H())
	d.Release(tid, &node)
	d.Release(tid, &desc)
	q.help(tid, phase)
	q.helpFinishEnq(tid)
}

func (q *OrcQueue) helpEnq(tid, i int, phase int64) {
	d := q.d
	var last, next, dp, np core.Ptr
	defer func() {
		d.Release(tid, &last)
		d.Release(tid, &next)
		d.Release(tid, &dp)
		d.Release(tid, &np)
	}()
	for q.isStillPending(tid, i, phase) {
		lastH := d.Load(tid, &q.tail, &last)
		nextH := d.Load(tid, &d.Get(lastH).next, &next)
		if q.tail.Raw() != lastH {
			continue
		}
		if nextH.IsNil() {
			if q.isStillPending(tid, i, phase) {
				dh := d.Load(tid, &q.state[i], &dp)
				nh := d.Load(tid, &d.Get(dh).node, &np)
				if !nh.IsNil() && d.CAS(tid, &d.Get(lastH).next, arena.Nil, nh) {
					q.helpFinishEnq(tid)
					return
				}
			}
		} else {
			q.helpFinishEnq(tid)
		}
	}
}

func (q *OrcQueue) helpFinishEnq(tid int) {
	d := q.d
	var last, next, dp, nd core.Ptr
	defer func() {
		d.Release(tid, &last)
		d.Release(tid, &next)
		d.Release(tid, &dp)
		d.Release(tid, &nd)
	}()
	lastH := d.Load(tid, &q.tail, &last)
	nextH := d.Load(tid, &d.Get(lastH).next, &next)
	if nextH.IsNil() {
		return
	}
	en := int(d.Get(nextH).enqTid)
	if en >= 0 && en < q.nthr {
		dh := d.Load(tid, &q.state[en], &dp)
		desc := d.Get(dh)
		if q.tail.Raw() == lastH && desc.node.Raw().Unmarked() == nextH.Unmarked() {
			d.Make(tid, func(o *Obj) {
				o.phase = desc.phase
				o.pending = false
				o.enqueue = true
			}, &nd)
			d.InitLink(tid, &d.Get(nd.H()).node, nextH)
			d.CAS(tid, &q.state[en], dh, nd.H())
		}
	}
	d.CAS(tid, &q.tail, lastH, nextH)
}

// Dequeue removes the oldest item; ok=false when empty.
func (q *OrcQueue) Dequeue(tid int) (uint64, bool) {
	d := q.d
	phase := q.maxPhase(tid) + 1
	var desc, dp, np, vp core.Ptr
	defer func() {
		d.Release(tid, &dp)
		d.Release(tid, &np)
		d.Release(tid, &vp)
	}()
	d.Make(tid, func(o *Obj) {
		o.phase = phase
		o.pending = true
		o.enqueue = false
	}, &desc)
	d.Store(tid, &q.state[tid], desc.H())
	d.Release(tid, &desc)
	q.help(tid, phase)
	q.helpFinishDeq(tid)

	dh := d.Load(tid, &q.state[tid], &dp)
	nodeH := d.Load(tid, &d.Get(dh).node, &np)
	if nodeH.IsNil() {
		return 0, false // recorded as empty
	}
	nextH := d.Load(tid, &d.Get(nodeH).next, &vp)
	return d.Get(nextH).value, true
}

func (q *OrcQueue) helpDeq(tid, i int, phase int64) {
	d := q.d
	var first, last, next, dp, np, nd core.Ptr
	defer func() {
		d.Release(tid, &first)
		d.Release(tid, &last)
		d.Release(tid, &next)
		d.Release(tid, &dp)
		d.Release(tid, &np)
		d.Release(tid, &nd)
	}()
	for q.isStillPending(tid, i, phase) {
		firstH := d.Load(tid, &q.head, &first)
		lastH := d.Load(tid, &q.tail, &last)
		nextH := d.Load(tid, &d.Get(firstH).next, &next)
		if q.head.Raw() != firstH {
			continue
		}
		if firstH == lastH {
			if nextH.IsNil() { // empty
				dh := d.Load(tid, &q.state[i], &dp)
				desc := d.Get(dh)
				if q.tail.Raw() == lastH && q.isStillPending(tid, i, phase) {
					d.Make(tid, func(o *Obj) {
						o.phase = desc.phase
						o.pending = false
						o.enqueue = false
					}, &nd)
					d.CAS(tid, &q.state[i], dh, nd.H())
					d.Release(tid, &nd)
				}
			} else {
				q.helpFinishEnq(tid)
			}
			continue
		}
		dh := d.Load(tid, &q.state[i], &dp)
		desc := d.Get(dh)
		nodeH := d.Load(tid, &desc.node, &np)
		if !q.isStillPending(tid, i, phase) {
			break
		}
		if q.head.Raw() == firstH && nodeH.Unmarked() != firstH.Unmarked() {
			// Record the current head as this dequeue's candidate.
			d.Make(tid, func(o *Obj) {
				o.phase = desc.phase
				o.pending = true
				o.enqueue = false
			}, &nd)
			d.InitLink(tid, &d.Get(nd.H()).node, firstH)
			if !d.CAS(tid, &q.state[i], dh, nd.H()) {
				d.Release(tid, &nd)
				continue
			}
			d.Release(tid, &nd)
		}
		d.Get(firstH).deqTid.CompareAndSwap(-1, int32(i))
		q.helpFinishDeq(tid)
	}
}

func (q *OrcQueue) helpFinishDeq(tid int) {
	d := q.d
	var first, next, dp, np, nd core.Ptr
	defer func() {
		d.Release(tid, &first)
		d.Release(tid, &next)
		d.Release(tid, &dp)
		d.Release(tid, &np)
		d.Release(tid, &nd)
	}()
	firstH := d.Load(tid, &q.head, &first)
	nextH := d.Load(tid, &d.Get(firstH).next, &next)
	dq := int(d.Get(firstH).deqTid.Load())
	if dq < 0 || dq >= q.nthr {
		return
	}
	dh := d.Load(tid, &q.state[dq], &dp)
	desc := d.Get(dh)
	if q.head.Raw() == firstH && !nextH.IsNil() {
		nodeH := d.Load(tid, &desc.node, &np)
		d.Make(tid, func(o *Obj) {
			o.phase = desc.phase
			o.pending = false
			o.enqueue = false
		}, &nd)
		d.InitLink(tid, &d.Get(nd.H()).node, nodeH)
		d.CAS(tid, &q.state[dq], dh, nd.H())
		d.CAS(tid, &q.head, firstH, nextH)
	}
}

// Drain empties the queue and drops the roots; quiescent use only.
func (q *OrcQueue) Drain(tid int) {
	for {
		if _, ok := q.Dequeue(tid); !ok {
			break
		}
	}
	d := q.d
	for i := range q.state {
		d.Store(tid, &q.state[i], arena.Nil)
	}
	d.Store(tid, &q.tail, arena.Nil)
	d.Store(tid, &q.head, arena.Nil)
	d.FlushAll()
}
