package kpqueue

import (
	"sync"
	"testing"

	"repro/internal/core"
)

type q interface {
	Enqueue(tid int, item uint64)
	Dequeue(tid int) (uint64, bool)
}

func queues(threads int) map[string]q {
	return map[string]q{
		"orc":  NewOrc(0, core.DomainConfig{MaxThreads: threads}),
		"leak": NewLeak(threads),
	}
}

func TestSequentialFIFO(t *testing.T) {
	for name, qu := range queues(4) {
		t.Run(name, func(t *testing.T) {
			if _, ok := qu.Dequeue(0); ok {
				t.Fatal("fresh queue not empty")
			}
			for i := uint64(1); i <= 200; i++ {
				qu.Enqueue(0, i)
			}
			for i := uint64(1); i <= 200; i++ {
				v, ok := qu.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
				}
			}
			if _, ok := qu.Dequeue(0); ok {
				t.Fatal("queue should be empty")
			}
		})
	}
}

func TestAlternatingOps(t *testing.T) {
	for name, qu := range queues(4) {
		t.Run(name, func(t *testing.T) {
			for round := uint64(0); round < 500; round++ {
				qu.Enqueue(0, round)
				v, ok := qu.Dequeue(1)
				if !ok || v != round {
					t.Fatalf("round %d: got %d ok=%v", round, v, ok)
				}
			}
		})
	}
}

func TestConcurrentConservation(t *testing.T) {
	for name, qu := range queues(7) {
		name, qu := name, qu
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 6
			const per = 2000 // helping is O(threads) per op; keep moderate
			var mu sync.Mutex
			sumIn, sumOut, cnt := uint64(0), uint64(0), 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					var in, out uint64
					var c int
					for i := 0; i < per; i++ {
						v := uint64(tid*per + i + 1)
						qu.Enqueue(tid, v)
						in += v
						if got, ok := qu.Dequeue(tid); ok {
							out += got
							c++
						}
					}
					mu.Lock()
					sumIn += in
					sumOut += out
					cnt += c
					mu.Unlock()
				}(w)
			}
			wg.Wait()
			for {
				v, ok := qu.Dequeue(0)
				if !ok {
					break
				}
				sumOut += v
				cnt++
			}
			if cnt != workers*per {
				t.Fatalf("count %d want %d", cnt, workers*per)
			}
			if sumIn != sumOut {
				t.Fatalf("sum in=%d out=%d", sumIn, sumOut)
			}
		})
	}
}

// TestOrcReclaims: after drain + flush nothing remains but the roots we
// dropped; the leak variant keeps everything (nodes + descriptors).
func TestOrcReclaims(t *testing.T) {
	qo := NewOrc(0, core.DomainConfig{MaxThreads: 4})
	for i := uint64(1); i <= 500; i++ {
		qo.Enqueue(0, i)
	}
	for i := uint64(1); i <= 500; i++ {
		qo.Dequeue(1)
	}
	qo.Drain(0)
	if live := qo.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("orc KP queue leaked %d objects", live)
	}

	ql := NewLeak(4)
	for i := uint64(1); i <= 500; i++ {
		ql.Enqueue(0, i)
	}
	for i := uint64(1); i <= 500; i++ {
		ql.Dequeue(1)
	}
	if live := ql.Arena().Stats().Live; live < 500 {
		t.Fatalf("leak variant unexpectedly reclaimed (live=%d)", live)
	}
}

// TestPerProducerOrder under concurrency.
func TestPerProducerOrder(t *testing.T) {
	qu := NewOrc(0, core.DomainConfig{MaxThreads: 5})
	const producers = 3
	const per = 1500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				qu.Enqueue(tid, uint64(tid)<<32|uint64(i))
			}
		}(p + 1)
	}
	wg.Wait()
	last := map[uint64]int64{}
	for {
		v, ok := qu.Dequeue(0)
		if !ok {
			break
		}
		p, seq := v>>32, int64(v&0xffffffff)
		if prev, seen := last[p]; seen && seq <= prev {
			t.Fatalf("producer %d out of order: %d after %d", p, seq, prev)
		}
		last[p] = seq
	}
}
