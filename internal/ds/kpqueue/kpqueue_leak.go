package kpqueue

import (
	"sync/atomic"

	"repro/internal/arena"
)

//orcvet:file-ignore protect no-reclamation baseline: every node leaks, so a raw load can never dangle

// LObj mirrors Obj with plain handle links — the no-reclamation baseline
// (descriptors and nodes all leak, as the original Java relies on GC).
type LObj struct {
	value   uint64
	enqTid  int32
	deqTid  atomic.Int32
	next    atomic.Uint64
	phase   int64
	pending bool
	enqueue bool
	node    atomic.Uint64
}

// LeakQueue is the KP queue without reclamation.
type LeakQueue struct {
	a     *arena.Arena[LObj]
	nthr  int
	head  atomic.Uint64
	tail  atomic.Uint64
	state []atomic.Uint64
}

// NewLeak builds the leaking queue for up to threads helpers.
func NewLeak(threads int) *LeakQueue {
	if threads <= 0 {
		threads = 64
	}
	a := arena.New[LObj]()
	q := &LeakQueue{a: a, nthr: threads, state: make([]atomic.Uint64, threads)}
	sh, sn := a.Alloc()
	sn.enqTid = -1
	sn.deqTid.Store(-1)
	q.head.Store(uint64(sh))
	q.tail.Store(uint64(sh))
	for i := range q.state {
		dh, dn := a.Alloc()
		dn.phase, dn.pending, dn.enqueue = -1, false, true
		q.state[i].Store(uint64(dh))
	}
	return q
}

// Arena exposes the arena (leak accounting).
func (q *LeakQueue) Arena() *arena.Arena[LObj] { return q.a }

func (q *LeakQueue) get(h arena.Handle) *LObj { return q.a.Get(h) }

func (q *LeakQueue) maxPhase() int64 {
	maxP := int64(-1)
	for i := range q.state {
		if ph := q.get(arena.Handle(q.state[i].Load())).phase; ph > maxP {
			maxP = ph
		}
	}
	return maxP
}

func (q *LeakQueue) isStillPending(i int, phase int64) bool {
	d := q.get(arena.Handle(q.state[i].Load()))
	return d.pending && d.phase <= phase
}

func (q *LeakQueue) help(tid int, phase int64) {
	for i := 0; i < q.nthr; i++ {
		d := q.get(arena.Handle(q.state[i].Load()))
		if d.pending && d.phase <= phase {
			if d.enqueue {
				q.helpEnq(tid, i, phase)
			} else {
				q.helpDeq(tid, i, phase)
			}
		}
	}
}

// Enqueue appends item.
func (q *LeakQueue) Enqueue(tid int, item uint64) {
	phase := q.maxPhase() + 1
	nh, n := q.a.AllocT(tid)
	n.value, n.enqTid = item, int32(tid)
	n.deqTid.Store(-1)
	dh, dn := q.a.AllocT(tid)
	dn.phase, dn.pending, dn.enqueue = phase, true, true
	dn.node.Store(uint64(nh))
	q.state[tid].Store(uint64(dh))
	q.help(tid, phase)
	q.helpFinishEnq(tid)
}

func (q *LeakQueue) helpEnq(tid, i int, phase int64) {
	for q.isStillPending(i, phase) {
		last := arena.Handle(q.tail.Load())
		next := arena.Handle(q.get(last).next.Load())
		if arena.Handle(q.tail.Load()) != last {
			continue
		}
		if next.IsNil() {
			if q.isStillPending(i, phase) {
				node := arena.Handle(q.get(arena.Handle(q.state[i].Load())).node.Load())
				if !node.IsNil() && q.get(last).next.CompareAndSwap(0, uint64(node)) {
					q.helpFinishEnq(tid)
					return
				}
			}
		} else {
			q.helpFinishEnq(tid)
		}
	}
}

func (q *LeakQueue) helpFinishEnq(tid int) {
	last := arena.Handle(q.tail.Load())
	next := arena.Handle(q.get(last).next.Load())
	if next.IsNil() {
		return
	}
	en := int(q.get(next).enqTid)
	if en >= 0 && en < q.nthr {
		curDesc := arena.Handle(q.state[en].Load())
		if arena.Handle(q.tail.Load()) == last && arena.Handle(q.get(curDesc).node.Load()) == next {
			dh, dn := q.a.AllocT(tid)
			dn.phase, dn.pending, dn.enqueue = q.get(curDesc).phase, false, true
			dn.node.Store(uint64(next))
			q.state[en].CompareAndSwap(uint64(curDesc), uint64(dh))
		}
	}
	q.tail.CompareAndSwap(uint64(last), uint64(next))
}

// Dequeue removes the oldest item; ok=false when empty.
func (q *LeakQueue) Dequeue(tid int) (uint64, bool) {
	phase := q.maxPhase() + 1
	dh, dn := q.a.AllocT(tid)
	dn.phase, dn.pending, dn.enqueue = phase, true, false
	q.state[tid].Store(uint64(dh))
	q.help(tid, phase)
	q.helpFinishDeq(tid)

	desc := q.get(arena.Handle(q.state[tid].Load()))
	node := arena.Handle(desc.node.Load())
	if node.IsNil() {
		return 0, false
	}
	next := arena.Handle(q.get(node).next.Load())
	return q.get(next).value, true
}

func (q *LeakQueue) helpDeq(tid, i int, phase int64) {
	for q.isStillPending(i, phase) {
		first := arena.Handle(q.head.Load())
		last := arena.Handle(q.tail.Load())
		next := arena.Handle(q.get(first).next.Load())
		if arena.Handle(q.head.Load()) != first {
			continue
		}
		if first == last {
			if next.IsNil() {
				curDesc := arena.Handle(q.state[i].Load())
				if arena.Handle(q.tail.Load()) == last && q.isStillPending(i, phase) {
					nh, nd := q.a.AllocT(tid)
					nd.phase, nd.pending, nd.enqueue = q.get(curDesc).phase, false, false
					q.state[i].CompareAndSwap(uint64(curDesc), uint64(nh))
				}
			} else {
				q.helpFinishEnq(tid)
			}
			continue
		}
		curDesc := arena.Handle(q.state[i].Load())
		node := arena.Handle(q.get(curDesc).node.Load())
		if !q.isStillPending(i, phase) {
			break
		}
		if arena.Handle(q.head.Load()) == first && node != first {
			nh, nd := q.a.AllocT(tid)
			nd.phase, nd.pending, nd.enqueue = q.get(curDesc).phase, true, false
			nd.node.Store(uint64(first))
			if !q.state[i].CompareAndSwap(uint64(curDesc), uint64(nh)) {
				continue
			}
		}
		q.get(first).deqTid.CompareAndSwap(-1, int32(i))
		q.helpFinishDeq(tid)
	}
}

func (q *LeakQueue) helpFinishDeq(tid int) {
	first := arena.Handle(q.head.Load())
	next := arena.Handle(q.get(first).next.Load())
	dq := int(q.get(first).deqTid.Load())
	if dq < 0 || dq >= q.nthr {
		return
	}
	curDesc := arena.Handle(q.state[dq].Load())
	if arena.Handle(q.head.Load()) == first && !next.IsNil() {
		nh, nd := q.a.AllocT(tid)
		nd.phase, nd.pending, nd.enqueue = q.get(curDesc).phase, false, false
		nd.node.Store(q.get(curDesc).node.Load())
		q.state[dq].CompareAndSwap(uint64(curDesc), uint64(nh))
		q.head.CompareAndSwap(uint64(first), uint64(next))
	}
}
