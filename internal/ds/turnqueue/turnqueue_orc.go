// Package turnqueue reproduces the Correia–Ramalhete "Turn queue" [26]:
// a wait-free MPMC queue in which pending operations are completed in
// *turn* order — helpers scan the per-thread request arrays round-robin
// from the thread that performed the previous operation, so every
// request is reached within a bounded number of queue steps.
//
// The published artifact is a poster plus source; this reproduction
// keeps the structure that matters for the paper's experiments (per-
// thread request slots, deterministic turn arbitration, helping on both
// enqueue and dequeue, node-side consumer arbitration) and documents in
// DESIGN.md that the dequeue completion protocol is a simplification:
// item↔dequeuer matching is arbitrated on the node's request link with
// reassignment, giving lock-free progress with round-robin fairness
// rather than the original's strict wait-freedom.
package turnqueue

import (
	"repro/internal/arena"
	"repro/internal/core"
)

// consumed is the reqLink tombstone installed when the node's item has
// been delivered and the head has moved past it: a nil reference (so it
// keeps no hard link — OrcGC needs unreachable objects acyclic) whose
// mark bit distinguishes it from the armed-empty state. Plain nil means
// "no dequeuer chosen yet" and may be CASed to a request; the tombstone
// is terminal. Without it, a helper still arbitrating on an already-
// consumed node would observe the broken cycle as plain nil, re-arm the
// link with a fresh request, and deliver the node a second time — the
// surplus-dequeue race TestConcurrentConservation used to trip under
// the race detector.
var consumed = arena.Nil.WithMark()

// Obj is a queue node or a dequeue request.
type Obj struct {
	item    uint64
	owner   int32       // creator (enqueuer tid / request owner)
	next    core.Atomic // node: successor
	reqLink core.Atomic // node: the request consuming this node
	result  core.Atomic // request: delivered node, or the empty marker
}

func objLinks(o *Obj, visit func(*core.Atomic)) {
	visit(&o.next)
	visit(&o.reqLink)
	visit(&o.result)
}

// OrcQueue is the turn queue under OrcGC.
type OrcQueue struct {
	d         *core.Domain[Obj]
	nthr      int
	head      core.Atomic
	tail      core.Atomic
	emptyRoot core.Atomic   // permanent root link for the empty marker
	emptyH    arena.Handle  // "queue was empty" verdict marker
	enqs      []core.Atomic // pending enqueue nodes, one slot per thread
	deqs      []core.Atomic // pending dequeue requests, one slot per thread
}

// NewOrc builds an empty queue.
func NewOrc(tid int, cfg core.DomainConfig) *OrcQueue {
	a := arena.New[Obj]()
	d := core.NewDomain(a, objLinks, cfg)
	q := &OrcQueue{d: d, nthr: cfg.MaxThreads}
	if q.nthr <= 0 {
		q.nthr = 64
	}
	q.enqs = make([]core.Atomic, q.nthr)
	q.deqs = make([]core.Atomic, q.nthr)

	var p core.Ptr
	d.Make(tid, func(o *Obj) { o.owner = -1 }, &p) // sentinel
	d.Store(tid, &q.head, p.H())
	d.Store(tid, &q.tail, p.H())
	d.Release(tid, &p)
	d.Make(tid, func(o *Obj) { o.owner = -1 }, &p) // empty marker
	d.Store(tid, &q.emptyRoot, p.H())
	q.emptyH = p.H()
	d.Release(tid, &p)
	return q
}

// Domain exposes the OrcGC domain.
func (q *OrcQueue) Domain() *core.Domain[Obj] { return q.d }

// Enqueue publishes the node as this thread's request and helps the
// queue forward until some thread (possibly this one) links it. The node
// to link after the current tail is chosen deterministically: the first
// pending slot scanning cyclically from the tail node's owner + 1 — the
// "turn".
func (q *OrcQueue) Enqueue(tid int, item uint64) {
	d := q.d
	var node, ltail, lnext, cand core.Ptr
	defer func() {
		d.Release(tid, &node)
		d.Release(tid, &ltail)
		d.Release(tid, &lnext)
		d.Release(tid, &cand)
	}()
	d.Make(tid, func(o *Obj) {
		o.item = item
		o.owner = int32(tid)
	}, &node)
	d.Store(tid, &q.enqs[tid], node.H())

	for q.enqs[tid].Raw() == node.H() {
		th := d.Load(tid, &q.tail, &ltail)
		tn := d.Get(th)
		nh := d.Load(tid, &tn.next, &lnext)
		if !nh.IsNil() {
			// Complete the in-flight link: clear its request slot
			// first, then swing the tail.
			ow := d.Get(nh).owner
			if ow >= 0 && int(ow) < q.nthr {
				d.CAS(tid, &q.enqs[ow], nh, arena.Nil)
			}
			d.CAS(tid, &q.tail, th, nh)
			continue
		}
		// Whose turn? First pending slot from tail-owner+1, cyclically.
		start := int(tn.owner) + 1
		linked := false
		for j := 0; j < q.nthr; j++ {
			i := (start + j) % q.nthr
			if q.enqs[i].Raw().IsNil() {
				continue
			}
			rh := d.Load(tid, &q.enqs[i], &cand)
			if rh.IsNil() {
				continue
			}
			d.CAS(tid, &tn.next, arena.Nil, rh)
			linked = true
			break
		}
		if !linked {
			break // no pending requests at all (ours must be done)
		}
	}
}

// Dequeue removes the oldest item; ok=false when the queue was observed
// empty. Completion is helper-driven: a request finishes either with a
// node or with the empty marker — it is never withdrawn, so no item can
// be delivered into a vanished request.
func (q *OrcQueue) Dequeue(tid int) (uint64, bool) {
	d := q.d
	var req, res core.Ptr
	defer func() {
		d.Release(tid, &req)
		d.Release(tid, &res)
	}()
	d.Make(tid, func(o *Obj) { o.owner = int32(tid) }, &req)
	d.Store(tid, &q.deqs[tid], req.H())

	for {
		if rh := d.Load(tid, &d.Get(req.H()).result, &res); !rh.IsNil() {
			d.CAS(tid, &q.deqs[tid], req.H(), arena.Nil) // vacate the slot
			if rh.Unmarked() == q.emptyH.Unmarked() {
				return 0, false
			}
			return d.Get(rh).item, true
		}
		q.serve(tid)
	}
}

// serve performs one helping step of the dequeue protocol.
func (q *OrcQueue) serve(tid int) {
	d := q.d
	var lhead, lnext, r, cand core.Ptr
	defer func() {
		d.Release(tid, &lhead)
		d.Release(tid, &lnext)
		d.Release(tid, &r)
		d.Release(tid, &cand)
	}()
	hh := d.Load(tid, &q.head, &lhead)
	hn := d.Get(hh)
	nh := d.Load(tid, &hn.next, &lnext)
	if q.head.Raw() != hh {
		return
	}
	if nh.IsNil() {
		// Empty: deliver the verdict to every request that is pending
		// while emptiness still holds (re-validated per request so the
		// verdict lands inside each request's own interval).
		for i := 0; i < q.nthr; i++ {
			if q.deqs[i].Raw().IsNil() {
				continue
			}
			rh := d.Load(tid, &q.deqs[i], &r)
			if rh.IsNil() {
				continue
			}
			if q.head.Raw() != hh || !hn.next.Raw().IsNil() {
				return // emptiness no longer holds
			}
			d.CAS(tid, &d.Get(rh).result, arena.Nil, q.emptyH)
		}
		return
	}
	// An item is available: arbitrate on the node's request link.
	node := d.Get(nh)
	for {
		cur := d.Load(tid, &node.reqLink, &r)
		if cur == consumed {
			return // node already delivered; we are a stale helper
		}
		if cur.IsNil() {
			// Choose the next dequeuer in turn order: scan from the
			// previous consumer's owner + 1.
			start := 0
			if pl := hn.reqLink.Raw(); !pl.IsNil() {
				if prevReq, ok := d.Arena().TryGet(pl); ok {
					start = int(prevReq.owner) + 1
				}
			}
			chosen := false
			for j := 0; j < q.nthr; j++ {
				i := (start + j) % q.nthr
				if q.deqs[i].Raw().IsNil() {
					continue
				}
				ch := d.Load(tid, &q.deqs[i], &cand)
				if ch.IsNil() || !d.Get(ch).result.Raw().IsNil() {
					continue
				}
				d.CAS(tid, &node.reqLink, arena.Nil, ch)
				chosen = true
				break
			}
			if !chosen {
				return // no pending dequeuers (we must have been served)
			}
			continue
		}
		reqObj := d.Get(cur)
		resH := reqObj.result.Raw()
		switch {
		case resH.IsNil():
			d.CAS(tid, &reqObj.result, arena.Nil, nh)
		case resH.Unmarked() == nh.Unmarked():
			// Delivered: vacate the winner's slot and advance head.
			ow := int(reqObj.owner)
			if ow >= 0 && ow < q.nthr {
				d.CAS(tid, &q.deqs[ow], cur, arena.Nil)
			}
			d.CAS(tid, &q.head, hh, nh)
			// OrcGC needs unreachable objects acyclic, but a consumed
			// node and its request reference each other (reqLink vs
			// result). Once head has moved past hh its reqLink is no
			// longer the turn anchor: break the cycle there. The link is
			// replaced with the consumed tombstone, never plain nil —
			// plain nil would read as "no dequeuer chosen" to a stale
			// helper, which could then re-arm the link and deliver hh's
			// item a second time.
			if pl := hn.reqLink.Raw(); !pl.IsNil() {
				d.CAS(tid, &hn.reqLink, pl, consumed)
			}
			return
		default:
			// The linked request completed with something else (e.g.
			// an empty verdict raced in): pass the turn along.
			next := int(reqObj.owner) + 1
			reassigned := false
			for j := 0; j < q.nthr; j++ {
				i := (next + j) % q.nthr
				if q.deqs[i].Raw().IsNil() {
					continue
				}
				ch := d.Load(tid, &q.deqs[i], &cand)
				if ch.IsNil() || ch == cur || !d.Get(ch).result.Raw().IsNil() {
					continue
				}
				d.CAS(tid, &node.reqLink, cur, ch)
				reassigned = true
				break
			}
			if !reassigned {
				return
			}
		}
	}
}

// Drain empties the queue and drops every root; quiescent use only.
func (q *OrcQueue) Drain(tid int) {
	for {
		if _, ok := q.Dequeue(tid); !ok {
			break
		}
	}
	d := q.d
	for i := range q.enqs {
		d.Store(tid, &q.enqs[i], arena.Nil)
		d.Store(tid, &q.deqs[i], arena.Nil)
	}
	// The final head still cycles with the request that consumed it;
	// break that last cycle before dropping the root.
	var hp core.Ptr
	if hh := d.Load(tid, &q.head, &hp); !hh.IsNil() {
		hn := d.Get(hh)
		if pl := hn.reqLink.Raw(); !pl.IsNil() {
			d.CAS(tid, &hn.reqLink, pl, consumed)
		}
	}
	d.Release(tid, &hp)
	d.Store(tid, &q.head, arena.Nil)
	d.Store(tid, &q.tail, arena.Nil)
	d.Store(tid, &q.emptyRoot, arena.Nil)
	d.FlushAll()
}
