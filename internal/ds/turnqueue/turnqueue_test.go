package turnqueue

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestSequentialFIFO(t *testing.T) {
	q := NewOrc(0, core.DomainConfig{MaxThreads: 4})
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("fresh queue not empty")
	}
	for i := uint64(1); i <= 300; i++ {
		q.Enqueue(0, i)
	}
	for i := uint64(1); i <= 300; i++ {
		v, ok := q.Dequeue(0)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue should be empty")
	}
}

func TestAlternating(t *testing.T) {
	q := NewOrc(0, core.DomainConfig{MaxThreads: 4})
	for round := uint64(1); round <= 1000; round++ {
		q.Enqueue(0, round)
		v, ok := q.Dequeue(1)
		if !ok || v != round {
			t.Fatalf("round %d: got %d ok=%v", round, v, ok)
		}
	}
}

func TestConcurrentConservation(t *testing.T) {
	const workers = 6
	const per = 3000
	q := NewOrc(0, core.DomainConfig{MaxThreads: workers + 1})
	var mu sync.Mutex
	var sumIn, sumOut uint64
	var cnt int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var in, out uint64
			var c int
			for i := 0; i < per; i++ {
				v := uint64(tid*per + i + 1)
				q.Enqueue(tid, v)
				in += v
				if got, ok := q.Dequeue(tid); ok {
					out += got
					c++
				}
			}
			mu.Lock()
			sumIn += in
			sumOut += out
			cnt += c
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		sumOut += v
		cnt++
	}
	if cnt != workers*per {
		t.Fatalf("count %d want %d", cnt, workers*per)
	}
	if sumIn != sumOut {
		t.Fatalf("sum in=%d out=%d", sumIn, sumOut)
	}
}

func TestConcurrentEnqueueOnly(t *testing.T) {
	const workers = 8
	const per = 3000
	q := NewOrc(0, core.DomainConfig{MaxThreads: workers + 1})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(tid, uint64(tid)<<32|uint64(i))
			}
		}(w)
	}
	wg.Wait()
	last := map[uint64]int64{}
	n := 0
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		n++
		p, seq := v>>32, int64(v&0xffffffff)
		if prev, seen := last[p]; seen && seq <= prev {
			t.Fatalf("producer %d out of order: %d after %d", p, seq, prev)
		}
		last[p] = seq
	}
	if n != workers*per {
		t.Fatalf("drained %d want %d", n, workers*per)
	}
}

func TestOrcReclaims(t *testing.T) {
	q := NewOrc(0, core.DomainConfig{MaxThreads: 3})
	for i := uint64(1); i <= 500; i++ {
		q.Enqueue(0, i)
	}
	for i := uint64(1); i <= 500; i++ {
		q.Dequeue(1)
	}
	q.Drain(0)
	if live := q.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("turn queue leaked %d objects", live)
	}
}
