package turnqueue

import (
	"sync/atomic"

	"repro/internal/arena"
)

//orcvet:file-ignore protect no-reclamation baseline: every node leaks, so a raw load can never dangle

// LObj mirrors Obj with plain handle links for the no-reclamation
// baseline.
type LObj struct {
	item    uint64
	owner   int32
	next    atomic.Uint64
	reqLink atomic.Uint64
	result  atomic.Uint64
}

// LeakQueue is the turn queue without reclamation.
type LeakQueue struct {
	a      *arena.Arena[LObj]
	nthr   int
	head   atomic.Uint64
	tail   atomic.Uint64
	emptyH arena.Handle
	enqs   []atomic.Uint64
	deqs   []atomic.Uint64
}

// NewLeak builds an empty leaking turn queue.
func NewLeak(threads int) *LeakQueue {
	if threads <= 0 {
		threads = 64
	}
	a := arena.New[LObj]()
	q := &LeakQueue{a: a, nthr: threads}
	q.enqs = make([]atomic.Uint64, threads)
	q.deqs = make([]atomic.Uint64, threads)
	sh, sn := a.Alloc()
	sn.owner = -1
	q.head.Store(uint64(sh))
	q.tail.Store(uint64(sh))
	eh, en := a.Alloc()
	en.owner = -1
	q.emptyH = eh
	return q
}

// Arena exposes the arena (leak accounting).
func (q *LeakQueue) Arena() *arena.Arena[LObj] { return q.a }

// Enqueue appends item.
func (q *LeakQueue) Enqueue(tid int, item uint64) {
	a := q.a
	nh, n := a.AllocT(tid)
	n.item, n.owner = item, int32(tid)
	q.enqs[tid].Store(uint64(nh))

	for arena.Handle(q.enqs[tid].Load()) == nh {
		th := arena.Handle(q.tail.Load())
		tn := a.Get(th)
		next := arena.Handle(tn.next.Load())
		if !next.IsNil() {
			ow := a.Get(next).owner
			if ow >= 0 && int(ow) < q.nthr {
				q.enqs[ow].CompareAndSwap(uint64(next), 0)
			}
			q.tail.CompareAndSwap(uint64(th), uint64(next))
			continue
		}
		start := int(tn.owner) + 1
		linked := false
		for j := 0; j < q.nthr; j++ {
			i := (start + j) % q.nthr
			rh := arena.Handle(q.enqs[i].Load())
			if rh.IsNil() {
				continue
			}
			tn.next.CompareAndSwap(0, uint64(rh))
			linked = true
			break
		}
		if !linked {
			break
		}
	}
}

// Dequeue removes the oldest item; ok=false when empty.
func (q *LeakQueue) Dequeue(tid int) (uint64, bool) {
	a := q.a
	rh, _ := a.AllocT(tid)
	a.Get(rh).owner = int32(tid)
	q.deqs[tid].Store(uint64(rh))
	for {
		res := arena.Handle(a.Get(rh).result.Load())
		if !res.IsNil() {
			q.deqs[tid].CompareAndSwap(uint64(rh), 0)
			if res == q.emptyH {
				return 0, false
			}
			return a.Get(res).item, true
		}
		q.serve()
	}
}

func (q *LeakQueue) serve() {
	a := q.a
	hh := arena.Handle(q.head.Load())
	hn := a.Get(hh)
	nh := arena.Handle(hn.next.Load())
	if arena.Handle(q.head.Load()) != hh {
		return
	}
	if nh.IsNil() {
		for i := 0; i < q.nthr; i++ {
			rh := arena.Handle(q.deqs[i].Load())
			if rh.IsNil() {
				continue
			}
			if arena.Handle(q.head.Load()) != hh || hn.next.Load() != 0 {
				return
			}
			a.Get(rh).result.CompareAndSwap(0, uint64(q.emptyH))
		}
		return
	}
	node := a.Get(nh)
	for {
		cur := arena.Handle(node.reqLink.Load())
		if cur.IsNil() {
			start := 0
			if pl := arena.Handle(hn.reqLink.Load()); !pl.IsNil() {
				start = int(a.Get(pl).owner) + 1
			}
			chosen := false
			for j := 0; j < q.nthr; j++ {
				i := (start + j) % q.nthr
				ch := arena.Handle(q.deqs[i].Load())
				if ch.IsNil() || a.Get(ch).result.Load() != 0 {
					continue
				}
				node.reqLink.CompareAndSwap(0, uint64(ch))
				chosen = true
				break
			}
			if !chosen {
				return
			}
			continue
		}
		reqObj := a.Get(cur)
		res := arena.Handle(reqObj.result.Load())
		switch {
		case res.IsNil():
			reqObj.result.CompareAndSwap(0, uint64(nh))
		case res == nh:
			ow := int(reqObj.owner)
			if ow >= 0 && ow < q.nthr {
				q.deqs[ow].CompareAndSwap(uint64(cur), 0)
			}
			q.head.CompareAndSwap(uint64(hh), uint64(nh))
			return
		default:
			next := int(reqObj.owner) + 1
			reassigned := false
			for j := 0; j < q.nthr; j++ {
				i := (next + j) % q.nthr
				ch := arena.Handle(q.deqs[i].Load())
				if ch.IsNil() || ch == cur || a.Get(ch).result.Load() != 0 {
					continue
				}
				node.reqLink.CompareAndSwap(uint64(cur), uint64(ch))
				reassigned = true
				break
			}
			if !reassigned {
				return
			}
		}
	}
}
