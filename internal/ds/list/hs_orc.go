package list

import (
	"repro/internal/core"
)

// HSOrc is the Herlihy–Shavit list [15]: Harris-style insert/remove, but
// Contains never restarts — it walks straight through marked nodes and
// reports the key's presence from the node's own mark. The wait-free
// lookup requires removed nodes to keep valid successor links while any
// reader can still see them, which rules out most manual reclamation
// schemes (the paper's second obstacle); OrcGC keeps every node alive
// exactly as long as it is locally referenced.
type HSOrc struct {
	MichaelOrc
}

// NewHSOrc builds an empty OrcGC Herlihy–Shavit list.
func NewHSOrc(tid int, cfg core.DomainConfig) *HSOrc {
	l := &HSOrc{}
	initOrcListBase(&l.orcListBase, tid, cfg)
	return l
}

// Contains walks the list without ever helping or restarting: wait-free.
func (l *HSOrc) Contains(tid int, key uint64) bool {
	d := l.d
	var cur, next core.Ptr
	defer func() {
		d.Release(tid, &cur)
		d.Release(tid, &next)
	}()
	d.Load(tid, &l.head, &cur)
	for {
		curN := d.Get(cur.H())
		if curN.key >= key {
			return curN.key == key && !curN.next.Raw().Marked()
		}
		d.Load(tid, &curN.next, &next)
		d.CopyPtr(tid, &cur, &next)
		cur.Unmark()
	}
}
