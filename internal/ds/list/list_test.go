package list

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
)

// makeSets builds one of every list variant for table-driven tests.
func makeSets(tb testing.TB, threads int) map[string]Set {
	tb.Helper()
	sets := map[string]Set{
		"michael-orc": NewMichaelOrc(0, core.DomainConfig{MaxThreads: threads}),
		"harris-orc":  NewHarrisOrc(0, core.DomainConfig{MaxThreads: threads}),
		"hs-orc":      NewHSOrc(0, core.DomainConfig{MaxThreads: threads}),
	}
	for _, scheme := range []string{"none", "hp", "ptb", "ptp", "ebr", "he", "ibr"} {
		sets["manual-"+scheme] = NewManual(scheme, reclaim.Options{MaxThreads: threads})
	}
	return sets
}

func TestSequentialSemantics(t *testing.T) {
	for name, s := range makeSets(t, 2) {
		t.Run(name, func(t *testing.T) {
			if s.Contains(0, 5) {
				t.Fatal("empty list contains 5")
			}
			if !s.Insert(0, 5) {
				t.Fatal("insert 5 failed")
			}
			if s.Insert(0, 5) {
				t.Fatal("duplicate insert succeeded")
			}
			if !s.Contains(0, 5) {
				t.Fatal("5 missing after insert")
			}
			if !s.Insert(0, 3) || !s.Insert(0, 8) {
				t.Fatal("inserts failed")
			}
			if !s.Remove(0, 5) {
				t.Fatal("remove 5 failed")
			}
			if s.Remove(0, 5) {
				t.Fatal("double remove succeeded")
			}
			if s.Contains(0, 5) {
				t.Fatal("5 present after remove")
			}
			if !s.Contains(0, 3) || !s.Contains(0, 8) {
				t.Fatal("neighbours lost")
			}
		})
	}
}

func TestAgainstModel(t *testing.T) {
	for name, s := range makeSets(t, 2) {
		t.Run(name, func(t *testing.T) {
			model := map[uint64]bool{}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 20_000; i++ {
				k := uint64(rng.Intn(200)) + 1
				switch rng.Intn(3) {
				case 0:
					if s.Insert(0, k) != !model[k] {
						t.Fatalf("insert(%d) disagreed with model at step %d", k, i)
					}
					model[k] = true
				case 1:
					if s.Remove(0, k) != model[k] {
						t.Fatalf("remove(%d) disagreed with model at step %d", k, i)
					}
					model[k] = false
				case 2:
					if s.Contains(0, k) != model[k] {
						t.Fatalf("contains(%d) disagreed with model at step %d", k, i)
					}
				}
			}
		})
	}
}

func TestSortedOrderMaintained(t *testing.T) {
	l := NewManual("hp", reclaim.Options{MaxThreads: 2})
	for _, k := range []uint64{50, 10, 30, 20, 40} {
		l.Insert(0, k)
	}
	if n := l.Size(); n != 5 {
		t.Fatalf("size %d want 5", n)
	}
	l.Remove(0, 30)
	if n := l.Size(); n != 4 {
		t.Fatalf("size %d want 4", n)
	}
}

// TestConcurrentDisjointKeys: threads own disjoint key ranges; all their
// operations must behave as in isolation.
func TestConcurrentDisjointKeys(t *testing.T) {
	for name, s := range makeSets(t, 9) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			const span = 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid*span) + 1
					for round := 0; round < 30; round++ {
						for k := base; k < base+span; k++ {
							if !s.Insert(tid, k) {
								panic("insert of owned key failed")
							}
						}
						for k := base; k < base+span; k++ {
							if !s.Contains(tid, k) {
								panic("owned key missing")
							}
						}
						for k := base; k < base+span; k++ {
							if !s.Remove(tid, k) {
								panic("remove of owned key failed")
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestConcurrentSharedKeys hammers a small shared keyspace: checks for
// UAF (strict arena) and that the final state is a valid set.
func TestConcurrentSharedKeys(t *testing.T) {
	for name, s := range makeSets(t, 9) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid)*2654435761 + 7
					for i := 0; i < 10_000; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						k := rng%64 + 1
						switch rng % 3 {
						case 0:
							s.Insert(tid, k)
						case 1:
							s.Remove(tid, k)
						default:
							s.Contains(tid, k)
						}
					}
				}(w)
			}
			wg.Wait()
			// Settle to a consistent final state: remove everything.
			for k := uint64(1); k <= 64; k++ {
				s.Remove(0, k)
				if s.Contains(0, k) {
					t.Fatalf("key %d present after removal", k)
				}
			}
		})
	}
}

// TestOrcListNoLeak: inserting and removing everything must reclaim all
// nodes once the roots are dropped.
func TestOrcListNoLeak(t *testing.T) {
	variants := map[string]interface {
		Set
		Domain() *core.Domain[ONode]
		Destroy(int)
	}{
		"michael-orc": NewMichaelOrc(0, core.DomainConfig{MaxThreads: 2}),
		"harris-orc":  NewHarrisOrc(0, core.DomainConfig{MaxThreads: 2}),
		"hs-orc":      NewHSOrc(0, core.DomainConfig{MaxThreads: 2}),
	}
	for name, l := range variants {
		t.Run(name, func(t *testing.T) {
			for k := uint64(1); k <= 500; k++ {
				l.Insert(0, k)
			}
			for k := uint64(1); k <= 500; k++ {
				l.Remove(0, k)
			}
			l.Destroy(0)
			if live := l.Domain().Arena().Stats().Live; live != 0 {
				t.Fatalf("%s leaked %d nodes", name, live)
			}
		})
	}
}

// TestManualListReclaims: every real scheme must free nodes under churn.
func TestManualListReclaims(t *testing.T) {
	for _, scheme := range []string{"hp", "ptb", "ptp", "ebr", "he", "ibr"} {
		t.Run(scheme, func(t *testing.T) {
			l := NewManual(scheme, reclaim.Options{MaxThreads: 2})
			for round := 0; round < 10; round++ {
				for k := uint64(1); k <= 300; k++ {
					l.Insert(0, k)
				}
				for k := uint64(1); k <= 300; k++ {
					l.Remove(0, k)
				}
			}
			l.Scheme().Flush(0)
			st := l.Scheme().Stats()
			if st.Freed == 0 {
				t.Fatalf("%s freed nothing", scheme)
			}
		})
	}
}

// TestHarrisChainCollapse: remove a long run of adjacent keys while a
// reader idles on the first of them — exercises the bulk-unlink path
// that defeats manual schemes.
func TestHarrisChainCollapse(t *testing.T) {
	l := NewHarrisOrc(0, core.DomainConfig{MaxThreads: 4})
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		l.Insert(0, k)
	}
	// Mark every node logically deleted without physical unlink by
	// removing from the back: each Remove's unlink CAS succeeds, so
	// instead remove front-to-back which leaves singleton unlinks...
	// The bulk path triggers naturally under concurrency; here we force
	// chains by removing even keys then odd keys and re-searching.
	for k := uint64(2); k <= n; k += 2 {
		l.Remove(0, k)
	}
	for k := uint64(1); k <= n; k += 2 {
		l.Remove(0, k)
	}
	for k := uint64(1); k <= n; k++ {
		if l.Contains(0, k) {
			t.Fatalf("key %d survived removal", k)
		}
	}
	l.Destroy(0)
	if live := l.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("chain collapse leaked %d nodes", live)
	}
}

// TestHSWaitFreeContainsSeesThroughMarks: a key whose node is marked but
// not yet unlinked must read as absent, and unmarked neighbours as
// present, via the non-restarting traversal.
func TestHSWaitFreeContains(t *testing.T) {
	l := NewHSOrc(0, core.DomainConfig{MaxThreads: 2})
	for k := uint64(1); k <= 10; k++ {
		l.Insert(0, k)
	}
	l.Remove(0, 5)
	if l.Contains(0, 5) {
		t.Fatal("removed key still visible")
	}
	for k := uint64(1); k <= 10; k++ {
		if k == 5 {
			continue
		}
		if !l.Contains(0, k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

// TestInsertRemoveInterleaved: same key repeatedly cycled by two
// goroutines; invariant: alternating success/failure is internally
// consistent (no double-success on the same transition).
func TestInsertRemoveInterleaved(t *testing.T) {
	for name, s := range makeSets(t, 3) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var inserts, removes int64
			var wg sync.WaitGroup
			var mu sync.Mutex
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < 5000; i++ {
						if s.Insert(tid, 1) {
							mu.Lock()
							inserts++
							mu.Unlock()
						}
						if s.Remove(tid, 1) {
							mu.Lock()
							removes++
							mu.Unlock()
						}
					}
				}(w)
			}
			wg.Wait()
			present := s.Contains(0, 1)
			diff := inserts - removes
			if present && diff != 1 || !present && diff != 0 {
				t.Fatalf("inserts=%d removes=%d present=%v", inserts, removes, present)
			}
		})
	}
}
