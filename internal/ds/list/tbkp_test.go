package list

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestTBKPSequential(t *testing.T) {
	l := NewTBKPOrc(0, core.DomainConfig{MaxThreads: 4})
	if l.Contains(0, 5) {
		t.Fatal("empty list contains 5")
	}
	if !l.Insert(0, 5) || l.Insert(0, 5) {
		t.Fatal("insert semantics")
	}
	if !l.Insert(0, 2) || !l.Insert(0, 9) {
		t.Fatal("inserts failed")
	}
	if !l.Remove(0, 5) {
		t.Fatal("remove failed")
	}
	if l.Remove(0, 5) {
		t.Fatal("double remove succeeded")
	}
	if l.Contains(0, 5) || !l.Contains(0, 2) || !l.Contains(0, 9) {
		t.Fatal("membership wrong after remove")
	}
}

func TestTBKPAgainstModel(t *testing.T) {
	l := NewTBKPOrc(0, core.DomainConfig{MaxThreads: 2})
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20_000; i++ {
		k := uint64(rng.Intn(150)) + 1
		switch rng.Intn(3) {
		case 0:
			if l.Insert(0, k) != !model[k] {
				t.Fatalf("insert(%d) vs model at %d", k, i)
			}
			model[k] = true
		case 1:
			if l.Remove(0, k) != model[k] {
				t.Fatalf("remove(%d) vs model at %d", k, i)
			}
			model[k] = false
		default:
			if l.Contains(0, k) != model[k] {
				t.Fatalf("contains(%d) vs model at %d", k, i)
			}
		}
	}
}

// TestTBKPConcurrentRemovalRace: many threads remove the same keys; each
// key's removal must succeed exactly once (the claim arbitration).
func TestTBKPConcurrentRemovalRace(t *testing.T) {
	const workers = 8
	const keys = 500
	l := NewTBKPOrc(0, core.DomainConfig{MaxThreads: workers + 1})
	for k := uint64(1); k <= keys; k++ {
		l.Insert(0, k)
	}
	var successes [keys + 1]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for k := uint64(1); k <= keys; k++ {
				if l.Remove(tid, k) {
					mu.Lock()
					successes[k]++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	for k := 1; k <= keys; k++ {
		if successes[k] != 1 {
			t.Fatalf("key %d removed %d times", k, successes[k])
		}
		if l.Contains(0, uint64(k)) {
			t.Fatalf("key %d still present", k)
		}
	}
}

func TestTBKPConcurrentMixed(t *testing.T) {
	const workers = 8
	l := NewTBKPOrc(0, core.DomainConfig{MaxThreads: workers + 1})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := uint64(tid)*31337 + 5
			for i := 0; i < 5000; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng%64 + 1
				switch rng % 3 {
				case 0:
					l.Insert(tid, k)
				case 1:
					l.Remove(tid, k)
				default:
					l.Contains(tid, k)
				}
			}
		}(w)
	}
	wg.Wait()
	for k := uint64(1); k <= 64; k++ {
		l.Remove(0, k)
		if l.Contains(0, k) {
			t.Fatalf("key %d survived removal", k)
		}
	}
}

// TestTBKPNoLeak: descriptors and nodes all reclaimed at teardown.
func TestTBKPNoLeak(t *testing.T) {
	l := NewTBKPOrc(0, core.DomainConfig{MaxThreads: 2})
	for round := 0; round < 5; round++ {
		for k := uint64(1); k <= 200; k++ {
			l.Insert(0, k)
		}
		for k := uint64(1); k <= 200; k++ {
			if !l.Remove(0, k) {
				t.Fatalf("remove %d failed", k)
			}
		}
	}
	l.Destroy(0)
	if live := l.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("TBKP leaked %d objects", live)
	}
}
