package list

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
)

// WObj is either a list node or an operation descriptor of the TBKP-
// style wait-free list. Keeping both in one arena type lets descriptor→
// node and node→descriptor hard links live inside a single OrcGC domain.
type WObj struct {
	key   uint64
	next  core.Atomic // node: successor (Harris mark bit in the handle)
	claim core.Atomic // node: the remove descriptor that claimed it
	// descriptor fields (immutable after publication, except outcome)
	phase   int64
	op      int32 // 0 idle, 1 remove
	outcome atomic.Int32
	node    core.Atomic // removal: the bound victim (CAS-once candidate)
}

const (
	wfPending int32 = 0
	wfSuccess int32 = 1
	wfFailure int32 = 2
)

func wobjLinks(o *WObj, visit func(*core.Atomic)) {
	visit(&o.next)
	visit(&o.claim)
	visit(&o.node)
}

// TBKPOrc reproduces the Timnat–Braginsky–Kogan–Petrank wait-free list
// [27] as deployed in the paper's Figure 5/6 comparison. The reproduced
// architecture is the one OrcGC is being exercised on: a per-thread
// descriptor array with phase-numbered helping, and removal arbitration
// through a claim link CAS'd into the victim node (so any helper can
// finish any removal, and no thread could ever place a retire() call —
// descriptors and nodes are reclaimed purely by hard-link counting).
// Per DESIGN.md this is a substitution: insertions take the underlying
// Harris–Michael fast path, so the strict wait-freedom of the original
// insert is relaxed to lock-freedom.
type TBKPOrc struct {
	d     *core.Domain[WObj]
	nthr  int
	headH arena.Handle
	head  core.Atomic
	tail  core.Atomic
	state []core.Atomic
}

// NewTBKPOrc builds an empty list for up to cfg.MaxThreads helpers.
func NewTBKPOrc(tid int, cfg core.DomainConfig) *TBKPOrc {
	a := arena.New[WObj]()
	d := core.NewDomain(a, wobjLinks, cfg)
	l := &TBKPOrc{d: d, nthr: cfg.MaxThreads}
	if l.nthr <= 0 {
		l.nthr = 64
	}
	l.state = make([]core.Atomic, l.nthr)

	var pt, ph core.Ptr
	tailH := d.Make(tid, func(n *WObj) { n.key = tailKey }, &pt)
	l.headH = d.Make(tid, func(n *WObj) { n.key = headKey }, &ph)
	d.InitLink(tid, &d.Get(l.headH).next, tailH)
	d.Store(tid, &l.head, ph.H())
	d.Store(tid, &l.tail, pt.H())
	d.Release(tid, &pt)
	d.Release(tid, &ph)
	return l
}

// Domain exposes the OrcGC domain.
func (l *TBKPOrc) Domain() *core.Domain[WObj] { return l.d }

// Destroy drops all roots and flushes; quiescent use only.
func (l *TBKPOrc) Destroy(tid int) {
	for i := range l.state {
		l.d.Store(tid, &l.state[i], arena.Nil)
	}
	l.d.Store(tid, &l.head, arena.Nil)
	l.d.Store(tid, &l.tail, arena.Nil)
	l.d.FlushAll()
}

// find is the Harris–Michael window search over WObj nodes.
func (l *TBKPOrc) find(tid int, key uint64, prev, cur, next *core.Ptr) (prevA *core.Atomic, found bool) {
	d := l.d
retry:
	for {
		prevA = &d.Get(l.headH).next
		d.Load(tid, prevA, cur)
		cur.Unmark()
		for {
			curN := d.Get(cur.H())
			nextH := d.Load(tid, &curN.next, next)
			if prevA.Raw() != cur.H() {
				continue retry
			}
			if !nextH.Marked() {
				if curN.key >= key {
					return prevA, curN.key == key
				}
				prevA = &curN.next
				d.CopyPtr(tid, prev, cur)
			} else {
				if !d.CAS(tid, prevA, cur.H(), nextH.Unmarked()) {
					continue retry
				}
			}
			d.CopyPtr(tid, cur, next)
			cur.Unmark()
		}
	}
}

// Insert adds key (fast path); false if present.
func (l *TBKPOrc) Insert(tid int, key uint64) bool {
	d := l.d
	var prev, cur, next, nn core.Ptr
	defer func() {
		d.Release(tid, &prev)
		d.Release(tid, &cur)
		d.Release(tid, &next)
		d.Release(tid, &nn)
	}()
	for {
		prevA, found := l.find(tid, key, &prev, &cur, &next)
		if found {
			return false
		}
		d.Make(tid, func(n *WObj) { n.key = key }, &nn)
		d.InitLink(tid, &d.Get(nn.H()).next, cur.H())
		if d.CAS(tid, prevA, cur.H(), nn.H()) {
			return true
		}
		d.Release(tid, &nn)
	}
}

func (l *TBKPOrc) maxPhase(tid int) int64 {
	d := l.d
	var p core.Ptr
	maxP := int64(-1)
	for i := range l.state {
		h := d.Load(tid, &l.state[i], &p)
		if !h.IsNil() {
			if ph := d.Get(h).phase; ph > maxP {
				maxP = ph
			}
		}
	}
	d.Release(tid, &p)
	return maxP
}

// Remove deletes key via the helped slow path; false if absent.
func (l *TBKPOrc) Remove(tid int, key uint64) bool {
	d := l.d
	phase := l.maxPhase(tid) + 1
	var desc core.Ptr
	d.Make(tid, func(o *WObj) {
		o.key = key
		o.phase = phase
		o.op = 1
	}, &desc)
	descH := desc.H()
	d.Store(tid, &l.state[tid], descH)
	l.help(tid, phase)
	out := d.Get(descH).outcome.Load()
	d.Store(tid, &l.state[tid], arena.Nil) // retract the descriptor
	d.Release(tid, &desc)
	return out == wfSuccess
}

// help completes every pending removal with phase ≤ phase, own included.
func (l *TBKPOrc) help(tid int, phase int64) {
	d := l.d
	var p core.Ptr
	for i := 0; i < l.nthr; i++ {
		h := d.Load(tid, &l.state[i], &p)
		if h.IsNil() {
			continue
		}
		dd := d.Get(h)
		if dd.op == 1 && dd.phase <= phase && dd.outcome.Load() == wfPending {
			l.helpRemove(tid, h, &p)
		}
	}
	d.Release(tid, &p)
}

// helpRemove drives one removal descriptor to an outcome. Arbitration
// happens in two CAS-once steps: the descriptor first *binds* the one
// node it is allowed to remove into its node link, then CASes itself
// into that node's claim link; the claim owner marks, reports success,
// and unlinks. Binding is what makes helping safe against reincarnation:
// a stale helper that resumes after the removal completed (and the key
// was re-inserted as a fresh node) finds the binding already spent and
// can only touch the long-unlinked victim — without it, the helper's
// fresh find() would claim and unlink the reinserted node, silently
// destroying a successful insert.
func (l *TBKPOrc) helpRemove(tid int, descH arena.Handle, descP *core.Ptr) {
	d := l.d
	desc := d.Get(descH)
	key := desc.key
	var prev, cur, next, cand, cl core.Ptr
	defer func() {
		d.Release(tid, &prev)
		d.Release(tid, &cur)
		d.Release(tid, &next)
		d.Release(tid, &cand)
		d.Release(tid, &cl)
	}()
	for desc.outcome.Load() == wfPending {
		candH := d.Load(tid, &desc.node, &cand)
		if candH.IsNil() {
			if candH != arena.Nil {
				// Tombstoned binding: the outcome is already decided.
				return
			}
			_, found := l.find(tid, key, &prev, &cur, &next)
			if !found {
				// Failure must win the binding arbitration too: a
				// concurrent helper may have bound, claimed, and MARKED
				// the victim — our find then snips it and misses the
				// key — while its success CAS is still in flight.
				// Declaring failure on the raw not-found would beat that
				// CAS and report false for a node that was just removed.
				// Only the thread that tombstones the virgin binding
				// (proving no candidate can ever be claimed) may fail.
				if d.CAS(tid, &desc.node, arena.Nil, arena.Nil.WithMark()) {
					desc.outcome.CompareAndSwap(wfPending, wfFailure)
					return
				}
				continue // lost to a real binding: process it
			}
			// A marked node is never returned by find, and a node can
			// only be marked after some descriptor claimed its binding —
			// so a reinserted successor of a completed removal can never
			// win this CAS: the binding is already occupied.
			d.CAS(tid, &desc.node, arena.Nil, cur.H())
			continue // re-read: another helper may have bound first
		}
		node := d.Get(candH)
		if node.claim.Raw().IsNil() {
			d.CAS(tid, &node.claim, arena.Nil, descH)
		}
		claimH := d.Load(tid, &node.claim, &cl)
		if claimH.IsNil() {
			continue
		}
		// Mark the claimed node (whoever owns it) so it can be snipped.
		nextH := d.Load(tid, &node.next, &next)
		for !nextH.Marked() {
			d.CAS(tid, &node.next, nextH, nextH.WithMark())
			nextH = d.Load(tid, &node.next, &next)
		}
		if claimH.Unmarked() == descH.Unmarked() {
			// Our descriptor owns its bound node: the removal succeeded.
			desc.outcome.CompareAndSwap(wfPending, wfSuccess)
			l.find(tid, key, &prev, &cur, &next) // physical unlink
			// Tombstone the binding: desc.node→victim and victim.claim→
			// desc form a hard-link cycle that counting alone cannot
			// collect. A marked nil drops the victim link (IsNil handles
			// skip the counter walks) while keeping the raw word nonzero,
			// so the CAS-once bind above can never succeed again — a
			// plain nil would let two stale helpers re-bind and then
			// claim a reinserted node, resurrecting the very race the
			// binding exists to prevent.
			d.Store(tid, &desc.node, arena.Nil.WithMark())
			return
		}
		// Our bound candidate was claimed by a competing removal first:
		// that descriptor owns the node. Report its success, help the
		// unlink along, and fail — this descriptor's one candidate is
		// spent, and the key is gone once the owner's unlink lands.
		owner := d.Get(claimH)
		owner.outcome.CompareAndSwap(wfPending, wfSuccess)
		l.find(tid, key, &prev, &cur, &next)
		desc.outcome.CompareAndSwap(wfPending, wfFailure)
		d.Store(tid, &desc.node, arena.Nil.WithMark())
		return
	}
}

// Contains reports membership.
func (l *TBKPOrc) Contains(tid int, key uint64) bool {
	d := l.d
	var prev, cur, next core.Ptr
	_, found := l.find(tid, key, &prev, &cur, &next)
	d.Release(tid, &prev)
	d.Release(tid, &cur)
	d.Release(tid, &next)
	return found
}
