package list

import (
	"repro/internal/core"
)

// HarrisOrc is Harris's original lock-free linked list [12] under OrcGC.
// Its search unlinks an entire chain of marked nodes with one CAS —
// behaviour most manual schemes cannot reclaim safely (the paper's
// second obstacle), because the chain stays internally linked after the
// unlink. Under OrcGC the single CAS drops the only external hard link
// to the chain head; the cascading destructor decrements then collapse
// the chain node by node.
type HarrisOrc struct {
	orcListBase
}

// NewHarrisOrc builds an empty OrcGC Harris list.
func NewHarrisOrc(tid int, cfg core.DomainConfig) *HarrisOrc {
	l := &HarrisOrc{}
	initOrcListBase(&l.orcListBase, tid, cfg)
	return l
}

// search is Harris's search(key): on return left and right are adjacent
// unmarked nodes with left.key < key <= right.key. Marked runs found in
// between are unlinked in bulk.
func (l *HarrisOrc) search(tid int, key uint64, left, leftNext, right *core.Ptr) {
	d := l.d
	var t, tnext core.Ptr
	defer func() {
		d.Release(tid, &t)
		d.Release(tid, &tnext)
	}()
searchAgain:
	for {
		d.Load(tid, &l.head, &t)
		d.Load(tid, &d.Get(t.H()).next, &tnext)
		// 1: find left (last unmarked) and right (next unmarked ≥ key).
		for {
			if !tnext.H().Marked() {
				d.CopyPtr(tid, left, &t)
				d.CopyPtr(tid, leftNext, &tnext)
			}
			d.CopyPtr(tid, &t, &tnext)
			t.Unmark()
			if t.H() == l.tailH {
				break
			}
			d.Load(tid, &d.Get(t.H()).next, &tnext)
			if !tnext.H().Marked() && d.Get(t.H()).key >= key {
				break
			}
		}
		d.CopyPtr(tid, right, &t)
		// 2: adjacent?
		if leftNext.H() == right.H() {
			if right.H() != l.tailH && d.Get(right.H()).next.Raw().Marked() {
				continue searchAgain
			}
			return
		}
		// 3: unlink the whole marked chain with one CAS. No retire:
		// the chain's hard links unwind recursively under OrcGC.
		if d.CAS(tid, &d.Get(left.H()).next, leftNext.H(), right.H()) {
			if right.H() != l.tailH && d.Get(right.H()).next.Raw().Marked() {
				continue searchAgain
			}
			return
		}
	}
}

// Insert adds key; false if already present.
func (l *HarrisOrc) Insert(tid int, key uint64) bool {
	d := l.d
	var left, leftNext, right, nn core.Ptr
	defer func() {
		d.Release(tid, &left)
		d.Release(tid, &leftNext)
		d.Release(tid, &right)
		d.Release(tid, &nn)
	}()
	for {
		l.search(tid, key, &left, &leftNext, &right)
		if right.H() != l.tailH && d.Get(right.H()).key == key {
			return false
		}
		d.Make(tid, func(n *ONode) { n.key = key }, &nn)
		d.InitLink(tid, &d.Get(nn.H()).next, right.H())
		if d.CAS(tid, &d.Get(left.H()).next, right.H(), nn.H()) {
			return true
		}
		d.Release(tid, &nn)
	}
}

// Remove deletes key; false if absent.
func (l *HarrisOrc) Remove(tid int, key uint64) bool {
	d := l.d
	var left, leftNext, right, rightNext core.Ptr
	defer func() {
		d.Release(tid, &left)
		d.Release(tid, &leftNext)
		d.Release(tid, &right)
		d.Release(tid, &rightNext)
	}()
	for {
		l.search(tid, key, &left, &leftNext, &right)
		if right.H() == l.tailH || d.Get(right.H()).key != key {
			return false
		}
		rn := d.Load(tid, &d.Get(right.H()).next, &rightNext)
		if rn.Marked() {
			continue
		}
		if !d.CAS(tid, &d.Get(right.H()).next, rn, rn.WithMark()) {
			continue
		}
		// Physical unlink; on failure the next search cleans up.
		if !d.CAS(tid, &d.Get(left.H()).next, right.H(), rn.Unmarked()) {
			l.search(tid, key, &left, &leftNext, &right)
		}
		return true
	}
}

// Contains reports membership using the original search (which may
// unlink chains on the way — Harris's formulation).
func (l *HarrisOrc) Contains(tid int, key uint64) bool {
	d := l.d
	var left, leftNext, right core.Ptr
	l.search(tid, key, &left, &leftNext, &right)
	found := right.H() != l.tailH && d.Get(right.H()).key == key
	d.Release(tid, &left)
	d.Release(tid, &leftNext)
	d.Release(tid, &right)
	return found
}
