// Package list implements the sorted lock-free linked lists of the
// paper's evaluation:
//
//   - ManualList — Michael's list [18] (the Harris list amended for
//     hazard-pointer compatibility), parameterized over any manual
//     reclamation scheme. The subject of Figures 3 and 4.
//   - MichaelOrc — the same algorithm with OrcGC type annotation only.
//   - HarrisOrc — Harris's *original* list [12], whose bulk chain
//     unlinking is incompatible with HP-style manual schemes (the
//     paper's second obstacle); OrcGC reclaims the chains through
//     cascading hard-link decrements.
//   - HSOrc — the Herlihy–Shavit variant with wait-free lookups [15]:
//     contains never restarts and traverses marked nodes, which
//     requires removed nodes to keep their successor links intact.
//
// All lists store ascending uint64 keys between head/tail sentinels with
// keys 0 and 2^64-1; callers use keys strictly between.
package list

// Set is the common membership interface the benchmarks drive.
type Set interface {
	Insert(tid int, key uint64) bool
	Remove(tid int, key uint64) bool
	Contains(tid int, key uint64) bool
}

const (
	headKey = uint64(0)
	tailKey = ^uint64(0)
)
