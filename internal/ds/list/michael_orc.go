package list

import (
	"repro/internal/arena"
	"repro/internal/core"
)

// ONode is the node type shared by all OrcGC-annotated lists: one key,
// one orc-tracked successor link (the mark bit travels in the handle's
// tag, as in the C++ artifact's pointer low bits).
type ONode struct {
	key  uint64
	next core.Atomic
}

func onodeLinks(n *ONode, visit func(*core.Atomic)) { visit(&n.next) }

// orcListBase carries the pieces common to the three OrcGC lists.
type orcListBase struct {
	d     *core.Domain[ONode]
	head  core.Atomic // root hard link to the head sentinel
	tail  core.Atomic // root hard link to the tail sentinel
	headH arena.Handle
	tailH arena.Handle
}

func initOrcListBase(b *orcListBase, tid int, cfg core.DomainConfig) {
	a := arena.New[ONode]()
	d := core.NewDomain(a, onodeLinks, cfg)
	b.d = d

	var pt, ph core.Ptr
	b.tailH = d.Make(tid, func(n *ONode) { n.key = tailKey }, &pt)
	b.headH = d.Make(tid, func(n *ONode) { n.key = headKey }, &ph)
	d.InitLink(tid, &d.Get(b.headH).next, b.tailH)
	d.Store(tid, &b.head, ph.H())
	d.Store(tid, &b.tail, pt.H())
	d.Release(tid, &pt)
	d.Release(tid, &ph)
}

// Domain exposes the OrcGC domain.
func (b *orcListBase) Domain() *core.Domain[ONode] { return b.d }

// Destroy drops the roots and flushes; quiescent use only.
func (b *orcListBase) Destroy(tid int) {
	b.d.Store(tid, &b.head, arena.Nil)
	b.d.Store(tid, &b.tail, arena.Nil)
	b.d.FlushAll()
}

// MichaelOrc is Michael's list with OrcGC deployed by the paper's
// methodology: identical control flow to ManualList, but no Protect,
// Retire or Clear calls — only annotated loads, stores and CASes.
type MichaelOrc struct {
	orcListBase
}

// NewMichaelOrc builds an empty OrcGC Michael list.
func NewMichaelOrc(tid int, cfg core.DomainConfig) *MichaelOrc {
	l := &MichaelOrc{}
	initOrcListBase(&l.orcListBase, tid, cfg)
	return l
}

// find positions (prevA, cur) around key. prev/cur/next are caller-owned
// Ptrs so operations can reuse the claimed hazard indices across
// retries; on return cur references the first node with key' >= key.
func (l *MichaelOrc) find(tid int, key uint64, prev, cur, next *core.Ptr) (prevA *core.Atomic, found bool) {
	d := l.d
retry:
	for {
		prevA = &d.Get(l.headH).next
		d.Load(tid, prevA, cur)
		cur.Unmark()
		for {
			curN := d.Get(cur.H())
			nextH := d.Load(tid, &curN.next, next)
			if prevA.Raw() != cur.H() {
				continue retry
			}
			if !nextH.Marked() {
				if curN.key >= key {
					return prevA, curN.key == key
				}
				prevA = &curN.next
				d.CopyPtr(tid, prev, cur)
			} else {
				// Unlink the marked node; OrcGC notices the lost hard
				// link and reclaims it — no retire call.
				if !d.CAS(tid, prevA, cur.H(), nextH.Unmarked()) {
					continue retry
				}
			}
			d.CopyPtr(tid, cur, next)
			cur.Unmark()
		}
	}
}

// Insert adds key; false if already present.
func (l *MichaelOrc) Insert(tid int, key uint64) bool {
	d := l.d
	var prev, cur, next, nn core.Ptr
	defer func() {
		d.Release(tid, &prev)
		d.Release(tid, &cur)
		d.Release(tid, &next)
		d.Release(tid, &nn)
	}()
	for {
		prevA, found := l.find(tid, key, &prev, &cur, &next)
		if found {
			return false
		}
		d.Make(tid, func(n *ONode) { n.key = key }, &nn)
		d.InitLink(tid, &d.Get(nn.H()).next, cur.H())
		if d.CAS(tid, prevA, cur.H(), nn.H()) {
			return true
		}
		// CAS failed: nn was never published; releasing it lets OrcGC
		// collect it (and drop its link to cur) automatically.
		d.Release(tid, &nn)
	}
}

// Remove deletes key; false if absent.
func (l *MichaelOrc) Remove(tid int, key uint64) bool {
	d := l.d
	var prev, cur, next core.Ptr
	defer func() {
		d.Release(tid, &prev)
		d.Release(tid, &cur)
		d.Release(tid, &next)
	}()
	for {
		prevA, found := l.find(tid, key, &prev, &cur, &next)
		if !found {
			return false
		}
		curN := d.Get(cur.H())
		nextH := d.Load(tid, &curN.next, &next)
		if nextH.Marked() {
			continue
		}
		if !d.CAS(tid, &curN.next, nextH, nextH.WithMark()) {
			continue
		}
		if !d.CAS(tid, prevA, cur.H(), nextH.Unmarked()) {
			l.find(tid, key, &prev, &cur, &next) // help the unlink
		}
		return true
	}
}

// Contains reports membership.
func (l *MichaelOrc) Contains(tid int, key uint64) bool {
	d := l.d
	var prev, cur, next core.Ptr
	_, found := l.find(tid, key, &prev, &cur, &next)
	d.Release(tid, &prev)
	d.Release(tid, &cur)
	d.Release(tid, &next)
	return found
}
