package list

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/reclaim"
)

// MNode is a node of the manually reclaimed Michael list. The successor
// handle carries the Harris mark bit in its tag.
type MNode struct {
	key  uint64
	next atomic.Uint64
}

// HPsNeeded is H for the Michael list: next, cur, prev.
const HPsNeeded = 3

// ManualList is Michael's lock-free linked list [18] over an arbitrary
// manual reclamation scheme — the data structure of Figures 3 and 4.
// Traversal protects (next, cur, prev) in hazardous pointers 0/1/2 and
// restarts whenever validation fails; unlinked nodes are retired
// explicitly, the call OrcGC makes unnecessary.
type ManualList struct {
	a     *arena.Arena[MNode]
	s     reclaim.Scheme
	headH arena.Handle // head sentinel, never retired
}

// NewManual builds an empty list reclaimed by scheme name.
func NewManual(scheme string, cfg reclaim.Options) *ManualList {
	a := arena.New[MNode]()
	cfg.MaxHPs = HPsNeeded
	l := &ManualList{a: a}
	l.s = reclaim.MustNew(scheme, reclaim.Env{Free: a.FreeT, Hdr: a.Header}, cfg)

	th, tn := a.Alloc()
	tn.key = tailKey
	l.s.OnAlloc(th)
	hh, hn := a.Alloc()
	hn.key = headKey
	hn.next.Store(uint64(th))
	l.s.OnAlloc(hh)
	l.headH = hh
	return l
}

// Scheme exposes the reclamation scheme.
func (l *ManualList) Scheme() reclaim.Scheme { return l.s }

// Arena exposes the node arena.
func (l *ManualList) Arena() *arena.Arena[MNode] { return l.a }

// find positions (prevA, cur) around key with hazardous pointers held:
// hp1 = cur, hp2 = the node containing prevA, hp0 = cur's successor.
// It unlinks (and retires) marked nodes it steps over.
func (l *ManualList) find(tid int, key uint64) (prevA *atomic.Uint64, cur arena.Handle, found bool) {
retry:
	for {
		prevA = &l.a.Get(l.headH).next
		l.s.Protect(tid, 2, l.headH)
		cur = l.s.GetProtected(tid, 1, prevA).Unmarked()
		for {
			curN := l.a.Get(cur)
			next := l.s.GetProtected(tid, 0, &curN.next)
			if arena.Handle(prevA.Load()) != cur {
				continue retry
			}
			if !next.Marked() {
				if curN.key >= key {
					return prevA, cur, curN.key == key
				}
				prevA = &curN.next
				l.s.Protect(tid, 2, cur)
			} else {
				// cur is logically deleted: unlink it and reclaim.
				if !l.compareAndSwap(prevA, cur, next.Unmarked()) {
					continue retry
				}
				l.s.Retire(tid, cur)
			}
			cur = next.Unmarked()
			l.s.Protect(tid, 1, cur)
		}
	}
}

func (l *ManualList) compareAndSwap(addr *atomic.Uint64, old, new arena.Handle) bool {
	return addr.CompareAndSwap(uint64(old), uint64(new))
}

// Insert adds key; false if already present.
func (l *ManualList) Insert(tid int, key uint64) bool {
	s := l.s
	s.BeginOp(tid)
	defer s.EndOp(tid)
	defer s.ClearAll(tid)
	for {
		prevA, cur, found := l.find(tid, key)
		if found {
			return false
		}
		nh, n := l.a.AllocT(tid)
		n.key = key
		n.next.Store(uint64(cur))
		s.OnAlloc(nh)
		if l.compareAndSwap(prevA, cur, nh) {
			return true
		}
		// Never published: return straight to the allocator.
		l.a.FreeT(tid, nh)
	}
}

// Remove deletes key; false if absent.
func (l *ManualList) Remove(tid int, key uint64) bool {
	s := l.s
	s.BeginOp(tid)
	defer s.EndOp(tid)
	defer s.ClearAll(tid)
	for {
		prevA, cur, found := l.find(tid, key)
		if !found {
			return false
		}
		curN := l.a.Get(cur)
		next := arena.Handle(curN.next.Load())
		if next.Marked() {
			continue // another remover got here first; re-find
		}
		if !curN.next.CompareAndSwap(uint64(next), uint64(next.WithMark())) {
			continue
		}
		// Logically deleted; try the physical unlink ourselves, else
		// let the next find do it.
		if l.compareAndSwap(prevA, cur, next) {
			s.Retire(tid, cur)
		} else {
			l.find(tid, key)
		}
		return true
	}
}

// Contains reports membership (traversal may help unlink, as in
// Michael's original formulation).
func (l *ManualList) Contains(tid int, key uint64) bool {
	s := l.s
	s.BeginOp(tid)
	_, _, found := l.find(tid, key)
	s.ClearAll(tid)
	s.EndOp(tid)
	return found
}

// Size counts live keys; quiescent use only.
func (l *ManualList) Size() int {
	n := 0
	cur := arena.Handle(l.a.Get(l.headH).next.Load()).Unmarked()
	for {
		//orcvet:ignore protect Size is documented quiescent-only: no concurrent writers or reclamation
		node := l.a.Get(cur)
		if node.key == tailKey {
			return n
		}
		if !arena.Handle(node.next.Load()).Marked() {
			n++
		}
		cur = arena.Handle(node.next.Load()).Unmarked()
	}
}
