package lcrq

import (
	"sync/atomic"

	"repro/internal/arena"
)

//orcvet:file-ignore protect no-reclamation baseline: every segment leaks, so a raw load can never dangle

// LSeg is a segment of the leaking LCRQ: identical ring protocol, plain
// handle links, no reclamation — the normalization baseline of
// Figures 1 and 2.
type LSeg struct {
	head atomic.Uint64
	tail atomic.Uint64
	next atomic.Uint64 // arena.Handle
	ring [RingSize]atomic.Uint64
}

func initLSeg(s *LSeg, firstVal uint64) {
	for i := range s.ring {
		s.ring[i].Store(packCell(true, uint64(i), emptyVal))
	}
	if firstVal != emptyVal {
		s.ring[0].Store(packCell(true, 0, firstVal))
		s.tail.Store(1)
	}
}

func (s *LSeg) enq(v uint64) bool {
	for {
		t := s.tail.Add(1) - 1
		if t&closedBit != 0 {
			return false
		}
		cell := &s.ring[t%RingSize]
		w := cell.Load()
		if cellVal(w) == emptyVal && cellTurn(w) <= t &&
			(cellSafe(w) || s.head.Load() <= t) {
			if cell.CompareAndSwap(w, packCell(true, t, v)) {
				return true
			}
		}
		if t-s.head.Load() >= RingSize {
			for {
				cur := s.tail.Load()
				if cur&closedBit != 0 || s.tail.CompareAndSwap(cur, cur|closedBit) {
					break
				}
			}
			return false
		}
	}
}

func (s *LSeg) deq() (uint64, bool) {
	for {
		h := s.head.Add(1) - 1
		cell := &s.ring[h%RingSize]
		for {
			w := cell.Load()
			turn, val := cellTurn(w), cellVal(w)
			if val != emptyVal {
				if turn == h {
					if cell.CompareAndSwap(w, packCell(cellSafe(w), h+RingSize, emptyVal)) {
						return val, true
					}
					continue
				}
				if cell.CompareAndSwap(w, packCell(false, turn, val)) {
					break
				}
				continue
			}
			if cell.CompareAndSwap(w, packCell(cellSafe(w), h+RingSize, emptyVal)) {
				break
			}
		}
		t := s.tail.Load() &^ closedBit
		if t <= h+1 {
			return emptyVal, false
		}
	}
}

// LeakQueue is the LCRQ without memory reclamation.
type LeakQueue struct {
	a    *arena.Arena[LSeg]
	head atomic.Uint64
	tail atomic.Uint64
}

// NewLeak builds an empty leaking LCRQ.
func NewLeak() *LeakQueue {
	a := arena.New[LSeg](arena.WithChunkSize(64))
	q := &LeakQueue{a: a}
	h, s := a.Alloc()
	initLSeg(s, emptyVal)
	q.head.Store(uint64(h))
	q.tail.Store(uint64(h))
	return q
}

// Arena exposes the segment arena (leak accounting).
func (q *LeakQueue) Arena() *arena.Arena[LSeg] { return q.a }

// Enqueue appends a 32-bit item.
func (q *LeakQueue) Enqueue(tid int, item uint64) {
	for {
		crq := arena.Handle(q.tail.Load())
		seg := q.a.Get(crq)
		if next := arena.Handle(seg.next.Load()); !next.IsNil() {
			q.tail.CompareAndSwap(uint64(crq), uint64(next))
			continue
		}
		if seg.enq(item) {
			return
		}
		nh, ns := q.a.AllocT(tid)
		initLSeg(ns, item)
		if seg.next.CompareAndSwap(0, uint64(nh)) {
			q.tail.CompareAndSwap(uint64(crq), uint64(nh))
			return
		}
		q.a.FreeT(tid, nh) // never published
	}
}

// Dequeue removes the oldest item; ok=false when empty.
func (q *LeakQueue) Dequeue(_ int) (uint64, bool) {
	for {
		crq := arena.Handle(q.head.Load())
		seg := q.a.Get(crq)
		if v, ok := seg.deq(); ok {
			return v, true
		}
		next := arena.Handle(seg.next.Load())
		if next.IsNil() {
			return 0, false
		}
		if v, ok := seg.deq(); ok {
			return v, true
		}
		q.head.CompareAndSwap(uint64(crq), uint64(next))
		// The drained segment is never freed: this is the leak.
	}
}
