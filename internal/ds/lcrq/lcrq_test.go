package lcrq

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestCellPackingProperty(t *testing.T) {
	f := func(safe bool, turn uint32, val uint32) bool {
		tr := uint64(turn) & 0x7FFFFFFF
		w := packCell(safe, tr, uint64(val))
		return cellSafe(w) == safe && cellTurn(w) == tr && cellVal(w) == uint64(val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type q interface {
	Enqueue(tid int, item uint64)
	Dequeue(tid int) (uint64, bool)
}

func queues(threads int) map[string]q {
	return map[string]q{
		"orc":  NewOrc(0, core.DomainConfig{MaxThreads: threads}),
		"leak": NewLeak(),
	}
}

func TestSequentialFIFO(t *testing.T) {
	for name, qu := range queues(2) {
		t.Run(name, func(t *testing.T) {
			if _, ok := qu.Dequeue(0); ok {
				t.Fatal("fresh queue not empty")
			}
			for i := uint64(1); i <= 1000; i++ {
				qu.Enqueue(0, i)
			}
			for i := uint64(1); i <= 1000; i++ {
				v, ok := qu.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
				}
			}
			if _, ok := qu.Dequeue(0); ok {
				t.Fatal("queue should be empty")
			}
		})
	}
}

func TestSegmentRollover(t *testing.T) {
	for name, qu := range queues(2) {
		t.Run(name, func(t *testing.T) {
			// Push several rings' worth to force segment splicing.
			n := uint64(RingSize*5 + 17)
			for i := uint64(1); i <= n; i++ {
				qu.Enqueue(0, i)
			}
			for i := uint64(1); i <= n; i++ {
				v, ok := qu.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("at %d: got %d ok=%v", i, v, ok)
				}
			}
		})
	}
}

func TestInterleavedEnqDeq(t *testing.T) {
	for name, qu := range queues(2) {
		t.Run(name, func(t *testing.T) {
			next := uint64(1)
			expect := uint64(1)
			for round := 0; round < 2000; round++ {
				qu.Enqueue(0, next)
				next++
				qu.Enqueue(0, next)
				next++
				v, ok := qu.Dequeue(0)
				if !ok || v != expect {
					t.Fatalf("round %d: got %d want %d", round, v, expect)
				}
				expect++
			}
		})
	}
}

func TestConcurrentConservation(t *testing.T) {
	for name, qu := range queues(9) {
		name, qu := name, qu
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 8
			const per = 20_000
			var sumIn, sumOut, outCount uint64
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					var in, out, cnt uint64
					for i := 0; i < per; i++ {
						v := uint64(tid*per+i) & 0xFFFFFFF
						qu.Enqueue(tid, v)
						in += v
						if got, ok := qu.Dequeue(tid); ok {
							out += got
							cnt++
						}
					}
					mu.Lock()
					sumIn += in
					sumOut += out
					outCount += cnt
					mu.Unlock()
				}(w)
			}
			wg.Wait()
			for {
				v, ok := qu.Dequeue(0)
				if !ok {
					break
				}
				sumOut += v
				outCount++
			}
			if outCount != workers*per {
				t.Fatalf("count: %d out of %d", outCount, workers*per)
			}
			if sumIn != sumOut {
				t.Fatalf("sum mismatch: in=%d out=%d", sumIn, sumOut)
			}
		})
	}
}

// TestOrcReclaimsSegments: drained segments must be reclaimed under
// OrcGC while the leak variant keeps them all.
func TestOrcReclaimsSegments(t *testing.T) {
	qo := NewOrc(0, core.DomainConfig{MaxThreads: 2})
	n := uint64(RingSize * 20)
	for i := uint64(1); i <= n; i++ {
		qo.Enqueue(0, i)
	}
	for i := uint64(1); i <= n; i++ {
		qo.Dequeue(0)
	}
	qo.Drain(0)
	if live := qo.Domain().Arena().Stats().Live; live != 0 {
		t.Fatalf("orc LCRQ leaked %d segments", live)
	}

	ql := NewLeak()
	for i := uint64(1); i <= n; i++ {
		ql.Enqueue(0, i)
	}
	for i := uint64(1); i <= n; i++ {
		ql.Dequeue(0)
	}
	if live := ql.Arena().Stats().Live; live < 10 {
		t.Fatalf("leak LCRQ unexpectedly reclaimed (live=%d)", live)
	}
}

func TestPerProducerOrder(t *testing.T) {
	qu := NewOrc(0, core.DomainConfig{MaxThreads: 5})
	const producers = 3
	const per = 10_000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				qu.Enqueue(tid, uint64(tid)<<24|uint64(i))
			}
		}(p + 1)
	}
	wg.Wait()
	last := map[uint64]int64{1: -1, 2: -1, 3: -1}
	for {
		v, ok := qu.Dequeue(0)
		if !ok {
			break
		}
		p, seq := v>>24, int64(v&0xFFFFFF)
		if seq <= last[p] {
			t.Fatalf("producer %d out of order: %d after %d", p, seq, last[p])
		}
		last[p] = seq
	}
}
