// Package lcrq implements the Morrison–Afek LCRQ [21]: a linked list of
// circular-ring queue (CRQ) segments, each a power-of-two ring of cells
// driven by fetch-and-add tickets. The original CRQ cell is a
// (index, value) pair mutated with CAS2; per DESIGN.md the cell here is
// one uint64 — safe bit (63), 31-bit turn, 32-bit value — so a plain
// CAS carries the same state machine and values are limited to 32 bits
// (the benchmarks', and the paper's, payloads are small integers).
//
// Segment reclamation is the part the paper cares about: dequeuers that
// drain a segment unlink it from the segment list, and under OrcGC the
// lost hard link reclaims it with no retire call; the leak variant is
// the usual baseline.
package lcrq

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
)

// RingSize is the number of cells per CRQ segment.
const RingSize = 256

const (
	emptyVal  = uint64(0xFFFFFFFF) // cell holds no value
	safeBit   = uint64(1) << 63
	turnShift = 32
	turnMask  = uint64(0x7FFFFFFF) << turnShift
	closedBit = uint64(1) << 63 // on the segment's tail ticket counter
)

func packCell(safe bool, turn uint64, val uint64) uint64 {
	w := (turn << turnShift & turnMask) | (val & 0xFFFFFFFF)
	if safe {
		w |= safeBit
	}
	return w
}

func cellSafe(w uint64) bool   { return w&safeBit != 0 }
func cellTurn(w uint64) uint64 { return (w & turnMask) >> turnShift }
func cellVal(w uint64) uint64  { return w & 0xFFFFFFFF }

// Seg is one CRQ segment.
type Seg struct {
	head atomic.Uint64 // dequeue ticket
	tail atomic.Uint64 // enqueue ticket | closedBit
	next core.Atomic
	ring [RingSize]atomic.Uint64
}

func segLinks(s *Seg, visit func(*core.Atomic)) { visit(&s.next) }

func initSeg(s *Seg, firstVal uint64) {
	for i := range s.ring {
		s.ring[i].Store(packCell(true, uint64(i), emptyVal))
	}
	if firstVal != emptyVal {
		s.ring[0].Store(packCell(true, 0, firstVal))
		s.tail.Store(1)
	}
}

// enq returns false when the segment is closed.
func (s *Seg) enq(v uint64) bool {
	for {
		t := s.tail.Add(1) - 1
		if t&closedBit != 0 {
			return false
		}
		cell := &s.ring[t%RingSize]
		w := cell.Load()
		if cellVal(w) == emptyVal && cellTurn(w) <= t &&
			(cellSafe(w) || s.head.Load() <= t) {
			if cell.CompareAndSwap(w, packCell(true, t, v)) {
				return true
			}
		}
		if t-s.head.Load() >= RingSize {
			s.closeSeg()
			return false
		}
	}
}

func (s *Seg) closeSeg() {
	for {
		t := s.tail.Load()
		if t&closedBit != 0 {
			return
		}
		if s.tail.CompareAndSwap(t, t|closedBit) {
			return
		}
	}
}

// deq returns (emptyVal, false) when the segment has nothing left.
func (s *Seg) deq() (uint64, bool) {
	for {
		h := s.head.Add(1) - 1
		cell := &s.ring[h%RingSize]
		for {
			w := cell.Load()
			turn, val := cellTurn(w), cellVal(w)
			if val != emptyVal {
				if turn == h {
					// Consume and recycle the cell for turn h+RingSize.
					if cell.CompareAndSwap(w, packCell(cellSafe(w), h+RingSize, emptyVal)) {
						return val, true
					}
					continue
				}
				// A straggling enqueue from an earlier turn: mark the
				// cell unsafe so that enqueue never succeeds blindly.
				if cell.CompareAndSwap(w, packCell(false, turn, val)) {
					break
				}
				continue
			}
			// Empty: advance the cell's turn so a slow enqueuer with
			// ticket h cannot deposit into the past.
			if cell.CompareAndSwap(w, packCell(cellSafe(w), h+RingSize, emptyVal)) {
				break
			}
		}
		t := s.tail.Load() &^ closedBit
		if t <= h+1 {
			return emptyVal, false // drained
		}
	}
}

// OrcQueue is the LCRQ with OrcGC-managed segments.
type OrcQueue struct {
	d    *core.Domain[Seg]
	head core.Atomic
	tail core.Atomic
}

// NewOrc builds an empty queue with one open segment.
func NewOrc(tid int, cfg core.DomainConfig) *OrcQueue {
	a := arena.New[Seg](arena.WithChunkSize(64))
	d := core.NewDomain(a, segLinks, cfg)
	q := &OrcQueue{d: d}
	var p core.Ptr
	d.Make(tid, func(s *Seg) { initSeg(s, emptyVal) }, &p)
	d.Store(tid, &q.head, p.H())
	d.Store(tid, &q.tail, p.H())
	d.Release(tid, &p)
	return q
}

// Domain exposes the OrcGC domain.
func (q *OrcQueue) Domain() *core.Domain[Seg] { return q.d }

// Enqueue appends a 32-bit item.
func (q *OrcQueue) Enqueue(tid int, item uint64) {
	d := q.d
	var crq, next, nseg core.Ptr
	defer func() {
		d.Release(tid, &crq)
		d.Release(tid, &next)
		d.Release(tid, &nseg)
	}()
	for {
		d.Load(tid, &q.tail, &crq)
		seg := d.Get(crq.H())
		if nh := d.Load(tid, &seg.next, &next); !nh.IsNil() {
			d.CAS(tid, &q.tail, crq.H(), next.H())
			continue
		}
		if seg.enq(item) {
			return
		}
		// Closed: splice in a fresh segment carrying the item.
		d.Make(tid, func(s *Seg) { initSeg(s, item) }, &nseg)
		if d.CAS(tid, &seg.next, arena.Nil, nseg.H()) {
			d.CAS(tid, &q.tail, crq.H(), nseg.H())
			return
		}
		d.Release(tid, &nseg)
	}
}

// Dequeue removes the oldest item; ok=false when empty.
func (q *OrcQueue) Dequeue(tid int) (uint64, bool) {
	d := q.d
	var crq, next core.Ptr
	defer func() {
		d.Release(tid, &crq)
		d.Release(tid, &next)
	}()
	for {
		d.Load(tid, &q.head, &crq)
		seg := d.Get(crq.H())
		if v, ok := seg.deq(); ok {
			return v, true
		}
		if nh := d.Load(tid, &seg.next, &next); nh.IsNil() {
			return 0, false
		}
		// Re-check after observing a successor (an enqueue may have
		// landed between the drain and the next-load).
		if v, ok := seg.deq(); ok {
			return v, true
		}
		// Retire the drained segment by unlinking it: under OrcGC the
		// hard-link drop is the whole reclamation story.
		d.CAS(tid, &q.head, crq.H(), next.H())
	}
}

// Drain empties the queue and releases the roots; quiescent use only.
func (q *OrcQueue) Drain(tid int) {
	for {
		if _, ok := q.Dequeue(tid); !ok {
			break
		}
	}
	q.d.Store(tid, &q.tail, arena.Nil)
	q.d.Store(tid, &q.head, arena.Nil)
	q.d.FlushAll()
}
