// Package violations is orcvet's seeded-violation corpus: every line
// carrying a // want:<rule> marker must be flagged by exactly that
// rule, and nothing else in the package may fire. The package lives
// under testdata/ so ./... patterns (build, test, vet, CI) never see
// it; the corpus test loads it explicitly and diffs findings against
// the markers.
package violations

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/reclaim"
)

// VNode is the corpus node type; the arena/domain instantiations in
// VList make *VNode a "raw node pointer" in orcvet's model.
type VNode struct {
	key  uint64
	next atomic.Uint64
}

// GlobalNode is the escape target of the package-level store fixture.
var GlobalNode *VNode

// VList is the corpus container: one shared head slot reclaimed either
// manually (s) or through the orc domain (d).
type VList struct {
	a     *arena.Arena[VNode]
	d     *core.Domain[VNode]
	s     reclaim.Scheme
	head  atomic.Uint64
	cache *VNode
}

// --- rule protect ----------------------------------------------------

// DerefRawLoad dereferences a raw shared load without protecting it.
func (l *VList) DerefRawLoad() uint64 {
	h := arena.Handle(l.head.Load())
	return l.a.Get(h).key // want:protect
}

// DerefAfterClearAll keeps using a handle after dropping every hazard.
func (l *VList) DerefAfterClearAll(tid int) uint64 {
	h := l.s.GetProtected(tid, 0, &l.head)
	l.s.ClearAll(tid)
	return l.a.Get(h).key // want:protect
}

// DerefAfterRelease uses a Ptr's handle after releasing it.
func (l *VList) DerefAfterRelease(tid int, at *core.Atomic) uint64 {
	var p core.Ptr
	l.d.Load(tid, at, &p)
	l.d.Release(tid, &p)
	return l.d.Get(p.H()).key // want:protect
}

// deref is a package-local helper; its summary marks parameter h as
// requiring protection, extending the obligation to callers.
func (l *VList) deref(h arena.Handle) uint64 {
	return l.a.Get(h).key
}

// CallsDerefRaw passes an unprotected load to a dereferencing helper.
func (l *VList) CallsDerefRaw() uint64 {
	h := arena.Handle(l.head.Load())
	return l.deref(h) // want:protect
}

// --- rule retire -----------------------------------------------------

// RetireWithoutCAS retires a handle no CAS ever unlinked: another
// thread can still reach it through the shared slot.
func (l *VList) RetireWithoutCAS(tid int) {
	h := l.s.GetProtected(tid, 0, &l.head)
	l.s.Retire(tid, h) // want:retire
	l.s.ClearAll(tid)
}

// TBKPHelpRace reconstructs the shape of the PR-4 turnqueue helping
// races: the helper CASes the request link, retires the node, and then
// the stale helping path dereferences the handle it just retired.
func (l *VList) TBKPHelpRace(tid int) uint64 {
	h := l.s.GetProtected(tid, 0, &l.head)
	next := arena.Handle(l.a.Get(h).next.Load())
	if l.head.CompareAndSwap(uint64(h), uint64(next)) {
		l.s.Retire(tid, h)
	}
	return l.a.Get(h).key // want:retire
}

// --- rule escape -----------------------------------------------------

// CacheNodePointer stores a raw node pointer into a struct field.
func (l *VList) CacheNodePointer(tid int) {
	h := l.s.GetProtected(tid, 0, &l.head)
	n := l.a.Get(h)
	l.cache = n // want:escape
	l.s.ClearAll(tid)
}

// PublishNodePointer stores a raw node pointer into a package global.
func (l *VList) PublishNodePointer(tid int) {
	h := l.s.GetProtected(tid, 0, &l.head)
	n := l.a.Get(h)
	GlobalNode = n // want:escape
	l.s.ClearAll(tid)
}

// LeakToGoroutine captures a raw node pointer in a go-closure, which
// outlives the operation's protections by construction.
func (l *VList) LeakToGoroutine(tid int) {
	h := l.s.GetProtected(tid, 0, &l.head)
	n := l.a.Get(h)
	go func() {
		_ = n.key // want:escape
	}()
	l.s.ClearAll(tid)
}

// SendNodePointer sends a raw node pointer across a channel.
func (l *VList) SendNodePointer(tid int, ch chan *VNode) {
	h := l.s.GetProtected(tid, 0, &l.head)
	ch <- l.a.Get(h) // want:escape
	l.s.ClearAll(tid)
}

// CopyPtrByValue forks a Ptr's protection bookkeeping; CopyPtr is the
// sanctioned spelling.
func CopyPtrByValue(p core.Ptr) core.Ptr {
	q := p // want:escape
	return q
}

// ExportedPeek returns a raw node pointer from an exported function.
func (l *VList) ExportedPeek(tid int) *VNode {
	h := l.s.GetProtected(tid, 0, &l.head)
	defer l.s.ClearAll(tid)
	return l.a.Get(h) // want:escape
}

// --- rule unsafe -----------------------------------------------------

// UnsafeNodePointer launders a node pointer through unsafe.Pointer,
// dodging the arena's generation check.
func (l *VList) UnsafeNodePointer(tid int) unsafe.Pointer {
	h := l.s.GetProtected(tid, 0, &l.head)
	defer l.s.ClearAll(tid)
	return unsafe.Pointer(l.a.Get(h)) // want:unsafe
}

// HandleToUintptr converts a handle to uintptr.
func HandleToUintptr(h arena.Handle) uintptr {
	return uintptr(h) // want:unsafe
}
