package violations

import "repro/internal/arena"

// SuppressedRawDeref shows the audited escape hatch: the pragma names
// the rule and a reason, so the raw deref below is intentionally
// silent and must NOT appear in the corpus findings.
func (l *VList) SuppressedRawDeref() uint64 {
	h := arena.Handle(l.head.Load())
	//orcvet:ignore protect corpus demo of the audited escape hatch
	return l.a.Get(h).key
}

// The pragma below suppresses nothing: a stale ignore is itself a
// finding, keeping the audit trail honest.
//
//orcvet:ignore retire stale on purpose, nothing below retires // want:pragma
func StalePragma() {}

// A pragma without a recognizable rule is malformed.
//
//orcvet:ignore because-reasons // want:pragma
func MalformedPragma() {}
