package orcvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// The repo bans third-party modules, so orcvet cannot lean on
// golang.org/x/tools (go/packages, go/analysis, unitchecker). This
// driver rebuilds the minimum loader on the stdlib: `go list -export
// -deps -json` enumerates packages and their gc export data, go/parser
// + go/types typecheck the target sources, and go/importer's gc
// importer reads the export files through a lookup function.

// ListedPackage is the subset of `go list -json` output the driver
// consumes.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// GoList runs `go list -e -export -deps -json` over patterns in dir and
// decodes the package stream.
func GoList(dir string, patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportIndex maps import paths to gc export files.
type ExportIndex map[string]string

// Index builds the export lookup table from a listed dependency set.
func Index(pkgs []*ListedPackage) ExportIndex {
	idx := ExportIndex{}
	for _, p := range pkgs {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
	}
	return idx
}

// Importer returns a types.Importer reading gc export data through idx,
// with importMap (vet.cfg's source-path → package-path map) applied
// first when non-nil.
func (idx ExportIndex) Importer(fset *token.FileSet, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		f, ok := idx[path]
		if !ok {
			return nil, fmt.Errorf("orcvet: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// TypecheckFiles parses and typechecks one package's sources, returning
// a ready Pass.
func TypecheckFiles(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Pass, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {}, // collect all; first error returned below
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// RunDir analyzes the packages matched by patterns (relative to dir)
// and returns all findings plus the fset that positions them.
func RunDir(dir string, patterns ...string) (*token.FileSet, []Diagnostic, error) {
	pkgs, err := GoList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	idx := Index(pkgs)
	fset := token.NewFileSet()
	var diags []Diagnostic
	var firstErr error
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
			}
			continue
		}
		if len(p.CgoFiles) > 0 {
			continue // no cgo in this repo; skip rather than mis-parse
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		pass, err := TypecheckFiles(fset, p.ImportPath, files, idx.Importer(fset, nil))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: typecheck: %v", p.ImportPath, err)
			}
			continue
		}
		diags = append(diags, Analyze(pass)...)
	}
	return fset, diags, firstErr
}

// Format renders one diagnostic the way vet tools conventionally do.
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: orcvet/%s: %s", fset.Position(d.Pos), d.Rule, d.Message)
}

// ModuleDir walks up from dir to the enclosing go.mod, for tests that
// need the module root.
func ModuleDir(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("orcvet: no go.mod above %s", dir)
		}
		dir = parent
	}
}
