package orcvet

import (
	"go/ast"
	"go/types"
	"strings"
)

// model resolves the repository's reclamation API surface against one
// package's type information: which types are handles, Ptrs, and
// arena-managed nodes, and what role each callee plays in the
// protection protocol.
type model struct {
	pass *Pass
	// nodeTypes are the named types this package manages through an
	// arena.Arena[T] / core.Domain[T] instantiation — the T whose *T
	// is a "raw node pointer".
	nodeTypes map[*types.Named]bool
}

const (
	arenaPath = "repro/internal/arena"
	corePath  = "repro/internal/core"
)

// callRole classifies a callee in the protection protocol.
type callRole int

const (
	roleNone callRole = iota

	// Dereference of a handle: arena Get/TryGet/Header/HdrA, Domain.Get.
	roleDeref

	// Protection sources. roleProtectArg protects an argument handle in
	// place (Scheme.Protect); roleProtectRet returns a protected handle
	// (GetProtected, LoadScratch, Exchange); rolePtrFill fills a *Ptr
	// argument (Domain.Load, Make, AdoptScratch, CopyPtr).
	roleProtectArg
	roleProtectRet
	rolePtrFill

	// Allocation: returns a fresh, unpublished handle.
	roleAlloc

	// Raw shared load: returns a handle nothing protects
	// (core.Atomic.Raw; atomic.Uint64.Load is caught at the conversion).
	roleRawLoad

	// Protection drops.
	roleClear    // Scheme.Clear(tid, idx)
	roleClearAll // Scheme.ClearAll(tid)
	rolePtrDrop  // Domain.Release / Domain.SetNil on a *Ptr

	// Reclamation handoff and the CAS that justifies it.
	roleRetire // Scheme.Retire(tid, h)
	roleFree   // arena Free/FreeT (alloc rollback or scheme free path)
	roleCAS    // any CompareAndSwap-shaped call
)

func newModel(pass *Pass) *model {
	m := &model{pass: pass, nodeTypes: map[*types.Named]bool{}}
	// Every generic instantiation whose origin lives in internal/arena
	// or internal/core contributes its type arguments: those are the
	// node types this package stores in arenas.
	for id, inst := range pass.Info.Instances {
		obj := pass.Info.Uses[id]
		if p := pkgPathOf(obj); p != arenaPath && p != corePath {
			continue
		}
		targs := inst.TypeArgs
		if targs == nil {
			continue
		}
		for i := 0; i < targs.Len(); i++ {
			if n, ok := dealias(targs.At(i)).(*types.Named); ok {
				m.nodeTypes[n] = true
			}
		}
	}
	return m
}

func dealias(t types.Type) types.Type { return types.Unalias(t) }

func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isHandle reports whether t is arena.Handle (possibly via alias).
func isHandle(t types.Type) bool {
	n, ok := dealias(t).(*types.Named)
	return ok && n.Obj().Name() == "Handle" && pkgPathOf(n.Obj()) == arenaPath
}

// isPtr reports whether t is core.Ptr (by value).
func isPtr(t types.Type) bool {
	n, ok := dealias(t).(*types.Named)
	return ok && n.Obj().Name() == "Ptr" && pkgPathOf(n.Obj()) == corePath
}

// isPtrPointer reports whether t is *core.Ptr.
func isPtrPointer(t types.Type) bool {
	p, ok := dealias(t).(*types.Pointer)
	return ok && isPtr(p.Elem())
}

// isNodePtr reports whether t is a raw pointer to an arena-managed node
// of this package.
func (m *model) isNodePtr(t types.Type) bool {
	p, ok := dealias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := dealias(p.Elem()).(*types.Named)
	return ok && m.nodeTypes[n]
}

// calleeFunc resolves the *types.Func a call invokes (through method
// values, instantiations, and interfaces), or nil.
func (m *model) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := m.pass.Info.Uses[fn].(*types.Func); ok {
			return origin(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := m.pass.Info.Selections[fn]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return origin(f)
			}
		}
		if f, ok := m.pass.Info.Uses[fn.Sel].(*types.Func); ok {
			return origin(f)
		}
	case *ast.IndexExpr: // explicit instantiation: f[T](...)
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			if f, ok := m.pass.Info.Uses[id].(*types.Func); ok {
				return origin(f)
			}
		}
	}
	return nil
}

func origin(f *types.Func) *types.Func {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

// sigHasHandle reports whether any parameter of f is handle-typed.
func sigHasHandle(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isHandle(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// roleOf classifies a resolved callee. Interface methods (the
// reclaim.Scheme surface) are matched by name and signature shape, so
// both `s.GetProtected(...)` through the interface and a concrete
// scheme receiver classify identically.
func (m *model) roleOf(f *types.Func) callRole {
	if f == nil {
		return roleNone
	}
	name := f.Name()
	sig, _ := f.Type().(*types.Signature)
	path := pkgPathOf(f)

	switch path {
	case arenaPath:
		switch name {
		case "Get", "Header", "HdrA":
			return roleDeref
		case "TryGet":
			// The sanctioned speculative read: TryGet validates the
			// generation and fails closed on a stale handle, so it is
			// exempt from protect-before-deref.
			return roleNone
		case "Alloc", "AllocT":
			return roleAlloc
		case "Free", "FreeT":
			return roleFree
		}
	case corePath:
		switch name {
		case "Get":
			return roleDeref
		case "Load", "Make", "AdoptScratch", "CopyPtr":
			return rolePtrFill
		case "LoadScratch", "Exchange":
			return roleProtectRet
		case "Release", "SetNil":
			return rolePtrDrop
		case "Raw":
			return roleRawLoad
		case "CAS":
			return roleCAS
		case "H":
			// Ptr.H is handled structurally (state of the receiver).
			return roleNone
		}
	}

	// Scheme-shaped methods, by name + signature, wherever they are
	// declared (the reclaim.Scheme interface, concrete schemes, or a
	// structure embedding one).
	if sig != nil && sig.Recv() != nil {
		switch name {
		case "GetProtected":
			if sig.Results().Len() > 0 && isHandle(sig.Results().At(0).Type()) {
				return roleProtectRet
			}
		case "Protect":
			if sigHasHandle(sig) {
				return roleProtectArg
			}
		case "Retire":
			if sigHasHandle(sig) {
				return roleRetire
			}
		case "Clear":
			if sig.Params().Len() == 2 {
				return roleClear
			}
		case "ClearAll":
			if sig.Params().Len() == 1 {
				return roleClearAll
			}
		}
	}

	// Anything CompareAndSwap-shaped counts as a CAS for the
	// retire-after-unlink justification: sync/atomic's CompareAndSwap,
	// Domain.CAS (above), or a package-local wrapper named *CAS*.
	if strings.Contains(name, "CompareAndSwap") || name == "CAS" ||
		strings.Contains(name, "compareAndSwap") || name == "cas" {
		return roleCAS
	}
	return roleNone
}

// isExchange reports whether f atomically exchanges a shared slot and
// returns the old value — which is therefore unlinked by construction
// and may be retired without a separate CAS.
func (m *model) isExchange(f *types.Func) bool {
	if f == nil {
		return false
	}
	switch pkgPathOf(f) {
	case corePath:
		return f.Name() == "Exchange"
	case "sync/atomic":
		return f.Name() == "Swap"
	}
	return false
}

// isAtomicLoad reports whether call is a .Load() on a sync/atomic value
// (the raw shared read rule protect exists to guard).
func (m *model) isAtomicLoad(call *ast.CallExpr) bool {
	f := m.calleeFunc(call)
	if f == nil || f.Name() != "Load" {
		return false
	}
	return pkgPathOf(f) == "sync/atomic"
}
