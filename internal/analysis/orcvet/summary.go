package orcvet

import (
	"go/ast"
	"go/types"
)

// funcSummary is the conservative interprocedural contract of one
// package-local function: which handle parameters it dereferences (so
// callers must pass protected handles) and which handle results are
// protected on every return path (so callers may dereference them).
type funcSummary struct {
	reqProtected []bool // per parameter
	retProtected []bool // per handle-typed result position, in result order
	// retFresh marks results that are fresh unpublished allocations on
	// every return path (an alloc helper): callers may dereference them
	// and — since there is nothing to unlink — retire them without a CAS.
	retFresh []bool
}

// computeSummaries runs the flow walk once per function in summary mode
// and records the contracts the checking pass consults at call sites.
// One iteration, with local calls treated as unknown: enough for the
// helper-plus-exported-ops shape the ds packages use, and conservative
// (an unproven contract just stays silent) for anything deeper.
func (c *checker) computeSummaries() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := c.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fs := c.newFuncState(fd, true)
			fs.block(fd.Body)

			sig := obj.Type().(*types.Signature)
			sum := &funcSummary{reqProtected: make([]bool, sig.Params().Len())}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if isHandle(p.Type()) && fs.derefdParams[p] {
					sum.reqProtected[i] = true
				}
			}
			sum.retProtected, sum.retFresh = foldResults(sig, fs.returns)
			if anyTrue(sum.reqProtected) || anyTrue(sum.retProtected) || anyTrue(sum.retFresh) {
				c.summaries[origin(obj)] = sum
			}
		}
	}
}

// foldResults folds the per-return states: a handle result is protected
// only if every return path proved it protected, fresh, or a root, and
// fresh only if every return path proved it a fresh allocation.
func foldResults(sig *types.Signature, returns [][]state) (prot, fresh []bool) {
	nres := sig.Results().Len()
	if nres == 0 || len(returns) == 0 {
		return nil, nil
	}
	// Positions of handle-typed results.
	handleIdx := []int{}
	for i := 0; i < nres; i++ {
		if isHandle(sig.Results().At(i).Type()) {
			handleIdx = append(handleIdx, i)
		}
	}
	if len(handleIdx) == 0 {
		return nil, nil
	}
	prot = make([]bool, nres)
	fresh = make([]bool, nres)
	for _, i := range handleIdx {
		prot[i] = true
		fresh[i] = true
	}
	for _, ret := range returns {
		if len(ret) != len(handleIdx) {
			// Bare return or unclassifiable shape: give up on all.
			return nil, nil
		}
		for k, st := range ret {
			if st != stProtected && st != stFresh && st != stRoot {
				prot[handleIdx[k]] = false
			}
			if st != stFresh {
				fresh[handleIdx[k]] = false
			}
		}
	}
	if !anyTrue(prot) {
		prot = nil
	}
	if !anyTrue(fresh) {
		fresh = nil
	}
	return prot, fresh
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}
