package orcvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// state is a handle/Ptr variable's position in the protection life
// cycle, as tracked by the lexical flow walk.
type state uint8

const (
	stUnknown   state = iota
	stProtected       // dominated by a successful protection
	stFresh           // fresh unpublished allocation (private to this thread)
	stRoot            // structure root (receiver field; immortal by convention)
	stRaw             // raw shared load, nothing protects it
	stReleased        // protection dropped (Clear/ClearAll/Release)
	stRetired         // handed to Retire/Free
)

func (s state) String() string {
	switch s {
	case stProtected:
		return "protected"
	case stFresh:
		return "fresh"
	case stRoot:
		return "root"
	case stRaw:
		return "unprotected"
	case stReleased:
		return "released"
	case stRetired:
		return "retired"
	default:
		return "unknown"
	}
}

type varInfo struct {
	st      state
	protIdx ast.Expr  // slot-index expression at protect time (for Clear matching)
	dropPos token.Pos // where the protection was dropped / the handle retired
}

// funcState is the per-function walk context.
type funcState struct {
	c       *checker
	decl    *ast.FuncDecl
	vars    map[*types.Var]*varInfo
	aliases map[*types.Var]*types.Var // handle copies: alias → original
	casSeen map[*types.Var]token.Pos  // earliest CAS naming the var
	// casExprs keys non-variable CAS operands (sr.successor, fields) by
	// their printed form. The ledger is monotone — a CAS inside a
	// terminating branch still counts as "a CAS naming the handle
	// precedes the retire", which is all rule retire promises.
	casExprs map[string]token.Pos
	// summary mode: collect instead of report.
	summarizing  bool
	derefdParams map[*types.Var]bool
	returns      [][]state // states of handle-typed results per return
	deferDepth   int
}

func (c *checker) newFuncState(decl *ast.FuncDecl, summarizing bool) *funcState {
	return &funcState{
		c:            c,
		decl:         decl,
		vars:         map[*types.Var]*varInfo{},
		aliases:      map[*types.Var]*types.Var{},
		casSeen:      map[*types.Var]token.Pos{},
		casExprs:     map[string]token.Pos{},
		summarizing:  summarizing,
		derefdParams: map[*types.Var]bool{},
	}
}

func (c *checker) checkFunc(decl *ast.FuncDecl) {
	fs := c.newFuncState(decl, false)
	fs.block(decl.Body)
}

func (fs *funcState) report(pos token.Pos, rule, format string, args ...any) {
	if fs.summarizing {
		return
	}
	fs.c.maybeReport(pos, rule, format, args...)
}

// objOf resolves an identifier to its variable object.
func (fs *funcState) objOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := fs.c.pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := fs.c.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// baseVar resolves e through handle-copy aliases to the variable the
// CAS ledger tracks.
func (fs *funcState) baseVar(v *types.Var) *types.Var {
	for i := 0; i < 8; i++ {
		o, ok := fs.aliases[v]
		if !ok {
			return v
		}
		v = o
	}
	return v
}

func (fs *funcState) info(v *types.Var) *varInfo {
	vi, ok := fs.vars[v]
	if !ok {
		vi = &varInfo{}
		fs.vars[v] = vi
	}
	return vi
}

func (fs *funcState) typeOf(e ast.Expr) types.Type {
	return fs.c.pass.Info.TypeOf(e)
}

// isParam reports whether v is a parameter of the function under
// analysis.
func (fs *funcState) isParam(v *types.Var) bool {
	if fs.decl.Type.Params == nil {
		return false
	}
	for _, f := range fs.decl.Type.Params.List {
		for _, n := range f.Names {
			if fs.c.pass.Info.Defs[n] == v {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Statement walk (source order; branches folded sequentially)

func (fs *funcState) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		fs.stmt(s)
	}
}

// foldBranch walks one arm of a conditional. A branch that terminates
// (ends in return, break, continue, goto, or panic) never reaches the
// code after the if, so its variable-state effects — the ClearAll in an
// early-return empty case, the Release before a continue — are
// discarded instead of folded into the continuation. The CAS ledger is
// exempt (see casExprs).
func (fs *funcState) foldBranch(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	if !terminatesBlock(b) {
		fs.block(b)
		return
	}
	saved := fs.snapshot()
	fs.block(b)
	fs.restore(saved)
}

type flowSnapshot struct {
	vars    map[*types.Var]varInfo
	aliases map[*types.Var]*types.Var
}

func (fs *funcState) snapshot() flowSnapshot {
	s := flowSnapshot{vars: map[*types.Var]varInfo{}, aliases: map[*types.Var]*types.Var{}}
	for v, vi := range fs.vars {
		s.vars[v] = *vi
	}
	for a, o := range fs.aliases {
		s.aliases[a] = o
	}
	return s
}

func (fs *funcState) restore(s flowSnapshot) {
	fs.vars = map[*types.Var]*varInfo{}
	for v, vi := range s.vars {
		vi := vi
		fs.vars[v] = &vi
	}
	fs.aliases = s.aliases
}

func terminatesBlock(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return terminates(b.List[len(b.List)-1])
}

// terminates reports whether control cannot flow past s into the next
// statement of the enclosing block.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminatesBlock(s)
	case *ast.IfStmt:
		if !terminatesBlock(s.Body) || s.Else == nil {
			return false
		}
		return terminates(s.Else)
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	}
	return false
}

func (fs *funcState) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		fs.expr(s.X)
	case *ast.AssignStmt:
		fs.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fs.valueSpec(vs)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		fs.expr(s.Cond)
		fs.foldBranch(s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			fs.foldBranch(e)
		case ast.Stmt:
			fs.stmt(e)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		if s.Cond != nil {
			fs.expr(s.Cond)
		}
		fs.block(s.Body)
		if s.Post != nil {
			fs.stmt(s.Post)
		}
	case *ast.RangeStmt:
		fs.expr(s.X)
		fs.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		if s.Tag != nil {
			fs.expr(s.Tag)
		}
		fs.block(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		fs.block(s.Body)
	case *ast.SelectStmt:
		fs.block(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			fs.expr(e)
		}
		for _, st := range s.Body {
			fs.stmt(st)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			fs.stmt(s.Comm)
		}
		for _, st := range s.Body {
			fs.stmt(st)
		}
	case *ast.BlockStmt:
		fs.block(s)
	case *ast.LabeledStmt:
		fs.stmt(s.Stmt)
	case *ast.ReturnStmt:
		fs.returnStmt(s)
	case *ast.DeferStmt:
		// Deferred drops (ClearAll, Release) run at function exit, not
		// here: record nothing, so the protections they eventually drop
		// stay live for the rest of the body. Deferred closures are the
		// release idiom and are not walked.
		fs.deferDepth++
		for _, a := range s.Call.Args {
			fs.expr(a)
		}
		fs.deferDepth--
	case *ast.GoStmt:
		fs.goStmt(s)
	case *ast.SendStmt:
		fs.expr(s.Value)
		if t := fs.typeOf(s.Value); t != nil && (fs.c.model.isNodePtr(t) || isPtr(t)) {
			fs.report(s.Arrow, RuleEscape,
				"%s sent on a channel: the receiver outlives the protection that makes it safe", describeType(t, fs.c.model))
		}
	case *ast.IncDecStmt:
		fs.expr(s.X)
	}
}

func describeType(t types.Type, m *model) string {
	if isPtr(t) {
		return "core.Ptr"
	}
	if m.isNodePtr(t) {
		return "raw node pointer"
	}
	return t.String()
}

// goStmt enforces the capture half of rule escape: a goroutine outlives
// the operation's protections by construction.
func (fs *funcState) goStmt(s *ast.GoStmt) {
	m := fs.c.model
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		scope := fs.c.pass.Info.Scopes[lit.Type]
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := fs.c.pass.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if scope != nil && scopeContains(scope, v) {
				return true // declared inside the closure (or a param of it)
			}
			if m.isNodePtr(v.Type()) || isPtr(v.Type()) {
				fs.report(id.Pos(), RuleEscape,
					"%s %q captured by a go-statement closure outlives the operation's protection", describeType(v.Type(), m), v.Name())
			}
			return true
		})
	}
	for _, a := range s.Call.Args {
		fs.expr(a)
		if t := fs.typeOf(a); t != nil && (m.isNodePtr(t) || isPtr(t)) {
			fs.report(a.Pos(), RuleEscape,
				"%s passed to a goroutine outlives the operation's protection", describeType(t, m))
		}
	}
}

// scopeContains reports whether v is declared within scope (including
// nested scopes).
func scopeContains(scope *types.Scope, v *types.Var) bool {
	pos := v.Pos()
	return scope.Pos() <= pos && pos <= scope.End()
}

func (fs *funcState) returnStmt(s *ast.ReturnStmt) {
	var states []state
	for _, e := range s.Results {
		fs.expr(e)
		t := fs.typeOf(e)
		if t == nil {
			continue
		}
		if isHandle(t) {
			states = append(states, fs.classify(e))
		}
		if fs.c.model.isNodePtr(t) && fs.decl.Name.IsExported() && !fs.summarizing {
			fs.report(e.Pos(), RuleEscape,
				"raw node pointer returned from exported %s escapes the protection scope", fs.decl.Name.Name)
		}
	}
	if fs.summarizing {
		if len(s.Results) == 0 {
			// Bare return with named results: give up (conservative).
			fs.returns = append(fs.returns, nil)
		} else {
			fs.returns = append(fs.returns, states)
		}
	}
}

// valueSpec handles `var x = expr` declarations.
func (fs *funcState) valueSpec(vs *ast.ValueSpec) {
	for _, e := range vs.Values {
		fs.expr(e)
	}
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Values) == len(vs.Names) {
		for i, n := range vs.Names {
			fs.bind(n, vs.Values[i], nil)
		}
	} else if len(vs.Values) == 1 {
		fs.bindTuple(identExprs(vs.Names), vs.Values[0])
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (fs *funcState) assign(s *ast.AssignStmt) {
	for _, e := range s.Rhs {
		fs.expr(e)
	}
	for _, e := range s.Lhs {
		// Walk index/selector bases for effects, but not plain idents
		// (they are binding targets, not reads).
		if _, ok := e.(*ast.Ident); !ok {
			fs.expr(e)
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			fs.bind(s.Lhs[i], s.Rhs[i], s)
		}
	} else if len(s.Rhs) == 1 {
		fs.bindTuple(s.Lhs, s.Rhs[0])
	}
}

// bind applies the state and escape consequences of one lhs = rhs pair.
func (fs *funcState) bind(lhs, rhs ast.Expr, _ *ast.AssignStmt) {
	m := fs.c.model
	rt := fs.typeOf(rhs)

	// Rule escape: raw node pointers and Ptrs must not be stored
	// anywhere that outlives the operation.
	if rt != nil && (m.isNodePtr(rt) || isPtr(rt)) {
		fs.checkEscapingStore(lhs, rt)
	}
	// Rule escape: a core.Ptr copied by value forks its protection
	// bookkeeping (index sharing, usedHaz counts) outside the domain's
	// control; CopyPtr is the sanctioned spelling.
	if rt != nil && isPtr(rt) && !isCreationExpr(rhs) {
		fs.report(rhs.Pos(), RuleEscape,
			"core.Ptr copied by value; use Domain.CopyPtr so the protection indices stay owned by the domain")
	}

	lv := fs.objOf(lhs)
	if lv == nil {
		return
	}
	if rt != nil && isHandle(rt) {
		st := fs.classify(rhs)
		vi := fs.info(lv)
		vi.st = st
		vi.protIdx = nil
		delete(fs.aliases, lv)
		if rv := fs.objOf(fs.stripHandleOps(rhs)); rv != nil && rv != lv {
			fs.aliases[lv] = rv
		}
		// A reassigned variable sheds its CAS history: the unlink
		// justified retiring the old value, not the new one...
		delete(fs.casSeen, lv)
		// ...unless the assigned value itself is CAS-named: `target =
		// sr.leaf` after a CAS on sr.leaf carries the justification to
		// target.
		src := fs.stripHandleOps(rhs)
		if rv := fs.objOf(src); rv != nil {
			if pos, ok := fs.casSeen[rv]; ok {
				fs.casSeen[lv] = pos
			}
		} else if pos, ok := fs.casExprs[exprKey(src)]; ok {
			fs.casSeen[lv] = pos
		} else if call, ok := ast.Unparen(src).(*ast.CallExpr); ok &&
			fs.c.model.isExchange(fs.c.model.calleeFunc(call)) {
			// The old value out of an atomic Swap/Exchange was unlinked
			// by the exchange itself; no separate CAS is required.
			fs.casSeen[lv] = call.Pos()
		}
	}
}

// bindTuple handles multi-value assignments from one call.
func (fs *funcState) bindTuple(lhs []ast.Expr, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	role := fs.c.model.roleOf(fs.c.model.calleeFunc(call))
	var sum *funcSummary
	if f := fs.c.model.calleeFunc(call); f != nil {
		sum = fs.c.summaries[f]
	}
	for i, l := range lhs {
		lv := fs.objOf(l)
		if lv == nil {
			continue
		}
		t := lv.Type()
		switch {
		case isHandle(t):
			vi := fs.info(lv)
			delete(fs.aliases, lv)
			delete(fs.casSeen, lv)
			switch {
			case role == roleAlloc:
				vi.st = stFresh
			case role == roleProtectRet || role == rolePtrFill:
				vi.st = stProtected
			case sum != nil && i < len(sum.retFresh) && sum.retFresh[i]:
				vi.st = stFresh
			case sum != nil && i < len(sum.retProtected) && sum.retProtected[i]:
				vi.st = stProtected
			default:
				vi.st = stUnknown
			}
		case fs.c.model.isNodePtr(t):
			// Raw node pointers are tracked purely by type at the
			// escape sites; nothing to record here.
		}
	}
}

// checkEscapingStore reports stores of raw node pointers / Ptrs into
// locations that outlive the function's protection scope.
func (fs *funcState) checkEscapingStore(lhs ast.Expr, rt types.Type) {
	m := fs.c.model
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := fs.c.pass.Info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			fs.report(l.Pos(), RuleEscape,
				"%s stored to field %s outlives the protection that makes it safe; store an arena.Handle instead", describeType(rt, m), l.Sel.Name)
		} else if v, ok := fs.c.pass.Info.Uses[l.Sel].(*types.Var); ok && v.IsField() {
			fs.report(l.Pos(), RuleEscape,
				"%s stored to field %s outlives the protection that makes it safe; store an arena.Handle instead", describeType(rt, m), l.Sel.Name)
		}
	case *ast.Ident:
		if v, ok := fs.c.pass.Info.Uses[l].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			fs.report(l.Pos(), RuleEscape,
				"%s stored to package-level variable %s outlives every protection", describeType(rt, m), v.Name())
		}
	}
}

// isCreationExpr reports whether e constructs a value rather than
// copying an existing one (zero literals, conversions of zero values).
func isCreationExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		_ = e
		return true // function results transfer, they don't fork a live Ptr
	}
	return false
}

// stripHandleOps unwraps tag-manipulation methods and genuine type
// conversions so aliasing and the CAS ledger track the underlying
// expression. Ordinary single-argument calls are NOT stripped — only
// calls whose Fun typechecks as a type.
func (fs *funcState) stripHandleOps(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Unmarked", "Marked", "WithMark", "WithFlag":
					e = sel.X
					continue
				}
			}
			if tv, ok := fs.c.pass.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return e
		default:
			return e
		}
	}
}

// ---------------------------------------------------------------------
// Expression walk: apply protocol effects, check derefs.

func (fs *funcState) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		fs.call(e)
	case *ast.ParenExpr:
		fs.expr(e.X)
	case *ast.UnaryExpr:
		fs.expr(e.X)
	case *ast.BinaryExpr:
		fs.expr(e.X)
		fs.expr(e.Y)
	case *ast.SelectorExpr:
		fs.expr(e.X)
	case *ast.IndexExpr:
		fs.expr(e.X)
		fs.expr(e.Index)
	case *ast.IndexListExpr:
		fs.expr(e.X)
	case *ast.SliceExpr:
		fs.expr(e.X)
		fs.expr(e.Low)
		fs.expr(e.High)
		fs.expr(e.Max)
	case *ast.StarExpr:
		fs.expr(e.X)
	case *ast.TypeAssertExpr:
		fs.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fs.expr(kv.Value)
			} else {
				fs.expr(el)
			}
		}
	case *ast.KeyValueExpr:
		fs.expr(e.Value)
	case *ast.FuncLit:
		// Closure bodies are not walked: deferred releases and helper
		// closures run under the caller's discipline. (Soundness
		// caveat, DESIGN §10.)
	}
}

// call applies one call's protocol effects.
func (fs *funcState) call(call *ast.CallExpr) {
	m := fs.c.model

	// Conversions first: Handle(x.Load()) and friends classify at the
	// deref/assignment site; still walk the operand.
	if tv, ok := fs.c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			fs.expr(a)
		}
		return
	}

	// Walk receiver and arguments before applying the callee's effect.
	fs.expr(call.Fun)
	for _, a := range call.Args {
		fs.expr(a)
	}

	f := m.calleeFunc(call)
	role := m.roleOf(f)

	switch role {
	case roleDeref:
		if len(call.Args) > 0 {
			fs.checkDeref(call.Args[0], call)
		}
	case roleProtectArg: // Protect(tid, idx, h)
		if len(call.Args) >= 3 {
			if v := fs.objOf(fs.stripHandleOps(call.Args[2])); v != nil {
				vi := fs.info(v)
				vi.st = stProtected
				vi.protIdx = call.Args[1]
			}
		}
	case rolePtrFill:
		fs.fillPtrArg(call, f)
	case rolePtrDrop:
		if fs.deferDepth == 0 {
			for _, a := range call.Args {
				if v := fs.ptrArgVar(a); v != nil {
					vi := fs.info(v)
					vi.st = stReleased
					vi.dropPos = call.Pos()
				}
			}
		}
	case roleClear: // Clear(tid, idx): drop protections published at idx
		if fs.deferDepth == 0 && len(call.Args) >= 2 {
			for _, vi := range fs.vars {
				if vi.st == stProtected && vi.protIdx != nil && literalEq(vi.protIdx, call.Args[1]) {
					vi.st = stReleased
					vi.dropPos = call.Pos()
				}
			}
		}
	case roleClearAll:
		if fs.deferDepth == 0 {
			for v, vi := range fs.vars {
				if vi.st == stProtected && (isHandle(v.Type()) || isPtr(v.Type())) {
					vi.st = stReleased
					vi.dropPos = call.Pos()
				}
			}
		}
	case roleRetire:
		fs.retireCall(call)
	case roleFree:
		if n := len(call.Args); n > 0 {
			if v := fs.objOf(fs.stripHandleOps(call.Args[n-1])); v != nil {
				vi := fs.info(v)
				vi.st = stRetired
				vi.dropPos = call.Pos()
			}
		}
	case roleCAS:
		fs.recordCAS(call)
	}

	// Call-site enforcement of package-local summaries: a helper that
	// dereferences its parameter extends the protection obligation to
	// its callers.
	if sum := fs.c.summaries[f]; sum != nil {
		sig, _ := f.Type().(*types.Signature)
		for i, a := range call.Args {
			if i >= len(sum.reqProtected) || !sum.reqProtected[i] {
				continue
			}
			switch fs.classify(a) {
			case stRaw:
				fs.report(a.Pos(), RuleProtect,
					"unprotected handle passed to %s, which dereferences it (parameter %s)", f.Name(), paramName(sig, i))
			case stReleased:
				fs.report(a.Pos(), RuleProtect,
					"handle passed to %s after its protection was dropped (parameter %s)", f.Name(), paramName(sig, i))
			case stRetired:
				fs.report(a.Pos(), RuleRetire,
					"retired handle passed to %s, which dereferences it (parameter %s)", f.Name(), paramName(sig, i))
			}
		}
	}
}

func paramName(sig *types.Signature, i int) string {
	if sig == nil || i >= sig.Params().Len() {
		return "?"
	}
	return sig.Params().At(i).Name()
}

// fillPtrArg marks the destination *core.Ptr argument of Load/Make/
// AdoptScratch/CopyPtr as protected.
func (fs *funcState) fillPtrArg(call *ast.CallExpr, f *types.Func) {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil {
		return
	}
	for i, a := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if !isPtrPointer(sig.Params().At(i).Type()) {
			continue
		}
		if v := fs.ptrArgVar(a); v != nil {
			fs.info(v).st = stProtected
		}
		// Only the first *Ptr parameter is the destination (CopyPtr's
		// src stays whatever it was).
		break
	}
}

// ptrArgVar resolves &p / p (of type *core.Ptr or core.Ptr) to p's var.
func (fs *funcState) ptrArgVar(a ast.Expr) *types.Var {
	e := ast.Unparen(a)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	v := fs.objOf(e)
	if v == nil {
		return nil
	}
	if isPtr(v.Type()) || isPtrPointer(v.Type()) {
		return v
	}
	return nil
}

// retireCall enforces rule retire at a Scheme.Retire site.
func (fs *funcState) retireCall(call *ast.CallExpr) {
	n := len(call.Args)
	if n == 0 {
		return
	}
	arg := call.Args[n-1]
	// A fresh, never-published allocation has nothing to unlink: retiring
	// it (alloc-rollback, scheme unit tests) needs no CAS.
	if fs.classify(arg) == stFresh {
		if v := fs.objOf(fs.stripHandleOps(arg)); v != nil {
			vi := fs.info(v)
			vi.st = stRetired
			vi.dropPos = call.Pos()
		}
		return
	}
	stripped := fs.stripHandleOps(arg)
	v := fs.objOf(stripped)
	if v == nil {
		// Non-variable operand (sr.successor and friends): match by the
		// printed expression against the CAS ledger.
		if _, ok := fs.casExprs[exprKey(stripped)]; !ok {
			fs.report(call.Pos(), RuleRetire,
				"Retire(%s) is not justified by a CAS naming it: retire must follow a successful unlink", exprKey(stripped))
		}
		return
	}
	base := fs.baseVar(v)
	_, casV := fs.casSeen[v]
	_, casB := fs.casSeen[base]
	if !casV && !casB {
		fs.report(call.Pos(), RuleRetire,
			"Retire(%s) is not justified by a CAS naming %s: retire must follow a successful unlink", v.Name(), v.Name())
	}
	vi := fs.info(v)
	vi.st = stRetired
	vi.dropPos = call.Pos()
}

// recordCAS registers every handle-typed operand named in a CAS call as
// unlink-justified from this point on — variables in casSeen,
// non-variable expressions (fields of a seek record) in casExprs.
func (fs *funcState) recordCAS(call *ast.CallExpr) {
	record := func(e ast.Expr) {
		stripped := fs.stripHandleOps(e)
		if v := fs.objOf(stripped); v != nil {
			if isHandle(v.Type()) {
				if _, ok := fs.casSeen[v]; !ok {
					fs.casSeen[v] = call.Pos()
				}
			}
			return
		}
		if t := fs.typeOf(stripped); t != nil && isHandle(t) {
			key := exprKey(stripped)
			if _, ok := fs.casExprs[key]; !ok {
				fs.casExprs[key] = call.Pos()
			}
		}
	}
	for _, a := range call.Args {
		record(a)
	}
	// The receiver's operand can also name the handle (h.CompareAndSwap…).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		record(sel.X)
	}
}

// exprKey renders an expression for ledger matching (sr.successor,
// r.succs[0]).
func exprKey(e ast.Expr) string {
	return types.ExprString(e)
}

// literalEq reports whether two index expressions are the same basic
// literal or the same identifier.
func literalEq(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	if la, ok := a.(*ast.BasicLit); ok {
		lb, ok := b.(*ast.BasicLit)
		return ok && la.Value == lb.Value
	}
	if ia, ok := a.(*ast.Ident); ok {
		ib, ok := b.(*ast.Ident)
		return ok && ia.Name == ib.Name
	}
	return false
}

// checkDeref enforces rule protect at one dereference site.
func (fs *funcState) checkDeref(arg ast.Expr, call *ast.CallExpr) {
	st := fs.classify(arg)
	switch st {
	case stRaw:
		fs.report(call.Pos(), RuleProtect,
			"dereference of an unprotected shared load: protect the handle (GetProtected/Load) before Get")
	case stReleased:
		fs.report(call.Pos(), RuleProtect,
			"dereference after the handle's protection was dropped")
	case stRetired:
		fs.report(call.Pos(), RuleRetire,
			"dereference of a handle already passed to Retire/Free")
	case stUnknown:
		if fs.summarizing {
			if v := fs.objOf(fs.stripHandleOps(arg)); v != nil && fs.isParam(v) {
				fs.derefdParams[v] = true
			}
		}
	}
}

// classify resolves an expression's protection state, side-effect free.
func (fs *funcState) classify(e ast.Expr) state {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		v := fs.objOf(x)
		if v == nil {
			return stUnknown
		}
		if vi, ok := fs.vars[v]; ok {
			return vi.st
		}
		return stUnknown
	case *ast.SelectorExpr:
		// Field access: a handle stored in a struct field is a
		// structure root by this analysis's convention (the soundness
		// caveat: it can also be a stale cache — DESIGN §10).
		if sel, ok := fs.c.pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return stRoot
		}
		if v, ok := fs.c.pass.Info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			return stRoot
		}
		return stUnknown
	case *ast.CallExpr:
		return fs.classifyCall(x)
	case *ast.UnaryExpr:
		return fs.classify(x.X)
	}
	return stUnknown
}

func (fs *funcState) classifyCall(call *ast.CallExpr) state {
	m := fs.c.model
	// Conversion: classify the operand (Handle(x.Load()) is a raw load).
	if tv, ok := fs.c.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		inner := ast.Unparen(call.Args[0])
		if ic, ok := inner.(*ast.CallExpr); ok && m.isAtomicLoad(ic) {
			return stRaw
		}
		return fs.classify(call.Args[0])
	}
	f := m.calleeFunc(call)
	if f != nil {
		// Handle methods that pass the value through.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch f.Name() {
			case "Unmarked":
				return fs.classify(sel.X)
			case "H":
				if pkgPathOf(f) == corePath {
					return fs.classify(sel.X) // state of the Ptr variable
				}
			}
		}
	}
	switch m.roleOf(f) {
	case roleProtectRet, rolePtrFill:
		return stProtected
	case roleAlloc:
		return stFresh
	case roleRawLoad:
		return stRaw
	}
	if m.isAtomicLoad(call) {
		return stRaw
	}
	if sum := fs.c.summaries[f]; sum != nil {
		if len(sum.retFresh) > 0 && sum.retFresh[0] {
			return stFresh
		}
		if len(sum.retProtected) > 0 && sum.retProtected[0] {
			return stProtected
		}
	}
	return stUnknown
}
