package orcvet

import (
	"go/ast"
	"go/types"
)

// checkUnsafe enforces rule unsafe: unsafe.Pointer / uintptr
// conversions touching arena-managed memory are only legal inside
// internal/arena and internal/core. Everywhere else, a handle is the
// only sanctioned name for a node, and the arena's generation check is
// the only sanctioned way back to memory — a raw pointer smuggled
// around it dodges exactly the use-after-free detection the repo
// exists to study.
func (c *checker) checkUnsafe(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := c.pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() || len(call.Args) != 1 {
			return true
		}
		dst := tv.Type
		src := c.pass.Info.TypeOf(call.Args[0])
		if src == nil {
			return true
		}
		if c.unsafeConversionTouchesArena(dst, src) {
			c.maybeReport(call.Pos(), RuleUnsafe,
				"%s conversion of arena-managed memory outside internal/arena and internal/core", types.TypeString(dst, nil))
		}
		return true
	})
}

func (c *checker) unsafeConversionTouchesArena(dst, src types.Type) bool {
	if isUnsafeOrUintptr(dst) {
		return c.arenaManaged(src)
	}
	// The cast back: (*Node)(unsafe.Pointer(...)) or Handle(uintptr-ish).
	if isUnsafeOrUintptr(src) {
		return c.arenaManaged(dst)
	}
	return false
}

func isUnsafeOrUintptr(t types.Type) bool {
	switch t := dealias(t).(type) {
	case *types.Basic:
		return t.Kind() == types.Uintptr || t.Kind() == types.UnsafePointer
	case *types.Pointer:
		return false
	}
	return false
}

// arenaManaged reports whether t names arena-managed memory: a Handle,
// a node type of this package, or a pointer to one.
func (c *checker) arenaManaged(t types.Type) bool {
	if isHandle(t) || isPtr(t) {
		return true
	}
	if c.model.isNodePtr(t) {
		return true
	}
	if p, ok := dealias(t).(*types.Pointer); ok {
		if n, ok := dealias(p.Elem()).(*types.Named); ok && c.model.nodeTypes[n] {
			return true
		}
	}
	return false
}
