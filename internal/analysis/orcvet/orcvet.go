// Package orcvet statically enforces the repository's OrcGC protection
// discipline — the invariant the paper's safety argument rests on and
// the torture harness (DESIGN §8) can only witness dynamically for the
// schedules it happens to explore. Four rules, checked per function
// body over the typed AST:
//
//	protect  (protect-before-deref): every dereference of an
//	         arena.Handle — arena.Get/Header/HdrA, Domain.Get; TryGet
//	         is exempt as the generation-validated speculative read —
//	         must be dominated by a successful protection of the same
//	         value (Scheme.GetProtected/Protect, Domain.Load/
//	         LoadScratch/Make/Exchange, a live core.Ptr), or the value
//	         must be a structure root (receiver field) or a fresh
//	         unpublished allocation. Dereferencing a raw shared load
//	         (arena.Handle(x.Load()), Atomic.Raw()) or a handle whose
//	         protection was dropped (Clear/ClearAll/Release) is
//	         reported.
//
//	escape   (no-escape-past-release): a raw node pointer (*T obtained
//	         from a deref) or a core.Ptr must not outlive the
//	         protection that makes it safe: no stores to struct fields
//	         or package-level variables, no channel sends, no capture
//	         by go-statement closures, no by-value core.Ptr copies
//	         (copying a Ptr forks its protection bookkeeping), and no
//	         raw node pointers returned from exported functions.
//
//	retire   (retire-after-unlink): Scheme.Retire arguments must be
//	         provably unlinked — a CAS naming the handle must precede
//	         the retire in the function — and the handle must not be
//	         dereferenced or re-protected afterwards (use-after-retire,
//	         the shape of both TBKP helping races PR 4 fixed).
//
//	unsafe   (raw-pointer hygiene): unsafe.Pointer / uintptr
//	         conversions of arena-managed node pointers or
//	         arena.Handle values are only legal inside internal/arena
//	         and internal/core, the two packages that own the
//	         handle↔memory mapping.
//
// The analysis is deliberately a conservative lexical approximation,
// not a sound dataflow: statements are interpreted in source order,
// branches are folded into one sequential trace, and unknown values
// stay silent. The goal is the reviewer's checklist, mechanized: zero
// noise on the committed tree, and every seeded violation in the
// testdata corpus caught. Soundness caveats are catalogued in DESIGN
// §10.
//
// Deliberate violations are suppressed line-by-line with
//
//	//orcvet:ignore <rule> <reason>
//
// on the offending line or the line above, or — for files whose whole
// design exempts a rule (the _leak baselines never reclaim; the
// epoch-protected skiplist keeps raw loads dereferenceable by pinning
// the epoch in BeginOp) — file-wide with
//
//	//orcvet:file-ignore <rule> <reason>
//
// Both forms require a rule name and a non-empty reason so every
// suppression stays auditable; malformed and stale pragmas are
// themselves reported.
package orcvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Version is reported through the vettool -V protocol; bump when rule
// semantics change so the go command's action cache re-runs the pass.
const Version = "v0.3.0"

// Rule names, as they appear in diagnostics and ignore pragmas.
const (
	RuleProtect = "protect"
	RuleEscape  = "escape"
	RuleRetire  = "retire"
	RuleUnsafe  = "unsafe"
	RulePragma  = "pragma"
)

var allRules = []string{RuleProtect, RuleEscape, RuleRetire, RuleUnsafe}

// exemptPkgs own the handle↔memory mapping (rule unsafe) and the
// protection machinery itself (rules protect/retire would be
// tautological inside them).
var exemptPkgs = map[string]bool{
	"repro/internal/arena": true,
	"repro/internal/core":  true,
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}

// Pass is one package's analysis input: the typed syntax the driver
// (standalone, vettool, or test) assembled.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyze runs every rule over one package and returns the unsuppressed
// findings in file/position order.
func Analyze(pass *Pass) []Diagnostic {
	c := &checker{
		pass:      pass,
		model:     newModel(pass),
		summaries: map[*types.Func]*funcSummary{},
	}
	if exemptPkgs[pass.Pkg.Path()] {
		// The machinery packages get only the pragma lint: their
		// internals are the discipline being enforced elsewhere.
		c.checkPragmas()
		return c.finish()
	}
	c.computeSummaries()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
		c.checkUnsafe(f)
	}
	c.checkPragmas()
	return c.finish()
}

type checker struct {
	pass      *Pass
	model     *model
	summaries map[*types.Func]*funcSummary
	diags     []Diagnostic
	// pragmas holds each file's parsed //orcvet: directives, collected
	// lazily per file.
	pragmas map[*ast.File]*filePragmas
	// usedPragmas records which pragmas suppressed something, so dead
	// pragmas can be reported (a stale ignore is a lie in the audit
	// trail).
	usedPragmas map[string]bool
}

type pragma struct {
	rule   string
	reason string
	pos    token.Pos
	bad    bool // malformed: missing/unknown rule or missing reason
	file   bool // //orcvet:file-ignore — covers the whole file
}

type filePragmas struct {
	byLine map[int]pragma
	byRule map[string]pragma // file-level, rule → pragma
	all    []pragma
}

func (c *checker) reportf(pos token.Pos, rule, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Pos: pos, Rule: rule, Message: fmt.Sprintf(format, args...)})
}

// parsePragmas scans a file's comments for //orcvet:ignore and
// //orcvet:file-ignore directives.
func (c *checker) parsePragmas(f *ast.File) *filePragmas {
	if c.pragmas == nil {
		c.pragmas = map[*ast.File]*filePragmas{}
	}
	if fp, ok := c.pragmas[f]; ok {
		return fp
	}
	fp := &filePragmas{byLine: map[int]pragma{}, byRule: map[string]pragma{}}
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			rest, ok := strings.CutPrefix(cm.Text, "//orcvet:")
			if !ok {
				continue
			}
			p := pragma{pos: cm.Pos()}
			var body string
			switch {
			case strings.HasPrefix(rest, "file-ignore"):
				p.file = true
				body = strings.TrimPrefix(rest, "file-ignore")
			case strings.HasPrefix(rest, "ignore"):
				body = strings.TrimPrefix(rest, "ignore")
			default:
				p.bad = true // unknown directive
			}
			if !p.bad {
				fields := strings.Fields(body)
				if len(fields) < 2 {
					p.bad = true
				} else {
					p.rule = fields[0]
					p.reason = strings.Join(fields[1:], " ")
					if !validRule(p.rule) {
						p.bad = true
					}
				}
			}
			fp.all = append(fp.all, p)
			if p.bad {
				continue
			}
			if p.file {
				fp.byRule[p.rule] = p
			} else {
				fp.byLine[c.pass.Fset.Position(cm.Pos()).Line] = p
			}
		}
	}
	c.pragmas[f] = fp
	return fp
}

func validRule(r string) bool {
	for _, k := range allRules {
		if k == r {
			return true
		}
	}
	return false
}

// suppressed reports whether a finding at pos with the given rule is
// covered by an ignore pragma on the same line or the line above, or by
// a file-level //orcvet:file-ignore for the rule.
func (c *checker) suppressed(pos token.Pos, rule string) bool {
	f := c.fileFor(pos)
	if f == nil {
		return false
	}
	fp := c.parsePragmas(f)
	line := c.pass.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		if p, ok := fp.byLine[l]; ok && p.rule == rule {
			c.markUsed(p)
			return true
		}
	}
	if p, ok := fp.byRule[rule]; ok {
		c.markUsed(p)
		return true
	}
	return false
}

func (c *checker) markUsed(p pragma) {
	if c.usedPragmas == nil {
		c.usedPragmas = map[string]bool{}
	}
	c.usedPragmas[pragmaKey(c.pass.Fset, p.pos)] = true
}

func pragmaKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

func (c *checker) fileFor(pos token.Pos) *ast.File {
	for _, f := range c.pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// checkPragmas reports malformed pragmas and pragmas that suppressed
// nothing.
func (c *checker) checkPragmas() {
	for _, f := range c.pass.Files {
		for _, p := range c.parsePragmas(f).all {
			if p.bad {
				c.reportf(p.pos, RulePragma,
					"malformed //orcvet: pragma: want //orcvet:ignore <rule> <reason> or //orcvet:file-ignore <rule> <reason>, rules are %s",
					strings.Join(allRules, "|"))
				continue
			}
			if !c.usedPragmas[pragmaKey(c.pass.Fset, p.pos)] {
				form := "ignore"
				if p.file {
					form = "file-ignore"
				}
				c.reportf(p.pos, RulePragma,
					"//orcvet:%s %s suppresses nothing (stale pragma?)", form, p.rule)
			}
		}
	}
}

// finish filters suppressed findings and orders the rest.
func (c *checker) finish() []Diagnostic {
	// Suppression runs here, after all rules, so usedPragmas is
	// complete before checkPragmas — but checkPragmas already ran.
	// Order of operations: rules record into diags unsuppressed-checked
	// at report time via reportf callers using maybeReport; pragma
	// findings are never suppressible.
	sort.Slice(c.diags, func(i, j int) bool { return c.diags[i].Pos < c.diags[j].Pos })
	return c.diags
}

// maybeReport files a finding unless an ignore pragma covers it.
func (c *checker) maybeReport(pos token.Pos, rule, format string, args ...any) {
	if c.suppressed(pos, rule) {
		return
	}
	c.reportf(pos, rule, format, args...)
}
