package orcvet

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// This file implements the `go vet -vettool=` side of the tool. The go
// command drives a vettool through a small unitchecker-style protocol:
//
//	tool -V=full        → print "<name> version <version>" (cache key)
//	tool -flags         → print a JSON array of supported flags
//	tool <dir>/vet.cfg  → analyze one compilation unit described by the
//	                      JSON config, write the VetxOutput facts file,
//	                      print diagnostics to stderr, exit 2 on findings
//
// Dependency packages arrive as VetxOnly units: orcvet carries no
// cross-package facts, so those just write an empty vetx file and exit.

// VetConfig mirrors the vet.cfg JSON the go command writes per unit.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit executes one vet.cfg action. It returns the number of
// diagnostics printed to stderr; the caller maps that to the exit code.
func RunVetUnit(cfgPath string, stderr io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("orcvet: parsing %s: %v", cfgPath, err)
	}

	// orcvet produces no facts, but the go command requires the output
	// file to exist before it will cache or consume the action.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("orcvet\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] || len(cfg.GoFiles) == 0 {
		return 0, nil
	}

	fset := token.NewFileSet()
	idx := ExportIndex{}
	for path, file := range cfg.PackageFile {
		idx[path] = file
	}
	pass, err := TypecheckFiles(fset, cfg.ImportPath, cfg.GoFiles, idx.Importer(fset, cfg.ImportMap))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("orcvet: %s: typecheck: %v", cfg.ImportPath, err)
	}
	diags := Analyze(pass)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.Pos), vetMessage(d))
	}
	return len(diags), nil
}

// vetMessage prefixes the rule so a finding reads
// "file.go:12:3: orcvet/protect: ...".
func vetMessage(d Diagnostic) string {
	return fmt.Sprintf("orcvet/%s: %s", d.Rule, d.Message)
}

// PrintVersion answers -V=full. The go command hashes this line into
// its action cache, so Version must change when rule semantics do, and
// must not be "(devel)" (which defeats caching and is rejected).
func PrintVersion(w io.Writer) {
	fmt.Fprintf(w, "orcvet version %s\n", Version)
}

// PrintFlags answers -flags: orcvet takes no tool-specific flags.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}
