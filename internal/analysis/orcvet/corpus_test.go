package orcvet_test

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/orcvet"
)

const corpusPattern = "./internal/analysis/orcvet/testdata/violations"

var wantRe = regexp.MustCompile(`// want:([a-z]+)`)

// wantMarkers extracts file:line→rule expectations from the corpus
// sources.
func wantMarkers(t *testing.T, dir string) map[string]string {
	t.Helper()
	want := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d", path, i+1)] = m[1]
			}
		}
	}
	return want
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := orcvet.ModuleDir(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func keyOf(fset *token.FileSet, d orcvet.Diagnostic) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// TestCorpus proves every seeded violation fires under exactly the rule
// its marker names, the suppressed fixture stays silent, and nothing
// unexpected fires.
func TestCorpus(t *testing.T) {
	root := moduleRoot(t)
	fset, diags, err := orcvet.RunDir(root, corpusPattern)
	if err != nil {
		t.Fatalf("RunDir: %v", err)
	}
	want := wantMarkers(t, filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(corpusPattern, "./"))))
	if len(want) < 8 {
		t.Fatalf("corpus has only %d seeded violations; want at least 8", len(want))
	}
	perRule := map[string]int{}
	for _, r := range want {
		perRule[r]++
	}
	for _, r := range []string{"protect", "escape", "retire", "unsafe"} {
		if perRule[r] < 2 {
			t.Errorf("corpus seeds %d %s violations; want >=2", perRule[r], r)
		}
	}

	got := map[string]string{}
	for _, d := range diags {
		k := keyOf(fset, d)
		if prev, dup := got[k]; dup {
			t.Errorf("two findings on %s: %s and %s", k, prev, d.Rule)
		}
		got[k] = d.Rule
	}
	for k, rule := range want {
		if got[k] != rule {
			t.Errorf("marker %s: want rule %s, got %q", k, rule, got[k])
		}
	}
	for k, rule := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("unseeded finding %s: %s", k, rule)
		}
	}
}

// TestCorpusVetUnit drives the same corpus through the vettool protocol
// path (vet.cfg → RunVetUnit) and checks the finding count matches.
func TestCorpusVetUnit(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := orcvet.GoList(root, corpusPattern)
	if err != nil {
		t.Fatal(err)
	}
	idx := orcvet.Index(pkgs)
	var target *orcvet.ListedPackage
	for _, p := range pkgs {
		if !p.DepOnly && strings.HasSuffix(p.ImportPath, "testdata/violations") {
			target = p
		}
	}
	if target == nil {
		t.Fatal("corpus package not listed")
	}
	var files []string
	for _, f := range target.GoFiles {
		files = append(files, filepath.Join(target.Dir, f))
	}
	tmp := t.TempDir()
	cfg := orcvet.VetConfig{
		ID:          target.ImportPath,
		Compiler:    "gc",
		Dir:         target.Dir,
		ImportPath:  target.ImportPath,
		GoFiles:     files,
		PackageFile: map[string]string(idx),
		VetxOutput:  filepath.Join(tmp, "out.vetx"),
	}
	cfgPath := filepath.Join(tmp, "vet.cfg")
	writeJSON(t, cfgPath, cfg)

	var sb strings.Builder
	n, err := orcvet.RunVetUnit(cfgPath, &sb)
	if err != nil {
		t.Fatalf("RunVetUnit: %v\n%s", err, sb.String())
	}
	want := wantMarkers(t, target.Dir)
	if n != len(want) {
		t.Errorf("vet unit reported %d findings, corpus seeds %d:\n%s", n, len(want), sb.String())
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}

	// A dependency-only action must write its vetx file and stay silent.
	depCfg := cfg
	depCfg.VetxOnly = true
	depCfg.VetxOutput = filepath.Join(tmp, "dep.vetx")
	depPath := filepath.Join(tmp, "dep.cfg")
	writeJSON(t, depPath, depCfg)
	var depOut strings.Builder
	n, err = orcvet.RunVetUnit(depPath, &depOut)
	if err != nil || n != 0 {
		t.Errorf("VetxOnly unit: n=%d err=%v out=%q", n, err, depOut.String())
	}
	if _, err := os.Stat(depCfg.VetxOutput); err != nil {
		t.Errorf("VetxOnly vetx output not written: %v", err)
	}
}

// TestTreeClean is the acceptance gate: the committed tree has zero
// unannotated findings (test files are covered by `make vet`, which
// runs through the go command with test packages included).
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole tree")
	}
	root := moduleRoot(t)
	fset, diags, err := orcvet.RunDir(root, "./...")
	if err != nil {
		t.Fatalf("RunDir: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", orcvet.Format(fset, d))
	}
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}
