// Package bench is the benchmark harness that regenerates the paper's
// evaluation: workload generators, subject registry (every queue and set
// under every applicable reclamation configuration), timed runners with
// per-thread padded counters, and the per-figure drivers used by
// cmd/orcbench, the artifact-named binaries, and the root bench_test.go.
package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/reclaim"
	"repro/internal/rt"
)

// Set is the membership interface every set-shaped subject implements.
type Set interface {
	Insert(tid int, key uint64) bool
	Remove(tid int, key uint64) bool
	Contains(tid int, key uint64) bool
}

// Queue is the FIFO interface every queue-shaped subject implements.
type Queue interface {
	Enqueue(tid int, item uint64)
	Dequeue(tid int) (uint64, bool)
}

// MemStats is the memory snapshot a subject can report after a run.
type MemStats struct {
	Live            int64 // objects allocated and not freed
	MaxLive         int64 // high-water mark
	RetiredNotFreed int64 // scheme-side pending count (manual schemes)
}

// Admin is the control surface the torture harness drives: fault
// injection before a run, quiescing between phases, and the accounting
// audit afterwards. The benchmark runners never touch it; registry
// constructors build one (via Hooks) so any subject reachable by name
// can be tortured.
type Admin interface {
	// Stats returns the subject's read-only accounting view.
	Stats() Snapshot
	// Faults returns the subject's fault-injection controls.
	Faults() FaultController
	// Quiesce drains pending reclamation: clears every thread's
	// protections and flushes retired lists to a fixed point. Quiescent
	// use only — no concurrent subject operations may be in flight.
	Quiesce()
	// Reclaiming reports whether retired objects are eventually freed
	// (false for the "none" scheme and the leak baselines), i.e. whether
	// Live is expected back at baseline after Quiesce.
	Reclaiming() bool
	// ExactPending reports whether Scheme stats count distinct objects,
	// making retired == freed + pending an invariant. Manual schemes
	// qualify; OrcGC does not — its retire counter ticks once per retire
	// *event*, and ownership re-negotiation (clearBitRetired) or a
	// handover can route one object through several events.
	ExactPending() bool
}

// Snapshot is Admin's read side: every accounting surface the audit
// consults, behind one coherent view.
type Snapshot interface {
	// Arena snapshots the subject's allocator counters.
	Arena() arena.Stats
	// Scheme snapshots retire/free accounting (synthesized from Domain
	// counters for OrcGC subjects; zero-valued for leak subjects that
	// bypass the reclaim layer entirely).
	Scheme() reclaim.Stats
	// Scan snapshots scan-engine and protection fast-path accounting
	// (adaptive threshold position, elision hits); ok is false for
	// subjects with neither (the leak baselines).
	Scan() (st reclaim.ScanStats, ok bool)
	// Cluster snapshots proxy-level counters (routed ops, hedges
	// fired/won, breaker trips, rebalance keys moved) when the subject
	// fronts a cluster proxy; nil for single-store subjects.
	Cluster() map[string]int64
}

// FaultController is Admin's fault-injection side.
type FaultController interface {
	// SetMode flips the subject's arena between Strict (panic on stale
	// dereference) and Count (record and survive) at runtime.
	SetMode(arena.FaultMode)
	// SetHook installs a callback invoked on every counted fault; nil
	// uninstalls.
	SetHook(func(arena.Handle))
}

// Hooks is the function-field Admin implementation the registry (and
// ad-hoc torture subjects) assemble. Nil function fields degrade to
// no-ops or zero values, so a subject only wires the surfaces it has.
type Hooks struct {
	FaultMode    func(arena.FaultMode)
	FaultHook    func(func(arena.Handle))
	ArenaStats   func() arena.Stats
	SchemeStats  func() reclaim.Stats
	ScanStats    func() reclaim.ScanStats // nil: no scan engine
	ClusterStats func() map[string]int64  // nil: single-store subject
	QuiesceFn    func()
	Reclaims     bool
	ExactCounts  bool
}

func (h *Hooks) Stats() Snapshot         { return hookSnapshot{h} }
func (h *Hooks) Faults() FaultController { return hookFaults{h} }

func (h *Hooks) Quiesce() {
	if h.QuiesceFn != nil {
		h.QuiesceFn()
	}
}

func (h *Hooks) Reclaiming() bool   { return h.Reclaims }
func (h *Hooks) ExactPending() bool { return h.ExactCounts }

type hookSnapshot struct{ h *Hooks }

func (s hookSnapshot) Arena() arena.Stats {
	if s.h.ArenaStats == nil {
		return arena.Stats{}
	}
	return s.h.ArenaStats()
}

func (s hookSnapshot) Scheme() reclaim.Stats {
	if s.h.SchemeStats == nil {
		return reclaim.Stats{}
	}
	return s.h.SchemeStats()
}

func (s hookSnapshot) Scan() (reclaim.ScanStats, bool) {
	if s.h.ScanStats == nil {
		return reclaim.ScanStats{}, false
	}
	return s.h.ScanStats(), true
}

func (s hookSnapshot) Cluster() map[string]int64 {
	if s.h.ClusterStats == nil {
		return nil
	}
	return s.h.ClusterStats()
}

type hookFaults struct{ h *Hooks }

func (f hookFaults) SetMode(m arena.FaultMode) {
	if f.h.FaultMode != nil {
		f.h.FaultMode(m)
	}
}

func (f hookFaults) SetHook(fn func(arena.Handle)) {
	if f.h.FaultHook != nil {
		f.h.FaultHook(fn)
	}
}

// SetInstance bundles a set subject with its accounting hooks.
type SetInstance struct {
	Set   Set
	Mem   func() MemStats
	Admin Admin
}

// QueueInstance bundles a queue subject with its accounting hooks.
type QueueInstance struct {
	Queue Queue
	Mem   func() MemStats
	Admin Admin
	// Drain empties the queue and releases its structural roots
	// (sentinels, per-thread descriptor arrays); quiescent use only.
	// Nil for subjects without a teardown path (the leak baselines).
	Drain func(tid int)
	// DrainDropsRoots reports whether Drain releases every root, so a
	// reclaiming subject's arena Live is expected at 0 afterwards
	// rather than at the post-construction baseline.
	DrainDropsRoots bool
}

// Mix is an operation mix in percent; the remainder is Contains.
type Mix struct {
	InsertPct int
	RemovePct int
}

// String renders the mix the way the paper labels its plots.
func (m Mix) String() string {
	return fmt.Sprintf("%di-%dr-%dc", m.InsertPct, m.RemovePct, 100-m.InsertPct-m.RemovePct)
}

// The paper's three workloads (Figures 3–8).
var (
	MixWrite = Mix{InsertPct: 50, RemovePct: 50}
	MixRead  = Mix{InsertPct: 5, RemovePct: 5}
	MixRO    = Mix{InsertPct: 0, RemovePct: 0}
)

// Result of one measurement point. Lat aggregates sampled per-operation
// latencies (one sample every latSampleMask+1 ops per thread, merged
// across threads and runs) into the shared HDR-style histogram.
type Result struct {
	OpsPerSec float64
	Runs      []float64
	Mem       MemStats
	Lat       *Hist
}

// latSampleMask selects which ops are individually timed: sampling one
// op in 64 keeps the two clock reads off the common path while still
// collecting tens of thousands of samples per second per thread.
const latSampleMask = 63

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

type pcg struct{ s uint64 }

func (r *pcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	x := r.s
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// RunSet measures a set subject: prefill half the key range, then
// threads hammer the mix for dur; repeated runs times on fresh
// instances. Returned throughput is total operations per second.
func RunSet(factory func(threads int) SetInstance, threads int, keys uint64, mix Mix, dur time.Duration, runs int) Result {
	if runs <= 0 {
		runs = 1
	}
	var res Result
	// Prefill to 50% occupancy in *shuffled* order — ascending insertion
	// would degenerate the unbalanced external BST into a linear chain.
	stride := uint64(0x9E3779B9) | 1
	for gcd(stride, keys) != 1 {
		stride += 2
	}
	res.Lat = &Hist{}
	for r := 0; r < runs; r++ {
		inst := factory(threads)
		for i := uint64(0); i < keys; i++ {
			k := (i * stride) % keys
			if k%2 == 0 {
				inst.Set.Insert(0, k+1)
			}
		}
		ops := make([]rt.PaddedUint64, threads)
		hists := make([]Hist, threads)
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				rng := pcg{s: uint64(tid)*0x9E3779B97F4A7C15 + uint64(r) + 1}
				h := &hists[tid]
				n := uint64(0)
				for !stop.Load() {
					x := rng.next()
					k := x%keys + 1
					p := int((x >> 32) % 100)
					sample := n&latSampleMask == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					switch {
					case p < mix.InsertPct:
						inst.Set.Insert(tid, k)
					case p < mix.InsertPct+mix.RemovePct:
						inst.Set.Remove(tid, k)
					default:
						inst.Set.Contains(tid, k)
					}
					if sample {
						h.RecordDur(time.Since(t0))
					}
					n++
				}
				ops[tid].Store(n)
			}(w)
		}
		start := time.Now()
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		total := uint64(0)
		for i := range ops {
			total += ops[i].Load()
		}
		res.Runs = append(res.Runs, float64(total)/elapsed)
		for i := range hists {
			res.Lat.Merge(&hists[i])
		}
		if inst.Mem != nil {
			res.Mem = inst.Mem()
		}
	}
	res.OpsPerSec = mean(res.Runs)
	return res
}

// RunQueuePairs measures a queue subject with the paper's queue
// workload: every thread performs enqueue/dequeue pairs for dur.
// Throughput counts individual operations (2 per pair); sampled pair
// latencies land in Result.Lat.
func RunQueuePairs(factory func(threads int) QueueInstance, threads int, dur time.Duration, runs int) Result {
	if runs <= 0 {
		runs = 1
	}
	var res Result
	res.Lat = &Hist{}
	for r := 0; r < runs; r++ {
		inst := factory(threads)
		// Seed a little so dequeues don't always race an empty queue.
		for i := uint64(0); i < 64; i++ {
			inst.Queue.Enqueue(0, i)
		}
		ops := make([]rt.PaddedUint64, threads)
		hists := make([]Hist, threads)
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				h := &hists[tid]
				n := uint64(0)
				v := uint64(tid + 1)
				for !stop.Load() {
					sample := n&latSampleMask == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					inst.Queue.Enqueue(tid, v&0xFFFFFF)
					inst.Queue.Dequeue(tid)
					if sample {
						h.RecordDur(time.Since(t0))
					}
					v++
					n += 2
				}
				ops[tid].Store(n)
			}(w)
		}
		start := time.Now()
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		total := uint64(0)
		for i := range ops {
			total += ops[i].Load()
		}
		res.Runs = append(res.Runs, float64(total)/elapsed)
		for i := range hists {
			res.Lat.Merge(&hists[i])
		}
		if inst.Mem != nil {
			res.Mem = inst.Mem()
		}
	}
	res.OpsPerSec = mean(res.Runs)
	return res
}

// ParseThreads parses a comma-separated list of thread counts — the
// flag syntax shared by every cmd binary.
func ParseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// Series is one labelled line of a figure: thread count → value.
type Series struct {
	Name   string
	Points map[int]float64
}

// SortedThreads returns the union of thread counts across series.
func SortedThreads(series []Series) []int {
	seen := map[int]bool{}
	for _, s := range series {
		for t := range s.Points {
			seen[t] = true
		}
	}
	var out []int
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
