package bench

import (
	"time"

	"repro/internal/obs"
)

// Hist is an HDR-style latency histogram: log-bucketed with
// obs.HistSubBits bits of sub-bucket resolution per octave, giving a
// bounded ~3% relative error at every magnitude while covering the full
// uint64 nanosecond range in a few KB. The bucket geometry lives in
// internal/obs (shared with the concurrent obs.Hist the service
// scrapes); this variant is single-writer (one per goroutine) — Merge
// combines per-goroutine histograms at quiescence, which is how both
// the kv load generator and the bench harness aggregate across worker
// goroutines without sharing cache lines on the hot path.
type Hist struct {
	counts [obs.HistBuckets]uint64
	total  uint64
	sum    uint64
	max    uint64
	min    uint64
}

// bucketOfDur maps a nanosecond value to its bucket index (shared
// geometry, see obs.HistBucketOf).
func bucketOfDur(v uint64) int { return obs.HistBucketOf(v) }

// bucketMid returns a representative (midpoint) value for bucket idx.
func bucketMid(idx int) uint64 { return obs.HistBucketMid(idx) }

// Record adds one nanosecond observation.
func (h *Hist) Record(ns uint64) {
	h.counts[bucketOfDur(ns)]++
	h.total++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	if h.total == 1 || ns < h.min {
		h.min = ns
	}
}

// RecordDur adds one duration observation.
func (h *Hist) RecordDur(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Merge folds other into h. Safe only when neither side is being
// written concurrently.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.total }

// Max returns the largest observation in nanoseconds.
func (h *Hist) Max() uint64 { return h.max }

// Mean returns the mean observation in nanoseconds.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the value at quantile q in [0,1] (bucket midpoint;
// the exact max for q beyond the last observation).
func (h *Hist) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i == bucketOfDur(h.max) {
				return h.max
			}
			return bucketMid(i)
		}
	}
	return h.max
}

// LatSummary is the JSON-ready digest of a histogram, in microseconds
// (the resolution BENCH_kv.json and the figure tables report).
type LatSummary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summary digests the histogram for reports.
func (h *Hist) Summary() LatSummary {
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	return LatSummary{
		Count:  h.total,
		MeanUs: h.Mean() / 1e3,
		P50Us:  us(h.Quantile(0.50)),
		P90Us:  us(h.Quantile(0.90)),
		P99Us:  us(h.Quantile(0.99)),
		P999Us: us(h.Quantile(0.999)),
		MaxUs:  us(h.max),
	}
}
