package bench

import (
	"testing"

	"repro/internal/obs"
)

// Property: merging per-goroutine histograms must be indistinguishable
// from recording every observation into one histogram — for any split of
// any observation stream. This is what makes the per-thread Hist +
// Merge-at-quiescence aggregation in RunSet/RunQueuePairs (and the kv
// load generator) exact rather than approximate.
func TestHistMergeEqualsConcatenationProperty(t *testing.T) {
	rng := pcg{s: 0x4157}
	for trial := 0; trial < 32; trial++ {
		nway := int(rng.next()%7) + 2
		parts := make([]Hist, nway)
		var concat Hist
		n := int(rng.next()%4096) + 64
		for i := 0; i < n; i++ {
			// Shift spreads observations across every magnitude so all
			// three bucket regions (linear, low octaves, high octaves)
			// participate in every trial.
			v := rng.next() >> (rng.next() % 60)
			parts[rng.next()%uint64(nway)].Record(v)
			concat.Record(v)
		}
		var merged Hist
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if merged.Summary() != concat.Summary() {
			t.Fatalf("trial %d (%d-way, %d obs): merged summary %+v != concatenated %+v",
				trial, nway, n, merged.Summary(), concat.Summary())
		}
		if merged.Count() != concat.Count() || merged.Max() != concat.Max() || merged.min != concat.min {
			t.Fatalf("trial %d: count/max/min diverge: (%d,%d,%d) vs (%d,%d,%d)",
				trial, merged.Count(), merged.Max(), merged.min,
				concat.Count(), concat.Max(), concat.min)
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if a, b := merged.Quantile(q), concat.Quantile(q); a != b {
				t.Fatalf("trial %d: Quantile(%.2f) %d != %d", trial, q, a, b)
			}
		}
	}
}

// Property: the bench histogram and the concurrent obs histogram share
// one geometry — feeding both the same stream must produce identical
// quantile digests (the LatSummary/HistSummary structs are field-for-
// field the same shape by design).
func TestHistObsBenchGeometryAgreeProperty(t *testing.T) {
	rng := pcg{s: 0x0b5}
	var bh Hist
	var oh obs.Hist
	for i := 0; i < 8192; i++ {
		v := rng.next() >> (rng.next() % 52)
		bh.Record(v)
		oh.Observe(v)
	}
	bs, os := bh.Summary(), oh.Summary()
	if bs.Count != os.Count || bs.MeanUs != os.MeanUs || bs.P50Us != os.P50Us ||
		bs.P90Us != os.P90Us || bs.P99Us != os.P99Us || bs.P999Us != os.P999Us ||
		bs.MaxUs != os.MaxUs {
		t.Fatalf("geometries diverge:\nbench: %+v\n  obs: %+v", bs, os)
	}
}
