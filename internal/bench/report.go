package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// PrintTable renders a figure's series as an aligned text table, one row
// per thread count — the same rows the artifact's data files carry.
func PrintTable(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	threads := SortedThreads(series)
	fmt.Fprintf(w, "%-8s", "threads")
	for _, s := range series {
		fmt.Fprintf(w, " %14s", truncate(s.Name, 14))
	}
	fmt.Fprintln(w)
	for _, t := range threads {
		fmt.Fprintf(w, "%-8d", t)
		for _, s := range series {
			if v, ok := s.Points[t]; ok {
				fmt.Fprintf(w, " %14.3f", v)
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// WriteTSV persists a figure's series as a tab-separated data file, the
// format the artifact's plotting scripts consume.
func WriteTSV(dir, name string, series []Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("threads")
	for _, s := range series {
		b.WriteByte('\t')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for _, t := range SortedThreads(series) {
		fmt.Fprintf(&b, "%d", t)
		for _, s := range series {
			if v, ok := s.Points[t]; ok {
				fmt.Fprintf(&b, "\t%.3f", v)
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, name+".tsv"), []byte(b.String()), 0o644)
}

// WriteJSON persists a report structure as indented JSON — the machinery
// behind the BENCH_*.json artifacts (e.g. the allocator microbenchmarks
// in BENCH_alloc.json).
func WriteJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
