package bench

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func tinyCfg() Config {
	return Config{
		Threads:  []int{1, 2},
		Duration: 25 * time.Millisecond,
		Runs:     1,
		KeysList: 64,
		KeysBig:  256,
	}
}

func TestRegistryQueueNamesConstruct(t *testing.T) {
	for _, name := range QueueNames() {
		inst := NewQueue(name, 2)
		inst.Queue.Enqueue(0, 7)
		if v, ok := inst.Queue.Dequeue(1); !ok || v != 7 {
			t.Fatalf("%s: roundtrip got %d ok=%v", name, v, ok)
		}
		if inst.Mem == nil {
			t.Fatalf("%s: no mem hook", name)
		}
		_ = inst.Mem()
	}
}

func TestRegistrySetNamesConstruct(t *testing.T) {
	names := append(append(ListSchemeNames(), OrcListNames()...), TreeSkipNames()...)
	names = append(names, HashMapNames()...)
	for _, name := range names {
		inst := NewSet(name, 2)
		if !inst.Set.Insert(0, 5) || !inst.Set.Contains(1, 5) || !inst.Set.Remove(0, 5) {
			t.Fatalf("%s: basic ops failed", name)
		}
		if inst.Mem == nil {
			t.Fatalf("%s: no mem hook", name)
		}
	}
}

func TestRegistryUnknownPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewQueue("bogus", 1) },
		func() { NewSet("bogus", 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRunSetProducesThroughput(t *testing.T) {
	r := RunSet(setFactory("list-orc"), 2, 64, MixRead, 30*time.Millisecond, 2)
	if r.OpsPerSec <= 0 {
		t.Fatal("no throughput measured")
	}
	if len(r.Runs) != 2 {
		t.Fatalf("expected 2 runs, got %d", len(r.Runs))
	}
}

func TestRunQueuePairs(t *testing.T) {
	r := RunQueuePairs(queueFactory("ms-orc"), 2, 30*time.Millisecond, 1)
	if r.OpsPerSec <= 0 {
		t.Fatal("no throughput measured")
	}
}

func TestMixString(t *testing.T) {
	if MixWrite.String() != "50i-50r-0c" {
		t.Fatalf("got %s", MixWrite.String())
	}
	if MixRO.String() != "0i-0r-100c" {
		t.Fatalf("got %s", MixRO.String())
	}
}

func TestFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"1", "3", "5", "7", "mem", "table1"} {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			if err := Figure(id, tinyCfg(), io.Discard); err != nil {
				t.Fatalf("figure %s: %v", id, err)
			}
		})
	}
}

func TestFigureUnknown(t *testing.T) {
	if err := Figure("99", tinyCfg(), io.Discard); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestWriteTSV(t *testing.T) {
	dir := t.TempDir()
	series := []Series{
		{Name: "a", Points: map[int]float64{1: 1.5, 2: 2.5}},
		{Name: "b", Points: map[int]float64{1: 3.5}},
	}
	if err := WriteTSV(dir, "test", series); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "test.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "threads\ta\tb") {
		t.Fatalf("bad header: %q", got)
	}
	if !strings.Contains(got, "2\t2.500\t-") {
		t.Fatalf("missing row / missing-point dash: %q", got)
	}
}

func TestPrintTable(t *testing.T) {
	var sb strings.Builder
	PrintTable(&sb, "demo", []Series{{Name: "x", Points: map[int]float64{4: 1.25}}})
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1.250") {
		t.Fatalf("bad table: %q", out)
	}
}

func TestSortedThreads(t *testing.T) {
	got := SortedThreads([]Series{
		{Points: map[int]float64{8: 1, 1: 1}},
		{Points: map[int]float64{4: 1}},
	})
	want := []int{1, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestMeasureBoundPTP(t *testing.T) {
	maxPend, freed := MeasureBound("ptp", 4, 3, 50*time.Millisecond)
	if maxPend > 4*4 {
		t.Fatalf("PTP bound violated: %d", maxPend)
	}
	if freed == 0 {
		t.Fatal("nothing freed under churn")
	}
}
