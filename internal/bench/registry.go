package bench

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/ds/kpqueue"
	"repro/internal/ds/lcrq"
	"repro/internal/ds/list"
	"repro/internal/ds/msqueue"
	"repro/internal/ds/nmtree"
	"repro/internal/ds/skiplist"
	"repro/internal/ds/turnqueue"
	"repro/internal/reclaim"
)

func domCfg(threads int) core.DomainConfig {
	if threads < 1 {
		threads = 1
	}
	return core.DomainConfig{MaxThreads: threads}
}

func recCfg(threads int) reclaim.Options {
	if threads < 1 {
		threads = 1
	}
	return reclaim.Options{MaxThreads: threads}
}

// orcAdmin builds the torture-control hooks for an OrcGC-backed subject:
// fault injection goes straight to the domain's arena, scheme accounting
// is synthesized from the domain's retire/free counters, and Quiesce is
// the domain's fixed-point drain.
func orcAdmin[T any](d *core.Domain[T]) Admin {
	a := d.Arena()
	return &Hooks{
		FaultMode:  a.SetFaultMode,
		FaultHook:  a.SetFaultHook,
		ArenaStats: a.Stats,
		SchemeStats: func() reclaim.Stats {
			r, f := d.Stats()
			return reclaim.Stats{Retired: r, Freed: f, RetiredNotFreed: int64(r) - int64(f)}
		},
		ScanStats: func() reclaim.ScanStats {
			return reclaim.ScanStats{Elisions: d.Elisions()}
		},
		QuiesceFn:   d.FlushAll,
		Reclaims:    true,
		ExactCounts: false,
	}
}

// manualAdmin builds the hooks for a subject running a manual scheme.
// Quiesce clears every thread's protections and reservations, then
// flushes each thread's retired list repeatedly — multiple rounds because
// epoch-style schemes only advance one grace period per flush.
func manualAdmin[T any](a *arena.Arena[T], s reclaim.Scheme, threads int) Admin {
	if threads < 1 {
		threads = 1
	}
	name := s.Name()
	ad := &Hooks{
		FaultMode:   a.SetFaultMode,
		FaultHook:   a.SetFaultHook,
		ArenaStats:  a.Stats,
		SchemeStats: s.Stats,
		QuiesceFn: func() {
			for round := 0; round < 4; round++ {
				for tid := 0; tid < threads; tid++ {
					s.ClearAll(tid)
					s.EndOp(tid)
				}
				for tid := 0; tid < threads; tid++ {
					s.Flush(tid)
				}
			}
		},
		Reclaims:    name != "none" && name != "unsafe",
		ExactCounts: true,
	}
	if ss, ok := s.(reclaim.ScanStatser); ok {
		ad.ScanStats = ss.ScanStats
	}
	return ad
}

// leakAdmin builds the hooks for a leak baseline that bypasses the
// reclaim layer entirely: arena control only, zero scheme stats.
func leakAdmin[T any](a *arena.Arena[T]) Admin {
	return &Hooks{
		FaultMode:   a.SetFaultMode,
		FaultHook:   a.SetFaultHook,
		ArenaStats:  a.Stats,
		SchemeStats: func() reclaim.Stats { return reclaim.Stats{} },
		Reclaims:    false,
		ExactCounts: true,
	}
}

// QueueNames lists the queue subjects of Figures 1–2: each algorithm
// with OrcGC and with no reclamation (the normalization baseline), plus
// the MS queue under every manual scheme as an extra comparison.
func QueueNames() []string {
	return []string{
		"ms-orc", "ms-leak", "ms-hp", "ms-ptb", "ms-ptp", "ms-ebr", "ms-he", "ms-ibr",
		"lcrq-orc", "lcrq-leak",
		"kp-orc", "kp-leak",
		"turn-orc", "turn-leak",
	}
}

func orcQueueInstance[T any](q Queue, d *core.Domain[T], drain func(tid int)) QueueInstance {
	return QueueInstance{Queue: q, Mem: func() MemStats {
		st := d.Arena().Stats()
		return MemStats{Live: st.Live, MaxLive: st.MaxLive}
	}, Admin: orcAdmin(d), Drain: drain, DrainDropsRoots: true}
}

func leakQueueInstance[T any](q Queue, a *arena.Arena[T]) QueueInstance {
	return QueueInstance{Queue: q, Mem: func() MemStats {
		st := a.Stats()
		return MemStats{Live: st.Live, MaxLive: st.MaxLive}
	}, Admin: leakAdmin(a)}
}

// NewQueue builds a queue subject by name.
func NewQueue(name string, threads int) QueueInstance {
	switch name {
	case "ms-orc":
		q := msqueue.NewOrc(0, domCfg(threads))
		return orcQueueInstance(q, q.Domain(), q.Drain)
	case "ms-leak":
		return manualMSQueue("none", threads)
	case "ms-hp", "ms-ptb", "ms-ptp", "ms-ebr", "ms-he", "ms-ibr":
		return manualMSQueue(name[3:], threads)
	case "lcrq-orc":
		q := lcrq.NewOrc(0, domCfg(threads))
		return orcQueueInstance(q, q.Domain(), q.Drain)
	case "lcrq-leak":
		q := lcrq.NewLeak()
		return leakQueueInstance(q, q.Arena())
	case "kp-orc":
		q := kpqueue.NewOrc(0, domCfg(threads))
		return orcQueueInstance(q, q.Domain(), q.Drain)
	case "kp-leak":
		q := kpqueue.NewLeak(threads)
		return leakQueueInstance(q, q.Arena())
	case "turn-orc":
		q := turnqueue.NewOrc(0, domCfg(threads))
		return orcQueueInstance(q, q.Domain(), q.Drain)
	case "turn-leak":
		q := turnqueue.NewLeak(threads)
		return leakQueueInstance(q, q.Arena())
	default:
		panic(fmt.Sprintf("bench: unknown queue %q", name))
	}
}

func manualMSQueue(scheme string, threads int) QueueInstance {
	q := msqueue.NewManual(scheme, recCfg(threads))
	return QueueInstance{Queue: q, Mem: func() MemStats {
		st := q.Arena().Stats()
		return MemStats{
			Live: st.Live, MaxLive: st.MaxLive,
			RetiredNotFreed: q.Scheme().Stats().RetiredNotFreed,
		}
	}, Admin: manualAdmin(q.Arena(), q.Scheme(), threads), Drain: q.Drain}
}

// ListSchemeNames are the Figure 3–4 subjects: the Michael–Harris list
// under each manual scheme and under OrcGC.
func ListSchemeNames() []string {
	return []string{"list-hp", "list-ptb", "list-ptp", "list-ebr", "list-he", "list-ibr", "list-none", "list-orc"}
}

// OrcListNames are the Figure 5–6 subjects: four lists, OrcGC only.
func OrcListNames() []string {
	return []string{"harris-orc", "michael-orc", "hs-orc", "tbkp-orc"}
}

// HashMapNames are the extension subjects: Michael's hash table (the
// structure the paper's introduction motivates) under OrcGC and under
// every manual scheme.
func HashMapNames() []string {
	return []string{"hmap-orc", "hmap-hp", "hmap-ptb", "hmap-ptp", "hmap-ebr", "hmap-he", "hmap-ibr", "hmap-none"}
}

// TreeSkipNames are the Figure 7–8 subjects.
func TreeSkipNames() []string {
	return []string{
		"tree-orc", "tree-ebr", "tree-none",
		"hsskip-orc", "hsskip-ebr", "hsskip-none",
		"crfskip-orc",
	}
}

func orcSetInstance[T any](s Set, d *core.Domain[T]) SetInstance {
	return SetInstance{Set: s, Mem: func() MemStats {
		st := d.Arena().Stats()
		return MemStats{Live: st.Live, MaxLive: st.MaxLive}
	}, Admin: orcAdmin(d)}
}

func manualSetInstance[T any](s Set, a *arena.Arena[T], sc reclaim.Scheme, threads int) SetInstance {
	return SetInstance{Set: s, Mem: func() MemStats {
		st := a.Stats()
		return MemStats{
			Live: st.Live, MaxLive: st.MaxLive,
			RetiredNotFreed: sc.Stats().RetiredNotFreed,
		}
	}, Admin: manualAdmin(a, sc, threads)}
}

// NewSet builds a set subject by name.
func NewSet(name string, threads int) SetInstance {
	switch name {
	case "list-orc", "michael-orc":
		l := list.NewMichaelOrc(0, domCfg(threads))
		return orcSetInstance(l, l.Domain())
	case "harris-orc":
		l := list.NewHarrisOrc(0, domCfg(threads))
		return orcSetInstance(l, l.Domain())
	case "hs-orc":
		l := list.NewHSOrc(0, domCfg(threads))
		return orcSetInstance(l, l.Domain())
	case "tbkp-orc":
		l := list.NewTBKPOrc(0, domCfg(threads))
		return orcSetInstance(l, l.Domain())
	case "list-hp", "list-ptb", "list-ptp", "list-ebr", "list-he", "list-ibr", "list-none":
		l := list.NewManual(name[5:], recCfg(threads))
		return manualSetInstance(l, l.Arena(), l.Scheme(), threads)
	case "tree-orc":
		t := nmtree.NewOrc(0, domCfg(threads))
		return orcSetInstance(t, t.Domain())
	case "tree-ebr", "tree-none":
		t := nmtree.NewManual(name[5:], recCfg(threads))
		return manualSetInstance(t, t.Arena(), t.Scheme(), threads)
	case "hsskip-orc":
		s := skiplist.NewHSOrc(0, domCfg(threads))
		return orcSetInstance(s, s.Domain())
	case "hsskip-ebr", "hsskip-none":
		s := skiplist.NewHSManual(name[7:], recCfg(threads))
		return manualSetInstance(s, s.Arena(), s.Scheme(), threads)
	case "hmap-orc":
		m := hashmap.NewOrc(0, 256, domCfg(threads))
		return orcSetInstance(m, m.Domain())
	case "hmap-hp", "hmap-ptb", "hmap-ptp", "hmap-ebr", "hmap-he", "hmap-ibr", "hmap-none":
		m := hashmap.NewManual(name[5:], 256, recCfg(threads))
		return manualSetInstance(m, m.Arena(), m.Scheme(), threads)
	case "crfskip-orc":
		s := skiplist.NewCRFOrc(0, domCfg(threads))
		return orcSetInstance(s, s.Domain())
	default:
		panic(fmt.Sprintf("bench: unknown set %q", name))
	}
}
