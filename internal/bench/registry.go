package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/ds/kpqueue"
	"repro/internal/ds/lcrq"
	"repro/internal/ds/list"
	"repro/internal/ds/msqueue"
	"repro/internal/ds/nmtree"
	"repro/internal/ds/skiplist"
	"repro/internal/ds/turnqueue"
	"repro/internal/reclaim"
)

func domCfg(threads int) core.DomainConfig {
	if threads < 1 {
		threads = 1
	}
	return core.DomainConfig{MaxThreads: threads}
}

func recCfg(threads int) reclaim.Options {
	if threads < 1 {
		threads = 1
	}
	return reclaim.Options{MaxThreads: threads}
}

// QueueNames lists the queue subjects of Figures 1–2: each algorithm
// with OrcGC and with no reclamation (the normalization baseline), plus
// the MS queue under every manual scheme as an extra comparison.
func QueueNames() []string {
	return []string{
		"ms-orc", "ms-leak", "ms-hp", "ms-ptb", "ms-ptp", "ms-ebr", "ms-he", "ms-ibr",
		"lcrq-orc", "lcrq-leak",
		"kp-orc", "kp-leak",
		"turn-orc", "turn-leak",
	}
}

// NewQueue builds a queue subject by name.
func NewQueue(name string, threads int) QueueInstance {
	switch name {
	case "ms-orc":
		q := msqueue.NewOrc(0, domCfg(threads))
		return QueueInstance{Queue: q, Mem: func() MemStats {
			st := q.Domain().Arena().Stats()
			return MemStats{Live: st.Live, MaxLive: st.MaxLive}
		}}
	case "ms-leak":
		return manualMSQueue("none", threads)
	case "ms-hp", "ms-ptb", "ms-ptp", "ms-ebr", "ms-he", "ms-ibr":
		return manualMSQueue(name[3:], threads)
	case "lcrq-orc":
		q := lcrq.NewOrc(0, domCfg(threads))
		return QueueInstance{Queue: q, Mem: func() MemStats {
			st := q.Domain().Arena().Stats()
			return MemStats{Live: st.Live, MaxLive: st.MaxLive}
		}}
	case "lcrq-leak":
		q := lcrq.NewLeak()
		return QueueInstance{Queue: q, Mem: func() MemStats {
			st := q.Arena().Stats()
			return MemStats{Live: st.Live, MaxLive: st.MaxLive}
		}}
	case "kp-orc":
		q := kpqueue.NewOrc(0, domCfg(threads))
		return QueueInstance{Queue: q, Mem: func() MemStats {
			st := q.Domain().Arena().Stats()
			return MemStats{Live: st.Live, MaxLive: st.MaxLive}
		}}
	case "kp-leak":
		q := kpqueue.NewLeak(threads)
		return QueueInstance{Queue: q, Mem: func() MemStats {
			st := q.Arena().Stats()
			return MemStats{Live: st.Live, MaxLive: st.MaxLive}
		}}
	case "turn-orc":
		q := turnqueue.NewOrc(0, domCfg(threads))
		return QueueInstance{Queue: q, Mem: func() MemStats {
			st := q.Domain().Arena().Stats()
			return MemStats{Live: st.Live, MaxLive: st.MaxLive}
		}}
	case "turn-leak":
		q := turnqueue.NewLeak(threads)
		return QueueInstance{Queue: q, Mem: func() MemStats {
			st := q.Arena().Stats()
			return MemStats{Live: st.Live, MaxLive: st.MaxLive}
		}}
	default:
		panic(fmt.Sprintf("bench: unknown queue %q", name))
	}
}

func manualMSQueue(scheme string, threads int) QueueInstance {
	q := msqueue.NewManual(scheme, recCfg(threads))
	return QueueInstance{Queue: q, Mem: func() MemStats {
		st := q.Arena().Stats()
		return MemStats{
			Live: st.Live, MaxLive: st.MaxLive,
			RetiredNotFreed: q.Scheme().Stats().RetiredNotFreed,
		}
	}}
}

// ListSchemeNames are the Figure 3–4 subjects: the Michael–Harris list
// under each manual scheme and under OrcGC.
func ListSchemeNames() []string {
	return []string{"list-hp", "list-ptb", "list-ptp", "list-ebr", "list-he", "list-ibr", "list-none", "list-orc"}
}

// OrcListNames are the Figure 5–6 subjects: four lists, OrcGC only.
func OrcListNames() []string {
	return []string{"harris-orc", "michael-orc", "hs-orc", "tbkp-orc"}
}

// HashMapNames are the extension subjects: Michael's hash table (the
// structure the paper's introduction motivates) under OrcGC and under
// every manual scheme.
func HashMapNames() []string {
	return []string{"hmap-orc", "hmap-hp", "hmap-ptb", "hmap-ptp", "hmap-ebr", "hmap-he", "hmap-ibr", "hmap-none"}
}

// TreeSkipNames are the Figure 7–8 subjects.
func TreeSkipNames() []string {
	return []string{
		"tree-orc", "tree-ebr", "tree-none",
		"hsskip-orc", "hsskip-ebr", "hsskip-none",
		"crfskip-orc",
	}
}

// NewSet builds a set subject by name.
func NewSet(name string, threads int) SetInstance {
	orcMem := func(stats func() (live, maxLive int64)) func() MemStats {
		return func() MemStats {
			l, m := stats()
			return MemStats{Live: l, MaxLive: m}
		}
	}
	switch name {
	case "list-orc", "michael-orc":
		l := list.NewMichaelOrc(0, domCfg(threads))
		return SetInstance{Set: l, Mem: orcMem(func() (int64, int64) {
			st := l.Domain().Arena().Stats()
			return st.Live, st.MaxLive
		})}
	case "harris-orc":
		l := list.NewHarrisOrc(0, domCfg(threads))
		return SetInstance{Set: l, Mem: orcMem(func() (int64, int64) {
			st := l.Domain().Arena().Stats()
			return st.Live, st.MaxLive
		})}
	case "hs-orc":
		l := list.NewHSOrc(0, domCfg(threads))
		return SetInstance{Set: l, Mem: orcMem(func() (int64, int64) {
			st := l.Domain().Arena().Stats()
			return st.Live, st.MaxLive
		})}
	case "tbkp-orc":
		l := list.NewTBKPOrc(0, domCfg(threads))
		return SetInstance{Set: l, Mem: orcMem(func() (int64, int64) {
			st := l.Domain().Arena().Stats()
			return st.Live, st.MaxLive
		})}
	case "list-hp", "list-ptb", "list-ptp", "list-ebr", "list-he", "list-ibr", "list-none":
		scheme := name[5:]
		l := list.NewManual(scheme, recCfg(threads))
		return SetInstance{Set: l, Mem: func() MemStats {
			st := l.Arena().Stats()
			return MemStats{
				Live: st.Live, MaxLive: st.MaxLive,
				RetiredNotFreed: l.Scheme().Stats().RetiredNotFreed,
			}
		}}
	case "tree-orc":
		t := nmtree.NewOrc(0, domCfg(threads))
		return SetInstance{Set: t, Mem: orcMem(func() (int64, int64) {
			st := t.Domain().Arena().Stats()
			return st.Live, st.MaxLive
		})}
	case "tree-ebr", "tree-none":
		t := nmtree.NewManual(name[5:], recCfg(threads))
		return SetInstance{Set: t, Mem: func() MemStats {
			st := t.Arena().Stats()
			return MemStats{
				Live: st.Live, MaxLive: st.MaxLive,
				RetiredNotFreed: t.Scheme().Stats().RetiredNotFreed,
			}
		}}
	case "hsskip-orc":
		s := skiplist.NewHSOrc(0, domCfg(threads))
		return SetInstance{Set: s, Mem: orcMem(func() (int64, int64) {
			st := s.Domain().Arena().Stats()
			return st.Live, st.MaxLive
		})}
	case "hsskip-ebr", "hsskip-none":
		s := skiplist.NewHSManual(name[7:], recCfg(threads))
		return SetInstance{Set: s, Mem: func() MemStats {
			st := s.Arena().Stats()
			return MemStats{
				Live: st.Live, MaxLive: st.MaxLive,
				RetiredNotFreed: s.Scheme().Stats().RetiredNotFreed,
			}
		}}
	case "hmap-orc":
		m := hashmap.NewOrc(0, 256, domCfg(threads))
		return SetInstance{Set: m, Mem: orcMem(func() (int64, int64) {
			st := m.Domain().Arena().Stats()
			return st.Live, st.MaxLive
		})}
	case "hmap-hp", "hmap-ptb", "hmap-ptp", "hmap-ebr", "hmap-he", "hmap-ibr", "hmap-none":
		m := hashmap.NewManual(name[5:], 256, recCfg(threads))
		return SetInstance{Set: m, Mem: func() MemStats {
			st := m.Arena().Stats()
			return MemStats{
				Live: st.Live, MaxLive: st.MaxLive,
				RetiredNotFreed: m.Scheme().Stats().RetiredNotFreed,
			}
		}}
	case "crfskip-orc":
		s := skiplist.NewCRFOrc(0, domCfg(threads))
		return SetInstance{Set: s, Mem: orcMem(func() (int64, int64) {
			st := s.Domain().Arena().Stats()
			return st.Live, st.MaxLive
		})}
	default:
		panic(fmt.Sprintf("bench: unknown set %q", name))
	}
}
