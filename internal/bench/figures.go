package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/reclaim"
	"repro/internal/rt"
)

// Config controls a figure run. Defaults are CI-scale; the artifact-
// scale settings the paper used are documented in EXPERIMENTS.md.
type Config struct {
	Threads  []int
	Duration time.Duration
	Runs     int
	KeysList uint64 // Figures 3–6 key range (paper: 1e3)
	KeysBig  uint64 // Figures 7–8 key range (paper: 1e6)
	DataDir  string // TSV output directory ("" = don't write)
	Swap     bool   // publish-with-exchange ablation (the "AMD" figures)
	// SamplePeriod is the obs.Sampler cadence for the backlog time
	// series in the Table 1 harness (default 1ms).
	SamplePeriod time.Duration
}

// Defaults returns a configuration that finishes in seconds.
func Defaults() Config {
	return Config{
		Threads:  []int{1, 2, 4, 8},
		Duration: 300 * time.Millisecond,
		Runs:     1,
		KeysList: 1000,
		KeysBig:  100_000,
	}
}

func (c *Config) normalize() {
	d := Defaults()
	if len(c.Threads) == 0 {
		c.Threads = d.Threads
	}
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.KeysList == 0 {
		c.KeysList = d.KeysList
	}
	if c.KeysBig == 0 {
		c.KeysBig = d.KeysBig
	}
}

func (c *Config) applyPublishMode() func() {
	prevC := core.PublishWithSwap.Load()
	prevR := reclaim.PublishWithSwap.Load()
	core.PublishWithSwap.Store(c.Swap)
	reclaim.PublishWithSwap.Store(c.Swap)
	return func() {
		core.PublishWithSwap.Store(prevC)
		reclaim.PublishWithSwap.Store(prevR)
	}
}

// Figure runs one of the paper's figures/experiments by id:
// "1","2" queues; "3","4" list × schemes; "5","6" lists × OrcGC;
// "7","8" tree + skip lists; "mem" the §5 footprint experiment;
// "table1" the measured memory-bound table.
func Figure(id string, cfg Config, w io.Writer) error {
	cfg.normalize()
	switch id {
	case "1":
		return figQueues(cfg, w, "Figure 1: queues, enq/deq pairs, normalized to no-reclamation (store publish)")
	case "2":
		cfg.Swap = true
		return figQueues(cfg, w, "Figure 2: queues, enq/deq pairs, normalized (exchange-publish ablation standing in for the AMD machine)")
	case "3":
		return figListSchemes(cfg, w, "Figure 3: Michael-Harris list 10^3 keys, reclamation schemes (store publish)")
	case "4":
		cfg.Swap = true
		return figListSchemes(cfg, w, "Figure 4: Michael-Harris list 10^3 keys, schemes (exchange-publish ablation / AMD)")
	case "5":
		return figOrcLists(cfg, w, "Figure 5: four linked lists under OrcGC, 10^3 keys (store publish)")
	case "6":
		cfg.Swap = true
		return figOrcLists(cfg, w, "Figure 6: four linked lists under OrcGC (exchange-publish ablation / AMD)")
	case "7":
		return figTreeSkip(cfg, w, "Figure 7: NM-tree and skip lists, large key range (store publish)")
	case "8":
		cfg.Swap = true
		return figTreeSkip(cfg, w, "Figure 8: NM-tree and skip lists (exchange-publish ablation / AMD)")
	case "mem":
		return MemFootprint(cfg, w)
	case "table1":
		return Table1Bounds(cfg, w)
	default:
		return fmt.Errorf("bench: unknown figure %q", id)
	}
}

// FigureIDs lists every runnable experiment id in paper order.
func FigureIDs() []string {
	return []string{"1", "2", "3", "4", "5", "6", "7", "8", "mem", "table1"}
}

func figQueues(cfg Config, w io.Writer, title string) error {
	restore := cfg.applyPublishMode()
	defer restore()
	pairs := [][2]string{
		{"ms-orc", "ms-leak"},
		{"lcrq-orc", "lcrq-leak"},
		{"kp-orc", "kp-leak"},
		{"turn-orc", "turn-leak"},
	}
	var norm, abs []Series
	for _, p := range pairs {
		orcS := Series{Name: p[0] + "/leak", Points: map[int]float64{}}
		absS := Series{Name: p[0] + " Mops", Points: map[int]float64{}}
		for _, t := range cfg.Threads {
			orc := RunQueuePairs(queueFactory(p[0]), t, cfg.Duration, cfg.Runs)
			leak := RunQueuePairs(queueFactory(p[1]), t, cfg.Duration, cfg.Runs)
			if leak.OpsPerSec > 0 {
				orcS.Points[t] = orc.OpsPerSec / leak.OpsPerSec
			}
			absS.Points[t] = orc.OpsPerSec / 1e6
		}
		norm = append(norm, orcS)
		abs = append(abs, absS)
	}
	PrintTable(w, title, norm)
	PrintTable(w, "  (absolute OrcGC throughput, Mops/s)", abs)
	fname := "fig1-queues"
	if cfg.Swap {
		fname = "fig2-queues-swap"
	}
	return WriteTSV(cfg.DataDir, fname, norm)
}

func queueFactory(name string) func(int) QueueInstance {
	return func(t int) QueueInstance { return NewQueue(name, t) }
}

func setFactory(name string) func(int) SetInstance {
	return func(t int) SetInstance { return NewSet(name, t) }
}

func figListSchemes(cfg Config, w io.Writer, title string) error {
	restore := cfg.applyPublishMode()
	defer restore()
	for _, mix := range []Mix{MixWrite, MixRead, MixRO} {
		var series []Series
		for _, name := range ListSchemeNames() {
			s := Series{Name: name, Points: map[int]float64{}}
			for _, t := range cfg.Threads {
				r := RunSet(setFactory(name), t, cfg.KeysList, mix, cfg.Duration, cfg.Runs)
				s.Points[t] = r.OpsPerSec / 1e6
			}
			series = append(series, s)
		}
		PrintTable(w, fmt.Sprintf("%s — mix %s (Mops/s)", title, mix), series)
		fname := fmt.Sprintf("fig3-list-%s", mix)
		if cfg.Swap {
			fname = fmt.Sprintf("fig4-list-%s-swap", mix)
		}
		if err := WriteTSV(cfg.DataDir, fname, series); err != nil {
			return err
		}
	}
	return nil
}

func figOrcLists(cfg Config, w io.Writer, title string) error {
	restore := cfg.applyPublishMode()
	defer restore()
	for _, mix := range []Mix{MixWrite, MixRead, MixRO} {
		var series []Series
		for _, name := range OrcListNames() {
			s := Series{Name: name, Points: map[int]float64{}}
			for _, t := range cfg.Threads {
				r := RunSet(setFactory(name), t, cfg.KeysList, mix, cfg.Duration, cfg.Runs)
				s.Points[t] = r.OpsPerSec / 1e6
			}
			series = append(series, s)
		}
		PrintTable(w, fmt.Sprintf("%s — mix %s (Mops/s)", title, mix), series)
		fname := fmt.Sprintf("fig5-orclists-%s", mix)
		if cfg.Swap {
			fname = fmt.Sprintf("fig6-orclists-%s-swap", mix)
		}
		if err := WriteTSV(cfg.DataDir, fname, series); err != nil {
			return err
		}
	}
	return nil
}

func figTreeSkip(cfg Config, w io.Writer, title string) error {
	restore := cfg.applyPublishMode()
	defer restore()
	for _, mix := range []Mix{MixWrite, MixRead, MixRO} {
		var series []Series
		for _, name := range TreeSkipNames() {
			s := Series{Name: name, Points: map[int]float64{}}
			for _, t := range cfg.Threads {
				r := RunSet(setFactory(name), t, cfg.KeysBig, mix, cfg.Duration, cfg.Runs)
				s.Points[t] = r.OpsPerSec / 1e6
			}
			series = append(series, s)
		}
		PrintTable(w, fmt.Sprintf("%s — mix %s (Mops/s)", title, mix), series)
		fname := fmt.Sprintf("fig7-treeskip-%s", mix)
		if cfg.Swap {
			fname = fmt.Sprintf("fig8-treeskip-%s-swap", mix)
		}
		if err := WriteTSV(cfg.DataDir, fname, series); err != nil {
			return err
		}
	}
	return nil
}

// MemFootprint is the §5 memory claim: under identical churn, HS-skip's
// unreclaimed population (removed nodes chained to each other) dwarfs
// CRF-skip's. The paper reports ≈19 GB vs <1 GB on the 30-hour run; the
// shape here is the live high-water ratio.
func MemFootprint(cfg Config, w io.Writer) error {
	cfg.normalize()
	threads := cfg.Threads[len(cfg.Threads)-1]
	if threads < 2 {
		threads = 2
	}
	var series []Series
	fmt.Fprintf(w, "\n== §5 memory footprint: HS-skip vs CRF-skip, %d threads, 50i/50r churn ==\n", threads)
	for _, name := range []string{"hsskip-orc", "crfskip-orc"} {
		r := RunSet(setFactory(name), threads, cfg.KeysList, MixWrite, cfg.Duration*2, 1)
		fmt.Fprintf(w, "%-12s live=%8d  max-live=%8d  (ops/s %.0f)\n",
			name, r.Mem.Live, r.Mem.MaxLive, r.OpsPerSec)
		series = append(series, Series{Name: name, Points: map[int]float64{threads: float64(r.Mem.MaxLive)}})
	}
	return WriteTSV(cfg.DataDir, "mem-footprint", series)
}

// Table1Bounds measures the bound column of Table 1: maximum retired-
// but-not-freed objects per scheme under an adversarial protect/retire
// stress, next to the paper's asymptotic bound.
func Table1Bounds(cfg Config, w io.Writer) error {
	cfg.normalize()
	threads := cfg.Threads[len(cfg.Threads)-1]
	if threads < 4 {
		threads = 4
	}
	const hps = 3
	type row struct {
		scheme string
		bound  string
	}
	rows := []row{
		{"ebr", "unbounded (blocking)"},
		{"hp", "O(H t^2)"},
		{"ptb", "O(H t^2)"},
		{"he", "O(#L H t^2)"},
		{"ibr", "O(#L H t^2)"},
		{"ptp", "O(H t) — t(H+1) exactly"},
		{"none", "infinite (leak)"},
	}
	fmt.Fprintf(w, "\n== Table 1 (measured): max retired-not-freed, t=%d threads, H=%d ==\n", threads, hps)
	fmt.Fprintf(w, "%-8s %12s %12s %10s   %s\n", "scheme", "maxPending", "sampledMax", "freed", "paper bound")
	for _, r := range rows {
		res := MeasureBoundObs(r.scheme, threads, hps, cfg.Duration, cfg.SamplePeriod)
		fmt.Fprintf(w, "%-8s %12d %12d %10d   %s\n", r.scheme, res.MaxPending, res.SampledMaxPending, res.Freed, r.bound)
		if r.scheme == "ptp" && res.MaxPending > int64(threads*(hps+1)) {
			return fmt.Errorf("PTP bound violated: %d > %d", res.MaxPending, threads*(hps+1))
		}
	}
	fmt.Fprintf(w, "(PTP's hard bound is t(H+1) = %d)\n", threads*(hps+1))
	return nil
}

type boundNode struct{ self uint64 }

// BoundResult is one Table 1 measurement. MaxPending is the exact
// high-water retired-not-freed count from the scheme's own counters
// (used for the PTP t(H+1) enforcement); SampledMaxPending is the same
// backlog as seen through the obs.Sampler cadence — the figure
// cmd/membound and the kvserver report, kept here so the bench harness
// and the service share one source of truth for "how deep did the
// backlog get".
type BoundResult struct {
	Scheme            string
	MaxPending        int64
	SampledMaxPending int64
	Freed             uint64
}

// MeasureBound runs the adversarial stress from the reclaim tests at
// benchmark scale and reports the scheme's high-water pending count.
func MeasureBound(scheme string, threads, hps int, dur time.Duration) (maxPending int64, freed uint64) {
	res := MeasureBoundObs(scheme, threads, hps, dur, 0)
	return res.MaxPending, res.Freed
}

// MeasureBoundObs is MeasureBound with the observability layer attached:
// the scheme is constructed with a private obs.Registry and a Sampler
// polls its pending gauge every samplePeriod (default 1ms) for the
// sampled-backlog column.
func MeasureBoundObs(scheme string, threads, hps int, dur, samplePeriod time.Duration) BoundResult {
	if samplePeriod <= 0 {
		samplePeriod = time.Millisecond
	}
	reg := obs.NewRegistry()
	a := arena.New[boundNode]()
	s := reclaim.MustNew(scheme, reclaim.Env{Free: a.FreeT, Hdr: a.Header},
		reclaim.Options{MaxThreads: threads, MaxHPs: hps, Label: scheme, Metrics: reg})
	sampler := obs.NewSampler(reg, samplePeriod)
	sampler.Register("backlog", func() int64 { return s.Stats().RetiredNotFreed })
	sampler.Start()
	defer sampler.Stop()

	slots := make([]atomic.Uint64, 64)
	for i := range slots {
		h, p := a.Alloc()
		p.self = uint64(h)
		s.OnAlloc(h)
		slots[i].Store(uint64(h))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	readers := threads / 2
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rt.PaddedUint64{}
			rng.Store(uint64(tid + 1))
			x := uint64(tid + 1)
			for !stop.Load() {
				x = x*6364136223846793005 + 1442695040888963407
				s.BeginOp(tid)
				s.GetProtected(tid, int(x>>32)%hps, &slots[x%uint64(len(slots))])
				if x%5 == 0 {
					s.ClearAll(tid)
					s.EndOp(tid)
				}
			}
			s.ClearAll(tid)
			s.EndOp(tid)
		}(w)
	}
	for w := readers; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			x := uint64(tid * 977)
			for !stop.Load() {
				x = x*6364136223846793005 + 1442695040888963407
				h, p := a.AllocT(tid)
				p.self = uint64(h)
				s.OnAlloc(h)
				old := arena.Handle(slots[x%uint64(len(slots))].Swap(uint64(h)))
				if !old.IsNil() {
					s.Retire(tid, old)
				}
			}
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	sampler.Stop()
	st := s.Stats()
	return BoundResult{
		Scheme:            scheme,
		MaxPending:        st.MaxRetiredNotFreed,
		SampledMaxPending: sampler.Max("backlog"),
		Freed:             st.Freed,
	}
}
