package bench

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/obs"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket,
	// and bucket indices must be monotone in the value.
	for idx := 0; idx < obs.HistBuckets; idx++ {
		mid := bucketMid(idx)
		if got := bucketOfDur(mid); got != idx {
			t.Fatalf("bucketOfDur(bucketMid(%d)=%d) = %d", idx, mid, got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40, math.MaxUint64} {
		idx := bucketOfDur(v)
		if idx < prev {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx >= obs.HistBuckets {
			t.Fatalf("bucket index %d out of range for %d", idx, v)
		}
		prev = idx
	}
}

func TestHistRelativeError(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform values spanning ns..minutes.
		v := uint64(math.Exp(rng.Float64()*25)) + 1
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if relErr > 0.05 {
			t.Errorf("q=%v: got %d exact %d relErr %.3f", q, got, exact, relErr)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q=1 %d != max %d", h.Quantile(1), h.Max())
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, whole Hist
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1_000_000))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		whole.Record(v)
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() {
		t.Fatalf("merge count/max mismatch: %d/%d vs %d/%d", a.Count(), a.Max(), whole.Count(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merge quantile %v mismatch: %d vs %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if a.Mean() != whole.Mean() {
		t.Fatalf("merge mean mismatch")
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty hist not zero")
	}
	s := h.Summary()
	if s.Count != 0 || s.P99Us != 0 {
		t.Fatal("empty summary not zero")
	}
}
