package rt

import (
	"sync"
	"testing"
)

func TestRegistryAcquireRelease(t *testing.T) {
	r := NewRegistry(4)
	a := r.Acquire()
	b := r.Acquire()
	if a == b {
		t.Fatalf("duplicate tids %d %d", a, b)
	}
	if a != 0 || b != 1 {
		t.Fatalf("expected dense low tids, got %d %d", a, b)
	}
	r.Release(a)
	c := r.Acquire()
	if c != a {
		t.Fatalf("released tid not reused: got %d want %d", c, a)
	}
	r.Release(b)
	r.Release(c)
}

func TestRegistryWatermark(t *testing.T) {
	r := NewRegistry(8)
	t0 := r.Acquire()
	t1 := r.Acquire()
	t2 := r.Acquire()
	if r.Watermark() != 3 {
		t.Fatalf("watermark %d, want 3", r.Watermark())
	}
	r.Release(t1)
	r.Release(t2)
	if r.Watermark() != 3 {
		t.Fatal("watermark must be monotone")
	}
	r.Release(t0)
}

func TestRegistryFullPanics(t *testing.T) {
	r := NewRegistry(2)
	r.Acquire()
	r.Acquire()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when registry exhausted")
		}
	}()
	r.Acquire()
}

func TestRegistryDoubleReleasePanics(t *testing.T) {
	r := NewRegistry(2)
	tid := r.Acquire()
	r.Release(tid)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	r.Release(tid)
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(64)
	var wg sync.WaitGroup
	seen := make(chan int, 64*100)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tid := r.Acquire()
				seen <- tid
				r.Release(tid)
			}
		}()
	}
	wg.Wait()
	close(seen)
	for tid := range seen {
		if tid < 0 || tid >= 64 {
			t.Fatalf("tid %d out of range", tid)
		}
	}
}

func TestConcurrentUniqueTids(t *testing.T) {
	r := NewRegistry(32)
	var mu sync.Mutex
	held := map[int]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid := r.Acquire()
			mu.Lock()
			if held[tid] {
				mu.Unlock()
				panic("tid handed out twice concurrently")
			}
			held[tid] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(held) != 32 {
		t.Fatalf("expected 32 distinct tids, got %d", len(held))
	}
}

func TestBackoffTerminates(t *testing.T) {
	var b Backoff
	for i := 0; i < 20; i++ {
		b.Spin()
	}
	b.Reset()
	b.Spin()
}

func TestPaddedUint64Ops(t *testing.T) {
	var p PaddedUint64
	p.Store(5)
	if p.Add(3) != 8 {
		t.Fatal("Add")
	}
	if !p.CompareAndSwap(8, 10) {
		t.Fatal("CAS")
	}
	if p.Swap(0) != 10 {
		t.Fatal("Swap")
	}
	if p.Load() != 0 {
		t.Fatal("Load")
	}
}
