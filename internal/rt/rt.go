// Package rt supplies small runtime substrates shared by the reclamation
// schemes and data structures: a thread-id registry standing in for the
// C++ implementation's thread_local tid, cache-line padded counters, and
// a bounded exponential backoff.
package rt

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// CacheLine is the padding granularity used to keep per-thread hot words
// on distinct cache lines (128 covers adjacent-line prefetching).
const CacheLine = 128

// MaxThreads is the default registry capacity.
const MaxThreads = 256

// Registry hands out dense thread ids in [0, cap). Every worker goroutine
// that touches a reclamation scheme acquires a tid for its lifetime and
// releases it when done, mirroring the per-thread arrays the paper
// indexes with thread_local tids.
type Registry struct {
	capacity  int
	slots     []PaddedUint64 // 0 = free, 1 = taken
	watermark atomic.Int64   // highest tid ever taken + 1
}

// NewRegistry creates a registry for up to capacity threads.
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = MaxThreads
	}
	return &Registry{capacity: capacity, slots: make([]PaddedUint64, capacity)}
}

// Acquire claims the lowest free tid. It panics if the registry is full —
// a configuration error, not a runtime condition.
func (r *Registry) Acquire() int {
	for tid := 0; tid < r.capacity; tid++ {
		if r.slots[tid].Load() == 0 && r.slots[tid].CompareAndSwap(0, 1) {
			for {
				w := r.watermark.Load()
				if int64(tid) < w || r.watermark.CompareAndSwap(w, int64(tid)+1) {
					break
				}
			}
			return tid
		}
	}
	panic(fmt.Sprintf("rt: registry full (%d threads)", r.capacity))
}

// Release returns tid to the pool.
func (r *Registry) Release(tid int) {
	if tid < 0 || tid >= r.capacity || !r.slots[tid].CompareAndSwap(1, 0) {
		panic(fmt.Sprintf("rt: release of unowned tid %d", tid))
	}
}

// Cap returns the registry capacity.
func (r *Registry) Cap() int { return r.capacity }

// Watermark returns one past the highest tid ever handed out; scheme
// scans iterate to the watermark instead of the full capacity.
func (r *Registry) Watermark() int { return int(r.watermark.Load()) }

// PaddedUint64 is an atomic uint64 alone on its cache line.
type PaddedUint64 struct {
	v atomic.Uint64
	_ [CacheLine - 8]byte
}

// Load returns the value.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store sets the value.
func (p *PaddedUint64) Store(x uint64) { p.v.Store(x) }

// Add adds delta and returns the new value.
func (p *PaddedUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// CompareAndSwap performs a CAS.
func (p *PaddedUint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }

// Swap exchanges the value.
func (p *PaddedUint64) Swap(x uint64) uint64 { return p.v.Swap(x) }

// Backoff is a bounded exponential spin backoff for CAS retry loops.
type Backoff struct {
	n int
}

// Spin waits a little longer than last time, yielding to the scheduler
// once the spin budget saturates.
func (b *Backoff) Spin() {
	if b.n < 10 {
		b.n++
	}
	for i := 0; i < 1<<b.n; i++ {
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
}

// Reset returns the backoff to its initial (shortest) delay.
func (b *Backoff) Reset() { b.n = 0 }
