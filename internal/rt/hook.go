package rt

import "sync/atomic"

// Torture-harness injection points. The arena, the manual reclamation
// schemes and the OrcGC core call Step at the few places where an
// adversarial scheduler can do the most damage: right after a
// protection loop stabilizes (a reader parked here holds a pinned
// reference), on the retire and free paths, and around the allocator's
// slot transitions. internal/torture installs a hook that turns these
// call sites into forced runtime.Gosched perturbation points and
// stall gates; with no hook installed the cost is a single atomic bool
// load and an untaken branch, so the hot paths stay uninstrumented in
// production.

// Site identifies one class of injection point.
type Site uint8

const (
	// SiteProtect fires after a protection loop has validated its
	// publication — the caller holds a hazardous reference (or an
	// epoch/era reservation) across whatever happens inside the hook.
	SiteProtect Site = iota
	// SiteRetire fires when an unreachable object is handed to a
	// scheme's retire path, before any scan.
	SiteRetire
	// SiteReclaim fires when a scheme actually frees a retired object.
	SiteReclaim
	// SiteAlloc fires inside the arena's alloc path, between claiming a
	// slot and publishing its new generation.
	SiteAlloc
	// SiteFree fires inside the arena's free path, after the generation
	// bump invalidated outstanding handles.
	SiteFree

	// NumSites is the number of distinct injection sites.
	NumSites
)

var (
	hookOn atomic.Bool
	hookFn atomic.Pointer[func(Site, int)]
)

// SetHook installs f as the global injection hook (nil uninstalls).
// Install/uninstall only around a torture run: the flag flip is atomic,
// but a hook that mutates shared state must itself be safe against
// calls racing the uninstall.
func SetHook(f func(site Site, tid int)) {
	if f == nil {
		hookOn.Store(false)
		hookFn.Store(nil)
		return
	}
	hookFn.Store(&f)
	hookOn.Store(true)
}

// Step is the injection point. tid is the calling reclamation thread
// (-1 when the caller has no tid). The disabled fast path is one atomic
// load.
func Step(site Site, tid int) {
	if hookOn.Load() {
		if f := hookFn.Load(); f != nil {
			(*f)(site, tid)
		}
	}
}
