#!/bin/sh
# bench-cluster: measure the proxy against a direct single-node
# connection and its scaling across backend counts, refreshing
# BENCH_cluster.json with one entry per label: direct-1 (kvload
# straight at one kvserver), then proxy-1/proxy-2/proxy-3 (the same
# load through kvproxy fronting 1, 2, or 3 backends at R=2, clamped).
# Read-heavy mix — that is the case sharding and hedging accelerate.
#
# Invoked by `make bench-cluster`, which builds bin/ first.
set -eu

BIN=${BIN:-bin}
OUT=${OUT:-BENCH_cluster.json}
DUR=${DUR:-3s}
WARMUP=${WARMUP:-1s}
CONNS=${CONNS:-8}
MIX='get=90,put=9,del=1'
KEYS=50000
PROXY=127.0.0.1:7310
TMP=${TMPDIR:-/tmp}
SCHEMES="orcgc hp ebr"

PIDS=
PROXY_PID=
cleanup() {
	[ -n "$PROXY_PID" ] && kill "$PROXY_PID" 2>/dev/null || true
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

start_backends() { # $1 = count; sets ADDRS, PIDS
	ADDRS=
	PIDS=
	bi=0
	for s in $SCHEMES; do
		bi=$((bi + 1))
		[ $bi -gt "$1" ] && break
		a="127.0.0.1:$((7310 + bi))"
		"$BIN"/kvserver -addr "$a" -reclaim "$s" >"$TMP/bc_s$bi.log" 2>&1 &
		PIDS="$PIDS $!"
		ADDRS="${ADDRS:+$ADDRS,}$a"
	done
	sleep 1
}

stop_all() {
	for p in $PIDS; do
		kill -INT "$p" 2>/dev/null || true
		wait "$p" || true
	done
	PIDS=
}

run_load() { # $1 = target addr, $2 = label
	"$BIN"/kvload -addr "$1" -conns "$CONNS" -duration "$DUR" -warmup "$WARMUP" \
		-dist zipfian -theta 0.99 -keys $KEYS -mix "$MIX" \
		-label "$2" -out "$OUT"
}

# direct-1: the no-proxy baseline every proxy-N entry is compared to.
start_backends 1
run_load "${ADDRS}" direct-1
stop_all

for n in 1 2 3; do
	start_backends "$n"
	"$BIN"/kvproxy -addr "$PROXY" -backends "$ADDRS" -replicas 2 \
		>"$TMP/bc_proxy.log" 2>&1 &
	PROXY_PID=$!
	sleep 1
	run_load "$PROXY" "proxy-$n"
	kill -INT "$PROXY_PID"
	wait "$PROXY_PID" || true
	PROXY_PID=
	stop_all
done

echo "bench-cluster: wrote $OUT"
