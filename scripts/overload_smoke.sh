#!/bin/sh
# overload-smoke: a race-built kvserver with a deliberately small
# admission bound (2 inflight slots, 2 queue waiters) takes two kvload
# runs with per-op wire budgets: an unloaded baseline (2 conns) and an
# overload run (24 conns — each holds one op in the server at a time,
# so that is 6× the 2-slot + 2-waiter capacity). Both runs use a
# scan-heavy mix with wide scans so time-in-execution, not per-conn
# socket IO, is where the server's capacity goes. The
# overload run must be *shed*, not queued: zero transport errors, a
# non-zero shed count, and an accepted-op p99 within 3× the unloaded
# baseline (with an absolute floor so a fast machine's tiny baseline
# doesn't make the ratio noise). The server must then pass its
# post-drain leak verdict on SIGINT — refused work left nothing behind.
#
# Invoked by `make overload-smoke`, which builds bin/ first.
set -eu

BIN=${BIN:-bin}
ADDR=127.0.0.1:7401
TMP=${TMPDIR:-/tmp}

SRV=
cleanup() {
	[ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
}
trap cleanup EXIT

"$BIN"/kvserver -addr "$ADDR" -reclaim orcgc \
	-max-inflight 2 -max-queue 2 >"$TMP/os_srv.log" 2>&1 & SRV=$!
sleep 1

# p99 <file>: pull the microsecond p99 out of a kvload summary line
# ("... p99 1234.5us ..."), truncated to an integer for shell math.
p99() {
	awk '{for (i = 1; i < NF; i++) if ($i == "p99") {sub(/us$/, "", $(i+1)); printf "%d\n", $(i+1); exit}}' "$1"
}
# field <name> <file>: pull the count before "<name>," from the
# trailing "(N ops, N errs, N shed, N expired)" tally.
field() {
	awk -v want="$1," '{for (i = 2; i <= NF; i++) if ($i == want) {gsub(/[(,]/, "", $(i-1)); print $(i-1); exit}}' "$2"
}

# The mix leans on wide SCANs: they are the op that actually occupies
# an inflight slot for a while, so admission — not connection IO — is
# what saturates.
MIX='get=30,put=20,del=10,scan=40'

"$BIN"/kvload -addr "$ADDR" -conns 2 -duration 3s -warmup 500ms -pipeline 8 \
	-dist uniform -keys 20000 -mix "$MIX" -scanlen 1024 \
	-budget 250ms -out '' | tee "$TMP/os_base.txt"
BASE_P99=$(p99 "$TMP/os_base.txt")
[ -n "$BASE_P99" ] || { echo "overload-smoke: no baseline p99 parsed"; exit 1; }

"$BIN"/kvload -addr "$ADDR" -conns 24 -duration 3s -warmup 500ms -pipeline 8 \
	-dist uniform -keys 20000 -mix "$MIX" -scanlen 1024 \
	-budget 250ms -preload=false -out '' | tee "$TMP/os_hot.txt"
HOT_P99=$(p99 "$TMP/os_hot.txt")
HOT_ERRS=$(field errs "$TMP/os_hot.txt")
HOT_SHED=$(field shed "$TMP/os_hot.txt")

[ "$HOT_ERRS" = 0 ] || {
	echo "overload-smoke: overload run hit $HOT_ERRS transport errors (want sheds, not failures)"
	exit 1
}
[ "$HOT_SHED" -gt 0 ] || {
	echo "overload-smoke: 24 conns against 2 slots + 2 waiters shed nothing — admission never engaged"
	exit 1
}
# Accepted-op latency must not collapse: p99 within 3× baseline, floor
# 50ms (race-built binaries on shared CI runners are noisy).
BOUND=$((BASE_P99 * 3))
[ "$BOUND" -ge 50000 ] || BOUND=50000
[ "$HOT_P99" -le "$BOUND" ] || {
	echo "overload-smoke: overloaded p99 ${HOT_P99}us exceeds bound ${BOUND}us (baseline ${BASE_P99}us) — saturation queued instead of shedding"
	exit 1
}

# Graceful teardown: kvserver prints the admission ledger and exits
# non-zero if the post-drain leak check fails.
kill -INT "$SRV"
wait "$SRV" || { echo "overload-smoke: leak check failed"; cat "$TMP/os_srv.log"; exit 1; }
SRV=
grep -q 'admission: shed=' "$TMP/os_srv.log" || {
	echo "overload-smoke: server printed no admission ledger"
	cat "$TMP/os_srv.log"
	exit 1
}

echo "overload-smoke: OK (baseline p99 ${BASE_P99}us, overloaded p99 ${HOT_P99}us, ${HOT_SHED} shed)"
