#!/bin/sh
# profile-cluster: capture a CPU profile of kvproxy while kvload drives
# it — the profile that motivated (and now verifies) the zero-alloc,
# goroutine-free fast path. Three backends at R=2, a read-heavy zipfian
# load, and a 10s pprof capture in the middle of it.
#
#	make profile-cluster
#	go tool pprof bin/kvproxy "$PROF"
#
# Invoked by `make profile-cluster`, which builds bin/ first.
set -eu

BIN=${BIN:-bin}
TMP=${TMPDIR:-/tmp}
PROF=${PROF:-$TMP/kvproxy_cpu.pprof}
SECONDS_CPU=${SECONDS_CPU:-10}
PROXY=127.0.0.1:7410
PPROF=127.0.0.1:7411
CONNS=${CONNS:-8}

PIDS=
PROXY_PID=
LOAD_PID=
cleanup() {
	[ -n "$LOAD_PID" ] && kill "$LOAD_PID" 2>/dev/null || true
	[ -n "$PROXY_PID" ] && kill "$PROXY_PID" 2>/dev/null || true
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

bi=0
ADDRS=
for s in orcgc hp ebr; do
	bi=$((bi + 1))
	a="127.0.0.1:$((7410 + bi + 1))"
	"$BIN"/kvserver -addr "$a" -reclaim "$s" >"$TMP/pc_s$bi.log" 2>&1 &
	PIDS="$PIDS $!"
	ADDRS="${ADDRS:+$ADDRS,}$a"
done
sleep 1

"$BIN"/kvproxy -addr "$PROXY" -backends "$ADDRS" -replicas 2 \
	-metrics "$PPROF" -pprof >"$TMP/pc_proxy.log" 2>&1 &
PROXY_PID=$!
sleep 1

# Load outlives the capture window on both sides so the profile sees
# only steady state.
"$BIN"/kvload -addr "$PROXY" -conns "$CONNS" -duration $((SECONDS_CPU + 6))s \
	-warmup 1s -dist zipfian -theta 0.99 -keys 50000 \
	-mix 'get=90,put=9,del=1' -out '' >"$TMP/pc_load.log" 2>&1 &
LOAD_PID=$!
sleep 2

curl -fsS -o "$PROF" "http://$PPROF/debug/pprof/profile?seconds=$SECONDS_CPU"

wait "$LOAD_PID"
LOAD_PID=
cat "$TMP/pc_load.log"
kill -INT "$PROXY_PID"
wait "$PROXY_PID" || true
PROXY_PID=
for p in $PIDS; do
	kill -INT "$p" 2>/dev/null || true
	wait "$p" || true
done
PIDS=

echo "profile-cluster: wrote $PROF"
echo "profile-cluster: inspect with: go tool pprof $BIN/kvproxy $PROF"
