#!/bin/sh
# cluster-smoke: three race-built kvserver backends on distinct
# reclamation schemes (orcgc, hp, ebr) behind a race-built kvproxy at
# R=2. Mid-run one backend is kill -9'd and later restarted empty on
# the same address; the proxy must mask the outage (kvload finishes
# with 0 errs), resync the rejoiner, report every per-backend inflight
# gauge back at 0 after the drain, and every backend — including the
# restarted one — must pass its leak verdict on SIGINT.
#
# Invoked by `make cluster-smoke`, which builds bin/ first.
set -eu

BIN=${BIN:-bin}
A1=127.0.0.1:7301
A2=127.0.0.1:7302
A3=127.0.0.1:7303
PROXY=127.0.0.1:7300
PMET=127.0.0.1:7304
TMP=${TMPDIR:-/tmp}

S1=; S2=; S3=; PP=; CHAOS=
cleanup() {
	# Best-effort teardown of anything the failure path left running.
	for p in $S1 $S3 $PP $CHAOS; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	[ -f "$TMP/cs_s2.pid" ] && kill "$(cat "$TMP/cs_s2.pid")" 2>/dev/null || true
	kill "$S2" 2>/dev/null || true
}
trap cleanup EXIT

"$BIN"/kvserver -addr "$A1" -reclaim orcgc >"$TMP/cs_s1.log" 2>&1 & S1=$!
"$BIN"/kvserver -addr "$A2" -reclaim hp    >"$TMP/cs_s2.log" 2>&1 & S2=$!
"$BIN"/kvserver -addr "$A3" -reclaim ebr   >"$TMP/cs_s3.log" 2>&1 & S3=$!
sleep 1
"$BIN"/kvproxy -addr "$PROXY" -backends "$A1,$A2,$A3" -replicas 2 \
	-metrics "$PMET" >"$TMP/cs_proxy.log" 2>&1 & PP=$!
sleep 1

# Chaos: 2s into the load, SIGKILL the hp backend; 2s later restart it
# with a fresh empty store on the same address. The subshell waits on
# the restarted server so `wait $CHAOS` later surfaces its leak-verdict
# exit status.
rm -f "$TMP/cs_s2.pid"
(
	sleep 2
	kill -9 "$S2" 2>/dev/null || true
	sleep 2
	"$BIN"/kvserver -addr "$A2" -reclaim hp >"$TMP/cs_s2b.log" 2>&1 &
	echo $! >"$TMP/cs_s2.pid"
	wait $!
) & CHAOS=$!

"$BIN"/kvload -addr "$PROXY" -conns 4 -duration 8s -warmup 500ms \
	-dist uniform -keys 20000 -mix get=50,put=44,del=5,scan=1 \
	-drain -out '' | tee "$TMP/cs_load.txt"
grep -q ', 0 errs,' "$TMP/cs_load.txt" || {
	echo "cluster-smoke: kvload reported errors (the proxy failed to mask the outage)"
	exit 1
}

# The drain has been acked, so once the rejoiner's resync settles every
# backend pool must be idle: poll the proxy's /metrics until all three
# per-backend inflight gauges read 0.
ok=0
i=0
while [ $i -lt 60 ]; do
	curl -fsS "http://$PMET/metrics" >"$TMP/cs_metrics.txt" 2>/dev/null || true
	if [ "$(grep -c '^cluster/backend/[^ ]*/inflight 0$' "$TMP/cs_metrics.txt")" = 3 ]; then
		ok=1
		break
	fi
	sleep 0.5
	i=$((i + 1))
done
if [ $ok != 1 ]; then
	echo "cluster-smoke: per-backend inflight gauges did not return to 0 after drain:"
	grep '^cluster/' "$TMP/cs_metrics.txt" || true
	exit 1
fi
grep -q '^cluster/ops/routed [1-9]' "$TMP/cs_metrics.txt" || {
	echo "cluster-smoke: proxy routed-op counter missing or zero"
	exit 1
}

# Graceful teardown, leak verdicts all around: the proxy first, then
# each backend. kvserver exits non-zero if its post-drain leak check
# fails; the restarted backend's status arrives via the chaos subshell.
kill -INT "$PP"; wait "$PP"; PP=
kill -INT "$S1"; wait "$S1" || { echo "cluster-smoke: backend $A1 leak check failed"; cat "$TMP/cs_s1.log"; exit 1; }
S1=
kill -INT "$S3"; wait "$S3" || { echo "cluster-smoke: backend $A3 leak check failed"; cat "$TMP/cs_s3.log"; exit 1; }
S3=
kill -INT "$(cat "$TMP/cs_s2.pid")"
wait "$CHAOS" || { echo "cluster-smoke: restarted backend $A2 leak check failed"; cat "$TMP/cs_s2b.log"; exit 1; }
CHAOS=
grep -q '"leak_ok": true' "$TMP/cs_s2b.log" || {
	echo "cluster-smoke: restarted backend printed no clean leak report"
	cat "$TMP/cs_s2b.log"
	exit 1
}

echo "cluster-smoke: OK"
