// Cross-module integration tests: every subject the benchmark registry
// can build — each data structure under each reclamation configuration —
// is driven through a common semantic battery and a concurrent churn
// with the strict arena acting as the use-after-free detector.
package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
)

func allSetSubjects() []string {
	var names []string
	names = append(names, bench.ListSchemeNames()...)
	names = append(names, bench.OrcListNames()...)
	names = append(names, bench.TreeSkipNames()...)
	names = append(names, bench.HashMapNames()...)
	return names
}

// TestEverySetSubjectSemantics: sequential model check per subject.
func TestEverySetSubjectSemantics(t *testing.T) {
	for _, name := range allSetSubjects() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			inst := bench.NewSet(name, 2)
			model := map[uint64]bool{}
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 8000; i++ {
				k := uint64(rng.Intn(128)) + 1
				switch rng.Intn(3) {
				case 0:
					if inst.Set.Insert(0, k) != !model[k] {
						t.Fatalf("%s: insert(%d) diverged at %d", name, k, i)
					}
					model[k] = true
				case 1:
					if inst.Set.Remove(0, k) != model[k] {
						t.Fatalf("%s: remove(%d) diverged at %d", name, k, i)
					}
					model[k] = false
				default:
					if inst.Set.Contains(0, k) != model[k] {
						t.Fatalf("%s: contains(%d) diverged at %d", name, k, i)
					}
				}
			}
		})
	}
}

// TestEverySetSubjectConcurrent: short shared-key churn per subject;
// panics (UAF, corruption) fail the test.
func TestEverySetSubjectConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range allSetSubjects() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 4
			inst := bench.NewSet(name, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := uint64(tid)*7919 + 3
					for i := 0; i < 4000; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						k := rng%48 + 1
						switch rng % 3 {
						case 0:
							inst.Set.Insert(tid, k)
						case 1:
							inst.Set.Remove(tid, k)
						default:
							inst.Set.Contains(tid, k)
						}
					}
				}(w)
			}
			wg.Wait()
			for k := uint64(1); k <= 48; k++ {
				inst.Set.Remove(0, k)
				if inst.Set.Contains(0, k) {
					t.Fatalf("%s: key %d survived removal", name, k)
				}
			}
		})
	}
}

// TestEveryQueueSubjectConservation: multiset in == multiset out for
// every queue subject.
func TestEveryQueueSubjectConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range bench.QueueNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const workers = 4
			const per = 1500
			inst := bench.NewQueue(name, workers)
			var mu sync.Mutex
			var sumIn, sumOut uint64
			var cnt int
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					var in, out uint64
					var c int
					for i := 0; i < per; i++ {
						v := uint64(tid*per+i) & 0xFFFFFF
						inst.Queue.Enqueue(tid, v)
						in += v
						if got, ok := inst.Queue.Dequeue(tid); ok {
							out += got
							c++
						}
					}
					mu.Lock()
					sumIn += in
					sumOut += out
					cnt += c
					mu.Unlock()
				}(w)
			}
			wg.Wait()
			for {
				v, ok := inst.Queue.Dequeue(0)
				if !ok {
					break
				}
				sumOut += v
				cnt++
			}
			if cnt != workers*per {
				t.Fatalf("%s: %d of %d items", name, cnt, workers*per)
			}
			if sumIn != sumOut {
				t.Fatalf("%s: sum in=%d out=%d", name, sumIn, sumOut)
			}
		})
	}
}
