// Command orcvet checks the repository against the OrcGC protection
// discipline (see internal/analysis/orcvet). It runs two ways:
//
//	orcvet ./...                      standalone: load, typecheck, and
//	                                  analyze the matched packages
//	go vet -vettool=$(which orcvet)   as a vettool: the go command
//	                                  drives it one package at a time
//
// Standalone mode exits 1 on findings; vettool mode follows the vet
// protocol (diagnostics to stderr, exit 2).
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/orcvet"
)

func main() {
	args := os.Args[1:]

	// Vettool protocol handshakes.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			orcvet.PrintVersion(os.Stdout)
			return
		case a == "-flags" || a == "--flags":
			orcvet.PrintFlags(os.Stdout)
			return
		}
	}

	// Vettool unit mode: the last argument is a path to vet.cfg.
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		count, err := orcvet.RunVetUnit(args[n-1], os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if count > 0 {
			os.Exit(2)
		}
		return
	}

	// Standalone mode.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fset, diags, err := orcvet.RunDir(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(orcvet.Format(fset, d))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
