// kvproxy fronts a set of kvserver backends with the orccluster layer:
// consistent-hash sharding, replication, hedged reads, circuit-broken
// connection pools, and live topology changes — all behind the same
// length-prefixed protocol, so kvload and kvstore.Client work against
// it unmodified.
//
//	kvproxy -addr :7000 -backends 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072
//	kvproxy -backends ... -replicas 2 -metrics :7001
//
// The admin verbs (CLUSTER_INFO/ADD/DRAIN/REMOVE) ride the same port;
// see kvstore.Client.ClusterInfo and friends.
//
// SIGINT/SIGTERM shuts down gracefully: stop accepting, finish
// in-flight pipelines, tear down the backend pools. The backends stay
// up — draining them (and checking their leak verdicts) is a separate
// operator step, which is exactly what `make cluster-smoke` exercises.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "client listen address")
	backends := flag.String("backends", "", "comma-separated kvserver addresses (required)")
	replicas := flag.Int("replicas", 2, "copies per key (clamped to backend count)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "ring vnode budget per backend")
	lanes := flag.Int("lanes", 4, "pipelined connections per backend")
	depth := flag.Int("depth", 128, "in-flight requests per lane")
	ioTimeout := flag.Duration("io-timeout", 10*time.Second, "per backend response read timeout")
	waitReady := flag.Duration("wait-ready", 15*time.Second, "wait for all backends to connect before serving (0 = serve immediately)")
	metricsAddr := flag.String("metrics", "", "metrics listen address, e.g. :7001 ('' = disabled)")
	sample := flag.Duration("sample", 100*time.Millisecond, "sampler period (with -metrics)")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof on the metrics address (requires -metrics)")
	flag.Parse()

	if *backends == "" {
		fmt.Fprintln(os.Stderr, "kvproxy: -backends is required")
		os.Exit(2)
	}
	list := strings.Split(*backends, ",")
	for i := range list {
		list[i] = strings.TrimSpace(list[i])
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}

	p := cluster.New(cluster.Config{
		Backends:  list,
		Replicas:  *replicas,
		VNodes:    *vnodes,
		Lanes:     *lanes,
		Depth:     *depth,
		IOTimeout: *ioTimeout,
		Metrics:   reg,
	})

	var sampler *obs.Sampler
	if reg != nil {
		sampler = obs.NewSampler(reg, *sample)
		sampler.Start()
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvproxy: metrics listener: %v\n", err)
			os.Exit(2)
		}
		mux := obs.Mux(reg)
		if *pprofOn {
			obs.AttachPprof(mux)
		}
		go http.Serve(mln, mux)
		defer mln.Close()
		fmt.Fprintf(os.Stderr, "kvproxy: metrics on http://%s/metrics\n", mln.Addr())
	} else if *pprofOn {
		fmt.Fprintln(os.Stderr, "kvproxy: -pprof needs -metrics for a listen address")
		os.Exit(2)
	}

	if *waitReady > 0 {
		if err := p.WaitReady(*waitReady); err != nil {
			fmt.Fprintf(os.Stderr, "kvproxy: %v\n", err)
			os.Exit(1)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvproxy: %v\n", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "kvproxy: shutting down...")
		p.Shutdown()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "kvproxy: %d backends, R=%d, on %s\n", len(list), *replicas, *addr)
	if err := p.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "kvproxy: %v\n", err)
		os.Exit(1)
	}
	<-done
	if sampler != nil {
		sampler.Stop()
	}
}
