// kvserver serves orcstore — the sharded lock-free KV store — over the
// length-prefixed binary protocol in internal/kvstore, under any of the
// repo's reclamation schemes.
//
//	kvserver -addr :7070 -reclaim orcgc
//	kvserver -reclaim hp -shards 16 -max-conns 32
//
// SIGINT/SIGTERM triggers a graceful drain: stop accepting, let
// in-flight pipelines complete, empty the store, and print the leak
// report (whether arena Live returned to the post-construction
// baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	scheme := flag.String("reclaim", "orcgc", "reclamation scheme: "+strings.Join(kvstore.Modes(), "|"))
	shards := flag.Int("shards", 8, "shard count (power of two)")
	buckets := flag.Int("buckets", 1024, "hash buckets per shard")
	maxConns := flag.Int("max-conns", 63, "max concurrent connections (each holds a reclamation tid)")
	flag.Parse()

	st, err := kvstore.New(kvstore.Config{
		Scheme:     *scheme,
		Shards:     *shards,
		Buckets:    *buckets,
		MaxThreads: *maxConns + 1, // tid 0 is the server's own
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		os.Exit(2)
	}
	srv := kvstore.NewServer(st)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "kvserver: draining...")
		srv.Shutdown()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "kvserver: %s on %s (%d shards, %d conns)\n",
		st.Scheme(), *addr, *shards, *maxConns)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		os.Exit(1)
	}
	<-done

	rep := st.DrainAndCheck(0)
	js, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Printf("%s\n", js)
	if !rep.LeakOK {
		fmt.Fprintln(os.Stderr, "kvserver: LEAK CHECK FAILED")
		os.Exit(1)
	}
}
