// kvserver serves orcstore — the sharded lock-free KV store — over the
// length-prefixed binary protocol in internal/kvstore, under any of the
// repo's reclamation schemes.
//
//	kvserver -addr :7070 -reclaim orcgc
//	kvserver -reclaim hp -shards 16 -max-conns 32
//	kvserver -metrics :7071            # text/JSON scrape on /metrics
//	kvserver -max-inflight 8 -max-queue 16   # admission control
//
// With -max-inflight set, at most that many data ops execute
// concurrently; up to -max-queue more wait for a slot (re-checking any
// wire budget after the wait) and arrivals past both bounds are shed
// with StatusOverloaded — overload degrades to fast-fail instead of
// latency collapse, and the shed/deadline counters surface on /metrics
// ("kv/server/shed_total", "kv/server/deadline_exceeded_total").
//
// With -metrics set, a second HTTP listener exposes the observability
// registry: /metrics (text, ?format=json for JSON), /debug/reclaim (the
// retire-path trace ring, populated only under -trace), and /debug/vars
// (expvar-compatible). A background sampler records the reclamation
// backlog every -sample so scrape-time gauges also carry a
// between-scrapes high-water mark ("sampled/backlog").
//
// SIGINT/SIGTERM triggers a graceful drain: stop accepting, let
// in-flight pipelines complete, empty the store, and print the leak
// report (whether arena Live returned to the post-construction
// baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/kvstore"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	scheme := flag.String("reclaim", "orcgc", "reclamation scheme: "+strings.Join(kvstore.Modes(), "|"))
	shards := flag.Int("shards", 8, "shard count (power of two)")
	buckets := flag.Int("buckets", 1024, "hash buckets per shard")
	maxConns := flag.Int("max-conns", 63, "max concurrent connections (each holds a reclamation tid)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing data ops (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max data ops queued for an inflight slot (0 = 2x max-inflight)")
	metricsAddr := flag.String("metrics", "", "metrics listen address, e.g. :7071 ('' = disabled)")
	sample := flag.Duration("sample", 100*time.Millisecond, "backlog sampler period (with -metrics)")
	trace := flag.Bool("trace", false, "record retire-path events into the /debug/reclaim ring")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof on the metrics address (requires -metrics)")
	flag.Parse()

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}

	st, err := kvstore.New(kvstore.Config{
		Scheme:     *scheme,
		Shards:     *shards,
		Buckets:    *buckets,
		MaxThreads: *maxConns + 1, // tid 0 is the server's own
		Metrics:    reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		os.Exit(2)
	}
	srv := kvstore.NewServer(st,
		kvstore.WithMaxInflight(*maxInflight),
		kvstore.WithMaxQueue(*maxQueue),
	)

	var sampler *obs.Sampler
	if reg != nil {
		srv.Instrument(reg)
		obs.Trace.SetEnabled(*trace)
		sampler = obs.NewSampler(reg, *sample)
		sampler.Register("backlog", st.RetiredNotFreed)
		sampler.Register("live", func() int64 { return st.Stats().Live })
		sampler.Start()
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvserver: metrics listener: %v\n", err)
			os.Exit(2)
		}
		mux := obs.Mux(reg)
		if *pprofOn {
			obs.AttachPprof(mux)
		}
		go http.Serve(mln, mux)
		defer mln.Close()
		fmt.Fprintf(os.Stderr, "kvserver: metrics on http://%s/metrics\n", mln.Addr())
	} else if *pprofOn {
		fmt.Fprintln(os.Stderr, "kvserver: -pprof needs -metrics for a listen address")
		os.Exit(2)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "kvserver: draining...")
		srv.Shutdown()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "kvserver: %s on %s (%d shards, %d conns)\n",
		st.Scheme(), *addr, *shards, *maxConns)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		os.Exit(1)
	}
	<-done

	if sampler != nil {
		sampler.Stop() // quiesce before drain so gauges settle
	}
	if *maxInflight > 0 {
		as := srv.AdmissionStats()
		fmt.Fprintf(os.Stderr, "kvserver: admission: shed=%d deadline_exceeded=%d (inflight<=%d, queue<=%d)\n",
			as.Shed, as.DeadlineExceeded, as.InflightLimit, as.QueueLimit)
	}
	rep := st.DrainAndCheck(0)
	js, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Printf("%s\n", js)
	if !rep.LeakOK {
		fmt.Fprintln(os.Stderr, "kvserver: LEAK CHECK FAILED")
		os.Exit(1)
	}
}
