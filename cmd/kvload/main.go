// kvload drives a kvserver with an open-loop mixed workload and reports
// throughput plus an HDR-style latency distribution.
//
//	kvload -addr 127.0.0.1:7070 -conns 8 -rate 20000 -duration 5s \
//	       -dist zipfian -theta 0.99 -keys 100000 -mix get=50,put=45,del=4,scan=1
//	kvload -conns 16 -budget 250ms     # per-op wire budget (v1 servers)
//
// With -budget > 0 each connection negotiates the wire version and
// attaches the budget to every op; a server that refuses an op with
// StatusOverloaded or StatusDeadlineExceeded (admission control / the
// budget expiring in its queue) is counted in the shed/expired columns
// instead of as an error, and refusals never pollute the latency
// distribution. Against a pre-versioning server the flag degrades to
// plain unbudgeted ops.
//
// With -rate > 0 each connection paces sends on its own schedule and
// latency is measured from the *scheduled* send time, so queueing delay
// from a slow server is charged to the server (no coordinated
// omission). With -rate 0 the generator runs closed-loop: each
// connection keeps -pipeline requests in flight and latency is measured
// from the actual send.
//
// Results append into -out (default BENCH_kv.json), keyed by -label
// (default: the server's scheme, fetched via STATS), so a sweep over
// schemes accumulates one comparable document.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/kvstore"
)

type mix struct {
	get, put, del, scan int // cumulative thresholds out of 100
}

func parseMix(s string) (mix, error) {
	w := map[string]int{"get": 0, "put": 0, "del": 0, "scan": 0}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return mix{}, fmt.Errorf("bad mix element %q", part)
		}
		n, err := strconv.Atoi(kv[1])
		if _, known := w[kv[0]]; err != nil || !known || n < 0 {
			return mix{}, fmt.Errorf("bad mix element %q", part)
		}
		w[kv[0]] = n
	}
	total := w["get"] + w["put"] + w["del"] + w["scan"]
	if total != 100 {
		return mix{}, fmt.Errorf("mix weights sum to %d, want 100", total)
	}
	return mix{
		get:  w["get"],
		put:  w["get"] + w["put"],
		del:  w["get"] + w["put"] + w["del"],
		scan: 100,
	}, nil
}

type keyGen interface{ next() uint64 }

// inflight rides the pipeline between sender and receiver halves of one
// connection: which Recv* to call and when the op was (scheduled to be)
// sent.
type inflight struct {
	op    uint8
	sched time.Time
}

type connResult struct {
	hist    bench.Hist
	ops     uint64
	errs    uint64
	shed    uint64 // ops refused with StatusOverloaded
	expired uint64 // ops refused with StatusDeadlineExceeded
}

// runConn drives one connection until deadline. Sends and receives run
// in separate goroutines (the client's pipelining contract), coupled by
// the inflight queue.
func runConn(addr string, opts []kvstore.Option, id int, seed int64, deadline time.Time, warmupUntil time.Time,
	m mix, dist string, theta float64, keys uint64, scanLen uint32,
	interval time.Duration, pipeline int, budget time.Duration) (connResult, error) {

	cl, err := kvstore.Dial(addr, opts...)
	if err != nil {
		return connResult{}, err
	}
	defer cl.Close()
	if budget > 0 {
		// Budgets only ride the wire on a negotiated v1 connection; a
		// pre-versioning server negotiates down and the Send*Budget
		// helpers silently fall back to plain ops.
		if _, err := cl.Negotiate(context.Background()); err != nil {
			return connResult{}, fmt.Errorf("negotiate: %w", err)
		}
	}

	r := rand.New(rand.NewSource(seed))
	var gen keyGen
	if dist == "zipfian" {
		gen = newZipf(r, keys, theta)
	} else {
		gen = &uniformGen{n: keys, r: r}
	}

	queue := make(chan inflight, 4096)
	var res connResult
	var recvErr error // written by the receiver before failed.Store
	var failed atomic.Bool
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for f := range queue {
			var err error
			switch f.op {
			case kvstore.OpGet:
				_, _, err = cl.RecvGet()
			case kvstore.OpPut:
				_, err = cl.RecvPut()
			case kvstore.OpDel:
				_, err = cl.RecvDel()
			case kvstore.OpScan:
				_, err = cl.RecvScan(nil)
			}
			if err != nil {
				// The refusal statuses are not failures: the server shed
				// the op before executing it. Count them apart and keep
				// them out of the latency distribution.
				if errors.Is(err, kvstore.ErrOverloaded) {
					res.shed++
					continue
				}
				if errors.Is(err, kvstore.ErrDeadlineExceeded) {
					res.expired++
					continue
				}
				res.errs++
				recvErr = err
				failed.Store(true)
				return
			}
			res.ops++
			if now := time.Now(); now.After(warmupUntil) {
				res.hist.RecordDur(now.Sub(f.sched))
			}
		}
	}()

	send := func(sched time.Time) {
		k := gen.next()
		p := r.Intn(100)
		var op uint8
		switch {
		case p < m.get:
			op = kvstore.OpGet
			cl.SendGetBudget(k, budget)
		case p < m.put:
			op = kvstore.OpPut
			cl.SendPutBudget(k, k^uint64(sched.UnixNano()), budget)
		case p < m.del:
			op = kvstore.OpDel
			cl.SendDelBudget(k, budget)
		default:
			op = kvstore.OpScan
			cl.SendScanBudget(k, scanLen, budget)
		}
		queue <- inflight{op: op, sched: sched}
	}

	if interval > 0 {
		// Open loop: send on the schedule regardless of responses;
		// flush in small batches to amortize syscalls.
		next := time.Now()
		unflushed := 0
		for time.Now().Before(deadline) && !failed.Load() {
			now := time.Now()
			if now.Before(next) {
				if unflushed > 0 {
					cl.Flush()
					unflushed = 0
				}
				time.Sleep(next.Sub(now))
			}
			send(next) // latency clock starts at the scheduled time
			unflushed++
			if unflushed >= 16 {
				cl.Flush()
				unflushed = 0
			}
			next = next.Add(interval)
		}
	} else {
		// Closed loop: keep `pipeline` requests in flight.
		sent := 0
		for time.Now().Before(deadline) && !failed.Load() {
			for sent < pipeline {
				send(time.Now())
				sent++
			}
			cl.Flush()
			// Wait for the queue to drain below the window before
			// refilling: receiver consumes as responses arrive.
			for len(queue) >= pipeline && !failed.Load() {
				time.Sleep(50 * time.Microsecond)
			}
			sent = len(queue)
		}
	}
	cl.CloseWrite()
	close(queue)
	rwg.Wait()
	return res, recvErr
}

// Report is one kvload run, keyed into BENCH_kv.json by Label.
type Report struct {
	Label        string               `json:"label"`
	Scheme       string               `json:"scheme"`
	Conns        int                  `json:"conns"`
	RatePerSec   float64              `json:"rate_per_sec"` // 0 = closed loop
	Pipeline     int                  `json:"pipeline,omitempty"`
	Duration     string               `json:"duration"`
	Dist         string               `json:"dist"`
	Theta        float64              `json:"theta,omitempty"`
	Keys         uint64               `json:"keys"`
	Mix          string               `json:"mix"`
	ScanLen      uint32               `json:"scan_len"`
	Budget       string               `json:"budget,omitempty"`
	Ops          uint64               `json:"ops"`
	Errors       uint64               `json:"errors"`
	Shed         uint64               `json:"shed,omitempty"`
	Expired      uint64               `json:"deadline_exceeded,omitempty"`
	HedgesFired  uint64               `json:"hedges_fired,omitempty"`
	HedgedWins   uint64               `json:"hedged_wins,omitempty"`
	ThroughputPS float64              `json:"throughput_ops_per_sec"`
	Latency      bench.LatSummary     `json:"latency_us"`
	Stats        *kvstore.Stats       `json:"server_stats,omitempty"`
	Drain        *kvstore.DrainReport `json:"drain,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address, or a comma-separated list round-robined across -conns")
	conns := flag.Int("conns", 8, "concurrent connections")
	rate := flag.Float64("rate", 0, "total target ops/sec across all conns (0 = closed loop)")
	pipeline := flag.Int("pipeline", 16, "closed-loop in-flight requests per conn")
	duration := flag.Duration("duration", 5*time.Second, "measured run length")
	warmup := flag.Duration("warmup", time.Second, "lead-in whose latencies are discarded")
	dist := flag.String("dist", "zipfian", "key distribution: zipfian|uniform")
	theta := flag.Float64("theta", 0.99, "zipfian exponent (YCSB default 0.99)")
	keys := flag.Uint64("keys", 100000, "keyspace size")
	mixFlag := flag.String("mix", "get=50,put=45,del=4,scan=1", "op mix, weights summing to 100")
	scanLen := flag.Uint("scanlen", 16, "keys per scan")
	preload := flag.Bool("preload", true, "insert the whole keyspace before the run")
	drain := flag.Bool("drain", false, "send DRAIN after the run and record the leak report")
	label := flag.String("label", "", "result key in -out (default: server scheme)")
	out := flag.String("out", "BENCH_kv.json", "merge results into this JSON file ('' = stdout only)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "TCP connect timeout")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "per-read/per-flush timeout (0 = none)")
	dialRetries := flag.Int("dial-retries", 3, "extra connect attempts (covers a server still starting)")
	budget := flag.Duration("budget", 0, "per-op wire execution budget (0 = none; needs a v1 server)")
	flag.Parse()

	m, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvload: %v\n", err)
		os.Exit(2)
	}
	if *dist != "zipfian" && *dist != "uniform" {
		fmt.Fprintf(os.Stderr, "kvload: unknown dist %q\n", *dist)
		os.Exit(2)
	}

	// -addr may be a comma-separated list (e.g. several kvproxy
	// processes); connection i dials addrs[i mod n]. Control traffic —
	// STATS, preload, the final DRAIN — uses the first address only.
	addrs := strings.Split(*addr, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	opts := []kvstore.Option{
		kvstore.WithDialTimeout(*dialTimeout),
		kvstore.WithReadTimeout(*ioTimeout),
		kvstore.WithWriteTimeout(*ioTimeout),
		kvstore.WithPipelineDepth(*pipeline),
		kvstore.WithRetries(*dialRetries),
	}
	ctl, err := kvstore.Dial(addrs[0], opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvload: %v\n", err)
		os.Exit(1)
	}
	stats, err := ctl.Stats(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvload: STATS: %v\n", err)
		os.Exit(1)
	}
	if *label == "" {
		*label = stats.Scheme
	}

	if *preload {
		n := uint64(0)
		for k := uint64(1); k <= *keys; k++ {
			ctl.SendPut(k, k)
			if n++; n%1024 == 0 {
				ctl.Flush()
				for ; n > 0; n-- {
					ctl.RecvPut()
				}
			}
		}
		ctl.Flush()
		for ; n > 0; n-- {
			ctl.RecvPut()
		}
	}

	// Against a kvproxy, hedge counters bracket the run so the report can
	// show how many reads the hedge actually rescued.
	hedge0, wins0, isProxy := hedgeCounters(ctl)

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(*conns) / *rate * float64(time.Second))
	}
	warmupUntil := time.Now().Add(*warmup)
	deadline := warmupUntil.Add(*duration)

	results := make([]connResult, *conns)
	errs := make([]error, *conns)
	var wg sync.WaitGroup
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = runConn(addrs[i%len(addrs)], opts, i, *seed+int64(i)*7919, deadline, warmupUntil,
				m, *dist, *theta, *keys, uint32(*scanLen), interval, *pipeline, *budget)
		}(i)
	}
	wg.Wait()

	rep := Report{
		Label: *label, Scheme: stats.Scheme,
		Conns: *conns, RatePerSec: *rate,
		Duration: duration.String(), Dist: *dist, Keys: *keys,
		Mix: *mixFlag, ScanLen: uint32(*scanLen),
	}
	if *dist == "zipfian" {
		rep.Theta = *theta
	}
	if *rate == 0 {
		rep.Pipeline = *pipeline
	}
	if *budget > 0 {
		rep.Budget = budget.String()
	}
	var hist bench.Hist
	for i := range results {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "kvload: conn %d: %v\n", i, errs[i])
			rep.Errors++
		}
		hist.Merge(&results[i].hist)
		rep.Ops += results[i].ops
		rep.Errors += results[i].errs
		rep.Shed += results[i].shed
		rep.Expired += results[i].expired
	}
	rep.ThroughputPS = float64(hist.Count()) / duration.Seconds()
	rep.Latency = hist.Summary()
	if isProxy {
		if hedge1, wins1, ok := hedgeCounters(ctl); ok {
			rep.HedgesFired = hedge1 - hedge0
			rep.HedgedWins = wins1 - wins0
		}
	}

	if st, err := ctl.Stats(context.Background()); err == nil {
		st.Sides = nil // per-index detail is noise in the report
		rep.Stats = &st
	}
	if *drain {
		if dr, err := ctl.Drain(context.Background()); err == nil {
			rep.Drain = &dr
		} else {
			fmt.Fprintf(os.Stderr, "kvload: DRAIN: %v\n", err)
		}
	}
	ctl.Close()

	hedged := ""
	if isProxy {
		hedged = fmt.Sprintf(", %d/%d hedge wins", rep.HedgedWins, rep.HedgesFired)
	}
	fmt.Printf("%-8s %8.0f ops/s  p50 %.1fus  p99 %.1fus  p999 %.1fus  (%d ops, %d errs, %d shed, %d expired%s)\n",
		rep.Label, rep.ThroughputPS,
		rep.Latency.P50Us, rep.Latency.P99Us, rep.Latency.P999Us,
		rep.Ops, rep.Errors, rep.Shed, rep.Expired, hedged)

	if *out != "" {
		if err := mergeReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "kvload: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
}

// hedgeCounters reads the target's hedge counters via CLUSTER_INFO. A
// plain kvserver answers the admin verb with an Err frame; callers
// treat that as "not a proxy" and skip the columns silently.
func hedgeCounters(cl *kvstore.Client) (fired, wins uint64, ok bool) {
	raw, err := cl.ClusterInfo(context.Background())
	if err != nil {
		return 0, 0, false
	}
	var info struct {
		HedgesFired uint64 `json:"hedges_fired"`
		HedgeWins   uint64 `json:"hedge_wins"`
	}
	if json.Unmarshal(raw, &info) != nil {
		return 0, 0, false
	}
	return info.HedgesFired, info.HedgeWins, true
}

// mergeReport updates path in place, keeping one entry per label so a
// sweep over schemes accumulates a single comparable document.
func mergeReport(path string, rep Report) error {
	byLabel := map[string]Report{}
	if b, err := os.ReadFile(path); err == nil {
		var old []Report
		if json.Unmarshal(b, &old) == nil {
			for _, r := range old {
				byLabel[r.Label] = r
			}
		}
	}
	byLabel[rep.Label] = rep
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	all := make([]Report, 0, len(labels))
	for _, l := range labels {
		all = append(all, byLabel[l])
	}
	return bench.WriteJSON(path, all)
}
