package main

import (
	"math"
	"math/rand"
)

// zipfGen is the YCSB-style Zipfian generator: unlike stdlib rand.Zipf
// (which requires s > 1) it supports the benchmark-standard exponent
// theta < 1 (YCSB default 0.99). Ranks are scrambled with a Fibonacci
// hash so the hot keys spread across the keyspace (and therefore across
// store shards) instead of clustering at the low end.
type zipfGen struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	r     *rand.Rand
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func newZipf(r *rand.Rand, n uint64, theta float64) *zipfGen {
	zetan := zeta(n, theta)
	return &zipfGen{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		r:     r,
	}
}

// rank draws a 1-based rank; rank 1 is the hottest.
func (z *zipfGen) rank() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 1
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 2
	}
	return 1 + uint64(float64(z.n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// next draws a key in [1, n], rank-scrambled.
func (z *zipfGen) next() uint64 {
	return 1 + (z.rank()*0x9e3779b97f4a7c15)%z.n
}

// uniformGen draws keys uniformly from [1, n].
type uniformGen struct {
	n uint64
	r *rand.Rand
}

func (u *uniformGen) next() uint64 { return 1 + uint64(u.r.Int63n(int64(u.n))) }
