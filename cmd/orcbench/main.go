// orcbench is the master benchmark driver: it regenerates each of the
// paper's figures and measured tables.
//
//	orcbench -fig all                      # everything, CI scale
//	orcbench -fig 3 -threads 1,2,4,8,16 -duration 2s -runs 5
//	orcbench -fig mem -out data/           # §5 footprint + TSV files
//
// Figure ids: 1 2 3 4 5 6 7 8 mem table1 (see DESIGN.md §3 for the
// mapping to the paper's evaluation).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure id (1..8, mem, table1) or 'all'")
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	duration := flag.Duration("duration", 300*time.Millisecond, "measurement time per point")
	runs := flag.Int("runs", 1, "runs per point (mean reported; paper used 5)")
	keysList := flag.Uint64("keys-list", 1000, "key range for the list figures (paper: 1e3)")
	keysBig := flag.Uint64("keys-big", 100000, "key range for tree/skip figures (paper: 1e6)")
	out := flag.String("out", "", "directory for TSV data files (optional)")
	sample := flag.Duration("sample", time.Millisecond, "table1 backlog sampler period")
	flag.Parse()

	tc, err := bench.ParseThreads(*threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orcbench: %v\n", err)
		os.Exit(2)
	}
	cfg := bench.Config{
		Threads:  tc,
		Duration: *duration,
		Runs:     *runs,
		KeysList: *keysList,
		KeysBig:  *keysBig,
		DataDir:  *out,

		SamplePeriod: *sample,
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = bench.FigureIDs()
	}
	for _, id := range ids {
		if err := bench.Figure(id, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "orcbench: %v\n", err)
			os.Exit(1)
		}
	}
}
