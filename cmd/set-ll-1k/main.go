// set-ll-1k mirrors the artifact binary of the same name: the linked-
// list benchmarks with 10^3 keys behind Figures 3, 4, 5 and 6.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	duration := flag.Duration("duration", 500*time.Millisecond, "measurement time per point")
	runs := flag.Int("runs", 1, "runs per point")
	keys := flag.Uint64("keys", 1000, "key range")
	out := flag.String("out", "", "TSV output directory")
	flag.Parse()

	cfg := bench.Config{Duration: *duration, Runs: *runs, KeysList: *keys, DataDir: *out}
	tc, err := bench.ParseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Threads = tc
	for _, id := range []string{"3", "4", "5", "6"} {
		if err := bench.Figure(id, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
