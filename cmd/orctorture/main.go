// orctorture runs the seeded torture harness over every reclamation
// scheme × data-structure pairing and reports a verdict ledger per
// subject: zero arena faults, Live back at baseline after drain for
// reclaiming schemes, retired == freed + pending, and shadow-model
// conservation under stalled readers, randomized op mixes, scheduler
// perturbation, and kvstore connection chaos.
//
//	orctorture -seed 42 -threads 4 -ops 5000
//	orctorture -subjects list-hp,ms-orc,kv-ebr -ops 20000 -stalls 2
//
// The op schedule of every thread is a pure function of (seed, tid,
// config): rerunning with the printed seed reproduces the identical
// schedules (witnessed by the per-subject schedule hash). -seed 0 draws
// a seed from the clock and prints it, so any failure is reproducible.
// Exits 1 if any subject fails, repeating the seed on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/torture"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 0, "torture seed; 0 draws one from the clock")
		threads  = flag.Int("threads", 4, "worker goroutines per subject")
		ops      = flag.Uint64("ops", 5000, "operations per worker")
		keys     = flag.Uint64("keys", 512, "set key-space size")
		stalls   = flag.Int("stalls", 1, "worker tids that stall inside the protection loop")
		hold     = flag.Uint64("stallhold", 2000, "global ops a stalled reader holds its protection across")
		every    = flag.Uint64("stallevery", 256, "protect calls between parks of a stalled tid")
		subjects = flag.String("subjects", "all", "comma-separated subject names, or 'all'")
		list     = flag.Bool("list", false, "print subject names and exit")
		verbose  = flag.Bool("v", false, "print every failure line, not just the first few")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(torture.SubjectNames(), "\n"))
		return
	}
	subs, err := torture.Resolve(*subjects)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *seed == 0 {
		*seed = uint64(time.Now().UnixNano()) | 1
	}
	cfg := torture.Config{
		Seed: *seed, Threads: *threads, OpsPerThread: *ops, Keys: *keys,
		Stalls: *stalls, StallHold: *hold, StallEvery: *every,
	}
	fmt.Printf("orctorture seed=%d threads=%d ops=%d subjects=%d\n", *seed, *threads, *ops, len(subs))

	failed := 0
	start := time.Now()
	for _, s := range subs {
		v := torture.Run(s, cfg)
		fmt.Println(v.String())
		if !v.Passed() {
			failed++
			max := len(v.Failures)
			if !*verbose && max > 6 {
				max = 6
			}
			for _, f := range v.Failures[:max] {
				fmt.Printf("     ! %s\n", f)
			}
			if max < len(v.Failures) {
				fmt.Printf("     ! … %d more (rerun with -v)\n", len(v.Failures)-max)
			}
		}
	}
	fmt.Printf("orctorture done in %v: %d/%d subjects passed\n", time.Since(start).Round(time.Millisecond), len(subs)-failed, len(subs))
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d subject(s) failed — reproduce with: orctorture -seed %d -threads %d -ops %d\n",
			failed, *seed, *threads, *ops)
		os.Exit(1)
	}
}
