// set-skiplist-1m mirrors the artifact binary of the same name: the
// skip-list series of Figures 7 and 8 plus the §5 memory-footprint
// experiment (HS-skip ≈19 GB vs CRF-skip <1 GB at paper scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	duration := flag.Duration("duration", 500*time.Millisecond, "measurement time per point")
	runs := flag.Int("runs", 1, "runs per point")
	keys := flag.Uint64("keys", 100000, "key range (paper: 1000000)")
	out := flag.String("out", "", "TSV output directory")
	flag.Parse()

	cfg := bench.Config{Duration: *duration, Runs: *runs, KeysBig: *keys, DataDir: *out}
	tc, err := bench.ParseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Threads = tc
	for _, id := range []string{"7", "8", "mem"} {
		if err := bench.Figure(id, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
