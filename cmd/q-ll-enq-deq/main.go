// q-ll-enq-deq mirrors the artifact binary of the same name: the queue
// enqueue/dequeue-pair benchmark behind Figures 1 and 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	duration := flag.Duration("duration", 500*time.Millisecond, "measurement time per point")
	runs := flag.Int("runs", 1, "runs per point")
	out := flag.String("out", "", "TSV output directory")
	flag.Parse()

	cfg := bench.Config{Duration: *duration, Runs: *runs, DataDir: *out}
	tc, err := bench.ParseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Threads = tc
	for _, id := range []string{"1", "2"} {
		if err := bench.Figure(id, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
