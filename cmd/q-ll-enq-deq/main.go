// q-ll-enq-deq mirrors the artifact binary of the same name: the queue
// enqueue/dequeue-pair benchmark behind Figures 1 and 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	duration := flag.Duration("duration", 500*time.Millisecond, "measurement time per point")
	runs := flag.Int("runs", 1, "runs per point")
	out := flag.String("out", "", "TSV output directory")
	flag.Parse()

	cfg := bench.Config{Duration: *duration, Runs: *runs, DataDir: *out}
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", part)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, n)
	}
	for _, id := range []string{"1", "2"} {
		if err := bench.Figure(id, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
