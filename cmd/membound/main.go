// membound measures the unreclaimed-memory bound column of the paper's
// Table 1: each scheme's maximum retired-but-not-freed object count
// under adversarial protect/retire pressure, printed next to the
// asymptotic bound the paper states. PTP's t(H+1) bound is enforced, not
// just reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	threads := flag.Int("threads", 8, "stress threads")
	duration := flag.Duration("duration", time.Second, "stress time")
	flag.Parse()

	cfg := bench.Config{Threads: []int{*threads}, Duration: *duration}
	if err := bench.Figure("table1", cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
