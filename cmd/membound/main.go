// membound measures the unreclaimed-memory bound column of the paper's
// Table 1: each scheme's maximum retired-but-not-freed object count
// under adversarial protect/retire pressure, printed next to the
// asymptotic bound the paper states. PTP's t(H+1) bound is enforced, not
// just reported.
//
// Two backlog columns are printed: maxPending (exact, tracked on every
// retire) and sampledMax (the obs.Sampler high-water mark at the -sample
// cadence — the same estimator a /metrics scrape of kvserver sees, so
// the gap between the columns is the sampling error of that pipeline).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	threads := flag.Int("threads", 8, "stress threads")
	duration := flag.Duration("duration", time.Second, "stress time")
	sample := flag.Duration("sample", time.Millisecond, "backlog sampler period (the sampledMax column)")
	flag.Parse()

	cfg := bench.Config{Threads: []int{*threads}, Duration: *duration, SamplePeriod: *sample}
	if err := bench.Figure("table1", cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
