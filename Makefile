GO ?= go

# Packages whose concurrency hot paths warrant a race-detector pass on
# every check: the allocator, the OrcGC core, and the manual schemes.
RACE_PKGS = ./internal/arena/ ./internal/core/ ./internal/reclaim/

.PHONY: check vet build test race bench-alloc clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Re-measure the allocator against the single-free-list baseline and
# refresh BENCH_alloc.json.
bench-alloc:
	ALLOC_BENCH=1 $(GO) test ./internal/arena/ -run TestAllocBenchReport -count=1 -v

clean:
	$(GO) clean ./...
