GO ?= go

# Packages whose concurrency hot paths warrant a race-detector pass on
# every check: the allocator, the OrcGC core, the manual schemes, the
# networked KV service (pipelined connections over both), and the
# lock-free metrics registry all of them report into.
RACE_PKGS = ./internal/arena/ ./internal/core/ ./internal/reclaim/ ./internal/kvstore/ ./internal/cluster/ ./internal/obs/ ./internal/torture/

.PHONY: check vet orcvet build test race cluster-guards bench-alloc bench-scan serve load smoke metrics-smoke torture-smoke cluster-smoke overload-smoke bench-kv bench-cluster bench-cluster-short profile-cluster clean

BIN = bin

check: vet orcvet build test race cluster-guards

vet:
	$(GO) vet ./...

# orcvet: the repo's own reclamation-discipline analyzer, run through
# the go vet driver so test files and generated cgo shims are covered.
# Any unannotated protect/escape/retire/unsafe finding fails the build;
# see DESIGN.md §10 for the rules and the //orcvet:ignore policy.
orcvet:
	$(GO) build -o $(BIN)/orcvet ./cmd/orcvet
	$(GO) vet -vettool=$(BIN)/orcvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The proxy fast-path regression guards, run without the race detector
# so the AllocsPerRun assertion measures the real path (race
# instrumentation allocates): a steady-state proxied GET/PUT must not
# allocate, and a churned topology must return to its goroutine
# baseline.
cluster-guards:
	$(GO) test ./internal/cluster/ -run 'TestProxySteadyState|TestProxyGoroutineBaseline' -count=1 -v

# Re-measure the allocator against the single-free-list baseline and
# refresh BENCH_alloc.json.
bench-alloc:
	ALLOC_BENCH=1 $(GO) test ./internal/arena/ -run TestAllocBenchReport -count=1 -v

# Re-measure the scan engine (reusable sorted snapshot + binary search)
# against the seed's per-scan map baseline, plus the protection fast
# path, and refresh BENCH_scan.json.
bench-scan:
	SCAN_BENCH=1 $(GO) test ./internal/reclaim/ -run TestScanBenchReport -count=1 -v

# orcstore: run the KV server (RECLAIM selects the scheme) and drive it.
# The metrics endpoint comes up alongside: curl $(METRICS)/metrics.
RECLAIM ?= orcgc
ADDR    ?= 127.0.0.1:7070
METRICS ?= 127.0.0.1:7071

serve:
	$(GO) run ./cmd/kvserver -addr $(ADDR) -reclaim $(RECLAIM) -metrics $(METRICS)

load:
	$(GO) run ./cmd/kvload -addr $(ADDR) -conns 8 -duration 5s

# Quick loopback sanity run: server + 2s uniform load, then SIGINT and
# verify the drain leak check passes (kvserver exits non-zero if not).
smoke:
	$(GO) build -o bin/kvserver ./cmd/kvserver
	$(GO) build -o bin/kvload ./cmd/kvload
	./bin/kvserver -addr 127.0.0.1:7199 -reclaim $(RECLAIM) & \
	pid=$$!; sleep 1; \
	./bin/kvload -addr 127.0.0.1:7199 -conns 4 -duration 2s -warmup 500ms \
	  -dist uniform -keys 10000 -out '' || { kill $$pid; exit 1; }; \
	kill -INT $$pid; wait $$pid

# Observability smoke: serve with -metrics, put load through, scrape
# /metrics (text and JSON) and assert the per-scheme reclamation gauges
# and op counters are present, then SIGINT and require a clean drain.
metrics-smoke:
	$(GO) build -o bin/kvserver ./cmd/kvserver
	$(GO) build -o bin/kvload ./cmd/kvload
	./bin/kvserver -addr 127.0.0.1:7199 -reclaim hp -metrics 127.0.0.1:7198 & \
	pid=$$!; sleep 1; \
	./bin/kvload -addr 127.0.0.1:7199 -conns 4 -duration 2s -warmup 200ms \
	  -dist uniform -keys 10000 -out '' || { kill $$pid; exit 1; }; \
	curl -fsS http://127.0.0.1:7198/metrics > /tmp/metrics.txt || { kill $$pid; exit 1; }; \
	curl -fsS 'http://127.0.0.1:7198/metrics?format=json' > /tmp/metrics.json || { kill $$pid; exit 1; }; \
	for key in 'reclaim/shard0/map/retired' 'reclaim/shard0/map/freed' \
	           'reclaim/shard0/map/retire_depth' 'reclaim/shard0/map/elisions' \
	           'reclaim/shard0/map/scan_freed_ratio_bp' 'reclaim/shard0/map/scan_threshold' \
	           'kv/arena/live' \
	           'kv/arena/occupancy_bp' 'kv/server/ops/get' \
	           'kv/server/lat/get_ns' 'sampled/backlog'; do \
	  grep -q "$$key" /tmp/metrics.txt || { echo "metrics-smoke: missing $$key"; kill $$pid; exit 1; }; \
	done; \
	kill -INT $$pid; wait $$pid
	@echo "metrics-smoke: OK"

# Torture smoke: a short seeded run of every reclamation scheme ×
# data-structure subject plus the scheme-direct scan/elision subjects
# (57 subjects, including cluster failover and server overload) under
# the race detector, with one stalled reader parked
# inside the protection loop. Deterministic per seed: on any failure
# orctorture prints the reproducing command line (seed, threads, ops) to
# stderr and exits non-zero.
TORTURE_SEED ?= 1
torture-smoke:
	$(GO) run -race ./cmd/orctorture -seed $(TORTURE_SEED) -threads 4 -ops 600 -stalls 1

# Cluster smoke: three race-built backends on distinct schemes behind
# kvproxy at R=2, one SIGKILLed and restarted empty mid-load. Asserts
# kvload sees 0 errs across the outage, the per-backend inflight
# gauges return to 0 after the drain (the cluster-side counterpart of
# metrics-smoke), and every backend — including the restarted one —
# passes its leak verdict. See scripts/cluster_smoke.sh.
cluster-smoke:
	$(GO) build -race -o bin/kvserver ./cmd/kvserver
	$(GO) build -race -o bin/kvload ./cmd/kvload
	$(GO) build -race -o bin/kvproxy ./cmd/kvproxy
	sh scripts/cluster_smoke.sh

# Overload smoke: a race-built kvserver with a small admission bound
# (2 inflight, 2 queued) under kvload at several times its capacity,
# every op carrying a -budget wire deadline. Asserts overload degrades
# to shedding (0 errs, shed > 0), accepted-op p99 stays within 3× the
# unloaded baseline, and the post-drain leak verdict passes — refused
# work leaves no retire backlog behind. See scripts/overload_smoke.sh.
overload-smoke:
	$(GO) build -race -o bin/kvserver ./cmd/kvserver
	$(GO) build -race -o bin/kvload ./cmd/kvload
	sh scripts/overload_smoke.sh

# Measure proxy overhead and scaling vs a direct connection and
# refresh BENCH_cluster.json (direct-1, proxy-1, proxy-2, proxy-3).
bench-cluster:
	$(GO) build -o bin/kvserver ./cmd/kvserver
	$(GO) build -o bin/kvload ./cmd/kvload
	$(GO) build -o bin/kvproxy ./cmd/kvproxy
	sh scripts/bench_cluster.sh

# CI-sized bench-cluster: same sweep, 3s per point, results to /tmp so
# the checked-in BENCH_cluster.json only changes when refreshed
# deliberately. Acts as an end-to-end smoke for the proxy fast path
# (any stall, leak, or ordering bug surfaces as errs > 0 here).
bench-cluster-short:
	$(GO) build -o bin/kvserver ./cmd/kvserver
	$(GO) build -o bin/kvload ./cmd/kvload
	$(GO) build -o bin/kvproxy ./cmd/kvproxy
	OUT=/tmp/BENCH_cluster_short.json DUR=3s WARMUP=500ms sh scripts/bench_cluster.sh

# Capture a 10s CPU profile of kvproxy under load (bin/kvproxy +
# /debug/pprof via -pprof); see scripts/profile_cluster.sh.
profile-cluster:
	$(GO) build -o bin/kvserver ./cmd/kvserver
	$(GO) build -o bin/kvload ./cmd/kvload
	$(GO) build -o bin/kvproxy ./cmd/kvproxy
	sh scripts/profile_cluster.sh

# Sweep every reclamation scheme through the loopback service and
# refresh BENCH_kv.json (throughput + latency percentiles + drain leak
# report per scheme).
bench-kv:
	$(GO) build -o bin/kvserver ./cmd/kvserver
	$(GO) build -o bin/kvload ./cmd/kvload
	for s in orcgc none hp ptb ptp ebr he ibr; do \
	  ./bin/kvserver -addr 127.0.0.1:7199 -reclaim $$s & \
	  pid=$$!; sleep 1; \
	  ./bin/kvload -addr 127.0.0.1:7199 -conns 8 -duration 3s -warmup 1s \
	    -dist zipfian -theta 0.99 -keys 50000 -mix get=50,put=44,del=5,scan=1 \
	    -drain -out BENCH_kv.json || { kill $$pid; exit 1; }; \
	  kill -INT $$pid; wait $$pid || exit 1; \
	done

clean:
	$(GO) clean ./...
	rm -rf bin
